#!/usr/bin/env bash
# Checks that every relative link in the repository's *.md files points at
# an existing file or directory. External (http/https/mailto) links and
# pure in-page anchors are skipped; "path#anchor" links are checked for
# the path part only. Exits 1 listing every broken link.
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
status=0

while IFS= read -r -d '' md; do
  dir="$(dirname "$md")"
  # Extract inline markdown link targets: [text](target)
  grep -oE '\]\(([^)]+)\)' "$md" | sed -E 's/^\]\(//; s/\)$//' |
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|'#'*) continue ;;
      *' '*|*'<'*) continue ;;  # lambda captures in code snippets, not links
    esac
    path="${target%%#*}"
    [ -z "$path" ] && continue
    # Links are resolved relative to the file containing them.
    if [ ! -e "$dir/$path" ]; then
      echo "BROKEN: ${md#"$root"/}: $target"
      # Propagate failure out of the pipeline subshell via a marker file.
      touch "$root/.md_link_check_failed"
    fi
  done
done < <(find "$root" -name '*.md' -not -path '*/build*' -not -path '*/.git/*' -print0)

if [ -e "$root/.md_link_check_failed" ]; then
  rm -f "$root/.md_link_check_failed"
  status=1
else
  echo "All markdown links OK."
fi
exit "$status"
