#!/usr/bin/env bash
# One-stop local verification: runs every repo-health check that needs no
# build — markdown link integrity, the alperf-lint determinism invariants
# (plus its self-test), and the clang-tidy baseline when clang-tidy is
# installed (explicitly reported as SKIP otherwise; CI always runs it).
#
# Usage: scripts/verify_all.sh
# Exit: 0 when every check that ran passed, 1 otherwise.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

failures=0

run_check() {
  local name="$1"
  shift
  echo "==> $name"
  if "$@"; then
    echo "==> $name: OK"
  else
    echo "==> $name: FAILED" >&2
    failures=$((failures + 1))
  fi
  echo
}

run_check "markdown links" ./scripts/check_md_links.sh
run_check "alperf-lint self-test" python3 scripts/alperf_lint.py --self-test
run_check "alperf-lint" python3 scripts/alperf_lint.py

# run_clang_tidy.sh exits 3 when the binary is not installed — report
# that as an explicit SKIP rather than a silent pass.
echo "==> clang-tidy"
./scripts/run_clang_tidy.sh
tidy_status=$?
case "$tidy_status" in
  0) echo "==> clang-tidy: OK" ;;
  3) echo "==> clang-tidy: SKIP (not installed; the static-analysis CI job runs it)" ;;
  *) echo "==> clang-tidy: FAILED" >&2
     failures=$((failures + 1)) ;;
esac
echo

if [ "$failures" -eq 0 ]; then
  echo "verify_all: all checks passed"
  exit 0
fi
echo "verify_all: $failures check(s) failed" >&2
exit 1
