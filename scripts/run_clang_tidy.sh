#!/usr/bin/env bash
# Runs the project clang-tidy baseline (.clang-tidy) over every
# translation unit in src/, bench/, examples/ and tests/.
#
# Usage:
#   scripts/run_clang_tidy.sh [-p BUILD_DIR] [-j N]
#   scripts/run_clang_tidy.sh --self-test
#
#   -p BUILD_DIR  use an existing build directory's compile_commands.json
#                 (default: build-tidy, configured on demand)
#   -j N          parallel clang-tidy processes (default: nproc)
#   --self-test   run clang-tidy on the seeded negative fixture
#                 (tests/static_analysis_fixtures/tidy_negative.cpp) and
#                 FAIL unless it reports findings — proves the tool and
#                 config actually detect what they claim to.
#
# Exit codes: 0 clean / self-test detected the seeded bugs, 1 findings
# (or self-test missed them), 3 clang-tidy not installed.
#
# The binary is resolved from $CLANG_TIDY, then clang-tidy, then
# clang-tidy-<N> for recent N. CI installs it; locally a missing binary is
# a hard error so a "clean" run can never silently mean "didn't run"
# (scripts/verify_all.sh downgrades that to an explicit SKIP).
set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

find_clang_tidy() {
  if [ -n "${CLANG_TIDY:-}" ]; then
    command -v "$CLANG_TIDY" && return 0
  fi
  for candidate in clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18 \
                   clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    command -v "$candidate" && return 0
  done
  return 1
}

tidy_bin="$(find_clang_tidy)" || {
  echo "run_clang_tidy.sh: clang-tidy not found (set CLANG_TIDY or install it)" >&2
  exit 3
}

if [ "${1:-}" = "--self-test" ]; then
  fixture="tests/static_analysis_fixtures/tidy_negative.cpp"
  echo "self-test: expecting findings in $fixture"
  if "$tidy_bin" --quiet "$fixture" -- -std=c++20 -I src 2>/dev/null \
      | grep -q "warning:\|error:"; then
    echo "self-test OK: clang-tidy detected the seeded bugs"
    exit 0
  fi
  echo "self-test FAILED: clang-tidy reported nothing for $fixture" >&2
  exit 1
fi

build_dir="build-tidy"
jobs="$(nproc 2>/dev/null || echo 4)"
while [ $# -gt 0 ]; do
  case "$1" in
    -p) build_dir="$2"; shift 2 ;;
    -j) jobs="$2"; shift 2 ;;
    *) echo "run_clang_tidy.sh: unknown argument '$1'" >&2; exit 2 ;;
  esac
done

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "configuring $build_dir for compile_commands.json"
  cmake -B "$build_dir" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

# All first-party translation units. Headers are covered transitively via
# HeaderFilterRegex in .clang-tidy.
mapfile -t sources < <(find src bench examples tests -name '*.cpp' \
  -not -path 'tests/static_analysis_fixtures/*' | sort)

echo "clang-tidy ($tidy_bin): ${#sources[@]} translation units, $jobs-way"
printf '%s\n' "${sources[@]}" \
  | xargs -P "$jobs" -n 4 "$tidy_bin" --quiet -p "$build_dir"
status=$?
if [ $status -eq 0 ]; then
  echo "clang-tidy: clean"
else
  echo "clang-tidy: findings above (exit $status)" >&2
  exit 1
fi
