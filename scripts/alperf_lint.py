#!/usr/bin/env python3
"""alperf-lint: project-specific determinism & hygiene invariants.

The paper's AL campaigns only reproduce if every run is bit-identical at
any thread count. Most of that discipline is enforced by Clang
thread-safety analysis and clang-tidy (see docs/STATIC_ANALYSIS.md), but a
few invariants are alperf-specific and expressible only as source rules.
This checker enforces them with file:line diagnostics:

  banned-rng          std::rand/srand, std::random_device and time-based
                      seeding are banned everywhere: all stochastic
                      behaviour must flow through stats/rng.hpp
                      (alperf::stats::Rng, xoshiro256**), whose streams
                      are bit-reproducible across platforms.
  unordered-iteration std::unordered_{map,set,...} are banned in
                      src/core, src/gp and src/la: their iteration order
                      is implementation-defined, so any result computed
                      by walking one silently varies across standard
                      libraries (and across runs with different seeds of
                      the hash). Use std::map or sorted vectors.
  cout                Library code (src/) must not write to stdio
                      (std::cout/std::cerr/printf): diagnostics are
                      returned as strings (HealthMonitor::report,
                      PerfRegistry::toJson) and the terminal belongs to
                      examples/, bench/ and tools.
  naked-new           Library code owns memory through make_unique /
                      containers; naked new/delete needs an explicit
                      allow (e.g. the intentionally leaked process-global
                      singletons).
  guarded-mutex       Every mutex member declared in src/ must guard
                      something: at least one field in the same file must
                      be annotated ALPERF_GUARDED_BY(<that mutex>).
                      An unused capability usually means shared state
                      was added without annotation coverage.
  float-compare       Bitwise ==/!= against a floating-point literal.
                      Exact float equality is only sound for sentinels
                      (0.0 meaning "disabled"), exact-by-construction
                      values (sparsity guards, ±1 design matrices) and
                      the golden/bit-identity determinism tests — every
                      such site is inventoried in the allowlist with a
                      reason. Anything else should compare against a
                      tolerance. (A lexical rule sees literals only;
                      variable-vs-variable float comparison needs
                      clang-tidy and code review.)

Suppression:
  * inline: a comment `alperf-lint: allow(<rule>)` suppresses that rule on
    its own line and on the next code line (so the comment can sit above
    the offending statement).
  * allowlist file (default scripts/alperf_lint_allow.txt): lines of
    `<rule> <path-glob>  [# reason]`; `*` as rule matches every rule.

Exit codes: 0 clean, 1 findings, 2 usage/internal error.
`--self-test` seeds one violation per rule in a temp tree, asserts each is
detected and each suppression mechanism works, and exits nonzero on any
miss — CI runs it so a silently broken rule cannot keep a green badge.
"""

import argparse
import fnmatch
import os
import re
import sys
import tempfile

EXTENSIONS = (".hpp", ".cpp", ".h", ".cc")
DEFAULT_PATHS = ["src", "bench", "examples", "tests"]
EXCLUDED_DIRS = {"tests/static_analysis_fixtures"}
ALLOW_RE = re.compile(r"alperf-lint:\s*allow\(([a-z0-9-]+)\)")
MUTEX_DECL_RE = re.compile(
    r"\b(?:std::)?(?:mutex|shared_mutex|recursive_mutex|Mutex)"
    r"\s+(\w+)\s*;")
GUARDED_BY_RE = re.compile(r"ALPERF_GUARDED_BY\(\s*(\w+)\s*\)")


def in_dirs(relpath, prefixes):
    return any(relpath.startswith(p + os.sep) for p in prefixes)


# A floating-point literal: 1.0, .5, 2., 1e-9, 3.25e2, with optional
# f/F/l/L suffix. Plain integers are excluded — `x == 0` on a double is
# invisible to a lexical rule.
FLOAT_LIT = (r"(?:\d+\.\d*(?:[eE][-+]?\d+)?|\.\d+(?:[eE][-+]?\d+)?"
             r"|\d+[eE][-+]?\d+)[fFlL]?")


# Each simple rule: (id, scope predicate over relpath, [(regex, message)]).
SIMPLE_RULES = [
    (
        "banned-rng",
        lambda rel: True,
        [
            (re.compile(r"std::rand\b|\bsrand\s*\("),
             "std::rand/srand is banned: use alperf::stats::Rng "
             "(stats/rng.hpp) for reproducible streams"),
            (re.compile(r"\brandom_device\b"),
             "std::random_device is nondeterministic by design: seed an "
             "alperf::stats::Rng with an explicit constant instead"),
            (re.compile(r"\btime\s*\(\s*(?:0|NULL|nullptr)\s*\)"),
             "time-based seeding breaks bit-reproducibility: pass an "
             "explicit seed through alperf::stats::Rng"),
        ],
    ),
    (
        "unordered-iteration",
        lambda rel: in_dirs(rel, ["src/core", "src/gp", "src/la"]),
        [
            (re.compile(r"std::unordered_(?:map|set|multimap|multiset)\b"),
             "unordered containers have implementation-defined iteration "
             "order; result paths in core/gp/la must use std::map or "
             "sorted vectors to stay bit-identical across platforms"),
        ],
    ),
    (
        "cout",
        lambda rel: in_dirs(rel, ["src"]),
        [
            (re.compile(r"std::cout\b|std::cerr\b"),
             "library code must not stream to stdio: return report "
             "strings (cf. HealthMonitor::report) and let examples/bench "
             "own the terminal"),
            (re.compile(r"\b(?:std::)?f?printf\s*\("),
             "library code must not printf to stdio (snprintf into a "
             "buffer is fine)"),
        ],
    ),
    (
        "naked-new",
        lambda rel: in_dirs(rel, ["src"]),
        [
            (re.compile(r"\bnew\b"),
             "naked new: own memory via std::make_unique/containers, or "
             "add an explicit allow for intentional singleton leaks"),
            (re.compile(r"\bdelete\b(?!\s*;)(?!\s*\w+\s*\()"),
             "naked delete: ownership must be RAII-managed"),
        ],
    ),
    (
        "float-compare",
        lambda rel: True,
        [
            (re.compile(r"(?:==|!=)\s*[-+]?\s*" + FLOAT_LIT),
             "bitwise ==/!= against a floating-point literal: exact "
             "equality is only sound for sentinels and exact-by-"
             "construction values — compare with a tolerance, or "
             "allowlist the site with a reason "
             "(scripts/alperf_lint_allow.txt)"),
            (re.compile(FLOAT_LIT + r"\s*(?:==|!=)"),
             "bitwise ==/!= against a floating-point literal: exact "
             "equality is only sound for sentinels and exact-by-"
             "construction values — compare with a tolerance, or "
             "allowlist the site with a reason "
             "(scripts/alperf_lint_allow.txt)"),
        ],
    ),
]


def strip_comments_and_strings(text):
    """Blanks out comments, string and char literals, preserving newlines
    (and therefore line numbers). Handles //, /* */, "..." with escapes,
    '...' and R"tag(...)tag" raw strings."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i = min(i + 2, n)
        elif c == "R" and nxt == '"':
            close = text.find("(", i + 2)
            if close == -1:
                i += 1
                continue
            tag = ")" + text[i + 2:close] + '"'
            end = text.find(tag, close)
            end = n if end == -1 else end + len(tag)
            out.append("\n" * text.count("\n", i, end))
            i = end
        elif c == '"' or c == "'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                i += 2 if text[i] == "\\" else 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def collect_inline_allows(raw_lines, stripped_lines):
    """Maps (line number, rule) pairs suppressed by inline allow comments.
    An allow covers its own line and the next line containing code."""
    allowed = set()
    for idx, line in enumerate(raw_lines):
        for rule in ALLOW_RE.findall(line):
            allowed.add((idx + 1, rule))
            for j in range(idx + 1, len(stripped_lines)):
                if stripped_lines[j].strip():
                    allowed.add((j + 1, rule))
                    break
    return allowed


def load_allowlist(path):
    entries = []
    if not path or not os.path.isfile(path):
        return entries
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split(None, 1)
            if len(parts) != 2:
                print(f"{path}:{lineno}: malformed allowlist entry "
                      f"(want: <rule> <path-glob>)", file=sys.stderr)
                sys.exit(2)
            entries.append((parts[0], parts[1]))
    return entries


def allowlisted(entries, rule, relpath):
    return any((r == "*" or r == rule) and fnmatch.fnmatch(relpath, glob)
               for r, glob in entries)


def lint_file(root, relpath, allowlist):
    """Returns a list of (relpath, line, rule, message) findings."""
    with open(os.path.join(root, relpath), encoding="utf-8",
              errors="replace") as fh:
        raw = fh.read()
    raw_lines = raw.splitlines()
    stripped = strip_comments_and_strings(raw)
    stripped_lines = stripped.splitlines()
    inline_allows = collect_inline_allows(raw_lines, stripped_lines)

    findings = []

    def report(lineno, rule, message):
        if (lineno, rule) in inline_allows:
            return
        if allowlisted(allowlist, rule, relpath):
            return
        findings.append((relpath, lineno, rule, message))

    rel = relpath.replace(os.sep, "/")
    for rule, in_scope, patterns in SIMPLE_RULES:
        if not in_scope(rel):
            continue
        for regex, message in patterns:
            for idx, line in enumerate(stripped_lines):
                if regex.search(line):
                    report(idx + 1, rule, message)

    if in_dirs(rel, ["src"]):
        guarded = set(GUARDED_BY_RE.findall(stripped))
        for idx, line in enumerate(stripped_lines):
            m = MUTEX_DECL_RE.search(line)
            if m and m.group(1) not in guarded:
                report(idx + 1, "guarded-mutex",
                       f"mutex member '{m.group(1)}' guards nothing: "
                       f"annotate the fields it protects with "
                       f"ALPERF_GUARDED_BY({m.group(1)}) "
                       f"(see common/thread_annotations.hpp)")
    return findings


def iter_source_files(root, paths):
    for path in paths:
        abspath = os.path.join(root, path)
        if os.path.isfile(abspath):
            if path.endswith(EXTENSIONS):
                yield path
            continue
        for dirpath, dirnames, filenames in os.walk(abspath):
            rel_dir = os.path.relpath(dirpath, root).replace(os.sep, "/")
            if any(rel_dir == d or rel_dir.startswith(d + "/")
                   for d in EXCLUDED_DIRS):
                dirnames[:] = []
                continue
            for name in sorted(filenames):
                if name.endswith(EXTENSIONS):
                    yield os.path.relpath(os.path.join(dirpath, name), root)


def run_lint(root, paths, allowlist_path):
    allowlist = load_allowlist(allowlist_path)
    findings = []
    nfiles = 0
    for relpath in iter_source_files(root, paths):
        nfiles += 1
        findings.extend(lint_file(root, relpath, allowlist))
    findings.sort()
    for relpath, lineno, rule, message in findings:
        print(f"{relpath}:{lineno}: [{rule}] {message}")
    status = "clean" if not findings else f"{len(findings)} finding(s)"
    print(f"alperf-lint: {nfiles} file(s), {status}")
    return 1 if findings else 0


# ----------------------------------------------------------- self-test

SELF_TEST_CASES = [
    # (relpath, content, rule expected to fire)
    ("src/core/bad_rng.cpp",
     "#include <cstdlib>\nint f() { return std::rand(); }\n",
     "banned-rng"),
    ("bench/bad_seed.cpp",
     "#include <random>\nstd::random_device rd;\n",
     "banned-rng"),
    ("src/gp/bad_map.hpp",
     "#include <unordered_map>\nstd::unordered_map<int, int> cache;\n",
     "unordered-iteration"),
    ("src/la/bad_print.cpp",
     "#include <iostream>\nvoid f() { std::cout << 1; }\n",
     "cout"),
    ("src/core/bad_new.cpp",
     "int* f() { return new int(7); }\n",
     "naked-new"),
    ("src/common/bad_mutex.hpp",
     "#include <mutex>\nstruct S { std::mutex mu; int x = 0; };\n",
     "guarded-mutex"),
    ("src/gp/bad_eq.cpp",
     "bool converged(double delta) { return delta == 0.0; }\n",
     "float-compare"),
    ("tests/bad_eq_literal_first.cpp",
     "bool hit(double p) { return 1e-3 != p; }\n",
     "float-compare"),
]

SELF_TEST_CLEAN = (
    "src/core/clean.cpp",
    "// std::rand() in a comment must not fire\n"
    "// and neither must \"std::cout\" in a string:\n"
    "#include <string>\n"
    "std::string s() { return \"std::cout << new int;\"; }\n",
)


def self_test():
    failures = []

    def check(name, ok):
        print(f"  {'ok' if ok else 'FAIL'}: {name}")
        if not ok:
            failures.append(name)

    with tempfile.TemporaryDirectory(prefix="alperf_lint_selftest_") as root:
        for relpath, content, rule in SELF_TEST_CASES:
            os.makedirs(os.path.join(root, os.path.dirname(relpath)),
                        exist_ok=True)
            with open(os.path.join(root, relpath), "w",
                      encoding="utf-8") as fh:
                fh.write(content)
        relpath, content = SELF_TEST_CLEAN
        os.makedirs(os.path.join(root, os.path.dirname(relpath)),
                    exist_ok=True)
        with open(os.path.join(root, relpath), "w", encoding="utf-8") as fh:
            fh.write(content)

        for rel, _, rule in SELF_TEST_CASES:
            findings = lint_file(root, rel, [])
            check(f"{rule} fires in {rel}",
                  any(f[2] == rule for f in findings))

        check("clean file stays clean",
              not lint_file(root, SELF_TEST_CLEAN[0], []))

        # Inline allow: same line and preceding-comment-line forms.
        rel = "src/core/allowed_new.cpp"
        with open(os.path.join(root, rel), "w", encoding="utf-8") as fh:
            fh.write("// alperf-lint: allow(naked-new) singleton leak\n"
                     "int* g = new int(1);\n"
                     "int* h = new int(2);  // alperf-lint: allow(naked-new)\n")
        check("inline allows suppress naked-new",
              not lint_file(root, rel, []))

        # Allowlist suppression.
        bad_rel = SELF_TEST_CASES[0][0]
        check("allowlist suppresses banned-rng",
              not lint_file(root, bad_rel, [("banned-rng", bad_rel)]))
        check("wildcard allowlist suppresses everything",
              not lint_file(root, bad_rel, [("*", "src/core/*")]))
        check("unrelated allowlist entry does not suppress",
              bool(lint_file(root, bad_rel, [("cout", bad_rel)])))

    if failures:
        print(f"alperf-lint self-test: {len(failures)} FAILURE(S)")
        return 1
    print("alperf-lint self-test: all checks passed")
    return 0


def main():
    parser = argparse.ArgumentParser(
        prog="alperf_lint.py",
        description="alperf determinism & hygiene lint "
                    "(docs/STATIC_ANALYSIS.md)")
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--allowlist", default=None,
                        help="allowlist file "
                             "(default: scripts/alperf_lint_allow.txt)")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--self-test", action="store_true")
    parser.add_argument("paths", nargs="*",
                        help=f"files/dirs relative to root "
                             f"(default: {' '.join(DEFAULT_PATHS)})")
    args = parser.parse_args()

    if args.list_rules:
        for rule, _, patterns in SIMPLE_RULES:
            print(f"{rule}: {patterns[0][1]}")
        print("guarded-mutex: every mutex member in src/ must have "
              "ALPERF_GUARDED_BY coverage in its file")
        return 0

    if args.self_test:
        return self_test()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    paths = args.paths or [p for p in DEFAULT_PATHS
                           if os.path.isdir(os.path.join(root, p))]
    allowlist_path = args.allowlist or os.path.join(
        root, "scripts", "alperf_lint_allow.txt")
    return run_lint(root, paths, allowlist_path)


if __name__ == "__main__":
    sys.exit(main())
