// Energy modeling from IPMI power traces — the paper's second response
// variable (total consumed energy in Joules).
//
// Walks the full power pipeline: simulate a job campaign, sample gappy
// IPMI node traces, integrate per-job energy with the exclusion rule,
// then build a cost-aware GP model of log-energy over (size, NP, freq)
// with active learning, and use it to answer a practical question: which
// DVFS frequency minimizes predicted energy for a given problem size?
//
//   ./build/examples/energy_model

#include <cmath>
#include <cstdio>

#include "cluster/dataset.hpp"
#include "core/learner.hpp"
#include "gp/kernels.hpp"

namespace al = alperf::al;
namespace cl = alperf::cluster;
namespace gp = alperf::gp;
using alperf::stats::Rng;

int main() {
  // 1. Campaign + power pipeline (reduced size for a quick demo).
  cl::DatasetConfig dcfg;
  dcfg.sizes = {13824.0,     110592.0,    884736.0,   7.077888e6,
                5.6623104e7, 4.52984832e8};
  dcfg.npLevels = {1, 4, 16, 32, 64};
  dcfg.targetJobs = 800;
  dcfg.seed = 5;
  const auto ds = cl::DatasetGenerator(dcfg).generate();
  std::printf("campaign: %zu jobs, %zu with valid IPMI energy estimates "
              "(%.0f%% excluded for trace gaps)\n",
              ds.performance.numRows(), ds.power.numRows(),
              100.0 * (1.0 - static_cast<double>(ds.power.numRows()) /
                                 static_cast<double>(
                                     ds.performance.numRows())));

  // 2. Energy problem over the poisson2 jobs: features (log size, NP,
  //    freq), response log energy, cost = runtime (waiting time to learn).
  auto sub = ds.power.filter([&](std::size_t i) {
    return ds.power.categorical("Operator")[i] == "poisson2";
  });
  std::printf("modeling %zu poisson2 jobs with energy labels\n",
              sub.numRows());
  const auto problem = al::makeProblem(
      sub, {"GlobalSize", "NP", "FreqGHz"}, "EnergyJ", "RuntimeS",
      {"GlobalSize", "EnergyJ"});

  // 3. Cost-aware AL on the energy response.
  gp::GpConfig gpCfg;
  gpCfg.noise.lo = 1e-2;  // energy estimates are noisy (sensor bias)
  gpCfg.nRestarts = 1;
  gp::GaussianProcess proto(
      gp::makeSquaredExponentialArd(1.0, {1.0, 1.0, 1.0}), gpCfg);
  al::AlConfig alCfg;
  alCfg.maxIterations = 50;
  al::ActiveLearner learner(problem, proto,
                            std::make_unique<al::CostEfficiency>(), alCfg);
  Rng rng(3);
  const auto result = learner.run(rng);
  std::printf("after %zu adaptively chosen experiments: test RMSE %.3f "
              "log10-Joules (%.0f core-agnostic seconds of experiments)\n",
              result.history.size(), result.history.back().rmse,
              result.history.back().cumulativeCost);

  // 4. Practical query: energy-optimal frequency for a long compute-
  //    dominated job (size 4.5e8 at NP = 4). For short jobs the idle
  //    draw over the fixed allocation window dominates and frequency is
  //    irrelevant; here the race-to-idle effect is visible.
  std::printf("\npredicted energy for size 4.5e8, NP=4 (95%% CI):\n");
  std::printf("%-10s %-14s %-24s\n", "freq GHz", "energy J", "CI");
  double bestFreq = 0.0, bestEnergy = 1e300;
  for (double f : {1.2, 1.5, 1.8, 2.1, 2.4}) {
    const std::vector<double> x{std::log10(4.52984832e8), 4.0, f};
    const auto [mean, var] = result.finalGp.predictOne(x);
    const double e = std::pow(10.0, mean);
    std::printf("%-10.1f %-14.1f [%.1f .. %.1f]\n", f, e,
                std::pow(10.0, mean - 2.0 * std::sqrt(var)),
                std::pow(10.0, mean + 2.0 * std::sqrt(var)));
    if (e < bestEnergy) {
      bestEnergy = e;
      bestFreq = f;
    }
  }
  std::printf("\n=> predicted energy-optimal frequency: %.1f GHz (on this "
              "idle-heavy machine, racing to idle wins; differences shrink "
              "for short jobs where the allocation window dominates)\n",
              bestFreq);
  return 0;
}
