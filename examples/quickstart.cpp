// Quickstart: the whole alperf pipeline on a toy 1-D problem in ~80
// lines — build a job database, wrap it as a RegressionProblem, run
// GPR-driven active learning, and inspect the learning trace.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cmath>
#include <cstdio>

#include "core/learner.hpp"
#include "gp/kernels.hpp"

namespace al = alperf::al;
namespace gp = alperf::gp;
using alperf::stats::Rng;

int main() {
  // 1. A synthetic "benchmark": runtime grows exponentially with the
  //    problem-scale knob x, with 3% multiplicative noise. In real use
  //    this would come from your measurement campaign (see the other
  //    examples for the full cluster pipeline).
  const std::size_t nJobs = 60;
  Rng dataRng(1);
  al::RegressionProblem problem;
  problem.x = alperf::la::Matrix(nJobs, 1);
  problem.y.resize(nJobs);
  problem.cost.resize(nJobs);
  for (std::size_t i = 0; i < nJobs; ++i) {
    const double x = 10.0 * static_cast<double>(i) / (nJobs - 1);
    const double runtime =
        0.01 * std::pow(10.0, 0.25 * x) * dataRng.lognormal(0.0, 0.03);
    problem.x(i, 0) = x;
    problem.y[i] = std::log10(runtime);  // model log-runtime
    problem.cost[i] = runtime;           // pay linear runtime per query
  }
  problem.featureNames = {"scale"};
  problem.responseName = "log10(runtime)";

  // 2. A GP prior: squared-exponential kernel (the paper's eq. 11) with
  //    a conservative noise floor (the paper's Fig. 7 lesson).
  gp::GpConfig gpCfg;
  gpCfg.noise.lo = 1e-2;
  gpCfg.nRestarts = 2;
  gp::GaussianProcess prototype(gp::makeSquaredExponential(1.0, 1.0),
                                gpCfg);

  // 3. Active learning: seed with 1 job, let Cost Efficiency (eq. 14)
  //    choose the rest, stop when the pool's mean predictive SD (AMSD)
  //    plateaus.
  al::AlConfig alCfg;
  alCfg.nInitial = 1;
  alCfg.activeFraction = 0.8;
  alCfg.amsdWindow = 5;
  alCfg.amsdRelTol = 0.02;
  al::ActiveLearner learner(problem, prototype,
                            std::make_unique<al::CostEfficiency>(), alCfg);

  Rng rng(7);
  const al::AlResult result = learner.run(rng);

  // 4. Inspect the trace.
  std::printf("%-5s %-10s %-10s %-10s %-12s\n", "iter", "sigma", "AMSD",
              "RMSE", "cum. cost");
  for (const auto& rec : result.history)
    std::printf("%-5d %-10.4f %-10.4f %-10.4f %-12.4f\n", rec.iteration,
                rec.sigmaAtPick, rec.amsd, rec.rmse, rec.cumulativeCost);

  const char* reason =
      result.stopReason == al::StopReason::AmsdConverged ? "AMSD converged"
      : result.stopReason == al::StopReason::PoolExhausted
          ? "pool exhausted"
          : "iteration/budget limit";
  std::printf("\nstopped after %zu experiments (%s); final test RMSE %.4f "
              "log10-seconds for %.2f seconds of total experiment cost\n",
              result.history.size(), reason, result.history.back().rmse,
              result.history.back().cumulativeCost);

  // 5. The final model is a regular GP: query it anywhere.
  const auto [mean, var] =
      result.finalGp.predictOne(std::vector<double>{5.5});
  std::printf("predicted runtime at scale 5.5: %.4f s (95%% CI %.4f .. "
              "%.4f)\n",
              std::pow(10.0, mean),
              std::pow(10.0, mean - 2.0 * std::sqrt(var)),
              std::pow(10.0, mean + 2.0 * std::sqrt(var)));
  return 0;
}
