// Fault-tolerant campaign: active learning against a cluster backend
// that crashes and walltime-kills jobs, with a mid-campaign checkpoint
// and a bit-for-bit resume — the workflow for long campaigns on shared
// machines where both the jobs and the driving process can die.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/fault_tolerant_campaign

#include <cmath>
#include <cstdio>

#include "cluster/scheduler.hpp"
#include "core/checkpoint.hpp"
#include "core/learner.hpp"
#include "gp/kernels.hpp"

namespace al = alperf::al;
namespace cl = alperf::cluster;
namespace gp = alperf::gp;
using alperf::Measurement;
using alperf::stats::Rng;

int main() {
  // 1. The design space: HPGMG-FE problem sizes at NP = 32. The "true"
  //    responses come from the simulated cluster below, but the planner
  //    needs candidate rows, their features, and a cost estimate up
  //    front (the paper's job database without the measurements).
  cl::ClusterConfig cluster;
  cluster.failureProbability = 0.15;  // flaky nodes
  cluster.maxRetries = 1;             // the scheduler requeues once
  cluster.enforceWalltime = true;     // overruns are killed, not retried
  cluster.walltimeMargin = 1.5;
  const cl::PerfModel model{cl::PerfModelParams{}};

  const std::size_t nRows = 48;
  al::RegressionProblem problem;
  problem.x = alperf::la::Matrix(nRows, 1);
  problem.y.resize(nRows);
  problem.cost.resize(nRows);
  std::vector<cl::JobRequest> requests(nRows);
  for (std::size_t i = 0; i < nRows; ++i) {
    cl::JobRequest req;
    req.globalSize = 2.0e5 * std::pow(1.18, static_cast<double>(i));
    req.np = 32;
    requests[i] = req;
    problem.x(i, 0) = std::log10(req.globalSize);
    // Planner-side estimates; the fallible oracle supplies the truth.
    problem.y[i] = std::log10(model.meanRuntime(req));
    problem.cost[i] = model.meanRuntime(req) * 32.0;
  }
  problem.featureNames = {"log10(dofs)"};
  problem.responseName = "log10(runtime)";

  // 2. The fallible oracle: each pick becomes a real (simulated) job.
  //    Crashed-out jobs come back Failed, walltime kills come back
  //    Censored with a lower bound; the executor layer retries, charges
  //    waste, and quarantines hopeless rows.
  std::uint64_t jobSeed = 1000;
  const al::FallibleRowOracle oracle = [&](std::size_t row) {
    Measurement m = cl::measureJob(cluster, model, requests[row], ++jobSeed);
    if (m.usable()) m.y = std::log10(m.y);  // model log-runtime
    return m;
  };
  al::RetryPolicy policy;
  policy.maxRetries = 1;
  policy.backoffCostBase = 100.0;  // core-seconds per requeue

  gp::GpConfig gpCfg;
  gpCfg.noise.lo = 1e-2;
  gpCfg.nRestarts = 2;
  al::AlConfig alCfg;
  alCfg.nInitial = 2;
  alCfg.maxIterations = 10;  // "the process dies after 10 picks"
  const al::ActiveLearner firstHalf(
      problem, gp::GaussianProcess(gp::makeSquaredExponential(1.0, 1.0), gpCfg),
      std::make_unique<al::CostEfficiency>(), alCfg);

  // 3. First half of the campaign, then checkpoint to disk.
  Rng rng(7);
  const auto partial = firstHalf.runFallible(oracle, policy, rng);
  al::saveCheckpoint(partial.checkpoint, "fault_tolerant_campaign_ckpt");
  std::printf("after %zu iterations: %zu trained, %zu quarantined, "
              "%.0f core-s spent (%.0f wasted)\n",
              partial.history.size(), partial.checkpoint.train.size(),
              partial.quarantined().size(),
              partial.checkpoint.cumulativeCost,
              partial.history.empty()
                  ? 0.0
                  : [&] {
                      double w = 0.0;
                      for (const auto& r : partial.history)
                        w += r.wastedCost;
                      return w;
                    }());

  // 4. "Restart": load the checkpoint and continue to 25 iterations. The
  //    resumed trace is bit-for-bit what an uninterrupted run would have
  //    produced, because the checkpoint carries the RNG state and the
  //    last good GP hyperparameters.
  alCfg.maxIterations = 25;
  const al::ActiveLearner secondHalf(
      problem, gp::GaussianProcess(gp::makeSquaredExponential(1.0, 1.0), gpCfg),
      std::make_unique<al::CostEfficiency>(), alCfg);
  const auto loaded = al::loadCheckpoint("fault_tolerant_campaign_ckpt");
  Rng resumeRng(0);  // overwritten by the checkpoint's saved state
  const auto result =
      secondHalf.resumeFallible(loaded, oracle, policy, resumeRng);

  std::printf("\n%-5s %-10s %-10s %-8s %-8s %-12s\n", "iter", "AMSD",
              "RMSE", "retries", "cens.", "cum. cost");
  for (const auto& rec : result.history)
    std::printf("%-5d %-10.4f %-10.4f %-8.0f %-8.0f %-12.0f\n",
                rec.iteration, rec.amsd, rec.rmse, rec.failedAttempts,
                rec.censored, rec.cumulativeCost);

  std::printf("\nstop: %s; %zu rows quarantined; %d refit fallback(s)\n",
              al::toString(result.stopReason).c_str(),
              result.quarantined().size(), result.fitFallbacks);
  return 0;
}
