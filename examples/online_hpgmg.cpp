// Online active learning driving the real mini-HPGMG solver — the
// paper's target use case (Sec. VI): "the target use case is 'online'
// where the next experiment must be scheduled".
//
// The candidate space is (grid size, operator, smoother sweeps). Each AL
// iteration the GP proposes the configuration with the highest predictive
// uncertainty about log-runtime, the solver ACTUALLY RUNS, and the
// measured wall time feeds back into the model. No pre-recorded dataset
// is involved.
//
//   ./build/examples/online_hpgmg

#include <cmath>
#include <cstdio>
#include <vector>

#include "gp/gp.hpp"
#include "gp/kernels.hpp"
#include "hpgmg/benchmark.hpp"

namespace gp = alperf::gp;
namespace hp = alperf::hpgmg;
namespace la = alperf::la;
using alperf::stats::Rng;

namespace {

struct Config {
  int n;                  // grid points per dimension (2^k - 1)
  hp::StencilType type;
  int smooth;             // pre/post smoothing sweeps

  std::vector<double> features() const {
    return {std::log10(static_cast<double>(n) * n * n),
            type == hp::StencilType::Poisson1 ? 0.0 : 1.0,
            static_cast<double>(smooth)};
  }
};

double runOnce(const Config& c) {
  hp::MgOptions opt;
  opt.preSmooth = c.smooth;
  opt.postSmooth = c.smooth;
  const auto result = hp::runBenchmark(c.type, c.n, opt);
  return result.seconds;
}

}  // namespace

int main() {
  // Candidate pool: the cross product of sizes, operators and smoothing.
  std::vector<Config> pool;
  for (int n : {7, 15, 31})
    for (auto t : {hp::StencilType::Poisson1, hp::StencilType::Poisson2,
                   hp::StencilType::Poisson2Affine})
      for (int smooth : {1, 2, 3}) pool.push_back({n, t, smooth});
  std::printf("online AL over %zu runnable HPGMG configurations\n",
              pool.size());

  gp::GpConfig cfg;
  cfg.nRestarts = 1;
  cfg.noise.lo = 1e-3;  // wall-clock timing is noisy
  gp::GaussianProcess model(
      gp::makeSquaredExponentialArd(1.0, {1.0, 1.0, 1.0}), cfg);
  Rng rng(1);

  // Seed: run the first configuration once ("verify correctness" run).
  std::vector<std::vector<double>> xs{pool.front().features()};
  std::vector<double> ys{std::log10(std::max(runOnce(pool.front()), 1e-7))};
  std::vector<std::size_t> remaining;
  for (std::size_t i = 1; i < pool.size(); ++i) remaining.push_back(i);

  std::printf("%-5s %-6s %-16s %-7s %-12s %-10s\n", "iter", "grid",
              "operator", "smooth", "measured(s)", "sigma");
  const int budget = 12;  // run only 12 of the 26 remaining configs
  double totalMeasureTime = ys.empty() ? 0.0 : std::pow(10.0, ys[0]);
  for (int iter = 0; iter < budget && !remaining.empty(); ++iter) {
    // Refit on everything measured so far.
    la::Matrix trainX(xs.size(), 3);
    la::Vector trainY(ys.begin(), ys.end());
    for (std::size_t i = 0; i < xs.size(); ++i)
      std::copy(xs[i].begin(), xs[i].end(), trainX.row(i).begin());
    model.fit(std::move(trainX), std::move(trainY), rng);

    // Acquisition: variance reduction over the remaining configs.
    std::size_t best = 0;
    double bestVar = -1.0;
    for (std::size_t i = 0; i < remaining.size(); ++i) {
      const auto [m, v] =
          model.predictOne(pool[remaining[i]].features());
      if (v > bestVar) {
        bestVar = v;
        best = i;
      }
    }
    const Config& chosen = pool[remaining[best]];

    // Actually run the benchmark.
    const double seconds = runOnce(chosen);
    totalMeasureTime += seconds;
    std::printf("%-5d %-6d %-16s %-7d %-12.5f %-10.4f\n", iter, chosen.n,
                chosen.type == hp::StencilType::Poisson1 ? "poisson1"
                : chosen.type == hp::StencilType::Poisson2
                    ? "poisson2"
                    : "poisson2affine",
                chosen.smooth, seconds, std::sqrt(bestVar));
    xs.push_back(chosen.features());
    ys.push_back(std::log10(std::max(seconds, 1e-7)));
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(best));
  }

  // Validate the learned model on the configurations never run.
  la::Matrix trainX(xs.size(), 3);
  la::Vector trainY(ys.begin(), ys.end());
  for (std::size_t i = 0; i < xs.size(); ++i)
    std::copy(xs[i].begin(), xs[i].end(), trainX.row(i).begin());
  model.fit(std::move(trainX), std::move(trainY), rng);

  double err = 0.0;
  for (std::size_t i : remaining) {
    const double actual = runOnce(pool[i]);
    const auto [m, v] = model.predictOne(pool[i].features());
    const double e = m - std::log10(std::max(actual, 1e-7));
    err += e * e;
  }
  std::printf("\nmodel built from %zu measured runs (%.3f s of benchmark "
              "time); held-out log10-RMSE over the %zu never-run configs: "
              "%.3f\n",
              xs.size(), totalMeasureTime, remaining.size(),
              remaining.empty() ? 0.0
                                : std::sqrt(err / remaining.size()));
  return 0;
}
