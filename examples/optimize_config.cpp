// Configuration optimization — the OTHER mode of GP-driven search (the
// paper's Sec. II-C contrast with the Response Surface Method).
//
// Instead of characterizing the whole (NP, frequency) space, hunt the
// single configuration that minimizes runtime for a fixed problem size,
// using Expected Improvement over the simulated campaign data. Then show
// the flip side: how little the optimizer's model knows about the rest of
// the space compared to a characterization run of the same budget.
//
//   ./build/examples/optimize_config

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "cluster/dataset.hpp"
#include "core/learner.hpp"
#include "core/optimize.hpp"
#include "gp/kernels.hpp"

namespace al = alperf::al;
namespace cl = alperf::cluster;
namespace gp = alperf::gp;
using alperf::stats::Rng;

int main() {
  // Campaign slice: poisson2 at a fixed large size; vary (NP, freq).
  cl::DatasetConfig dcfg;
  dcfg.sizes = {5.6623104e7};
  dcfg.targetJobs = 300;
  dcfg.seed = 9;
  const auto ds = cl::DatasetGenerator(dcfg).generate();
  auto slice = ds.performance.filter([&](std::size_t i) {
    return ds.performance.categorical("Operator")[i] == "poisson2";
  });
  std::printf("pool: %zu poisson2 jobs at size 5.7e7 over (NP, freq)\n",
              slice.numRows());
  const auto problem =
      al::makeProblem(slice, {"NP", "FreqGHz"}, "RuntimeS", "RuntimeS",
                      {"RuntimeS"});

  gp::GpConfig gpCfg;
  gpCfg.nRestarts = 1;
  gpCfg.noise.lo = 1e-3;
  gp::GaussianProcess proto(gp::makeSquaredExponentialArd(1.0, {1.0, 1.0}),
                            gpCfg);

  // Optimize: find the fastest configuration in 12 experiments.
  al::ExpectedImprovement ei;
  Rng rng(21);
  const auto result = al::minimizeResponse(problem, proto, ei, 2, 10, rng);

  std::printf("\n%-5s %-8s %-10s %-14s %-14s\n", "iter", "NP", "freq",
              "runtime (s)", "best so far");
  for (const auto& rec : result.history)
    std::printf("%-5d %-8.0f %-10.1f %-14.4f %-14.4f\n", rec.iteration,
                problem.x(rec.chosenRow, 0), problem.x(rec.chosenRow, 1),
                std::pow(10.0, rec.observed),
                std::pow(10.0, rec.bestSoFar));

  const double trueBest =
      *std::min_element(problem.y.begin(), problem.y.end());
  std::printf("\nbest found: NP=%.0f, f=%.1f GHz -> %.4f s (true optimum "
              "%.4f s) using %zu of %zu experiments\n",
              problem.x(result.bestRow, 0), problem.x(result.bestRow, 1),
              std::pow(10.0, result.bestValue), std::pow(10.0, trueBest),
              result.history.size() + 2, problem.size());

  std::printf("\nCaveat (the paper's point): an optimizer's model is only "
              "good near the optimum.\nFor predictions anywhere in the "
              "space — 'estimating performance and energy usage' —\nuse "
              "the characterization strategies (see offline_campaign and "
              "bench_ablation_optimization).\n");
  return 0;
}
