// Offline campaign analysis — the paper's primary scenario.
//
// Generates a full HPGMG-FE-style measurement campaign with the cluster
// simulator (3246 jobs; the stand-in for the paper's CloudLab database),
// exports it to CSV, then compares the Variance Reduction and Cost
// Efficiency strategies on a 2-D slice and prints the cost-error
// tradeoff, mirroring how a practitioner would choose a strategy for a
// cost-limited study.
//
//   ./build/examples/offline_campaign [output_dir]

#include <cstdio>
#include <string>

#include "cluster/dataset.hpp"
#include "core/tradeoff.hpp"
#include "data/csv.hpp"
#include "gp/kernels.hpp"

namespace al = alperf::al;
namespace cl = alperf::cluster;
namespace gp = alperf::gp;

int main(int argc, char** argv) {
  // 1. Run the measurement campaign (deterministic, seed 42).
  std::printf("generating campaign (3246 jobs on the simulated 4-node "
              "cluster)...\n");
  const cl::GeneratedDataset ds = cl::DatasetGenerator().generate();
  std::printf("  %zu performance jobs, %zu with valid IPMI energy, "
              "makespan %.1f h\n",
              ds.performance.numRows(), ds.power.numRows(),
              ds.makespan / 3600.0);

  // 2. Optionally export the job database (the paper publishes CSVs too).
  if (argc > 1) {
    const std::string dir = argv[1];
    alperf::data::writeCsv(ds.performance, dir + "/performance.csv");
    alperf::data::writeCsv(ds.power, dir + "/power.csv");
    std::printf("  wrote %s/performance.csv and %s/power.csv\n",
                dir.c_str(), dir.c_str());
  }

  // 3. Build the regression problem for one operator/NP slice:
  //    features (log10 size, frequency), response log10 runtime, cost in
  //    core-seconds.
  auto slice = ds.performance.filter([&](std::size_t i) {
    return ds.performance.categorical("Operator")[i] == "poisson1" &&
           ds.performance.numeric("NP")[i] == 32.0;
  });
  std::vector<double> coreSeconds(slice.numRows());
  for (std::size_t i = 0; i < slice.numRows(); ++i)
    coreSeconds[i] =
        slice.numeric("RuntimeS")[i] * slice.numeric("CoresUsed")[i];
  slice.addNumeric("CostCoreS", std::move(coreSeconds));
  const auto problem =
      al::makeProblem(slice, {"GlobalSize", "FreqGHz"}, "RuntimeS",
                      "CostCoreS", {"GlobalSize", "RuntimeS"});
  std::printf("  slice poisson1/NP=32: %zu jobs\n", problem.size());

  // 4. Paired comparison over 15 random partitions.
  gp::GpConfig gpCfg;
  gpCfg.noise.lo = 1e-1;
  gpCfg.nRestarts = 1;
  gpCfg.optStop.maxIterations = 30;
  gp::GaussianProcess proto(gp::makeSquaredExponentialArd(1.0, {1.0, 1.0}),
                            gpCfg);

  al::BatchConfig cfg;
  cfg.replicates = 15;
  cfg.al.refitEvery = 3;
  const auto results = al::runPairedBatch(
      problem, proto,
      {[] { return std::make_unique<al::VarianceReduction>(); },
       [] { return std::make_unique<al::CostEfficiency>(); }},
      cfg);

  // 5. Decision aid: the cost-error tradeoff.
  const auto vrCurve = al::aggregateTradeoff(results[0]);
  const auto ceCurve = al::aggregateTradeoff(results[1]);
  std::printf("\ncost-error tradeoff (core-seconds -> RMSE in log10 s):\n");
  std::printf("%-14s %-14s %-14s\n", "budget", "VarianceRed.",
              "CostEfficiency");
  for (double budget = vrCurve.cost.front(); budget <= vrCurve.cost.back();
       budget *= 2.0)
    std::printf("%-14.1f %-14.4f %-14.4f\n", budget,
                vrCurve.errorAt(budget), ceCurve.errorAt(budget));

  const auto report = al::compareTradeoffs(vrCurve, ceCurve);
  if (report.found) {
    std::printf("\nCost Efficiency dominates beyond %.1f core-seconds "
                "(max error reduction %.0f%%)\n",
                report.crossoverCost, 100.0 * report.maxReduction);
    std::printf("=> for a budget-limited study on this slice, prefer Cost "
                "Efficiency once the budget exceeds ~%.0f core-seconds.\n",
                report.crossoverCost);
  } else {
    std::printf("\nno crossover in the covered budget range: Variance "
                "Reduction remains preferable here.\n");
  }
  return 0;
}
