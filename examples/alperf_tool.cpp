// alperf_tool — command-line driver for the library's main workflows, so
// a measurement campaign can be analyzed without writing C++:
//
//   alperf_tool generate --out DIR [--jobs N] [--seed S]
//       Run the simulated Table-I campaign and write performance.csv /
//       power.csv job databases.
//
//   alperf_tool learn --data CSV --features A,B --response R
//                     [--cost C] [--log A,R] [--strategy vr|ce|random]
//                     [--iterations N] [--noise-lo X] [--seed S]
//                     [--trace OUT.csv|OUT.json] [--metrics OUT.jsonl]
//                     [--perf] [--health] [--no-pool-cache]
//       Run GPR-driven active learning over the job database and report
//       the learning trace and final model quality; --perf appends the
//       perf-counter JSON (see docs/PERFORMANCE.md), --health the
//       numerical-health report (see docs/ROBUSTNESS.md). --trace
//       dispatches on extension: a .json path arms the structured tracer
//       and exports a Chrome trace-event timeline of the campaign
//       (chrome://tracing / Perfetto; docs/OBSERVABILITY.md), anything
//       else writes the per-iteration learning trace as CSV. --metrics
//       writes a JSON-lines snapshot of the perf counters and health
//       incidents after the run.
//
//   alperf_tool tradeoff --data CSV --features A,B --response R --cost C
//                        [--log ...] [--replicates R] [--seed S]
//       Paired Variance-Reduction vs Cost-Efficiency comparison with the
//       cost-error crossover report (the paper's Fig. 8b as a tool).

#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "alperf.hpp"

namespace al = alperf::al;
namespace cl = alperf::cluster;
namespace data = alperf::data;
namespace gp = alperf::gp;
using alperf::stats::Rng;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  bool has(const std::string& key) const { return options.count(key) > 0; }
};

Args parse(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0)
      throw std::invalid_argument("expected --option, got '" + key + "'");
    // Options take one value; a trailing option or one followed by another
    // --option is a boolean flag (e.g. --perf).
    std::string value;
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0)
      value = argv[++i];
    args.options[key.substr(2)] = value;
  }
  return args;
}

std::vector<std::string> splitCsvList(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

void usage() {
  std::printf(
      "usage:\n"
      "  alperf_tool generate --out DIR [--jobs N] [--seed S]\n"
      "  alperf_tool learn --data CSV --features A,B --response R\n"
      "                    [--cost C] [--log A,R] [--strategy vr|ce|random]\n"
      "                    [--iterations N] [--noise-lo X] [--seed S]\n"
      "                    [--trace OUT.csv|OUT.json (.json = Chrome trace)]\n"
      "                    [--metrics OUT.jsonl] [--perf] [--health]\n"
      "                    [--no-pool-cache] [--in-flight N]\n"
      "  alperf_tool tradeoff --data CSV --features A,B --response R\n"
      "                    --cost C [--log ...] [--replicates R] [--seed S]\n");
}

al::RegressionProblem loadProblem(const Args& args) {
  const data::Table table = data::readCsv(args.get("data", ""));
  const auto features = splitCsvList(args.get("features", ""));
  const std::string response = args.get("response", "");
  if (features.empty() || response.empty())
    throw std::invalid_argument("learn/tradeoff need --features and "
                                "--response");
  return al::makeProblem(table, features, response, args.get("cost", ""),
                         splitCsvList(args.get("log", "")));
}

gp::GaussianProcess makePrototype(const Args& args, std::size_t dims) {
  gp::GpConfig cfg;
  cfg.noise.lo = std::stod(args.get("noise-lo", "1e-1"));
  cfg.noise.initial = std::max(cfg.noise.initial, cfg.noise.lo);
  cfg.nRestarts = 1;
  return gp::GaussianProcess(
      gp::makeSquaredExponentialArd(1.0, std::vector<double>(dims, 1.0)),
      cfg);
}

al::StrategyPtr makeStrategy(const std::string& name) {
  if (name == "vr") return std::make_unique<al::VarianceReduction>();
  if (name == "ce") return std::make_unique<al::CostEfficiency>();
  if (name == "random") return std::make_unique<al::RandomSelection>();
  throw std::invalid_argument("unknown strategy '" + name +
                              "' (use vr, ce or random)");
}

int cmdGenerate(const Args& args) {
  const std::string out = args.get("out", "");
  if (out.empty()) throw std::invalid_argument("generate needs --out DIR");
  cl::DatasetConfig cfg;
  cfg.targetJobs = static_cast<std::size_t>(
      std::stoul(args.get("jobs", "3246")));
  cfg.seed = std::stoull(args.get("seed", "42"));
  std::printf("generating %zu-job campaign (seed %llu)...\n", cfg.targetJobs,
              static_cast<unsigned long long>(cfg.seed));
  const auto ds = cl::DatasetGenerator(cfg).generate();
  data::writeCsv(ds.performance, out + "/performance.csv");
  data::writeCsv(ds.power, out + "/power.csv");
  std::printf("wrote %s/performance.csv (%zu jobs) and %s/power.csv "
              "(%zu jobs with energy)\n",
              out.c_str(), ds.performance.numRows(), out.c_str(),
              ds.power.numRows());
  return 0;
}

int cmdLearn(const Args& args) {
  const auto problem = loadProblem(args);
  std::printf("loaded %zu jobs, %zu features\n", problem.size(),
              problem.dim());

  al::AlConfig cfg;
  cfg.maxIterations = std::stoi(args.get("iterations", "50"));
  cfg.amsdWindow = 8;
  cfg.amsdRelTol = 0.01;
  // Pool posterior cache A/B switch (results are bit-identical either
  // way; --no-pool-cache shows the uncached cost in --perf).
  cfg.poolPredictCache = !args.has("no-pool-cache");
  // Asynchronous dispatch width: N > 1 runs up to N measurements
  // concurrently through al::AsyncDispatcher, selecting against a fantasy
  // posterior. The default 1 is the synchronous engine, bit-identical to
  // previous releases.
  cfg.execution.maxInFlight = std::stoi(args.get("in-flight", "1"));
  // --trace dispatches on extension: .json = structured Chrome trace
  // (armed for the campaign via AlConfig::tracePath), else learning-trace
  // CSV after the run.
  const std::string tracePath = args.get("trace", "");
  const bool chromeTrace =
      tracePath.size() >= 5 &&
      tracePath.compare(tracePath.size() - 5, 5, ".json") == 0;
  if (chromeTrace) cfg.tracePath = tracePath;
  al::ActiveLearner learner(problem, makePrototype(args, problem.dim()),
                            makeStrategy(args.get("strategy", "ce")), cfg);
  Rng rng(std::stoull(args.get("seed", "7")));
  alperf::PerfRegistry::instance().reset();
  alperf::HealthMonitor::instance().reset();
  const auto result = learner.run(rng);

  std::printf("stopped after %zu experiments (%s)\n", result.history.size(),
              al::toString(result.stopReason).c_str());
  if (!result.history.empty()) {
    const auto& last = result.history.back();
    std::printf("final test RMSE %.5f, AMSD %.5f, total cost %.3f\n",
                last.rmse, last.amsd, last.cumulativeCost);
  }
  std::printf("final kernel: %s, sigma_n^2 = %.4g\n",
              result.finalGp.kernel().describe().c_str(),
              result.finalGp.noiseVariance());
  if (args.has("trace")) {
    if (chromeTrace) {
      // The campaign scope already exported on loop exit; just report.
      std::printf("Chrome trace written to %s (load in chrome://tracing "
                  "or https://ui.perfetto.dev)\n",
                  tracePath.c_str());
    } else {
      data::writeCsv(al::historyToTable(result), tracePath);
      std::printf("trace written to %s\n", tracePath.c_str());
    }
  }
  if (args.has("metrics")) {
    const std::string metricsPath = args.get("metrics", "");
    if (alperf::trace::writeMetricsSnapshot(metricsPath))
      std::printf("metrics snapshot written to %s\n", metricsPath.c_str());
    else
      std::printf("error: could not write metrics snapshot to %s\n",
                  metricsPath.c_str());
  }
  if (args.has("perf")) {
    // Dumps every registered counter, which now includes the dense-LA
    // kernels (la.cholesky, la.gemm, la.trsm) and the gram/distance cache
    // (gp.gram.hit/miss, gp.distcache.append/rebuild).
    auto& reg = alperf::PerfRegistry::instance();
    std::printf("perf_stats %s\n", reg.toJson().c_str());
    const double hits = static_cast<double>(reg.count("gp.gram.hit"));
    const double misses = static_cast<double>(reg.count("gp.gram.miss"));
    if (hits + misses > 0.0)
      std::printf("gram cache hit rate %.1f%% (%.0f hit / %.0f miss)\n",
                  100.0 * hits / (hits + misses), hits, misses);
    const double pcHit = static_cast<double>(reg.count("gp.poolcache.hit"));
    const double pcApp =
        static_cast<double>(reg.count("gp.poolcache.append"));
    const double pcReb =
        static_cast<double>(reg.count("gp.poolcache.rebuild"));
    const double pcTotal = pcHit + pcApp + pcReb;
    if (pcTotal > 0.0)
      std::printf(
          "pool cache served %.1f%% without rebuild "
          "(%.0f hit / %.0f append / %.0f rebuild)\n",
          100.0 * (pcHit + pcApp) / pcTotal, pcHit, pcApp, pcReb);
  }
  if (args.has("health")) {
    // Numerical-health report: recovery/containment counter totals plus
    // the ring buffer of recent incidents (docs/ROBUSTNESS.md).
    std::printf("%s", alperf::HealthMonitor::instance().report().c_str());
  }
  return 0;
}

int cmdTradeoff(const Args& args) {
  const auto problem = loadProblem(args);
  if (!args.has("cost"))
    throw std::invalid_argument("tradeoff needs --cost COLUMN");
  std::printf("loaded %zu jobs; paired VR vs CE comparison\n",
              problem.size());

  al::BatchConfig cfg;
  cfg.replicates = std::stoi(args.get("replicates", "10"));
  cfg.seed = std::stoull(args.get("seed", "7"));
  cfg.al.refitEvery = 3;
  const auto results = al::runPairedBatch(
      problem, makePrototype(args, problem.dim()),
      {[] { return std::make_unique<al::VarianceReduction>(); },
       [] { return std::make_unique<al::CostEfficiency>(); }},
      cfg);

  const auto vr = al::aggregateTradeoff(results[0]);
  const auto ce = al::aggregateTradeoff(results[1]);
  std::printf("%-14s %-14s %-14s\n", "budget", "VR error", "CE error");
  for (double c = vr.cost.front(); c <= vr.cost.back(); c *= 2.0)
    std::printf("%-14.2f %-14.5f %-14.5f\n", c, vr.errorAt(c),
                ce.errorAt(c));
  const auto report = al::compareTradeoffs(vr, ce);
  if (report.found) {
    std::printf("\nCost Efficiency dominates beyond budget %.2f "
                "(max error reduction %.0f%% at %.2f)\n",
                report.crossoverCost, 100.0 * report.maxReduction,
                report.maxReductionCost);
  } else {
    std::printf("\nno crossover: Variance Reduction preferable over the "
                "covered budget range\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse(argc, argv);
    if (args.command == "generate") return cmdGenerate(args);
    if (args.command == "learn") return cmdLearn(args);
    if (args.command == "tradeoff") return cmdTradeoff(args);
    usage();
    return args.command.empty() ? 1 : 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    usage();
    return 1;
  }
}
