// Ablation A1: the paper's proposed dynamic noise bound (Sec. V-B4
// future work) — σ_n² >= 1/√N with N the training-set size — compared to
// the two fixed bounds of Fig. 7.
//
// Expected shape: the dynamic bound behaves like the conservative 1e-1
// bound early (preventing the small-N overfit) but relaxes as data
// accumulates, approaching the permissive bound's flexibility late.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/batch.hpp"

namespace al = alperf::al;
namespace bench = alperf::bench;

namespace {

al::BatchResult runVariant(const al::RegressionProblem& problem,
                           double noiseLo, bool dynamic) {
  al::BatchConfig cfg;
  cfg.replicates = 10;
  cfg.seed = 29;
  cfg.al.maxIterations = 60;
  cfg.al.dynamicNoiseBound = dynamic;
  return al::runBatch(
      problem, bench::makeGp(2, noiseLo, 1),
      [] { return std::make_unique<al::VarianceReduction>(); }, cfg);
}

void summarize(const char* name, const al::BatchResult& batch) {
  const auto rmse = batch.meanSeries(&al::IterationRecord::rmse);
  const auto amsd = batch.meanSeries(&al::IterationRecord::amsd);
  const auto noise = batch.meanSeries(&al::IterationRecord::noiseVariance);
  std::printf("  %-18s RMSE@10=%-9s RMSE@30=%-9s RMSE@end=%-9s "
              "AMSD/RMSE@end=%-7s sigma_n^2: %s -> %s\n",
              name, bench::fmt(rmse[10]).c_str(), bench::fmt(rmse[30]).c_str(),
              bench::fmt(rmse.back()).c_str(),
              bench::fmt(amsd.back() / rmse.back()).c_str(),
              bench::fmt(noise.front()).c_str(),
              bench::fmt(noise.back()).c_str());
}

}  // namespace

int main() {
  const auto problem = bench::fig6Problem();
  std::printf("2-D subset: %zu jobs; 10 partitions per variant\n",
              problem.size());

  bench::section("A1: dynamic sigma_n^2 >= 1/sqrt(N) vs fixed bounds");
  const auto loose = runVariant(problem, 1e-8, false);
  const auto tight = runVariant(problem, 1e-1, false);
  const auto dynamic = runVariant(problem, 1e-8, true);
  summarize("fixed 1e-8", loose);
  summarize("fixed 1e-1", tight);
  summarize("dynamic 1/sqrt(N)", dynamic);

  const auto dNoise = dynamic.meanSeries(&al::IterationRecord::noiseVariance);
  bench::paperVs("dynamic bound is conservative early",
                 "sigma_n^2 >= 1 at N=1 (proposal)",
                 "sigma_n^2 at iter 0 = " + bench::fmt(dNoise.front()));
  bench::paperVs("dynamic bound relaxes as data accumulates",
                 "bound ~ 1/sqrt(N) (proposal)",
                 "sigma_n^2 at iter 59 = " + bench::fmt(dNoise.back()) +
                     " (bound " +
                     bench::fmt(1.0 / std::sqrt(60.0)) + ")");
  const auto dynRmse = dynamic.meanSeries(&al::IterationRecord::rmse);
  const auto tightRmse = tight.meanSeries(&al::IterationRecord::rmse);
  bench::paperVs("dynamic bound is a viable alternative",
                 "expected viable (Sec. V-B4)",
                 "final RMSE dynamic " + bench::fmt(dynRmse.back()) +
                     " vs fixed-1e-1 " + bench::fmt(tightRmse.back()));
  return 0;
}
