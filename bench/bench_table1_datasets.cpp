// Reproduces Table I: "The Parameters of the Analyzed Datasets".
//
// Generates the full simulated campaign (the substitution for the paper's
// CloudLab HPGMG-FE runs) and reports dataset shape and response ranges
// against the paper's values.

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <tuple>

#include "bench_common.hpp"
#include "stats/descriptive.hpp"

namespace bench = alperf::bench;
namespace st = alperf::stats;

int main() {
  bench::section("Table I: The Parameters of the Analyzed Datasets");
  const auto& ds = bench::tableOneDataset();
  const auto& perf = ds.performance;
  const auto& power = ds.power;

  const auto rt = perf.numeric("RuntimeS");
  const auto prt = power.numeric("RuntimeS");
  const auto energy = power.numeric("EnergyJ");
  const auto sizes = perf.distinctNumeric("GlobalSize");
  const auto nps = perf.distinctNumeric("NP");
  const auto freqs = perf.distinctNumeric("FreqGHz");
  const auto ops = perf.distinctCategorical("Operator");

  std::printf("\nDataset: Performance\n");
  bench::paperVs("# Jobs", "3246", std::to_string(perf.numRows()));
  bench::paperVs("Runtime range (s)", "0.005 - 458.436",
                 bench::fmt(st::minValue(rt)) + " - " +
                     bench::fmt(st::maxValue(rt)));

  std::printf("\nDataset: Power\n");
  bench::paperVs("# Jobs", "640", std::to_string(power.numRows()));
  bench::paperVs("Runtime range (s)", "0.005 - 458.436",
                 bench::fmt(st::minValue(prt)) + " - " +
                     bench::fmt(st::maxValue(prt)));
  bench::paperVs("Energy range (J)", "6.4e3 - 1.1e5",
                 bench::fmt(st::minValue(energy)) + " - " +
                     bench::fmt(st::maxValue(energy)));

  std::printf("\nControlled variables\n");
  std::string opsStr;
  for (const auto& o : ops) opsStr += (opsStr.empty() ? "" : ",") + o;
  bench::paperVs("Operator levels", "poisson1,poisson2,poisson2affine",
                 opsStr);
  bench::paperVs("Global Problem Size range", "1.7e3 - 1.1e9",
                 bench::fmt(sizes.front()) + " - " +
                     bench::fmt(sizes.back()) + " (" +
                     std::to_string(sizes.size()) + " levels)");
  std::string npStr;
  for (double n : nps) npStr += (npStr.empty() ? "" : ",") +
                                std::to_string(static_cast<int>(n));
  bench::paperVs("NP levels", "1,2,4,8,16,24,32,48,64,96,128 (11)",
                 npStr + " (" + std::to_string(nps.size()) + ")");
  std::string fStr;
  for (double f : freqs) fStr += (fStr.empty() ? "" : ",") + bench::fmt(f);
  bench::paperVs("CPU Frequency levels (GHz)", "1.2,1.5,1.8,2.1,2.4 (5)",
                 fStr + " (" + std::to_string(freqs.size()) + ")");

  // Repeats structure: "up to 3 repeated experiments per combination".
  std::size_t combos = 0;
  {
    std::map<std::tuple<std::string, double, double, double>, int> counts;
    for (std::size_t i = 0; i < perf.numRows(); ++i)
      ++counts[{std::string(perf.categorical("Operator")[i]),
                perf.numeric("GlobalSize")[i], perf.numeric("NP")[i],
                perf.numeric("FreqGHz")[i]}];
    combos = counts.size();
    int maxRep = 0;
    for (const auto& [k, v] : counts) maxRep = std::max(maxRep, v);
    bench::paperVs("Repeats per combination", "up to 3",
                   "up to " + std::to_string(maxRep) + " over " +
                       std::to_string(combos) + " combinations");
  }

  std::printf("\nCampaign accounting (simulator-side, no paper analogue)\n");
  std::printf("  makespan: %.0f s on 4 nodes x 16 cores; power-trace "
              "exclusion kept %.1f%% of jobs\n",
              ds.makespan,
              100.0 * static_cast<double>(power.numRows()) /
                  static_cast<double>(perf.numRows()));
  return 0;
}
