// Parallel scaling report: runs the same AL campaign (ARD kernel,
// multi-start refits, ~500-point candidate pool) at 1/2/4/8 threads,
// checks the traces are bit-identical, and reports wall time, speedup,
// and the perf-counter breakdown as JSON. The thread counts are requests
// to the pool — on a machine with fewer cores the extra workers time-slice
// and the speedup saturates at the core count.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/perf_stats.hpp"
#include "common/thread_pool.hpp"
#include "core/learner.hpp"
#include "gp/kernels.hpp"

namespace al = alperf::al;
namespace gp = alperf::gp;
namespace la = alperf::la;
using alperf::Parallelism;
using alperf::PerfRegistry;
using alperf::stats::Rng;

namespace {

/// ~630-row 2-D synthetic problem; with nInitial + activeFraction below,
/// the strategy scores a ~500-point candidate pool each iteration.
al::RegressionProblem syntheticProblem(std::size_t n = 630) {
  al::RegressionProblem p;
  p.x = la::Matrix(n, 2);
  p.y.resize(n);
  p.cost.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n - 1);
    p.x(i, 0) = 12.0 * t;
    p.x(i, 1) = std::cos(5.0 * t);
    p.y[i] = std::sin(7.0 * t) + 0.25 * t * t + 0.1 * std::cos(20.0 * t);
    p.cost[i] = 1.0 + t;
  }
  p.featureNames = {"x0", "x1"};
  p.responseName = "y";
  return p;
}

struct RunOutcome {
  double millis = 0.0;
  std::vector<al::IterationRecord> history;
  std::string perfJson;
};

RunOutcome runAt(int threads) {
  Parallelism::setThreads(threads);
  PerfRegistry::instance().reset();

  gp::GpConfig gcfg;
  gcfg.nRestarts = 3;
  gcfg.noise.lo = 1e-4;
  gp::GaussianProcess proto(gp::makeSquaredExponentialArd(1.0, {1.0, 1.0}),
                            gcfg);
  al::AlConfig cfg;
  cfg.nInitial = 6;
  cfg.activeFraction = 0.8;
  cfg.maxIterations = 25;
  cfg.refitEvery = 2;
  al::ActiveLearner learner(syntheticProblem(), std::move(proto),
                            std::make_unique<al::CostEfficiency>(), cfg);

  Rng rng(42);
  const auto t0 = std::chrono::steady_clock::now();
  auto result = learner.run(rng);
  const auto t1 = std::chrono::steady_clock::now();

  RunOutcome out;
  out.millis =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  out.history = std::move(result.history);
  out.perfJson = PerfRegistry::instance().toJson();
  return out;
}

bool identical(const std::vector<al::IterationRecord>& a,
               const std::vector<al::IterationRecord>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].chosenRow != b[i].chosenRow || a[i].amsd != b[i].amsd ||
        a[i].rmse != b[i].rmse || a[i].lml != b[i].lml ||
        a[i].sigmaAtPick != b[i].sigmaAtPick)
      return false;
  }
  return true;
}

}  // namespace

int main() {
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("# bench_parallel_scaling: AL campaign (pool ~500, "
              "refitEvery=2, nRestarts=3, 25 iterations)\n");
  std::printf("# hardware_concurrency=%u (requested thread counts above "
              "this time-slice)\n", hw);

  const RunOutcome base = runAt(1);
  std::printf("{\"threads\":1,\"millis\":%.1f,\"speedup\":1.00,"
              "\"trace_identical\":true}\n", base.millis);
  std::printf("# perf@1: %s\n", base.perfJson.c_str());

  bool allIdentical = true;
  for (const int t : {2, 4, 8}) {
    const RunOutcome r = runAt(t);
    const bool same = identical(base.history, r.history);
    allIdentical = allIdentical && same;
    std::printf("{\"threads\":%d,\"millis\":%.1f,\"speedup\":%.2f,"
                "\"trace_identical\":%s}\n",
                t, r.millis, base.millis / r.millis,
                same ? "true" : "false");
    if (t == 4) std::printf("# perf@4: %s\n", r.perfJson.c_str());
  }
  Parallelism::setThreads(0);

  if (!allIdentical) {
    std::printf("# FAIL: traces diverged across thread counts\n");
    return 1;
  }
  std::printf("# traces bit-identical across 1/2/4/8 threads\n");
  return 0;
}
