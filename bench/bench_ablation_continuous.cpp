// Ablation A8: continuous-candidate online AL (paper Sec. VI future
// work) against the HPGMG-FE runtime model as a live oracle.
//
// The pool-free learner proposes arbitrary (log size, freq) points via
// continuous acquisition optimization; the oracle "runs the experiment"
// by sampling the calibrated runtime model. Compared against pool-based
// AL restricted to the factorial grid at the same experiment budget, both
// evaluated on a dense held-out grid of model truths.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "cluster/perf_model.hpp"
#include "core/continuous.hpp"
#include "core/learner.hpp"
#include "stats/descriptive.hpp"

namespace al = alperf::al;
namespace bench = alperf::bench;
namespace cl = alperf::cluster;
namespace la = alperf::la;
namespace st = alperf::stats;
namespace opt = alperf::opt;
using alperf::stats::Rng;

namespace {

constexpr int kNp = 32;

cl::JobRequest requestAt(double logSize, double freq) {
  return {cl::Operator::Poisson1, std::pow(10.0, logSize), kNp, freq};
}

/// Dense evaluation grid of noise-free model truths.
struct TruthGrid {
  la::Matrix x;
  la::Vector y;
};

TruthGrid makeTruthGrid(const cl::PerfModel& model) {
  TruthGrid grid;
  const int ns = 25, nf = 13;
  grid.x = la::Matrix(ns * nf, 2);
  grid.y.resize(ns * nf);
  int r = 0;
  for (int i = 0; i < ns; ++i)
    for (int j = 0; j < nf; ++j, ++r) {
      const double logSize = 3.3 + (9.0 - 3.3) * i / (ns - 1);
      const double freq = 1.2 + (2.4 - 1.2) * j / (nf - 1);
      grid.x(r, 0) = logSize;
      grid.x(r, 1) = freq;
      grid.y[r] = std::log10(model.meanRuntime(requestAt(logSize, freq)));
    }
  return grid;
}

double gridRmse(const alperf::gp::GaussianProcess& g, const TruthGrid& t) {
  const auto pred = g.predict(t.x);
  return st::rmse(pred.mean, t.y);
}

}  // namespace

int main() {
  const cl::PerfModel model;
  const TruthGrid truth = makeTruthGrid(model);
  const int budget = 30;
  std::printf("online oracle: calibrated HPGMG-FE runtime model "
              "(poisson1, NP=%d); budget %d experiments\n",
              kNp, budget);

  bench::section("A8: continuous suggestions vs grid-pool AL (online)");

  // --- Continuous learner over the full box.
  Rng contRng(3);
  Rng oracleRng(11);
  const opt::BoxBounds box({3.3, 1.2}, {9.0, 2.4});
  al::ContinuousAlConfig ccfg;
  ccfg.iterations = budget;
  ccfg.nStarts = 8;
  ccfg.refitEvery = 3;
  la::Matrix seedX(1, 2);
  seedX(0, 0) = 6.0;
  seedX(0, 1) = 1.8;
  la::Vector seedY{
      std::log10(model.sampleRuntime(requestAt(6.0, 1.8), oracleRng))};
  const auto contResult = al::runContinuousAl(
      bench::makeGp(2, 1e-3, 1, 30), seedX, seedY, box,
      [&](std::span<const double> x) {
        return std::log10(
            model.sampleRuntime(requestAt(x[0], x[1]), oracleRng));
      },
      al::varianceAcquisition(), ccfg, contRng);
  const double contRmse = gridRmse(contResult.finalGp, truth);

  // Distinct locations visited (continuous picks are all distinct).
  std::printf("  continuous: %zu suggestions, e.g. first five:\n",
              contResult.history.size());
  for (std::size_t i = 0; i < 5; ++i)
    std::printf("    (logN=%s, f=%s) sd=%s\n",
                bench::fmt(contResult.history[i].x[0]).c_str(),
                bench::fmt(contResult.history[i].x[1]).c_str(),
                bench::fmt(contResult.history[i].sdAtPick).c_str());

  // --- Pool learner restricted to the Table-I factorial grid.
  al::RegressionProblem pool;
  {
    const auto sizes = cl::defaultSizeLadder();
    const double freqs[] = {1.2, 1.5, 1.8, 2.1, 2.4};
    pool.x = la::Matrix(sizes.size() * 5, 2);
    pool.y.resize(pool.x.rows());
    pool.cost.assign(pool.x.rows(), 1.0);
    int r = 0;
    Rng poolNoise(13);
    for (double s : sizes)
      for (double f : freqs) {
        pool.x(r, 0) = std::log10(s);
        pool.x(r, 1) = f;
        pool.y[r] = std::log10(model.sampleRuntime(
            {cl::Operator::Poisson1, s, kNp, f}, poolNoise));
        ++r;
      }
    pool.featureNames = {"logSize", "freq"};
    pool.responseName = "logRuntime";
  }
  al::AlConfig pcfg;
  pcfg.maxIterations = budget;
  pcfg.activeFraction = 0.95;
  al::ActiveLearner learner(pool, bench::makeGp(2, 1e-3, 1, 30),
                            std::make_unique<al::VarianceReduction>(), pcfg);
  Rng poolRng(5);
  const auto poolResult = learner.run(poolRng);
  const double poolRmse = gridRmse(poolResult.finalGp, truth);

  std::printf("\n  dense-grid RMSE after %d experiments: continuous %s vs "
              "grid-pool %s (log10 s)\n",
              budget, bench::fmt(contRmse).c_str(),
              bench::fmt(poolRmse).c_str());
  bench::paperVs("continuous optimization handles non-finite active sets",
                 "proposed (Sec. VI)",
                 "works; RMSE " + bench::fmt(contRmse) + " with " +
                     std::to_string(budget) + " oracle runs");
  bench::paperVs("continuous at least matches the factorial-grid pool",
                 "hoped-for benefit",
                 contRmse <= 1.3 * poolRmse
                     ? "yes (within 30%)"
                     : "NO (grid wins here)");
  return 0;
}
