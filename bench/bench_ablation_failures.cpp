// Ablation A10: scheduler resilience under failure injection — how job
// crashes degrade the campaign that produces the paper's datasets. Not a
// paper experiment (their CloudLab runs were clean); this characterizes
// the substrate itself: wasted core-time, makespan inflation, and retry
// distribution as the per-attempt failure probability grows.

#include <cstdio>

#include "bench_common.hpp"
#include "cluster/scheduler.hpp"

namespace bench = alperf::bench;
namespace cl = alperf::cluster;

int main() {
  bench::section("A10: campaign resilience vs failure probability");
  std::printf("  120-job workload (mixed sizes/NP), maxRetries = 5\n");
  std::printf("  %-8s %-12s %-12s %-12s %-12s %-10s\n", "p(fail)",
              "makespan s", "wasted s", "mean tries", "max tries",
              "failed");

  double cleanMakespan = 0.0;
  for (double p : {0.0, 0.1, 0.25, 0.5}) {
    cl::ClusterConfig cfg;
    cfg.failureProbability = p;
    cfg.maxRetries = 5;
    cl::PerfModelParams params;
    params.noiseSigma = 0.02;
    cl::ClusterSim sim(cfg, cl::PerfModel(params), 31);
    const auto sizes = cl::defaultSizeLadder();
    for (int i = 0; i < 120; ++i) {
      cl::JobRequest req;
      req.op = cl::kAllOperators[i % 3];
      req.globalSize = sizes[(i * 5) % 10];  // skip the largest sizes
      req.np = 1 << (i % 7);
      req.freqGhz = 1.2 + 0.3 * (i % 5);
      sim.submit(req, i * 2.0);
    }
    sim.run();

    double wasted = 0.0, tries = 0.0;
    int maxTries = 0, failed = 0;
    for (const auto& rec : sim.records()) {
      wasted += rec.wastedSeconds;
      tries += rec.attempts;
      maxTries = std::max(maxTries, rec.attempts);
      if (rec.failed) ++failed;
    }
    if (p == 0.0) cleanMakespan = sim.makespan();
    std::printf("  %-8s %-12s %-12s %-12s %-12d %-10d\n",
                bench::fmt(p).c_str(), bench::fmt(sim.makespan()).c_str(),
                bench::fmt(wasted).c_str(),
                bench::fmt(tries / 120.0).c_str(), maxTries, failed);
    if (p == 0.5)
      bench::paperVs("makespan inflation at 50% failure rate",
                     "(substrate characterization)",
                     bench::fmt(sim.makespan() / cleanMakespan) + "x clean");
  }
  return 0;
}
