// Reproduces Figure 3: predictive distribution of 1-D GPRs over the
// Performance dataset cross-section (poisson1, NP = 32, f = 2.4 GHz;
// runtime vs problem size, both log10).
//
// (a) All measurements, four fixed (l, σ_f) hyperparameter settings: the
//     predictive means barely differ, while shrinking l substantially
//     widens the 95% confidence band between measurement points.
// (b) A random 4-point subset: uncertainty blows up at the domain edge
//     with no nearby measurement, affecting the mean as well.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "gp/kernels.hpp"
#include "stats/descriptive.hpp"
#include "stats/sampling.hpp"

namespace bench = alperf::bench;
namespace gp = alperf::gp;
namespace la = alperf::la;
namespace st = alperf::stats;
using alperf::stats::Rng;

namespace {

struct Band {
  double meanCiWidth;       ///< average CI width at between-point queries
  std::vector<double> mean;  ///< predictive mean on the grid
};

Band evalBand(const gp::GaussianProcess& g, const la::Matrix& grid) {
  const auto pred = g.predict(grid);
  Band b;
  double w = 0.0;
  for (std::size_t i = 0; i < grid.rows(); ++i)
    w += 4.0 * std::sqrt(pred.variance[i]);
  b.meanCiWidth = w / grid.rows();
  b.mean = pred.mean;
  return b;
}

}  // namespace

int main() {
  const auto problem = bench::fig3Problem();
  std::printf("1-D cross-section: %zu jobs (poisson1, NP=32, f=2.4)\n",
              problem.size());

  // Dense evaluation grid across the size range.
  double lo = 1e300, hi = -1e300;
  for (std::size_t i = 0; i < problem.size(); ++i) {
    lo = std::min(lo, problem.x(i, 0));
    hi = std::max(hi, problem.x(i, 0));
  }
  const int gridN = 41;
  la::Matrix grid(gridN, 1);
  for (int i = 0; i < gridN; ++i)
    grid(i, 0) = lo + (hi - lo) * i / (gridN - 1);

  bench::section("Fig. 3a: all measurements, four (l, sigma_f) settings");
  Rng rng(1);
  std::vector<double> widths;
  std::vector<std::vector<double>> means;
  const double lengths[] = {3.0, 2.0, 1.0, 0.5};
  for (double l : lengths) {
    gp::GpConfig cfg;
    cfg.optimize = false;
    cfg.noise.initial = 1e-3;
    gp::GaussianProcess g(gp::makeSquaredExponential(1.0, l), cfg);
    g.fit(problem.x, problem.y, rng);
    const auto band = evalBand(g, grid);
    widths.push_back(band.meanCiWidth);
    means.push_back(band.mean);
    std::printf("  l=%-5g sigma_f=1: mean 95%% CI width = %s\n", l,
                bench::fmt(band.meanCiWidth).c_str());
  }
  // Mean curves barely differ; CI width grows as l shrinks.
  double maxMeanDiff = 0.0;
  for (std::size_t k = 1; k < means.size(); ++k)
    for (int i = 0; i < gridN; ++i)
      maxMeanDiff =
          std::max(maxMeanDiff, std::abs(means[k][i] - means[0][i]));
  bench::paperVs("difference between predictive means", "negligible",
                 "max " + bench::fmt(maxMeanDiff) + " (log10 s)");
  const bool widening =
      std::is_sorted(widths.begin(), widths.end());
  bench::paperVs("CI width grows as l decreases", "yes",
                 widening ? "yes (" + bench::fmt(widths.front()) + " -> " +
                                bench::fmt(widths.back()) + ")"
                          : "NO");

  // LML-fitted hyperparameters for reference.
  {
    auto g = bench::makeGp(1, 1e-8, 4);
    g.fit(problem.x, problem.y, rng);
    std::printf("  LML fit: kernel = %s, sigma_n^2 = %s, LML = %s\n",
                g.kernel().describe().c_str(),
                bench::fmt(g.noiseVariance()).c_str(),
                bench::fmt(g.logMarginalLikelihood()).c_str());
  }

  bench::section("Fig. 3b: random 4-point subset");
  Rng subRng(7);
  const auto pick = st::sampleWithoutReplacement(problem.size(), 4, subRng);
  la::Matrix sx(4, 1);
  la::Vector sy(4);
  for (int i = 0; i < 4; ++i) {
    sx(i, 0) = problem.x(pick[i], 0);
    sy[i] = problem.y[pick[i]];
  }
  double trainHi = -1e300;
  for (int i = 0; i < 4; ++i) trainHi = std::max(trainHi, sx(i, 0));

  auto g4 = bench::makeGp(1, 1e-8, 4);
  g4.fit(sx, sy, subRng);
  const auto pred = g4.predict(grid);
  // Report the band at a few grid points: interior vs domain edge.
  std::printf("  4 training points at log10(size) =");
  for (int i = 0; i < 4; ++i) std::printf(" %s", bench::fmt(sx(i, 0)).c_str());
  std::printf("\n  %-22s %-12s %-12s\n", "log10(size)", "mean", "2*sd");
  for (int i = 0; i < gridN; i += 8)
    std::printf("  %-22s %-12s %-12s\n", bench::fmt(grid(i, 0)).c_str(),
                bench::fmt(pred.mean[i]).c_str(),
                bench::fmt(2.0 * std::sqrt(pred.variance[i])).c_str());

  // Edge blow-up: SD at the max-size end of the domain vs SD at the
  // midpoint between the two largest training points.
  const double sdEdge = std::sqrt(pred.variance[gridN - 1]);
  double sdInterior = 0.0;
  int n = 0;
  for (int i = 0; i < gridN; ++i)
    if (grid(i, 0) <= trainHi) {
      sdInterior += std::sqrt(pred.variance[i]);
      ++n;
    }
  sdInterior /= std::max(n, 1);
  bench::paperVs("uncertainty exaggerated at unmeasured domain edge",
                 "yes (Fig. 3b)",
                 "edge SD " + bench::fmt(sdEdge) + " vs interior mean SD " +
                     bench::fmt(sdInterior) + " (" +
                     bench::fmt(sdEdge / std::max(sdInterior, 1e-12)) +
                     "x)");
  return 0;
}
