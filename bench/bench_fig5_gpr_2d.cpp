// Reproduces Figure 5: a two-variable GPR (problem size × CPU frequency)
// trained on a small random dataset.
//
// (a) Four random training points: confidence-interval surfaces are
//     tight near the data and widen where both Frequency and Problem
//     Size are near their maxima (away from the training points) —
//     exactly where AL should pick next.
// (b) The LML landscape for this data-poor GP is much shallower than the
//     data-rich one of Fig. 4, but its peak still yields a reasonable
//     predictive distribution.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "gp/kernels.hpp"
#include "stats/sampling.hpp"

namespace bench = alperf::bench;
namespace gp = alperf::gp;
namespace la = alperf::la;
using alperf::stats::Rng;

int main() {
  const auto problem = bench::fig6Problem();  // (log size, freq) 2-D space
  std::printf("2-D subset: %zu jobs (poisson1, NP=32)\n", problem.size());

  Rng rng(3);
  const auto pick =
      alperf::stats::sampleWithoutReplacement(problem.size(), 4, rng);
  la::Matrix tx(4, 2);
  la::Vector ty(4);
  std::printf("  training points (log10 size, freq GHz, log10 runtime):\n");
  for (int i = 0; i < 4; ++i) {
    tx(i, 0) = problem.x(pick[i], 0);
    tx(i, 1) = problem.x(pick[i], 1);
    ty[i] = problem.y[pick[i]];
    std::printf("    (%s, %s) -> %s\n", bench::fmt(tx(i, 0)).c_str(),
                bench::fmt(tx(i, 1)).c_str(), bench::fmt(ty[i]).c_str());
  }

  auto g = bench::makeGp(2, 1e-8, 4);
  g.fit(tx, ty, rng);
  std::printf("  fitted kernel: %s, sigma_n^2 = %s\n",
              g.kernel().describe().c_str(),
              bench::fmt(g.noiseVariance()).c_str());

  bench::section("Fig. 5a: CI surfaces on the (size, freq) grid");
  // Domain box over the whole subset.
  double sLo = 1e300, sHi = -1e300, fLo = 1e300, fHi = -1e300;
  for (std::size_t i = 0; i < problem.size(); ++i) {
    sLo = std::min(sLo, problem.x(i, 0));
    sHi = std::max(sHi, problem.x(i, 0));
    fLo = std::min(fLo, problem.x(i, 1));
    fHi = std::max(fHi, problem.x(i, 1));
  }
  const int gn = 9;
  std::printf("  2*sd surface (rows: log10 size %s..%s, cols: freq "
              "%s..%s):\n",
              bench::fmt(sLo).c_str(), bench::fmt(sHi).c_str(),
              bench::fmt(fLo).c_str(), bench::fmt(fHi).c_str());
  double nearData = 1e300, farCorner = 0.0;
  double minDistNear = 1e300;
  for (int i = 0; i < gn; ++i) {
    std::printf("   ");
    for (int j = 0; j < gn; ++j) {
      const double s = sLo + (sHi - sLo) * i / (gn - 1);
      const double f = fLo + (fHi - fLo) * j / (gn - 1);
      const auto [mean, var] = g.predictOne(std::vector<double>{s, f});
      const double band = 2.0 * std::sqrt(var);
      std::printf(" %6.3f", band);
      // Track CI near the closest training point vs the far corner.
      for (int k = 0; k < 4; ++k) {
        const double d = std::hypot((s - tx(k, 0)) / (sHi - sLo),
                                    (f - tx(k, 1)) / (fHi - fLo));
        if (d < minDistNear) {
          minDistNear = d;
          nearData = band;
        }
      }
      if (i == gn - 1 && j == gn - 1) farCorner = band;
    }
    std::printf("\n");
  }
  bench::paperVs("CI bounds farther apart away from training points",
                 "yes (max-size/max-freq corner)",
                 "near-data 2sd " + bench::fmt(nearData) +
                     " vs far-corner 2sd " + bench::fmt(farCorner));

  bench::section("Fig. 5b: shallow LML landscape (vs Fig. 4)");
  const auto theta = g.thetaFull();  // [log sf2, log l_size, log l_freq,
                                     //  log sn2]
  const int nl = 21;
  std::vector<double> lml;
  double best = -1e300;
  for (int i = 0; i < nl; ++i)
    for (int j = 0; j < nl; ++j) {
      const std::vector<double> t{
          theta[0], std::log(0.05) + (std::log(10.0) - std::log(0.05)) * i /
                                        (nl - 1),
          theta[2],
          std::log(1e-6) + (std::log(1.0) - std::log(1e-6)) * j / (nl - 1)};
      const double v = g.logMarginalLikelihoodAt(t);
      if (std::isfinite(v)) {
        lml.push_back(v);
        best = std::max(best, v);
      }
    }
  std::sort(lml.begin(), lml.end());
  const double median = lml[lml.size() / 2];
  std::printf("  peak LML = %s, peak - median = %s nats (4 points)\n",
              bench::fmt(best).c_str(), bench::fmt(best - median).c_str());
  bench::paperVs("small-data LML much shallower than Fig. 4's",
                 "yes (shallow contour)",
                 "peak-median " + bench::fmt(best - median) +
                     " nats here vs hundreds+ with the full subset");

  // Despite shallowness, the model behaves sensibly: prediction at a
  // training point is close to its observation.
  double worst = 0.0;
  for (int i = 0; i < 4; ++i) {
    const auto [m, v] = g.predictOne(tx.row(i));
    worst = std::max(worst, std::abs(m - ty[i]));
  }
  bench::paperVs("peak yields reasonable predictive distribution",
                 "yes",
                 "max |pred - obs| at training points = " +
                     bench::fmt(worst) + " (log10 s)");
  return 0;
}
