// Reproduces Figure 4: contour of the log marginal likelihood as a
// function of the hyperparameters l and σ_n for the data-rich 1-D
// Performance subset.
//
// Paper's observation: with many points the LML is strongly peaked with a
// unique global optimum, findable by gradient ascent from a single random
// start.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "gp/kernels.hpp"

namespace bench = alperf::bench;
namespace gp = alperf::gp;
using alperf::stats::Rng;

int main() {
  const auto problem = bench::fig3Problem();
  std::printf("1-D subset: %zu jobs (poisson1, NP=32, f=2.4)\n",
              problem.size());

  // Fit once to fix sigma_f at its optimum, then scan (l, sigma_n).
  auto g = bench::makeGp(1, 1e-8, 4);
  Rng rng(1);
  g.fit(problem.x, problem.y, rng);
  const auto thetaStar = g.thetaFull();  // [log sf2, log l, log sn2]

  bench::section("Fig. 4: LML contour over (l, sigma_n), sigma_f fixed");
  const int nl = 25, ns = 25;
  const double lLo = std::log(0.05), lHi = std::log(10.0);
  const double sLo = std::log(1e-6), sHi = std::log(1.0);
  double best = -1e300, bestL = 0.0, bestS = 0.0;
  std::vector<std::vector<double>> lml(nl, std::vector<double>(ns));
  for (int i = 0; i < nl; ++i)
    for (int j = 0; j < ns; ++j) {
      const double logL = lLo + (lHi - lLo) * i / (nl - 1);
      const double logS = sLo + (sHi - sLo) * j / (ns - 1);
      const std::vector<double> theta{thetaStar[0], logL, logS};
      const double v = g.logMarginalLikelihoodAt(theta);
      lml[i][j] = v;
      if (v > best) {
        best = v;
        bestL = std::exp(logL);
        bestS = std::exp(logS);
      }
    }

  // ASCII contour: characters by LML decile relative to the peak.
  std::printf("  rows: l in [0.05, 10] (log)  cols: sigma_n^2 in [1e-6, 1] "
              "(log); '@'=peak decile, '.'=low\n");
  const char* shades = ".:-=+*#%@";
  // Normalize on a soft scale: x -> exp((v - best)/|best scale|).
  for (int i = 0; i < nl; ++i) {
    std::printf("  ");
    for (int j = 0; j < ns; ++j) {
      const double rel = lml[i][j] - best;  // <= 0
      const int idx = std::max(0, 8 + static_cast<int>(rel / 25.0));
      std::putchar(shades[std::min(idx, 8)]);
    }
    std::putchar('\n');
  }
  std::printf("  grid peak: l=%s sigma_n^2=%s LML=%s\n",
              bench::fmt(bestL).c_str(), bench::fmt(bestS).c_str(),
              bench::fmt(best).c_str());

  // Peakedness: how far the grid median falls below the peak.
  std::vector<double> flat;
  for (const auto& row : lml)
    for (double v : row) flat.push_back(v);
  std::sort(flat.begin(), flat.end());
  const double median = flat[flat.size() / 2];
  bench::paperVs("LML is strongly peaked with abundant data",
                 "yes (Fig. 4)",
                 "peak - median = " + bench::fmt(best - median) + " nats");

  // Unique optimum: 10 single-start gradient ascents all converge to the
  // same point.
  bench::section("single-start gradient ascent reliability");
  Rng startRng(5);
  int agree = 0;
  std::vector<double> optima;
  for (int k = 0; k < 10; ++k) {
    auto g1 = bench::makeGp(1, 1e-8, /*restarts=*/0, /*optIters=*/120);
    // Randomize the starting kernel hyperparameters.
    gp::GpConfig cfg = g1.config();
    cfg.noise.initial = std::exp(startRng.uniformReal(std::log(1e-6), 0.0));
    gp::GaussianProcess gk(
        gp::makeSquaredExponential(
            std::exp(startRng.uniformReal(-2.0, 2.0)),
            std::exp(startRng.uniformReal(-2.5, 2.0))),
        cfg);
    gk.fit(problem.x, problem.y, startRng);
    optima.push_back(gk.logMarginalLikelihood());
  }
  const double top = *std::max_element(optima.begin(), optima.end());
  for (double v : optima)
    if (top - v < 1.0) ++agree;
  bench::paperVs(
      "gradient ascent finds the optimum from a single random start",
      "yes (unique global optimum)",
      std::to_string(agree) + "/10 starts within 1 nat of the best");
  return 0;
}
