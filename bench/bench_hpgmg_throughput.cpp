// HPGMG-style throughput report for the mini solver: DOF solved per
// second by Full Multigrid, per operator and grid size (the metric the
// real HPGMG benchmark ranks machines by). Also reports the per-operator
// cost ratios that the cluster simulator's runtime model encodes
// (poisson1 < poisson2 < poisson2affine), tying the two substrates
// together.

#include <cstdio>

#include "bench_common.hpp"
#include "hpgmg/benchmark.hpp"

namespace bench = alperf::bench;
namespace hp = alperf::hpgmg;

int main() {
  bench::section("mini-HPGMG throughput (FMG solve, DOF/s)");
  std::printf("  %-18s %-8s %-12s %-12s %-12s %-8s\n", "operator", "n",
              "dof", "seconds", "DOF/s", "cycles");

  struct Row {
    const char* name;
    hp::StencilType type;
  };
  const Row rows[] = {
      {"poisson1", hp::StencilType::Poisson1},
      {"poisson2", hp::StencilType::Poisson2},
      {"poisson2affine", hp::StencilType::Poisson2Affine},
  };

  double p1Rate = 0.0, p2Rate = 0.0, p2aRate = 0.0;
  for (const auto& row : rows) {
    for (int n : {15, 31, 63}) {
      const auto result = hp::runBenchmark(row.type, n);
      const double rate =
          static_cast<double>(result.dof) / result.seconds;
      std::printf("  %-18s %-8d %-12zu %-12s %-12s %-8d\n", row.name, n,
                  result.dof, bench::fmt(result.seconds).c_str(),
                  bench::fmt(rate).c_str(), result.cycles);
      if (n == 63) {
        if (row.type == hp::StencilType::Poisson1) p1Rate = rate;
        if (row.type == hp::StencilType::Poisson2) p2Rate = rate;
        if (row.type == hp::StencilType::Poisson2Affine) p2aRate = rate;
      }
    }
  }

  // On this memory-bound single-core host, poisson1 and poisson2 achieve
  // similar DOF/s despite the flop gap (both stream the same field data);
  // the affine operator's extra face neighbours do cost real throughput.
  bench::paperVs("poisson2affine is the most expensive operator",
                 "largest flops/dof (Table I model)",
                 "DOF/s: p1 " + bench::fmt(p1Rate) + ", p2 " +
                     bench::fmt(p2Rate) + ", p2affine " +
                     bench::fmt(p2aRate));
  bench::paperVs("cost gap smaller than flop ratio (memory-bound)",
                 "(roofline expectation)",
                 bench::fmt(p1Rate / p2aRate) +
                     "x for a 27- vs 7-point stencil");
  return 0;
}
