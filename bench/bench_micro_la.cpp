// Micro-benchmarks for the dense linear-algebra kernels (la/blas.hpp):
// blocked vs seed-reference Cholesky / gemm / trsm / multi-RHS solve across
// problem sizes and thread counts, plus the GP gram distance cache. Emits
// the same perf_stats JSON line as bench_micro_gp, preceded by summary
// lines:
//
//   la_speedup {"kernel":"cholesky","n":1024,"threads":1,
//               "ref_millis":...,"blocked_millis":...,"speedup":...}
//   la_determinism {"kernel":"cholesky","n":512,"bit_identical":true}
//   gram_cache {"n":1000,"uncached_millis":...,"cached_millis":...,
//               "speedup":...,"hit_rate":1.0}
//
// The reference benches stop at n=1024: the seed scalar kernels are an
// order of magnitude slower and n=2048 would dominate the suite's runtime
// for no extra information. CI's perf-smoke job runs the /512 sizes only.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <vector>

#include "common/perf_stats.hpp"
#include "common/thread_pool.hpp"
#include "gp/distance_cache.hpp"
#include "gp/kernels.hpp"
#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "stats/rng.hpp"

namespace la = alperf::la;
namespace gp = alperf::gp;
using alperf::stats::Rng;

namespace {

/// Diagonally dominant random SPD matrix in O(n²) (no O(n³) gram setup).
la::Matrix makeSpd(std::size_t n, unsigned seed) {
  Rng rng(seed);
  la::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const double v = rng.uniformReal(-1.0, 1.0);
      a(i, j) = v;
      a(j, i) = v;
    }
    a(i, i) = static_cast<double>(n);
  }
  return a;
}

la::Matrix makeDense(std::size_t rows, std::size_t cols, unsigned seed) {
  Rng rng(seed);
  la::Matrix a(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      a(i, j) = rng.uniformReal(-1.0, 1.0);
  return a;
}

/// Restores the previous kernel selection on scope exit.
struct KernelGuard {
  bool prev;
  explicit KernelGuard(bool blocked) : prev(la::blockedKernelsEnabled()) {
    la::setBlockedKernels(blocked);
  }
  ~KernelGuard() { la::setBlockedKernels(prev); }
};

double wallMillis(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

// ---------------------------------------------------------------- Cholesky

static void BM_CholeskyBlocked(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const la::Matrix spd = makeSpd(n, 1);
  KernelGuard guard(true);
  for (auto _ : state) {
    la::Matrix work = spd;
    benchmark::DoNotOptimize(la::choleskyInPlaceBlocked(work));
    benchmark::DoNotOptimize(work.data().data());
  }
  // n³/3 multiply-adds → GFLOP/s shows up as items_per_second.
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n) * n * n / 3);
}
BENCHMARK(BM_CholeskyBlocked)
    ->Arg(128)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

static void BM_CholeskyReference(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const la::Matrix spd = makeSpd(n, 1);
  KernelGuard guard(false);
  for (auto _ : state) {
    la::Matrix work = spd;
    benchmark::DoNotOptimize(la::choleskyInPlaceReference(work));
    benchmark::DoNotOptimize(work.data().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n) * n * n / 3);
}
BENCHMARK(BM_CholeskyReference)
    ->Arg(128)->Arg(256)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

static void BM_CholeskyThreads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const std::size_t n = 1024;
  alperf::Parallelism::setThreads(threads);
  const la::Matrix spd = makeSpd(n, 1);
  KernelGuard guard(true);
  for (auto _ : state) {
    la::Matrix work = spd;
    benchmark::DoNotOptimize(la::choleskyInPlaceBlocked(work));
  }
  alperf::Parallelism::setThreads(0);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n) * n * n / 3);
}
BENCHMARK(BM_CholeskyThreads)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// -------------------------------------------------------------------- gemm

static void BM_GemmBlocked(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const la::Matrix a = makeDense(n, n, 2);
  const la::Matrix b = makeDense(n, n, 3);
  for (auto _ : state)
    benchmark::DoNotOptimize(la::matmulBlocked(a, b).data().data());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n) * n * n);
}
BENCHMARK(BM_GemmBlocked)
    ->Arg(128)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

static void BM_GemmReference(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const la::Matrix a = makeDense(n, n, 2);
  const la::Matrix b = makeDense(n, n, 3);
  for (auto _ : state)
    benchmark::DoNotOptimize(la::matmulReference(a, b).data().data());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n) * n * n);
}
BENCHMARK(BM_GemmReference)
    ->Arg(128)->Arg(256)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

static void BM_GemmThreads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const std::size_t n = 1024;
  alperf::Parallelism::setThreads(threads);
  const la::Matrix a = makeDense(n, n, 2);
  const la::Matrix b = makeDense(n, n, 3);
  for (auto _ : state)
    benchmark::DoNotOptimize(la::matmulBlocked(a, b).data().data());
  alperf::Parallelism::setThreads(0);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n) * n * n);
}
BENCHMARK(BM_GemmThreads)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// ----------------------------------------------------- trsm / solve(Matrix)

static void BM_TrsmBlocked(benchmark::State& state) {
  // L·X = B for 256 right-hand sides, L the n×n Cholesky factor.
  const std::size_t n = state.range(0);
  la::Matrix spd = makeSpd(n, 4);
  la::choleskyInPlaceBlocked(spd);
  const la::Matrix b = makeDense(n, 256, 5);
  for (auto _ : state) {
    la::Matrix x = b;
    la::trsmLowerLeft(spd, x);
    benchmark::DoNotOptimize(x.data().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n) * n * 256 / 2);
}
BENCHMARK(BM_TrsmBlocked)
    ->Arg(128)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

static void BM_SolveMultiRhsBlocked(benchmark::State& state) {
  // Cholesky::solve(Matrix) through the in-place trsm pair.
  const std::size_t n = state.range(0);
  KernelGuard guard(true);
  const la::Cholesky chol(makeSpd(n, 4));
  const la::Matrix b = makeDense(n, 256, 5);
  for (auto _ : state)
    benchmark::DoNotOptimize(chol.solve(b).data().data());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n) * n * 256);
}
BENCHMARK(BM_SolveMultiRhsBlocked)
    ->Arg(128)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

static void BM_SolveMultiRhsReference(benchmark::State& state) {
  // The seed path: per-column col() copy + two vector substitutions.
  const std::size_t n = state.range(0);
  KernelGuard guard(false);
  const la::Cholesky chol(makeSpd(n, 4));
  const la::Matrix b = makeDense(n, 256, 5);
  for (auto _ : state)
    benchmark::DoNotOptimize(chol.solve(b).data().data());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n) * n * 256);
}
BENCHMARK(BM_SolveMultiRhsReference)
    ->Arg(128)->Arg(256)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

// -------------------------------------------------------- gram/dist cache

static void BM_GramUncached(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const la::Matrix x = makeDense(n, 4, 6);
  const auto k = gp::makeSquaredExponential(1.0, 1.0);
  for (auto _ : state) benchmark::DoNotOptimize(k->gram(x).maxAbs());
  state.SetComplexityN(n);
}
BENCHMARK(BM_GramUncached)->Arg(250)->Arg(512)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

static void BM_GramCached(benchmark::State& state) {
  // Distances precomputed once (as in one GP fit); each iteration is the
  // per-theta cost: one pointwise k(s) per pair.
  const std::size_t n = state.range(0);
  const la::Matrix x = makeDense(n, 4, 6);
  const auto k = gp::makeSquaredExponential(1.0, 1.0);
  gp::DistanceCache cache;
  cache.sync(x);
  for (auto _ : state)
    benchmark::DoNotOptimize(k->gram(x, cache).maxAbs());
  state.SetComplexityN(n);
}
BENCHMARK(BM_GramCached)->Arg(250)->Arg(512)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// ------------------------------------------------------------------ main

namespace {

/// Direct A/B timings for the acceptance numbers, independent of
/// google-benchmark's adaptive iteration counts.
void printSpeedupSummaries() {
  {
    const std::size_t n = 1024;
    const la::Matrix spd = makeSpd(n, 1);
    alperf::Parallelism::setThreads(1);
    la::Matrix ref = spd, blk = spd;
    const double refMs =
        wallMillis([&] { la::choleskyInPlaceReference(ref); });
    const double blkMs = wallMillis([&] { la::choleskyInPlaceBlocked(blk); });
    alperf::Parallelism::setThreads(0);
    std::printf(
        "la_speedup {\"kernel\":\"cholesky\",\"n\":%zu,\"threads\":1,"
        "\"ref_millis\":%.2f,\"blocked_millis\":%.2f,\"speedup\":%.2f}\n",
        n, refMs, blkMs, refMs / blkMs);
  }
  {
    // Bit-identity of the blocked factor across thread counts.
    const std::size_t n = 512;
    const la::Matrix spd = makeSpd(n, 7);
    alperf::Parallelism::setThreads(1);
    la::Matrix base = spd;
    la::choleskyInPlaceBlocked(base);
    bool identical = true;
    for (int t : {2, 4, 8}) {
      alperf::Parallelism::setThreads(t);
      la::Matrix work = spd;
      la::choleskyInPlaceBlocked(work);
      const auto a = base.data();
      const auto b = work.data();
      for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i] != b[i]) {
          identical = false;
          break;
        }
    }
    alperf::Parallelism::setThreads(0);
    std::printf(
        "la_determinism {\"kernel\":\"cholesky\",\"n\":%zu,"
        "\"bit_identical\":%s}\n",
        n, identical ? "true" : "false");
  }
  {
    const std::size_t n = 1000;
    const la::Matrix x = makeDense(n, 4, 6);
    const auto k = gp::makeSquaredExponential(1.0, 1.0);
    gp::DistanceCache cache;
    const double syncMs = wallMillis([&] { cache.sync(x); });
    double uncachedMs = 0.0, cachedMs = 0.0;
    const int reps = 5;
    for (int r = 0; r < reps; ++r) {
      uncachedMs += wallMillis([&] {
        benchmark::DoNotOptimize(k->gram(x).maxAbs());
      });
      cachedMs += wallMillis([&] {
        benchmark::DoNotOptimize(k->gram(x, cache).maxAbs());
      });
    }
    std::printf(
        "gram_cache {\"n\":%zu,\"sync_millis\":%.2f,"
        "\"uncached_millis\":%.2f,\"cached_millis\":%.2f,"
        "\"speedup\":%.2f,\"hit_rate\":1.0}\n",
        n, syncMs, uncachedMs / reps, cachedMs / reps,
        uncachedMs / cachedMs);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  alperf::PerfRegistry::instance().reset();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  printSpeedupSummaries();
  std::printf("perf_stats %s\n",
              alperf::PerfRegistry::instance().toJson().c_str());
  return 0;
}
