// Ablation A7: static experiment designs vs adaptive AL — the paper's
// core motivation (Sec. I-II): "fixed experiment designs can require many
// experiments, and can explore the problem space inefficiently ...
// [static designs] do not change as measurements become available."
//
// At equal experiment budgets on the 2-D subset, compares GP models
// trained on: a 2-level factorial corner design, a Latin hypercube, a
// random sample, and the points chosen adaptively by Variance-Reduction
// AL (all executed against the same finite pool via nearest matching).

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <set>

#include "bench_common.hpp"
#include "core/learner.hpp"
#include "data/doe.hpp"
#include "stats/descriptive.hpp"
#include "stats/sampling.hpp"

namespace al = alperf::al;
namespace bench = alperf::bench;
namespace data = alperf::data;
namespace la = alperf::la;
namespace st = alperf::stats;
using alperf::stats::Rng;

namespace {

/// Fits a GP to the given pool rows and returns the RMSE over the rest.
double evaluateDesign(const al::RegressionProblem& problem,
                      std::vector<std::size_t> trainRows, Rng& rng) {
  std::sort(trainRows.begin(), trainRows.end());
  la::Matrix x(trainRows.size(), problem.dim());
  la::Vector y(trainRows.size());
  for (std::size_t i = 0; i < trainRows.size(); ++i) {
    const auto row = problem.x.row(trainRows[i]);
    std::copy(row.begin(), row.end(), x.row(i).begin());
    y[i] = problem.y[trainRows[i]];
  }
  auto g = bench::makeGp(problem.dim(), 1e-2, 1, 30);
  g.fit(std::move(x), std::move(y), rng);

  std::vector<double> pred, truth;
  const std::set<std::size_t> taken(trainRows.begin(), trainRows.end());
  for (std::size_t i = 0; i < problem.size(); ++i) {
    if (taken.count(i)) continue;
    pred.push_back(g.predictOne(problem.x.row(i)).first);
    truth.push_back(problem.y[i]);
  }
  return st::rmse(pred, truth);
}

}  // namespace

int main() {
  const auto problem = bench::fig6Problem();
  std::printf("2-D subset: %zu jobs; budget sweep, 6 replicates each\n",
              problem.size());

  // Pool bounding box for scaling unit-cube designs.
  la::Vector lo(2, 1e300), hi(2, -1e300);
  for (std::size_t i = 0; i < problem.size(); ++i)
    for (std::size_t j = 0; j < 2; ++j) {
      lo[j] = std::min(lo[j], problem.x(i, j));
      hi[j] = std::max(hi[j], problem.x(i, j));
    }

  bench::section("A7: static designs vs adaptive AL at equal budgets");
  std::printf("  %-8s %-12s %-12s %-12s %-12s\n", "budget", "factorial",
              "LHS", "random", "AL (VR)");
  double alFinal = 0.0, bestStaticFinal = 0.0;
  for (int budget : {4, 8, 16, 32}) {
    double facSum = 0.0, lhsSum = 0.0, rndSum = 0.0, alSum = 0.0;
    const int reps = 6;
    for (int rep = 0; rep < reps; ++rep) {
      Rng rng(1000 + 17 * rep + budget);

      // 2-level factorial replicated to the budget (corners first).
      la::Matrix corners = data::twoLevelFactorial(2);  // 4 corners
      la::Matrix facDesign(budget, 2);
      for (int i = 0; i < budget; ++i)
        for (int j = 0; j < 2; ++j)
          facDesign(i, j) = 0.5 * (corners(i % 4, j) + 1.0);
      data::scaleToBounds(facDesign, lo, hi);
      facSum += evaluateDesign(
          problem, data::nearestPoolRows(problem.x, facDesign), rng);

      la::Matrix lhsDesign = data::latinHypercube(budget, 2, rng, 10);
      data::scaleToBounds(lhsDesign, lo, hi);
      lhsSum += evaluateDesign(
          problem, data::nearestPoolRows(problem.x, lhsDesign), rng);

      rndSum += evaluateDesign(
          problem,
          st::sampleWithoutReplacement(problem.size(), budget, rng), rng);

      // Adaptive: run VR AL for `budget` picks, score its chosen rows.
      al::AlConfig cfg;
      cfg.maxIterations = budget - 1;  // initial point counts too
      al::ActiveLearner learner(problem, bench::makeGp(2, 1e-2, 1, 30),
                                std::make_unique<al::VarianceReduction>(),
                                cfg);
      const auto result = learner.run(rng);
      std::vector<std::size_t> rows = result.partition.initial;
      for (const auto& rec : result.history) rows.push_back(rec.chosenRow);
      alSum += evaluateDesign(problem, rows, rng);
    }
    std::printf("  %-8d %-12s %-12s %-12s %-12s\n", budget,
                bench::fmt(facSum / reps).c_str(),
                bench::fmt(lhsSum / reps).c_str(),
                bench::fmt(rndSum / reps).c_str(),
                bench::fmt(alSum / reps).c_str());
    if (budget == 32) {
      alFinal = alSum / reps;
      bestStaticFinal =
          std::min({facSum / reps, lhsSum / reps, rndSum / reps});
    }
  }

  bench::paperVs("factorial designs waste budget on few distinct corners",
                 "critique of 2^k designs (Sec. II-B)",
                 "see factorial column plateau");
  bench::paperVs("adaptive AL competitive with the best static design",
                 "the paper's motivation",
                 "AL " + bench::fmt(alFinal) + " vs best static " +
                     bench::fmt(bestStaticFinal) + " at budget 32");
  return 0;
}
