// Reproduces Figure 6: Active Learning with Variance Reduction on the 2-D
// (problem size × frequency) subset — the exploration trajectory after 10
// and 100 iterations.
//
// Paper's observation: in a "star-like pattern, AL chooses experiments at
// the edges and, only after exhausting all edge points, progresses toward
// the middle" of the domain.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/learner.hpp"

namespace al = alperf::al;
namespace bench = alperf::bench;
using alperf::stats::Rng;

namespace {

/// Fraction of picks whose (size, freq) lies in the outer band of the
/// active-pool bounding box.
double edgeFraction(const al::RegressionProblem& problem,
                    const al::AlResult& result, std::size_t firstK,
                    double band) {
  double sLo = 1e300, sHi = -1e300, fLo = 1e300, fHi = -1e300;
  for (std::size_t r : result.partition.active) {
    sLo = std::min(sLo, problem.x(r, 0));
    sHi = std::max(sHi, problem.x(r, 0));
    fLo = std::min(fLo, problem.x(r, 1));
    fHi = std::max(fHi, problem.x(r, 1));
  }
  int edge = 0;
  const std::size_t k = std::min(firstK, result.history.size());
  for (std::size_t i = 0; i < k; ++i) {
    const double s = problem.x(result.history[i].chosenRow, 0);
    const double f = problem.x(result.history[i].chosenRow, 1);
    const bool sEdge =
        (s - sLo) < band * (sHi - sLo) || (sHi - s) < band * (sHi - sLo);
    const bool fEdge =
        (f - fLo) < band * (fHi - fLo) || (fHi - f) < band * (fHi - fLo);
    if (sEdge || fEdge) ++edge;
  }
  return static_cast<double>(edge) / static_cast<double>(k);
}

}  // namespace

int main() {
  const auto problem = bench::fig6Problem();
  std::printf("2-D subset: %zu jobs (poisson1, NP=32); paper's analogous "
              "subset had 251\n",
              problem.size());

  al::AlConfig cfg;
  cfg.maxIterations = 100;
  cfg.nInitial = 1;
  cfg.activeFraction = 0.8;

  al::ActiveLearner learner(problem, bench::makeGp(2, 1e-1, 1),
                            std::make_unique<al::VarianceReduction>(), cfg);
  Rng rng(42);
  const auto result = learner.run(rng);

  bench::section("Fig. 6a: first 10 iterations (trajectory)");
  std::printf("  %-5s %-14s %-10s %-10s\n", "iter", "log10(size)",
              "freq", "sigma");
  for (std::size_t i = 0; i < std::min<std::size_t>(10, result.history.size());
       ++i) {
    const auto& rec = result.history[i];
    std::printf("  %-5d %-14s %-10s %-10s\n", rec.iteration,
                bench::fmt(problem.x(rec.chosenRow, 0)).c_str(),
                bench::fmt(problem.x(rec.chosenRow, 1)).c_str(),
                bench::fmt(rec.sigmaAtPick).c_str());
  }
  const double early = edgeFraction(problem, result, 10, 0.15);
  bench::paperVs("early picks land on the domain edges (star pattern)",
                 "yes (Fig. 6a)",
                 bench::fmt(100.0 * early) + "% of first 10 in edge band");

  bench::section("Fig. 6b: 100 iterations (edges first, middle later)");
  const std::size_t total = result.history.size();
  const double first20 = edgeFraction(problem, result, 20, 0.15);
  // Occupancy of the middle region grows over time: compare middle-region
  // pick counts in the first vs second half of the run.
  double sLo = 1e300, sHi = -1e300, fLo = 1e300, fHi = -1e300;
  for (std::size_t r : result.partition.active) {
    sLo = std::min(sLo, problem.x(r, 0));
    sHi = std::max(sHi, problem.x(r, 0));
    fLo = std::min(fLo, problem.x(r, 1));
    fHi = std::max(fHi, problem.x(r, 1));
  }
  // Interior points are picked later on average than edge/corner points
  // (the paper's "only after exhausting all edge points" behaviour).
  double edgeIterSum = 0.0, midIterSum = 0.0;
  int edgeN = 0, midN = 0;
  for (std::size_t i = 0; i < total; ++i) {
    const double s = problem.x(result.history[i].chosenRow, 0);
    const double f = problem.x(result.history[i].chosenRow, 1);
    const bool mid = (s - sLo) > 0.25 * (sHi - sLo) &&
                     (sHi - s) > 0.25 * (sHi - sLo) &&
                     (f - fLo) > 0.25 * (fHi - fLo) &&
                     (fHi - f) > 0.25 * (fHi - fLo);
    if (mid) {
      midIterSum += static_cast<double>(i);
      ++midN;
    } else {
      edgeIterSum += static_cast<double>(i);
      ++edgeN;
    }
  }
  std::printf("  ran %zu iterations; edge fraction of first 20 picks: %s%%\n",
              total, bench::fmt(100.0 * first20).c_str());
  (void)edgeIterSum;
  (void)midIterSum;
  (void)edgeN;
  (void)midN;
  // Enrichment: edge fraction among the early picks vs the edge fraction
  // of the whole pool (the base rate a random policy would hit).
  int poolEdge = 0;
  for (std::size_t r : result.partition.active) {
    const double s = problem.x(r, 0);
    const double f = problem.x(r, 1);
    const bool sEdge = (s - sLo) < 0.15 * (sHi - sLo) ||
                       (sHi - s) < 0.15 * (sHi - sLo);
    const bool fEdge = (f - fLo) < 0.15 * (fHi - fLo) ||
                       (fHi - f) < 0.15 * (fHi - fLo);
    if (sEdge || fEdge) ++poolEdge;
  }
  const double baseRate = static_cast<double>(poolEdge) /
                          static_cast<double>(result.partition.active.size());
  bench::paperVs("early picks over-represent the edges vs the pool",
                 "yes (Fig. 6b star pattern)",
                 bench::fmt(100.0 * first20) + "% of first 20 vs " +
                     bench::fmt(100.0 * baseRate) + "% pool base rate");

  // Uncertainty at picks decays as the space is covered: compare the max
  // over the first 10 picks with the mean of the last 10.
  double earlyMax = 0.0, lateMean = 0.0;
  for (std::size_t i = 0; i < std::min<std::size_t>(10, total); ++i)
    earlyMax = std::max(earlyMax, result.history[i].sigmaAtPick);
  for (std::size_t i = total - std::min<std::size_t>(10, total); i < total;
       ++i)
    lateMean += result.history[i].sigmaAtPick;
  lateMean /= std::min<std::size_t>(10, total);
  bench::paperVs("pick uncertainty decays over the run", "yes",
                 "max(first 10) " + bench::fmt(earlyMax) +
                     " -> mean(last 10) " + bench::fmt(lateMean));
  return 0;
}
