// Ablation A4: batch (parallel-experiment) selection — the paper's
// Sec. VI future work: "some experiments could reasonably be run in
// parallel which ... may indicate a less greedy selection strategy".
//
// Compares, at equal numbers of *experiments consumed*:
//   one-at-a-time greedy (batch 1, the paper's loop),
//   naive top-k by variance (batch 4) — picks redundant neighbours,
//   fantasy-batch (batch 4) — conditions the GP variance on each pick
//   before making the next, avoiding redundancy.

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "core/batch.hpp"

namespace al = alperf::al;
namespace bench = alperf::bench;

namespace {

al::BatchResult runBatchSize(const al::RegressionProblem& problem,
                             std::size_t batchSize, bool fantasy) {
  al::BatchConfig cfg;
  cfg.replicates = 8;
  cfg.seed = 37;
  cfg.al.batchSize = batchSize;
  cfg.al.maxIterations = static_cast<int>(48 / batchSize);
  cfg.al.refitEvery = 1;
  return al::runBatch(
      problem, bench::makeGp(2, 1e-1, 1, 30),
      [fantasy]() -> al::StrategyPtr {
        if (fantasy) return std::make_unique<al::FantasyBatch>();
        return std::make_unique<al::VarianceReduction>();
      },
      cfg);
}

double finalRmse(const al::BatchResult& b) {
  return b.meanSeries(&al::IterationRecord::rmse).back();
}

}  // namespace

int main() {
  const auto problem = bench::fig6Problem();
  std::printf("2-D subset: %zu jobs; 8 partitions; 48 experiments per run\n",
              problem.size());

  bench::section("A4: batch selection at equal experiment budgets");
  const auto greedy = runBatchSize(problem, 1, false);
  const auto naive4 = runBatchSize(problem, 4, false);
  const auto fantasy4 = runBatchSize(problem, 4, true);

  std::printf("  %-28s %-12s %-14s\n", "policy", "final RMSE",
              "GP refits used");
  std::printf("  %-28s %-12s %-14d\n", "greedy (batch=1)",
              bench::fmt(finalRmse(greedy)).c_str(), 48);
  std::printf("  %-28s %-12s %-14d\n", "top-k variance (batch=4)",
              bench::fmt(finalRmse(naive4)).c_str(), 12);
  std::printf("  %-28s %-12s %-14d\n", "fantasy batch (batch=4)",
              bench::fmt(finalRmse(fantasy4)).c_str(), 12);

  bench::paperVs("greedy one-at-a-time is the reference quality",
                 "implied (most information per pick)",
                 "RMSE " + bench::fmt(finalRmse(greedy)));
  // On this discrete 99-job pool the candidates are spread widely, so
  // naive top-k rarely picks redundant neighbours and both batch
  // policies track the greedy reference closely; fantasy batching's
  // advantage appears on pools with clustered repeats.
  const double worstBatch =
      std::max(finalRmse(naive4), finalRmse(fantasy4));
  bench::paperVs("batched selection stays close to greedy quality",
                 "hoped for (Sec. VI 'run in parallel')",
                 "worst batch RMSE " + bench::fmt(worstBatch) + " vs greedy " +
                     bench::fmt(finalRmse(greedy)));
  bench::paperVs("batch mode cuts GP refits 4x (parallel experiments)",
                 "the motivation for batching", "12 vs 48 refits");
  return 0;
}
