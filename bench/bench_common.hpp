#pragma once

/// \file bench_common.hpp
/// Shared helpers for the paper-reproduction benchmark binaries: report
/// formatting, the cached Table-I-scale dataset, and the standard problem
/// subsets / GP prototypes the figures use.

#include <string>

#include "cluster/dataset.hpp"
#include "core/problem.hpp"
#include "gp/gp.hpp"

namespace alperf::bench {

/// Prints a prominent section header.
void section(const std::string& title);

/// Prints a "paper vs measured" comparison line.
void paperVs(const std::string& metric, const std::string& paper,
             const std::string& measured);

/// Formats a double compactly (4 significant digits).
std::string fmt(double v);

/// The full Table-I-scale campaign (3246 jobs, seed 42), generated once
/// per process and cached.
const cluster::GeneratedDataset& tableOneDataset();

/// Rows of `performance` with the given operator and NP (the paper's
/// Fig. 6 subset is poisson1 / NP = 32), with a CostCoreS column
/// (runtime × cores) appended.
data::Table subsetByOperatorNp(const data::Table& performance,
                               const std::string& op, double np);

/// The Fig. 6 regression problem: features (log10 GlobalSize, FreqGHz),
/// response log10 RuntimeS, cost = runtime · cores (core-seconds).
al::RegressionProblem fig6Problem();

/// The Fig. 3 1-D problem: poisson1, NP = 32, Freq = 2.4; feature
/// log10 GlobalSize, response log10 RuntimeS.
al::RegressionProblem fig3Problem();

/// Standard GP prototype for d-dimensional inputs: Constant * ARD-RBF,
/// noise variance bounded below by `noiseLo`.
gp::GaussianProcess makeGp(std::size_t dims, double noiseLo = 1e-8,
                           int restarts = 2, int optIterations = 40);

}  // namespace alperf::bench
