// Reproduces Figure 8: Variance Reduction vs Cost Efficiency over 50
// random partitions of the 2-D Performance subset.
//
// (a) Error and uncertainty reduction: Cost Efficiency's RMSE and AMSD
//     converge more slowly per iteration, but both strategies converge
//     after roughly the same number of iterations.
// (b) Cumulative cost growth and the cost–error tradeoff: the curves
//     intersect at cost C; beyond C, Cost Efficiency achieves lower error
//     at equal cost — the paper reports a maximum reduction of 38% and
//     {25, 21, 16, 13}% at {2, 3, 5, 10}×C.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/tradeoff.hpp"

namespace al = alperf::al;
namespace bench = alperf::bench;

int main() {
  const auto problem = bench::fig6Problem();
  std::printf("2-D subset: %zu jobs (poisson1, NP=32); 50 paired random "
              "partitions\n",
              problem.size());

  al::BatchConfig cfg;
  cfg.replicates = 50;
  cfg.seed = 8;
  cfg.al.maxIterations = -1;  // run each pool to exhaustion
  cfg.al.nInitial = 1;
  cfg.al.activeFraction = 0.8;
  cfg.al.refitEvery = 3;  // hyperparameter refit cadence (cost control)

  const auto results = al::runPairedBatch(
      problem, bench::makeGp(2, 1e-1, 1, 30),
      {[] { return std::make_unique<al::VarianceReduction>(); },
       [] { return std::make_unique<al::CostEfficiency>(); }},
      cfg);
  const auto& vr = results[0];
  const auto& ce = results[1];

  bench::section("Fig. 8a: reduction of error and uncertainty");
  const auto vrRmse = vr.meanSeries(&al::IterationRecord::rmse);
  const auto ceRmse = ce.meanSeries(&al::IterationRecord::rmse);
  const auto vrAmsd = vr.meanSeries(&al::IterationRecord::amsd);
  const auto ceAmsd = ce.meanSeries(&al::IterationRecord::amsd);
  std::printf("  %-5s %-21s %-21s\n", "", "RMSE (VR / CE)",
              "AMSD (VR / CE)");
  for (std::size_t i = 0; i < vrRmse.size(); i += (i < 10 ? 1 : 10))
    std::printf("  %-5zu %-10s %-10s %-10s %-10s\n", i,
                bench::fmt(vrRmse[i]).c_str(), bench::fmt(ceRmse[i]).c_str(),
                bench::fmt(vrAmsd[i]).c_str(),
                bench::fmt(ceAmsd[i]).c_str());
  // CE converges more slowly early on (higher error at iteration 5) but
  // both settle.
  const std::size_t probe = std::min<std::size_t>(5, vrRmse.size() - 1);
  bench::paperVs("CE's RMSE converges more slowly per iteration",
                 "yes (Fig. 8a)",
                 "RMSE@iter5: CE " + bench::fmt(ceRmse[probe]) + " vs VR " +
                     bench::fmt(vrRmse[probe]));
  bench::paperVs(
      "both converge after ~ the same number of iterations", "yes",
      "final RMSE: VR " + bench::fmt(vrRmse.back()) + ", CE " +
          bench::fmt(ceRmse.back()));

  bench::section("Fig. 8b: cumulative cost and cost-error tradeoff");
  const auto vrCost = vr.meanSeries(&al::IterationRecord::cumulativeCost);
  const auto ceCost = ce.meanSeries(&al::IterationRecord::cumulativeCost);
  // Probe mid-run: by pool exhaustion both have consumed everything, so
  // the interesting gap is in how fast cost accumulates along the way.
  const std::size_t mid = vrCost.size() / 2;
  std::printf("  mean cumulative cost (core-seconds) at iteration %zu: "
              "VR %s vs CE %s; final (all jobs) %s\n",
              mid, bench::fmt(vrCost[mid]).c_str(),
              bench::fmt(ceCost[mid]).c_str(),
              bench::fmt(vrCost.back()).c_str());
  bench::paperVs("CE accumulates cost far more slowly", "yes",
                 bench::fmt(vrCost[mid] / ceCost[mid]) +
                     "x cheaper at the half-way iteration");

  const auto vrCurve = al::aggregateTradeoff(vr, 200);
  const auto ceCurve = al::aggregateTradeoff(ce, 200);
  const auto report = al::compareTradeoffs(vrCurve, ceCurve);
  if (!report.found) {
    std::printf("  NO crossover found: CE never dominates VR on this run\n");
    return 0;
  }
  std::printf("  tradeoff curves intersect at C = %s core-seconds\n",
              bench::fmt(report.crossoverCost).c_str());
  bench::paperVs("curves intersect at a finite cost C",
                 "C = 1626 (their units)",
                 "C = " + bench::fmt(report.crossoverCost) +
                     " core-seconds (different substrate, shape matches)");
  const double paperRed[] = {0.0, 25.0, 21.0, 16.0, 13.0};
  const double paperMul[] = {1.0, 2.0, 3.0, 5.0, 10.0};
  for (std::size_t i = 0; i < report.reductions.size(); ++i) {
    const auto [mult, red] = report.reductions[i];
    std::string paper = "-";
    for (int k = 1; k < 5; ++k)
      if (paperMul[k] == mult)
        paper = bench::fmt(paperRed[k]) + "%";
    bench::paperVs("error reduction of CE vs VR at " + bench::fmt(mult) +
                       "*C",
                   paper, bench::fmt(100.0 * red) + "%");
  }
  bench::paperVs("maximum error reduction after C", "38%",
                 bench::fmt(100.0 * report.maxReduction) + "% at cost " +
                     bench::fmt(report.maxReductionCost));
  bench::paperVs("curves meet again at maximum cost (all jobs consumed)",
                 "yes",
                 "final-error gap = " +
                     bench::fmt(std::abs(vrCurve.error.back() -
                                         ceCurve.error.back())));
  return 0;
}
