// Ablation A2: the full strategy roster on identical partitions —
// the paper's two GPR-variance strategies (Variance Reduction, Cost
// Efficiency) against the baselines it discusses: random sampling, the
// linear-cost variant, and EMCM (Cai et al. 2013), the bootstrap-ensemble
// method the paper argues is ill-suited to noisy performance data.

#include <cstdio>

#include "bench_common.hpp"
#include "core/batch.hpp"

namespace al = alperf::al;
namespace bench = alperf::bench;

int main() {
  const auto problem = bench::fig6Problem();
  std::printf("2-D subset: %zu jobs; 10 paired partitions, 40 iterations\n",
              problem.size());

  al::BatchConfig cfg;
  cfg.replicates = 10;
  cfg.seed = 31;
  cfg.al.maxIterations = 40;
  cfg.al.refitEvery = 2;

  const std::vector<std::pair<std::string, al::StrategyFactory>> roster{
      {"variance_reduction",
       [] { return std::make_unique<al::VarianceReduction>(); }},
      {"cost_efficiency",
       [] { return std::make_unique<al::CostEfficiency>(); }},
      {"cost_weighted_var",
       [] { return std::make_unique<al::CostWeightedVariance>(); }},
      {"random", [] { return std::make_unique<al::RandomSelection>(); }},
      {"emcm", [] { return std::make_unique<al::Emcm>(4); }},
  };
  std::vector<al::StrategyFactory> factories;
  for (const auto& [name, f] : roster) factories.push_back(f);

  const auto results =
      al::runPairedBatch(problem, bench::makeGp(2, 1e-1, 1, 30), factories,
                         cfg);

  bench::section("A2: strategy roster (same 10 partitions each)");
  std::printf("  %-20s %-10s %-10s %-12s %-12s\n", "strategy", "RMSE@20",
              "RMSE@40", "cost@40", "RMSE*cost");
  double vrRmse = 0.0, randomRmse = 0.0, emcmRmse = 0.0;
  for (std::size_t s = 0; s < roster.size(); ++s) {
    const auto rmse = results[s].meanSeries(&al::IterationRecord::rmse);
    const auto cost =
        results[s].meanSeries(&al::IterationRecord::cumulativeCost);
    std::printf("  %-20s %-10s %-10s %-12s %-12s\n", roster[s].first.c_str(),
                bench::fmt(rmse[20]).c_str(), bench::fmt(rmse.back()).c_str(),
                bench::fmt(cost.back()).c_str(),
                bench::fmt(rmse.back() * cost.back()).c_str());
    if (roster[s].first == "variance_reduction") vrRmse = rmse.back();
    if (roster[s].first == "random") randomRmse = rmse.back();
    if (roster[s].first == "emcm") emcmRmse = rmse.back();
  }

  bench::paperVs("GPR-variance AL beats random sampling",
                 "motivates the framework",
                 "RMSE " + bench::fmt(vrRmse) + " vs random " +
                     bench::fmt(randomRmse));
  bench::paperVs("EMCM is not better than GPR-variance AL here",
                 "expected (Sec. III critique)",
                 "EMCM RMSE " + bench::fmt(emcmRmse) + " vs VR " +
                     bench::fmt(vrRmse));
  return 0;
}
