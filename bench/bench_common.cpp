#include "bench_common.hpp"

#include <cstdio>

#include "gp/kernels.hpp"
#include <sstream>

namespace alperf::bench {

void section(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

void paperVs(const std::string& metric, const std::string& paper,
             const std::string& measured) {
  std::printf("  %-52s paper: %-18s measured: %s\n", metric.c_str(),
              paper.c_str(), measured.c_str());
}

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(4);
  os << v;
  return os.str();
}

const cluster::GeneratedDataset& tableOneDataset() {
  static const cluster::GeneratedDataset ds = [] {
    std::printf("[generating Table-I-scale campaign: 3246 jobs, seed 42]\n");
    return cluster::DatasetGenerator().generate();
  }();
  return ds;
}

data::Table subsetByOperatorNp(const data::Table& performance,
                               const std::string& op, double np) {
  auto sub = performance.filter([&](std::size_t i) {
    return performance.categorical("Operator")[i] == op &&
           performance.numeric("NP")[i] == np;
  });
  std::vector<double> cost(sub.numRows());
  for (std::size_t i = 0; i < sub.numRows(); ++i)
    cost[i] = sub.numeric("RuntimeS")[i] * sub.numeric("CoresUsed")[i];
  sub.addNumeric("CostCoreS", std::move(cost));
  return sub;
}

al::RegressionProblem fig6Problem() {
  const auto sub =
      subsetByOperatorNp(tableOneDataset().performance, "poisson1", 32.0);
  return al::makeProblem(sub, {"GlobalSize", "FreqGHz"}, "RuntimeS",
                         "CostCoreS", {"GlobalSize", "RuntimeS"});
}

al::RegressionProblem fig3Problem() {
  const auto& perf = tableOneDataset().performance;
  auto sub = perf.filter([&](std::size_t i) {
    return perf.categorical("Operator")[i] == "poisson1" &&
           perf.numeric("NP")[i] == 32.0 && perf.numeric("FreqGHz")[i] == 2.4;
  });
  std::vector<double> cost(sub.numRows());
  for (std::size_t i = 0; i < sub.numRows(); ++i)
    cost[i] = sub.numeric("RuntimeS")[i] * sub.numeric("CoresUsed")[i];
  sub.addNumeric("CostCoreS", std::move(cost));
  return al::makeProblem(sub, {"GlobalSize"}, "RuntimeS", "CostCoreS",
                         {"GlobalSize", "RuntimeS"});
}

gp::GaussianProcess makeGp(std::size_t dims, double noiseLo, int restarts,
                           int optIterations) {
  gp::GpConfig cfg;
  cfg.nRestarts = restarts;
  cfg.noise.lo = noiseLo;
  cfg.noise.initial = std::max(1e-2, noiseLo);
  cfg.optStop.maxIterations = optIterations;
  return gp::GaussianProcess(
      gp::makeSquaredExponentialArd(1.0, std::vector<double>(dims, 1.0)),
      cfg);
}

}  // namespace alperf::bench
