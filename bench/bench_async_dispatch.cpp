// Async dispatch throughput: what bounded in-flight execution buys on a
// high-latency measurement backend. A simulated oracle sleeps ~100 ms per
// measurement (a cluster scheduler in miniature); the dispatcher A/B
// compares maxInFlight = 1 (the synchronous regime: every measurement
// blocks the loop) against 2/4/8 concurrent slots. With sleeps as the
// only work, k slots overlap almost perfectly, so the expected speedup at
// k = 8 is ~8× — CI gates on ≥ 3× to leave headroom for loaded runners.
// A second section runs a real AL campaign through the same latency to
// show the end-to-end effect with GP fits and scoring on the loop.
//
// Usage: bench_async_dispatch [OUT.json] — also writes the machine-
// readable summary to OUT.json when given (uploaded as a CI artifact).

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/dispatch.hpp"
#include "core/learner.hpp"

namespace bench = alperf::bench;
namespace al = alperf::al;
using alperf::Measurement;
using alperf::stats::Rng;

namespace {

constexpr int kLatencyMs = 100;
constexpr std::size_t kJobs = 16;

double dispatcherWallClock(const al::RegressionProblem& problem,
                           int maxInFlight) {
  const al::Oracle oracle = [&](std::size_t row) {
    std::this_thread::sleep_for(std::chrono::milliseconds(kLatencyMs));
    return Measurement::ok(problem.y[row], problem.cost[row]);
  };
  al::ExecutionConfig exec;
  exec.maxInFlight = maxInFlight;
  al::AsyncDispatcher dispatcher(oracle, exec);

  const auto start = std::chrono::steady_clock::now();
  std::size_t next = 0;
  std::size_t committed = 0;
  while (committed < kJobs) {
    while (next < kJobs && !dispatcher.full()) {
      dispatcher.submit(next, problem.x.row(next));
      ++next;
    }
    (void)dispatcher.commitNext();
    ++committed;
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double campaignWallClock(const al::RegressionProblem& problem,
                         int maxInFlight) {
  al::AlConfig cfg;
  cfg.nInitial = 3;
  cfg.maxIterations = 12;
  cfg.refitEvery = 4;
  cfg.execution.maxInFlight = maxInFlight;
  al::ActiveLearner learner(problem, bench::makeGp(problem.dim()),
                            std::make_unique<al::VarianceReduction>(), cfg);
  const al::Oracle oracle = [&](std::size_t row) {
    std::this_thread::sleep_for(std::chrono::milliseconds(kLatencyMs / 2));
    return Measurement::ok(problem.y[row], problem.cost[row]);
  };
  Rng rng(7);
  const auto start = std::chrono::steady_clock::now();
  const auto result = learner.runFallible(oracle, al::RetryPolicy{}, rng);
  const double sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::printf("    (%zu records, stop: %s)\n", result.history.size(),
              al::toString(result.stopReason).c_str());
  return sec;
}

}  // namespace

int main(int argc, char** argv) {
  bench::section("Async dispatch: wall-clock vs maxInFlight");
  const al::RegressionProblem problem = bench::fig6Problem();

  std::printf("  dispatcher A/B: %zu jobs, %d ms simulated latency\n", kJobs,
              kLatencyMs);
  const double k1 = dispatcherWallClock(problem, 1);
  std::printf("  %-12s %8.3f s\n", "k = 1", k1);
  std::vector<std::pair<int, double>> widths;
  for (const int k : {2, 4, 8}) {
    const double sec = dispatcherWallClock(problem, k);
    widths.emplace_back(k, sec);
    std::printf("  %-12s %8.3f s   speedup %.2fx\n",
                ("k = " + std::to_string(k)).c_str(), sec, k1 / sec);
  }
  const double k8 = widths.back().second;
  const double speedup8 = k1 / k8;

  bench::section("Async dispatch: end-to-end AL campaign");
  std::printf("  12-pick campaign, %d ms latency, GP fits on the loop\n",
              kLatencyMs / 2);
  const double campaign1 = campaignWallClock(problem, 1);
  std::printf("  %-12s %8.3f s\n", "k = 1", campaign1);
  const double campaign8 = campaignWallClock(problem, 8);
  std::printf("  %-12s %8.3f s   speedup %.2fx\n", "k = 8", campaign8,
              campaign1 / campaign8);

  // Machine-readable summary (greppable line + optional artifact file).
  char json[512];
  std::snprintf(json, sizeof(json),
                "{\"bench\":\"async_dispatch\",\"jobs\":%zu,"
                "\"latency_ms\":%d,\"k1_sec\":%.4f,\"k8_sec\":%.4f,"
                "\"speedup_k8\":%.3f,\"campaign_k1_sec\":%.4f,"
                "\"campaign_k8_sec\":%.4f,\"campaign_speedup_k8\":%.3f}",
                kJobs, kLatencyMs, k1, k8, speedup8, campaign1, campaign8,
                campaign1 / campaign8);
  std::printf("\n%s\n", json);
  if (argc > 1) {
    if (std::FILE* f = std::fopen(argv[1], "w")) {
      std::fprintf(f, "%s\n", json);
      std::fclose(f);
      std::printf("summary written to %s\n", argv[1]);
    } else {
      std::printf("error: could not write %s\n", argv[1]);
      return 1;
    }
  }
  return 0;
}
