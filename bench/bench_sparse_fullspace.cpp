// Full-space modeling with the sparse GP: one model over the ENTIRE
// Performance dataset (all 3246 jobs, all four factors including the
// categorical operator, one-hot encoded) — the regime the paper's
// Sec. VI scalability study targets. An exact GP at n = 2600 training
// points costs O(n³) per LML evaluation; the DTC approximation with m
// inducing points costs O(n·m²) and makes the full-space fit routine.

#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "data/transform.hpp"
#include "gp/kernels.hpp"
#include "gp/sparse.hpp"
#include "stats/descriptive.hpp"
#include "stats/sampling.hpp"

namespace bench = alperf::bench;
namespace data = alperf::data;
namespace gp = alperf::gp;
namespace la = alperf::la;
namespace st = alperf::stats;
using alperf::stats::Rng;

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  bench::section("full-space model: all 3246 jobs, 6 features, sparse GP");
  data::Table perf = bench::tableOneDataset().performance;

  // Feature engineering: log size, NP, freq + operator one-hot.
  data::addLog10Column(perf, "GlobalSize", "LogSize");
  data::addLog10Column(perf, "RuntimeS", "LogRuntime");
  const auto opCols = data::oneHotEncode(perf, "Operator");
  std::vector<std::string> features{"LogSize", "NP", "FreqGHz"};
  features.insert(features.end(), opCols.begin(), opCols.end());

  la::Matrix x = perf.designMatrix(features);
  const auto yCol = perf.numeric("LogRuntime");
  la::Vector y(yCol.begin(), yCol.end());
  // Normalize NP to a comparable scale (log2).
  for (std::size_t i = 0; i < x.rows(); ++i) x(i, 1) = std::log2(x(i, 1));

  // 80/20 split.
  Rng rng(5);
  const auto perm = st::permutation(x.rows(), rng);
  const std::size_t nTrain = x.rows() * 8 / 10;
  la::Matrix trainX(nTrain, x.cols());
  la::Vector trainY(nTrain);
  la::Matrix testX(x.rows() - nTrain, x.cols());
  la::Vector testY(x.rows() - nTrain);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    auto& dst = i < nTrain ? trainX : testX;
    const std::size_t r = i < nTrain ? i : i - nTrain;
    const auto src = x.row(perm[i]);
    std::copy(src.begin(), src.end(), dst.row(r).begin());
    (i < nTrain ? trainY[r] : testY[r]) = y[perm[i]];
  }
  std::printf("  train %zu jobs, test %zu jobs, %zu features\n", nTrain,
              testY.size(), x.cols());

  std::printf("  %-10s %-12s %-12s %-14s\n", "m", "fit s", "RMSE",
              "RMSE(linear%)");
  double bestRmse = 1e300;
  for (std::size_t m : {16, 32, 64, 128, 256}) {
    gp::SparseGpConfig cfg;
    cfg.numInducing = m;
    cfg.noiseVariance = 1e-3;
    gp::SparseGaussianProcess sparse(
        gp::makeSquaredExponentialArd(
            1.0, std::vector<double>(x.cols(), 2.0)),
        cfg);
    Rng fitRng(7);
    const double t0 = now();
    sparse.fit(trainX, trainY, fitRng);
    const double fitSeconds = now() - t0;
    const auto pred = sparse.predict(testX);
    const double rmse = st::rmse(pred.mean, testY);
    bestRmse = std::min(bestRmse, rmse);
    // RMSE in log10-s translated to a typical relative runtime error.
    const double relPct = 100.0 * (std::pow(10.0, rmse) - 1.0);
    std::printf("  %-10zu %-12s %-12s %-14s\n", m,
                bench::fmt(fitSeconds).c_str(), bench::fmt(rmse).c_str(),
                bench::fmt(relPct).c_str());
  }

  bench::paperVs("one model over the complete campaign is tractable",
                 "Sec. VI scalability goal",
                 "best holdout RMSE " + bench::fmt(bestRmse) +
                     " log10-s across 2596 training jobs");
  bench::paperVs("accuracy grows with inducing-point budget",
                 "(DTC approximation property)", "see m sweep above");
  return 0;
}
