// Micro-benchmarks (google-benchmark) for the computational kernels — the
// paper's planned "computational requirements of competing GPR and AL
// algorithms" study (Sec. VI): Cholesky factorization, kernel Gram
// matrices, GP fit/predict scaling with training-set size, acquisition
// scoring, and the mini-HPGMG V-cycle.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>

#include "common/perf_stats.hpp"
#include "common/thread_pool.hpp"
#include "gp/gp.hpp"
#include "gp/kernels.hpp"
#include "gp/pool_predict_cache.hpp"
#include "gp/sparse.hpp"
#include "hpgmg/multigrid.hpp"
#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "stats/rng.hpp"

namespace gp = alperf::gp;
namespace la = alperf::la;
namespace hp = alperf::hpgmg;
using alperf::stats::Rng;

namespace {

la::Matrix randomPoints(std::size_t n, std::size_t d, Rng& rng) {
  la::Matrix x(n, d);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < d; ++j) x(i, j) = rng.uniformReal(-3.0, 3.0);
  return x;
}

la::Vector smoothResponse(const la::Matrix& x, Rng& rng) {
  la::Vector y(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i)
    y[i] = std::sin(x(i, 0)) + 0.1 * la::dot(x.row(i), x.row(i)) +
           rng.normal(0.0, 0.05);
  return y;
}

}  // namespace

static void BM_Cholesky(benchmark::State& state) {
  const std::size_t n = state.range(0);
  Rng rng(1);
  la::Matrix a = randomPoints(n, n, rng);
  la::Matrix spd = la::gram(a);
  spd.addToDiagonal(static_cast<double>(n));
  for (auto _ : state) {
    la::Cholesky chol(spd);
    benchmark::DoNotOptimize(chol.logDet());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Cholesky)->RangeMultiplier(2)->Range(16, 256)->Complexity();

static void BM_KernelGram(benchmark::State& state) {
  const std::size_t n = state.range(0);
  Rng rng(2);
  const la::Matrix x = randomPoints(n, 2, rng);
  const auto k = gp::makeSquaredExponentialArd(1.0, {1.0, 1.0});
  for (auto _ : state) benchmark::DoNotOptimize(k->gram(x).maxAbs());
  state.SetComplexityN(n);
}
BENCHMARK(BM_KernelGram)->RangeMultiplier(2)->Range(16, 256)->Complexity();

static void BM_LmlGradient(benchmark::State& state) {
  const std::size_t n = state.range(0);
  Rng rng(3);
  const la::Matrix x = randomPoints(n, 2, rng);
  const la::Vector y = smoothResponse(x, rng);
  gp::GpConfig cfg;
  cfg.optimize = false;
  gp::GaussianProcess g(gp::makeSquaredExponentialArd(1.0, {1.0, 1.0}),
                        cfg);
  g.fit(x, y, rng);
  const auto theta = g.thetaFull();
  for (auto _ : state)
    benchmark::DoNotOptimize(g.logMarginalLikelihoodGradientAt(theta));
  state.SetComplexityN(n);
}
BENCHMARK(BM_LmlGradient)->RangeMultiplier(2)->Range(16, 128)->Complexity();

static void BM_GpFit(benchmark::State& state) {
  const std::size_t n = state.range(0);
  Rng rng(4);
  const la::Matrix x = randomPoints(n, 2, rng);
  const la::Vector y = smoothResponse(x, rng);
  for (auto _ : state) {
    gp::GpConfig cfg;
    cfg.nRestarts = 1;
    cfg.optStop.maxIterations = 25;
    gp::GaussianProcess g(gp::makeSquaredExponentialArd(1.0, {1.0, 1.0}),
                          cfg);
    Rng fitRng(5);
    g.fit(x, y, fitRng);
    benchmark::DoNotOptimize(g.logMarginalLikelihood());
  }
}
BENCHMARK(BM_GpFit)->RangeMultiplier(2)->Range(16, 128)
    ->Unit(benchmark::kMillisecond);

namespace {

/// One n=1000 hyperparameter fit with a tight optimizer budget — the unit
/// the PR-4 acceptance criterion compares: optimized path (blocked LA +
/// distance cache) vs the seed path (scalar reference kernels, no cache).
double fitLargeOnce(bool optimizedPath) {
  const std::size_t n = 1000;
  Rng rng(11);
  const la::Matrix x = randomPoints(n, 4, rng);
  const la::Vector y = smoothResponse(x, rng);
  la::setBlockedKernels(optimizedPath);
  gp::GpConfig cfg;
  cfg.nRestarts = 0;
  cfg.optStop.maxIterations = 2;
  cfg.useDistanceCache = optimizedPath;
  gp::GaussianProcess g(gp::makeSquaredExponentialArd(1.0, {1, 1, 1, 1}),
                        cfg);
  Rng fitRng(12);
  g.fit(x, y, fitRng);
  la::setBlockedKernels(true);
  return g.logMarginalLikelihood();
}

}  // namespace

static void BM_GpFitLargeOptimized(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(fitLargeOnce(true));
}
BENCHMARK(BM_GpFitLargeOptimized)->Unit(benchmark::kMillisecond);

static void BM_GpFitLargeSeedPath(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(fitLargeOnce(false));
}
BENCHMARK(BM_GpFitLargeSeedPath)->Unit(benchmark::kMillisecond);

static void BM_GpPredict(benchmark::State& state) {
  const std::size_t n = state.range(0);
  Rng rng(6);
  const la::Matrix x = randomPoints(n, 2, rng);
  const la::Vector y = smoothResponse(x, rng);
  gp::GpConfig cfg;
  cfg.optimize = false;
  gp::GaussianProcess g(gp::makeSquaredExponentialArd(1.0, {1.0, 1.0}),
                        cfg);
  g.fit(x, y, rng);
  const la::Matrix query = randomPoints(200, 2, rng);
  for (auto _ : state) {
    const auto pred = g.predict(query);
    benchmark::DoNotOptimize(pred.mean[0]);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_GpPredict)->RangeMultiplier(2)->Range(16, 256)->Complexity();

static void BM_SparseGpFitPredict(benchmark::State& state) {
  // DTC sparse GP with 32 inducing points: fit O(n·m²) + 200 predictions,
  // vs BM_GpPredict's exact O(n³)+O(n²) path.
  const std::size_t n = state.range(0);
  Rng rng(7);
  const la::Matrix x = randomPoints(n, 2, rng);
  const la::Vector y = smoothResponse(x, rng);
  const la::Matrix query = randomPoints(200, 2, rng);
  for (auto _ : state) {
    gp::SparseGpConfig cfg;
    cfg.numInducing = 32;
    gp::SparseGaussianProcess sparse(
        gp::makeSquaredExponentialArd(1.0, {1.0, 1.0}), cfg);
    Rng fitRng(8);
    sparse.fit(x, y, fitRng);
    const auto pred = sparse.predict(query);
    benchmark::DoNotOptimize(pred.mean[0]);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SparseGpFitPredict)
    ->RangeMultiplier(2)
    ->Range(64, 1024)
    ->Complexity(benchmark::oN);

static void BM_HpgmgVcycle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  hp::Multigrid mg(hp::StencilType::Poisson2, n);
  hp::Field b(n), x(n);
  hp::setInterior(b, [](double px, double py, double pz) {
    return px * py * pz;
  });
  for (auto _ : state) {
    mg.vcycle(b, x);
    benchmark::DoNotOptimize(x.normInf());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n) * n * n);
}
BENCHMARK(BM_HpgmgVcycle)->Arg(15)->Arg(31)->Arg(63)
    ->Unit(benchmark::kMillisecond);

static void BM_HpgmgStencilApply(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const hp::Stencil s(hp::StencilType::Poisson2, 1.0 / (n + 1));
  hp::Field in(n), out(n);
  hp::setInterior(in, [](double px, double, double) { return px; });
  for (auto _ : state) {
    s.apply(in, out);
    benchmark::DoNotOptimize(out.raw().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n) * n * n);
}
BENCHMARK(BM_HpgmgStencilApply)->Arg(31)->Arg(63);

static void BM_GpFitThreads(benchmark::State& state) {
  // Multi-start hyperparameter fit at the requested thread count: the
  // nRestarts+1 L-BFGS starts run concurrently on the pool.
  const int threads = static_cast<int>(state.range(0));
  alperf::Parallelism::setThreads(threads);
  Rng rng(9);
  const la::Matrix x = randomPoints(96, 2, rng);
  const la::Vector y = smoothResponse(x, rng);
  for (auto _ : state) {
    gp::GpConfig cfg;
    cfg.nRestarts = 3;
    cfg.optStop.maxIterations = 25;
    gp::GaussianProcess g(gp::makeSquaredExponentialArd(1.0, {1.0, 1.0}),
                          cfg);
    Rng fitRng(10);
    g.fit(x, y, fitRng);
    benchmark::DoNotOptimize(g.logMarginalLikelihood());
  }
  alperf::Parallelism::setThreads(0);
}
BENCHMARK(BM_GpFitThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

static void BM_PoolScoringThreads(benchmark::State& state) {
  // Predictive mean/variance over a 500-point candidate pool — the inner
  // loop of every scored acquisition strategy — at the requested thread
  // count.
  const int threads = static_cast<int>(state.range(0));
  alperf::Parallelism::setThreads(threads);
  Rng rng(11);
  const la::Matrix x = randomPoints(128, 2, rng);
  const la::Vector y = smoothResponse(x, rng);
  gp::GpConfig cfg;
  cfg.optimize = false;
  gp::GaussianProcess g(gp::makeSquaredExponentialArd(1.0, {1.0, 1.0}),
                        cfg);
  g.fit(x, y, rng);
  const la::Matrix pool = randomPoints(500, 2, rng);
  for (auto _ : state) {
    const auto pred = g.predict(pool);
    benchmark::DoNotOptimize(pred.variance[0]);
  }
  alperf::Parallelism::setThreads(0);
}
BENCHMARK(BM_PoolScoringThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// BENCHMARK_MAIN plus a perf-registry dump: the ScopedTimer entries
// ("gp.fit", "gp.predict", "gp.addObservation") accumulated across all
// benchmark iterations, as one JSON line.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  alperf::PerfRegistry::instance().reset();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  {
    // Direct A/B for the fit-time acceptance number, independent of
    // google-benchmark's adaptive iteration counts.
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(fitLargeOnce(false));
    const auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(fitLargeOnce(true));
    const auto t2 = std::chrono::steady_clock::now();
    const double seedMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double optMs =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    std::printf(
        "gp_fit_cache {\"n\":1000,\"seed_millis\":%.1f,"
        "\"optimized_millis\":%.1f,\"speedup\":%.2f}\n",
        seedMs, optMs, seedMs / optMs);
  }
  {
    // Batch-predict A/B for the acceptance number: one blocked multi-RHS
    // solve over the full n×m cross matrix vs the seed per-column
    // triangular-solve loop, single thread, blocked LA kernels in both
    // (the LA mode is PR-4's variable, the prediction engine is this one's).
    alperf::Parallelism::setThreads(1);
    Rng rng(21);
    const la::Matrix x = randomPoints(1000, 4, rng);
    const la::Vector y = smoothResponse(x, rng);
    gp::GpConfig cfg;
    cfg.optimize = false;
    gp::GaussianProcess g(gp::makeSquaredExponentialArd(1.0, {1, 1, 1, 1}),
                          cfg);
    Rng fitRng(22);
    g.fit(x, y, fitRng);
    const la::Matrix queries = randomPoints(2000, 4, rng);
    // Seed path as in fitLargeOnce: scalar reference kernels, per-column
    // triangular solves (the pre-blocked-LA code). The intermediate
    // "per-column on blocked kernels" time is reported too, to separate
    // what the LA kernels buy from what the batch engine buys.
    la::setBlockedKernels(false);
    g.config().batchPredict = false;
    const auto t0 = std::chrono::steady_clock::now();
    const auto seedPred = g.predict(queries);
    const auto t1 = std::chrono::steady_clock::now();
    la::setBlockedKernels(true);
    const auto percolPred = g.predict(queries);
    const auto t2 = std::chrono::steady_clock::now();
    g.config().batchPredict = true;
    const auto batchPred = g.predict(queries);
    const auto t3 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(seedPred.variance[0] + percolPred.variance[0] +
                             batchPred.variance[0]);
    const double seedMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double percolMs =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    const double batchMs =
        std::chrono::duration<double, std::milli>(t3 - t2).count();
    std::printf(
        "gp_predict_batch {\"n\":1000,\"m\":2000,\"seed_millis\":%.1f,"
        "\"percol_blocked_millis\":%.1f,\"batch_millis\":%.1f,"
        "\"speedup\":%.2f,\"speedup_vs_percol_blocked\":%.2f}\n",
        seedMs, percolMs, batchMs, seedMs / batchMs, percolMs / batchMs);
    alperf::Parallelism::setThreads(0);
  }
  {
    // Pool-cache steady incremental run: fit once, then grow the posterior
    // one observation at a time, scoring the same pinned pool every step —
    // the AL loop's refitEvery>1 regime. Counter deltas verify the cache
    // stays on the O(n·m) append path (one warm-up rebuild, zero after);
    // the direct loop re-derives K_cross and the O(n²·m) solve each step.
    auto& perf = alperf::PerfRegistry::instance();
    Rng rng(31);
    const std::size_t nTrain = 300;
    const std::size_t nSteps = 20;
    const la::Matrix all = randomPoints(nTrain + nSteps, 4, rng);
    const la::Vector ally = smoothResponse(all, rng);
    const la::Matrix pool = randomPoints(1500, 4, rng);
    std::vector<std::size_t> poolRows(pool.rows());
    for (std::size_t i = 0; i < pool.rows(); ++i) poolRows[i] = i;
    gp::GpConfig cfg;
    cfg.optimize = false;
    const auto freshGp = [&] {
      gp::GaussianProcess g(gp::makeSquaredExponentialArd(1.0, {1, 1, 1, 1}),
                            cfg);
      la::Matrix x0(nTrain, 4);
      la::Vector y0(nTrain);
      for (std::size_t i = 0; i < nTrain; ++i) {
        const auto row = all.row(i);
        std::copy(row.begin(), row.end(), x0.row(i).begin());
        y0[i] = ally[i];
      }
      Rng fitRng(32);
      g.fit(std::move(x0), std::move(y0), fitRng);
      return g;
    };

    gp::GaussianProcess cachedGp = freshGp();
    gp::PoolPredictCache cache;
    cache.pin(pool, poolRows);
    const auto hit0 = perf.count("gp.poolcache.hit");
    const auto app0 = perf.count("gp.poolcache.append");
    const auto reb0 = perf.count("gp.poolcache.rebuild");
    gp::Prediction out;
    const auto c0 = std::chrono::steady_clock::now();
    cache.predict(cachedGp, poolRows, false, out);  // warm-up rebuild
    for (std::size_t s = 0; s < nSteps; ++s) {
      cachedGp.addObservation(all.row(nTrain + s), ally[nTrain + s]);
      cache.predict(cachedGp, poolRows, false, out);
    }
    const auto c1 = std::chrono::steady_clock::now();

    gp::GaussianProcess directGp = freshGp();
    const auto d0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(directGp.predict(pool).variance[0]);
    for (std::size_t s = 0; s < nSteps; ++s) {
      directGp.addObservation(all.row(nTrain + s), ally[nTrain + s]);
      benchmark::DoNotOptimize(directGp.predict(pool).variance[0]);
    }
    const auto d1 = std::chrono::steady_clock::now();

    const double cachedMs =
        std::chrono::duration<double, std::milli>(c1 - c0).count();
    const double directMs =
        std::chrono::duration<double, std::milli>(d1 - d0).count();
    std::printf(
        "gp_pool_cache {\"train\":%zu,\"pool\":%zu,\"steps\":%zu,"
        "\"rebuild\":%llu,\"append\":%llu,\"hit\":%llu,"
        "\"cached_millis\":%.1f,\"direct_millis\":%.1f,\"speedup\":%.2f}\n",
        nTrain, pool.rows(), nSteps,
        static_cast<unsigned long long>(perf.count("gp.poolcache.rebuild") -
                                        reb0),
        static_cast<unsigned long long>(perf.count("gp.poolcache.append") -
                                        app0),
        static_cast<unsigned long long>(perf.count("gp.poolcache.hit") - hit0),
        cachedMs, directMs, directMs / cachedMs);
  }
  std::printf("perf_stats %s\n",
              alperf::PerfRegistry::instance().toJson().c_str());
  return 0;
}
