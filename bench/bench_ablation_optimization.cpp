// Ablation A9: characterization vs optimization — the paper's Sec. II-C
// distinction made quantitative. "We seek to characterize the entire
// problem space with reasonably high accuracy, while RSM is designed to
// search for combinations of factors that allow reaching specified
// goals."
//
// On the same 2-D subset and budget, runs (a) the paper's Variance
// Reduction characterization and (b) Expected-Improvement Bayesian
// optimization hunting the *fastest* configuration, then scores both on
// both goals: best runtime found, and space-wide model RMSE.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

#include "bench_common.hpp"
#include "core/learner.hpp"
#include "core/optimize.hpp"
#include "stats/descriptive.hpp"

namespace al = alperf::al;
namespace bench = alperf::bench;
namespace la = alperf::la;
namespace st = alperf::stats;
using alperf::stats::Rng;

namespace {

/// Space-wide RMSE of a GP trained on the given rows, over all others.
double spaceRmse(const al::RegressionProblem& problem,
                 const std::vector<std::size_t>& rows, Rng& rng) {
  la::Matrix x(rows.size(), problem.dim());
  la::Vector y(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto src = problem.x.row(rows[i]);
    std::copy(src.begin(), src.end(), x.row(i).begin());
    y[i] = problem.y[rows[i]];
  }
  auto g = bench::makeGp(problem.dim(), 1e-2, 1, 30);
  g.fit(std::move(x), std::move(y), rng);
  const std::set<std::size_t> taken(rows.begin(), rows.end());
  std::vector<double> pred, truth;
  for (std::size_t i = 0; i < problem.size(); ++i) {
    if (taken.count(i)) continue;
    pred.push_back(g.predictOne(problem.x.row(i)).first);
    truth.push_back(problem.y[i]);
  }
  return st::rmse(pred, truth);
}

}  // namespace

int main() {
  const auto problem = bench::fig6Problem();
  const double trueMin =
      *std::min_element(problem.y.begin(), problem.y.end());
  const int budget = 20;
  const int reps = 8;
  std::printf("2-D subset: %zu jobs; budget %d experiments, %d replicates;"
              " true min log10(runtime) = %s\n",
              problem.size(), budget, reps, bench::fmt(trueMin).c_str());

  bench::section("A9: characterization (VR) vs optimization (EI)");

  double vrBestSum = 0.0, eiBestSum = 0.0;
  double vrRmseSum = 0.0, eiRmseSum = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    // (a) Characterization.
    al::AlConfig cfg;
    cfg.maxIterations = budget - 1;
    al::ActiveLearner learner(problem, bench::makeGp(2, 1e-2, 1, 30),
                              std::make_unique<al::VarianceReduction>(), cfg);
    Rng vrRng(100 + rep);
    const auto vr = learner.run(vrRng);
    std::vector<std::size_t> vrRows = vr.partition.initial;
    double vrBest = 1e300;
    for (const auto& rec : vr.history) {
      vrRows.push_back(rec.chosenRow);
      vrBest = std::min(vrBest, problem.y[rec.chosenRow]);
    }
    for (std::size_t r : vr.partition.initial)
      vrBest = std::min(vrBest, problem.y[r]);
    Rng s1(200 + rep);
    vrRmseSum += spaceRmse(problem, vrRows, s1);
    vrBestSum += vrBest;

    // (b) Optimization.
    al::ExpectedImprovement ei;
    Rng eiRng(100 + rep);
    const auto opt = al::minimizeResponse(
        problem, bench::makeGp(2, 1e-2, 1, 30), ei, 1, budget - 1, eiRng);
    std::vector<std::size_t> eiRows;
    for (const auto& rec : opt.history) eiRows.push_back(rec.chosenRow);
    eiRows.push_back(opt.bestRow);  // ensure the seed is included
    std::sort(eiRows.begin(), eiRows.end());
    eiRows.erase(std::unique(eiRows.begin(), eiRows.end()), eiRows.end());
    Rng s2(200 + rep);
    eiRmseSum += spaceRmse(problem, eiRows, s2);
    eiBestSum += opt.bestValue;
  }

  std::printf("  %-28s %-22s %-20s\n", "mode",
              "best log10(runtime) found", "space-wide RMSE");
  std::printf("  %-28s %-22s %-20s\n", "characterize (VR AL)",
              bench::fmt(vrBestSum / reps).c_str(),
              bench::fmt(vrRmseSum / reps).c_str());
  std::printf("  %-28s %-22s %-20s\n", "optimize (EI BO)",
              bench::fmt(eiBestSum / reps).c_str(),
              bench::fmt(eiRmseSum / reps).c_str());

  bench::paperVs("optimization reaches the goal faster",
                 "RSM 'resembles an optimization process'",
                 "EI best " + bench::fmt(eiBestSum / reps) + " vs VR " +
                     bench::fmt(vrBestSum / reps) + " (true " +
                     bench::fmt(trueMin) + ")");
  bench::paperVs("characterization knows the whole space better",
                 "the paper's design goal (Sec. II-C)",
                 "VR RMSE " + bench::fmt(vrRmseSum / reps) + " vs EI " +
                     bench::fmt(eiRmseSum / reps));
  return 0;
}
