// Ablation A3: the model-selection comparison the paper defers to future
// work (Sec. III): Bayesian marginal likelihood (LML) vs leave-one-out
// cross-validation pseudo-likelihood (Rasmussen & Williams ch. 5), on
// growing subsets of the 1-D Performance cross-section.

#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "gp/kernels.hpp"
#include "stats/descriptive.hpp"
#include "stats/sampling.hpp"

namespace bench = alperf::bench;
namespace gp = alperf::gp;
namespace la = alperf::la;
namespace st = alperf::stats;
using alperf::stats::Rng;

namespace {

double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Outcome {
  double rmse;
  double seconds;
};

Outcome evaluate(gp::ModelSelection sel, const la::Matrix& trainX,
                 const la::Vector& trainY, const la::Matrix& testX,
                 const la::Vector& testY, Rng& rng) {
  gp::GpConfig cfg;
  cfg.selection = sel;
  cfg.nRestarts = 2;
  cfg.noise.lo = 1e-4;
  cfg.optStop.maxIterations = 60;
  gp::GaussianProcess g(gp::makeSquaredExponential(1.0, 1.0), cfg);
  const double t0 = nowSeconds();
  g.fit(trainX, trainY, rng);
  const double elapsed = nowSeconds() - t0;
  const auto pred = g.predict(testX);
  return {st::rmse(pred.mean, testY), elapsed};
}

}  // namespace

int main() {
  const auto problem = bench::fig6Problem();
  bench::section("A3: LML vs LOO-CV model selection");
  std::printf("  %-8s %-22s %-22s\n", "n_train", "LML: RMSE / fit-s",
              "LOO: RMSE / fit-s");

  Rng rng(41);
  const auto perm = st::permutation(problem.size(), rng);
  // Fixed test tail.
  const std::size_t nTest = problem.size() / 4;
  la::Matrix testX(nTest, problem.dim());
  la::Vector testY(nTest);
  for (std::size_t i = 0; i < nTest; ++i) {
    const auto row = problem.x.row(perm[problem.size() - 1 - i]);
    std::copy(row.begin(), row.end(), testX.row(i).begin());
    testY[i] = problem.y[perm[problem.size() - 1 - i]];
  }

  double lmlRmseLast = 0.0, looRmseLast = 0.0;
  for (std::size_t n : {5, 10, 20, 40, 60}) {
    if (n + nTest > problem.size()) break;
    la::Matrix trainX(n, problem.dim());
    la::Vector trainY(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto row = problem.x.row(perm[i]);
      std::copy(row.begin(), row.end(), trainX.row(i).begin());
      trainY[i] = problem.y[perm[i]];
    }
    Rng r1(100 + n), r2(100 + n);
    const auto lml = evaluate(gp::ModelSelection::MarginalLikelihood,
                              trainX, trainY, testX, testY, r1);
    const auto loo = evaluate(gp::ModelSelection::LeaveOneOutCV, trainX,
                              trainY, testX, testY, r2);
    std::printf("  %-8zu %-10s %-11s %-10s %-11s\n", n,
                bench::fmt(lml.rmse).c_str(), bench::fmt(lml.seconds).c_str(),
                bench::fmt(loo.rmse).c_str(), bench::fmt(loo.seconds).c_str());
    lmlRmseLast = lml.rmse;
    looRmseLast = loo.rmse;
  }

  bench::paperVs("LML and LOO-CV give comparable predictive quality",
                 "open question (future work)",
                 "final RMSE " + bench::fmt(lmlRmseLast) + " (LML) vs " +
                     bench::fmt(looRmseLast) + " (LOO)");
  bench::paperVs("LML is cheaper per fit (analytic gradients)",
                 "expected",
                 "LOO uses finite-difference gradients in this "
                 "implementation");
  return 0;
}
