// Ablation A5: covariance-function choice. The paper uses the squared
// exponential (eq. 11) "as a common choice"; this ablation checks how
// sensitive the AL pipeline is to swapping in Matérn 3/2, Matérn 5/2 and
// Rational Quadratic kernels on the same task and partitions.

#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "core/batch.hpp"
#include "gp/kernels.hpp"

namespace al = alperf::al;
namespace bench = alperf::bench;
namespace gp = alperf::gp;

namespace {

gp::GaussianProcess protoWith(gp::KernelPtr kernel) {
  gp::GpConfig cfg;
  cfg.nRestarts = 1;
  cfg.noise.lo = 1e-1;
  cfg.noise.initial = 1e-1;
  cfg.optStop.maxIterations = 30;
  return gp::GaussianProcess(std::move(kernel), cfg);
}

}  // namespace

int main() {
  const auto problem = bench::fig6Problem();
  std::printf("2-D subset: %zu jobs; 8 partitions, 40 iterations each\n",
              problem.size());

  struct Variant {
    std::string name;
    std::function<gp::KernelPtr()> kernel;
  };
  const std::vector<Variant> variants{
      {"rbf (paper eq. 11)",
       [] {
         return gp::makeSquaredExponentialArd(1.0, {1.0, 1.0});
       }},
      {"matern32",
       [] {
         return std::make_unique<gp::ConstantKernel>(1.0) *
                std::make_unique<gp::Matern32Kernel>(
                    std::vector<double>{1.0, 1.0});
       }},
      {"matern52",
       [] {
         return std::make_unique<gp::ConstantKernel>(1.0) *
                std::make_unique<gp::Matern52Kernel>(
                    std::vector<double>{1.0, 1.0});
       }},
      {"rational_quadratic",
       [] {
         return std::make_unique<gp::ConstantKernel>(1.0) *
                std::make_unique<gp::RationalQuadraticKernel>(1.0, 1.0);
       }},
  };

  bench::section("A5: kernel families under Variance-Reduction AL");
  std::printf("  %-22s %-10s %-10s %-10s\n", "kernel", "RMSE@10", "RMSE@25",
              "RMSE@40");
  double rbfFinal = 0.0, worstFinal = 0.0;
  for (const auto& v : variants) {
    al::BatchConfig cfg;
    cfg.replicates = 8;
    cfg.seed = 43;  // identical partitions across variants
    cfg.al.maxIterations = 40;
    cfg.al.refitEvery = 2;
    const auto batch = al::runBatch(
        problem, protoWith(v.kernel()),
        [] { return std::make_unique<al::VarianceReduction>(); }, cfg);
    const auto rmse = batch.meanSeries(&al::IterationRecord::rmse);
    std::printf("  %-22s %-10s %-10s %-10s\n", v.name.c_str(),
                bench::fmt(rmse[10]).c_str(), bench::fmt(rmse[25]).c_str(),
                bench::fmt(rmse.back()).c_str());
    if (v.name.rfind("rbf", 0) == 0) rbfFinal = rmse.back();
    worstFinal = std::max(worstFinal, rmse.back());
  }

  bench::paperVs("pipeline robust to the kernel family",
                 "RBF chosen as 'a common choice'",
                 "final RMSE spread " + bench::fmt(rbfFinal) + " (RBF) .. " +
                     bench::fmt(worstFinal) + " (worst)");
  return 0;
}
