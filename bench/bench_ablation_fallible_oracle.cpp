// Ablation A11: active learning through a fallible oracle — what
// measurement failures cost the paper's Fig. 6 campaign. Every pick is
// executed under a RetryPolicy; failed attempts burn budget, exhausted
// points are quarantined. The clean run (p = 0) reproduces the ordinary
// table-driven trajectory; 10% and 30% attempt-failure rates show how
// cost inflates while accuracy degrades only through the lost points.

#include <cstdio>

#include "bench_common.hpp"
#include "core/learner.hpp"

namespace bench = alperf::bench;
namespace al = alperf::al;
using alperf::Measurement;
using alperf::stats::Rng;

int main() {
  bench::section("A11: AL campaign cost/accuracy vs oracle failure rate");
  const al::RegressionProblem problem = bench::fig6Problem();

  al::AlConfig cfg;
  cfg.nInitial = 3;
  cfg.maxIterations = 40;
  Rng partRng(42);
  const auto partition =
      alperf::data::triPartition(problem.size(), cfg.nInitial,
                                 cfg.activeFraction, partRng);

  al::RetryPolicy policy;
  policy.maxRetries = 2;
  policy.backoffCostBase = 50.0;  // core-seconds of requeue overhead

  std::printf("  Fig. 6 problem, 40 picks, maxRetries = 2, paired partition\n");
  std::printf("  %-8s %-10s %-12s %-12s %-8s %-8s %-6s\n", "p(fail)",
              "RMSE", "total cost", "wasted", "retries", "quarant",
              "fallbk");

  double cleanCost = 0.0, cleanRmse = 0.0;
  for (const double p : {0.0, 0.1, 0.3}) {
    // Deterministic fallible backend over the job table: an attempt fails
    // with probability p, burning a random fraction of the job's cost.
    Rng failRng(7);
    const al::FallibleRowOracle oracle = [&](std::size_t row) {
      if (p > 0.0 && failRng.bernoulli(p)) {
        return Measurement::failed(problem.cost[row] *
                                   failRng.uniformReal(0.05, 0.95));
      }
      return Measurement::ok(problem.y[row], problem.cost[row]);
    };

    const al::ActiveLearner learner(
        problem, bench::makeGp(problem.dim()),
        std::make_unique<al::VarianceReduction>(), cfg);
    Rng rng(7);
    const auto result =
        learner.runFallibleWithPartition(oracle, policy, partition, rng);

    const double rmse =
        result.history.empty() ? 0.0 : result.history.back().rmse;
    const double total = result.history.empty()
                             ? 0.0
                             : result.history.back().cumulativeCost;
    double wasted = 0.0, retries = 0.0;
    for (const auto& rec : result.history) {
      wasted += rec.wastedCost;
      retries += rec.failedAttempts;
    }
    if (p == 0.0) {
      cleanCost = total;
      cleanRmse = rmse;
    }
    std::printf("  %-8s %-10s %-12s %-12s %-8s %-8zu %-6d\n",
                bench::fmt(p).c_str(), bench::fmt(rmse).c_str(),
                bench::fmt(total).c_str(), bench::fmt(wasted).c_str(),
                bench::fmt(retries).c_str(), result.quarantined().size(),
                result.fitFallbacks);
    if (p == 0.3 && cleanCost > 0.0) {
      bench::paperVs("cost inflation at 30% attempt failures",
                     "(no paper counterpart; robustness ablation)",
                     bench::fmt(total / cleanCost) + "x clean");
      bench::paperVs("RMSE vs clean campaign", bench::fmt(cleanRmse),
                     bench::fmt(rmse));
    }
  }
  return 0;
}
