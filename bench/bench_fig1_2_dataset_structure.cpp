// Reproduces Figures 1 and 2: the structure of the Performance and Power
// datasets.
//
// Fig. 1 (raw responses): subsets at Operator = poisson1 and several NP
// levels. The paper's observation: the Power dataset's variance is much
// higher than the Performance dataset's.
// Fig. 2 (log-transformed): log Runtime grows linearly in log Problem
// Size; the log transform does not substantially change the Power
// dataset's structure.

#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "bench_common.hpp"
#include "data/transform.hpp"
#include "stats/descriptive.hpp"

namespace bench = alperf::bench;
namespace st = alperf::stats;
using alperf::data::Table;

namespace {

/// Coefficient of variation of repeated measurements, averaged over all
/// factor combinations with >= 2 repeats — the "variance" the eye sees in
/// the paper's 3-D scatter plots.
double repeatCv(const Table& t, const std::string& response) {
  std::map<std::tuple<std::string, double, double, double>,
           std::vector<double>>
      groups;
  for (std::size_t i = 0; i < t.numRows(); ++i)
    groups[{std::string(t.categorical("Operator")[i]),
            t.numeric("GlobalSize")[i], t.numeric("NP")[i],
            t.numeric("FreqGHz")[i]}]
        .push_back(t.numeric(response)[i]);
  double cvSum = 0.0;
  int n = 0;
  for (const auto& [key, v] : groups) {
    if (v.size() < 2) continue;
    const double m = st::mean(v);
    if (m <= 0.0) continue;
    cvSum += st::sampleStdDev(v) / m;
    ++n;
  }
  return n ? cvSum / n : 0.0;
}

/// Plain within-combo sample SD averaged over repeated combinations —
/// used for log-transformed responses, whose means can be near zero.
double repeatSd(const Table& t, const std::string& response) {
  std::map<std::tuple<std::string, double, double, double>,
           std::vector<double>>
      groups;
  for (std::size_t i = 0; i < t.numRows(); ++i)
    groups[{std::string(t.categorical("Operator")[i]),
            t.numeric("GlobalSize")[i], t.numeric("NP")[i],
            t.numeric("FreqGHz")[i]}]
        .push_back(t.numeric(response)[i]);
  double sdSum = 0.0;
  int n = 0;
  for (const auto& [key, v] : groups) {
    if (v.size() < 2) continue;
    sdSum += st::sampleStdDev(v);
    ++n;
  }
  return n ? sdSum / n : 0.0;
}

void printSlice(const Table& t, const std::string& response, double np,
                double freq) {
  std::printf("  poisson1, NP=%g, f=%.1f GHz: %-7s by size:", np, freq,
              response.c_str());
  auto rows = t.which([&](std::size_t i) {
    return t.categorical("Operator")[i] == "poisson1" &&
           t.numeric("NP")[i] == np && t.numeric("FreqGHz")[i] == freq;
  });
  std::map<double, std::vector<double>> bySize;
  for (auto i : rows)
    bySize[t.numeric("GlobalSize")[i]].push_back(t.numeric(response)[i]);
  for (const auto& [size, vals] : bySize)
    std::printf(" %.1e:%s", size, bench::fmt(st::mean(vals)).c_str());
  std::printf("\n");
}

}  // namespace

int main() {
  const auto& ds = bench::tableOneDataset();
  const auto& perf = ds.performance;
  const auto& power = ds.power;

  bench::section("Fig. 1: raw subsets (poisson1, NP in {8, 32, 128})");
  for (double np : {8.0, 32.0, 128.0})
    printSlice(perf, "RuntimeS", np, 2.4);
  for (double np : {8.0, 32.0, 128.0})
    printSlice(power, "EnergyJ", np, 2.4);

  const double perfCv = repeatCv(perf, "RuntimeS");
  const double powerCv = repeatCv(power, "EnergyJ");
  std::printf("\n");
  bench::paperVs("Power dataset visibly noisier than Performance",
                 "yes (Fig. 1)",
                 "CV(energy) / CV(runtime) = " +
                     bench::fmt(powerCv / perfCv) + "x (" +
                     bench::fmt(powerCv) + " vs " + bench::fmt(perfCv) + ")");
  bench::paperVs("Power dataset has fewer points (trace gaps)",
                 "640 of 3246",
                 std::to_string(power.numRows()) + " of " +
                     std::to_string(perf.numRows()));

  bench::section("Fig. 2: log-transformed responses");
  // Linearity of log runtime in log size per NP slice (compute-dominated
  // regime, size >= 1e5).
  for (double np : {8.0, 32.0, 128.0}) {
    std::vector<double> ls, lt;
    for (std::size_t i = 0; i < perf.numRows(); ++i) {
      if (perf.categorical("Operator")[i] == "poisson1" &&
          perf.numeric("NP")[i] == np &&
          perf.numeric("GlobalSize")[i] >= 1e5) {
        ls.push_back(std::log10(perf.numeric("GlobalSize")[i]));
        lt.push_back(std::log10(perf.numeric("RuntimeS")[i]));
      }
    }
    const auto fit = st::linearFit(ls, lt);
    std::printf("  NP=%-3g log10(runtime) ~ log10(size): slope=%s r2=%s "
                "(n=%zu)\n",
                np, bench::fmt(fit.slope).c_str(), bench::fmt(fit.r2).c_str(),
                ls.size());
  }
  bench::paperVs("log runtime linear in log size", "yes (Fig. 2a)",
                 "slopes ~1, r2 > 0.95 in compute-dominated regime");

  // Structure preservation for Power: the within-combo spread of the
  // log responses (plain SD — log means sit near zero, so CV is not
  // meaningful there) keeps the same ordering.
  {
    Table logPower = power;
    alperf::data::addLog10Column(logPower, "EnergyJ", "LogEnergy");
    Table logPerf = perf;
    alperf::data::addLog10Column(logPerf, "RuntimeS", "LogRuntime");
    const double lpSd = repeatSd(logPower, "LogEnergy");
    const double lrSd = repeatSd(logPerf, "LogRuntime");
    bench::paperVs("log transform keeps Power noisier than Performance",
                   "yes (Fig. 2b)",
                   lpSd > lrSd ? "yes (within-combo SD " + bench::fmt(lpSd) +
                                     " vs " + bench::fmt(lrSd) + ")"
                               : "NO");
  }

  // Runtime spans ~5 orders of magnitude (paper Sec. V-A).
  const auto rt = perf.numeric("RuntimeS");
  bench::paperVs("Runtime growth across domain", "5 orders of magnitude",
                 bench::fmt(std::log10(st::maxValue(rt) /
                                       st::minValue(rt))) +
                     " orders of magnitude");
  return 0;
}
