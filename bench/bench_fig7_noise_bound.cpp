// Reproduces Figure 7: the strong influence of the σ_n lower bound on AL
// quality, tracked with the paper's three progress metrics over 10 random
// partitions:
//   σ_f(x)  — predictive SD at the selected candidate,
//   AMSD    — arithmetic mean SD over the Active pool,
//   RMSE    — test-set error.
//
// (a) σ_n² >= 1e-8: overfitting — σ_f(x) collapses to negligible values
//     before the 5th iteration and AMSD dives far below its stable value.
// (b) σ_n² >= 1e-1: the pathology disappears; all three metrics converge
//     after ~25 iterations, making AMSD a usable stopping signal.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/batch.hpp"
#include "core/calibration.hpp"

namespace al = alperf::al;
namespace bench = alperf::bench;
namespace la = alperf::la;

namespace {

al::BatchResult runWithBound(const al::RegressionProblem& problem,
                             double noiseLo) {
  al::BatchConfig cfg;
  cfg.replicates = 10;
  cfg.seed = 17;  // same partitions for both bounds
  cfg.al.maxIterations = 60;
  cfg.al.nInitial = 1;
  cfg.al.activeFraction = 0.8;
  return al::runBatch(
      problem, bench::makeGp(2, noiseLo, 1),
      [] { return std::make_unique<al::VarianceReduction>(); }, cfg);
}

void printCurves(const al::BatchResult& batch) {
  const auto sd = batch.meanSeries(&al::IterationRecord::sigmaAtPick);
  const auto amsd = batch.meanSeries(&al::IterationRecord::amsd);
  const auto rmse = batch.meanSeries(&al::IterationRecord::rmse);
  std::printf("  %-5s %-12s %-12s %-12s\n", "iter", "sigma(pick)", "AMSD",
              "RMSE");
  for (std::size_t i = 0; i < sd.size();
       i += (i < 10 ? 1 : 5))
    std::printf("  %-5zu %-12s %-12s %-12s\n", i, bench::fmt(sd[i]).c_str(),
                bench::fmt(amsd[i]).c_str(), bench::fmt(rmse[i]).c_str());
}

/// First iteration after which the AMSD mean curve stays within relTol
/// relative change for 5 consecutive steps.
int convergenceIteration(const std::vector<double>& amsd, double relTol) {
  for (std::size_t i = 1; i + 5 <= amsd.size(); ++i) {
    bool stable = true;
    for (std::size_t j = i; j < i + 5; ++j) {
      if (amsd[j - 1] <= 0.0 ||
          std::abs(amsd[j] - amsd[j - 1]) / amsd[j - 1] > relTol) {
        stable = false;
        break;
      }
    }
    if (stable) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

int main() {
  const auto problem = bench::fig6Problem();
  std::printf("2-D subset: %zu jobs; 10 random partitions per bound\n",
              problem.size());

  bench::section("Fig. 7a: sigma_n^2 >= 1e-8 (overfitting admitted)");
  const auto loose = runWithBound(problem, 1e-8);
  printCurves(loose);
  // The paper's pathology: in many trajectories the early AMSD dips
  // *below* its own eventual stable value (a tiny-variance model fitted
  // from a handful of agreeing points), and the fitted noise collapses
  // toward machine precision.
  const auto minNoise = [](const al::BatchResult& batch) {
    double m = 1e300;
    for (const auto& run : batch.runs)
      for (std::size_t i = 0; i < std::min<std::size_t>(8,
                                                        run.history.size());
           ++i)
        m = std::min(m, run.history[i].noiseVariance);
    return m;
  };
  // Calibration: how the model's claimed uncertainty (AMSD) compares to
  // its actual test error (RMSE) at the end of the run. An overfit GP
  // reports far less uncertainty than its real error.
  const auto finalRatio = [](const al::BatchResult& batch) {
    const auto amsd = batch.meanSeries(&al::IterationRecord::amsd);
    const auto rmse = batch.meanSeries(&al::IterationRecord::rmse);
    return amsd.back() / rmse.back();
  };
  bench::paperVs("fitted noise level approaches machine precision",
                 "yes (Sec. V-B1)",
                 "min sigma_n^2 in first 8 iters = " +
                     bench::fmt(minNoise(loose)));
  bench::paperVs("AMSD sinks far below the honest uncertainty level",
                 "yes (below its stable ~1e-2)",
                 "final AMSD/RMSE = " + bench::fmt(finalRatio(loose)) +
                     " (model claims much less uncertainty than its error)");

  bench::section("Fig. 7b: sigma_n^2 >= 1e-1 (overfitting eliminated)");
  const auto tight = runWithBound(problem, 1e-1);
  printCurves(tight);
  bench::paperVs("fitted noise held at the bound", "sigma_n^2 >= 1e-1",
                 "min sigma_n^2 = " + bench::fmt(minNoise(tight)));
  bench::paperVs("AMSD stays consistent with the actual error",
                 "yes (usable stop signal)",
                 "final AMSD/RMSE = " + bench::fmt(finalRatio(tight)));

  const auto amsdTight = tight.meanSeries(&al::IterationRecord::amsd);
  const auto rmseTight = tight.meanSeries(&al::IterationRecord::rmse);
  const int convAmsd = convergenceIteration(amsdTight, 0.03);
  const int convRmse = convergenceIteration(rmseTight, 0.05);
  // Formal calibration check where the pathology lives: the model after
  // only 6 experiments. With plenty of data even the loose bound fits an
  // honest noise level, but early on it is badly overconfident.
  const auto earlyCoverage = [&](double noiseLo) {
    al::BatchConfig cfg;
    cfg.replicates = 10;
    cfg.seed = 17;
    cfg.al.maxIterations = 6;
    const auto batch = al::runBatch(
        problem, bench::makeGp(2, noiseLo, 1),
        [] { return std::make_unique<al::VarianceReduction>(); }, cfg);
    double cov = 0.0;
    for (const auto& run : batch.runs) {
      la::Matrix tx(run.partition.test.size(), problem.dim());
      la::Vector ty(run.partition.test.size());
      for (std::size_t i = 0; i < run.partition.test.size(); ++i) {
        const auto row = problem.x.row(run.partition.test[i]);
        std::copy(row.begin(), row.end(), tx.row(i).begin());
        ty[i] = problem.y[run.partition.test[i]];
      }
      cov += al::assessCalibration(run.finalGp, tx, ty, 0.95).coverage;
    }
    return cov / static_cast<double>(batch.runs.size());
  };
  bench::paperVs("95% CI coverage after only 6 experiments",
                 "raised bound => trustworthy intervals",
                 "loose " + bench::fmt(100.0 * earlyCoverage(1e-8)) +
                     "% vs tight " + bench::fmt(100.0 * earlyCoverage(1e-1)) +
                     "% (ideal ~95%)");

  bench::paperVs("metrics converge after ~25 iterations",
                 "~25 (Fig. 7)",
                 "AMSD at iter " + std::to_string(convAmsd) +
                     ", RMSE at iter " + std::to_string(convRmse));
  bench::paperVs("AMSD convergence implies RMSE convergence",
                 "yes (practical stop rule)",
                 (convAmsd >= 0 && convRmse >= 0 &&
                  std::abs(convAmsd - convRmse) <= 15)
                     ? "yes (within 15 iterations of each other)"
                     : "inconclusive on this subset");
  return 0;
}
