#include "opt/objective.hpp"

#include <cmath>
#include <limits>

namespace alperf::opt {

void Objective::gradient(std::span<const double> x,
                         std::span<double> g) const {
  numericGradient(*this, x, g);
}

void numericGradient(const Objective& f, std::span<const double> x,
                     std::span<double> g, double h) {
  requireArg(x.size() == f.dim() && g.size() == f.dim(),
             "numericGradient: size mismatch");
  std::vector<double> xp(x.begin(), x.end());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double step = h * (std::abs(x[i]) + 1.0);
    const double orig = xp[i];
    xp[i] = orig + step;
    const double fp = f.value(xp);
    xp[i] = orig - step;
    const double fm = f.value(xp);
    xp[i] = orig;
    g[i] = (fp - fm) / (2.0 * step);
  }
}

BoxBounds::BoxBounds(std::vector<double> lower, std::vector<double> upper)
    : lo(std::move(lower)), hi(std::move(upper)) {
  requireArg(lo.size() == hi.size(), "BoxBounds: lo/hi length mismatch");
  for (std::size_t i = 0; i < lo.size(); ++i)
    requireArg(lo[i] <= hi[i], "BoxBounds: lo[i] > hi[i]");
}

BoxBounds BoxBounds::unbounded(std::size_t dim) {
  const double inf = std::numeric_limits<double>::infinity();
  return BoxBounds(std::vector<double>(dim, -inf),
                   std::vector<double>(dim, inf));
}

void BoxBounds::project(std::span<double> x) const {
  ALPERF_ASSERT(x.size() == dim(), "BoxBounds::project: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] < lo[i]) x[i] = lo[i];
    if (x[i] > hi[i]) x[i] = hi[i];
  }
}

bool BoxBounds::contains(std::span<const double> x, double tol) const {
  ALPERF_ASSERT(x.size() == dim(), "BoxBounds::contains: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i)
    if (x[i] < lo[i] - tol || x[i] > hi[i] + tol) return false;
  return true;
}

std::vector<double> BoxBounds::sample(stats::Rng& rng) const {
  std::vector<double> x(dim());
  for (std::size_t i = 0; i < dim(); ++i) {
    requireArg(std::isfinite(lo[i]) && std::isfinite(hi[i]),
               "BoxBounds::sample: bounds must be finite");
    x[i] = rng.uniformReal(lo[i], hi[i]);
  }
  return x;
}

}  // namespace alperf::opt
