#pragma once

/// \file objective.hpp
/// Objective-function abstractions for the optimizers in this module.
///
/// Convention: optimizers MINIMIZE. Callers that maximize (e.g. the GP log
/// marginal likelihood) wrap their objective with a sign flip.

#include <functional>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "stats/rng.hpp"

namespace alperf::opt {

/// A differentiable objective f: R^dim -> R.
///
/// Subclasses override value(); gradient() defaults to central finite
/// differences, so analytic gradients are an opt-in optimization.
class Objective {
 public:
  virtual ~Objective() = default;

  virtual std::size_t dim() const = 0;

  /// f(x). x.size() must equal dim().
  virtual double value(std::span<const double> x) const = 0;

  /// grad f(x) into g (same length as x). Default: central differences.
  virtual void gradient(std::span<const double> x, std::span<double> g) const;

  /// Convenience: evaluate value and gradient together. Subclasses whose
  /// value/gradient share expensive state (e.g. a Cholesky factor) should
  /// override this.
  virtual double valueAndGradient(std::span<const double> x,
                                  std::span<double> g) const {
    gradient(x, g);
    return value(x);
  }
};

/// Adapts a pair of std::functions to the Objective interface.
class FunctionObjective final : public Objective {
 public:
  using ValueFn = std::function<double(std::span<const double>)>;
  using GradFn =
      std::function<void(std::span<const double>, std::span<double>)>;
  using CombinedFn =
      std::function<double(std::span<const double>, std::span<double>)>;

  /// With no gradient function, gradient() falls back to finite differences.
  FunctionObjective(std::size_t dim, ValueFn value, GradFn grad = nullptr)
      : dim_(dim), value_(std::move(value)), grad_(std::move(grad)) {
    requireArg(static_cast<bool>(value_), "FunctionObjective: null value fn");
  }

  /// Variant for objectives whose value and gradient share expensive state
  /// (e.g. one Cholesky factorization): `combined` computes both at once
  /// and is used by valueAndGradient(), the optimizers' hot path.
  FunctionObjective(std::size_t dim, ValueFn value, CombinedFn combined)
      : dim_(dim), value_(std::move(value)), combined_(std::move(combined)) {
    requireArg(static_cast<bool>(value_), "FunctionObjective: null value fn");
    requireArg(static_cast<bool>(combined_),
               "FunctionObjective: null combined fn");
  }

  std::size_t dim() const override { return dim_; }
  double value(std::span<const double> x) const override { return value_(x); }
  void gradient(std::span<const double> x,
                std::span<double> g) const override {
    if (grad_)
      grad_(x, g);
    else if (combined_)
      combined_(x, g);
    else
      Objective::gradient(x, g);
  }
  double valueAndGradient(std::span<const double> x,
                          std::span<double> g) const override {
    if (combined_) return combined_(x, g);
    return Objective::valueAndGradient(x, g);
  }

 private:
  std::size_t dim_;
  ValueFn value_;
  GradFn grad_;
  CombinedFn combined_;
};

/// Central-difference numeric gradient with relative step h.
void numericGradient(const Objective& f, std::span<const double> x,
                     std::span<double> g, double h = 1e-6);

/// Axis-aligned box constraints lo[i] <= x[i] <= hi[i].
struct BoxBounds {
  std::vector<double> lo;
  std::vector<double> hi;

  BoxBounds() = default;
  BoxBounds(std::vector<double> lower, std::vector<double> upper);

  /// Unbounded box of the given dimension (±infinity).
  static BoxBounds unbounded(std::size_t dim);

  std::size_t dim() const { return lo.size(); }

  /// Clamps x into the box in place.
  void project(std::span<double> x) const;

  bool contains(std::span<const double> x, double tol = 0.0) const;

  /// Uniform sample inside the box. All bounds must be finite.
  std::vector<double> sample(stats::Rng& rng) const;
};

/// Outcome of an optimizer run.
struct OptResult {
  std::vector<double> x;    ///< best point found
  double fval = 0.0;        ///< objective at x
  int iterations = 0;       ///< outer iterations used
  int evaluations = 0;      ///< objective evaluations used
  bool converged = false;   ///< true when a tolerance triggered the stop
};

}  // namespace alperf::opt
