#pragma once

/// \file gradient.hpp
/// First-order minimizers with box constraints:
///   - ProjectedGradientDescent: steepest descent + Armijo backtracking,
///     projecting each trial point into the box. Robust workhorse.
///   - Lbfgs: limited-memory BFGS with projection, falling back to the
///     projected-gradient direction when the quasi-Newton step fails.
/// Both minimize; wrap with a sign flip to maximize (the GP module does
/// this for the log marginal likelihood).

#include "opt/objective.hpp"

namespace alperf::opt {

/// Shared stopping-control knobs.
struct StopCriteria {
  int maxIterations = 200;
  double gradTol = 1e-6;   ///< stop when projected-gradient inf-norm < this
  double stepTol = 1e-10;  ///< stop when the accepted step inf-norm < this
  double fTol = 1e-12;     ///< stop when |f decrease| < fTol*(1+|f|)
};

/// Projected steepest descent with Armijo backtracking line search.
class ProjectedGradientDescent {
 public:
  explicit ProjectedGradientDescent(StopCriteria stop = {},
                                    double armijoC = 1e-4,
                                    double backtrack = 0.5,
                                    int maxBacktracks = 40)
      : stop_(stop),
        armijoC_(armijoC),
        backtrack_(backtrack),
        maxBacktracks_(maxBacktracks) {}

  /// Minimizes f over the box starting at x0 (projected into the box).
  OptResult minimize(const Objective& f, std::span<const double> x0,
                     const BoxBounds& bounds) const;

 private:
  StopCriteria stop_;
  double armijoC_;
  double backtrack_;
  int maxBacktracks_;
};

/// Limited-memory BFGS with box projection.
class Lbfgs {
 public:
  explicit Lbfgs(StopCriteria stop = {}, int memory = 8, double armijoC = 1e-4,
                 double backtrack = 0.5, int maxBacktracks = 40)
      : stop_(stop),
        memory_(memory),
        armijoC_(armijoC),
        backtrack_(backtrack),
        maxBacktracks_(maxBacktracks) {}

  OptResult minimize(const Objective& f, std::span<const double> x0,
                     const BoxBounds& bounds) const;

 private:
  StopCriteria stop_;
  int memory_;
  double armijoC_;
  double backtrack_;
  int maxBacktracks_;
};

/// Golden-section search minimizing a 1-D unimodal function on [a, b].
/// Returns the abscissa of the minimum to within tol.
double goldenSection(const std::function<double(double)>& f, double a,
                     double b, double tol = 1e-8, int maxIter = 200);

}  // namespace alperf::opt
