#include "opt/gradient.hpp"

#include <cmath>
#include <deque>

#include "la/matrix.hpp"

namespace alperf::opt {

namespace {

using la::axpy;
using la::dot;
using la::normInf;

/// Inf-norm of the projected gradient x - P(x - g): the box-constrained
/// stationarity measure (zero exactly at a KKT point).
double projectedGradNorm(std::span<const double> x, std::span<const double> g,
                         const BoxBounds& bounds) {
  std::vector<double> step(x.begin(), x.end());
  for (std::size_t i = 0; i < x.size(); ++i) step[i] -= g[i];
  bounds.project(step);
  double m = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    m = std::max(m, std::abs(x[i] - step[i]));
  return m;
}

struct LineSearchResult {
  std::vector<double> x;
  double fval = 0.0;
  int evals = 0;
  bool accepted = false;
};

/// Projected Armijo backtracking along direction d from (x, fx).
LineSearchResult armijoSearch(const Objective& f, std::span<const double> x,
                              double fx, std::span<const double> g,
                              std::span<const double> d,
                              const BoxBounds& bounds, double c,
                              double backtrack, int maxBacktracks,
                              double t0 = 1.0) {
  LineSearchResult r;
  double t = t0;
  for (int k = 0; k < maxBacktracks; ++k, t *= backtrack) {
    std::vector<double> xt(x.begin(), x.end());
    axpy(t, d, xt);
    bounds.project(xt);
    const double ft = f.value(xt);
    ++r.evals;
    if (!std::isfinite(ft)) continue;
    // Projected Armijo: sufficient decrease along the actually-taken step.
    double gDotStep = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
      gDotStep += g[i] * (xt[i] - x[i]);
    const double threshold = fx + c * std::min(gDotStep, 0.0);
    if (ft <= threshold && ft < fx) {
      r.x = std::move(xt);
      r.fval = ft;
      r.accepted = true;
      return r;
    }
  }
  return r;
}

struct WolfeResult {
  std::vector<double> x;
  std::vector<double> g;
  double fval = 0.0;
  int evals = 0;
  bool accepted = false;
};

/// Weak-Wolfe line search (Lewis–Overton bisection) along the ray x + t·d.
/// Requires d to be a descent direction. Points are kept inside the box by
/// rejecting trial steps that leave it (shrinking the bracket instead).
WolfeResult wolfeSearch(const Objective& f, std::span<const double> x,
                        double fx, std::span<const double> g,
                        std::span<const double> d, const BoxBounds& bounds,
                        double c1, double c2, int maxIter) {
  WolfeResult r;
  const double gd = dot(g, d);
  if (gd >= 0.0) return r;
  double lo = 0.0;
  double hi = std::numeric_limits<double>::infinity();
  double t = 1.0;
  std::vector<double> xt(x.size()), gt(x.size());
  for (int k = 0; k < maxIter; ++k) {
    for (std::size_t i = 0; i < x.size(); ++i) xt[i] = x[i] + t * d[i];
    if (!bounds.contains(xt)) {
      hi = t;
      t = 0.5 * (lo + hi);
      continue;
    }
    const double ft = f.valueAndGradient(xt, gt);
    ++r.evals;
    if (!std::isfinite(ft) || ft > fx + c1 * t * gd) {
      hi = t;
      t = 0.5 * (lo + hi);
    } else if (dot(gt, d) < c2 * gd) {
      lo = t;
      t = std::isinf(hi) ? 2.0 * t : 0.5 * (lo + hi);
    } else {
      r.x = xt;
      r.g = gt;
      r.fval = ft;
      r.accepted = true;
      return r;
    }
  }
  // Bisection exhausted: accept the last Armijo-satisfying point if any
  // decrease was achieved at the current bracket low end.
  if (lo > 0.0) {
    for (std::size_t i = 0; i < x.size(); ++i) xt[i] = x[i] + lo * d[i];
    if (bounds.contains(xt)) {
      const double ft = f.valueAndGradient(xt, gt);
      ++r.evals;
      if (std::isfinite(ft) && ft < fx) {
        r.x = xt;
        r.g = gt;
        r.fval = ft;
        r.accepted = true;
      }
    }
  }
  return r;
}

}  // namespace

OptResult ProjectedGradientDescent::minimize(const Objective& f,
                                             std::span<const double> x0,
                                             const BoxBounds& bounds) const {
  requireArg(x0.size() == f.dim() && bounds.dim() == f.dim(),
             "ProjectedGradientDescent: dimension mismatch");
  OptResult res;
  std::vector<double> x(x0.begin(), x0.end());
  bounds.project(x);
  std::vector<double> g(x.size());
  double fx = f.valueAndGradient(x, g);
  res.evaluations = 1;

  for (int iter = 0; iter < stop_.maxIterations; ++iter) {
    res.iterations = iter + 1;
    if (projectedGradNorm(x, g, bounds) < stop_.gradTol) {
      res.converged = true;
      break;
    }
    std::vector<double> d(g.size());
    for (std::size_t i = 0; i < g.size(); ++i) d[i] = -g[i];
    // Scale the first trial step so the initial move is O(1) per coordinate.
    const double gInf = normInf(g);
    const double t0 = gInf > 1.0 ? 1.0 / gInf : 1.0;
    auto ls = armijoSearch(f, x, fx, g, d, bounds, armijoC_, backtrack_,
                           maxBacktracks_, t0);
    res.evaluations += ls.evals;
    if (!ls.accepted) {
      res.converged = true;  // no descent possible at line-search resolution
      break;
    }
    double stepNorm = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
      stepNorm = std::max(stepNorm, std::abs(ls.x[i] - x[i]));
    const double decrease = fx - ls.fval;
    x = std::move(ls.x);
    fx = f.valueAndGradient(x, g);
    ++res.evaluations;
    if (stepNorm < stop_.stepTol || decrease < stop_.fTol * (1.0 + std::abs(fx))) {
      res.converged = true;
      break;
    }
  }
  res.x = std::move(x);
  res.fval = fx;
  return res;
}

OptResult Lbfgs::minimize(const Objective& f, std::span<const double> x0,
                          const BoxBounds& bounds) const {
  requireArg(x0.size() == f.dim() && bounds.dim() == f.dim(),
             "Lbfgs: dimension mismatch");
  OptResult res;
  const std::size_t n = f.dim();
  std::vector<double> x(x0.begin(), x0.end());
  bounds.project(x);
  std::vector<double> g(n);
  double fx = f.valueAndGradient(x, g);
  res.evaluations = 1;

  struct Pair {
    std::vector<double> s, y;
    double rho;
  };
  std::deque<Pair> mem;

  for (int iter = 0; iter < stop_.maxIterations; ++iter) {
    res.iterations = iter + 1;
    if (projectedGradNorm(x, g, bounds) < stop_.gradTol) {
      res.converged = true;
      break;
    }

    // Two-loop recursion for d = -H*g.
    std::vector<double> q(g.begin(), g.end());
    std::vector<double> alpha(mem.size());
    for (std::size_t k = mem.size(); k-- > 0;) {
      alpha[k] = mem[k].rho * dot(mem[k].s, q);
      axpy(-alpha[k], mem[k].y, q);
    }
    double gamma = 1.0;
    if (!mem.empty()) {
      const auto& last = mem.back();
      const double yy = dot(last.y, last.y);
      if (yy > 0.0) gamma = dot(last.s, last.y) / yy;
    }
    for (double& v : q) v *= gamma;
    for (std::size_t k = 0; k < mem.size(); ++k) {
      const double beta = mem[k].rho * dot(mem[k].y, q);
      axpy(alpha[k] - beta, mem[k].s, q);
    }
    std::vector<double> d(n);
    for (std::size_t i = 0; i < n; ++i) d[i] = -q[i];
    // Guard: fall back to steepest descent when d is not a descent direction.
    if (dot(d, g) >= 0.0)
      for (std::size_t i = 0; i < n; ++i) d[i] = -g[i];

    // Weak-Wolfe search keeps the curvature pairs well-scaled (plain
    // Armijo lets the inverse-Hessian estimate collapse on curved
    // valleys). Falls back to a projected Armijo step along -g when the
    // Wolfe search cannot make progress (e.g. active bounds).
    auto ls = wolfeSearch(f, x, fx, g, d, bounds, armijoC_, 0.9,
                          maxBacktracks_);
    res.evaluations += ls.evals;
    if (!ls.accepted) {
      std::vector<double> sd(n);
      for (std::size_t i = 0; i < n; ++i) sd[i] = -g[i];
      const double gInf = normInf(g);
      auto fallback =
          armijoSearch(f, x, fx, g, sd, bounds, armijoC_, backtrack_,
                       maxBacktracks_, gInf > 1.0 ? 1.0 / gInf : 1.0);
      res.evaluations += fallback.evals;
      if (!fallback.accepted) {
        res.converged = true;
        break;
      }
      ls.x = std::move(fallback.x);
      ls.fval = fallback.fval;
      ls.g.resize(n);
      ls.fval = f.valueAndGradient(ls.x, ls.g);
      ++res.evaluations;
      mem.clear();  // bound hit invalidates the curvature history
    }

    const double fNew = ls.fval;
    std::vector<double> gNew = std::move(ls.g);

    Pair p;
    p.s = la::subtract(ls.x, x);
    p.y = la::subtract(gNew, g);
    const double sy = dot(p.s, p.y);
    if (sy > 1e-10 * la::norm2(p.s) * la::norm2(p.y)) {
      p.rho = 1.0 / sy;
      mem.push_back(std::move(p));
      if (static_cast<int>(mem.size()) > memory_) mem.pop_front();
    }

    const double stepNorm = normInf(std::span<const double>(
        la::subtract(ls.x, x)));
    const double decrease = fx - fNew;
    x = std::move(ls.x);
    fx = fNew;
    g = std::move(gNew);
    if (stepNorm < stop_.stepTol ||
        decrease < stop_.fTol * (1.0 + std::abs(fx))) {
      res.converged = true;
      break;
    }
  }
  res.x = std::move(x);
  res.fval = fx;
  return res;
}

double goldenSection(const std::function<double(double)>& f, double a,
                     double b, double tol, int maxIter) {
  requireArg(a < b, "goldenSection: need a < b");
  const double invPhi = (std::sqrt(5.0) - 1.0) / 2.0;
  double c = b - invPhi * (b - a);
  double d = a + invPhi * (b - a);
  double fc = f(c);
  double fd = f(d);
  for (int i = 0; i < maxIter && (b - a) > tol; ++i) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - invPhi * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + invPhi * (b - a);
      fd = f(d);
    }
  }
  return 0.5 * (a + b);
}

}  // namespace alperf::opt
