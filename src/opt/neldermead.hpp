#pragma once

/// \file neldermead.hpp
/// Nelder–Mead downhill simplex: the derivative-free fallback of the
/// optimizer suite, used where gradients are unavailable or unreliable
/// (e.g. LOO-CV model selection with non-smooth clipping, or acquisition
/// surfaces with flat plateaus). Box constraints are handled by
/// projecting every trial vertex.

#include "opt/objective.hpp"

namespace alperf::opt {

struct NelderMeadOptions {
  int maxIterations = 400;
  /// Stop when the simplex's function-value spread falls below this.
  double fSpreadTol = 1e-10;
  /// Stop when the simplex diameter (inf-norm) falls below this.
  double xSpreadTol = 1e-10;
  /// Initial simplex edge length, relative per-coordinate: the i-th
  /// vertex offsets coordinate i by scale*(|x0_i| + 1).
  double initialScale = 0.1;
  // Standard coefficients.
  double reflection = 1.0;
  double expansion = 2.0;
  double contraction = 0.5;
  double shrink = 0.5;
};

/// Minimizes f over the box starting from x0 (projected into the box).
OptResult nelderMeadMinimize(const Objective& f, std::span<const double> x0,
                             const BoxBounds& bounds,
                             const NelderMeadOptions& options = {});

}  // namespace alperf::opt
