#include "opt/multistart.hpp"

namespace alperf::opt {

MultiStartResult multiStartMinimize(const Objective& f,
                                    std::span<const double> x0,
                                    const BoxBounds& bounds,
                                    const LocalMinimizer& local,
                                    int nRestarts, stats::Rng& rng) {
  requireArg(nRestarts >= 0, "multiStartMinimize: nRestarts must be >= 0");
  MultiStartResult out;
  out.all.reserve(static_cast<std::size_t>(nRestarts) + 1);
  out.all.push_back(local(f, x0, bounds));
  for (int k = 0; k < nRestarts; ++k) {
    const auto start = bounds.sample(rng);
    out.all.push_back(local(f, start, bounds));
  }
  std::size_t bestIdx = 0;
  for (std::size_t i = 1; i < out.all.size(); ++i)
    if (out.all[i].fval < out.all[bestIdx].fval) bestIdx = i;
  out.best = out.all[bestIdx];
  return out;
}

}  // namespace alperf::opt
