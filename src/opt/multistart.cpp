#include "opt/multistart.hpp"

#include <cmath>

#include "common/perf_stats.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"

namespace alperf::opt {

namespace {

/// Lowest-objective run among the *finite* ones, earliest index on ties —
/// shared by both variants so they agree bit-for-bit. Non-finite runs
/// (NaN from a poisoned objective, ±inf from a start whose every proposal
/// was rejected) are discarded and counted under `opt.start.nonfinite`: a
/// NaN at index 0 would otherwise poison every `<` comparison and win by
/// default. Falls back to index 0 when every run is non-finite — the
/// caller's finite-fval check rejects that fit as before.
std::size_t bestIndex(const std::vector<OptResult>& all) {
  std::size_t best = all.size();
  std::size_t dropped = 0;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (!std::isfinite(all[i].fval)) {
      ++dropped;
      continue;
    }
    if (best == all.size() || all[i].fval < all[best].fval) best = i;
  }
  if (dropped > 0)
    PerfRegistry::instance().increment("opt.start.nonfinite", dropped);
  return best == all.size() ? 0 : best;
}

}  // namespace

MultiStartResult multiStartMinimize(const Objective& f,
                                    std::span<const double> x0,
                                    const BoxBounds& bounds,
                                    const LocalMinimizer& local,
                                    int nRestarts, stats::Rng& rng) {
  requireArg(nRestarts >= 0, "multiStartMinimize: nRestarts must be >= 0");
  MultiStartResult out;
  out.all.reserve(static_cast<std::size_t>(nRestarts) + 1);
  out.all.push_back(local(f, x0, bounds));
  for (int k = 0; k < nRestarts; ++k) {
    const auto start = bounds.sample(rng);
    out.all.push_back(local(f, start, bounds));
  }
  out.best = out.all[bestIndex(out.all)];
  return out;
}

MultiStartResult multiStartMinimizeParallel(const StartRunner& runStart,
                                            std::span<const double> x0,
                                            const BoxBounds& bounds,
                                            int nRestarts, stats::Rng& rng) {
  requireArg(nRestarts >= 0,
             "multiStartMinimizeParallel: nRestarts must be >= 0");
  requireArg(static_cast<bool>(runStart),
             "multiStartMinimizeParallel: null start runner");
  ScopedTimer timer("opt.multistart");
  trace::Span span("opt.multistart");
  const std::size_t nStarts = static_cast<std::size_t>(nRestarts) + 1;
  span.note("starts", nStarts);
  PerfRegistry::instance().increment("opt.multistart.starts", nStarts);

  // Draw every start sequentially before any minimization so the RNG
  // stream is byte-identical to the sequential variant's.
  std::vector<std::vector<double>> starts;
  starts.reserve(nStarts);
  starts.emplace_back(x0.begin(), x0.end());
  for (int k = 0; k < nRestarts; ++k) starts.push_back(bounds.sample(rng));

  MultiStartResult out;
  out.all.resize(nStarts);
  parallelFor(nStarts, 1, [&](std::size_t k) {
    // One span per start: in a trace these render as parallel slices on
    // the worker lanes that picked the starts up.
    trace::Span startSpan("opt.start");
    startSpan.note("start", k);
    out.all[k] = runStart(k, starts[k]);
  });
  out.best = out.all[bestIndex(out.all)];
  return out;
}

}  // namespace alperf::opt
