#pragma once

/// \file multistart.hpp
/// Multi-start wrapper: runs a local minimizer from one caller-provided
/// start plus `nRestarts` uniform samples inside the bounds, and returns
/// the best local optimum. This mirrors scikit-learn's
/// `n_restarts_optimizer` mechanism the paper relies on for LML fitting
/// (Sec. V-B1: "repeats this search multiple times, each time starting
/// from a random point").

#include <functional>

#include "opt/gradient.hpp"

namespace alperf::opt {

/// Signature of a local minimizer usable by MultiStart.
using LocalMinimizer = std::function<OptResult(
    const Objective&, std::span<const double>, const BoxBounds&)>;

struct MultiStartResult {
  /// The finite run with the lowest objective. Starts whose final value is
  /// NaN/±Inf are discarded from the selection (counted under the
  /// `opt.start.nonfinite` perf counter); when every run is non-finite,
  /// `best` is the first run and carries its non-finite fval for the
  /// caller to reject.
  OptResult best;
  std::vector<OptResult> all;  ///< per-start results, in run order
};

/// Runs `local` from `x0` and from `nRestarts` random interior points;
/// returns the run with the lowest objective value. Bounds must be finite
/// when nRestarts > 0. Strictly sequential — use this when the objective
/// is not safe to evaluate from multiple threads.
MultiStartResult multiStartMinimize(const Objective& f,
                                    std::span<const double> x0,
                                    const BoxBounds& bounds,
                                    const LocalMinimizer& local,
                                    int nRestarts, stats::Rng& rng);

/// One start of a parallel multi-start: minimize from start index `start`
/// at initial point `x0` and return the local optimum. Invoked
/// concurrently from multiple threads — the callable must not share
/// mutable state across starts (give each start its own objective or
/// accumulator; the GP module keys per-start diagnostics off `start`).
using StartRunner =
    std::function<OptResult(std::size_t start, std::span<const double> x0)>;

/// Thread-parallel multi-start on the global thread pool
/// (common/thread_pool.hpp), bit-identical to multiStartMinimize for any
/// thread count:
///   * all random starts are drawn from `rng` up front, in start order —
///     the exact stream the sequential version consumes;
///   * starts minimize concurrently (each is deterministic given its x0);
///   * the winner is the lowest objective value, ties broken by lowest
///     start index — the same rule the sequential scan applies.
MultiStartResult multiStartMinimizeParallel(const StartRunner& runStart,
                                            std::span<const double> x0,
                                            const BoxBounds& bounds,
                                            int nRestarts, stats::Rng& rng);

}  // namespace alperf::opt
