#pragma once

/// \file multistart.hpp
/// Multi-start wrapper: runs a local minimizer from one caller-provided
/// start plus `nRestarts` uniform samples inside the bounds, and returns
/// the best local optimum. This mirrors scikit-learn's
/// `n_restarts_optimizer` mechanism the paper relies on for LML fitting
/// (Sec. V-B1: "repeats this search multiple times, each time starting
/// from a random point").

#include <functional>

#include "opt/gradient.hpp"

namespace alperf::opt {

/// Signature of a local minimizer usable by MultiStart.
using LocalMinimizer = std::function<OptResult(
    const Objective&, std::span<const double>, const BoxBounds&)>;

struct MultiStartResult {
  OptResult best;
  std::vector<OptResult> all;  ///< per-start results, in run order
};

/// Runs `local` from `x0` and from `nRestarts` random interior points;
/// returns the run with the lowest objective value. Bounds must be finite
/// when nRestarts > 0.
MultiStartResult multiStartMinimize(const Objective& f,
                                    std::span<const double> x0,
                                    const BoxBounds& bounds,
                                    const LocalMinimizer& local,
                                    int nRestarts, stats::Rng& rng);

}  // namespace alperf::opt
