#include "opt/neldermead.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace alperf::opt {

OptResult nelderMeadMinimize(const Objective& f, std::span<const double> x0,
                             const BoxBounds& bounds,
                             const NelderMeadOptions& options) {
  const std::size_t d = f.dim();
  requireArg(x0.size() == d && bounds.dim() == d,
             "nelderMeadMinimize: dimension mismatch");
  requireArg(options.maxIterations >= 1 && options.initialScale > 0.0,
             "nelderMeadMinimize: invalid options");

  OptResult res;
  const auto evaluate = [&](std::vector<double>& x) {
    bounds.project(x);
    ++res.evaluations;
    const double v = f.value(x);
    return std::isfinite(v) ? v : std::numeric_limits<double>::max();
  };

  // Initial simplex: x0 plus per-coordinate offsets.
  std::vector<std::vector<double>> vertex(d + 1,
                                          std::vector<double>(x0.begin(),
                                                              x0.end()));
  std::vector<double> value(d + 1);
  for (std::size_t i = 0; i < d; ++i)
    vertex[i + 1][i] += options.initialScale * (std::abs(x0[i]) + 1.0);
  for (std::size_t i = 0; i <= d; ++i) value[i] = evaluate(vertex[i]);

  std::vector<std::size_t> order(d + 1);
  for (int iter = 0; iter < options.maxIterations; ++iter) {
    res.iterations = iter + 1;
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                return value[a] < value[b];
              });
    const std::size_t best = order.front();
    const std::size_t worst = order.back();
    const std::size_t second = order[d - 1];

    // Convergence: value spread and simplex diameter.
    double diam = 0.0;
    for (std::size_t i = 0; i <= d; ++i)
      for (std::size_t j = 0; j < d; ++j)
        diam = std::max(diam,
                        std::abs(vertex[i][j] - vertex[best][j]));
    if (value[worst] - value[best] < options.fSpreadTol ||
        diam < options.xSpreadTol) {
      res.converged = true;
      break;
    }

    // Centroid of all but the worst vertex.
    std::vector<double> centroid(d, 0.0);
    for (std::size_t i = 0; i <= d; ++i) {
      if (i == worst) continue;
      for (std::size_t j = 0; j < d; ++j) centroid[j] += vertex[i][j];
    }
    for (double& c : centroid) c /= static_cast<double>(d);

    const auto blend = [&](double coeff) {
      std::vector<double> x(d);
      for (std::size_t j = 0; j < d; ++j)
        x[j] = centroid[j] + coeff * (centroid[j] - vertex[worst][j]);
      return x;
    };

    auto reflected = blend(options.reflection);
    const double fr = evaluate(reflected);
    if (fr < value[best]) {
      auto expanded = blend(options.reflection * options.expansion);
      const double fe = evaluate(expanded);
      if (fe < fr) {
        vertex[worst] = std::move(expanded);
        value[worst] = fe;
      } else {
        vertex[worst] = std::move(reflected);
        value[worst] = fr;
      }
      continue;
    }
    if (fr < value[second]) {
      vertex[worst] = std::move(reflected);
      value[worst] = fr;
      continue;
    }
    // Contraction (outside if the reflection improved on the worst).
    auto contracted = blend(fr < value[worst]
                                ? options.reflection * options.contraction
                                : -options.contraction);
    const double fc = evaluate(contracted);
    if (fc < std::min(fr, value[worst])) {
      vertex[worst] = std::move(contracted);
      value[worst] = fc;
      continue;
    }
    // Shrink toward the best vertex.
    for (std::size_t i = 0; i <= d; ++i) {
      if (i == best) continue;
      for (std::size_t j = 0; j < d; ++j)
        vertex[i][j] = vertex[best][j] +
                       options.shrink * (vertex[i][j] - vertex[best][j]);
      value[i] = evaluate(vertex[i]);
    }
  }

  const std::size_t best = static_cast<std::size_t>(
      std::min_element(value.begin(), value.end()) - value.begin());
  res.x = vertex[best];
  res.fval = value[best];
  return res;
}

}  // namespace alperf::opt
