#pragma once

/// \file matrix.hpp
/// Dense row-major matrix and free-function linear-algebra helpers.
///
/// This is the minimal dense linear algebra substrate required by Gaussian
/// Process Regression: construction, element access, BLAS-2/3 style products,
/// transposition and norms. Factorizations live in cholesky.hpp.

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace alperf::la {

using Vector = std::vector<double>;

/// Dense row-major matrix of double.
///
/// Invariants: storage size is exactly rows()*cols(); both dimensions may be
/// zero (an empty matrix). All indexed accessors bounds-check via
/// ALPERF_ASSERT.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix, all elements initialized to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Construct from nested initializer list (row major); all rows must have
  /// equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Construct by adopting `data` (row major, size must equal rows*cols).
  Matrix(std::size_t rows, std::size_t cols, Vector data);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t i, std::size_t j) {
    ALPERF_ASSERT(i < rows_ && j < cols_, "Matrix index out of range");
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    ALPERF_ASSERT(i < rows_ && j < cols_, "Matrix index out of range");
    return data_[i * cols_ + j];
  }

  /// Contiguous view of row i.
  std::span<double> row(std::size_t i) {
    ALPERF_ASSERT(i < rows_, "Matrix row index out of range");
    return {data_.data() + i * cols_, cols_};
  }
  std::span<const double> row(std::size_t i) const {
    ALPERF_ASSERT(i < rows_, "Matrix row index out of range");
    return {data_.data() + i * cols_, cols_};
  }

  /// Copy of column j.
  Vector col(std::size_t j) const;

  /// Raw row-major storage.
  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }

  /// n x n identity.
  static Matrix identity(std::size_t n);

  /// Matrix whose rows are the given vectors (all must share a length).
  static Matrix fromRows(const std::vector<Vector>& rows);

  Matrix transposed() const;

  /// In-place compound ops (dimension-checked).
  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);

  /// Adds s to every diagonal element (matrix must be square).
  void addToDiagonal(double s);

  /// Maximum absolute element (0 for an empty matrix).
  double maxAbs() const;

  /// Frobenius norm.
  double frobeniusNorm() const;

  /// True when dimensions and all elements match `rhs` to within `tol`.
  bool approxEqual(const Matrix& rhs, double tol) const;

  /// Human-readable rendering, mainly for test failure messages.
  std::string toString(int precision = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  Vector data_;
};

Matrix operator+(Matrix lhs, const Matrix& rhs);
Matrix operator-(Matrix lhs, const Matrix& rhs);
Matrix operator*(Matrix m, double s);
Matrix operator*(double s, Matrix m);

/// Matrix product A*B. Throws std::invalid_argument on dimension mismatch.
Matrix matmul(const Matrix& a, const Matrix& b);

/// A^T * A (n x n for an m x n input), computed exploiting symmetry.
Matrix gram(const Matrix& a);

/// Matrix-vector product A*x.
Vector matvec(const Matrix& a, std::span<const double> x);

/// A^T * x.
Vector matvecTransposed(const Matrix& a, std::span<const double> x);

/// Dot product; lengths must match.
double dot(std::span<const double> a, std::span<const double> b);

/// y += alpha * x (lengths must match).
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// Euclidean norm.
double norm2(std::span<const double> v);

/// Max-abs norm.
double normInf(std::span<const double> v);

/// Elementwise a-b.
Vector subtract(std::span<const double> a, std::span<const double> b);

/// Squared Euclidean distance between two equal-length vectors.
double squaredDistance(std::span<const double> a, std::span<const double> b);

}  // namespace alperf::la
