#include "la/cholesky.hpp"

#include <cmath>
#include <sstream>

#include "common/fault_inject.hpp"
#include "common/health.hpp"
#include "common/perf_stats.hpp"
#include "common/trace.hpp"
#include "la/blas.hpp"

namespace alperf::la {

namespace {

std::string describeAttempts(const RecoveryEvent& ev, std::size_t n) {
  std::ostringstream os;
  os << "n=" << n << " attempts=" << ev.attempts << " jitter=" << ev.finalJitter;
  if (ev.rcond >= 0.0) os << " rcond=" << ev.rcond;
  return os.str();
}

}  // namespace

const char* toString(CholeskyStatus status) {
  switch (status) {
    case CholeskyStatus::Ok:
      return "Ok";
    case CholeskyStatus::RecoveredWithJitter:
      return "RecoveredWithJitter";
    case CholeskyStatus::NonFiniteInput:
      return "NonFiniteInput";
    case CholeskyStatus::NotPositiveDefinite:
      return "NotPositiveDefinite";
  }
  return "unknown";
}

bool choleskyInPlace(Matrix& a) {
  return blockedKernelsEnabled() ? choleskyInPlaceBlocked(a)
                                 : choleskyInPlaceReference(a);
}

Cholesky::Cholesky(Matrix a, double maxJitterScale, double symTol) {
  requireArg(a.rows() == a.cols(), "Cholesky: matrix must be square");
  PerfRegistry::instance().increment("la.cholesky");
  trace::Span span("la.chol.factor");
  span.note("n", a.rows());
  const std::size_t n = a.rows();

  // One sweep computes everything the recovery policy needs: NaN/Inf
  // containment, the symmetry precondition, ‖A‖₁ for the condition
  // estimator, and the mean diagonal for the jitter scale. Containment
  // comes first — a NaN fails every comparison, so the symmetry check
  // would otherwise misreport poisoned input as a precondition violation
  // (std::invalid_argument) instead of a recoverable NumericalError.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (!std::isfinite(a(i, j))) {
        recovery_.status = CholeskyStatus::NonFiniteInput;
        recovery_.attempts = 0;
        std::ostringstream os;
        os << "non-finite element at (" << i << "," << j << "), n=" << n;
        HealthMonitor::instance().record("chol.nonfinite", os.str());
        throw NumericalError("Cholesky: matrix contains a non-finite element");
      }
  const double scale = a.maxAbs();
  double anorm1 = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    double colSum = 0.0;
    for (std::size_t i = 0; i < n; ++i) colSum += std::abs(a(i, j));
    if (colSum > anorm1) anorm1 = colSum;
  }
  anorm1_ = anorm1;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      requireArg(std::abs(a(i, j) - a(j, i)) <= symTol * (scale + 1.0),
                 "Cholesky: matrix is not symmetric");

  double meanDiag = 0.0;
  for (std::size_t i = 0; i < n; ++i) meanDiag += std::abs(a(i, i));
  meanDiag = n ? meanDiag / static_cast<double>(n) : 0.0;
  if (meanDiag == 0.0) meanDiag = 1.0;

  // Try raw factorization first, then escalate jitter by decades. Attempt
  // indices are deterministic (the loop is sequential), so a
  // `chol.fail@attempt=K` fault spec forces exactly attempt K to fail at
  // any thread count.
  auto& faults = FaultInjector::instance();
  double jit = 0.0;
  int attempt = 0;
  for (double scaleStep = 1e-12;; scaleStep *= 10.0) {
    Matrix work = a;
    if (jit > 0.0) work.addToDiagonal(jit);
    bool ok = choleskyInPlace(work);
    if (ok && faults.armed()) {
      FaultAttrs attrs;
      attrs.n = static_cast<long long>(n);
      attrs.attempt = attempt;
      if (faults.fire("chol.fail", attrs)) ok = false;
    }
    if (ok) {
      l_ = std::move(work);
      jitter_ = jit;
      recovery_.attempts = attempt + 1;
      recovery_.finalJitter = jit;
      if (jit > 0.0) {
        recovery_.status = CholeskyStatus::RecoveredWithJitter;
        // Recovery is rare, so the O(n²) condition estimate is affordable
        // here; the common no-jitter path defers it to rcond1().
        recovery_.rcond = estimateRcond1();
        rcondCache_ = recovery_.rcond;
        HealthMonitor::instance().record("chol.recovered",
                                         describeAttempts(recovery_, n));
      }
      return;
    }
    ++attempt;
    if (scaleStep > maxJitterScale) {
      recovery_.status = CholeskyStatus::NotPositiveDefinite;
      recovery_.attempts = attempt;
      recovery_.finalJitter = jit;
      HealthMonitor::instance().record("chol.failed",
                                       describeAttempts(recovery_, n));
      throw NumericalError(
          "Cholesky: matrix not SPD even after jitter escalation");
    }
    jit = scaleStep * meanDiag;
  }
}

RecoveryEvent Cholesky::recovery() const {
  RecoveryEvent ev = recovery_;
  if (ev.rcond < 0.0 && rcondCache_ >= 0.0) ev.rcond = rcondCache_;
  return ev;
}

double Cholesky::rcond1() const {
  if (rcondCache_ < 0.0) rcondCache_ = estimateRcond1();
  return rcondCache_;
}

double Cholesky::estimateRcond1() const {
  // Hager's 1-norm estimator (Higham's refinement): maximize ‖A⁻¹x‖₁ over
  // the unit 1-ball via at most 5 power iterations, each two triangular
  // solve pairs — O(n²) total, no refactorization.
  const std::size_t n = dim();
  if (n == 0) return 1.0;
  if (anorm1_ <= 0.0) return 0.0;
  Vector x(n, 1.0 / static_cast<double>(n));
  double est = 0.0;
  for (int it = 0; it < 5; ++it) {
    const Vector y = solve(x);
    double ynorm = 0.0;
    for (const double v : y) ynorm += std::abs(v);
    est = ynorm;
    Vector xi(n);
    for (std::size_t i = 0; i < n; ++i) xi[i] = y[i] >= 0.0 ? 1.0 : -1.0;
    const Vector z = solve(xi);  // A symmetric, so Aᵀ-solve == A-solve
    std::size_t jmax = 0;
    for (std::size_t i = 1; i < n; ++i)
      if (std::abs(z[i]) > std::abs(z[jmax])) jmax = i;
    double zx = 0.0;
    for (std::size_t i = 0; i < n; ++i) zx += z[i] * x[i];
    if (std::abs(z[jmax]) <= zx) break;
    x.assign(n, 0.0);
    x[jmax] = 1.0;
  }
  if (!(est > 0.0) || !std::isfinite(est)) return 0.0;
  const double rcond = 1.0 / (anorm1_ * est);
  return std::isfinite(rcond) ? rcond : 0.0;
}

Vector Cholesky::solveLower(std::span<const double> b) const {
  requireArg(b.size() == dim(), "Cholesky::solveLower: size mismatch");
  const std::size_t n = dim();
  Vector x(b.begin(), b.end());
  if (blockedKernelsEnabled()) {
    // L is row-major, so the row-dot form is already cache-optimal; the
    // unrolled dot supplies the instruction-level parallelism.
    const double* ld = l_.data().data();
    for (std::size_t i = 0; i < n; ++i) {
      const double* li = ld + i * n;
      x[i] = (x[i] - dotUnrolled(li, x.data(), i)) / li[i];
    }
    return x;
  }
  for (std::size_t i = 0; i < n; ++i) {
    double s = x[i];
    auto li = l_.row(i);
    for (std::size_t k = 0; k < i; ++k) s -= li[k] * x[k];
    x[i] = s / li[i];
  }
  return x;
}

Matrix Cholesky::solveLower(const Matrix& b) const {
  Matrix x = b;
  solveLowerInPlace(x);
  return x;
}

void Cholesky::solveLowerInPlace(Matrix& b) const {
  requireArg(b.rows() == dim(), "Cholesky::solveLower: row count mismatch");
  if (blockedKernelsEnabled()) {
    PerfRegistry::instance().increment("la.trsm");
    trsmLowerLeft(l_, b);
    return;
  }
  // Reference kernels: the seed per-column forward substitution, written
  // columnwise in place (identical arithmetic to solveLower(span) on each
  // extracted column).
  const std::size_t n = dim();
  const std::size_t m = b.cols();
  const double* ld = l_.data().data();
  double* bd = b.data().data();
  for (std::size_t i = 0; i < n; ++i) {
    const double* li = ld + i * n;
    for (std::size_t j = 0; j < m; ++j) {
      double s = bd[i * m + j];
      for (std::size_t k = 0; k < i; ++k) s -= li[k] * bd[k * m + j];
      bd[i * m + j] = s / li[i];
    }
  }
}

Vector Cholesky::solveUpper(std::span<const double> b) const {
  requireArg(b.size() == dim(), "Cholesky::solveUpper: size mismatch");
  const std::size_t n = dim();
  Vector x(b.begin(), b.end());
  if (blockedKernelsEnabled()) {
    // Blocked backward substitution on Lᵀ: solve one kLaBlock tile
    // bottom-up, then push its contribution into everything above with
    // contiguous axpy sweeps over rows of L (the naive column traversal
    // strides by n on every load).
    const double* ld = l_.data().data();
    const std::size_t nTiles = (n + kLaBlock - 1) / kLaBlock;
    for (std::size_t tk = nTiles; tk-- > 0;) {
      const std::size_t k0 = tk * kLaBlock;
      const std::size_t nb = std::min(kLaBlock, n - k0);
      for (std::size_t r = nb; r-- > 0;) {
        const std::size_t i = k0 + r;
        double s = x[i];
        for (std::size_t t = r + 1; t < nb; ++t)
          s -= ld[(k0 + t) * n + i] * x[k0 + t];
        x[i] = s / ld[i * n + i];
      }
      for (std::size_t t = 0; t < nb; ++t) {
        const double v = x[k0 + t];
        if (v == 0.0) continue;
        const double* lrow = ld + (k0 + t) * n;
        for (std::size_t i = 0; i < k0; ++i) x[i] -= lrow[i] * v;
      }
    }
    return x;
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double s = x[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l_(k, ii) * x[k];
    x[ii] = s / l_(ii, ii);
  }
  return x;
}

Vector Cholesky::solve(std::span<const double> b) const {
  return solveUpper(solveLower(b));
}

Matrix Cholesky::solve(const Matrix& b) const {
  requireArg(b.rows() == dim(), "Cholesky::solve: row count mismatch");
  if (!blockedKernelsEnabled()) {
    Matrix x(b.rows(), b.cols());
    for (std::size_t j = 0; j < b.cols(); ++j) {
      const Vector xj = solve(b.col(j));
      for (std::size_t i = 0; i < b.rows(); ++i) x(i, j) = xj[i];
    }
    return x;
  }
  // True multi-RHS path: one copy of B, both triangular solves in place
  // across all columns at once (column-tiled, parallel over tiles).
  PerfRegistry::instance().increment("la.trsm");
  Matrix x = b;
  trsmLowerLeft(l_, x);
  trsmUpperLeft(l_, x);
  return x;
}

double Cholesky::logDet() const {
  double s = 0.0;
  for (std::size_t i = 0; i < dim(); ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

Matrix Cholesky::inverse() const { return solve(Matrix::identity(dim())); }

void Cholesky::extend(std::span<const double> k, double kappa) {
  const std::size_t n = dim();
  requireArg(k.size() == n, "Cholesky::extend: cross-covariance size");
  trace::Span span("la.chol.extend");
  span.note("n", n);
  bool poisoned = false;
  auto& faults = FaultInjector::instance();
  if (faults.armed()) {
    FaultAttrs attrs;
    attrs.n = static_cast<long long>(n);
    poisoned = faults.fire("extend.fail", attrs);
  }
  const Vector l = solveLower(k);
  double pivotSq = kappa - la::dot(l, l);
  if (poisoned) pivotSq = -1.0;
  if (!(pivotSq > 0.0) || !std::isfinite(pivotSq)) {
    std::ostringstream os;
    os << "n=" << n << " pivotSq=" << pivotSq;
    HealthMonitor::instance().record("chol.extend", os.str());
    throw NumericalError("Cholesky::extend: extended matrix not SPD");
  }
  Matrix grown(n + 1, n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    const auto src = l_.row(i);
    std::copy(src.begin(), src.begin() + static_cast<std::ptrdiff_t>(i + 1),
              grown.row(i).begin());
  }
  for (std::size_t j = 0; j < n; ++j) grown(n, j) = l[j];
  grown(n, n) = std::sqrt(pivotSq);
  // rcond of the grown matrix differs; drop the cached estimate and bump
  // the 1-norm with the new column (a lower bound — old column sums grow
  // by |k_j| each, which an estimate can ignore).
  rcondCache_ = -1.0;
  recovery_.rcond = -1.0;
  double newCol = std::abs(kappa);
  for (const double v : k) newCol += std::abs(v);
  if (newCol > anorm1_) anorm1_ = newCol;
  l_ = std::move(grown);
}

}  // namespace alperf::la
