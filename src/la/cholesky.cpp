#include "la/cholesky.hpp"

#include <cmath>

namespace alperf::la {

bool choleskyInPlace(Matrix& a) {
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= a(j, k) * a(j, k);
    if (!(d > 0.0) || !std::isfinite(d)) return false;
    const double ljj = std::sqrt(d);
    a(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= a(i, k) * a(j, k);
      a(i, j) = s / ljj;
    }
  }
  // Zero the strict upper triangle so factor() is exactly L.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) a(i, j) = 0.0;
  return true;
}

Cholesky::Cholesky(Matrix a, double maxJitterScale, double symTol) {
  requireArg(a.rows() == a.cols(), "Cholesky: matrix must be square");
  const std::size_t n = a.rows();
  // Symmetry check relative to the largest element.
  const double scale = a.maxAbs();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      requireArg(std::abs(a(i, j) - a(j, i)) <= symTol * (scale + 1.0),
                 "Cholesky: matrix is not symmetric");

  double meanDiag = 0.0;
  for (std::size_t i = 0; i < n; ++i) meanDiag += std::abs(a(i, i));
  meanDiag = n ? meanDiag / static_cast<double>(n) : 0.0;
  if (meanDiag == 0.0) meanDiag = 1.0;

  // Try raw factorization first, then escalate jitter by decades.
  double jit = 0.0;
  for (double scaleStep = 1e-12;; scaleStep *= 10.0) {
    Matrix work = a;
    if (jit > 0.0) work.addToDiagonal(jit);
    if (choleskyInPlace(work)) {
      l_ = std::move(work);
      jitter_ = jit;
      return;
    }
    if (scaleStep > maxJitterScale)
      throw NumericalError(
          "Cholesky: matrix not SPD even after jitter escalation");
    jit = scaleStep * meanDiag;
  }
}

Vector Cholesky::solveLower(std::span<const double> b) const {
  requireArg(b.size() == dim(), "Cholesky::solveLower: size mismatch");
  const std::size_t n = dim();
  Vector x(b.begin(), b.end());
  for (std::size_t i = 0; i < n; ++i) {
    double s = x[i];
    auto li = l_.row(i);
    for (std::size_t k = 0; k < i; ++k) s -= li[k] * x[k];
    x[i] = s / li[i];
  }
  return x;
}

Vector Cholesky::solveUpper(std::span<const double> b) const {
  requireArg(b.size() == dim(), "Cholesky::solveUpper: size mismatch");
  const std::size_t n = dim();
  Vector x(b.begin(), b.end());
  for (std::size_t ii = n; ii-- > 0;) {
    double s = x[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l_(k, ii) * x[k];
    x[ii] = s / l_(ii, ii);
  }
  return x;
}

Vector Cholesky::solve(std::span<const double> b) const {
  return solveUpper(solveLower(b));
}

Matrix Cholesky::solve(const Matrix& b) const {
  requireArg(b.rows() == dim(), "Cholesky::solve: row count mismatch");
  Matrix x(b.rows(), b.cols());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    const Vector xj = solve(b.col(j));
    for (std::size_t i = 0; i < b.rows(); ++i) x(i, j) = xj[i];
  }
  return x;
}

double Cholesky::logDet() const {
  double s = 0.0;
  for (std::size_t i = 0; i < dim(); ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

Matrix Cholesky::inverse() const { return solve(Matrix::identity(dim())); }

void Cholesky::extend(std::span<const double> k, double kappa) {
  const std::size_t n = dim();
  requireArg(k.size() == n, "Cholesky::extend: cross-covariance size");
  const Vector l = solveLower(k);
  const double pivotSq = kappa - la::dot(l, l);
  if (!(pivotSq > 0.0) || !std::isfinite(pivotSq))
    throw NumericalError("Cholesky::extend: extended matrix not SPD");
  Matrix grown(n + 1, n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    const auto src = l_.row(i);
    std::copy(src.begin(), src.begin() + i + 1, grown.row(i).begin());
  }
  for (std::size_t j = 0; j < n; ++j) grown(n, j) = l[j];
  grown(n, n) = std::sqrt(pivotSq);
  l_ = std::move(grown);
}

}  // namespace alperf::la
