#include "la/cholesky.hpp"

#include <cmath>

#include "common/perf_stats.hpp"
#include "la/blas.hpp"

namespace alperf::la {

bool choleskyInPlace(Matrix& a) {
  return blockedKernelsEnabled() ? choleskyInPlaceBlocked(a)
                                 : choleskyInPlaceReference(a);
}

Cholesky::Cholesky(Matrix a, double maxJitterScale, double symTol) {
  requireArg(a.rows() == a.cols(), "Cholesky: matrix must be square");
  PerfRegistry::instance().increment("la.cholesky");
  const std::size_t n = a.rows();
  // Symmetry check relative to the largest element.
  const double scale = a.maxAbs();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      requireArg(std::abs(a(i, j) - a(j, i)) <= symTol * (scale + 1.0),
                 "Cholesky: matrix is not symmetric");

  double meanDiag = 0.0;
  for (std::size_t i = 0; i < n; ++i) meanDiag += std::abs(a(i, i));
  meanDiag = n ? meanDiag / static_cast<double>(n) : 0.0;
  if (meanDiag == 0.0) meanDiag = 1.0;

  // Try raw factorization first, then escalate jitter by decades.
  double jit = 0.0;
  for (double scaleStep = 1e-12;; scaleStep *= 10.0) {
    Matrix work = a;
    if (jit > 0.0) work.addToDiagonal(jit);
    if (choleskyInPlace(work)) {
      l_ = std::move(work);
      jitter_ = jit;
      return;
    }
    if (scaleStep > maxJitterScale)
      throw NumericalError(
          "Cholesky: matrix not SPD even after jitter escalation");
    jit = scaleStep * meanDiag;
  }
}

Vector Cholesky::solveLower(std::span<const double> b) const {
  requireArg(b.size() == dim(), "Cholesky::solveLower: size mismatch");
  const std::size_t n = dim();
  Vector x(b.begin(), b.end());
  if (blockedKernelsEnabled()) {
    // L is row-major, so the row-dot form is already cache-optimal; the
    // unrolled dot supplies the instruction-level parallelism.
    const double* ld = l_.data().data();
    for (std::size_t i = 0; i < n; ++i) {
      const double* li = ld + i * n;
      x[i] = (x[i] - dotUnrolled(li, x.data(), i)) / li[i];
    }
    return x;
  }
  for (std::size_t i = 0; i < n; ++i) {
    double s = x[i];
    auto li = l_.row(i);
    for (std::size_t k = 0; k < i; ++k) s -= li[k] * x[k];
    x[i] = s / li[i];
  }
  return x;
}

Vector Cholesky::solveUpper(std::span<const double> b) const {
  requireArg(b.size() == dim(), "Cholesky::solveUpper: size mismatch");
  const std::size_t n = dim();
  Vector x(b.begin(), b.end());
  if (blockedKernelsEnabled()) {
    // Blocked backward substitution on Lᵀ: solve one kLaBlock tile
    // bottom-up, then push its contribution into everything above with
    // contiguous axpy sweeps over rows of L (the naive column traversal
    // strides by n on every load).
    const double* ld = l_.data().data();
    const std::size_t nTiles = (n + kLaBlock - 1) / kLaBlock;
    for (std::size_t tk = nTiles; tk-- > 0;) {
      const std::size_t k0 = tk * kLaBlock;
      const std::size_t nb = std::min(kLaBlock, n - k0);
      for (std::size_t r = nb; r-- > 0;) {
        const std::size_t i = k0 + r;
        double s = x[i];
        for (std::size_t t = r + 1; t < nb; ++t)
          s -= ld[(k0 + t) * n + i] * x[k0 + t];
        x[i] = s / ld[i * n + i];
      }
      for (std::size_t t = 0; t < nb; ++t) {
        const double v = x[k0 + t];
        if (v == 0.0) continue;
        const double* lrow = ld + (k0 + t) * n;
        for (std::size_t i = 0; i < k0; ++i) x[i] -= lrow[i] * v;
      }
    }
    return x;
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double s = x[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l_(k, ii) * x[k];
    x[ii] = s / l_(ii, ii);
  }
  return x;
}

Vector Cholesky::solve(std::span<const double> b) const {
  return solveUpper(solveLower(b));
}

Matrix Cholesky::solve(const Matrix& b) const {
  requireArg(b.rows() == dim(), "Cholesky::solve: row count mismatch");
  if (!blockedKernelsEnabled()) {
    Matrix x(b.rows(), b.cols());
    for (std::size_t j = 0; j < b.cols(); ++j) {
      const Vector xj = solve(b.col(j));
      for (std::size_t i = 0; i < b.rows(); ++i) x(i, j) = xj[i];
    }
    return x;
  }
  // True multi-RHS path: one copy of B, both triangular solves in place
  // across all columns at once (column-tiled, parallel over tiles).
  PerfRegistry::instance().increment("la.trsm");
  Matrix x = b;
  trsmLowerLeft(l_, x);
  trsmUpperLeft(l_, x);
  return x;
}

double Cholesky::logDet() const {
  double s = 0.0;
  for (std::size_t i = 0; i < dim(); ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

Matrix Cholesky::inverse() const { return solve(Matrix::identity(dim())); }

void Cholesky::extend(std::span<const double> k, double kappa) {
  const std::size_t n = dim();
  requireArg(k.size() == n, "Cholesky::extend: cross-covariance size");
  const Vector l = solveLower(k);
  const double pivotSq = kappa - la::dot(l, l);
  if (!(pivotSq > 0.0) || !std::isfinite(pivotSq))
    throw NumericalError("Cholesky::extend: extended matrix not SPD");
  Matrix grown(n + 1, n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    const auto src = l_.row(i);
    std::copy(src.begin(), src.begin() + i + 1, grown.row(i).begin());
  }
  for (std::size_t j = 0; j < n; ++j) grown(n, j) = l[j];
  grown(n, n) = std::sqrt(pivotSq);
  l_ = std::move(grown);
}

}  // namespace alperf::la
