#pragma once

/// \file cholesky.hpp
/// Cholesky (L·Lᵀ) factorization of symmetric positive-definite matrices,
/// with the structured recovery policy the numerics-health layer builds
/// on: if the raw factorization fails (the kernel matrix is numerically
/// singular), an increasing multiple of the mean diagonal is added until
/// it succeeds or a cap is reached, and the outcome — attempt count,
/// final jitter, condition estimate, failure kind — is recorded as a
/// typed RecoveryEvent and reported to the HealthMonitor
/// (common/health.hpp). Non-finite input is contained here: it throws
/// NumericalError (recoverable) instead of propagating NaN into the
/// factor or aborting as a precondition violation.

#include <cstddef>

#include "la/matrix.hpp"

namespace alperf::la {

/// How a factorization concluded — the failure taxonomy the GP layer's
/// degradation ladder dispatches on.
enum class CholeskyStatus {
  Ok,                   ///< factorized without jitter
  RecoveredWithJitter,  ///< succeeded after diagonal jitter escalation
  NonFiniteInput,       ///< input contained NaN/Inf (ctor threw)
  NotPositiveDefinite,  ///< jitter cap reached without success (ctor threw)
};

/// Human-readable name of a CholeskyStatus.
const char* toString(CholeskyStatus status);

/// Typed record of what a factorization needed to succeed. Replaces the
/// former ad-hoc jitter loop's implicit state: campaign monitors can log
/// or alert on it without string-parsing exception messages.
struct RecoveryEvent {
  CholeskyStatus status = CholeskyStatus::Ok;
  int attempts = 1;          ///< factorization attempts (1 = raw succeeded)
  double finalJitter = 0.0;  ///< total diagonal jitter of the final attempt
  /// Reciprocal 1-norm condition estimate of the factorized matrix
  /// (Hager/Higham estimator, a few O(n²) solves). Computed eagerly when
  /// jitter was needed, lazily via Cholesky::rcond1() otherwise; -1.0
  /// when not (yet) computed.
  double rcond = -1.0;
};

/// Result of a Cholesky factorization A = L·Lᵀ (L lower-triangular).
///
/// The factor object owns L and provides the solve / log-determinant
/// operations GPR needs. `jitter` records the total amount added to the
/// diagonal before factorization succeeded (0 when none was needed).
class Cholesky {
 public:
  /// Factorizes `a` (must be square and symmetric to within `symTol`
  /// relative tolerance; asymmetry is a precondition violation and throws
  /// std::invalid_argument). Throws NumericalError when `a` contains a
  /// non-finite element, and when `a` is not SPD even after jitter
  /// escalation up to `maxJitterScale` times the mean diagonal magnitude.
  /// Both failures are recorded with the HealthMonitor before throwing.
  explicit Cholesky(Matrix a, double maxJitterScale = 1e-6,
                    double symTol = 1e-8);

  std::size_t dim() const { return l_.rows(); }
  const Matrix& factor() const { return l_; }
  double jitter() const { return jitter_; }

  /// The typed outcome of the factorization (rcond filled in when known —
  /// see RecoveryEvent::rcond).
  RecoveryEvent recovery() const;

  /// Reciprocal 1-norm condition estimate 1/(‖A‖₁·‖A⁻¹‖₁) of the matrix
  /// as factorized (i.e. including any jitter), via Hager's power method
  /// on A⁻¹ — a handful of O(n²) triangular solves, no refactorization.
  /// Cached after the first call; the first call is not thread-safe
  /// against concurrent rcond1() calls on the same object.
  double rcond1() const;

  /// Solves A·x = b. b length must equal dim().
  Vector solve(std::span<const double> b) const;

  /// Solves A·X = B for all columns of B at once. With the blocked kernels
  /// active (the default, see la/blas.hpp) this runs the in-place
  /// multi-RHS trsm pair — one allocation for X, column-tile parallel;
  /// with ALPERF_LA_KERNELS=reference it falls back to the seed
  /// per-column loop.
  Matrix solve(const Matrix& b) const;

  /// Solves L·x = b (forward substitution; unrolled-dot row sweep when the
  /// blocked kernels are active).
  Vector solveLower(std::span<const double> b) const;

  /// Solves L·X = B for all columns of B at once (forward substitution
  /// only — the first half of solve(Matrix)). With the blocked kernels
  /// active this is one in-place multi-RHS trsm, column-tile parallel;
  /// with ALPERF_LA_KERNELS=reference it is the seed per-column loop.
  /// This is the batch-prediction primitive: V = L⁻¹·K_cross in one call
  /// instead of one O(n²) solve per query column.
  Matrix solveLower(const Matrix& b) const;

  /// In-place variant of solveLower(Matrix): B is overwritten with X. Lets
  /// callers that no longer need B (e.g. the GP batch predict, which
  /// consumes K_cross for the mean first) skip the copy.
  void solveLowerInPlace(Matrix& b) const;

  /// Solves Lᵀ·x = b (backward substitution; blocked with contiguous axpy
  /// panel updates when the blocked kernels are active — the naive loop
  /// walks a column of a row-major matrix, striding by n per element).
  Vector solveUpper(std::span<const double> b) const;

  /// log|A| = 2·Σ log L_ii.
  double logDet() const;

  /// A⁻¹ (dense); used by the analytic LML gradient.
  Matrix inverse() const;

  /// Extends the factorization to the (n+1)×(n+1) matrix
  /// [[A, k], [kᵀ, kappa]] in O(n²): the new factor row is
  /// l = L⁻¹k, with pivot sqrt(kappa − lᵀl). Throws NumericalError when
  /// the extended matrix is not positive definite. This is what makes
  /// incremental GP updates (one new experiment) cheap.
  void extend(std::span<const double> k, double kappa);

 private:
  double estimateRcond1() const;

  Matrix l_;
  double jitter_ = 0.0;
  double anorm1_ = 0.0;  ///< ‖A‖₁ of the input (pre-jitter), for rcond1()
  RecoveryEvent recovery_;
  mutable double rcondCache_ = -1.0;
};

/// Attempts a raw in-place Cholesky of `a` (lower triangle overwritten).
/// Returns false without throwing if a non-positive pivot is hit.
/// Dispatches to the blocked right-looking kernel (la/blas.hpp) unless the
/// reference kernels were selected via ALPERF_LA_KERNELS=reference or
/// setBlockedKernels(false).
bool choleskyInPlace(Matrix& a);

}  // namespace alperf::la
