#pragma once

/// \file cholesky.hpp
/// Cholesky (L·Lᵀ) factorization of symmetric positive-definite matrices,
/// with the jitter-escalation fallback standard in GP implementations:
/// if the factorization fails (the kernel matrix is numerically singular),
/// an increasing multiple of the mean diagonal is added until it succeeds
/// or a cap is reached.

#include <cstddef>

#include "la/matrix.hpp"

namespace alperf::la {

/// Result of a Cholesky factorization A = L·Lᵀ (L lower-triangular).
///
/// The factor object owns L and provides the solve / log-determinant
/// operations GPR needs. `jitter` records the total amount added to the
/// diagonal before factorization succeeded (0 when none was needed).
class Cholesky {
 public:
  /// Factorizes `a` (must be square and symmetric to within `symTol`
  /// relative tolerance). Throws NumericalError if `a` is not SPD even
  /// after jitter escalation up to `maxJitterScale` times the mean
  /// diagonal magnitude.
  explicit Cholesky(Matrix a, double maxJitterScale = 1e-6,
                    double symTol = 1e-8);

  std::size_t dim() const { return l_.rows(); }
  const Matrix& factor() const { return l_; }
  double jitter() const { return jitter_; }

  /// Solves A·x = b. b length must equal dim().
  Vector solve(std::span<const double> b) const;

  /// Solves A·X = B for all columns of B at once. With the blocked kernels
  /// active (the default, see la/blas.hpp) this runs the in-place
  /// multi-RHS trsm pair — one allocation for X, column-tile parallel;
  /// with ALPERF_LA_KERNELS=reference it falls back to the seed
  /// per-column loop.
  Matrix solve(const Matrix& b) const;

  /// Solves L·x = b (forward substitution; unrolled-dot row sweep when the
  /// blocked kernels are active).
  Vector solveLower(std::span<const double> b) const;

  /// Solves Lᵀ·x = b (backward substitution; blocked with contiguous axpy
  /// panel updates when the blocked kernels are active — the naive loop
  /// walks a column of a row-major matrix, striding by n per element).
  Vector solveUpper(std::span<const double> b) const;

  /// log|A| = 2·Σ log L_ii.
  double logDet() const;

  /// A⁻¹ (dense); used by the analytic LML gradient.
  Matrix inverse() const;

  /// Extends the factorization to the (n+1)×(n+1) matrix
  /// [[A, k], [kᵀ, kappa]] in O(n²): the new factor row is
  /// l = L⁻¹k, with pivot sqrt(kappa − lᵀl). Throws NumericalError when
  /// the extended matrix is not positive definite. This is what makes
  /// incremental GP updates (one new experiment) cheap.
  void extend(std::span<const double> k, double kappa);

 private:
  Matrix l_;
  double jitter_ = 0.0;
};

/// Attempts a raw in-place Cholesky of `a` (lower triangle overwritten).
/// Returns false without throwing if a non-positive pivot is hit.
/// Dispatches to the blocked right-looking kernel (la/blas.hpp) unless the
/// reference kernels were selected via ALPERF_LA_KERNELS=reference or
/// setBlockedKernels(false).
bool choleskyInPlace(Matrix& a);

}  // namespace alperf::la
