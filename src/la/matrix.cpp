#include "la/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/perf_stats.hpp"
#include "la/blas.hpp"

namespace alperf::la {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    requireArg(r.size() == cols_, "Matrix: ragged initializer list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix::Matrix(std::size_t rows, std::size_t cols, Vector data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  requireArg(data_.size() == rows_ * cols_,
             "Matrix: data size does not match rows*cols");
}

Vector Matrix::col(std::size_t j) const {
  ALPERF_ASSERT(j < cols_, "Matrix column index out of range");
  Vector out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) out[i] = data_[i * cols_ + j];
  return out;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::fromRows(const std::vector<Vector>& rows) {
  if (rows.empty()) return {};
  const std::size_t cols = rows.front().size();
  Matrix m(rows.size(), cols);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    requireArg(rows[i].size() == cols, "Matrix::fromRows: ragged rows");
    std::copy(rows[i].begin(), rows[i].end(), m.row(i).begin());
  }
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  return t;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  requireArg(rows_ == rhs.rows_ && cols_ == rhs.cols_,
             "Matrix +=: dimension mismatch");
  for (std::size_t k = 0; k < data_.size(); ++k) data_[k] += rhs.data_[k];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  requireArg(rows_ == rhs.rows_ && cols_ == rhs.cols_,
             "Matrix -=: dimension mismatch");
  for (std::size_t k = 0; k < data_.size(); ++k) data_[k] -= rhs.data_[k];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

void Matrix::addToDiagonal(double s) {
  requireArg(rows_ == cols_, "addToDiagonal: matrix must be square");
  for (std::size_t i = 0; i < rows_; ++i) data_[i * cols_ + i] += s;
}

double Matrix::maxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

double Matrix::frobeniusNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

bool Matrix::approxEqual(const Matrix& rhs, double tol) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) return false;
  for (std::size_t k = 0; k < data_.size(); ++k)
    if (std::abs(data_[k] - rhs.data_[k]) > tol) return false;
  return true;
}

std::string Matrix::toString(int precision) const {
  std::ostringstream os;
  os << std::setprecision(precision);
  for (std::size_t i = 0; i < rows_; ++i) {
    os << (i == 0 ? "[[" : " [");
    for (std::size_t j = 0; j < cols_; ++j)
      os << (j ? ", " : "") << (*this)(i, j);
    os << (i + 1 == rows_ ? "]]" : "]\n");
  }
  return os.str();
}

Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
Matrix operator*(Matrix m, double s) { return m *= s; }
Matrix operator*(double s, Matrix m) { return m *= s; }

Matrix matmul(const Matrix& a, const Matrix& b) {
  PerfRegistry::instance().increment("la.gemm");
  return blockedKernelsEnabled() ? matmulBlocked(a, b)
                                 : matmulReference(a, b);
}

Matrix gram(const Matrix& a) {
  return blockedKernelsEnabled() ? gramBlocked(a) : gramReference(a);
}

Vector matvec(const Matrix& a, std::span<const double> x) {
  requireArg(a.cols() == x.size(), "matvec: dimension mismatch");
  Vector y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) y[i] = dot(a.row(i), x);
  return y;
}

Vector matvecTransposed(const Matrix& a, std::span<const double> x) {
  requireArg(a.rows() == x.size(), "matvecTransposed: dimension mismatch");
  Vector y(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) axpy(x[i], a.row(i), y);
  return y;
}

double dot(std::span<const double> a, std::span<const double> b) {
  ALPERF_ASSERT(a.size() == b.size(), "dot: length mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  ALPERF_ASSERT(x.size() == y.size(), "axpy: length mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double norm2(std::span<const double> v) { return std::sqrt(dot(v, v)); }

double normInf(std::span<const double> v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

Vector subtract(std::span<const double> a, std::span<const double> b) {
  ALPERF_ASSERT(a.size() == b.size(), "subtract: length mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

double squaredDistance(std::span<const double> a, std::span<const double> b) {
  ALPERF_ASSERT(a.size() == b.size(), "squaredDistance: length mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

}  // namespace alperf::la
