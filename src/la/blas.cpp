#include "la/blas.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <string_view>

#include "common/thread_pool.hpp"

namespace alperf::la {

namespace {

/// -1 = uninitialized (resolve from ALPERF_LA_KERNELS on first use),
/// 0 = reference, 1 = blocked.
std::atomic<int> gBlockedState{-1};

int resolveBlockedState() {
  const char* v = std::getenv("ALPERF_LA_KERNELS");
  if (v != nullptr && std::string_view(v) == "reference") return 0;
  return 1;
}

}  // namespace

bool blockedKernelsEnabled() {
  int s = gBlockedState.load(std::memory_order_relaxed);
  if (s < 0) {
    s = resolveBlockedState();
    gBlockedState.store(s, std::memory_order_relaxed);
  }
  return s == 1;
}

void setBlockedKernels(bool on) {
  gBlockedState.store(on ? 1 : 0, std::memory_order_relaxed);
}

double dotUnrolled(const double* a, const double* b, std::size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  double s = (s0 + s1) + (s2 + s3);
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

// --------------------------------------------------------------- reference

Matrix matmulReference(const Matrix& a, const Matrix& b) {
  requireArg(a.cols() == b.rows(), "matmul: inner dimension mismatch");
  Matrix c(a.rows(), b.cols());
  // i-k-j loop order keeps the inner loop contiguous in both b and c.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    auto ci = c.row(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      auto bk = b.row(k);
      for (std::size_t j = 0; j < b.cols(); ++j) ci[j] += aik * bk[j];
    }
  }
  return c;
}

Matrix gramReference(const Matrix& a) {
  Matrix g(a.cols(), a.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    auto r = a.row(k);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double ri = r[i];
      if (ri == 0.0) continue;
      for (std::size_t j = i; j < a.cols(); ++j) g(i, j) += ri * r[j];
    }
  }
  for (std::size_t i = 0; i < a.cols(); ++i)
    for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  return g;
}

bool choleskyInPlaceReference(Matrix& a) {
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= a(j, k) * a(j, k);
    if (!(d > 0.0) || !std::isfinite(d)) return false;
    const double ljj = std::sqrt(d);
    a(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= a(i, k) * a(j, k);
      a(i, j) = s / ljj;
    }
  }
  // Zero the strict upper triangle so the factor is exactly L.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) a(i, j) = 0.0;
  return true;
}

// ----------------------------------------------------------------- blocked

namespace {

constexpr std::size_t kB = kLaBlock;

/// ci[0..jw) += alpha · Σ_t av[t] · bp[t·ldb + j] — the register-blocked
/// row micro-kernel behind gemm/syrk/trsm and the Cholesky trailing
/// update. The 4-way unrolled body is a left-associated chain of adds,
/// i.e. the exact operation sequence of four consecutive axpys: per
/// element the t-contributions still accumulate in ascending order, so
/// every caller stays bit-identical at any thread count. The inner j
/// loops are element-wise (no reduction) and vectorize without any
/// floating-point reassociation.
inline void rowUpdate(double* ci, const double* av, const double* bp,
                      std::size_t ldb, std::size_t nb, std::size_t jw,
                      double alpha) {
  std::size_t t = 0;
  for (; t + 4 <= nb; t += 4) {
    const double v0 = alpha * av[t];
    const double v1 = alpha * av[t + 1];
    const double v2 = alpha * av[t + 2];
    const double v3 = alpha * av[t + 3];
    const double* b0 = bp + t * ldb;
    const double* b1 = b0 + ldb;
    const double* b2 = b1 + ldb;
    const double* b3 = b2 + ldb;
    for (std::size_t j = 0; j < jw; ++j)
      ci[j] = ci[j] + v0 * b0[j] + v1 * b1[j] + v2 * b2[j] + v3 * b3[j];
  }
  for (; t < nb; ++t) {
    const double v = alpha * av[t];
    if (v == 0.0) continue;
    const double* bt = bp + t * ldb;
    for (std::size_t j = 0; j < jw; ++j) ci[j] += v * bt[j];
  }
}

}  // namespace

Matrix matmulBlocked(const Matrix& a, const Matrix& b) {
  requireArg(a.cols() == b.rows(), "matmul: inner dimension mismatch");
  const std::size_t m = a.rows(), kDim = a.cols(), p = b.cols();
  Matrix c(m, p);
  if (m == 0 || kDim == 0 || p == 0) return c;
  const double* ad = a.data().data();
  const double* bd = b.data().data();
  double* cd = c.data().data();
  const std::size_t rowTiles = (m + kB - 1) / kB;
  // Each result row tile is owned by exactly one index; k tiles ascend, so
  // per element the accumulation order matches the reference kernel.
  parallelFor(rowTiles, 1, [&](std::size_t ti) {
    const std::size_t i0 = ti * kB;
    const std::size_t iw = std::min(kB, m - i0);
    for (std::size_t k0 = 0; k0 < kDim; k0 += kB) {
      const std::size_t kw = std::min(kB, kDim - k0);
      for (std::size_t j0 = 0; j0 < p; j0 += kB) {
        const std::size_t jw = std::min(kB, p - j0);
        for (std::size_t i = i0; i < i0 + iw; ++i)
          rowUpdate(cd + i * p + j0, ad + i * kDim + k0,
                    bd + k0 * p + j0, p, kw, jw, 1.0);
      }
    }
  });
  return c;
}

void syrkUpdate(Matrix& c, const Matrix& a, double alpha) {
  requireArg(c.rows() == c.cols() && c.rows() == a.rows(),
             "syrkUpdate: c must be square of edge a.rows()");
  const std::size_t n = a.rows(), kDim = a.cols();
  if (n == 0) return;
  const double* ad = a.data().data();
  double* cd = c.data().data();
  const std::size_t nt = (n + kB - 1) / kB;
  const std::size_t nPairs = nt * (nt + 1) / 2;
  // One lower-triangle tile pair (bi >= bj) per index; the owning task also
  // writes the mirrored upper tile, so no two tasks touch the same element.
  parallelFor(nPairs, 1, [&](std::size_t pIdx) {
    std::size_t bj = 0, rem = pIdx;
    while (rem >= nt - bj) {
      rem -= nt - bj;
      ++bj;
    }
    const std::size_t bi = bj + rem;
    const std::size_t i0 = bi * kB, iw = std::min(kB, n - i0);
    const std::size_t j0 = bj * kB, jw = std::min(kB, n - j0);
    double pt[kB * kB];
    for (std::size_t k0 = 0; k0 < kDim; k0 += kB) {
      const std::size_t kw = std::min(kB, kDim - k0);
      // Transposed j-panel so the inner update streams contiguously.
      for (std::size_t jj = 0; jj < jw; ++jj) {
        const double* src = ad + (j0 + jj) * kDim + k0;
        for (std::size_t t = 0; t < kw; ++t) pt[t * jw + jj] = src[t];
      }
      for (std::size_t i = 0; i < iw; ++i)
        rowUpdate(cd + (i0 + i) * n + j0, ad + (i0 + i) * kDim + k0, pt,
                  jw, kw, jw, alpha);
    }
    if (bi != bj) {
      // Mirror into the upper tile — exact copy, so c stays symmetric.
      for (std::size_t i = 0; i < iw; ++i)
        for (std::size_t j = 0; j < jw; ++j)
          cd[(j0 + j) * n + (i0 + i)] = cd[(i0 + i) * n + (j0 + j)];
    }
  });
}

Matrix gramBlocked(const Matrix& a) {
  Matrix g(a.cols(), a.cols());
  if (a.cols() == 0) return g;
  syrkUpdate(g, a.transposed(), 1.0);
  return g;
}

bool choleskyInPlaceBlocked(Matrix& a) {
  const std::size_t n = a.rows();
  if (n == 0) return true;
  double* ad = a.data().data();
  const std::size_t lda = n;
  for (std::size_t k0 = 0; k0 < n; k0 += kB) {
    const std::size_t nb = std::min(kB, n - k0);
    // 1) Scalar factorization of the diagonal block; contributions from
    //    earlier panels were already subtracted by step 3.
    for (std::size_t c = 0; c < nb; ++c) {
      const std::size_t j = k0 + c;
      double* rj = ad + j * lda + k0;
      const double d = rj[c] - dotUnrolled(rj, rj, c);
      if (!(d > 0.0) || !std::isfinite(d)) return false;
      const double ljj = std::sqrt(d);
      rj[c] = ljj;
      for (std::size_t i = j + 1; i < k0 + nb; ++i) {
        double* ri = ad + i * lda + k0;
        ri[c] = (ri[c] - dotUnrolled(ri, rj, c)) / ljj;
      }
    }
    const std::size_t r0 = k0 + nb;
    if (r0 >= n) break;
    // 2) Panel triangular solve L_ik = A_ik·L_kk⁻ᵀ, each trailing row owned
    //    by one parallel index.
    parallelFor(n - r0, kB, [&](std::size_t idx) {
      const std::size_t i = r0 + idx;
      double* ri = ad + i * lda + k0;
      for (std::size_t c = 0; c < nb; ++c) {
        const double* rc = ad + (k0 + c) * lda + k0;
        ri[c] = (ri[c] - dotUnrolled(ri, rc, c)) / rc[c];
      }
    });
    // 3) Trailing-matrix update A₂₂ -= L₂₁·L₂₁ᵀ over lower-triangle tiles;
    //    each tile pair is owned by one parallel index, and within a tile
    //    the panel columns accumulate in ascending order, so the factor is
    //    bit-identical at every thread count.
    const std::size_t nt = (n - r0 + kB - 1) / kB;
    const std::size_t nPairs = nt * (nt + 1) / 2;
    parallelFor(nPairs, 1, [&](std::size_t pIdx) {
      std::size_t bj = 0, rem = pIdx;
      while (rem >= nt - bj) {
        rem -= nt - bj;
        ++bj;
      }
      const std::size_t bi = bj + rem;
      const std::size_t i0 = r0 + bi * kB, iw = std::min(kB, n - i0);
      const std::size_t j0 = r0 + bj * kB, jw = std::min(kB, n - j0);
      double pt[kB * kB];
      for (std::size_t jj = 0; jj < jw; ++jj) {
        const double* src = ad + (j0 + jj) * lda + k0;
        for (std::size_t t = 0; t < nb; ++t) pt[t * jw + jj] = src[t];
      }
      for (std::size_t i = 0; i < iw; ++i)
        rowUpdate(ad + (i0 + i) * lda + j0, ad + (i0 + i) * lda + k0, pt,
                  jw, nb, jw, -1.0);
    });
  }
  for (std::size_t i = 0; i < n; ++i) {
    double* ri = ad + i * lda;
    std::fill(ri + i + 1, ri + n, 0.0);
  }
  return true;
}

void trsmLowerLeft(const Matrix& l, Matrix& b) {
  requireArg(l.rows() == l.cols() && l.rows() == b.rows(),
             "trsmLowerLeft: dimension mismatch");
  const std::size_t n = l.rows(), m = b.cols();
  if (n == 0 || m == 0) return;
  const double* ld = l.data().data();
  double* bd = b.data().data();
  const std::size_t mt = (m + kB - 1) / kB;
  // Columns of B are independent: one column tile per parallel index, with
  // ascending-k updates inside, keeps the result thread-count invariant.
  parallelFor(mt, 1, [&](std::size_t tc) {
    const std::size_t j0 = tc * kB;
    const std::size_t jw = std::min(kB, m - j0);
    for (std::size_t k0 = 0; k0 < n; k0 += kB) {
      const std::size_t nb = std::min(kB, n - k0);
      for (std::size_t r = 0; r < nb; ++r) {
        const std::size_t i = k0 + r;
        double* bi = bd + i * m + j0;
        const double* li = ld + i * n + k0;
        rowUpdate(bi, li, bd + k0 * m + j0, m, r, jw, -1.0);
        const double lii = li[r];
        for (std::size_t j = 0; j < jw; ++j) bi[j] /= lii;
      }
      for (std::size_t i = k0 + nb; i < n; ++i)
        rowUpdate(bd + i * m + j0, ld + i * n + k0, bd + k0 * m + j0, m,
                  nb, jw, -1.0);
    }
  });
}

void trsmLowerNewRow(const double* lRow, std::size_t t, const double* x,
                     std::size_t ldx, std::span<double> b) {
  const std::size_t m = b.size();
  if (m == 0) return;
  const double pivot = lRow[t];
  if (blockedKernelsEnabled()) {
    // Row t of trsmLowerLeft sees one rowUpdate per preceding k-tile — full
    // kB tiles from the trailing-row loop, then the partial in-tile prefix
    // — before the pivot division. Replaying that tile walk (ascending k0,
    // jw = m instead of 64-wide column tiles; the inner j loops are
    // element-wise, so the column tiling never changed per-element
    // rounding) keeps this row bit-identical to the from-scratch solve.
    for (std::size_t k0 = 0; k0 < t; k0 += kB) {
      const std::size_t nb = std::min(kB, t - k0);
      rowUpdate(b.data(), lRow + k0, x + k0 * ldx, ldx, nb, m, -1.0);
    }
    for (std::size_t j = 0; j < m; ++j) b[j] /= pivot;
    return;
  }
  // Reference kernels: the seed per-column forward substitution for row t.
  for (std::size_t j = 0; j < m; ++j) {
    double s = b[j];
    for (std::size_t k = 0; k < t; ++k) s -= lRow[k] * x[k * ldx + j];
    b[j] = s / pivot;
  }
}

void trsmUpperLeft(const Matrix& l, Matrix& b) {
  requireArg(l.rows() == l.cols() && l.rows() == b.rows(),
             "trsmUpperLeft: dimension mismatch");
  const std::size_t n = l.rows(), m = b.cols();
  if (n == 0 || m == 0) return;
  const double* ld = l.data().data();
  double* bd = b.data().data();
  const std::size_t mt = (m + kB - 1) / kB;
  const std::size_t nTiles = (n + kB - 1) / kB;
  parallelFor(mt, 1, [&](std::size_t tc) {
    const std::size_t j0 = tc * kB;
    const std::size_t jw = std::min(kB, m - j0);
    for (std::size_t tk = nTiles; tk-- > 0;) {
      const std::size_t k0 = tk * kB;
      const std::size_t nb = std::min(kB, n - k0);
      // In-tile backward substitution (rows bottom-up).
      for (std::size_t r = nb; r-- > 0;) {
        const std::size_t i = k0 + r;
        double* bi = bd + i * m + j0;
        for (std::size_t t = r + 1; t < nb; ++t) {
          const double v = ld[(k0 + t) * n + i];
          if (v == 0.0) continue;
          const double* bt = bd + (k0 + t) * m + j0;
          for (std::size_t j = 0; j < jw; ++j) bi[j] -= v * bt[j];
        }
        const double lii = ld[i * n + i];
        for (std::size_t j = 0; j < jw; ++j) bi[j] /= lii;
      }
      // Update every row above the tile; iterating t outermost keeps the
      // reads of L contiguous (row k0+t of L holds the needed column
      // entries l(k0+t, i) for all i). The 4-way unroll over t is the
      // same ascending left-associated chain as four single-t sweeps.
      std::size_t t = 0;
      for (; t + 4 <= nb; t += 4) {
        const double* l0 = ld + (k0 + t) * n;
        const double* l1 = l0 + n;
        const double* l2 = l1 + n;
        const double* l3 = l2 + n;
        const double* b0 = bd + (k0 + t) * m + j0;
        const double* b1 = b0 + m;
        const double* b2 = b1 + m;
        const double* b3 = b2 + m;
        for (std::size_t i = 0; i < k0; ++i) {
          const double v0 = l0[i], v1 = l1[i], v2 = l2[i], v3 = l3[i];
          double* bi = bd + i * m + j0;
          for (std::size_t j = 0; j < jw; ++j)
            bi[j] = bi[j] - v0 * b0[j] - v1 * b1[j] - v2 * b2[j] -
                    v3 * b3[j];
        }
      }
      for (; t < nb; ++t) {
        const double* lrow = ld + (k0 + t) * n;
        const double* bt = bd + (k0 + t) * m + j0;
        for (std::size_t i = 0; i < k0; ++i) {
          const double v = lrow[i];
          if (v == 0.0) continue;
          double* bi = bd + i * m + j0;
          for (std::size_t j = 0; j < jw; ++j) bi[j] -= v * bt[j];
        }
      }
    }
  });
}

}  // namespace alperf::la
