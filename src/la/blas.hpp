#pragma once

/// \file blas.hpp
/// Cache-blocked, SIMD-friendly dense kernels (BLAS-3 style) plus the seed
/// scalar reference implementations they are verified against.
///
/// All blocked kernels share one determinism contract: the matrix is tiled
/// into fixed kLaBlock-edge blocks, every output block is written by exactly
/// one parallelFor index, and every per-element accumulation runs in a fixed
/// (ascending-k) order. Results are therefore bit-identical for every thread
/// count, including 1. They are NOT guaranteed bit-identical to the
/// reference kernels (unrolled multi-lane accumulators reassociate sums);
/// the property tests pin blocked-vs-reference agreement to 1e-12 relative
/// error on random SPD inputs.
///
/// Kernel selection: blocked kernels are the default. Set the environment
/// variable ALPERF_LA_KERNELS=reference (read once, at first use) or call
/// setBlockedKernels(false) to fall back to the seed scalar kernels for A/B
/// verification. The dispatch happens inside matmul(), gram(),
/// choleskyInPlace() and the Cholesky solve paths — callers never change.

#include <cstddef>

#include "la/matrix.hpp"

namespace alperf::la {

/// Tile edge shared by every blocked kernel (64×64 doubles = 32 KiB, two
/// tiles fit in a typical L2 slice). Fixed — never derived from the thread
/// count — so block boundaries, and hence rounding, are identical for every
/// parallelism level.
inline constexpr std::size_t kLaBlock = 64;

/// True when the blocked kernels are active (the default). The first call
/// reads ALPERF_LA_KERNELS; "reference" selects the seed scalar kernels.
bool blockedKernelsEnabled();

/// Overrides the kernel selection (true = blocked, false = reference).
void setBlockedKernels(bool on);

/// Four-lane unrolled dot product: deterministic lane layout, breaks the
/// serial dependence chain of a naive accumulation so the FPU pipelines.
/// Used by the triangular-substitution kernels.
double dotUnrolled(const double* a, const double* b, std::size_t n);

// --------------------------------------------------------------- reference
// The seed scalar kernels, retained verbatim for A/B verification and as
// the oracle for the blocked property tests.

/// Seed i-k-j matrix product.
Matrix matmulReference(const Matrix& a, const Matrix& b);

/// Seed scalar AᵀA.
Matrix gramReference(const Matrix& a);

/// Seed scalar (unblocked) in-place Cholesky; lower triangle overwritten,
/// strict upper zeroed. Returns false on a non-positive pivot.
bool choleskyInPlaceReference(Matrix& a);

// ----------------------------------------------------------------- blocked

/// Tiled matrix product A·B, parallel over row tiles of the result. Per
/// element the accumulation order is ascending k, matching the reference.
Matrix matmulBlocked(const Matrix& a, const Matrix& b);

/// c += alpha·a·aᵀ (c must be square of edge a.rows(); both triangles are
/// written — the upper triangle is mirrored from the lower, so the result
/// is exactly symmetric). Tiled syrk, parallel over lower-triangle tiles.
void syrkUpdate(Matrix& c, const Matrix& a, double alpha);

/// Blocked AᵀA via syrkUpdate on the transpose.
Matrix gramBlocked(const Matrix& a);

/// Blocked right-looking in-place Cholesky: scalar panel factorization,
/// then the panel triangular solve and the trailing-matrix syrk update run
/// tile-parallel on the global pool. Lower triangle overwritten, strict
/// upper zeroed. Returns false on a non-positive or non-finite pivot.
/// For n <= kLaBlock this degrades to exactly the reference kernel.
bool choleskyInPlaceBlocked(Matrix& a);

/// In-place multi-RHS forward substitution: solves L·X = B for all columns
/// of B at once (B overwritten with X). Blocked over L's row panels and
/// parallel over column tiles of B; per element the update order is
/// ascending k.
void trsmLowerLeft(const Matrix& l, Matrix& b);

/// In-place multi-RHS backward substitution: solves Lᵀ·X = B (B overwritten
/// with X). Blocked over L's row panels in descending order, parallel over
/// column tiles of B.
void trsmUpperLeft(const Matrix& l, Matrix& b);

/// Forward-substitutes ONE appended row of a multi-RHS lower solve: given
/// the first `t` already-solved rows of X (`x`, row stride `ldx` >=
/// b.size()) and row t of L (`lRow`, length t+1 with the pivot at
/// lRow[t]), transforms `b` (length m) from a row of B into row t of X, in
/// place. This is the O(t·m) incremental step behind gp::PoolPredictCache:
/// forward substitution row t depends only on rows < t, so when L grows by
/// Cholesky::extend() the cached rows stay valid and only this row is new.
///
/// Dispatches on the kernel selection like every solve path. The blocked
/// variant replays trsmLowerLeft's exact arithmetic for row t (ascending
/// kLaBlock k-tiles of 4-way-unrolled updates, then the pivot division),
/// and the reference variant replays the per-column naive loop — so the
/// appended row is bit-identical to a from-scratch multi-RHS solve under
/// either kernel set.
void trsmLowerNewRow(const double* lRow, std::size_t t, const double* x,
                     std::size_t ldx, std::span<double> b);

}  // namespace alperf::la
