#pragma once

/// \file alperf.hpp
/// Umbrella header: pulls in the full public API. Downstream users who
/// prefer granular includes can include the per-module headers directly
/// (each module's header set is self-contained).

// Parallelism & instrumentation.
#include "common/fault_inject.hpp"
#include "common/health.hpp"
#include "common/perf_stats.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"

// Substrates.
#include "la/cholesky.hpp"
#include "la/matrix.hpp"
#include "stats/descriptive.hpp"
#include "stats/integrate.hpp"
#include "stats/rng.hpp"
#include "stats/sampling.hpp"

// Optimization.
#include "opt/gradient.hpp"
#include "opt/multistart.hpp"
#include "opt/neldermead.hpp"
#include "opt/objective.hpp"

// Data handling.
#include "data/csv.hpp"
#include "data/doe.hpp"
#include "data/groupby.hpp"
#include "data/partition.hpp"
#include "data/table.hpp"
#include "data/transform.hpp"

// Gaussian processes.
#include "gp/gp.hpp"
#include "gp/kernels.hpp"
#include "gp/sparse.hpp"

// Active learning (the paper's contribution).
#include "common/outcome.hpp"
#include "core/batch.hpp"
#include "core/calibration.hpp"
#include "core/checkpoint.hpp"
#include "core/continuous.hpp"
#include "core/dispatch.hpp"
#include "core/executor.hpp"
#include "core/learner.hpp"
#include "core/oracle.hpp"
#include "core/multi.hpp"
#include "core/optimize.hpp"
#include "core/problem.hpp"
#include "core/strategy.hpp"
#include "core/tradeoff.hpp"

// Measurement substrates.
#include "cluster/dataset.hpp"
#include "cluster/records.hpp"
#include "cluster/scheduler.hpp"
#include "hpgmg/benchmark.hpp"
#include "hpgmg/multigrid.hpp"
