#pragma once

/// \file integrate.hpp
/// Numerical integration over sampled traces. The cluster substrate uses
/// trapezoidIrregular() to turn IPMI power traces (Watts at irregular
/// timestamps) into per-job energy estimates (Joules), exactly as the
/// paper describes (Sec. IV-A).

#include <functional>
#include <span>

namespace alperf::stats {

/// Trapezoid rule over equally spaced samples with spacing h.
/// Requires at least 2 samples and h > 0.
double trapezoidUniform(std::span<const double> y, double h);

/// Trapezoid rule over irregularly spaced samples (t strictly increasing,
/// same length as y, at least 2 samples).
double trapezoidIrregular(std::span<const double> t,
                          std::span<const double> y);

/// Composite Simpson rule for a callable on [a, b] with n subintervals
/// (n made even internally). Requires a < b and n >= 2.
double simpson(const std::function<double(double)>& f, double a, double b,
               int n);

}  // namespace alperf::stats
