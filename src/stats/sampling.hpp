#pragma once

/// \file sampling.hpp
/// Random sampling helpers built on Rng: Fisher–Yates shuffling, sampling
/// with/without replacement, bootstrap resampling and weighted choice.
/// These drive dataset partitioning (Initial/Active/Test) and the EMCM
/// baseline's bootstrap ensembles.

#include <cstddef>
#include <numeric>
#include <span>
#include <vector>

#include "stats/rng.hpp"

namespace alperf::stats {

/// In-place Fisher–Yates shuffle.
template <typename T>
void shuffle(std::vector<T>& v, Rng& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const std::size_t j = rng.index(i);
    std::swap(v[i - 1], v[j]);
  }
}

/// A uniformly random permutation of {0, ..., n-1}.
inline std::vector<std::size_t> permutation(std::size_t n, Rng& rng) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  shuffle(idx, rng);
  return idx;
}

/// k distinct indices drawn uniformly from {0, ..., n-1}. Requires k <= n.
inline std::vector<std::size_t> sampleWithoutReplacement(std::size_t n,
                                                         std::size_t k,
                                                         Rng& rng) {
  requireArg(k <= n, "sampleWithoutReplacement: k > n");
  auto idx = permutation(n, rng);
  idx.resize(k);
  return idx;
}

/// k indices drawn uniformly with replacement from {0, ..., n-1}
/// (a bootstrap resample when k == n).
inline std::vector<std::size_t> sampleWithReplacement(std::size_t n,
                                                      std::size_t k,
                                                      Rng& rng) {
  requireArg(n > 0, "sampleWithReplacement: n must be positive");
  std::vector<std::size_t> idx(k);
  for (auto& i : idx) i = rng.index(n);
  return idx;
}

/// Index drawn with probability proportional to weights[i] (all >= 0,
/// at least one > 0).
inline std::size_t weightedChoice(std::span<const double> weights, Rng& rng) {
  double total = 0.0;
  for (double w : weights) {
    requireArg(w >= 0.0, "weightedChoice: negative weight");
    total += w;
  }
  requireArg(total > 0.0, "weightedChoice: all weights are zero");
  const double u = rng.uniform01() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  return weights.size() - 1;  // numerical edge: u == total
}

}  // namespace alperf::stats
