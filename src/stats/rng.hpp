#pragma once

/// \file rng.hpp
/// Deterministic random number generation.
///
/// The library never uses std::random_device or the std <random>
/// distributions (whose outputs vary across standard library
/// implementations). All stochastic behaviour flows through Rng, a
/// xoshiro256** engine with SplitMix64 seeding and hand-rolled
/// distributions, so every bench and test is bit-reproducible everywhere.

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <numbers>

#include "common/error.hpp"

namespace alperf::stats {

/// xoshiro256** PRNG (Blackman & Vigna) with deterministic distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via SplitMix64 from a single seed.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    std::uint64_t x = seed;
    for (auto& s : state_) {
      // SplitMix64 step.
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// A new independent generator; use to give each replicate its own stream.
  Rng split() { return Rng((*this)() ^ 0xa5a5a5a5a5a5a5a5ull); }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniformReal(double lo, double hi) {
    requireArg(lo <= hi, "uniformReal: lo > hi");
    return lo + (hi - lo) * uniform01();
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniformInt(std::uint64_t lo, std::uint64_t hi) {
    requireArg(lo <= hi, "uniformInt: lo > hi");
    const std::uint64_t range = hi - lo + 1;
    if (range == 0) return (*this)();  // full 64-bit range
    // Rejection sampling to remove modulo bias.
    const std::uint64_t limit = max() - max() % range;
    std::uint64_t v;
    do {
      v = (*this)();
    } while (v >= limit);
    return lo + v % range;
  }

  /// Uniform index in [0, n).
  std::size_t index(std::size_t n) {
    requireArg(n > 0, "Rng::index: n must be positive");
    return static_cast<std::size_t>(uniformInt(0, n - 1));
  }

  /// Standard normal via Box–Muller (cached spare for determinism & speed).
  double normal() {
    if (hasSpare_) {
      hasSpare_ = false;
      return spare_;
    }
    double u1 = uniform01();
    while (u1 <= 0.0) u1 = uniform01();
    const double u2 = uniform01();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    spare_ = r * std::sin(theta);
    hasSpare_ = true;
    return r * std::cos(theta);
  }

  /// Normal with mean mu, standard deviation sigma (>= 0).
  double normal(double mu, double sigma) {
    requireArg(sigma >= 0.0, "normal: sigma must be >= 0");
    return mu + sigma * normal();
  }

  /// Lognormal: exp(N(muLog, sigmaLog)).
  double lognormal(double muLog, double sigmaLog) {
    return std::exp(normal(muLog, sigmaLog));
  }

  /// Bernoulli(p).
  bool bernoulli(double p) {
    requireArg(p >= 0.0 && p <= 1.0, "bernoulli: p outside [0,1]");
    return uniform01() < p;
  }

  /// Exponential with given rate (> 0).
  double exponential(double rate) {
    requireArg(rate > 0.0, "exponential: rate must be > 0");
    double u = uniform01();
    while (u <= 0.0) u = uniform01();
    return -std::log(u) / rate;
  }

  /// Full serializable engine state: the four xoshiro words plus the
  /// Box–Muller spare (bit-cast) and its validity flag. Restoring this
  /// state reproduces the stream bit-for-bit — the basis of campaign
  /// checkpoint/resume.
  using State = std::array<std::uint64_t, 6>;

  State saveState() const {
    return {state_[0], state_[1], state_[2], state_[3],
            std::bit_cast<std::uint64_t>(spare_),
            hasSpare_ ? std::uint64_t{1} : std::uint64_t{0}};
  }

  void restoreState(const State& s) {
    for (std::size_t i = 0; i < 4; ++i) state_[i] = s[i];
    spare_ = std::bit_cast<double>(s[4]);
    hasSpare_ = s[5] != 0;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_ = 0.0;
  bool hasSpare_ = false;
};

}  // namespace alperf::stats
