#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace alperf::stats {

double sum(std::span<const double> v) {
  double s = 0.0;
  for (double x : v) s += x;
  return s;
}

double mean(std::span<const double> v) {
  requireArg(!v.empty(), "mean: empty input");
  return sum(v) / static_cast<double>(v.size());
}

double sampleVariance(std::span<const double> v) {
  requireArg(v.size() >= 2, "sampleVariance: need at least 2 elements");
  const double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size() - 1);
}

double sampleStdDev(std::span<const double> v) {
  return std::sqrt(sampleVariance(v));
}

double geometricMean(std::span<const double> v) {
  requireArg(!v.empty(), "geometricMean: empty input");
  double s = 0.0;
  for (double x : v) {
    requireArg(x > 0.0, "geometricMean: elements must be > 0");
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(v.size()));
}

double minValue(std::span<const double> v) {
  requireArg(!v.empty(), "minValue: empty input");
  return *std::min_element(v.begin(), v.end());
}

double maxValue(std::span<const double> v) {
  requireArg(!v.empty(), "maxValue: empty input");
  return *std::max_element(v.begin(), v.end());
}

double quantile(std::span<const double> v, double q) {
  requireArg(!v.empty(), "quantile: empty input");
  requireArg(q >= 0.0 && q <= 1.0, "quantile: q outside [0,1]");
  std::vector<double> s(v.begin(), v.end());
  std::sort(s.begin(), s.end());
  const double pos = q * static_cast<double>(s.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return s[lo] * (1.0 - frac) + s[hi] * frac;
}

double median(std::span<const double> v) { return quantile(v, 0.5); }

double rmse(std::span<const double> predicted,
            std::span<const double> actual) {
  requireArg(predicted.size() == actual.size() && !predicted.empty(),
             "rmse: inputs must be non-empty and of equal length");
  double s = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double d = predicted[i] - actual[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(predicted.size()));
}

double mae(std::span<const double> predicted, std::span<const double> actual) {
  requireArg(predicted.size() == actual.size() && !predicted.empty(),
             "mae: inputs must be non-empty and of equal length");
  double s = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i)
    s += std::abs(predicted[i] - actual[i]);
  return s / static_cast<double>(predicted.size());
}

double pearson(std::span<const double> x, std::span<const double> y) {
  requireArg(x.size() == y.size() && x.size() >= 2,
             "pearson: need equal lengths >= 2");
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  requireArg(sxx > 0.0 && syy > 0.0, "pearson: zero variance input");
  return sxy / std::sqrt(sxx * syy);
}

LinearFit linearFit(std::span<const double> x, std::span<const double> y) {
  requireArg(x.size() == y.size() && x.size() >= 2,
             "linearFit: need equal lengths >= 2");
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  requireArg(sxx > 0.0, "linearFit: x has zero variance");
  LinearFit f;
  f.slope = sxy / sxx;
  f.intercept = my - f.slope * mx;
  f.r2 = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return f;
}

BootstrapCi bootstrapMeanCi(std::span<const double> v, double level,
                            int resamples, Rng& rng) {
  requireArg(!v.empty(), "bootstrapMeanCi: empty input");
  requireArg(level > 0.0 && level < 1.0,
             "bootstrapMeanCi: level outside (0,1)");
  requireArg(resamples >= 10, "bootstrapMeanCi: need at least 10 resamples");
  std::vector<double> means(resamples);
  for (int r = 0; r < resamples; ++r) {
    double s = 0.0;
    for (std::size_t i = 0; i < v.size(); ++i) s += v[rng.index(v.size())];
    means[r] = s / static_cast<double>(v.size());
  }
  BootstrapCi ci;
  ci.pointEstimate = mean(v);
  const double alpha = 1.0 - level;
  ci.lo = quantile(means, alpha / 2.0);
  ci.hi = quantile(means, 1.0 - alpha / 2.0);
  return ci;
}

double ksStatistic(std::span<const double> sample,
                   const std::function<double(double)>& cdf) {
  requireArg(!sample.empty(), "ksStatistic: empty sample");
  requireArg(cdf != nullptr, "ksStatistic: null cdf");
  std::vector<double> s(sample.begin(), sample.end());
  std::sort(s.begin(), s.end());
  const double n = static_cast<double>(s.size());
  double d = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const double f = cdf(s[i]);
    requireArg(f >= -1e-12 && f <= 1.0 + 1e-12,
               "ksStatistic: cdf outside [0,1]");
    d = std::max(d, std::abs(f - static_cast<double>(i) / n));
    d = std::max(d, std::abs(static_cast<double>(i + 1) / n - f));
  }
  return d;
}

double standardNormalCdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

void Welford::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Welford::mean() const {
  requireArg(n_ > 0, "Welford::mean: no samples");
  return mean_;
}

double Welford::sampleVariance() const {
  requireArg(n_ >= 2, "Welford::sampleVariance: need at least 2 samples");
  return m2_ / static_cast<double>(n_ - 1);
}

double Welford::sampleStdDev() const { return std::sqrt(sampleVariance()); }

}  // namespace alperf::stats
