#pragma once

/// \file descriptive.hpp
/// Descriptive statistics and error metrics, including the paper's two
/// progress metrics: RMSE (eq. 2) and the arithmetic mean of the predictive
/// standard deviation (AMSD, Sec. V-B4).

#include <functional>
#include <span>
#include <vector>

#include "stats/rng.hpp"

namespace alperf::stats {

/// Sum of elements (0 for empty input).
double sum(std::span<const double> v);

/// Arithmetic mean. Throws std::invalid_argument on empty input.
double mean(std::span<const double> v);

/// Unbiased (n-1) sample variance; requires at least 2 elements.
double sampleVariance(std::span<const double> v);

/// Square root of sampleVariance.
double sampleStdDev(std::span<const double> v);

/// Geometric mean; all elements must be > 0.
double geometricMean(std::span<const double> v);

/// Minimum / maximum. Throw on empty input.
double minValue(std::span<const double> v);
double maxValue(std::span<const double> v);

/// Linear-interpolation quantile, q in [0, 1]. Throws on empty input.
double quantile(std::span<const double> v, double q);

/// Median (quantile 0.5).
double median(std::span<const double> v);

/// Root Mean Squared Error between predictions and ground truth
/// (the paper's eq. 2). Lengths must match and be non-zero.
double rmse(std::span<const double> predicted,
            std::span<const double> actual);

/// Mean absolute error.
double mae(std::span<const double> predicted, std::span<const double> actual);

/// Pearson correlation coefficient; requires >= 2 elements and non-zero
/// variance in both inputs.
double pearson(std::span<const double> x, std::span<const double> y);

/// Ordinary least squares y ~ a + b*x. Returns {intercept, slope, r2}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
LinearFit linearFit(std::span<const double> x, std::span<const double> y);

/// Two-sided bootstrap percentile confidence interval.
struct BootstrapCi {
  double lo = 0.0;
  double hi = 0.0;
  double pointEstimate = 0.0;
};

/// Percentile-bootstrap CI for the mean at the given confidence level
/// (e.g. 0.95), using `resamples` bootstrap draws. Non-empty input;
/// level in (0, 1).
BootstrapCi bootstrapMeanCi(std::span<const double> v, double level,
                            int resamples, Rng& rng);

/// One-sample Kolmogorov–Smirnov statistic sup_x |F_n(x) − F(x)| against
/// the given theoretical CDF (must be a valid CDF over the sample range).
/// Used to validate the simulator's noise distributions.
double ksStatistic(std::span<const double> sample,
                   const std::function<double(double)>& cdf);

/// Standard normal CDF (for KS tests against normal/lognormal models).
double standardNormalCdf(double z);

/// Streaming mean/variance accumulator (Welford). Numerically stable for
/// long power traces.
class Welford {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const;
  /// Unbiased sample variance; requires count() >= 2.
  double sampleVariance() const;
  double sampleStdDev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace alperf::stats
