#include "stats/integrate.hpp"

#include "common/error.hpp"

namespace alperf::stats {

double trapezoidUniform(std::span<const double> y, double h) {
  requireArg(y.size() >= 2, "trapezoidUniform: need at least 2 samples");
  requireArg(h > 0.0, "trapezoidUniform: h must be > 0");
  double s = 0.5 * (y.front() + y.back());
  for (std::size_t i = 1; i + 1 < y.size(); ++i) s += y[i];
  return s * h;
}

double trapezoidIrregular(std::span<const double> t,
                          std::span<const double> y) {
  requireArg(t.size() == y.size(), "trapezoidIrregular: length mismatch");
  requireArg(t.size() >= 2, "trapezoidIrregular: need at least 2 samples");
  double s = 0.0;
  for (std::size_t i = 1; i < t.size(); ++i) {
    const double dt = t[i] - t[i - 1];
    requireArg(dt > 0.0, "trapezoidIrregular: t must be strictly increasing");
    s += 0.5 * (y[i] + y[i - 1]) * dt;
  }
  return s;
}

double simpson(const std::function<double(double)>& f, double a, double b,
               int n) {
  requireArg(a < b, "simpson: need a < b");
  requireArg(n >= 2, "simpson: need n >= 2");
  if (n % 2 != 0) ++n;
  const double h = (b - a) / n;
  double s = f(a) + f(b);
  for (int i = 1; i < n; ++i)
    s += f(a + i * h) * (i % 2 == 0 ? 2.0 : 4.0);
  return s * h / 3.0;
}

}  // namespace alperf::stats
