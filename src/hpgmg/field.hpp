#pragma once

/// \file field.hpp
/// A scalar field on a cubic structured grid with a one-cell halo.
///
/// The grid covers the unit cube with n×n×n interior points at spacing
/// h = 1/(n+1); the halo holds the homogeneous Dirichlet boundary (zeros).
/// This is the storage substrate for the mini-HPGMG solver: stencil
/// application, smoothing and grid transfers all operate on Fields.

#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace alperf::hpgmg {

class Field {
 public:
  /// n interior points per dimension (n >= 1); values zero-initialized.
  explicit Field(int n);

  int n() const { return n_; }
  double h() const { return 1.0 / (n_ + 1); }
  std::size_t interiorPoints() const {
    return static_cast<std::size_t>(n_) * n_ * n_;
  }

  /// Access with indices in [0, n+1] (0 and n+1 are the halo).
  double& at(int i, int j, int k) { return data_[index(i, j, k)]; }
  double at(int i, int j, int k) const { return data_[index(i, j, k)]; }

  /// Flat index for halo-inclusive coordinates.
  std::size_t index(int i, int j, int k) const {
    ALPERF_ASSERT(i >= 0 && i <= n_ + 1 && j >= 0 && j <= n_ + 1 && k >= 0 &&
                      k <= n_ + 1,
                  "Field: index out of range");
    const std::size_t s = n_ + 2;
    return (static_cast<std::size_t>(i) * s + j) * s + k;
  }

  std::vector<double>& raw() { return data_; }
  const std::vector<double>& raw() const { return data_; }

  /// Interior coordinate of point (i, j, k), i in [1, n].
  double coord(int i) const { return i * h(); }

  void fill(double value);
  void setInteriorZero();

  /// this += alpha * other (same size).
  void axpy(double alpha, const Field& other);

  /// L2 norm of the interior, scaled by h^(3/2) (grid-function norm).
  double normL2() const;

  /// Max-abs over the interior.
  double normInf() const;

  /// Interior dot product (unscaled).
  double dotInterior(const Field& other) const;

 private:
  int n_;
  std::vector<double> data_;
};

/// Evaluates f at every interior point: f(x, y, z) with coordinates in
/// (0, 1).
template <typename F>
void setInterior(Field& field, F&& f) {
  const int n = field.n();
  for (int i = 1; i <= n; ++i)
    for (int j = 1; j <= n; ++j)
      for (int k = 1; k <= n; ++k)
        field.at(i, j, k) =
            f(field.coord(i), field.coord(j), field.coord(k));
}

}  // namespace alperf::hpgmg
