#include "hpgmg/multigrid.hpp"

#include <cmath>

namespace alperf::hpgmg {

namespace {

bool isPow2Minus1(int n) {
  const unsigned v = static_cast<unsigned>(n) + 1;
  return n >= 1 && (v & (v - 1)) == 0;
}

}  // namespace

double SolveStats::meanReduction() const {
  if (residualHistory.size() < 1 || initialResidual <= 0.0) return 0.0;
  const double last = residualHistory.back();
  if (last <= 0.0) return 0.0;
  return std::pow(last / initialResidual,
                  1.0 / static_cast<double>(residualHistory.size()));
}

Multigrid::Multigrid(StencilType type, int finestN, MgOptions options,
                     const CoefficientTensor& tensor)
    : options_(options) {
  requireArg(isPow2Minus1(finestN), "Multigrid: finestN must be 2^k - 1");
  requireArg(options_.coarsestN >= 1, "Multigrid: coarsestN must be >= 1");
  requireArg(options_.cycleType >= 1 && options_.cycleType <= 3,
             "Multigrid: cycleType must be 1 (V), 2 (W) or 3");
  requireArg(finestN >= options_.coarsestN,
             "Multigrid: finestN below coarsestN");
  int n = finestN;
  while (true) {
    levels_.emplace_back(type, n, tensor);
    scratch_.emplace_back(n);
    if (n <= options_.coarsestN) break;
    n = (n - 1) / 2;
    ALPERF_ASSERT(n >= 1, "Multigrid: coarsening underflow");
  }
}

const Stencil& Multigrid::stencil(int level) const {
  requireArg(level >= 0 && level < numLevels(), "Multigrid: bad level");
  return levels_[level].stencil;
}

std::size_t Multigrid::totalDof() const {
  std::size_t total = 0;
  for (const Level& l : levels_) total += l.x.interiorPoints();
  return total;
}

void Multigrid::jacobiSweeps(Level& level, Field& x, const Field& b,
                             int sweeps) {
  const double invDiag = 1.0 / level.stencil.diagonal();
  const double w = options_.jacobiWeight;
  Field& r = scratch_[static_cast<std::size_t>(
      &level - levels_.data())];
  const int n = x.n();
  for (int s = 0; s < sweeps; ++s) {
    level.stencil.residual(x, b, r);
    const double* rp = r.raw().data();
    double* xp = x.raw().data();
    const std::ptrdiff_t stride = n + 2;
#pragma omp parallel for if (n >= 32)
    for (int i = 1; i <= n; ++i)
      for (int j = 1; j <= n; ++j) {
        const std::size_t base =
            (static_cast<std::size_t>(i) * stride + j) * stride;
        for (int k = 1; k <= n; ++k)
          xp[base + k] += w * invDiag * rp[base + k];
      }
  }
}

void Multigrid::chebyshev(Level& level, Field& x, const Field& b,
                          int degree) {
  // Chebyshev iteration on D⁻¹A targeting [λmax/6, λmax]
  // (λmax from the Gershgorin bound).
  const double hi = level.stencil.gershgorinBound();
  const double lo = hi / 6.0;
  const double theta = 0.5 * (hi + lo);
  const double delta = 0.5 * (hi - lo);
  const double invDiag = 1.0 / level.stencil.diagonal();

  Field& r = scratch_[static_cast<std::size_t>(&level - levels_.data())];
  Field d(x.n());

  level.stencil.residual(x, b, r);
  const int n = x.n();
  const std::ptrdiff_t stride = n + 2;
  const auto forEachInterior = [&](auto&& fn) {
#pragma omp parallel for if (n >= 32)
    for (int i = 1; i <= n; ++i)
      for (int j = 1; j <= n; ++j) {
        const std::size_t base =
            (static_cast<std::size_t>(i) * stride + j) * stride;
        for (int k = 1; k <= n; ++k) fn(base + k);
      }
  };

  double* dp = d.raw().data();
  const double* rp = r.raw().data();
  double* xp = x.raw().data();

  forEachInterior(
      [&](std::size_t c) { dp[c] = invDiag * rp[c] / theta; });

  double rhoOld = delta / theta;
  for (int it = 0; it < degree; ++it) {
    forEachInterior([&](std::size_t c) { xp[c] += dp[c]; });
    if (it + 1 == degree) break;
    level.stencil.residual(x, b, r);
    const double rhoNew = 1.0 / (2.0 * theta / delta - rhoOld);
    const double c1 = rhoNew * rhoOld;
    const double c2 = 2.0 * rhoNew / delta;
    forEachInterior([&](std::size_t c) {
      dp[c] = c1 * dp[c] + c2 * invDiag * rp[c];
    });
    rhoOld = rhoNew;
  }
}

void Multigrid::redBlackSweeps(Level& level, Field& x, const Field& b,
                               int sweeps) {
  // Gauss-Seidel over the parity coloring: update all points of one
  // color from the latest values, then the other. For the 7-point
  // stencil the neighbours of a red point are all black, so each
  // half-sweep is an exact Gauss-Seidel step and trivially parallel.
  const Stencil& st = level.stencil;
  const double invDiag = 1.0 / st.diagonal();
  const int n = x.n();
  Field& r = scratch_[static_cast<std::size_t>(&level - levels_.data())];
  for (int s = 0; s < sweeps; ++s) {
    for (int color = 0; color < 2; ++color) {
      st.residual(x, b, r);
      const double* rp = r.raw().data();
      double* xp = x.raw().data();
      const std::ptrdiff_t stride = n + 2;
#pragma omp parallel for if (n >= 32)
      for (int i = 1; i <= n; ++i)
        for (int j = 1; j <= n; ++j) {
          const std::size_t base =
              (static_cast<std::size_t>(i) * stride + j) * stride;
          // First k of this row/color parity.
          const int kStart = 1 + ((i + j + 1 + color) % 2);
          for (int k = kStart; k <= n; k += 2)
            xp[base + k] += invDiag * rp[base + k];
        }
    }
  }
}

void Multigrid::smooth(Level& level, Field& x, const Field& b, int sweeps) {
  switch (options_.smoother) {
    case SmootherType::WeightedJacobi:
      jacobiSweeps(level, x, b, sweeps);
      return;
    case SmootherType::RedBlackGaussSeidel:
      redBlackSweeps(level, x, b, sweeps);
      return;
    case SmootherType::Chebyshev:
      for (int s = 0; s < sweeps; ++s)
        chebyshev(level, x, b, options_.chebyshevDegree);
      return;
  }
  ALPERF_ASSERT(false, "unknown smoother");
}

void Multigrid::restrictTo(const Field& fine, Field& coarse) const {
  // Full weighting: coarse (I,J,K) sits at fine (2I,2J,2K); weights
  // 1/8 (center), 1/16 (face), 1/32 (edge), 1/64 (corner).
  const int nc = coarse.n();
  ALPERF_ASSERT(2 * nc + 1 == fine.n(), "restrictTo: incompatible sizes");
  static const double w[3] = {0.5, 1.0, 0.5};  // offset weights, scaled below
#pragma omp parallel for if (nc >= 16)
  for (int i = 1; i <= nc; ++i)
    for (int j = 1; j <= nc; ++j)
      for (int k = 1; k <= nc; ++k) {
        double acc = 0.0;
        for (int di = -1; di <= 1; ++di)
          for (int dj = -1; dj <= 1; ++dj)
            for (int dk = -1; dk <= 1; ++dk)
              acc += w[di + 1] * w[dj + 1] * w[dk + 1] *
                     fine.at(2 * i + di, 2 * j + dj, 2 * k + dk);
        coarse.at(i, j, k) = acc / 8.0;
      }
}

void Multigrid::prolongAdd(const Field& coarse, Field& fine) const {
  const int nf = fine.n();
  const int nc = coarse.n();
  ALPERF_ASSERT(2 * nc + 1 == nf, "prolongAdd: incompatible sizes");
  // Trilinear interpolation: even fine indices coincide with coarse
  // points; odd indices average the two coarse neighbors per axis.
#pragma omp parallel for if (nf >= 32)
  for (int i = 1; i <= nf; ++i) {
    const int ci = i / 2;
    const bool ei = (i % 2) == 0;
    for (int j = 1; j <= nf; ++j) {
      const int cj = j / 2;
      const bool ej = (j % 2) == 0;
      for (int k = 1; k <= nf; ++k) {
        const int ck = k / 2;
        const bool ek = (k % 2) == 0;
        double v = 0.0;
        for (int di = 0; di <= (ei ? 0 : 1); ++di)
          for (int dj = 0; dj <= (ej ? 0 : 1); ++dj)
            for (int dk = 0; dk <= (ek ? 0 : 1); ++dk)
              v += coarse.at(ci + di, cj + dj, ck + dk);
        const double scale = (ei ? 1.0 : 0.5) * (ej ? 1.0 : 0.5) *
                             (ek ? 1.0 : 0.5);
        fine.at(i, j, k) += scale * v;
      }
    }
  }
}

void Multigrid::vcycleLevel(std::size_t l) {
  Level& level = levels_[l];
  if (l + 1 == levels_.size()) {
    // Coarsest: heavy smoothing acts as the direct solve.
    jacobiSweeps(level, level.x, level.b, options_.coarseSolveIterations);
    return;
  }
  smooth(level, level.x, level.b, options_.preSmooth);
  // γ coarse-grid visits: γ=1 is a V-cycle, γ=2 a W-cycle. Each visit
  // restricts the *current* residual and adds back the correction.
  for (int visit = 0; visit < options_.cycleType; ++visit) {
    level.stencil.residual(level.x, level.b, level.r);
    Level& next = levels_[l + 1];
    restrictTo(level.r, next.b);
    next.x.fill(0.0);
    vcycleLevel(l + 1);
    prolongAdd(next.x, level.x);
  }
  smooth(level, level.x, level.b, options_.postSmooth);
}

void Multigrid::vcycle(const Field& b, Field& x) {
  requireArg(b.n() == finestN() && x.n() == finestN(),
             "Multigrid::vcycle: size mismatch");
  levels_[0].x = x;
  levels_[0].b = b;
  vcycleLevel(0);
  x = levels_[0].x;
}

SolveStats Multigrid::solve(const Field& b, Field& x) {
  requireArg(b.n() == finestN() && x.n() == finestN(),
             "Multigrid::solve: size mismatch");
  SolveStats stats;
  Field r(finestN());
  levels_[0].stencil.residual(x, b, r);
  stats.initialResidual = r.normL2();
  const double target = options_.rtol * std::max(stats.initialResidual,
                                                 1e-300);
  double res = stats.initialResidual;
  for (int c = 0; c < options_.maxVcycles && res > target; ++c) {
    vcycle(b, x);
    levels_[0].stencil.residual(x, b, r);
    res = r.normL2();
    stats.residualHistory.push_back(res);
    ++stats.cycles;
  }
  stats.finalResidual = res;
  stats.converged = res <= target;
  return stats;
}

SolveStats Multigrid::fmgSolve(const Field& b, Field& x) {
  requireArg(b.n() == finestN() && x.n() == finestN(),
             "Multigrid::fmgSolve: size mismatch");
  // Restrict the RHS down the hierarchy.
  levels_[0].b = b;
  for (std::size_t l = 1; l < levels_.size(); ++l)
    restrictTo(levels_[l - 1].b, levels_[l].b);

  // Coarsest-first: solve, prolong, one V-cycle per level.
  Level& coarsest = levels_.back();
  coarsest.x.fill(0.0);
  jacobiSweeps(coarsest, coarsest.x, coarsest.b,
               options_.coarseSolveIterations);
  for (std::size_t l = levels_.size() - 1; l-- > 0;) {
    levels_[l].x.fill(0.0);
    prolongAdd(levels_[l + 1].x, levels_[l].x);
    // One V-cycle at this level on the original (restricted) equation.
    // vcycleLevel only overwrites the b of *coarser* levels, whose FMG
    // visit has already happened.
    vcycleLevel(l);
  }
  x = levels_[0].x;

  // Polish with V-cycles to the requested tolerance.
  SolveStats stats = solve(b, x);
  return stats;
}

}  // namespace alperf::hpgmg
