#pragma once

/// \file benchmark.hpp
/// The runnable mini-HPGMG-FE benchmark: sets up a manufactured problem,
/// runs a timed Full-Multigrid solve, and reports time / residual / flops.
/// This is the measured application that the *online* active-learning
/// example drives (the paper's target use case: each AL iteration selects
/// an experiment, runs it, and feeds the measurement back into the GP).

#include "hpgmg/multigrid.hpp"

namespace alperf::hpgmg {

struct BenchmarkResult {
  double seconds = 0.0;        ///< wall time of the solve
  double setupSeconds = 0.0;   ///< hierarchy + RHS construction time
  int cycles = 0;              ///< V-cycles after the FMG pass
  double finalResidual = 0.0;
  double initialResidual = 0.0;
  std::size_t dof = 0;         ///< finest-grid interior points
  double estimatedFlops = 0.0; ///< rough flop count of the solve
  bool converged = false;
};

/// Runs one benchmark instance: FMG solve of the given operator on an
/// n³ grid (n = 2^k - 1) with a smooth manufactured RHS.
BenchmarkResult runBenchmark(StencilType type, int finestN,
                             MgOptions options = {});

/// Smallest n = 2^k - 1 whose n³ is >= the requested dof count
/// (maps a Table-I-style GlobalSize onto a runnable grid).
int gridSizeForDof(double dof, int maxN = 255);

}  // namespace alperf::hpgmg
