#include "hpgmg/field.hpp"

#include <algorithm>
#include <cmath>

namespace alperf::hpgmg {

Field::Field(int n) : n_(n) {
  requireArg(n >= 1, "Field: n must be >= 1");
  const std::size_t s = static_cast<std::size_t>(n) + 2;
  data_.assign(s * s * s, 0.0);
}

void Field::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Field::setInteriorZero() {
  for (int i = 1; i <= n_; ++i)
    for (int j = 1; j <= n_; ++j)
      for (int k = 1; k <= n_; ++k) at(i, j, k) = 0.0;
}

void Field::axpy(double alpha, const Field& other) {
  requireArg(other.n_ == n_, "Field::axpy: size mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] += alpha * other.data_[i];
}

double Field::normL2() const {
  double s = 0.0;
#pragma omp parallel for reduction(+ : s) if (n_ >= 32)
  for (int i = 1; i <= n_; ++i)
    for (int j = 1; j <= n_; ++j)
      for (int k = 1; k <= n_; ++k) {
        const double v = at(i, j, k);
        s += v * v;
      }
  return std::sqrt(s * h() * h() * h());
}

double Field::normInf() const {
  double m = 0.0;
#pragma omp parallel for reduction(max : m) if (n_ >= 32)
  for (int i = 1; i <= n_; ++i)
    for (int j = 1; j <= n_; ++j)
      for (int k = 1; k <= n_; ++k) m = std::max(m, std::abs(at(i, j, k)));
  return m;
}

double Field::dotInterior(const Field& other) const {
  requireArg(other.n_ == n_, "Field::dotInterior: size mismatch");
  double s = 0.0;
#pragma omp parallel for reduction(+ : s) if (n_ >= 32)
  for (int i = 1; i <= n_; ++i)
    for (int j = 1; j <= n_; ++j)
      for (int k = 1; k <= n_; ++k) s += at(i, j, k) * other.at(i, j, k);
  return s;
}

}  // namespace alperf::hpgmg
