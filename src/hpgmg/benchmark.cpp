#include "hpgmg/benchmark.hpp"

#include <chrono>
#include <cmath>
#include <numbers>

namespace alperf::hpgmg {

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

BenchmarkResult runBenchmark(StencilType type, int finestN,
                             MgOptions options) {
  BenchmarkResult result;

  const double t0 = now();
  Multigrid mg(type, finestN, options);
  Field b(finestN);
  Field x(finestN);
  // Smooth manufactured forcing: f = 3π²·sin(πx)sin(πy)sin(πz).
  setInterior(b, [](double px, double py, double pz) {
    using std::numbers::pi;
    return 3.0 * pi * pi * std::sin(pi * px) * std::sin(pi * py) *
           std::sin(pi * pz);
  });
  result.setupSeconds = now() - t0;

  const double t1 = now();
  const SolveStats stats = mg.fmgSolve(b, x);
  result.seconds = now() - t1;

  result.cycles = stats.cycles;
  result.initialResidual = stats.initialResidual;
  result.finalResidual = stats.finalResidual;
  result.converged = stats.converged;
  result.dof = static_cast<std::size_t>(finestN) * finestN * finestN;

  // Rough flop estimate: each V-cycle touches ~(1 + 1/7) of the finest dof
  // with (pre+post+1) stencil applications.
  const double applies =
      static_cast<double>(options.preSmooth + options.postSmooth + 1) *
      (stats.cycles + mg.numLevels());
  result.estimatedFlops = applies * 8.0 / 7.0 *
                          static_cast<double>(result.dof) *
                          mg.stencil(0).flopsPerPoint();
  return result;
}

int gridSizeForDof(double dof, int maxN) {
  requireArg(dof >= 1.0, "gridSizeForDof: dof must be >= 1");
  int n = 3;
  while (static_cast<double>(n) * n * n < dof && n < maxN)
    n = 2 * n + 1;
  return n;
}

}  // namespace alperf::hpgmg
