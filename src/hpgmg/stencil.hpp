#pragma once

/// \file stencil.hpp
/// Constant-coefficient 27-point stencil operators for -∇·(G ∇u) on the
/// unit cube with homogeneous Dirichlet boundaries.
///
/// Three variants mirror the paper's HPGMG-FE operators (the substitution
/// documented in DESIGN.md — same stencil-width/flop-cost classes):
///   Poisson1       — classic 7-point 2nd-order finite differences.
///   Poisson2       — 27-point trilinear-FEM-style operator
///                    K⊗M⊗M + M⊗K⊗M + M⊗M⊗K (wide stencil, ~4x flops).
///   Poisson2Affine — the 27-point operator for a mesh deformed by an
///                    affine map, i.e. an anisotropic coefficient tensor G
///                    with cross-derivative terms.
///
/// Stencils are assembled as sums of tensor products of 1-D three-point
/// stencils (stiffness K1 = [-1, 2, -1]/h², mass M1 = [1/6, 2/3, 1/6],
/// first derivative D1 = [-1, 0, 1]/(2h)), which keeps the construction
/// dimension-by-dimension and easy to verify.

#include <array>

#include "hpgmg/field.hpp"

namespace alperf::hpgmg {

enum class StencilType { Poisson1, Poisson2, Poisson2Affine };

/// 3x3 symmetric positive-definite coefficient tensor G (row-major upper
/// triangle: gxx, gyy, gzz diagonal; gxy, gxz, gyz off-diagonal).
struct CoefficientTensor {
  double gxx = 1.0, gyy = 1.0, gzz = 1.0;
  double gxy = 0.0, gxz = 0.0, gyz = 0.0;
};

/// The default affine deformation used for Poisson2Affine: a mild shear +
/// anisotropic stretch (the tensor G = J⁻¹ J⁻ᵀ |det J| for that map).
CoefficientTensor defaultAffineTensor();

/// A 27-point constant-coefficient stencil at a given grid spacing.
class Stencil {
 public:
  /// Builds the stencil of the given type for spacing h. The affine
  /// tensor is only used by Poisson2Affine.
  Stencil(StencilType type, double h,
          const CoefficientTensor& tensor = defaultAffineTensor());

  StencilType type() const { return type_; }
  double h() const { return h_; }

  /// Weight for offset (di, dj, dk), each in {-1, 0, 1}.
  double weight(int di, int dj, int dk) const {
    return w_[static_cast<std::size_t>((di + 1) * 9 + (dj + 1) * 3 +
                                       (dk + 1))];
  }

  /// Central weight (the Jacobi diagonal).
  double diagonal() const { return weight(0, 0, 0); }

  /// Gershgorin upper bound on the operator's eigenvalues after diagonal
  /// scaling (used to parameterize the Chebyshev smoother).
  double gershgorinBound() const;

  /// out = A * in (interior only; halo of `in` must hold boundary values).
  void apply(const Field& in, Field& out) const;

  /// r = b - A*x.
  void residual(const Field& x, const Field& b, Field& r) const;

  /// Approximate flops per interior point of one apply().
  double flopsPerPoint() const;

 private:
  StencilType type_;
  double h_;
  std::array<double, 27> w_{};
};

}  // namespace alperf::hpgmg
