#include "hpgmg/stencil.hpp"

#include <cmath>

namespace alperf::hpgmg {

CoefficientTensor defaultAffineTensor() {
  // G = J⁻¹J⁻ᵀ|det J| for a mild stretch + shear map; SPD by construction
  // and diagonally dominant, so the discrete operator stays SPD.
  CoefficientTensor g;
  g.gxx = 1.40;
  g.gyy = 1.10;
  g.gzz = 0.90;
  g.gxy = 0.25;
  g.gxz = 0.10;
  g.gyz = 0.15;
  return g;
}

Stencil::Stencil(StencilType type, double h, const CoefficientTensor& tensor)
    : type_(type), h_(h) {
  requireArg(h > 0.0, "Stencil: h must be positive");

  const auto set = [this](int di, int dj, int dk, double v) {
    w_[static_cast<std::size_t>((di + 1) * 9 + (dj + 1) * 3 + (dk + 1))] = v;
  };

  if (type == StencilType::Poisson1) {
    const double ih2 = 1.0 / (h * h);
    set(0, 0, 0, 6.0 * ih2);
    set(1, 0, 0, -ih2);
    set(-1, 0, 0, -ih2);
    set(0, 1, 0, -ih2);
    set(0, -1, 0, -ih2);
    set(0, 0, 1, -ih2);
    set(0, 0, -1, -ih2);
    return;
  }

  // 1-D building blocks (index 0,1,2 ↔ offset -1,0,+1).
  const double ih2 = 1.0 / (h * h);
  const double k1[3] = {-ih2, 2.0 * ih2, -ih2};          // stiffness
  const double m1[3] = {1.0 / 6.0, 2.0 / 3.0, 1.0 / 6.0};  // mass
  const double d1[3] = {-0.5 / h, 0.0, 0.5 / h};          // first derivative

  CoefficientTensor g;  // identity tensor for plain Poisson2
  if (type == StencilType::Poisson2Affine) g = tensor;

  for (int a = 0; a < 3; ++a)
    for (int b = 0; b < 3; ++b)
      for (int c = 0; c < 3; ++c) {
        double v = g.gxx * k1[a] * m1[b] * m1[c] +
                   g.gyy * m1[a] * k1[b] * m1[c] +
                   g.gzz * m1[a] * m1[b] * k1[c];
        // Cross-derivative terms: -2·g_ij·∂i∂j with central differences
        // and a mass spectator axis (keeps the stencil symmetric).
        v += -2.0 * g.gxy * d1[a] * d1[b] * m1[c];
        v += -2.0 * g.gxz * d1[a] * m1[b] * d1[c];
        v += -2.0 * g.gyz * m1[a] * d1[b] * d1[c];
        set(a - 1, b - 1, c - 1, v);
      }
}

double Stencil::gershgorinBound() const {
  const double d = diagonal();
  ALPERF_ASSERT(d > 0.0, "Stencil: non-positive diagonal");
  double offSum = 0.0;
  for (int di = -1; di <= 1; ++di)
    for (int dj = -1; dj <= 1; ++dj)
      for (int dk = -1; dk <= 1; ++dk)
        if (di || dj || dk) offSum += std::abs(weight(di, dj, dk));
  return 1.0 + offSum / d;  // of D⁻¹A
}

void Stencil::apply(const Field& in, Field& out) const {
  requireArg(in.n() == out.n(), "Stencil::apply: size mismatch");
  const int n = in.n();
  const std::ptrdiff_t s = n + 2;

  // Gather nonzero (flat offset, weight) pairs for this field size.
  std::ptrdiff_t offs[27];
  double wts[27];
  int nnz = 0;
  for (int di = -1; di <= 1; ++di)
    for (int dj = -1; dj <= 1; ++dj)
      for (int dk = -1; dk <= 1; ++dk) {
        const double wv = weight(di, dj, dk);
        if (wv != 0.0) {
          offs[nnz] = (static_cast<std::ptrdiff_t>(di) * s + dj) * s + dk;
          wts[nnz] = wv;
          ++nnz;
        }
      }

  const double* src = in.raw().data();
  double* dst = out.raw().data();
#pragma omp parallel for if (n >= 32)
  for (int i = 1; i <= n; ++i)
    for (int j = 1; j <= n; ++j) {
      const std::size_t base = (static_cast<std::size_t>(i) * s + j) * s;
      for (int k = 1; k <= n; ++k) {
        const std::size_t c = base + k;
        double acc = 0.0;
        for (int m = 0; m < nnz; ++m) acc += wts[m] * src[c + offs[m]];
        dst[c] = acc;
      }
    }
}

void Stencil::residual(const Field& x, const Field& b, Field& r) const {
  apply(x, r);
  const int n = x.n();
  const double* bp = b.raw().data();
  double* rp = r.raw().data();
  const std::ptrdiff_t s = n + 2;
#pragma omp parallel for if (n >= 32)
  for (int i = 1; i <= n; ++i)
    for (int j = 1; j <= n; ++j) {
      const std::size_t base = (static_cast<std::size_t>(i) * s + j) * s;
      for (int k = 1; k <= n; ++k) rp[base + k] = bp[base + k] - rp[base + k];
    }
}

double Stencil::flopsPerPoint() const {
  int nnz = 0;
  for (double v : w_)
    if (v != 0.0) ++nnz;
  return 2.0 * nnz;
}

}  // namespace alperf::hpgmg
