#pragma once

/// \file multigrid.hpp
/// Geometric multigrid (V-cycle and Full Multigrid) for the 27-point
/// stencil operators — the compute kernel of the mini-HPGMG benchmark.
///
/// Vertex-centered hierarchy on n = 2^k - 1 interior points per dimension,
/// re-discretized operator per level, full-weighting restriction,
/// trilinear prolongation, and weighted-Jacobi or Chebyshev smoothing.

#include <vector>

#include "hpgmg/stencil.hpp"

namespace alperf::hpgmg {

enum class SmootherType {
  WeightedJacobi,
  Chebyshev,
  /// Red-black Gauss-Seidel: two half-sweeps over the parity coloring,
  /// each parallelizable without races (for the 7-point operator the
  /// colors fully decouple; for 27-point stencils this is a multicolor
  /// approximation that still smooths well).
  RedBlackGaussSeidel,
};

struct MgOptions {
  SmootherType smoother = SmootherType::Chebyshev;
  int preSmooth = 2;
  int postSmooth = 2;
  /// Polynomial degree of one Chebyshev smoothing application.
  int chebyshevDegree = 2;
  double jacobiWeight = 0.8;
  /// Recursive coarse-grid visits per cycle: 1 = V-cycle, 2 = W-cycle.
  int cycleType = 1;
  /// Coarsening stops at (or below) this interior size; the coarsest level
  /// is solved with repeated smoothing.
  int coarsestN = 3;
  int coarseSolveIterations = 60;
  int maxVcycles = 30;
  /// Relative residual tolerance for solve().
  double rtol = 1e-9;
};

struct SolveStats {
  int cycles = 0;
  double initialResidual = 0.0;
  double finalResidual = 0.0;
  std::vector<double> residualHistory;  ///< after each V-cycle
  bool converged = false;

  /// Geometric-mean residual reduction factor per cycle.
  double meanReduction() const;
};

class Multigrid {
 public:
  /// finestN must be of the form 2^k - 1 (>= coarsestN).
  Multigrid(StencilType type, int finestN, MgOptions options = {},
            const CoefficientTensor& tensor = defaultAffineTensor());

  int numLevels() const { return static_cast<int>(levels_.size()); }
  int finestN() const { return levels_.front().x.n(); }
  const Stencil& stencil(int level = 0) const;

  /// Solves A x = b on the finest grid with V-cycles until rtol or
  /// maxVcycles. x is both the initial guess and the result.
  SolveStats solve(const Field& b, Field& x);

  /// Full Multigrid: one FMG pass (coarsest-first with one V-cycle per
  /// level) followed by V-cycles until rtol / maxVcycles.
  SolveStats fmgSolve(const Field& b, Field& x);

  /// One V-cycle on the finest level (exposed for smoothing-factor tests).
  void vcycle(const Field& b, Field& x);

  /// Total degrees of freedom over all levels.
  std::size_t totalDof() const;

 private:
  struct Level {
    Level(StencilType type, int n, const CoefficientTensor& tensor)
        : stencil(type, 1.0 / (n + 1), tensor), x(n), b(n), r(n) {}
    Stencil stencil;
    Field x, b, r;
  };

  void smooth(Level& level, Field& x, const Field& b, int sweeps);
  void jacobiSweeps(Level& level, Field& x, const Field& b, int sweeps);
  void chebyshev(Level& level, Field& x, const Field& b, int degree);
  void redBlackSweeps(Level& level, Field& x, const Field& b, int sweeps);
  void vcycleLevel(std::size_t l);
  void restrictTo(const Field& fine, Field& coarse) const;
  void prolongAdd(const Field& coarse, Field& fine) const;

  MgOptions options_;
  std::vector<Level> levels_;
  std::vector<Field> scratch_;  ///< one work field per level
};

}  // namespace alperf::hpgmg
