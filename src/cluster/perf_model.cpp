#include "cluster/perf_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace alperf::cluster {

PerfModel::PerfModel(PerfModelParams params) : params_(params) {
  requireArg(params_.coresPerNode >= 1 && params_.nodes >= 1,
             "PerfModel: machine must have at least one core");
  requireArg(params_.coreRate > 0.0 && params_.baseFreqGhz > 0.0,
             "PerfModel: rates must be positive");
  requireArg(params_.coarseDof >= 1.0, "PerfModel: coarseDof must be >= 1");
}

double PerfModel::flopsPerDof(Operator op) const {
  switch (op) {
    case Operator::Poisson1:
      return params_.flopsPerDofPoisson1;
    case Operator::Poisson2:
      return params_.flopsPerDofPoisson2;
    case Operator::Poisson2Affine:
      return params_.flopsPerDofPoisson2Affine;
  }
  throw std::invalid_argument("PerfModel: unknown Operator");
}

double PerfModel::freqExponent(Operator op) const {
  switch (op) {
    case Operator::Poisson1:
      return params_.freqExponentPoisson1;
    case Operator::Poisson2:
      return params_.freqExponentPoisson2;
    case Operator::Poisson2Affine:
      return params_.freqExponentPoisson2Affine;
  }
  throw std::invalid_argument("PerfModel: unknown Operator");
}

int PerfModel::levels(double globalSize) const {
  requireArg(globalSize >= 1.0, "PerfModel::levels: size must be >= 1");
  if (globalSize <= params_.coarseDof) return 1;
  // Geometric multigrid coarsens by 8x (2x per dimension) per level.
  return 1 + static_cast<int>(
                 std::ceil(std::log2(globalSize / params_.coarseDof) / 3.0));
}

int PerfModel::coresUsed(int np) const {
  requireArg(np >= 1, "PerfModel: np must be >= 1");
  return std::min(np, totalCores());
}

int PerfModel::nodesUsed(int np) const {
  const int cores = coresUsed(np);
  return (cores + params_.coresPerNode - 1) / params_.coresPerNode;
}

double PerfModel::meanRuntime(const JobRequest& req) const {
  requireArg(req.globalSize >= 1.0, "PerfModel: globalSize must be >= 1");
  requireArg(req.freqGhz > 0.0, "PerfModel: frequency must be positive");
  const int cores = coresUsed(req.np);
  const int usedNodes = nodesUsed(req.np);
  const int coresPerUsedNode =
      (cores + usedNodes - 1) / usedNodes;  // balanced placement

  // Per-core rate after DVFS and per-node memory-bandwidth contention.
  const double fScale =
      std::pow(req.freqGhz / params_.baseFreqGhz, freqExponent(req.op));
  const double contention =
      params_.coresPerNode > 1
          ? 1.0 + params_.memContention *
                      static_cast<double>(coresPerUsedNode - 1) /
                      static_cast<double>(params_.coresPerNode - 1)
          : 1.0;
  const double rate = params_.coreRate * fScale / contention;

  // Bulk computation: perfectly divided work at the contended rate.
  const double work = flopsPerDof(req.op) * req.globalSize;
  double t = work / (static_cast<double>(cores) * rate);

  // Oversubscription: ranks beyond the core count time-share with overhead.
  if (req.np > totalCores()) {
    const double factor = static_cast<double>(req.np) / totalCores();
    t *= factor * (1.0 + params_.oversubPenalty * (factor - 1.0));
  }

  // Halo exchange: surface-to-volume term per rank, summed over levels
  // (the level sum is a geometric series dominated by the finest level;
  // approximate with 1.5x the finest-level cost).
  const int nLevels = levels(req.globalSize);
  if (cores > 1) {
    const double dofPerRank = req.globalSize / cores;
    const double halo = 1.5 * params_.haloBytesPerDof *
                        std::pow(dofPerRank, 2.0 / 3.0) /
                        params_.networkBandwidth;
    t += halo * (usedNodes > 1 ? params_.interNodeCommFactor : 1.0);
  }

  // Latency floor: every level of every cycle costs a fixed overhead,
  // growing slowly with rank count (tree reductions).
  const double latency = params_.latencyPerLevel * nLevels *
                         (1.0 + 0.15 * std::log2(static_cast<double>(cores)));
  t += latency + params_.setupSeconds;
  return t;
}

double PerfModel::sampleRuntime(const JobRequest& req,
                                stats::Rng& rng) const {
  double t = meanRuntime(req) * rng.lognormal(0.0, params_.noiseSigma);
  if (rng.bernoulli(params_.spikeProbability))
    t *= 1.0 + rng.exponential(1.0 / params_.spikeScale);
  return t;
}

}  // namespace alperf::cluster
