#include "cluster/records.hpp"

#include <cmath>

#include "common/error.hpp"

namespace alperf::cluster {

data::Table recordsToTable(std::span<const JobRecord> records,
                           bool withEnergy) {
  const std::size_t n = records.size();
  std::vector<double> id(n), size(n), np(n), freq(n), runtime(n), submit(n),
      start(n), end(n), wait(n), nodes(n), cores(n), samples(n), evalid(n),
      attempts(n), wasted(n), failed(n), censored(n);
  std::vector<std::string> op(n);
  std::vector<double> energy(withEnergy ? n : 0);
  for (std::size_t i = 0; i < n; ++i) {
    const JobRecord& r = records[i];
    id[i] = static_cast<double>(r.id);
    op[i] = toString(r.request.op);
    size[i] = r.request.globalSize;
    np[i] = r.request.np;
    freq[i] = r.request.freqGhz;
    runtime[i] = r.runtimeSeconds;
    submit[i] = r.submitTime;
    start[i] = r.startTime;
    end[i] = r.endTime;
    wait[i] = r.queueWait();
    nodes[i] = r.nodesUsed;
    cores[i] = r.coresUsed;
    samples[i] = r.powerSamples;
    evalid[i] = r.energyValid ? 1.0 : 0.0;
    attempts[i] = r.attempts;
    wasted[i] = r.wastedSeconds;
    failed[i] = r.failed ? 1.0 : 0.0;
    censored[i] = r.censored ? 1.0 : 0.0;
    if (withEnergy) energy[i] = r.energyJoules;
  }
  data::Table t;
  t.addNumeric("JobId", std::move(id));
  t.addCategorical("Operator", std::move(op));
  t.addNumeric("GlobalSize", std::move(size));
  t.addNumeric("NP", std::move(np));
  t.addNumeric("FreqGHz", std::move(freq));
  t.addNumeric("RuntimeS", std::move(runtime));
  t.addNumeric("SubmitTime", std::move(submit));
  t.addNumeric("StartTime", std::move(start));
  t.addNumeric("EndTime", std::move(end));
  t.addNumeric("QueueWaitS", std::move(wait));
  t.addNumeric("NodesUsed", std::move(nodes));
  t.addNumeric("CoresUsed", std::move(cores));
  t.addNumeric("PowerSamples", std::move(samples));
  t.addNumeric("EnergyValid", std::move(evalid));
  t.addNumeric("Attempts", std::move(attempts));
  t.addNumeric("WastedSeconds", std::move(wasted));
  t.addNumeric("Failed", std::move(failed));
  t.addNumeric("Censored", std::move(censored));
  if (withEnergy) t.addNumeric("EnergyJ", std::move(energy));
  return t;
}

std::vector<JobRequest> requestsFromTable(const data::Table& table) {
  requireArg(table.numRows() > 0, "requestsFromTable: empty table");
  const auto op = table.categorical("Operator");
  const auto size = table.numeric("GlobalSize");
  const auto np = table.numeric("NP");
  const auto freq = table.numeric("FreqGHz");
  std::vector<JobRequest> out;
  out.reserve(table.numRows());
  for (std::size_t i = 0; i < table.numRows(); ++i) {
    JobRequest req;
    req.op = operatorFromString(std::string(op[i]));
    req.globalSize = size[i];
    requireArg(np[i] >= 1.0 && np[i] == std::floor(np[i]),
               "requestsFromTable: NP must be a positive integer");
    req.np = static_cast<int>(np[i]);
    req.freqGhz = freq[i];
    out.push_back(req);
  }
  return out;
}

std::vector<double> submitTimesFromTable(const data::Table& table,
                                         double stagger) {
  requireArg(stagger >= 0.0, "submitTimesFromTable: negative stagger");
  std::vector<double> times(table.numRows());
  if (table.hasColumn("SubmitTime")) {
    const auto col = table.numeric("SubmitTime");
    times.assign(col.begin(), col.end());
  } else {
    for (std::size_t i = 0; i < times.size(); ++i)
      times[i] = static_cast<double>(i) * stagger;
  }
  return times;
}

}  // namespace alperf::cluster
