#pragma once

/// \file perf_model.hpp
/// Analytic HPGMG-FE runtime model used by the cluster simulator.
///
/// The paper's datasets came from real HPGMG-FE runs on CloudLab hardware
/// we do not have; this model is the substitution documented in DESIGN.md.
/// It is a standard multigrid cost model — work ∝ N with per-operator
/// flops/dof, per-node memory-bandwidth contention, a DVFS frequency
/// exponent below 1 (memory-bound codes scale sublinearly with frequency),
/// surface-to-volume halo-exchange communication, per-level latency floors,
/// and an oversubscription penalty for np > total cores — calibrated so the
/// generated dataset matches Table I's ranges (runtime 0.005–458 s over
/// N ∈ [1.7e3, 1.1e9], np ∈ [1, 128], f ∈ [1.2, 2.4] GHz).
///
/// Observed runtimes are the deterministic mean times multiplicative
/// lognormal noise, with rare heavy-tail "system jitter" spikes, matching
/// the low-but-real variance visible in the paper's Performance dataset.

#include "cluster/job.hpp"
#include "stats/rng.hpp"

namespace alperf::cluster {

/// Tunable constants of the runtime model (defaults are the calibrated
/// values; tests perturb them).
struct PerfModelParams {
  // Machine shape (CloudLab Wisconsin c220g1-like).
  int coresPerNode = 16;
  int nodes = 4;
  double baseFreqGhz = 2.4;

  // Per-operator FMG work in flops per degree of freedom.
  double flopsPerDofPoisson1 = 150.0;
  double flopsPerDofPoisson2 = 550.0;
  double flopsPerDofPoisson2Affine = 700.0;

  // Achieved per-core flop rate at base frequency, one active core.
  double coreRate = 2.8e9;

  // Runtime ∝ f^-freqExponent; < 1 because the code is partly memory-bound.
  double freqExponentPoisson1 = 0.65;
  double freqExponentPoisson2 = 0.80;
  double freqExponentPoisson2Affine = 0.80;

  // Per-node memory-bandwidth contention: with c active cores on a node the
  // per-core rate is divided by 1 + contention*(c-1)/(coresPerNode-1).
  double memContention = 0.6;

  // Halo exchange: bytes per boundary dof over the network bandwidth,
  // doubled when the job spans multiple nodes.
  double haloBytesPerDof = 8.0;
  double networkBandwidth = 1.25e9;  ///< bytes/s (10 GbE)
  double interNodeCommFactor = 2.0;

  // Per-level, per-cycle latency floor (MPI/kernel launch overhead).
  double latencyPerLevel = 450e-6;

  // Fixed startup (mesh setup, first touch).
  double setupSeconds = 3.0e-3;

  // Oversubscription penalty slope for np > nodes*coresPerNode.
  double oversubPenalty = 0.12;

  // Coarsest-grid size: levels = 1 + log8(N / coarseDof).
  double coarseDof = 1000.0;

  // Noise: lognormal sigma, plus with probability spikeProbability a spike
  // factor 1 + Exp(1/spikeScale).
  double noiseSigma = 0.025;
  double spikeProbability = 0.02;
  double spikeScale = 0.08;
};

/// Deterministic-mean + stochastic-sample runtime model.
class PerfModel {
 public:
  explicit PerfModel(PerfModelParams params = {});

  const PerfModelParams& params() const { return params_; }

  int totalCores() const { return params_.coresPerNode * params_.nodes; }

  /// Multigrid level count for a given global size.
  int levels(double globalSize) const;

  /// Number of nodes a job occupies (ceil(cores/coresPerNode), capped).
  int nodesUsed(int np) const;

  /// Cores actually allocated (np capped at the machine size; beyond that
  /// ranks time-share).
  int coresUsed(int np) const;

  /// Expected (noise-free) runtime in seconds.
  double meanRuntime(const JobRequest& req) const;

  /// One noisy observation of the runtime.
  double sampleRuntime(const JobRequest& req, stats::Rng& rng) const;

 private:
  double flopsPerDof(Operator op) const;
  double freqExponent(Operator op) const;

  PerfModelParams params_;
};

}  // namespace alperf::cluster
