#pragma once

/// \file records.hpp
/// Conversions between JobRecord/JobRequest collections and data Tables —
/// the interchange that lets campaigns be archived as CSV (like the
/// paper's published dataset) and replayed through the simulator.

#include <span>

#include "cluster/job.hpp"
#include "data/table.hpp"

namespace alperf::cluster {

/// Renders accounting records as a table. Columns: JobId, Operator,
/// GlobalSize, NP, FreqGHz, RuntimeS, SubmitTime, StartTime, EndTime,
/// QueueWaitS, NodesUsed, CoresUsed, PowerSamples, EnergyValid, Attempts,
/// WastedSeconds, Failed, and EnergyJ when withEnergy is set.
data::Table recordsToTable(std::span<const JobRecord> records,
                           bool withEnergy);

/// Reads a workload back out of a table with the Operator / GlobalSize /
/// NP / FreqGHz columns (e.g. a previously exported campaign, or a
/// hand-written experiment plan). Other columns are ignored.
std::vector<JobRequest> requestsFromTable(const data::Table& table);

/// Submit times for a replayed workload: the table's SubmitTime column
/// when present, else `stagger`-spaced arrivals starting at 0.
std::vector<double> submitTimesFromTable(const data::Table& table,
                                         double stagger = 1.0);

}  // namespace alperf::cluster
