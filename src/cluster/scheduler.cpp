#include "cluster/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.hpp"

namespace alperf::cluster {

int Placement::totalCores() const {
  return std::accumulate(cores.begin(), cores.end(), 0);
}

int Placement::nodesUsed() const {
  int n = 0;
  for (int c : cores)
    if (c > 0) ++n;
  return n;
}

ClusterSim::ClusterSim(ClusterConfig config, PerfModel model,
                       std::uint64_t seed)
    : config_(config), model_(std::move(model)), rng_(seed) {
  requireArg(config_.nodes >= 1 && config_.coresPerNode >= 1,
             "ClusterSim: machine must have at least one core");
  requireArg(config_.nodes == model_.params().nodes &&
                 config_.coresPerNode == model_.params().coresPerNode,
             "ClusterSim: config and perf model disagree on machine shape");
  requireArg(config_.prologSeconds >= 0.0 && config_.epilogSeconds >= 0.0,
             "ClusterSim: overheads must be non-negative");
  requireArg(config_.failureProbability >= 0.0 &&
                 config_.failureProbability <= 1.0,
             "ClusterSim: failureProbability must be in [0, 1]");
  requireArg(config_.maxRetries >= 0,
             "ClusterSim: maxRetries must be non-negative");
  requireArg(std::isfinite(config_.walltimeMargin) &&
                 config_.walltimeMargin >= 1.0,
             "ClusterSim: walltimeMargin must be >= 1 (requested walltime "
             "below the mean runtime would kill typical jobs)");
  freeCores_.assign(config_.nodes, config_.coresPerNode);
  loadPerNode_.resize(config_.nodes);
}

std::size_t ClusterSim::submit(const JobRequest& request, double submitTime) {
  requireArg(!started_, "ClusterSim::submit: simulation already ran");
  requireArg(submitTime >= 0.0, "ClusterSim: submitTime must be >= 0");
  const std::size_t id = records_.size();
  JobRecord rec;
  rec.id = id;
  rec.request = request;
  rec.submitTime = submitTime;
  records_.push_back(rec);
  placements_.emplace_back();

  PendingJob job;
  job.id = id;
  job.request = request;
  job.submitTime = submitTime;
  job.estimatedWindow = config_.walltimeMargin * model_.meanRuntime(request) +
                        config_.prologSeconds + config_.epilogSeconds;
  queue_.push_back(job);
  return id;
}

bool ClusterSim::tryPlace(int cores, Placement& placement) const {
  // Greedy descending-free-cores placement (spreads jobs while tolerating
  // fragmentation, like SLURM's block distribution over least-loaded nodes).
  std::vector<int> order(freeCores_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [this](int a, int b) {
    return freeCores_[a] > freeCores_[b];
  });
  placement.cores.assign(freeCores_.size(), 0);
  int remaining = cores;
  for (int node : order) {
    if (remaining == 0) break;
    const int take = std::min(remaining, freeCores_[node]);
    placement.cores[node] = take;
    remaining -= take;
  }
  return remaining == 0;
}

void ClusterSim::startJob(const PendingJob& job, double now) {
  Placement placement;
  const int cores = model_.coresUsed(job.request.np);
  ALPERF_ASSERT(tryPlace(cores, placement), "startJob: placement must fit");
  for (std::size_t n = 0; n < freeCores_.size(); ++n)
    freeCores_[n] -= placement.cores[n];

  double runtime = model_.sampleRuntime(job.request, rng_);
  // Failure injection: the attempt may crash part-way through its run.
  bool crashes = config_.failureProbability > 0.0 &&
                 rng_.bernoulli(config_.failureProbability);
  const bool retriesLeft = job.attempt <= config_.maxRetries;
  if (crashes) runtime *= rng_.uniformReal(0.05, 0.95);

  // Walltime enforcement: the scheduler kills any attempt still running at
  // its requested walltime. The kill pre-empts a later crash and is
  // terminal (SLURM does not requeue TIMEOUTs by default): the partial run
  // completes as a censored record whose runtime is the walltime bound.
  bool censored = false;
  if (config_.enforceWalltime) {
    const double limit = config_.walltimeMargin * model_.meanRuntime(job.request);
    if (runtime > limit) {
      runtime = limit;
      censored = true;
      crashes = false;
    }
  }

  const double computeBegin = now + config_.prologSeconds;
  const double computeEnd = computeBegin + runtime;
  const double windowEnd = computeEnd + config_.epilogSeconds;

  JobRecord& rec = records_[job.id];
  rec.attempts = job.attempt;
  if (crashes && retriesLeft) {
    // Burnt window; the final (successful or terminal) attempt will fill
    // in the definitive start/end/runtime.
    rec.wastedSeconds += windowEnd - now;
  } else {
    rec.startTime = now;
    rec.endTime = windowEnd;
    rec.runtimeSeconds = runtime;
    rec.nodesUsed = placement.nodesUsed();
    rec.coresUsed = cores;
    rec.failed = crashes;
    rec.censored = censored;
    placements_[job.id] = placement;
  }

  for (std::size_t n = 0; n < placement.cores.size(); ++n) {
    if (placement.cores[n] == 0) continue;
    LoadInterval iv;
    iv.begin = computeBegin;
    iv.end = computeEnd;
    iv.utilization = static_cast<double>(placement.cores[n]) /
                     static_cast<double>(config_.coresPerNode);
    iv.freqGhz = job.request.freqGhz;
    loadPerNode_[n].push_back(iv);
  }

  Running run;
  run.windowEnd = windowEnd;
  run.id = job.id;
  run.crashed = crashes && retriesLeft;
  run.attempt = job.attempt;
  if (crashes && retriesLeft) {
    // The crashed attempt must free the right cores at completion even
    // though the record's placement belongs to the final attempt, so
    // remember this attempt's placement for the interim.
    placements_[job.id] = placement;
  }
  running_.push_back(run);
  makespan_ = std::max(makespan_, windowEnd);
}

void ClusterSim::enqueueRetry(const Running& r, double now) {
  PendingJob retry;
  retry.id = r.id;
  retry.request = records_[r.id].request;
  retry.submitTime = now;
  retry.estimatedWindow =
      config_.walltimeMargin * model_.meanRuntime(retry.request) +
      config_.prologSeconds + config_.epilogSeconds;
  retry.attempt = r.attempt + 1;
  // Keep the queue sorted by submit time (retries arrive "now", before
  // any future submissions).
  const auto pos = std::upper_bound(
      queue_.begin(), queue_.end(), retry,
      [](const PendingJob& a, const PendingJob& b) {
        return a.submitTime < b.submitTime;
      });
  queue_.insert(pos, std::move(retry));
}

void ClusterSim::schedule(double now) {
  // FIFO: start queue heads while they fit.
  while (!queue_.empty()) {
    const PendingJob& head = queue_.front();
    if (head.submitTime > now) return;  // not yet arrived
    Placement p;
    if (!tryPlace(model_.coresUsed(head.request.np), p)) break;
    PendingJob job = head;
    queue_.erase(queue_.begin());
    startJob(job, now);
  }
  if (queue_.empty() || queue_.front().submitTime > now) return;

  // EASY backfill: reserve for the blocked head, let later jobs jump the
  // queue only if they cannot delay it. Shadow time is computed on
  // aggregate core counts (a documented approximation of per-node
  // feasibility).
  const int headCores = model_.coresUsed(queue_.front().request.np);
  std::vector<Running> byEnd(running_.begin(), running_.end());
  std::sort(byEnd.begin(), byEnd.end(),
            [](const Running& a, const Running& b) {
              return a.windowEnd < b.windowEnd;
            });
  int avail = std::accumulate(freeCores_.begin(), freeCores_.end(), 0);
  double shadowTime = std::numeric_limits<double>::infinity();
  int extraCores = 0;
  for (const Running& r : byEnd) {
    avail += placements_[r.id].totalCores();
    if (avail >= headCores) {
      shadowTime = r.windowEnd;
      extraCores = avail - headCores;
      break;
    }
  }

  for (std::size_t i = 1; i < queue_.size();) {
    const PendingJob& cand = queue_[i];
    if (cand.submitTime > now) {
      ++i;
      continue;
    }
    const int cores = model_.coresUsed(cand.request.np);
    Placement p;
    const bool fitsNow = tryPlace(cores, p);
    const bool safe =
        now + cand.estimatedWindow <= shadowTime || cores <= extraCores;
    if (fitsNow && safe) {
      PendingJob job = cand;
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
      startJob(job, now);
      if (cores <= extraCores) extraCores -= cores;
    } else {
      ++i;
    }
  }
}

void ClusterSim::run() {
  requireArg(!started_, "ClusterSim::run: already ran");
  started_ = true;
  std::stable_sort(queue_.begin(), queue_.end(),
                   [](const PendingJob& a, const PendingJob& b) {
                     return a.submitTime < b.submitTime;
                   });

  double now = 0.0;
  while (!queue_.empty() || !running_.empty()) {
    schedule(now);
    // Advance to the next event: a completion or an arrival. Any queued
    // job's arrival is an event — not just the head's — because later
    // arrivals may be eligible for backfill.
    double next = std::numeric_limits<double>::infinity();
    for (const Running& r : running_) next = std::min(next, r.windowEnd);
    for (const PendingJob& j : queue_) {
      if (j.submitTime > now) {
        next = std::min(next, j.submitTime);
        break;  // queue is sorted by submit time
      }
    }
    ALPERF_ASSERT(std::isfinite(next),
                  "ClusterSim: deadlock — nothing running, queue blocked");
    now = next;
    // Free everything that completes at `now`; crashed attempts requeue.
    for (std::size_t i = 0; i < running_.size();) {
      if (running_[i].windowEnd <= now) {
        const Running done = running_[i];
        const Placement& p = placements_[done.id];
        for (std::size_t n = 0; n < freeCores_.size(); ++n)
          freeCores_[n] += p.cores[n];
        running_[i] = running_.back();
        running_.pop_back();
        if (done.crashed) enqueueRetry(done, now);
      } else {
        ++i;
      }
    }
  }
  finished_ = true;
}

const std::vector<JobRecord>& ClusterSim::records() const {
  requireArg(finished_, "ClusterSim: simulation has not run");
  return records_;
}

std::vector<JobRecord>& ClusterSim::recordsMutable() {
  requireArg(finished_, "ClusterSim: simulation has not run");
  return records_;
}

const std::vector<LoadInterval>& ClusterSim::nodeLoad(int node) const {
  requireArg(node >= 0 && node < config_.nodes,
             "ClusterSim::nodeLoad: bad node index");
  return loadPerNode_[node];
}

const std::vector<Placement>& ClusterSim::placements() const {
  return placements_;
}

double ClusterSim::makespan() const { return makespan_; }

double ClusterSim::coreUtilization() const {
  requireArg(finished_, "ClusterSim: simulation has not run");
  if (makespan_ <= 0.0) return 0.0;
  double busyCoreSeconds = 0.0;
  for (const JobRecord& r : records_)
    busyCoreSeconds += (r.endTime - r.startTime) * r.coresUsed;
  return busyCoreSeconds /
         (static_cast<double>(config_.nodes) * config_.coresPerNode *
          makespan_);
}

Measurement measureJob(const ClusterConfig& config, const PerfModel& model,
                       const JobRequest& request, std::uint64_t seed) {
  ClusterSim sim(config, model, seed);
  sim.submit(request, 0.0);
  sim.run();
  const JobRecord& rec = sim.records().front();

  // Campaign costs are core-seconds of allocation: the machine is blocked
  // for the whole window (prolog + run + epilog), not just the compute.
  const double cores = static_cast<double>(rec.coresUsed);
  const double windowCost = (rec.endTime - rec.startTime) * cores;
  const double wasted = rec.wastedSeconds * cores;

  if (rec.failed) {
    // Retries exhausted inside the scheduler: everything was burned,
    // including the terminal attempt's own window.
    return Measurement::failed(wasted + windowCost, rec.attempts);
  }
  Measurement m = rec.censored
                      ? Measurement::censored(rec.runtimeSeconds, windowCost)
                      : Measurement::ok(rec.runtimeSeconds, windowCost);
  m.wastedCost = wasted;
  m.attempts = rec.attempts;
  return m;
}

double ClusterSim::meanQueueWait() const {
  requireArg(finished_, "ClusterSim: simulation has not run");
  if (records_.empty()) return 0.0;
  double total = 0.0;
  for (const JobRecord& r : records_) total += r.queueWait();
  return total / static_cast<double>(records_.size());
}

}  // namespace alperf::cluster
