#pragma once

/// \file power.hpp
/// Server power modeling and IPMI-style trace sampling.
///
/// The paper derives per-job energy by numerically integrating traces of
/// instantaneous power draw recorded by on-board IPMI sensors, and excludes
/// jobs whose traces have too few records ("less than 10 for 60 seconds of
/// computation"). This module reproduces that pipeline: a node power model
/// (idle + DVFS-scaled dynamic draw), a sampler with realistic period
/// jitter and bursty sensor outages (the gaps), and an energy estimator
/// with the paper's validity rule. The outage process is why the Power
/// dataset is a small subset of the Performance dataset.

#include <vector>

#include "cluster/job.hpp"
#include "stats/rng.hpp"

namespace alperf::cluster {

/// Constants of the node power model (c220g1-like dual-socket server).
struct PowerModelParams {
  double idleWatts = 165.0;
  /// Additional draw at full utilization of all cores at base frequency.
  double dynamicWatts = 110.0;
  double baseFreqGhz = 2.4;
  /// Dynamic power ∝ f^freqExponent (≈ 2: voltage tracks frequency).
  double freqExponent = 2.0;
  /// Slow baseline wander amplitude (fans, PSU efficiency drift).
  double wanderWatts = 3.0;
  double wanderPeriodSeconds = 900.0;
};

/// One load episode on a node: `utilization` in [0,1] cores busy at the
/// given DVFS frequency between begin and end.
struct LoadInterval {
  double begin = 0.0;
  double end = 0.0;
  double utilization = 0.0;
  double freqGhz = 2.4;
};

/// Deterministic instantaneous node power as a function of load.
class PowerModel {
 public:
  explicit PowerModel(PowerModelParams params = {});

  const PowerModelParams& params() const { return params_; }

  /// Power draw with the given aggregate utilization at one frequency.
  double nodePower(double utilization, double freqGhz) const;

  /// Power draw at time t given the node's load schedule (intervals may
  /// overlap when jobs share a node; utilizations add, capped at 1 using
  /// the highest active frequency).
  double nodePowerAt(double t, const std::vector<LoadInterval>& load) const;

 private:
  PowerModelParams params_;
};

/// One IPMI record: timestamp and instantaneous watts.
struct PowerSample {
  double time = 0.0;
  double watts = 0.0;
};

/// A node's full power trace over the simulation.
struct NodeTrace {
  int node = 0;
  std::vector<PowerSample> samples;  ///< strictly increasing timestamps

  /// Indices [first, last) of samples with time in [begin, end].
  std::pair<std::size_t, std::size_t> windowRange(double begin,
                                                  double end) const;
};

/// Sampler behaviour, including the sensor-outage (gap) process.
struct IpmiSamplerParams {
  double periodSeconds = 5.0;
  double periodJitterSeconds = 0.5;  ///< uniform jitter on each interval
  /// Exponential on/off outage process: sensor logs only while "up".
  double meanUpSeconds = 900.0;
  double meanDownSeconds = 1450.0;
  double measurementNoiseWatts = 4.0;
  /// Sensor calibration drift: a bias offset redrawn ~ N(0, biasSigma) at
  /// every sensor-up transition. Unlike per-sample noise it does not
  /// average out under integration, so it dominates the energy spread —
  /// the reason the paper's Power dataset is much noisier than its
  /// Performance dataset.
  double biasSigmaWatts = 7.0;
  double quantizationWatts = 1.0;  ///< IPMI reports coarse values
};

/// Generates a node's power trace from its load schedule.
class IpmiSampler {
 public:
  IpmiSampler(PowerModel model, IpmiSamplerParams params = {});

  NodeTrace sample(int node, const std::vector<LoadInterval>& load,
                   double begin, double end, stats::Rng& rng) const;

 private:
  PowerModel model_;
  IpmiSamplerParams params_;
};

/// Per-job energy estimation from node traces, with the paper's
/// trace-quality exclusion rule.
struct EnergyEstimatorParams {
  /// Required sampling rate: at least `requiredPerMinute` samples per 60 s
  /// of window (pro-rated, minimum 2 samples).
  double requiredPerMinute = 10.0;
  /// Additionally reject windows with an internal gap larger than this or
  /// with the first/last sample farther than this from the window edges.
  double maxGapSeconds = 15.0;
};

struct EnergyEstimate {
  double joules = 0.0;
  bool valid = false;
  int samples = 0;  ///< in-window samples summed over the job's nodes
};

class EnergyEstimator {
 public:
  explicit EnergyEstimator(EnergyEstimatorParams params = {});

  /// Integrates the given node traces over [begin, end] and applies the
  /// validity rule per node (every allocated node must pass).
  /// Boundary handling: the first/last in-window samples are extended to
  /// the window edges before trapezoid integration.
  EnergyEstimate estimate(const std::vector<const NodeTrace*>& traces,
                          double begin, double end) const;

 private:
  EnergyEstimatorParams params_;
};

}  // namespace alperf::cluster
