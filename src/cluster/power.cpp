#include "cluster/power.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "stats/integrate.hpp"

namespace alperf::cluster {

PowerModel::PowerModel(PowerModelParams params) : params_(params) {
  requireArg(params_.idleWatts >= 0.0 && params_.dynamicWatts >= 0.0,
             "PowerModel: watts must be non-negative");
  requireArg(params_.baseFreqGhz > 0.0,
             "PowerModel: base frequency must be positive");
}

double PowerModel::nodePower(double utilization, double freqGhz) const {
  requireArg(utilization >= 0.0 && utilization <= 1.0,
             "PowerModel: utilization outside [0,1]");
  requireArg(freqGhz > 0.0, "PowerModel: frequency must be positive");
  const double fScale =
      std::pow(freqGhz / params_.baseFreqGhz, params_.freqExponent);
  return params_.idleWatts + params_.dynamicWatts * utilization * fScale;
}

double PowerModel::nodePowerAt(double t,
                               const std::vector<LoadInterval>& load) const {
  double util = 0.0;
  double freq = params_.baseFreqGhz;
  bool any = false;
  for (const auto& iv : load) {
    if (t >= iv.begin && t < iv.end) {
      util += iv.utilization;
      // With co-scheduled jobs at different DVFS settings the socket runs
      // at the highest requested frequency.
      freq = any ? std::max(freq, iv.freqGhz) : iv.freqGhz;
      any = true;
    }
  }
  util = std::min(util, 1.0);
  const double wander =
      params_.wanderWatts *
      std::sin(2.0 * std::numbers::pi * t / params_.wanderPeriodSeconds);
  return nodePower(util, any ? freq : params_.baseFreqGhz) + wander;
}

std::pair<std::size_t, std::size_t> NodeTrace::windowRange(double begin,
                                                           double end) const {
  const auto lo = std::lower_bound(
      samples.begin(), samples.end(), begin,
      [](const PowerSample& s, double t) { return s.time < t; });
  const auto hi = std::upper_bound(
      samples.begin(), samples.end(), end,
      [](double t, const PowerSample& s) { return t < s.time; });
  return {static_cast<std::size_t>(lo - samples.begin()),
          static_cast<std::size_t>(hi - samples.begin())};
}

IpmiSampler::IpmiSampler(PowerModel model, IpmiSamplerParams params)
    : model_(std::move(model)), params_(params) {
  requireArg(params_.periodSeconds > 0.0,
             "IpmiSampler: period must be positive");
  requireArg(params_.periodJitterSeconds >= 0.0 &&
                 params_.periodJitterSeconds < params_.periodSeconds,
             "IpmiSampler: jitter must be in [0, period)");
  requireArg(params_.meanUpSeconds > 0.0 && params_.meanDownSeconds >= 0.0,
             "IpmiSampler: outage process durations invalid");
}

NodeTrace IpmiSampler::sample(int node,
                              const std::vector<LoadInterval>& load,
                              double begin, double end,
                              stats::Rng& rng) const {
  requireArg(begin <= end, "IpmiSampler: begin > end");
  NodeTrace trace;
  trace.node = node;

  // Sensor outage state machine: alternate exponential up/down episodes.
  bool up = rng.bernoulli(params_.meanUpSeconds /
                          (params_.meanUpSeconds + params_.meanDownSeconds));
  double stateEnd =
      begin + rng.exponential(1.0 / (up ? params_.meanUpSeconds
                                        : params_.meanDownSeconds));
  double bias = rng.normal(0.0, params_.biasSigmaWatts);

  double t = begin + rng.uniformReal(0.0, params_.periodSeconds);
  while (t <= end) {
    while (t > stateEnd) {
      up = !up;
      stateEnd += rng.exponential(
          1.0 / (up ? params_.meanUpSeconds : params_.meanDownSeconds));
      // The sensor recalibrates when it comes back up.
      if (up) bias = rng.normal(0.0, params_.biasSigmaWatts);
    }
    if (up) {
      double w = model_.nodePowerAt(t, load) + bias +
                 rng.normal(0.0, params_.measurementNoiseWatts);
      if (params_.quantizationWatts > 0.0)
        w = std::round(w / params_.quantizationWatts) *
            params_.quantizationWatts;
      trace.samples.push_back({t, std::max(w, 0.0)});
    }
    t += params_.periodSeconds +
         rng.uniformReal(-params_.periodJitterSeconds,
                         params_.periodJitterSeconds);
  }
  return trace;
}

EnergyEstimator::EnergyEstimator(EnergyEstimatorParams params)
    : params_(params) {
  requireArg(params_.requiredPerMinute > 0.0 && params_.maxGapSeconds > 0.0,
             "EnergyEstimator: params must be positive");
}

EnergyEstimate EnergyEstimator::estimate(
    const std::vector<const NodeTrace*>& traces, double begin,
    double end) const {
  requireArg(!traces.empty(), "EnergyEstimator: no traces given");
  requireArg(begin < end, "EnergyEstimator: empty window");
  EnergyEstimate out;
  const double duration = end - begin;
  const auto required = static_cast<std::size_t>(std::max(
      2.0, std::ceil(params_.requiredPerMinute * duration / 60.0)));

  double total = 0.0;
  for (const NodeTrace* trace : traces) {
    ALPERF_ASSERT(trace != nullptr, "EnergyEstimator: null trace");
    const auto [lo, hi] = trace->windowRange(begin, end);
    const std::size_t n = hi - lo;
    out.samples += static_cast<int>(n);
    if (n < required) return out;  // invalid (too sparse)

    // Gap rule: edges and internal spacing must be within maxGapSeconds.
    if (trace->samples[lo].time - begin > params_.maxGapSeconds) return out;
    if (end - trace->samples[hi - 1].time > params_.maxGapSeconds) return out;
    for (std::size_t i = lo + 1; i < hi; ++i)
      if (trace->samples[i].time - trace->samples[i - 1].time >
          params_.maxGapSeconds)
        return out;

    // Trapezoid over the window with edge extension.
    std::vector<double> t, w;
    t.reserve(n + 2);
    w.reserve(n + 2);
    if (trace->samples[lo].time > begin) {
      t.push_back(begin);
      w.push_back(trace->samples[lo].watts);
    }
    for (std::size_t i = lo; i < hi; ++i) {
      t.push_back(trace->samples[i].time);
      w.push_back(trace->samples[i].watts);
    }
    if (trace->samples[hi - 1].time < end) {
      t.push_back(end);
      w.push_back(trace->samples[hi - 1].watts);
    }
    total += stats::trapezoidIrregular(t, w);
  }
  out.joules = total;
  out.valid = true;
  return out;
}

}  // namespace alperf::cluster
