#include "cluster/dataset.hpp"

#include "cluster/records.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "stats/sampling.hpp"

namespace alperf::cluster {

std::vector<double> defaultSizeLadder() {
  const int dims[] = {12, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512,
                      768, 1024};
  std::vector<double> sizes;
  sizes.reserve(std::size(dims));
  for (int m : dims)
    sizes.push_back(static_cast<double>(m) * m * m);
  return sizes;
}

DatasetGenerator::DatasetGenerator(DatasetConfig config,
                                   PerfModelParams perfParams,
                                   PowerModelParams powerParams,
                                   IpmiSamplerParams samplerParams,
                                   EnergyEstimatorParams energyParams,
                                   ClusterConfig clusterConfig)
    : config_(std::move(config)),
      perfParams_(perfParams),
      powerParams_(powerParams),
      samplerParams_(samplerParams),
      energyParams_(energyParams),
      clusterConfig_(clusterConfig) {
  if (config_.sizes.empty()) config_.sizes = defaultSizeLadder();
  requireArg(!config_.operators.empty() && !config_.npLevels.empty() &&
                 !config_.freqLevels.empty(),
             "DatasetGenerator: empty factor levels");
  requireArg(config_.maxRepeats >= 1, "DatasetGenerator: maxRepeats >= 1");
}

std::vector<JobRequest> DatasetGenerator::combinations() const {
  std::vector<JobRequest> combos;
  combos.reserve(config_.operators.size() * config_.sizes.size() *
                 config_.npLevels.size() * config_.freqLevels.size());
  for (Operator op : config_.operators)
    for (double size : config_.sizes)
      for (int np : config_.npLevels)
        for (double f : config_.freqLevels)
          combos.push_back({op, size, np, f});
  return combos;
}

GeneratedDataset DatasetGenerator::generate() const {
  const auto combos = combinations();
  const std::size_t nCombos = combos.size();
  requireArg(config_.targetJobs >= nCombos,
             "DatasetGenerator: targetJobs below one run per combination");
  requireArg(config_.targetJobs <=
                 nCombos * static_cast<std::size_t>(config_.maxRepeats),
             "DatasetGenerator: targetJobs exceeds maxRepeats per combo");

  stats::Rng rng(config_.seed);

  // Plan repeats: one run each, then hand out extras by uniform random
  // draws with replacement (never exceeding maxRepeats per combination),
  // so some combinations reach the full maxRepeats while others stay at
  // one — the paper's "up to 3 repeated experiments".
  std::vector<int> repeats(nCombos, 1);
  std::size_t total = nCombos;
  while (total < config_.targetJobs) {
    const std::size_t c = rng.index(nCombos);
    if (repeats[c] < config_.maxRepeats) {
      ++repeats[c];
      ++total;
    }
  }

  // Expand into the submission list and shuffle so repeats interleave.
  std::vector<JobRequest> jobs;
  jobs.reserve(total);
  for (std::size_t c = 0; c < nCombos; ++c)
    for (int r = 0; r < repeats[c]; ++r) jobs.push_back(combos[c]);
  stats::shuffle(jobs, rng);

  // Run the campaign.
  ClusterSim sim(clusterConfig_, PerfModel(perfParams_), rng());
  for (std::size_t i = 0; i < jobs.size(); ++i)
    sim.submit(jobs[i], static_cast<double>(i) * config_.submitStagger);
  sim.run();

  // Sample per-node IPMI traces over the whole campaign.
  const IpmiSampler sampler{PowerModel(powerParams_), samplerParams_};
  std::vector<NodeTrace> traces;
  traces.reserve(clusterConfig_.nodes);
  for (int n = 0; n < clusterConfig_.nodes; ++n) {
    stats::Rng nodeRng = rng.split();
    traces.push_back(
        sampler.sample(n, sim.nodeLoad(n), 0.0, sim.makespan(), nodeRng));
  }

  // Estimate per-job energy and apply the exclusion rule.
  const EnergyEstimator estimator(energyParams_);
  auto& records = sim.recordsMutable();
  for (JobRecord& rec : records) {
    std::vector<const NodeTrace*> jobTraces;
    const Placement& p = sim.placements()[rec.id];
    for (std::size_t n = 0; n < p.cores.size(); ++n)
      if (p.cores[n] > 0) jobTraces.push_back(&traces[n]);
    const EnergyEstimate e =
        estimator.estimate(jobTraces, rec.startTime, rec.endTime);
    rec.energyJoules = e.joules;
    rec.energyValid = e.valid;
    rec.powerSamples = e.samples;
  }

  // Assemble the tables (shared schema via recordsToTable).
  GeneratedDataset out;
  out.makespan = sim.makespan();
  out.records = records;

  std::vector<JobRecord> valid;
  for (const JobRecord& r : records)
    if (r.energyValid) valid.push_back(r);
  out.performance = recordsToTable(records, /*withEnergy=*/false);
  out.power = recordsToTable(valid, /*withEnergy=*/true);
  return out;
}

}  // namespace alperf::cluster
