#include "cluster/job.hpp"

#include "common/error.hpp"

namespace alperf::cluster {

std::string toString(Operator op) {
  switch (op) {
    case Operator::Poisson1:
      return "poisson1";
    case Operator::Poisson2:
      return "poisson2";
    case Operator::Poisson2Affine:
      return "poisson2affine";
  }
  throw std::invalid_argument("toString: unknown Operator");
}

Operator operatorFromString(const std::string& s) {
  if (s == "poisson1") return Operator::Poisson1;
  if (s == "poisson2") return Operator::Poisson2;
  if (s == "poisson2affine") return Operator::Poisson2Affine;
  throw std::invalid_argument("operatorFromString: unknown operator '" + s +
                              "'");
}

}  // namespace alperf::cluster
