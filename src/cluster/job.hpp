#pragma once

/// \file job.hpp
/// Job descriptions and accounting records for the simulated cluster.
///
/// A JobRequest mirrors one HPGMG-FE invocation from the paper's campaign:
/// an operator (the FE discretization variant), a global problem size in
/// degrees of freedom, an MPI process count, and the DVFS CPU frequency.
/// A JobRecord is the SLURM-accounting-style result row.

#include <cstddef>
#include <string>

namespace alperf::cluster {

/// The HPGMG-FE operator variants from Table I.
enum class Operator {
  Poisson1,        ///< Q1 elements, 2nd order (cheapest per dof)
  Poisson2,        ///< Q2 elements (wide stencil, more flops per dof)
  Poisson2Affine,  ///< Q2 with affine-deformed mesh (extra metric terms)
};

/// Canonical dataset string ("poisson1", "poisson2", "poisson2affine").
std::string toString(Operator op);

/// Inverse of toString; throws std::invalid_argument on unknown names.
Operator operatorFromString(const std::string& s);

/// All operators, in Table I order.
inline constexpr Operator kAllOperators[] = {
    Operator::Poisson1, Operator::Poisson2, Operator::Poisson2Affine};

/// One experiment to run.
struct JobRequest {
  Operator op = Operator::Poisson1;
  double globalSize = 0.0;  ///< total degrees of freedom
  int np = 1;               ///< MPI process count
  double freqGhz = 2.4;     ///< DVFS CPU frequency
};

/// SLURM-accounting-style result of a completed job.
struct JobRecord {
  std::size_t id = 0;
  JobRequest request;

  double submitTime = 0.0;  ///< simulated epoch seconds
  double startTime = 0.0;
  double endTime = 0.0;
  int nodesUsed = 0;
  int coresUsed = 0;

  double runtimeSeconds = 0.0;

  /// Failure-injection accounting: total attempts (1 = clean run), time
  /// burnt by failed attempts (their full allocation windows), and
  /// whether the job exhausted its retries without completing.
  int attempts = 1;
  double wastedSeconds = 0.0;
  bool failed = false;
  /// True when the scheduler killed the job at its walltime limit
  /// (ClusterConfig::enforceWalltime): runtimeSeconds is then a *lower
  /// bound* on the true runtime, not a measurement of it.
  bool censored = false;

  /// IPMI-trace-derived energy estimate over the accounting window
  /// (runtime + prolog/epilog) across all allocated nodes. Only meaningful
  /// when energyValid (the paper excludes jobs with gappy traces).
  double energyJoules = 0.0;
  bool energyValid = false;
  int powerSamples = 0;  ///< samples available in the accounting window

  double queueWait() const { return startTime - submitTime; }
};

}  // namespace alperf::cluster
