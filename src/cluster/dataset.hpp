#pragma once

/// \file dataset.hpp
/// End-to-end generation of the paper's two job databases (Table I):
/// a Performance dataset (3246 jobs; response: runtime) and a Power
/// dataset (the subset with trustworthy IPMI traces, 640 jobs; responses:
/// runtime and energy). The generator runs the full pipeline the paper
/// describes: build a factorial campaign with up to 3 repeats per
/// combination, submit it in batches to the SLURM-like simulator, sample
/// per-node IPMI power traces, integrate per-job energy, and exclude jobs
/// with gappy traces.

#include <cstdint>

#include "cluster/scheduler.hpp"
#include "data/table.hpp"

namespace alperf::cluster {

struct DatasetConfig {
  std::vector<Operator> operators{Operator::Poisson1, Operator::Poisson2,
                                  Operator::Poisson2Affine};
  /// Global problem sizes (dof). Default: m³ for the paper-like ladder of
  /// per-dimension sizes 12..1024, spanning 1.7e3 .. 1.1e9.
  std::vector<double> sizes;
  std::vector<int> npLevels{1, 2, 4, 8, 16, 24, 32, 48, 64, 96, 128};
  std::vector<double> freqLevels{1.2, 1.5, 1.8, 2.1, 2.4};

  /// Total jobs to generate; extra repeats (beyond one run per factor
  /// combination) are assigned at random, at most maxRepeats per combo.
  std::size_t targetJobs = 3246;
  int maxRepeats = 3;

  /// Seconds between consecutive submissions (batched campaign).
  double submitStagger = 1.0;

  std::uint64_t seed = 42;
};

/// Returns DatasetConfig's default size ladder (14 cubic sizes).
std::vector<double> defaultSizeLadder();

struct GeneratedDataset {
  /// All completed jobs; columns: JobId, Operator, GlobalSize, NP,
  /// FreqGHz, RuntimeS, SubmitTime, StartTime, EndTime, QueueWaitS,
  /// NodesUsed, CoresUsed, PowerSamples, EnergyValid.
  data::Table performance;
  /// Jobs with a valid energy estimate; adds the EnergyJ column.
  data::Table power;

  std::vector<JobRecord> records;
  double makespan = 0.0;
};

class DatasetGenerator {
 public:
  explicit DatasetGenerator(DatasetConfig config = {},
                            PerfModelParams perfParams = {},
                            PowerModelParams powerParams = {},
                            IpmiSamplerParams samplerParams = {},
                            EnergyEstimatorParams energyParams = {},
                            ClusterConfig clusterConfig = {});

  /// Runs the full campaign. Deterministic for a fixed config.
  GeneratedDataset generate() const;

  /// The factor combinations (before repeats) in deterministic order.
  std::vector<JobRequest> combinations() const;

 private:
  DatasetConfig config_;
  PerfModelParams perfParams_;
  PowerModelParams powerParams_;
  IpmiSamplerParams samplerParams_;
  EnergyEstimatorParams energyParams_;
  ClusterConfig clusterConfig_;
};

}  // namespace alperf::cluster
