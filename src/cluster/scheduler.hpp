#pragma once

/// \file scheduler.hpp
/// Discrete-event cluster simulator with a SLURM-like FIFO + EASY-backfill
/// scheduler — the stand-in for the paper's 4-node CloudLab cluster running
/// SLURM 15.08 (Sec. IV). Jobs are submitted in batches, queued, placed on
/// nodes, and produce SLURM-accounting-style JobRecords plus per-node load
/// schedules that feed the IPMI power sampler.

#include <cstdint>
#include <vector>

#include "cluster/job.hpp"
#include "cluster/perf_model.hpp"
#include "cluster/power.hpp"
#include "common/outcome.hpp"

namespace alperf::cluster {

/// Machine shape and job-lifecycle overheads.
struct ClusterConfig {
  int nodes = 4;
  int coresPerNode = 16;
  /// SLURM prolog (node prep, NFS mounts) before the application starts.
  double prologSeconds = 20.0;
  /// Epilog (cleanup, accounting flush) after it ends.
  double epilogSeconds = 20.0;
  /// Multiplier on the model's mean runtime used as the requested
  /// walltime for backfill planning.
  double walltimeMargin = 1.5;

  /// Failure injection: probability that any given attempt crashes
  /// part-way through (node fault, OOM). A failed attempt occupies its
  /// cores until the crash point, then the job is requeued, up to
  /// maxRetries extra attempts before it is marked failed for good.
  double failureProbability = 0.0;
  int maxRetries = 3;

  /// When set, the scheduler kills any attempt whose sampled runtime
  /// exceeds its requested walltime (walltimeMargin × mean runtime), like
  /// SLURM's TIMEOUT. A kill is terminal — the partial run is reported as
  /// a *censored* record whose runtime is the walltime lower bound.
  bool enforceWalltime = false;
};

/// Where a job's ranks were placed: `cores[i]` ranks on node i.
struct Placement {
  std::vector<int> cores;  ///< size = cluster nodes; zero where unused

  int totalCores() const;
  int nodesUsed() const;
};

/// Event-driven simulation of a job batch on the cluster.
///
/// Usage: submit() all jobs, then run(), then read records() and
/// nodeLoad() / makespan() to generate power traces.
class ClusterSim {
 public:
  ClusterSim(ClusterConfig config, PerfModel model, std::uint64_t seed);

  /// Enqueues a job; returns its id. Must be called before run().
  std::size_t submit(const JobRequest& request, double submitTime);

  /// Runs the simulation to completion (all submitted jobs finish).
  void run();

  bool finished() const { return finished_; }

  /// Accounting records, indexed by job id. startTime/endTime span the
  /// full allocation window (prolog + application + epilog); energy fields
  /// are filled in later by attachEnergy().
  const std::vector<JobRecord>& records() const;
  std::vector<JobRecord>& recordsMutable();

  /// Per-node application-compute load intervals (excludes prolog/epilog,
  /// during which nodes idle at allocation).
  const std::vector<LoadInterval>& nodeLoad(int node) const;

  /// Placement of each job, indexed by job id.
  const std::vector<Placement>& placements() const;

  /// Time the last allocation window closes.
  double makespan() const;

  /// Fraction of total core-time (cores × makespan) occupied by job
  /// allocation windows — the classic scheduler utilization metric.
  double coreUtilization() const;

  /// Mean queue wait over all jobs (seconds).
  double meanQueueWait() const;

  const ClusterConfig& config() const { return config_; }
  const PerfModel& perfModel() const { return model_; }

 private:
  struct PendingJob {
    std::size_t id;
    JobRequest request;
    double submitTime;
    double estimatedWindow;  ///< requested walltime incl. prolog/epilog
    int attempt = 1;
  };

  bool tryPlace(int cores, Placement& placement) const;
  void startJob(const PendingJob& job, double now);
  void schedule(double now);

  ClusterConfig config_;
  PerfModel model_;
  stats::Rng rng_;

  std::vector<PendingJob> queue_;
  std::vector<JobRecord> records_;
  std::vector<Placement> placements_;
  std::vector<int> freeCores_;  ///< per node
  std::vector<std::vector<LoadInterval>> loadPerNode_;

  /// Running jobs as (windowEnd, job id); a crashed attempt carries the
  /// retry submission to enqueue at completion time.
  struct Running {
    double windowEnd;
    std::size_t id;
    bool crashed = false;
    int attempt = 1;
  };
  std::vector<Running> running_;

  void enqueueRetry(const Running& r, double now);

  bool started_ = false;
  bool finished_ = false;
  double makespan_ = 0.0;
};

/// Reference fallible measurement backend: simulates `request` alone on
/// the cluster and maps the accounting record to a Measurement. The
/// response is the application runtime in seconds; costs are core-seconds
/// of allocation (window × cores), with crashed attempts' windows reported
/// as wastedCost. Scheduler-requeued crashes that exhaust
/// config.maxRetries yield Failed; a walltime kill (when
/// config.enforceWalltime) yields Censored with the walltime lower bound.
/// Deterministic in `seed` — retries at the executor layer should vary it.
Measurement measureJob(const ClusterConfig& config, const PerfModel& model,
                       const JobRequest& request, std::uint64_t seed);

}  // namespace alperf::cluster
