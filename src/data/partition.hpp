#pragma once

/// \file partition.hpp
/// Random tri-partitioning of a job database into Initial / Active / Test
/// index sets, the prototype's setup step (paper Sec. IV): typically one
/// Initial job ("run once to verify correctness"), with the remaining jobs
/// split Active:Test ≈ 8:2.

#include <cstddef>
#include <vector>

#include "stats/rng.hpp"

namespace alperf::data {

/// Row-index sets of a tri-partition. The three sets are disjoint and
/// cover all rows.
struct TriPartition {
  std::vector<std::size_t> initial;
  std::vector<std::size_t> active;
  std::vector<std::size_t> test;
};

/// Randomly partitions {0..nRows-1}: `nInitial` rows into Initial, then a
/// fraction `activeFraction` of the remainder into Active (rounded), rest
/// into Test. Requires nInitial >= 1, nInitial < nRows and
/// 0 < activeFraction < 1; both Active and Test are guaranteed non-empty.
TriPartition triPartition(std::size_t nRows, std::size_t nInitial,
                          double activeFraction, stats::Rng& rng);

}  // namespace alperf::data
