#pragma once

/// \file transform.hpp
/// Column transforms used throughout the paper's pipeline: log10 of
/// responses and problem size (Fig. 2), standardization of GP inputs, and
/// one-hot encoding of the categorical Operator variable.

#include <string>

#include "data/table.hpp"

namespace alperf::data {

/// Adds column `target` = log10(source). All source values must be > 0.
/// If `target` equals `source` the column is transformed in place.
void addLog10Column(Table& table, const std::string& source,
                    const std::string& target);

/// Inverse of addLog10Column for predictions: 10^x.
double unlog10(double x);

/// Mean/stddev pair captured by standardization, needed to transform
/// future query points the same way.
struct Standardizer {
  double mean = 0.0;
  double stdDev = 1.0;

  double apply(double x) const { return (x - mean) / stdDev; }
  double invert(double z) const { return z * stdDev + mean; }
};

/// Standardizes a numeric column in place to zero mean / unit variance and
/// returns the parameters. Columns with zero variance get stdDev = 1 (the
/// values all become 0).
Standardizer standardizeColumn(Table& table, const std::string& name);

/// Replaces categorical column `name` with one 0/1 numeric column per
/// distinct value, named `name=value` (sorted by value). Returns the new
/// column names. Throws if `name` is numeric.
std::vector<std::string> oneHotEncode(Table& table, const std::string& name);

}  // namespace alperf::data
