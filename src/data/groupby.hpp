#pragma once

/// \file groupby.hpp
/// Group-by aggregation over Tables — the "repeated measurements per
/// factor combination" summaries that performance analysis constantly
/// needs (mean/SD/min/max of a response per configuration).

#include <string>
#include <vector>

#include "data/table.hpp"

namespace alperf::data {

/// Groups rows by the exact values of `keyColumns` (numeric or
/// categorical) and aggregates every column in `valueColumns` (numeric
/// only). The result has the key columns (categorical keys stay
/// categorical, numeric stay numeric), a `Count` column, and for each
/// value column V the columns `V_mean`, `V_sd` (0 when the group has one
/// row), `V_min`, `V_max`. Groups appear in order of first occurrence.
Table groupByAggregate(const Table& table,
                       const std::vector<std::string>& keyColumns,
                       const std::vector<std::string>& valueColumns);

}  // namespace alperf::data
