#include "data/table.hpp"

#include <algorithm>
#include <charconv>
#include <set>

#include "common/error.hpp"

namespace alperf::data {

void Table::checkNewColumnLength(std::size_t len) const {
  requireArg(cols_.empty() || len == rows_,
             "Table: new column length does not match existing rows");
}

void Table::addNumeric(std::string name, std::vector<double> values) {
  requireArg(!hasColumn(name), "Table: duplicate column '" + name + "'");
  checkNewColumnLength(values.size());
  rows_ = values.size();
  cols_.push_back(
      {std::move(name), ColumnType::Numeric, std::move(values), {}});
}

void Table::addCategorical(std::string name,
                           std::vector<std::string> values) {
  requireArg(!hasColumn(name), "Table: duplicate column '" + name + "'");
  checkNewColumnLength(values.size());
  rows_ = values.size();
  cols_.push_back(
      {std::move(name), ColumnType::Categorical, {}, std::move(values)});
}

void Table::addEmptyColumn(std::string name, ColumnType type) {
  requireArg(!hasColumn(name), "Table: duplicate column '" + name + "'");
  requireArg(rows_ == 0, "Table::addEmptyColumn: table already has rows");
  cols_.push_back({std::move(name), type, {}, {}});
}

bool Table::hasColumn(const std::string& name) const {
  return std::any_of(cols_.begin(), cols_.end(),
                     [&](const Column& c) { return c.name == name; });
}

std::size_t Table::columnIndex(const std::string& name) const {
  for (std::size_t i = 0; i < cols_.size(); ++i)
    if (cols_[i].name == name) return i;
  throw std::invalid_argument("Table: no column named '" + name + "'");
}

const Column& Table::column(std::size_t i) const {
  requireArg(i < cols_.size(), "Table::column: index out of range");
  return cols_[i];
}

const Column& Table::column(const std::string& name) const {
  return cols_[columnIndex(name)];
}

Column& Table::columnMutable(const std::string& name) {
  return cols_[columnIndex(name)];
}

std::vector<std::string> Table::columnNames() const {
  std::vector<std::string> names;
  names.reserve(cols_.size());
  for (const auto& c : cols_) names.push_back(c.name);
  return names;
}

std::span<const double> Table::numeric(const std::string& name) const {
  const Column& c = column(name);
  requireArg(c.type == ColumnType::Numeric,
             "Table::numeric: column '" + name + "' is categorical");
  return c.numeric;
}

std::span<const std::string> Table::categorical(
    const std::string& name) const {
  const Column& c = column(name);
  requireArg(c.type == ColumnType::Categorical,
             "Table::categorical: column '" + name + "' is numeric");
  return c.categorical;
}

std::span<double> Table::numericMutable(const std::string& name) {
  Column& c = columnMutable(name);
  requireArg(c.type == ColumnType::Numeric,
             "Table::numericMutable: column '" + name + "' is categorical");
  return c.numeric;
}

void Table::appendRow(const std::vector<std::string>& cells) {
  requireArg(cells.size() == cols_.size(),
             "Table::appendRow: cell count does not match column count");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (cols_[i].type == ColumnType::Numeric) {
      double v = 0.0;
      const auto* begin = cells[i].data();
      const auto* end = begin + cells[i].size();
      const auto [ptr, ec] = std::from_chars(begin, end, v);
      requireArg(ec == std::errc{} && ptr == end,
                 "Table::appendRow: cell '" + cells[i] +
                     "' is not numeric for column '" + cols_[i].name + "'");
      cols_[i].numeric.push_back(v);
    } else {
      cols_[i].categorical.push_back(cells[i]);
    }
  }
  ++rows_;
}

void Table::removeColumn(const std::string& name) {
  const std::size_t i = columnIndex(name);
  cols_.erase(cols_.begin() + static_cast<std::ptrdiff_t>(i));
  if (cols_.empty()) rows_ = 0;
}

Table Table::selectRows(std::span<const std::size_t> indices) const {
  Table out;
  for (const Column& c : cols_) {
    if (c.type == ColumnType::Numeric) {
      std::vector<double> v;
      v.reserve(indices.size());
      for (std::size_t idx : indices) {
        requireArg(idx < rows_, "Table::selectRows: index out of range");
        v.push_back(c.numeric[idx]);
      }
      out.addNumeric(c.name, std::move(v));
    } else {
      std::vector<std::string> v;
      v.reserve(indices.size());
      for (std::size_t idx : indices) {
        requireArg(idx < rows_, "Table::selectRows: index out of range");
        v.push_back(c.categorical[idx]);
      }
      out.addCategorical(c.name, std::move(v));
    }
  }
  return out;
}

Table Table::filter(const std::function<bool(std::size_t)>& pred) const {
  return selectRows(which(pred));
}

std::vector<std::size_t> Table::which(
    const std::function<bool(std::size_t)>& pred) const {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < rows_; ++i)
    if (pred(i)) idx.push_back(i);
  return idx;
}

la::Matrix Table::designMatrix(
    const std::vector<std::string>& columns) const {
  requireArg(!columns.empty(), "Table::designMatrix: no columns given");
  la::Matrix x(rows_, columns.size());
  for (std::size_t j = 0; j < columns.size(); ++j) {
    const auto col = numeric(columns[j]);
    for (std::size_t i = 0; i < rows_; ++i) x(i, j) = col[i];
  }
  return x;
}

std::vector<double> Table::distinctNumeric(const std::string& name) const {
  const auto col = numeric(name);
  std::set<double> s(col.begin(), col.end());
  return {s.begin(), s.end()};
}

std::vector<std::string> Table::distinctCategorical(
    const std::string& name) const {
  const auto col = categorical(name);
  std::set<std::string> s(col.begin(), col.end());
  return {s.begin(), s.end()};
}

}  // namespace alperf::data
