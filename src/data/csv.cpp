#include "data/csv.hpp"

#include <charconv>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/error.hpp"

namespace alperf::data {

namespace {

/// Splits one CSV record honouring double-quote quoting. Returns false at
/// end of stream with no record. Quoted cells may contain embedded
/// newlines; this reads additional lines as needed.
bool readRecord(std::istream& in, std::vector<std::string>& cells) {
  cells.clear();
  std::string line;
  if (!std::getline(in, line)) return false;
  std::string cell;
  bool inQuotes = false;
  std::size_t i = 0;
  while (true) {
    if (i >= line.size()) {
      if (inQuotes) {
        // Embedded newline inside a quoted cell.
        cell.push_back('\n');
        if (!std::getline(in, line))
          throw std::invalid_argument("CSV: unterminated quoted cell");
        i = 0;
        continue;
      }
      break;
    }
    const char ch = line[i];
    if (inQuotes) {
      if (ch == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell.push_back('"');
          ++i;
        } else {
          inQuotes = false;
        }
      } else {
        cell.push_back(ch);
      }
    } else if (ch == '"') {
      inQuotes = true;
    } else if (ch == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else if (ch == '\r' && i + 1 == line.size()) {
      // Ignore trailing CR from CRLF files.
    } else {
      cell.push_back(ch);
    }
    ++i;
  }
  cells.push_back(std::move(cell));
  return true;
}

bool parsesAsDouble(const std::string& s) {
  if (s.empty()) return false;
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

std::string quoteIfNeeded(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

Table readCsv(std::istream& in) {
  std::vector<std::string> header;
  if (!readRecord(in, header))
    throw std::invalid_argument("CSV: empty input (no header)");

  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> rec;
  while (readRecord(in, rec)) {
    if (rec.size() == 1 && rec[0].empty()) continue;  // blank line
    requireArg(rec.size() == header.size(),
               "CSV: row with wrong number of cells");
    rows.push_back(rec);
  }

  Table t;
  for (std::size_t j = 0; j < header.size(); ++j) {
    bool numeric = !rows.empty();
    for (const auto& r : rows)
      if (!parsesAsDouble(r[j])) {
        numeric = false;
        break;
      }
    if (numeric) {
      std::vector<double> v;
      v.reserve(rows.size());
      for (const auto& r : rows) {
        double x = 0.0;
        std::from_chars(r[j].data(), r[j].data() + r[j].size(), x);
        v.push_back(x);
      }
      t.addNumeric(header[j], std::move(v));
    } else {
      std::vector<std::string> v;
      v.reserve(rows.size());
      for (const auto& r : rows) v.push_back(r[j]);
      t.addCategorical(header[j], std::move(v));
    }
  }
  return t;
}

Table readCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("CSV: cannot open '" + path + "'");
  return readCsv(in);
}

void writeCsv(const Table& table, std::ostream& out) {
  const auto names = table.columnNames();
  for (std::size_t j = 0; j < names.size(); ++j)
    out << (j ? "," : "") << quoteIfNeeded(names[j]);
  out << '\n';
  std::ostringstream num;
  num.precision(std::numeric_limits<double>::max_digits10);
  for (std::size_t i = 0; i < table.numRows(); ++i) {
    for (std::size_t j = 0; j < table.numCols(); ++j) {
      if (j) out << ',';
      const Column& c = table.column(j);
      if (c.type == ColumnType::Numeric) {
        num.str("");
        num << c.numeric[i];
        out << num.str();
      } else {
        out << quoteIfNeeded(c.categorical[i]);
      }
    }
    out << '\n';
  }
}

void writeCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out)
    throw std::runtime_error("CSV: cannot open '" + path + "' for writing");
  writeCsv(table, out);
}

}  // namespace alperf::data
