#include "data/csv.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/error.hpp"

namespace alperf::data {

namespace {

/// Splits one CSV record honouring double-quote quoting. Returns false at
/// end of stream with no record. Quoted cells may contain embedded
/// newlines; this reads additional lines as needed.
bool readRecord(std::istream& in, std::vector<std::string>& cells) {
  cells.clear();
  std::string line;
  if (!std::getline(in, line)) return false;
  std::string cell;
  bool inQuotes = false;
  std::size_t i = 0;
  while (true) {
    if (i >= line.size()) {
      if (inQuotes) {
        // Embedded newline inside a quoted cell.
        cell.push_back('\n');
        if (!std::getline(in, line))
          throw std::invalid_argument("CSV: unterminated quoted cell");
        i = 0;
        continue;
      }
      break;
    }
    const char ch = line[i];
    if (inQuotes) {
      if (ch == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell.push_back('"');
          ++i;
        } else {
          inQuotes = false;
        }
      } else {
        cell.push_back(ch);
      }
    } else if (ch == '"') {
      inQuotes = true;
    } else if (ch == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else if (ch == '\r' && i + 1 == line.size()) {
      // Ignore trailing CR from CRLF files.
    } else {
      cell.push_back(ch);
    }
    ++i;
  }
  cells.push_back(std::move(cell));
  return true;
}

/// How a cell relates to "numeric": Full = the whole cell is one double;
/// Partial = a numeric prefix followed by junk ("2.5.3") — the signature
/// of a mangled export; None = not numeric at all.
enum class CellParse { Full, Partial, None };

CellParse classifyCell(const std::string& s, double& v) {
  if (s.empty()) return CellParse::None;
  v = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{}) return CellParse::None;
  return ptr == s.data() + s.size() ? CellParse::Full : CellParse::Partial;
}

std::string quoteIfNeeded(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

Table readCsv(std::istream& in, const CsvOptions& options) {
  std::vector<std::string> header;
  if (!readRecord(in, header))
    throw std::invalid_argument("CSV: empty input (no header)");

  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> rec;
  while (readRecord(in, rec)) {
    if (rec.size() == 1 && rec[0].empty()) continue;  // blank line
    requireArg(rec.size() == header.size(),
               "CSV: row with wrong number of cells");
    rows.push_back(rec);
  }

  Table t;
  std::vector<double> values(rows.size());
  for (std::size_t j = 0; j < header.size(); ++j) {
    std::size_t nFull = 0, nPartial = 0, nNone = 0;
    std::size_t firstPartial = rows.size();
    for (std::size_t i = 0; i < rows.size(); ++i) {
      switch (classifyCell(rows[i][j], values[i])) {
        case CellParse::Full:
          ++nFull;
          break;
        case CellParse::Partial:
          ++nPartial;
          if (firstPartial == rows.size()) firstPartial = i;
          break;
        case CellParse::None:
          ++nNone;
          break;
      }
    }
    const bool numeric = !rows.empty() && nFull == rows.size();
    if (numeric) {
      if (options.rejectNonFinite) {
        for (std::size_t i = 0; i < rows.size(); ++i)
          requireArg(std::isfinite(values[i]),
                     "CSV: non-finite value '" + rows[i][j] + "' in column '" +
                         header[j] + "', data row " + std::to_string(i + 1) +
                         " (CsvOptions::rejectNonFinite opts out)");
      }
      t.addNumeric(header[j],
                   std::vector<double>(values.begin(), values.end()));
    } else {
      // A column that is numeric except for numeric-*prefix* cells is a
      // mangled export, not a categorical column; fail loudly at the
      // boundary instead of silently training on strings.
      requireArg(!(options.rejectMalformedNumeric && nPartial > 0 &&
                   nNone == 0),
                 "CSV: malformed numeric value '" +
                     (firstPartial < rows.size() ? rows[firstPartial][j]
                                                 : std::string()) +
                     "' in column '" + header[j] + "', data row " +
                     std::to_string(firstPartial + 1) +
                     " (CsvOptions::rejectMalformedNumeric opts out)");
      std::vector<std::string> v;
      v.reserve(rows.size());
      for (const auto& r : rows) v.push_back(r[j]);
      t.addCategorical(header[j], std::move(v));
    }
  }
  return t;
}

Table readCsv(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("CSV: cannot open '" + path + "'");
  return readCsv(in, options);
}

void writeCsv(const Table& table, std::ostream& out) {
  const auto names = table.columnNames();
  for (std::size_t j = 0; j < names.size(); ++j)
    out << (j ? "," : "") << quoteIfNeeded(names[j]);
  out << '\n';
  std::ostringstream num;
  num.precision(std::numeric_limits<double>::max_digits10);
  for (std::size_t i = 0; i < table.numRows(); ++i) {
    for (std::size_t j = 0; j < table.numCols(); ++j) {
      if (j) out << ',';
      const Column& c = table.column(j);
      if (c.type == ColumnType::Numeric) {
        num.str("");
        num << c.numeric[i];
        out << num.str();
      } else {
        out << quoteIfNeeded(c.categorical[i]);
      }
    }
    out << '\n';
  }
}

void writeCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out)
    throw std::runtime_error("CSV: cannot open '" + path + "' for writing");
  writeCsv(table, out);
}

}  // namespace alperf::data
