#include "data/groupby.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>

#include "common/error.hpp"
#include "stats/descriptive.hpp"

namespace alperf::data {

Table groupByAggregate(const Table& table,
                       const std::vector<std::string>& keyColumns,
                       const std::vector<std::string>& valueColumns) {
  requireArg(!keyColumns.empty(), "groupByAggregate: no key columns");
  requireArg(!valueColumns.empty(), "groupByAggregate: no value columns");
  const std::size_t n = table.numRows();

  // Resolve column kinds up front (also validates names/types).
  struct Key {
    const Column* col;
  };
  std::vector<Key> keys;
  for (const auto& name : keyColumns) keys.push_back({&table.column(name)});
  for (const auto& name : valueColumns)
    (void)table.numeric(name);  // must be numeric

  // Composite group key: stringified cells joined with a separator that
  // cannot appear in a numeric rendering.
  const auto keyOf = [&](std::size_t row) {
    std::string k;
    for (const auto& key : keys) {
      if (key.col->type == ColumnType::Numeric) {
        // Exact representation: levels are exact doubles.
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.17g", key.col->numeric[row]);
        k += buf;
      } else {
        k += key.col->categorical[row];
      }
      k += '\x1f';
    }
    return k;
  };

  std::map<std::string, std::size_t> groupIndex;
  std::vector<std::vector<std::size_t>> groups;  // rows per group
  std::vector<std::size_t> firstRow;
  for (std::size_t i = 0; i < n; ++i) {
    const std::string k = keyOf(i);
    const auto [it, inserted] = groupIndex.try_emplace(k, groups.size());
    if (inserted) {
      groups.emplace_back();
      firstRow.push_back(i);
    }
    groups[it->second].push_back(i);
  }
  // Order groups by first occurrence.
  std::vector<std::size_t> order(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) order[g] = g;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return firstRow[a] < firstRow[b];
  });

  Table out;
  // Key columns.
  for (std::size_t k = 0; k < keys.size(); ++k) {
    if (keys[k].col->type == ColumnType::Numeric) {
      std::vector<double> v;
      v.reserve(groups.size());
      for (std::size_t g : order)
        v.push_back(keys[k].col->numeric[firstRow[g]]);
      out.addNumeric(keyColumns[k], std::move(v));
    } else {
      std::vector<std::string> v;
      v.reserve(groups.size());
      for (std::size_t g : order)
        v.push_back(keys[k].col->categorical[firstRow[g]]);
      out.addCategorical(keyColumns[k], std::move(v));
    }
  }
  // Count.
  {
    std::vector<double> count;
    count.reserve(groups.size());
    for (std::size_t g : order)
      count.push_back(static_cast<double>(groups[g].size()));
    out.addNumeric("Count", std::move(count));
  }
  // Aggregates.
  for (const auto& name : valueColumns) {
    const auto col = table.numeric(name);
    std::vector<double> mean, sd, mn, mx;
    mean.reserve(groups.size());
    sd.reserve(groups.size());
    mn.reserve(groups.size());
    mx.reserve(groups.size());
    for (std::size_t g : order) {
      std::vector<double> vals;
      vals.reserve(groups[g].size());
      for (std::size_t row : groups[g]) vals.push_back(col[row]);
      mean.push_back(stats::mean(vals));
      sd.push_back(vals.size() >= 2 ? stats::sampleStdDev(vals) : 0.0);
      mn.push_back(stats::minValue(vals));
      mx.push_back(stats::maxValue(vals));
    }
    out.addNumeric(name + "_mean", std::move(mean));
    out.addNumeric(name + "_sd", std::move(sd));
    out.addNumeric(name + "_min", std::move(mn));
    out.addNumeric(name + "_max", std::move(mx));
  }
  return out;
}

}  // namespace alperf::data
