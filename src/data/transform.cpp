#include "data/transform.hpp"

#include <cmath>

#include "common/error.hpp"
#include "stats/descriptive.hpp"

namespace alperf::data {

void addLog10Column(Table& table, const std::string& source,
                    const std::string& target) {
  const auto src = table.numeric(source);
  std::vector<double> out(src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    requireArg(src[i] > 0.0, "addLog10Column: values must be > 0");
    out[i] = std::log10(src[i]);
  }
  if (target == source) {
    auto dst = table.numericMutable(source);
    std::copy(out.begin(), out.end(), dst.begin());
  } else {
    table.addNumeric(target, std::move(out));
  }
}

double unlog10(double x) { return std::pow(10.0, x); }

Standardizer standardizeColumn(Table& table, const std::string& name) {
  auto col = table.numericMutable(name);
  requireArg(!col.empty(), "standardizeColumn: empty column");
  Standardizer s;
  s.mean = stats::mean(col);
  s.stdDev = col.size() >= 2 ? stats::sampleStdDev(col) : 0.0;
  if (s.stdDev == 0.0) s.stdDev = 1.0;
  for (double& v : col) v = s.apply(v);
  return s;
}

std::vector<std::string> oneHotEncode(Table& table, const std::string& name) {
  const auto values = table.categorical(name);
  const auto levels = table.distinctCategorical(name);
  std::vector<std::string> newNames;
  newNames.reserve(levels.size());
  for (const auto& level : levels) {
    std::vector<double> col(values.size());
    for (std::size_t i = 0; i < values.size(); ++i)
      col[i] = values[i] == level ? 1.0 : 0.0;
    std::string colName = name + "=" + level;
    table.addNumeric(colName, std::move(col));
    newNames.push_back(std::move(colName));
  }
  table.removeColumn(name);
  return newNames;
}

}  // namespace alperf::data
