#include "data/partition.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "stats/sampling.hpp"

namespace alperf::data {

TriPartition triPartition(std::size_t nRows, std::size_t nInitial,
                          double activeFraction, stats::Rng& rng) {
  requireArg(nInitial >= 1, "triPartition: need at least one initial row");
  requireArg(nInitial + 2 <= nRows,
             "triPartition: need at least one active and one test row");
  requireArg(activeFraction > 0.0 && activeFraction < 1.0,
             "triPartition: activeFraction must be in (0, 1)");

  auto perm = stats::permutation(nRows, rng);
  TriPartition p;
  p.initial.assign(perm.begin(),
                   perm.begin() + static_cast<std::ptrdiff_t>(nInitial));
  const std::size_t rest = nRows - nInitial;
  std::size_t nActive = static_cast<std::size_t>(
      std::llround(activeFraction * static_cast<double>(rest)));
  nActive = std::clamp<std::size_t>(nActive, 1, rest - 1);
  p.active.assign(
      perm.begin() + static_cast<std::ptrdiff_t>(nInitial),
      perm.begin() + static_cast<std::ptrdiff_t>(nInitial + nActive));
  p.test.assign(perm.begin() + static_cast<std::ptrdiff_t>(nInitial + nActive),
                perm.end());
  return p;
}

}  // namespace alperf::data
