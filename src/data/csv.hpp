#pragma once

/// \file csv.hpp
/// Minimal CSV reader/writer for Table — the paper publishes its job
/// database as CSV, and the benches dump reproducible artifacts in the
/// same format. Supports RFC-4180-style double-quote quoting for cells
/// containing commas, quotes, or newlines.

#include <iosfwd>
#include <string>

#include "data/table.hpp"

namespace alperf::data {

/// Reads a CSV with a header row. Column types are inferred: a column is
/// Numeric iff every cell parses as a double, else Categorical.
/// Throws std::invalid_argument on ragged rows and std::runtime_error if
/// the file cannot be opened.
Table readCsv(const std::string& path);

/// Reads CSV from an already-open stream (same rules as readCsv).
Table readCsv(std::istream& in);

/// Writes a table as CSV with a header row. Numeric cells use max
/// round-trip precision. Throws std::runtime_error if the file cannot
/// be opened for writing.
void writeCsv(const Table& table, const std::string& path);

void writeCsv(const Table& table, std::ostream& out);

}  // namespace alperf::data
