#pragma once

/// \file csv.hpp
/// Minimal CSV reader/writer for Table — the paper publishes its job
/// database as CSV, and the benches dump reproducible artifacts in the
/// same format. Supports RFC-4180-style double-quote quoting for cells
/// containing commas, quotes, or newlines.

#include <iosfwd>
#include <string>

#include "data/table.hpp"

namespace alperf::data {

/// Validation knobs for readCsv. The defaults reject data that would
/// poison downstream numerics at the load boundary, with row/column
/// diagnostics — far cheaper to debug than a NaN surfacing in a Cholesky
/// three layers later.
struct CsvOptions {
  /// Reject NaN/Inf values in numeric columns. Opt out for files that
  /// legitimately carry them (e.g. archived learning traces, where a
  /// prior-only degraded iteration records LML = -inf).
  bool rejectNonFinite = true;
  /// Reject cells that parse only as a numeric *prefix* (e.g. "2.5.3",
  /// "1e") in columns where every other cell is numeric — almost always a
  /// mangled export rather than an intentional categorical column.
  /// Columns with any fully non-numeric cell are untouched (they are
  /// ordinary categorical columns).
  bool rejectMalformedNumeric = true;
};

/// Reads a CSV with a header row. Column types are inferred: a column is
/// Numeric iff every cell parses as a double, else Categorical.
/// Throws std::invalid_argument on ragged rows, non-finite or malformed
/// numeric cells (see CsvOptions; diagnostics name the column and 1-based
/// data row), and std::runtime_error if the file cannot be opened.
Table readCsv(const std::string& path, const CsvOptions& options = {});

/// Reads CSV from an already-open stream (same rules as readCsv).
Table readCsv(std::istream& in, const CsvOptions& options = {});

/// Writes a table as CSV with a header row. Numeric cells use max
/// round-trip precision. Throws std::runtime_error if the file cannot
/// be opened for writing.
void writeCsv(const Table& table, const std::string& path);

void writeCsv(const Table& table, std::ostream& out);

}  // namespace alperf::data
