#include "data/doe.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "stats/sampling.hpp"

namespace alperf::data {

la::Matrix fullFactorial(const std::vector<std::vector<double>>& levels) {
  requireArg(!levels.empty(), "fullFactorial: no factors");
  std::size_t rows = 1;
  for (const auto& l : levels) {
    requireArg(!l.empty(), "fullFactorial: factor with no levels");
    rows *= l.size();
  }
  la::Matrix design(rows, levels.size());
  for (std::size_t r = 0; r < rows; ++r) {
    std::size_t rem = r;
    // Last factor varies fastest (odometer order).
    for (std::size_t j = levels.size(); j-- > 0;) {
      design(r, j) = levels[j][rem % levels[j].size()];
      rem /= levels[j].size();
    }
  }
  return design;
}

la::Matrix twoLevelFactorial(std::size_t k) {
  requireArg(k >= 1 && k < 24, "twoLevelFactorial: k out of range");
  return fullFactorial(
      std::vector<std::vector<double>>(k, {-1.0, 1.0}));
}

la::Matrix fractionalFactorial(
    std::size_t k, const std::vector<std::vector<std::size_t>>& generators) {
  const std::size_t p = generators.size();
  requireArg(p >= 1 && p < k, "fractionalFactorial: need 1 <= p < k");
  const std::size_t base = k - p;
  const la::Matrix baseDesign = twoLevelFactorial(base);
  la::Matrix design(baseDesign.rows(), k);
  for (std::size_t r = 0; r < baseDesign.rows(); ++r) {
    for (std::size_t j = 0; j < base; ++j) design(r, j) = baseDesign(r, j);
    for (std::size_t g = 0; g < p; ++g) {
      requireArg(!generators[g].empty(),
                 "fractionalFactorial: empty generator");
      double v = 1.0;
      for (std::size_t idx : generators[g]) {
        requireArg(idx < base,
                   "fractionalFactorial: generator over non-base column");
        v *= baseDesign(r, idx);
      }
      design(r, base + g) = v;
    }
  }
  return design;
}

la::Matrix latinHypercube(std::size_t n, std::size_t d, stats::Rng& rng,
                          int candidates) {
  requireArg(n >= 1 && d >= 1, "latinHypercube: need n, d >= 1");
  requireArg(candidates >= 1, "latinHypercube: candidates must be >= 1");

  const auto makeOne = [&] {
    la::Matrix design(n, d);
    for (std::size_t j = 0; j < d; ++j) {
      auto perm = stats::permutation(n, rng);
      for (std::size_t i = 0; i < n; ++i)
        design(i, j) =
            (static_cast<double>(perm[i]) + rng.uniform01()) /
            static_cast<double>(n);
    }
    return design;
  };
  const auto minPairDist = [&](const la::Matrix& m) {
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < m.rows(); ++i)
      for (std::size_t j = i + 1; j < m.rows(); ++j)
        best = std::min(best, la::squaredDistance(m.row(i), m.row(j)));
    return best;
  };

  la::Matrix best = makeOne();
  double bestScore = minPairDist(best);
  for (int c = 1; c < candidates; ++c) {
    la::Matrix cand = makeOne();
    const double score = minPairDist(cand);
    if (score > bestScore) {
      bestScore = score;
      best = std::move(cand);
    }
  }
  return best;
}

void scaleToBounds(la::Matrix& design, std::span<const double> lo,
                   std::span<const double> hi) {
  requireArg(lo.size() == design.cols() && hi.size() == design.cols(),
             "scaleToBounds: bounds dimension mismatch");
  for (std::size_t j = 0; j < design.cols(); ++j) {
    requireArg(lo[j] <= hi[j], "scaleToBounds: lo > hi");
    for (std::size_t i = 0; i < design.rows(); ++i)
      design(i, j) = lo[j] + (hi[j] - lo[j]) * design(i, j);
  }
}

std::vector<std::size_t> nearestPoolRows(const la::Matrix& pool,
                                         const la::Matrix& design) {
  requireArg(pool.cols() == design.cols(),
             "nearestPoolRows: dimension mismatch");
  requireArg(design.rows() <= pool.rows(),
             "nearestPoolRows: design larger than pool");

  // Min-max normalization per column so distances are scale-free.
  la::Vector lo(pool.cols(), std::numeric_limits<double>::infinity());
  la::Vector hi(pool.cols(), -std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < pool.rows(); ++i)
    for (std::size_t j = 0; j < pool.cols(); ++j) {
      lo[j] = std::min(lo[j], pool(i, j));
      hi[j] = std::max(hi[j], pool(i, j));
    }
  const auto normalize = [&](double v, std::size_t j) {
    return hi[j] > lo[j] ? (v - lo[j]) / (hi[j] - lo[j]) : 0.0;
  };

  std::vector<char> taken(pool.rows(), 0);
  std::vector<std::size_t> out;
  out.reserve(design.rows());
  for (std::size_t r = 0; r < design.rows(); ++r) {
    double bestDist = std::numeric_limits<double>::infinity();
    std::size_t best = pool.rows();
    for (std::size_t i = 0; i < pool.rows(); ++i) {
      if (taken[i]) continue;
      double d2 = 0.0;
      for (std::size_t j = 0; j < pool.cols(); ++j) {
        const double diff =
            normalize(pool(i, j), j) - normalize(design(r, j), j);
        d2 += diff * diff;
      }
      if (d2 < bestDist) {
        bestDist = d2;
        best = i;
      }
    }
    ALPERF_ASSERT(best < pool.rows(), "nearestPoolRows: pool exhausted");
    taken[best] = 1;
    out.push_back(best);
  }
  return out;
}

}  // namespace alperf::data
