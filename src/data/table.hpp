#pragma once

/// \file table.hpp
/// Column-typed in-memory table: the job database abstraction.
///
/// A Table holds named columns, each either Numeric (double) or Categorical
/// (string). It is the interchange format between the cluster substrate
/// (which generates job records), the data transforms, and the GP/AL stack
/// (which consumes numeric design matrices).

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "la/matrix.hpp"

namespace alperf::data {

enum class ColumnType { Numeric, Categorical };

/// One named, typed column. Exactly one of the two value vectors is used,
/// according to `type`.
struct Column {
  std::string name;
  ColumnType type = ColumnType::Numeric;
  std::vector<double> numeric;
  std::vector<std::string> categorical;

  std::size_t size() const {
    return type == ColumnType::Numeric ? numeric.size() : categorical.size();
  }
};

class Table {
 public:
  Table() = default;

  /// Adds a numeric column; if the table is non-empty the length must match.
  void addNumeric(std::string name, std::vector<double> values);

  /// Adds a categorical column; length rules as addNumeric.
  void addCategorical(std::string name, std::vector<std::string> values);

  /// Adds an empty column of the given type (only valid on an empty table
  /// or together with appendRow-based construction).
  void addEmptyColumn(std::string name, ColumnType type);

  std::size_t numRows() const { return rows_; }
  std::size_t numCols() const { return cols_.size(); }
  bool empty() const { return rows_ == 0; }

  bool hasColumn(const std::string& name) const;
  /// Index of the named column; throws std::invalid_argument if absent.
  std::size_t columnIndex(const std::string& name) const;
  const Column& column(std::size_t i) const;
  const Column& column(const std::string& name) const;
  std::vector<std::string> columnNames() const;

  /// Numeric column values; throws if the column is categorical.
  std::span<const double> numeric(const std::string& name) const;
  /// Categorical column values; throws if the column is numeric.
  std::span<const std::string> categorical(const std::string& name) const;

  /// Mutable access to a numeric column (for in-place transforms).
  std::span<double> numericMutable(const std::string& name);

  /// Appends one row given per-column cell strings; numeric cells are
  /// parsed as double. Column count must match.
  void appendRow(const std::vector<std::string>& cells);

  /// Removes the named column; throws std::invalid_argument if absent.
  void removeColumn(const std::string& name);

  /// New table with only the given rows (in the given order; repeats OK).
  Table selectRows(std::span<const std::size_t> indices) const;

  /// New table with rows where pred(rowIndex) is true.
  Table filter(const std::function<bool(std::size_t)>& pred) const;

  /// Row indices where pred(rowIndex) is true.
  std::vector<std::size_t> which(
      const std::function<bool(std::size_t)>& pred) const;

  /// Design matrix with one row per table row and the given numeric columns.
  la::Matrix designMatrix(const std::vector<std::string>& columns) const;

  /// Sorted distinct values of a numeric column.
  std::vector<double> distinctNumeric(const std::string& name) const;

  /// Sorted distinct values of a categorical column.
  std::vector<std::string> distinctCategorical(const std::string& name) const;

 private:
  Column& columnMutable(const std::string& name);
  void checkNewColumnLength(std::size_t len) const;

  std::vector<Column> cols_;
  std::size_t rows_ = 0;
};

}  // namespace alperf::data
