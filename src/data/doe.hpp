#pragma once

/// \file doe.hpp
/// Classic static experiment designs (design of experiments) — the
/// alternatives the paper positions itself against (Sec. II-B, citing
/// Jain's classes: simple designs, 2^k full factorial, 2^(k-p) fractional
/// factorial) plus Latin hypercube sampling. These are *static*: the
/// experiment set is fixed a priori and never adapts to measurements,
/// which is exactly the inefficiency AL addresses. The ablation bench
/// compares them against AL at equal budgets.

#include <vector>

#include "la/matrix.hpp"
#include "stats/rng.hpp"

namespace alperf::data {

/// Full factorial: one design row per combination of the given per-factor
/// level lists (each factor must have at least one level).
la::Matrix fullFactorial(const std::vector<std::vector<double>>& levels);

/// 2^k full factorial in coded units (-1 / +1), k >= 1.
la::Matrix twoLevelFactorial(std::size_t k);

/// 2^(k-p) fractional factorial in coded units. The first k-p columns
/// form a full two-level factorial; column k-p+j is generated as the
/// elementwise product of the base columns listed in generators[j]
/// (classic design generators, e.g. D = ABC). Requires p >= 1 and
/// non-empty generator sets over valid base columns.
la::Matrix fractionalFactorial(std::size_t k,
                               const std::vector<std::vector<std::size_t>>&
                                   generators);

/// Maximin Latin hypercube: n points in [0,1)^d, one stratum per point
/// and dimension; the best of `candidates` random hypercubes by minimum
/// pairwise distance is returned.
la::Matrix latinHypercube(std::size_t n, std::size_t d, stats::Rng& rng,
                          int candidates = 10);

/// Affinely rescales unit-cube design rows into [lo, hi] per column.
void scaleToBounds(la::Matrix& design, std::span<const double> lo,
                   std::span<const double> hi);

/// Matches each design point to its nearest pool row (Euclidean distance
/// on per-column min-max-normalized coordinates), without replacement —
/// used to execute a static design against a finite job database.
/// Requires design.rows() <= pool.rows().
std::vector<std::size_t> nearestPoolRows(const la::Matrix& pool,
                                         const la::Matrix& design);

}  // namespace alperf::data
