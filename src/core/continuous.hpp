#pragma once

/// \file continuous.hpp
/// Continuous-candidate active learning — the paper's Sec. VI future
/// work: "Realistic simulations often involve continuous or
/// near-continuous parameters, such that the active set cannot be treated
/// as finite. We expect that this could be handled ... preferably, by
/// using continuous optimization. Gradient-based methods, which are
/// available with GPR, would provide an important benefit".
///
/// suggestContinuous() maximizes an acquisition over a continuous box via
/// multi-start quasi-Newton ascent on the (smooth) GP posterior, and
/// runContinuousAl() wraps it into an online loop against a caller-
/// supplied measurement oracle, using the O(n²) incremental GP update
/// between hyperparameter refits.

#include <functional>

#include "core/executor.hpp"
#include "core/learner.hpp"
#include "gp/gp.hpp"
#include "opt/gradient.hpp"

namespace alperf::al {

/// Acquisition value from the predictive (mean, sd) at a point; higher
/// is better.
using AcquisitionFn = std::function<double(double mean, double sd)>;

/// The paper's two acquisitions in continuous form.
AcquisitionFn varianceAcquisition();        ///< a = sd
AcquisitionFn costEfficiencyAcquisition();  ///< a = sd − mean (eq. 14)

/// The best point the acquisition search found, with the posterior it
/// saw there.
struct ContinuousSuggestion {
  std::vector<double> x;       ///< suggested input (inside the box)
  double acquisition = 0.0;    ///< acquisition value at x
  double mean = 0.0;           ///< predictive mean at x
  double sd = 0.0;             ///< predictive SD at x
};

/// Maximizes `acq` over the box with `nStarts` random multi-starts of
/// box-constrained L-BFGS. The GP must be fitted; bounds must be finite
/// and match its input dimension.
ContinuousSuggestion suggestContinuous(const gp::GaussianProcess& gp,
                                       const opt::BoxBounds& bounds,
                                       const AcquisitionFn& acq,
                                       int nStarts, stats::Rng& rng);

/// Acquisition with analytic partial derivatives with respect to the
/// predictive (mean, sd) — combined with the GP's analytic posterior
/// input-gradients this gives fully gradient-based suggestions (no finite
/// differences anywhere in the chain).
struct GradientAcquisition {
  AcquisitionFn value;
  /// Returns {∂a/∂µ, ∂a/∂σ} at the given (mean, sd).
  std::function<std::pair<double, double>(double mean, double sd)> partials;
};

GradientAcquisition varianceAcquisitionGrad();        ///< a = σ
GradientAcquisition costEfficiencyAcquisitionGrad();  ///< a = σ − µ

/// Gradient-based variant of suggestContinuous: same multi-start L-BFGS,
/// but value and gradient come from one analytic posterior evaluation.
ContinuousSuggestion suggestContinuous(const gp::GaussianProcess& gp,
                                       const opt::BoxBounds& bounds,
                                       const GradientAcquisition& acq,
                                       int nStarts, stats::Rng& rng);

// The measurement backend is the al::Oracle class (core/oracle.hpp),
// shared with the pool-based learner. Plain `double(std::span<const
// double>)` callables still convert implicitly — the class wraps them and
// throws std::invalid_argument on a NaN/Inf response; backends that can
// legitimately fail return Measurement instead and go through the
// RetryPolicy overload.

/// Loop controls for the online continuous-candidate learner.
struct ContinuousAlConfig {
  int iterations = 30;  ///< experiments to run after the seed set
  int nStarts = 8;      ///< multi-starts per acquisition maximization
  /// Full hyperparameter refit cadence; between refits the GP is updated
  /// incrementally in O(n²).
  int refitEvery = 5;
  /// Fallible path only: stop with StopReason::OracleExhausted after this
  /// many *consecutive* suggestions whose retries were all exhausted (the
  /// backend is evidently down; measuring further would only burn budget).
  int maxConsecutiveFailures = 3;

  /// Numerical self-healing knobs — same ladder and semantics as
  /// AlConfig (docs/ROBUSTNESS.md): more than `maxConsecutiveDegraded`
  /// consecutive prior-only iterations stop the loop with
  /// StopReason::ModelUnhealthy; `recoveryJitterScale` is the escalated
  /// Cholesky jitter cap of the retry rung; the wall-clock watchdog stops
  /// with StopReason::WatchdogExpired (infinity disables).
  int maxConsecutiveDegraded = 2;
  double recoveryJitterScale = 1e-2;
  double wallClockBudgetSec = std::numeric_limits<double>::infinity();

  /// Execution engine controls (executor.hpp). `execution.maxInFlight > 1`
  /// routes the fallible loop through the asynchronous dispatch engine
  /// (core/dispatch.hpp): up to that many measurements run concurrently
  /// while new suggestions are made against a fantasy posterior
  /// conditioned on the pending points at their predictive means.
  /// `execution.retry` is overridden by the RetryPolicy parameter of the
  /// fallible overload.
  ExecutionConfig execution;
};

/// One online iteration: where the learner went and what it measured.
struct ContinuousAlRecord {
  std::vector<double> x;     ///< measured input
  double y = 0.0;            ///< measured response (lower bound if censored)
  double sdAtPick = 0.0;     ///< predictive SD at x before measuring
  double acquisition = 0.0;  ///< acquisition value that won the search
  /// Fault accounting (always 0 on the infallible path); mirrors
  /// IterationRecord's semantics.
  double failedAttempts = 0.0;
  double wastedCost = 0.0;
  double censored = 0.0;
  /// False when retries were exhausted: x was never measured and y is
  /// meaningless; the GP was not updated this iteration.
  bool measured = true;
};

/// Full online trace plus the final model and fault accounting.
struct ContinuousAlResult {
  std::vector<ContinuousAlRecord> history;
  gp::GaussianProcess finalGp;  ///< trained on seed + measured points
  /// MaxIterations on a completed run; OracleExhausted when the loop gave
  /// up after maxConsecutiveFailures unmeasurable suggestions.
  StopReason stopReason = StopReason::MaxIterations;
  /// Refits that rolled back to the last good hyperparameters because the
  /// fresh fit's LML was non-finite or its Cholesky failed.
  int fitFallbacks = 0;
  /// Total cost burned by failed attempts (incl. backoff surcharges).
  double wastedCost = 0.0;
};

/// Online loop: seed the GP with (seedX, seedY), then repeatedly suggest
/// a continuous point, measure it through the oracle, and update.
ContinuousAlResult runContinuousAl(gp::GaussianProcess gp, la::Matrix seedX,
                                   la::Vector seedY,
                                   const opt::BoxBounds& bounds,
                                   const Oracle& oracle,
                                   const AcquisitionFn& acq,
                                   const ContinuousAlConfig& config,
                                   stats::Rng& rng);

/// Fault-tolerant variant: measurements flow through the retry state
/// machine under `policy` (which overrides config.execution.retry).
/// Failed suggestions burn cost but do not update the GP; censored
/// measurements train on their lower bound; a refit whose LML diverges
/// falls back to the last good hyperparameters. With
/// config.execution.maxInFlight > 1 measurements are dispatched
/// asynchronously; records stay in suggestion order.
ContinuousAlResult runContinuousAl(gp::GaussianProcess gp, la::Matrix seedX,
                                   la::Vector seedY,
                                   const opt::BoxBounds& bounds,
                                   const Oracle& oracle,
                                   const RetryPolicy& policy,
                                   const AcquisitionFn& acq,
                                   const ContinuousAlConfig& config,
                                   stats::Rng& rng);

}  // namespace alperf::al
