#pragma once

/// \file continuous.hpp
/// Continuous-candidate active learning — the paper's Sec. VI future
/// work: "Realistic simulations often involve continuous or
/// near-continuous parameters, such that the active set cannot be treated
/// as finite. We expect that this could be handled ... preferably, by
/// using continuous optimization. Gradient-based methods, which are
/// available with GPR, would provide an important benefit".
///
/// suggestContinuous() maximizes an acquisition over a continuous box via
/// multi-start quasi-Newton ascent on the (smooth) GP posterior, and
/// runContinuousAl() wraps it into an online loop against a caller-
/// supplied measurement oracle, using the O(n²) incremental GP update
/// between hyperparameter refits.

#include <functional>

#include "core/executor.hpp"
#include "core/learner.hpp"
#include "gp/gp.hpp"
#include "opt/gradient.hpp"

namespace alperf::al {

/// Acquisition value from the predictive (mean, sd) at a point; higher
/// is better.
using AcquisitionFn = std::function<double(double mean, double sd)>;

/// The paper's two acquisitions in continuous form.
AcquisitionFn varianceAcquisition();        ///< a = sd
AcquisitionFn costEfficiencyAcquisition();  ///< a = sd − mean (eq. 14)

struct ContinuousSuggestion {
  std::vector<double> x;
  double acquisition = 0.0;
  double mean = 0.0;
  double sd = 0.0;
};

/// Maximizes `acq` over the box with `nStarts` random multi-starts of
/// box-constrained L-BFGS. The GP must be fitted; bounds must be finite
/// and match its input dimension.
ContinuousSuggestion suggestContinuous(const gp::GaussianProcess& gp,
                                       const opt::BoxBounds& bounds,
                                       const AcquisitionFn& acq,
                                       int nStarts, stats::Rng& rng);

/// Acquisition with analytic partial derivatives with respect to the
/// predictive (mean, sd) — combined with the GP's analytic posterior
/// input-gradients this gives fully gradient-based suggestions (no finite
/// differences anywhere in the chain).
struct GradientAcquisition {
  AcquisitionFn value;
  /// Returns {∂a/∂µ, ∂a/∂σ} at the given (mean, sd).
  std::function<std::pair<double, double>(double mean, double sd)> partials;
};

GradientAcquisition varianceAcquisitionGrad();        ///< a = σ
GradientAcquisition costEfficiencyAcquisitionGrad();  ///< a = σ − µ

/// Gradient-based variant of suggestContinuous: same multi-start L-BFGS,
/// but value and gradient come from one analytic posterior evaluation.
ContinuousSuggestion suggestContinuous(const gp::GaussianProcess& gp,
                                       const opt::BoxBounds& bounds,
                                       const GradientAcquisition& acq,
                                       int nStarts, stats::Rng& rng);

/// Ground-truth measurement: given x, run the experiment and return y.
/// Must return a finite value; runContinuousAl throws
/// std::invalid_argument on NaN/Inf (use the FallibleOracle overload for
/// backends that can fail).
using Oracle = std::function<double(std::span<const double>)>;

struct ContinuousAlConfig {
  int iterations = 30;
  int nStarts = 8;
  /// Full hyperparameter refit cadence; between refits the GP is updated
  /// incrementally in O(n²).
  int refitEvery = 5;
  /// Fallible path only: stop with StopReason::OracleExhausted after this
  /// many *consecutive* suggestions whose retries were all exhausted (the
  /// backend is evidently down; measuring further would only burn budget).
  int maxConsecutiveFailures = 3;
};

struct ContinuousAlRecord {
  std::vector<double> x;
  double y = 0.0;
  double sdAtPick = 0.0;
  double acquisition = 0.0;
  /// Fault accounting (always 0 on the infallible path); mirrors
  /// IterationRecord's semantics.
  double failedAttempts = 0.0;
  double wastedCost = 0.0;
  double censored = 0.0;
  /// False when retries were exhausted: x was never measured and y is
  /// meaningless; the GP was not updated this iteration.
  bool measured = true;
};

struct ContinuousAlResult {
  std::vector<ContinuousAlRecord> history;
  gp::GaussianProcess finalGp;
  /// MaxIterations on a completed run; OracleExhausted when the loop gave
  /// up after maxConsecutiveFailures unmeasurable suggestions.
  StopReason stopReason = StopReason::MaxIterations;
  /// Refits that rolled back to the last good hyperparameters because the
  /// fresh fit's LML was non-finite or its Cholesky failed.
  int fitFallbacks = 0;
  /// Total cost burned by failed attempts (incl. backoff surcharges).
  double wastedCost = 0.0;
};

/// Online loop: seed the GP with (seedX, seedY), then repeatedly suggest
/// a continuous point, measure it through the oracle, and update.
ContinuousAlResult runContinuousAl(gp::GaussianProcess gp, la::Matrix seedX,
                                   la::Vector seedY,
                                   const opt::BoxBounds& bounds,
                                   const Oracle& oracle,
                                   const AcquisitionFn& acq,
                                   const ContinuousAlConfig& config,
                                   stats::Rng& rng);

/// Fault-tolerant variant: measurements flow through an
/// ExperimentExecutor under `policy`. Failed suggestions burn cost but do
/// not update the GP; censored measurements train on their lower bound; a
/// refit whose LML diverges falls back to the last good hyperparameters.
ContinuousAlResult runContinuousAl(gp::GaussianProcess gp, la::Matrix seedX,
                                   la::Vector seedY,
                                   const opt::BoxBounds& bounds,
                                   const FallibleOracle& oracle,
                                   const RetryPolicy& policy,
                                   const AcquisitionFn& acq,
                                   const ContinuousAlConfig& config,
                                   stats::Rng& rng);

}  // namespace alperf::al
