#include "core/dispatch.hpp"

#include <algorithm>
#include <condition_variable>
#include <string>
#include <thread>

#include "common/perf_stats.hpp"
#include "common/thread_annotations.hpp"
#include "common/trace.hpp"

namespace alperf::al {

/// One uncommitted submission. Identity fields are written by the
/// coordinating thread before the job enters the pending list; `claimed`,
/// `done` and `result` are handed between one slot thread and the
/// committer under State::mu.
struct AsyncDispatcher::Job {
  std::uint64_t ticket = 0;
  std::size_t row = kNoRow;
  std::vector<double> x;
  /// Backend ticket when the oracle is natively async: submit() already
  /// handed the experiment to the backend, so the first attempt awaits
  /// this ticket; retries re-submit from the slot thread.
  std::uint64_t backendTicket = 0;
  bool hasBackendTicket = false;
  bool claimed = false;
  bool done = false;
  ExecutionResult result;
};

struct AsyncDispatcher::State {
  mutable Mutex mu;
  std::condition_variable_any wake;      ///< slots: work arrived / stopping
  std::condition_variable_any finished;  ///< committer: a slot finished a job
  /// Uncommitted jobs in submission order (front = oldest). unique_ptr
  /// keeps each Job's address stable for the slot that claimed it while
  /// commits shift the list.
  std::vector<std::unique_ptr<Job>> pending ALPERF_GUARDED_BY(mu);
  /// Coordinator-confined: written under mu only because spawning happens
  /// inside submit's critical section; read (for join) exclusively by the
  /// coordinating thread after stop is published, when no slot can spawn.
  std::vector<std::thread> slots;
  std::size_t idleSlots ALPERF_GUARDED_BY(mu) = 0;
  std::uint64_t nextTicket ALPERF_GUARDED_BY(mu) = 0;
  bool stop ALPERF_GUARDED_BY(mu) = false;

  /// Ledger; written only by commitNext, in commit order.
  double totalWastedCost ALPERF_GUARDED_BY(mu) = 0.0;
  int totalFailedAttempts ALPERF_GUARDED_BY(mu) = 0;
  int totalQuarantined ALPERF_GUARDED_BY(mu) = 0;
};

AsyncDispatcher::AsyncDispatcher(Oracle oracle, ExecutionConfig config)
    : oracle_(std::move(oracle)),
      config_(config),
      state_(std::make_unique<State>()) {
  config_.validate();
  requireArg(static_cast<bool>(oracle_),
             "AsyncDispatcher: oracle has no measure capability");
}

AsyncDispatcher::~AsyncDispatcher() {
  {
    MutexLock lk(state_->mu);
    state_->stop = true;
  }
  state_->wake.notify_all();
  for (auto& slot : state_->slots) slot.join();
}

std::size_t AsyncDispatcher::inFlight() const {
  MutexLock lk(state_->mu);
  return state_->pending.size();
}

std::uint64_t AsyncDispatcher::submit(std::size_t row,
                                      std::span<const double> x) {
  State& st = *state_;
  trace::Span span("exec.dispatch");
  auto job = std::make_unique<Job>();
  job->row = row;
  job->x.assign(x.begin(), x.end());
  // Natively asynchronous backends get the experiment immediately, on the
  // coordinating thread, so the backend can start before a slot is free
  // to park on it.
  if (oracle_.hasAsync()) {
    job->backendTicket = oracle_.submit(row, job->x);
    job->hasBackendTicket = true;
  }

  std::size_t inflightNow = 0;
  std::uint64_t ticket = 0;
  {
    MutexLock lk(st.mu);
    ALPERF_ASSERT(
        st.pending.size() < static_cast<std::size_t>(config_.maxInFlight),
        "AsyncDispatcher::submit: dispatcher is full");
    ticket = st.nextTicket++;
    job->ticket = ticket;
    st.pending.push_back(std::move(job));
    inflightNow = st.pending.size();
    // Lazy slot spawning, biased toward spawning: a slot that was just
    // notified still counts as idle until it reacquires the lock, so the
    // unclaimed-vs-idle comparison can only over-provision (bounded by
    // maxInFlight), never strand a job with no slot to run it.
    const std::size_t unclaimed = static_cast<std::size_t>(
        std::count_if(st.pending.begin(), st.pending.end(),
                      [](const auto& j) { return !j->claimed; }));
    if (unclaimed > st.idleSlots &&
        st.slots.size() < static_cast<std::size_t>(config_.maxInFlight)) {
      const int slotId = static_cast<int>(st.slots.size());
      st.slots.emplace_back(&AsyncDispatcher::slotMain, this, slotId);
    }
  }
  st.wake.notify_one();

  PerfRegistry::instance().increment("exec.async.submitted");
  trace::counter("exec.async.inflight",
                 static_cast<double>(inflightNow));
  span.note("ticket", static_cast<unsigned long long>(ticket))
      .note("inflight", inflightNow);
  if (row != kNoRow) span.note("row", row);
  return ticket;
}

AsyncDispatcher::Committed AsyncDispatcher::commitNext() {
  State& st = *state_;
  // Time spent blocked on the pipeline head — the async analogue of the
  // synchronous path's whole exec.measure latency being on the loop.
  ScopedTimer timer("exec.async.commitwait");
  std::unique_ptr<Job> job;
  std::size_t remaining = 0;
  {
    UniqueLock lk(st.mu);
    ALPERF_ASSERT(!st.pending.empty(),
                  "AsyncDispatcher::commitNext: nothing in flight");
    st.finished.wait(lk, [&st] { return st.pending.front()->done; });
    job = std::move(st.pending.front());
    st.pending.erase(st.pending.begin());
    remaining = st.pending.size();
    st.totalWastedCost += job->result.wastedCost;
    if (job->result.quarantined) {
      st.totalFailedAttempts += job->result.attempts;
      ++st.totalQuarantined;
    } else {
      st.totalFailedAttempts += job->result.attempts - 1;
    }
  }
  PerfRegistry::instance().increment("exec.async.committed");
  if (job->result.quarantined)
    PerfRegistry::instance().increment("exec.async.quarantined");
  trace::counter("exec.async.inflight", static_cast<double>(remaining));

  Committed out;
  out.ticket = job->ticket;
  out.row = job->row;
  out.x = std::move(job->x);
  out.result = std::move(job->result);
  return out;
}

double AsyncDispatcher::totalWastedCost() const {
  MutexLock lk(state_->mu);
  return state_->totalWastedCost;
}

int AsyncDispatcher::totalFailedAttempts() const {
  MutexLock lk(state_->mu);
  return state_->totalFailedAttempts;
}

int AsyncDispatcher::totalQuarantined() const {
  MutexLock lk(state_->mu);
  return state_->totalQuarantined;
}

void AsyncDispatcher::slotMain(int slot) {
  trace::nameCurrentThread("exec.slot." + std::to_string(slot));
  State& st = *state_;
  UniqueLock lk(st.mu);
  while (true) {
    if (st.stop) return;  // unclaimed jobs are dropped, never started
    Job* job = nullptr;
    for (const auto& j : st.pending) {
      if (!j->claimed) {
        job = j.get();
        break;
      }
    }
    if (job == nullptr) {
      ++st.idleSlots;
      st.wake.wait(lk);
      --st.idleSlots;
      continue;
    }
    job->claimed = true;
    lk.unlock();

    ExecutionResult result;
    {
      trace::Span span("exec.inflight");
      span.note("ticket", static_cast<unsigned long long>(job->ticket))
          .note("slot", slot);
      bool firstAttempt = true;
      result = runWithRetries(config_.retry, [&] {
        if (!oracle_.hasAsync()) return oracle_.measureAny(job->row, job->x);
        if (firstAttempt && job->hasBackendTicket) {
          firstAttempt = false;
          return oracle_.await(job->backendTicket);
        }
        firstAttempt = false;
        return oracle_.await(oracle_.submit(job->row, job->x));
      });
      span.note("outcome", result.quarantined ? "quarantined" : "committed")
          .note("attempts", result.attempts);
    }

    lk.lock();
    job->result = std::move(result);
    job->done = true;
    st.finished.notify_all();
  }
}

}  // namespace alperf::al
