#include "core/problem.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace alperf::al {

void RegressionProblem::validate() const {
  requireArg(x.rows() == y.size(),
             "RegressionProblem: X rows and y length differ");
  requireArg(cost.size() == y.size(),
             "RegressionProblem: cost length and y length differ");
  requireArg(!y.empty(), "RegressionProblem: empty problem");
  requireArg(x.cols() > 0, "RegressionProblem: no features");
  // A NaN/Inf response or cost would poison the GP's Cholesky (or the
  // budget ledger) many iterations after the bad row was consumed; reject
  // it at construction, where the row index is still known.
  for (std::size_t i = 0; i < y.size(); ++i) {
    requireArg(std::isfinite(y[i]),
               "RegressionProblem: non-finite response at row " +
                   std::to_string(i));
    requireArg(std::isfinite(cost[i]) && cost[i] >= 0.0,
               "RegressionProblem: cost at row " + std::to_string(i) +
                   " must be finite and >= 0");
  }
}

RegressionProblem makeProblem(
    const data::Table& table, const std::vector<std::string>& featureColumns,
    const std::string& responseColumn, const std::string& costColumn,
    const std::vector<std::string>& log10Columns) {
  requireArg(!featureColumns.empty(), "makeProblem: no feature columns");
  const std::size_t n = table.numRows();
  requireArg(n > 0, "makeProblem: empty table");

  const auto wantsLog = [&](const std::string& name) {
    return std::find(log10Columns.begin(), log10Columns.end(), name) !=
           log10Columns.end();
  };
  const auto fetch = [&](const std::string& name) {
    const auto col = table.numeric(name);
    la::Vector v(col.begin(), col.end());
    if (wantsLog(name)) {
      for (double& val : v) {
        requireArg(val > 0.0,
                   "makeProblem: log10 of non-positive value in '" + name +
                       "'");
        val = std::log10(val);
      }
    }
    return v;
  };

  RegressionProblem p;
  p.x = la::Matrix(n, featureColumns.size());
  for (std::size_t j = 0; j < featureColumns.size(); ++j) {
    const la::Vector col = fetch(featureColumns[j]);
    for (std::size_t i = 0; i < n; ++i) p.x(i, j) = col[i];
  }
  p.y = fetch(responseColumn);
  if (costColumn.empty()) {
    p.cost.assign(n, 1.0);
  } else {
    const auto col = table.numeric(costColumn);
    p.cost.assign(col.begin(), col.end());
  }
  p.featureNames = featureColumns;
  p.responseName = responseColumn;
  p.validate();
  return p;
}

}  // namespace alperf::al
