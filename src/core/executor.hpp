#pragma once

/// \file executor.hpp
/// Fault-tolerant experiment execution between the AL loops and their
/// measurement backends.
///
/// A backend (real cluster, simulator, instrumented application) is a
/// *fallible oracle*: it may return Failed or Censored measurements
/// instead of a clean response (common/outcome.hpp). The
/// ExperimentExecutor wraps one oracle call site with a RetryPolicy:
/// failed attempts are retried with a capped exponential cost surcharge
/// (the cost-domain analogue of retry backoff — requeued jobs burn queue
/// time and scheduler overhead), every burned unit is charged to the
/// campaign ledger, and a point whose retries are exhausted is reported
/// as quarantined so the caller can exclude it from future selection.

#include <functional>
#include <span>

#include "common/outcome.hpp"

namespace alperf::al {

/// Fallible measurement oracle over a continuous design point.
///
/// \deprecated Oracle API v1. Prefer `al::Oracle` (core/oracle.hpp),
/// which erases this shape (and the row-based and infallible ones) behind
/// a single capability-probing handle; every loop now takes an Oracle and
/// converts from this typedef implicitly. Kept for one release so
/// downstream aliases keep compiling.
using FallibleOracle = std::function<Measurement(std::span<const double>)>;

/// Fallible oracle over discrete problem rows (pool-based AL): given the
/// problem-row index of the selected experiment, run it.
///
/// \deprecated Oracle API v1 — see FallibleOracle; prefer `al::Oracle`.
using FallibleRowOracle = std::function<Measurement(std::size_t row)>;

/// Retry behaviour for failed attempts.
struct RetryPolicy {
  /// Extra attempts after the first failure before the point is
  /// quarantined (0 = fail fast).
  int maxRetries = 3;
  /// Fixed cost surcharge of the first retry (requeue/backoff overhead,
  /// in the problem's cost unit; 0 = only the backend-reported burn).
  double backoffCostBase = 0.0;
  /// The surcharge of retry k is backoffCostBase·backoffGrowth^(k-1) ...
  double backoffGrowth = 2.0;
  /// ... capped at this value.
  double backoffCostCap = 1e9;

  /// Throws std::invalid_argument on nonsense values.
  void validate() const;

  /// Cost surcharge charged for retry number `retry` (1-based).
  double backoffCost(int retry) const;
};

/// Everything that governs *how* measurements are executed, as opposed to
/// what is measured: the retry state machine plus the dispatch-width knob
/// of the asynchronous engine (core/dispatch.hpp). Embedded in AlConfig
/// and ContinuousAlConfig as `.execution`; both loops call validate() on
/// entry. The loops' separate RetryPolicy parameters predate this struct
/// and remain as aliases for one release — a policy passed there
/// overrides `retry`.
struct ExecutionConfig {
  RetryPolicy retry;
  /// Measurements allowed in flight concurrently. 1 (the default) is the
  /// fully synchronous path — bitwise the pre-async behaviour, no
  /// dispatcher, no extra threads. k > 1 engages AsyncDispatcher with k
  /// slots and constant-liar fantasy selection for pending points.
  int maxInFlight = 1;

  /// Throws std::invalid_argument on nonsense values.
  void validate() const;
};

/// Aggregate outcome of executing one experiment under a RetryPolicy.
struct ExecutionResult {
  /// The final attempt's measurement (Failed when quarantined).
  Measurement measurement;
  /// Total attempts, including the backend's internal ones.
  int attempts = 0;
  /// Cost burned by failed attempts plus retry surcharges. Excludes the
  /// final successful measurement's own cost.
  double wastedCost = 0.0;
  /// True when retries were exhausted without a usable measurement; the
  /// caller must exclude the point from future selection.
  bool quarantined = false;

  /// Everything the campaign was charged for this execution.
  double totalCost() const {
    return wastedCost + (quarantined ? 0.0 : measurement.totalCost());
  }
};

/// The retry state machine, free of any ledger: runs `attempt` until it
/// yields a usable measurement or `policy`'s retries are exhausted,
/// demoting non-finite Ok/Censored responses to Failed and accumulating
/// burned cost plus backoff surcharges into the result. Shared by
/// ExperimentExecutor::execute (which adds the campaign ledger) and each
/// AsyncDispatcher slot (which runs it concurrently, one in-flight
/// measurement per slot, and merges ledgers at commit time).
ExecutionResult runWithRetries(const RetryPolicy& policy,
                               const std::function<Measurement()>& attempt);

/// Drives retries for one oracle around a RetryPolicy and keeps a
/// campaign-level ledger of waste. The executor is deliberately agnostic
/// of *what* is being measured: callers adapt row- or x-based oracles via
/// execute()'s thunk, so both the discrete and the continuous loop share
/// one retry state machine.
class ExperimentExecutor {
 public:
  explicit ExperimentExecutor(RetryPolicy policy = {});

  /// Runs `attempt` until it yields a usable measurement or the policy's
  /// retries are exhausted. Non-finite Ok responses are demoted to Failed
  /// (they must never reach a Cholesky). Every failed attempt's burned
  /// cost, plus the policy's backoff surcharge, is accumulated into the
  /// result and the ledger.
  ExecutionResult execute(const std::function<Measurement()>& attempt);

  /// Ledger: total cost burned by failed attempts across all execute()
  /// calls, total failed attempts, and how many executions ended
  /// quarantined.
  double totalWastedCost() const { return totalWastedCost_; }
  int totalFailedAttempts() const { return totalFailedAttempts_; }
  int totalQuarantined() const { return totalQuarantined_; }

  const RetryPolicy& policy() const { return policy_; }

 private:
  RetryPolicy policy_;
  double totalWastedCost_ = 0.0;
  int totalFailedAttempts_ = 0;
  int totalQuarantined_ = 0;
};

}  // namespace alperf::al
