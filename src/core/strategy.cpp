#include "core/strategy.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/perf_stats.hpp"
#include "common/thread_pool.hpp"
#include "stats/sampling.hpp"

namespace alperf::al {

namespace {

/// Rows of the problem design matrix for the given candidate indices.
la::Matrix candidateMatrix(const SelectionContext& ctx) {
  la::Matrix m(ctx.candidates.size(), ctx.problem.dim());
  for (std::size_t i = 0; i < ctx.candidates.size(); ++i) {
    const auto row = ctx.problem.x.row(ctx.candidates[i]);
    std::copy(row.begin(), row.end(), m.row(i).begin());
  }
  return m;
}

std::size_t argmax(std::span<const double> v) {
  ALPERF_ASSERT(!v.empty(), "argmax: empty scores");
  return static_cast<std::size_t>(
      std::max_element(v.begin(), v.end()) - v.begin());
}

/// Main-GP prediction over ctx.candidates, through the campaign pool
/// cache when one is attached and can serve (bit-identical either way);
/// otherwise the direct batch predict over a gathered candidate matrix.
gp::Prediction poolPredict(const SelectionContext& ctx) {
  if (ctx.poolCache != nullptr) {
    gp::Prediction out;
    if (ctx.poolCache->predict(ctx.gp, ctx.candidates, false, out))
      return out;
  }
  return ctx.gp.predict(candidateMatrix(ctx));
}

/// Chunk size for elementwise score transforms over the candidate pool.
/// Each index writes only its own slot, so the parallel result is
/// bit-identical to the sequential loop.
constexpr std::size_t kScoreChunk = 256;

}  // namespace

std::vector<std::size_t> Strategy::selectBatch(const SelectionContext& ctx,
                                               std::size_t batchSize) {
  requireArg(batchSize >= 1 && batchSize <= ctx.candidates.size(),
             "selectBatch: bad batch size");
  // Default: repeatedly run single select() on the shrinking candidate
  // view. Positions are remapped to the original candidate list.
  std::vector<std::size_t> remaining(ctx.candidates.size());
  std::iota(remaining.begin(), remaining.end(), std::size_t{0});
  std::vector<std::size_t> chosen;
  std::vector<std::size_t> rows(ctx.candidates.begin(), ctx.candidates.end());
  while (chosen.size() < batchSize) {
    SelectionContext sub{ctx.gp, ctx.problem,
                         std::span<const std::size_t>(rows), ctx.rng,
                         ctx.poolCache};
    const std::size_t pos = select(sub);
    chosen.push_back(remaining[pos]);
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(pos));
    rows.erase(rows.begin() + static_cast<std::ptrdiff_t>(pos));
  }
  return chosen;
}

std::size_t ScoredStrategy::select(const SelectionContext& ctx) {
  requireArg(!ctx.candidates.empty(), "select: empty candidate pool");
  ScopedTimer timer("al.score");
  return argmax(scores(ctx));
}

std::vector<std::size_t> ScoredStrategy::selectBatch(
    const SelectionContext& ctx, std::size_t batchSize) {
  requireArg(batchSize >= 1 && batchSize <= ctx.candidates.size(),
             "selectBatch: bad batch size");
  ScopedTimer timer("al.score");
  const auto s = scores(ctx);
  std::vector<std::size_t> order(s.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(batchSize),
                    order.end(),
                    [&s](std::size_t a, std::size_t b) { return s[a] > s[b]; });
  order.resize(batchSize);
  return order;
}

std::vector<double> VarianceReduction::scores(const SelectionContext& ctx) {
  const auto pred = poolPredict(ctx);
  return pred.stdDev();
}

std::vector<double> CostEfficiency::scores(const SelectionContext& ctx) {
  const auto pred = poolPredict(ctx);
  std::vector<double> s(pred.mean.size());
  parallelFor(s.size(), kScoreChunk, [&](std::size_t i) {
    s[i] = std::sqrt(pred.variance[i]) - pred.mean[i];
  });
  return s;
}

std::vector<double> CostWeightedVariance::scores(
    const SelectionContext& ctx) {
  const auto pred = poolPredict(ctx);
  std::vector<double> s(pred.mean.size());
  parallelFor(s.size(), kScoreChunk, [&](std::size_t i) {
    s[i] = std::sqrt(pred.variance[i]) / std::pow(10.0, pred.mean[i]);
  });
  return s;
}

std::size_t RandomSelection::select(const SelectionContext& ctx) {
  requireArg(!ctx.candidates.empty(), "select: empty candidate pool");
  return ctx.rng.index(ctx.candidates.size());
}

Emcm::Emcm(int ensembleSize) : ensembleSize_(ensembleSize) {
  requireArg(ensembleSize >= 2, "Emcm: ensemble size must be >= 2");
}

std::vector<double> Emcm::scores(const SelectionContext& ctx) {
  requireArg(ctx.gp.fitted(), "Emcm: GP must be fitted");
  const la::Matrix cand = candidateMatrix(ctx);
  // The main prediction can come from the pool cache; the bootstrap weak
  // learners below predict directly (their posteriors are per-resample).
  const auto mainPred = poolPredict(ctx);

  const la::Matrix& trainX = ctx.gp.trainX();
  const la::Vector& trainY = ctx.gp.trainY();
  const std::size_t n = trainY.size();

  // Draw every bootstrap resample from ctx.rng up front, in ensemble
  // order — the exact stream a sequential loop would consume — so the
  // ensemble members can then be fitted concurrently.
  const std::size_t nk = static_cast<std::size_t>(ensembleSize_);
  std::vector<std::vector<std::size_t>> resamples;
  resamples.reserve(nk);
  for (std::size_t k = 0; k < nk; ++k)
    resamples.push_back(stats::sampleWithReplacement(n, n, ctx.rng));

  // Each member writes its own row of perK; the reduction below runs in
  // ensemble order, so the summation order (and hence the float result)
  // matches the sequential loop for any thread count.
  la::Matrix perK(nk, cand.rows());
  parallelFor(nk, 1, [&](std::size_t k) {
    const auto& idx = resamples[k];
    la::Matrix bx(n, trainX.cols());
    la::Vector by(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto row = trainX.row(idx[i]);
      std::copy(row.begin(), row.end(), bx.row(i).begin());
      by[i] = trainY[idx[i]];
    }
    // Weak learner: same kernel, hyperparameters frozen (no re-opt) —
    // the Monte-Carlo variance estimate the paper critiques. With
    // optimize off, fit() never touches its rng; a local dummy keeps the
    // shared ctx.rng out of the parallel region entirely.
    gp::GaussianProcess weak(ctx.gp);
    weak.config().optimize = false;
    stats::Rng unused(0);
    weak.fit(std::move(bx), std::move(by), unused);
    const auto weakPred = weak.predict(cand);
    for (std::size_t i = 0; i < cand.rows(); ++i)
      perK(k, i) = std::abs(mainPred.mean[i] - weakPred.mean[i]);
  });

  std::vector<double> s(cand.rows(), 0.0);
  for (std::size_t k = 0; k < nk; ++k)
    for (std::size_t i = 0; i < s.size(); ++i) s[i] += perK(k, i);
  for (std::size_t i = 0; i < s.size(); ++i)
    s[i] = s[i] / ensembleSize_ * la::norm2(cand.row(i));
  return s;
}

std::size_t FantasyBatch::select(const SelectionContext& ctx) {
  VarianceReduction vr;
  return vr.select(ctx);
}

std::vector<std::size_t> FantasyBatch::selectBatch(
    const SelectionContext& ctx, std::size_t batchSize) {
  requireArg(batchSize >= 1 && batchSize <= ctx.candidates.size(),
             "selectBatch: bad batch size");
  requireArg(ctx.gp.fitted(), "FantasyBatch: GP must be fitted");

  gp::GaussianProcess fantasy(ctx.gp);
  fantasy.config().optimize = false;

  std::vector<std::size_t> chosen;
  std::vector<char> taken(ctx.candidates.size(), 0);
  while (chosen.size() < batchSize) {
    const la::Matrix cand = candidateMatrix(ctx);
    const auto pred = fantasy.predict(cand);
    // Highest-σ among not-yet-taken positions.
    std::size_t best = ctx.candidates.size();
    double bestVar = -1.0;
    for (std::size_t i = 0; i < ctx.candidates.size(); ++i) {
      if (taken[i]) continue;
      if (pred.variance[i] > bestVar) {
        bestVar = pred.variance[i];
        best = i;
      }
    }
    ALPERF_ASSERT(best < ctx.candidates.size(),
                  "FantasyBatch: no candidate left");
    taken[best] = 1;
    chosen.push_back(best);
    if (chosen.size() == batchSize) break;

    // Condition on the pick with a fantasy observation (posterior variance
    // does not depend on the observed value).
    const la::Matrix& oldX = fantasy.trainX();
    const la::Vector& oldY = fantasy.trainY();
    la::Matrix nx(oldX.rows() + 1, oldX.cols());
    la::Vector ny(oldY.size() + 1);
    for (std::size_t i = 0; i < oldX.rows(); ++i) {
      const auto row = oldX.row(i);
      std::copy(row.begin(), row.end(), nx.row(i).begin());
      ny[i] = oldY[i];
    }
    const auto newRow = ctx.problem.x.row(ctx.candidates[best]);
    std::copy(newRow.begin(), newRow.end(), nx.row(oldX.rows()).begin());
    ny[oldY.size()] = pred.mean[best];
    fantasy.fit(std::move(nx), std::move(ny), ctx.rng);
  }
  return chosen;
}

}  // namespace alperf::al
