#pragma once

/// \file problem.hpp
/// The regression problem an active learner operates on: a design matrix
/// of controlled variables, a response vector, and a per-experiment cost.
///
/// Rows are *jobs* (repeated measurements of the same x are distinct rows),
/// which is the paper's required treatment of noisy responses: selecting a
/// job consumes one measurement, while further repeats at the same x stay
/// in the pool.

#include <string>
#include <vector>

#include "data/table.hpp"

namespace alperf::al {

/// A pool-based regression task: one row per runnable job, with the
/// response and cost of every row known up front (table-driven mode) or
/// supplied by an oracle as rows are picked.
struct RegressionProblem {
  la::Matrix x;     ///< n×d design matrix (already transformed/scaled)
  la::Vector y;     ///< response, one per row (typically log10-transformed)
  la::Vector cost;  ///< per-experiment cost on the *linear* scale
                    ///< (e.g. core-seconds); used for budget accounting

  std::vector<std::string> featureNames;  ///< column names, for reports
  std::string responseName;               ///< response column name

  std::size_t size() const { return y.size(); }  ///< number of jobs
  std::size_t dim() const { return x.cols(); }   ///< number of features

  /// Throws std::invalid_argument if the three parts disagree in size or
  /// the problem is empty.
  void validate() const;
};

/// Builds a problem from a table: features and response are taken from
/// numeric columns; cost from `costColumn` (or all-ones when empty).
/// Columns listed in `log10Columns` are log10-transformed on the fly
/// (applies to features and/or the response).
RegressionProblem makeProblem(const data::Table& table,
                              const std::vector<std::string>& featureColumns,
                              const std::string& responseColumn,
                              const std::string& costColumn = "",
                              const std::vector<std::string>& log10Columns = {});

}  // namespace alperf::al
