#include "core/learner.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "stats/descriptive.hpp"

namespace alperf::al {

std::vector<double> AlResult::series(double IterationRecord::* field) const {
  std::vector<double> v;
  v.reserve(history.size());
  for (const auto& rec : history) v.push_back(rec.*field);
  return v;
}

std::string toString(StopReason reason) {
  switch (reason) {
    case StopReason::PoolExhausted:
      return "pool_exhausted";
    case StopReason::MaxIterations:
      return "max_iterations";
    case StopReason::Budget:
      return "budget";
    case StopReason::AmsdConverged:
      return "amsd_converged";
  }
  throw std::invalid_argument("toString: unknown StopReason");
}

data::Table historyToTable(const AlResult& result) {
  const std::size_t n = result.history.size();
  std::vector<double> iteration(n), chosen(n), sigma(n), mu(n), amsd(n),
      rmse(n), pickCost(n), cumCost(n), noiseVar(n), lml(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& rec = result.history[i];
    iteration[i] = rec.iteration;
    chosen[i] = static_cast<double>(rec.chosenRow);
    sigma[i] = rec.sigmaAtPick;
    mu[i] = rec.muAtPick;
    amsd[i] = rec.amsd;
    rmse[i] = rec.rmse;
    pickCost[i] = rec.pickCost;
    cumCost[i] = rec.cumulativeCost;
    noiseVar[i] = rec.noiseVariance;
    lml[i] = rec.lml;
  }
  data::Table t;
  t.addNumeric("Iteration", std::move(iteration));
  t.addNumeric("ChosenRow", std::move(chosen));
  t.addNumeric("SigmaAtPick", std::move(sigma));
  t.addNumeric("MuAtPick", std::move(mu));
  t.addNumeric("AMSD", std::move(amsd));
  t.addNumeric("RMSE", std::move(rmse));
  t.addNumeric("PickCost", std::move(pickCost));
  t.addNumeric("CumulativeCost", std::move(cumCost));
  t.addNumeric("NoiseVariance", std::move(noiseVar));
  t.addNumeric("LML", std::move(lml));
  return t;
}

ActiveLearner::ActiveLearner(RegressionProblem problem,
                             gp::GaussianProcess gpPrototype,
                             StrategyPtr strategy, AlConfig config)
    : problem_(std::move(problem)),
      gpPrototype_(std::move(gpPrototype)),
      strategy_(std::move(strategy)),
      config_(config) {
  problem_.validate();
  requireArg(strategy_ != nullptr, "ActiveLearner: null strategy");
  requireArg(config_.refitEvery >= 1, "ActiveLearner: refitEvery must be >= 1");
  requireArg(config_.batchSize >= 1, "ActiveLearner: batchSize must be >= 1");
  requireArg(config_.amsdWindow >= 0, "ActiveLearner: amsdWindow must be >= 0");
}

AlResult ActiveLearner::run(stats::Rng& rng) const {
  const auto partition = data::triPartition(
      problem_.size(), config_.nInitial, config_.activeFraction, rng);
  return runWithPartition(partition, rng);
}

AlResult ActiveLearner::runWithPartition(const data::TriPartition& partition,
                                         stats::Rng& rng) const {
  AlResult result{.history = {},
                  .partition = partition,
                  .stopReason = StopReason::PoolExhausted,
                  .finalGp = gpPrototype_};

  std::vector<std::size_t> train = partition.initial;
  std::vector<std::size_t> pool = partition.active;

  // Test design matrix/response, fixed for the whole run.
  la::Matrix testX(partition.test.size(), problem_.dim());
  la::Vector testY(partition.test.size());
  for (std::size_t i = 0; i < partition.test.size(); ++i) {
    const auto row = problem_.x.row(partition.test[i]);
    std::copy(row.begin(), row.end(), testX.row(i).begin());
    testY[i] = problem_.y[partition.test[i]];
  }

  gp::GaussianProcess gp = gpPrototype_;
  const double baseNoiseLo = gpPrototype_.config().noise.lo;

  const auto buildTrain = [&](la::Matrix& x, la::Vector& y) {
    x = la::Matrix(train.size(), problem_.dim());
    y.resize(train.size());
    for (std::size_t i = 0; i < train.size(); ++i) {
      const auto row = problem_.x.row(train[i]);
      std::copy(row.begin(), row.end(), x.row(i).begin());
      y[i] = problem_.y[train[i]];
    }
  };

  double cumulativeCost = 0.0;
  int iteration = 0;
  while (true) {
    if (pool.empty()) {
      result.stopReason = StopReason::PoolExhausted;
      break;
    }
    if (config_.maxIterations >= 0 && iteration >= config_.maxIterations) {
      result.stopReason = StopReason::MaxIterations;
      break;
    }
    if (cumulativeCost >= config_.costBudget) {
      result.stopReason = StopReason::Budget;
      break;
    }
    if (config_.amsdWindow > 0 && config_.amsdRelTol > 0.0 &&
        result.history.size() >
            static_cast<std::size_t>(config_.amsdWindow)) {
      bool converged = true;
      const auto& h = result.history;
      for (std::size_t i = h.size() - config_.amsdWindow; i < h.size(); ++i) {
        const double prev = h[i - 1].amsd;
        if (prev <= 0.0 ||
            std::abs(h[i].amsd - prev) / prev > config_.amsdRelTol) {
          converged = false;
          break;
        }
      }
      if (converged) {
        result.stopReason = StopReason::AmsdConverged;
        break;
      }
    }

    // Fit the GP (full hyperparameter refit on the configured cadence).
    gp.config().optimize = (iteration % config_.refitEvery) == 0;
    if (config_.dynamicNoiseBound) {
      const double lo = std::max(
          baseNoiseLo, 1.0 / std::sqrt(static_cast<double>(train.size())));
      gp.config().noise.lo = std::min(lo, gp.config().noise.hi);
    }
    la::Matrix trainX;
    la::Vector trainY;
    buildTrain(trainX, trainY);
    gp.fit(std::move(trainX), std::move(trainY), rng);

    // Progress metrics over the remaining pool and the test set.
    la::Matrix poolX(pool.size(), problem_.dim());
    for (std::size_t i = 0; i < pool.size(); ++i) {
      const auto row = problem_.x.row(pool[i]);
      std::copy(row.begin(), row.end(), poolX.row(i).begin());
    }
    const auto poolPred = gp.predict(poolX);
    const auto poolSd = poolPred.stdDev();
    const double amsd = stats::mean(poolSd);
    double rmse = 0.0;
    if (!partition.test.empty()) {
      const auto testPred = gp.predict(testX);
      rmse = stats::rmse(testPred.mean, testY);
    }

    // Let the strategy pick.
    const SelectionContext ctx{gp, problem_,
                               std::span<const std::size_t>(pool), rng};
    std::vector<std::size_t> picks;
    if (config_.batchSize == 1) {
      picks.push_back(strategy_->select(ctx));
    } else {
      picks = strategy_->selectBatch(
          ctx, std::min(config_.batchSize, pool.size()));
    }
    ALPERF_ASSERT(!picks.empty(), "strategy returned no pick");

    IterationRecord rec;
    rec.iteration = iteration;
    rec.chosenRow = pool[picks.front()];
    rec.sigmaAtPick = poolSd[picks.front()];
    rec.muAtPick = poolPred.mean[picks.front()];
    rec.amsd = amsd;
    rec.rmse = rmse;
    rec.noiseVariance = gp.noiseVariance();
    rec.lml = gp.logMarginalLikelihood();

    // Consume picks (descending positions so erasure is stable).
    std::vector<std::size_t> sorted = picks;
    std::sort(sorted.rbegin(), sorted.rend());
    for (std::size_t pos : sorted) {
      ALPERF_ASSERT(pos < pool.size(), "pick position out of range");
      rec.pickCost += problem_.cost[pool[pos]];
      train.push_back(pool[pos]);
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pos));
    }
    cumulativeCost += rec.pickCost;
    rec.cumulativeCost = cumulativeCost;
    result.history.push_back(rec);
    ++iteration;
  }

  // Final model on everything consumed.
  la::Matrix trainX;
  la::Vector trainY;
  buildTrain(trainX, trainY);
  gp.config().optimize = true;
  gp.fit(std::move(trainX), std::move(trainY), rng);
  result.finalGp = gp;
  return result;
}

}  // namespace alperf::al
