#include "core/learner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <optional>

#include "common/error.hpp"
#include "core/dispatch.hpp"
#include "common/fault_inject.hpp"
#include "common/health.hpp"
#include "common/perf_stats.hpp"
#include "common/trace.hpp"
#include "stats/descriptive.hpp"

namespace alperf::al {

std::vector<double> AlResult::series(double IterationRecord::* field) const {
  std::vector<double> v;
  v.reserve(history.size());
  for (const auto& rec : history) v.push_back(rec.*field);
  return v;
}

std::string toString(StopReason reason) {
  switch (reason) {
    case StopReason::PoolExhausted:
      return "pool_exhausted";
    case StopReason::MaxIterations:
      return "max_iterations";
    case StopReason::Budget:
      return "budget";
    case StopReason::AmsdConverged:
      return "amsd_converged";
    case StopReason::OracleExhausted:
      return "oracle_exhausted";
    case StopReason::FitFailed:
      return "fit_failed";
    case StopReason::ModelUnhealthy:
      return "model_unhealthy";
    case StopReason::WatchdogExpired:
      return "watchdog_expired";
  }
  throw std::invalid_argument("toString: unknown StopReason");
}

data::Table historyToTable(const AlResult& result) {
  return historyToTable(std::span<const IterationRecord>(result.history));
}

data::Table historyToTable(std::span<const IterationRecord> history) {
  const std::size_t n = history.size();
  std::vector<double> iteration(n), chosen(n), sigma(n), mu(n), amsd(n),
      rmse(n), pickCost(n), cumCost(n), noiseVar(n), lml(n), failed(n),
      wasted(n), censored(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& rec = history[i];
    iteration[i] = rec.iteration;
    chosen[i] = static_cast<double>(rec.chosenRow);
    sigma[i] = rec.sigmaAtPick;
    mu[i] = rec.muAtPick;
    amsd[i] = rec.amsd;
    rmse[i] = rec.rmse;
    pickCost[i] = rec.pickCost;
    cumCost[i] = rec.cumulativeCost;
    noiseVar[i] = rec.noiseVariance;
    lml[i] = rec.lml;
    failed[i] = rec.failedAttempts;
    wasted[i] = rec.wastedCost;
    censored[i] = rec.censored;
  }
  data::Table t;
  t.addNumeric("Iteration", std::move(iteration));
  t.addNumeric("ChosenRow", std::move(chosen));
  t.addNumeric("SigmaAtPick", std::move(sigma));
  t.addNumeric("MuAtPick", std::move(mu));
  t.addNumeric("AMSD", std::move(amsd));
  t.addNumeric("RMSE", std::move(rmse));
  t.addNumeric("PickCost", std::move(pickCost));
  t.addNumeric("CumulativeCost", std::move(cumCost));
  t.addNumeric("NoiseVariance", std::move(noiseVar));
  t.addNumeric("LML", std::move(lml));
  t.addNumeric("FailedAttempts", std::move(failed));
  t.addNumeric("WastedCost", std::move(wasted));
  t.addNumeric("Censored", std::move(censored));
  return t;
}

std::vector<IterationRecord> historyFromTable(const data::Table& table) {
  const std::size_t n = table.numRows();
  std::vector<IterationRecord> history(n);
  const auto fill = [&](const std::string& name,
                        double IterationRecord::* field, bool required) {
    if (!table.hasColumn(name)) {
      requireArg(!required, "historyFromTable: missing column '" + name + "'");
      return;
    }
    const auto col = table.numeric(name);
    for (std::size_t i = 0; i < n; ++i) history[i].*field = col[i];
  };
  requireArg(table.hasColumn("Iteration") && table.hasColumn("ChosenRow"),
             "historyFromTable: not a learning-trace table");
  const auto iter = table.numeric("Iteration");
  const auto chosen = table.numeric("ChosenRow");
  for (std::size_t i = 0; i < n; ++i) {
    history[i].iteration = static_cast<int>(iter[i]);
    history[i].chosenRow = static_cast<std::size_t>(chosen[i]);
  }
  fill("SigmaAtPick", &IterationRecord::sigmaAtPick, true);
  fill("MuAtPick", &IterationRecord::muAtPick, true);
  fill("AMSD", &IterationRecord::amsd, true);
  fill("RMSE", &IterationRecord::rmse, true);
  fill("PickCost", &IterationRecord::pickCost, true);
  fill("CumulativeCost", &IterationRecord::cumulativeCost, true);
  fill("NoiseVariance", &IterationRecord::noiseVariance, true);
  fill("LML", &IterationRecord::lml, true);
  // Fault columns are absent in traces archived before the fault-tolerant
  // execution layer existed.
  fill("FailedAttempts", &IterationRecord::failedAttempts, false);
  fill("WastedCost", &IterationRecord::wastedCost, false);
  fill("Censored", &IterationRecord::censored, false);
  return history;
}

ActiveLearner::ActiveLearner(RegressionProblem problem,
                             gp::GaussianProcess gpPrototype,
                             StrategyPtr strategy, AlConfig config)
    : problem_(std::move(problem)),
      gpPrototype_(std::move(gpPrototype)),
      strategy_(std::move(strategy)),
      config_(config) {
  problem_.validate();
  requireArg(strategy_ != nullptr, "ActiveLearner: null strategy");
  requireArg(config_.refitEvery >= 1, "ActiveLearner: refitEvery must be >= 1");
  requireArg(config_.batchSize >= 1, "ActiveLearner: batchSize must be >= 1");
  requireArg(config_.amsdWindow >= 0, "ActiveLearner: amsdWindow must be >= 0");
}

AlResult ActiveLearner::run(stats::Rng& rng) const {
  const auto partition = data::triPartition(
      problem_.size(), config_.nInitial, config_.activeFraction, rng);
  return runWithPartition(partition, rng);
}

AlResult ActiveLearner::runWithPartition(const data::TriPartition& partition,
                                         stats::Rng& rng) const {
  return runLoop(initialState(partition), nullptr, nullptr, rng);
}

AlResult ActiveLearner::runFallible(const Oracle& oracle,
                                    const RetryPolicy& policy,
                                    stats::Rng& rng) const {
  const auto partition = data::triPartition(
      problem_.size(), config_.nInitial, config_.activeFraction, rng);
  return runFallibleWithPartition(oracle, policy, partition, rng);
}

AlResult ActiveLearner::runFallibleWithPartition(
    const Oracle& oracle, const RetryPolicy& policy,
    const data::TriPartition& partition, stats::Rng& rng) const {
  requireArg(static_cast<bool>(oracle), "runFallible: null oracle");
  policy.validate();
  return runLoop(initialState(partition), &oracle, &policy, rng);
}

AlResult ActiveLearner::resume(const Checkpoint& checkpoint,
                               stats::Rng& rng) const {
  validateCheckpoint(checkpoint);
  return runLoop(checkpoint, nullptr, nullptr, rng);
}

AlResult ActiveLearner::resumeFallible(const Checkpoint& checkpoint,
                                       const Oracle& oracle,
                                       const RetryPolicy& policy,
                                       stats::Rng& rng) const {
  validateCheckpoint(checkpoint);
  requireArg(static_cast<bool>(oracle), "resumeFallible: null oracle");
  policy.validate();
  return runLoop(checkpoint, &oracle, &policy, rng);
}

Checkpoint ActiveLearner::initialState(
    const data::TriPartition& partition) const {
  Checkpoint state;
  state.partition = partition;
  state.train = partition.initial;
  state.trainY.reserve(state.train.size());
  for (std::size_t row : state.train) {
    requireArg(row < problem_.size(), "ActiveLearner: partition row range");
    state.trainY.push_back(problem_.y[row]);
  }
  state.pool = partition.active;
  return state;
}

void ActiveLearner::validateCheckpoint(const Checkpoint& cp) const {
  requireArg(cp.hasRngState, "resume: checkpoint has no RNG state");
  requireArg(cp.trainY.size() == cp.train.size(),
             "resume: train/trainY size mismatch");
  requireArg(!cp.train.empty(), "resume: empty training set");
  const auto inRange = [this](const std::vector<std::size_t>& rows) {
    return std::all_of(rows.begin(), rows.end(), [this](std::size_t r) {
      return r < problem_.size();
    });
  };
  requireArg(inRange(cp.train) && inRange(cp.pool) && inRange(cp.quarantined),
             "resume: checkpoint row index out of range for this problem");
  requireArg(cp.iteration >= 0 &&
                 cp.history.size() == static_cast<std::size_t>(cp.iteration),
             "resume: iteration count disagrees with history length");
  requireArg(cp.gpTheta.empty() ||
                 cp.gpTheta.size() == gpPrototype_.thetaFull().size(),
             "resume: GP hyperparameter count mismatch");
  requireArg(cp.trainAtLastFit <= cp.train.size(),
             "resume: trainAtLastFit exceeds training-set size");
}

namespace {

/// The model-maintenance core shared by both execution loops: training-set
/// materialization, the four-rung fit degradation ladder
/// (docs/ROBUSTNESS.md), the incremental-posterior chain bookkeeping, and
/// the resume-time chain rebuild. Extracted verbatim from the synchronous
/// loop so the asynchronous loop (runLoopAsync) reuses exactly its fit
/// behaviour — the maxInFlight=1 bit-identity guarantee hinges on the
/// synchronous operation sequence not changing.
struct FitEngine {
  const RegressionProblem& problem;
  const AlConfig& config;
  Checkpoint& state;
  gp::GaussianProcess& gp;
  stats::Rng& rng;
  int& fitFallbacks;

  /// Hyperparameters of the last healthy fit (rungs 1–3).
  std::vector<double> lastGoodTheta;
  const double baseJitterScale;
  /// Training-set size at the last full posterior factorization —
  /// checkpointed so resume can rebuild the same incremental chain.
  std::size_t fullFitTrainCount = 0;
  /// True while gp holds a factorization of a prefix of state.train at
  /// the current hyperparameters, so new points can be appended via
  /// Cholesky extension.
  bool chainValid = false;

  FitEngine(const RegressionProblem& problemIn, const AlConfig& configIn,
            Checkpoint& stateIn, gp::GaussianProcess& gpIn,
            stats::Rng& rngIn, int& fitFallbacksIn, double baseJitterIn)
      : problem(problemIn),
        config(configIn),
        state(stateIn),
        gp(gpIn),
        rng(rngIn),
        fitFallbacks(fitFallbacksIn),
        lastGoodTheta(gpIn.thetaFull()),
        baseJitterScale(baseJitterIn) {}

  void buildTrain(la::Matrix& x, la::Vector& y) const {
    x = la::Matrix(state.train.size(), problem.dim());
    for (std::size_t i = 0; i < state.train.size(); ++i) {
      const auto row = problem.x.row(state.train[i]);
      std::copy(row.begin(), row.end(), x.row(i).begin());
    }
    y = state.trainY;
  }

  // Attempts a (re)fit, walking the degradation ladder on divergence
  // (docs/ROBUSTNESS.md): (1) the requested fit; (2) the same fit with
  // the Cholesky jitter cap raised to recoveryJitterScale; (3) a
  // posterior-only refit at the last good hyperparameters; (4) a
  // prior-only posterior, which cannot fail. Returns true when the model
  // ended with a genuine GP posterior (rungs 1–3) and false when it is
  // degraded to the prior — the loops' unhealthy-model stops count those.
  // Posterior-only updates (optimize false) extend the existing
  // factorization when incrementalPosterior allows; anything else is a
  // full refactorization.
  //
  // The GP's pairwise-distance cache (gp/distance_cache.hpp) lives across
  // all of these paths untouched by this layer: buildTrain reproduces the
  // previous rows bit-for-bit and only appends, so each refit takes the
  // cache's O(k·n·d) append path (gp.distcache.append), and
  // gp.addObservation keeps it warm on the incremental path too. Rolling
  // back hyperparameters never invalidates it — distances don't depend on
  // theta.
  bool fitWithFallback(bool optimize) {
    ScopedTimer timer("al.fit");
    trace::Span span("al.fit");
    span.note("n", state.train.size()).note("optimize", optimize);
    if (!optimize && config.incrementalPosterior && chainValid &&
        gp.fitted() && gp.numTrainPoints() <= state.train.size()) {
      bool ok = true;
      try {
        for (std::size_t i = gp.numTrainPoints(); i < state.train.size(); ++i)
          gp.addObservation(problem.x.row(state.train[i]), state.trainY[i]);
        ok = std::isfinite(gp.logMarginalLikelihood());
      } catch (const NumericalError&) {
        ok = false;
      }
      if (ok) {
        PerfRegistry::instance().increment("al.fit.incremental");
        span.note("path", "incremental");
        return true;
      }
      chainValid = false;  // degraded extension: refactorize from scratch
    }
    la::Matrix trainX;
    la::Vector trainY;
    buildTrain(trainX, trainY);
    // Each rung fits a *copy* of the training set so the later rungs (and
    // the prior-only terminal rung) still have the data to fall back on.
    const auto tryFit = [&](bool opt) {
      gp.config().optimize = opt;
      try {
        gp.fit(la::Matrix(trainX), la::Vector(trainY), rng);
        return std::isfinite(gp.logMarginalLikelihood());
      } catch (const NumericalError&) {
        return false;
      }
    };
    gp.config().jitterScaleMax = baseJitterScale;
    bool ok = tryFit(optimize);
    if (!ok) {
      // Rung 2: identical fit, jitter cap escalated.
      HealthMonitor::instance().record("fit.retry",
                                       "refit with escalated jitter cap");
      gp.config().jitterScaleMax =
          std::max(baseJitterScale, config.recoveryJitterScale);
      ok = tryFit(optimize);
    }
    if (!ok) {
      // Rung 3: posterior only, at the hyperparameters of the last
      // healthy fit (keeps the escalated jitter cap).
      gp.setThetaFull(lastGoodTheta);
      ok = tryFit(false);
      if (ok) {
        ++fitFallbacks;
        HealthMonitor::instance().record(
            "fit.fallback.theta", "posterior refit at last good theta");
      }
    }
    gp.config().jitterScaleMax = baseJitterScale;
    if (ok) {
      lastGoodTheta = gp.thetaFull();
      chainValid = true;
      fullFitTrainCount = state.train.size();
      PerfRegistry::instance().increment("al.fit.full");
      span.note("path", "full");
      return true;
    }
    // Rung 4: prior-only posterior — never fails, but the model is
    // degraded until a later refit recovers.
    gp.setThetaFull(lastGoodTheta);
    gp.fitPriorOnly(std::move(trainX), std::move(trainY));
    ++fitFallbacks;
    HealthMonitor::instance().record("fit.fallback.prior",
                                     "prior-only posterior installed");
    span.note("path", "prior");
    chainValid = false;
    return false;
  }

  // Resuming a campaign whose posterior was maintained incrementally:
  // rebuild the exact factorization chain the uninterrupted run carried —
  // a full factorization of the first trainAtLastFit points at the
  // checkpointed θ, extended point-by-point with the tail. Without this a
  // resumed run would refactorize the whole set from scratch and drift
  // from the original trace at float precision. Consumes no RNG
  // (optimization stays off).
  void rebuildResumeChain() {
    if (!config.incrementalPosterior || state.trainAtLastFit == 0 ||
        state.gpTheta.empty())
      return;
    try {
      la::Matrix px(state.trainAtLastFit, problem.dim());
      la::Vector py(state.trainAtLastFit);
      for (std::size_t i = 0; i < state.trainAtLastFit; ++i) {
        const auto row = problem.x.row(state.train[i]);
        std::copy(row.begin(), row.end(), px.row(i).begin());
        py[i] = state.trainY[i];
      }
      gp.config().optimize = false;
      gp.fit(std::move(px), std::move(py), rng);
      for (std::size_t i = state.trainAtLastFit; i < state.train.size(); ++i)
        gp.addObservation(problem.x.row(state.train[i]), state.trainY[i]);
      if (std::isfinite(gp.logMarginalLikelihood())) {
        chainValid = true;
        fullFitTrainCount = state.trainAtLastFit;
      }
    } catch (const NumericalError&) {
      chainValid = false;  // the loop's full-fit path will recover
    }
  }
};

}  // namespace

AlResult ActiveLearner::runLoop(Checkpoint state, const Oracle* oracle,
                                const RetryPolicy* policy,
                                stats::Rng& rng) const {
  // The asynchronous engine is a different loop shape; route k > 1 there.
  // maxInFlight = 1 (the default) stays on this synchronous path bitwise —
  // no dispatcher, no slot threads, no exec.async.* counters.
  {
    ExecutionConfig exec = config_.execution;
    if (policy != nullptr) exec.retry = *policy;
    exec.validate();
    if (exec.maxInFlight > 1) {
      requireArg(config_.batchSize == 1,
                 "ActiveLearner: maxInFlight > 1 requires batchSize == 1 "
                 "(async dispatch subsumes batch selection)");
      return runLoopAsync(std::move(state), oracle, exec, rng);
    }
  }

  if (state.hasRngState) rng.restoreState(state.rngState);

  // Campaign-scoped tracing: arms on entry and exports the Chrome trace on
  // exit when config_.tracePath is set; otherwise (and when the tracer is
  // already armed ambiently) a no-op.
  trace::CampaignTraceScope traceScope(config_.tracePath);

  AlResult result{.history = {},
                  .partition = state.partition,
                  .stopReason = StopReason::PoolExhausted,
                  .finalGp = gpPrototype_,
                  .checkpoint = {},
                  .fitFallbacks = 0};

  gp::GaussianProcess gp = gpPrototype_;
  if (!state.gpTheta.empty()) gp.setThetaFull(state.gpTheta);
  const double baseNoiseLo = gpPrototype_.config().noise.lo;

  ExperimentExecutor executor(policy ? *policy : config_.execution.retry);

  FitEngine engine(problem_, config_, state, gp, rng, result.fitFallbacks,
                   gpPrototype_.config().jitterScaleMax);
  engine.rebuildResumeChain();

  // Test design matrix/response, fixed for the whole run.
  la::Matrix testX(state.partition.test.size(), problem_.dim());
  la::Vector testY(state.partition.test.size());
  for (std::size_t i = 0; i < state.partition.test.size(); ++i) {
    const auto row = problem_.x.row(state.partition.test[i]);
    std::copy(row.begin(), row.end(), testX.row(i).begin());
    testY[i] = problem_.y[state.partition.test[i]];
  }

  // Campaign pool posterior cache: pinned to the pool as it stands at loop
  // entry (every later pool is a subset — picks only shrink it), local to
  // this runLoop so a checkpoint resume starts cold and revalidates
  // against the rebuilt factorization chain. Serves pool scoring and the
  // strategies' main-GP predictions; bit-identical to direct prediction,
  // so the flag changes counters, never traces.
  gp::PoolPredictCache poolCache;
  if (config_.poolPredictCache && !state.pool.empty())
    poolCache.pin(problem_.x, state.pool);
  // Reusable predict scratch for the fixed-shape test-set predictions.
  gp::PredictWorkspace testWs;
  gp::PredictWorkspace poolWs;

  const auto loopStart = std::chrono::steady_clock::now();
  int consecutiveDegraded = 0;
  while (true) {
    // Ambient iteration for fault predicates and health-incident stamps.
    FaultContext::setIteration(state.iteration);
    trace::Span iterSpan("al.iteration");
    iterSpan.note("iter", state.iteration)
        .note("train", state.train.size())
        .note("pool", state.pool.size());
    if (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      loopStart)
            .count() > config_.wallClockBudgetSec) {
      HealthMonitor::instance().record("watchdog",
                                       "wall-clock budget exhausted");
      result.stopReason = StopReason::WatchdogExpired;
      break;
    }
    if (state.pool.empty()) {
      result.stopReason = state.quarantined.empty()
                              ? StopReason::PoolExhausted
                              : StopReason::OracleExhausted;
      break;
    }
    if (config_.maxIterations >= 0 &&
        state.iteration >= config_.maxIterations) {
      result.stopReason = StopReason::MaxIterations;
      break;
    }
    if (state.cumulativeCost >= config_.costBudget) {
      result.stopReason = StopReason::Budget;
      break;
    }
    if (config_.amsdWindow > 0 && config_.amsdRelTol > 0.0 &&
        state.history.size() >
            static_cast<std::size_t>(config_.amsdWindow)) {
      bool converged = true;
      const auto& h = state.history;
      for (std::size_t i = h.size() - config_.amsdWindow; i < h.size(); ++i) {
        const double prev = h[i - 1].amsd;
        if (prev <= 0.0 ||
            std::abs(h[i].amsd - prev) / prev > config_.amsdRelTol) {
          converged = false;
          break;
        }
      }
      if (converged) {
        result.stopReason = StopReason::AmsdConverged;
        break;
      }
    }

    // Fit the GP (full hyperparameter refit on the configured cadence).
    if (config_.dynamicNoiseBound) {
      const double lo = std::max(
          baseNoiseLo,
          1.0 / std::sqrt(static_cast<double>(state.train.size())));
      gp.config().noise.lo = std::min(lo, gp.config().noise.hi);
    }
    if (engine.fitWithFallback((state.iteration % config_.refitEvery) == 0)) {
      consecutiveDegraded = 0;
    } else {
      // Prior-only rung: the campaign may continue briefly (a later refit
      // can recover), but a persistently blind model must stop.
      ++consecutiveDegraded;
      if (consecutiveDegraded > config_.maxConsecutiveDegraded) {
        HealthMonitor::instance().record(
            "model.unhealthy", "consecutive degraded-fit limit exceeded");
        result.stopReason = StopReason::ModelUnhealthy;
        break;
      }
    }

    // Progress metrics over the remaining pool and the test set.
    gp::Prediction poolPred;
    la::Vector poolSd;
    double amsd = 0.0;
    double rmse = 0.0;
    {
      trace::Span scoreSpan("al.score");
      scoreSpan.note("pool", state.pool.size())
          .note("test", state.partition.test.size());
      // Pool scoring through the campaign cache when it can serve (the
      // gathered poolX matrix is then never materialized); direct batch
      // predict otherwise. Both produce bitwise the same Prediction.
      const bool served =
          config_.poolPredictCache &&
          poolCache.predict(gp, state.pool, false, poolPred);
      if (!served) {
        la::Matrix poolX(state.pool.size(), problem_.dim());
        for (std::size_t i = 0; i < state.pool.size(); ++i) {
          const auto row = problem_.x.row(state.pool[i]);
          std::copy(row.begin(), row.end(), poolX.row(i).begin());
        }
        poolPred = gp.predict(poolX, false, poolWs);
      }
      poolSd = poolPred.stdDev();
      amsd = stats::mean(poolSd);
      if (!state.partition.test.empty()) {
        const auto testPred = gp.predict(testX, false, testWs);
        rmse = stats::rmse(testPred.mean, testY);
      }
    }

    // Let the strategy pick.
    const SelectionContext ctx{gp, problem_,
                               std::span<const std::size_t>(state.pool), rng,
                               config_.poolPredictCache ? &poolCache
                                                        : nullptr};
    std::vector<std::size_t> picks;
    {
      trace::Span selectSpan("al.select");
      selectSpan.note("pool", state.pool.size())
          .note("batch", std::min(config_.batchSize, state.pool.size()));
      if (config_.batchSize == 1) {
        picks.push_back(strategy_->select(ctx));
      } else {
        picks = strategy_->selectBatch(
            ctx, std::min(config_.batchSize, state.pool.size()));
      }
    }
    ALPERF_ASSERT(!picks.empty(), "strategy returned no pick");

    IterationRecord rec;
    rec.iteration = state.iteration;
    rec.chosenRow = state.pool[picks.front()];
    rec.sigmaAtPick = poolSd[picks.front()];
    rec.muAtPick = poolPred.mean[picks.front()];
    rec.amsd = amsd;
    rec.rmse = rmse;
    rec.noiseVariance = gp.noiseVariance();
    rec.lml = gp.logMarginalLikelihood();

    // Consume picks (descending positions so erasure is stable).
    std::vector<std::size_t> sorted = picks;
    std::sort(sorted.rbegin(), sorted.rend());
    for (std::size_t pos : sorted) {
      ALPERF_ASSERT(pos < state.pool.size(), "pick position out of range");
      const std::size_t row = state.pool[pos];
      if (oracle == nullptr) {
        // Table-driven path: the response is already in the database.
        rec.pickCost += problem_.cost[row];
        state.train.push_back(row);
        state.trainY.push_back(problem_.y[row]);
      } else {
        // Fallible path: measure through the executor; quarantine on
        // retry exhaustion, train on censored lower bounds. Row-based
        // oracles get the row id, point-based ones its coordinates.
        const ExecutionResult er = executor.execute(
            [&] { return oracle->measureAny(row, problem_.x.row(row)); });
        rec.wastedCost += er.wastedCost;
        if (er.quarantined) {
          rec.failedAttempts += er.attempts;
          state.quarantined.push_back(row);
        } else {
          rec.failedAttempts += er.attempts - 1;
          rec.pickCost += er.measurement.cost;
          if (er.measurement.status == MeasurementStatus::Censored)
            rec.censored = 1.0;
          state.train.push_back(row);
          state.trainY.push_back(er.measurement.y);
        }
      }
      state.pool.erase(state.pool.begin() + static_cast<std::ptrdiff_t>(pos));
    }
    state.cumulativeCost += rec.pickCost + rec.wastedCost;
    rec.cumulativeCost = state.cumulativeCost;
    state.history.push_back(rec);
    ++state.iteration;
  }

  // The final fit below belongs to no campaign iteration: iteration-scoped
  // fault specs must not hit it, and its health incidents carry no stamp.
  FaultContext::setIteration(-1);

  // Snapshot the loop state *before* the final fit consumes the RNG, so a
  // resumed run re-enters the loop with the exact stream a straight run
  // would have had.
  state.gpTheta = engine.lastGoodTheta;
  state.trainAtLastFit = engine.fullFitTrainCount;
  state.rngState = rng.saveState();
  state.hasRngState = true;
  result.history = state.history;

  // Final model on everything consumed (fallback as in the loop: a
  // diverged final refit must not discard the campaign).
  engine.fitWithFallback(true);
  result.finalGp = gp;
  result.checkpoint = std::move(state);
  return result;
}

AlResult ActiveLearner::runLoopAsync(Checkpoint state, const Oracle* oracle,
                                     const ExecutionConfig& exec,
                                     stats::Rng& rng) const {
  if (state.hasRngState) rng.restoreState(state.rngState);
  trace::CampaignTraceScope traceScope(config_.tracePath);

  AlResult result{.history = {},
                  .partition = state.partition,
                  .stopReason = StopReason::PoolExhausted,
                  .finalGp = gpPrototype_,
                  .checkpoint = {},
                  .fitFallbacks = 0};

  gp::GaussianProcess gp = gpPrototype_;
  if (!state.gpTheta.empty()) gp.setThetaFull(state.gpTheta);
  const double baseNoiseLo = gpPrototype_.config().noise.lo;

  FitEngine engine(problem_, config_, state, gp, rng, result.fitFallbacks,
                   gpPrototype_.config().jitterScaleMax);
  engine.rebuildResumeChain();

  // The table-driven path runs through the same dispatch engine as the
  // oracle path: the problem database acts as an always-usable oracle, so
  // commit handling below is uniform (cost accounting included — the
  // measurement carries the row's cost column).
  const Oracle execOracle =
      oracle != nullptr
          ? *oracle
          : Oracle([this](std::size_t row) {
              return Measurement::ok(problem_.y[row], problem_.cost[row]);
            });
  AsyncDispatcher dispatcher(execOracle, exec);

  // Test design matrix/response, fixed for the whole run.
  la::Matrix testX(state.partition.test.size(), problem_.dim());
  la::Vector testY(state.partition.test.size());
  for (std::size_t i = 0; i < state.partition.test.size(); ++i) {
    const auto row = problem_.x.row(state.partition.test[i]);
    std::copy(row.begin(), row.end(), testX.row(i).begin());
    testY[i] = problem_.y[state.partition.test[i]];
  }

  // Campaign pool posterior cache, serving the *fantasy* posterior here.
  // The fantasy GP is the committed-data GP extended with one constant-
  // liar observation per pending pick via Cholesky extension — which
  // preserves posteriorVersion and the bitwise train prefix, so the cache
  // stays on its O(n·m) hit/append paths across fantasy rebuilds: a
  // commit replaces a liar y with the real y at the *same x*, and L,
  // K_cross and V depend only on X, never on y (alpha is read live).
  gp::PoolPredictCache poolCache;
  if (config_.poolPredictCache && !state.pool.empty())
    poolCache.pin(problem_.x, state.pool);
  gp::PredictWorkspace testWs;
  gp::PredictWorkspace poolWs;

  // One in-flight pick: its row, the constant-liar value the fantasy was
  // conditioned on, and the submit-time record (selection metrics are
  // decided at selection time; execution fields are filled at commit).
  struct PendingPick {
    std::size_t row = 0;
    double liar = 0.0;
    IterationRecord rec;
  };
  std::deque<PendingPick> pending;

  gp::GaussianProcess fantasy = gp;
  bool gpCurrent = false;       // main GP fitted on current state.train
  bool fantasyStale = true;     // fantasy needs rebuilding from main
  bool mainHealthy = true;      // last main fit ended non-degraded
  int consecutiveDegraded = 0;

  const auto rebuildFantasy = [&] {
    fantasy = gp;
    for (const auto& p : pending) {
      try {
        fantasy.addObservation(problem_.x.row(p.row), p.liar);
      } catch (const NumericalError&) {
        // Prior-only or collapsed-pivot main model: score without the
        // remaining pending extensions rather than aborting the campaign.
        HealthMonitor::instance().record(
            "fantasy.extend",
            "fantasy extension failed; scoring without pending points");
        break;
      }
    }
    fantasyStale = false;
  };

  // (Re)fits the main GP lazily — only when committed data arrived since
  // the last fit and another pick is about to be selected. `s` is the
  // submit index of that pick (== its eventual IterationRecord::iteration),
  // so the hyperparameter-refit cadence generalizes the synchronous
  // `iteration % refitEvery` rule and coincides with it at maxInFlight=1.
  const auto ensureFitted = [&](std::size_t s) {
    if (!gpCurrent) {
      if (config_.dynamicNoiseBound) {
        const double lo = std::max(
            baseNoiseLo,
            1.0 / std::sqrt(static_cast<double>(state.train.size())));
        gp.config().noise.lo = std::min(lo, gp.config().noise.hi);
      }
      mainHealthy = engine.fitWithFallback(
          (s % static_cast<std::size_t>(config_.refitEvery)) == 0);
      gpCurrent = true;
      fantasyStale = true;
      if (mainHealthy)
        consecutiveDegraded = 0;
      else
        ++consecutiveDegraded;
    }
    if (fantasyStale) rebuildFantasy();
  };

  const auto loopStart = std::chrono::steady_clock::now();
  std::optional<StopReason> stop;
  while (true) {
    // SUBMIT phase: keep the pipeline full while no stop condition holds.
    // Gates mirror the synchronous loop's order and semantics, evaluated
    // on *committed* state (maxIterations additionally counts in-flight
    // picks so the pipeline never overshoots the iteration budget; the
    // cost budget can overshoot by what was in flight when it tripped —
    // a real scheduler cannot un-submit a running job).
    if (!stop && !dispatcher.full()) {
      const std::size_t s =
          static_cast<std::size_t>(state.iteration) + pending.size();
      FaultContext::setIteration(static_cast<int>(s));
      trace::Span iterSpan("al.iteration");
      iterSpan.note("iter", s)
          .note("train", state.train.size())
          .note("pool", state.pool.size())
          .note("inflight", pending.size());
      if (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        loopStart)
              .count() > config_.wallClockBudgetSec) {
        HealthMonitor::instance().record("watchdog",
                                         "wall-clock budget exhausted");
        stop = StopReason::WatchdogExpired;
        continue;
      }
      if (state.pool.empty()) {
        stop = StopReason::PoolExhausted;  // refined after the drain
        continue;
      }
      if (config_.maxIterations >= 0 &&
          s >= static_cast<std::size_t>(config_.maxIterations)) {
        stop = StopReason::MaxIterations;
        continue;
      }
      if (state.cumulativeCost >= config_.costBudget) {
        stop = StopReason::Budget;
        continue;
      }
      if (config_.amsdWindow > 0 && config_.amsdRelTol > 0.0 &&
          state.history.size() >
              static_cast<std::size_t>(config_.amsdWindow)) {
        bool converged = true;
        const auto& h = state.history;
        for (std::size_t i = h.size() - config_.amsdWindow; i < h.size();
             ++i) {
          const double prev = h[i - 1].amsd;
          if (prev <= 0.0 ||
              std::abs(h[i].amsd - prev) / prev > config_.amsdRelTol) {
            converged = false;
            break;
          }
        }
        if (converged) {
          stop = StopReason::AmsdConverged;
          continue;
        }
      }

      ensureFitted(s);
      if (consecutiveDegraded > config_.maxConsecutiveDegraded) {
        HealthMonitor::instance().record(
            "model.unhealthy", "consecutive degraded-fit limit exceeded");
        stop = StopReason::ModelUnhealthy;
        continue;
      }

      // Score the remaining pool and the test set against the fantasy
      // posterior (== the main posterior when nothing is in flight).
      gp::Prediction poolPred;
      la::Vector poolSd;
      double amsd = 0.0;
      double rmse = 0.0;
      {
        trace::Span scoreSpan("al.score");
        scoreSpan.note("pool", state.pool.size())
            .note("test", state.partition.test.size())
            .note("inflight", pending.size());
        const bool served =
            config_.poolPredictCache &&
            poolCache.predict(fantasy, state.pool, false, poolPred);
        if (!served) {
          la::Matrix poolX(state.pool.size(), problem_.dim());
          for (std::size_t i = 0; i < state.pool.size(); ++i) {
            const auto row = problem_.x.row(state.pool[i]);
            std::copy(row.begin(), row.end(), poolX.row(i).begin());
          }
          poolPred = fantasy.predict(poolX, false, poolWs);
        }
        poolSd = poolPred.stdDev();
        amsd = stats::mean(poolSd);
        if (!state.partition.test.empty()) {
          const auto testPred = fantasy.predict(testX, false, testWs);
          rmse = stats::rmse(testPred.mean, testY);
        }
      }

      const SelectionContext ctx{fantasy, problem_,
                                 std::span<const std::size_t>(state.pool),
                                 rng,
                                 config_.poolPredictCache ? &poolCache
                                                          : nullptr,
                                 pending.size()};
      std::size_t pick = 0;
      {
        trace::Span selectSpan("al.select");
        selectSpan.note("pool", state.pool.size())
            .note("inflight", pending.size());
        pick = strategy_->select(ctx);
      }
      ALPERF_ASSERT(pick < state.pool.size(), "pick position out of range");
      const std::size_t row = state.pool[pick];

      PendingPick p;
      p.row = row;
      p.liar = poolPred.mean[pick];
      p.rec.iteration = static_cast<int>(s);
      p.rec.chosenRow = row;
      p.rec.sigmaAtPick = poolSd[pick];
      p.rec.muAtPick = poolPred.mean[pick];
      p.rec.amsd = amsd;
      p.rec.rmse = rmse;
      // Model-health metrics come from the main (committed-data) GP — the
      // fantasy shares its hyperparameters, but its LML would include the
      // liar observations.
      p.rec.noiseVariance = gp.noiseVariance();
      p.rec.lml = gp.logMarginalLikelihood();

      dispatcher.submit(row, problem_.x.row(row));
      try {
        fantasy.addObservation(problem_.x.row(row), p.liar);
      } catch (const NumericalError&) {
        HealthMonitor::instance().record(
            "fantasy.extend",
            "fantasy extension failed; scoring without pending points");
      }
      pending.push_back(std::move(p));
      state.pool.erase(state.pool.begin() +
                       static_cast<std::ptrdiff_t>(pick));
      continue;
    }

    // COMMIT phase: nothing (more) to submit — retire the oldest
    // in-flight pick. Commits happen strictly in dispatch order, so
    // records, training-set growth and RNG consumption are deterministic
    // at any slot count.
    if (pending.empty()) break;
    trace::Span commitSpan("al.commit");
    const AsyncDispatcher::Committed committed = dispatcher.commitNext();
    PendingPick p = std::move(pending.front());
    pending.pop_front();
    ALPERF_ASSERT(committed.row == p.row,
                  "async commit order diverged from dispatch order");
    commitSpan.note("iter", p.rec.iteration).note("row", p.rec.chosenRow);

    IterationRecord rec = p.rec;
    const ExecutionResult& er = committed.result;
    rec.wastedCost = er.wastedCost;
    if (er.quarantined) {
      rec.failedAttempts = er.attempts;
      state.quarantined.push_back(p.row);
      // The fantasy conditioned on a point that never produced data.
      fantasyStale = true;
    } else {
      rec.failedAttempts = er.attempts - 1;
      rec.pickCost = er.measurement.cost;
      if (er.measurement.status == MeasurementStatus::Censored)
        rec.censored = 1.0;
      state.train.push_back(p.row);
      state.trainY.push_back(er.measurement.y);
      gpCurrent = false;  // refit lazily before the next selection
    }
    state.cumulativeCost += rec.pickCost + rec.wastedCost;
    rec.cumulativeCost = state.cumulativeCost;
    state.history.push_back(rec);
    ++state.iteration;
  }

  result.stopReason = stop.value_or(StopReason::PoolExhausted);
  if (result.stopReason == StopReason::PoolExhausted &&
      !state.quarantined.empty())
    result.stopReason = StopReason::OracleExhausted;

  // The final fit below belongs to no campaign iteration: iteration-scoped
  // fault specs must not hit it, and its health incidents carry no stamp.
  FaultContext::setIteration(-1);

  // Snapshot the loop state *before* the final fit consumes the RNG. The
  // pipeline was drained above, so the checkpoint carries no in-flight
  // state: a resumed async campaign preserves the committed prefix
  // bit-for-bit and continues deterministically — but with a freshly
  // refilled pipeline, so its picks may differ from an uninterrupted
  // run's (unlike the synchronous path's exact-continuation guarantee).
  state.gpTheta = engine.lastGoodTheta;
  state.trainAtLastFit = engine.fullFitTrainCount;
  state.rngState = rng.saveState();
  state.hasRngState = true;
  result.history = state.history;

  engine.fitWithFallback(true);
  result.finalGp = gp;
  result.checkpoint = std::move(state);
  return result;
}

}  // namespace alperf::al
