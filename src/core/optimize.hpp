#pragma once

/// \file optimize.hpp
/// Response-surface *optimization* mode — the contrast the paper draws in
/// Sec. II-C: "we seek to characterize the entire problem space with
/// reasonably high accuracy, while RSM is designed to search for
/// combinations of factors that allow reaching specified goals".
///
/// This module implements that other mode on the same GP machinery —
/// pool-based Bayesian optimization (minimization) with the standard
/// acquisition functions — so the two philosophies can be compared
/// head-to-head (bench_ablation_optimization): an optimizer finds the best
/// configuration quickly but leaves the rest of the space unknown; the
/// paper's characterization strategies do the opposite.

#include "core/strategy.hpp"

namespace alperf::al {

/// Expected Improvement for minimization: EI(x) = E[max(best − f(x), 0)]
/// under the GP posterior; ξ >= 0 is the usual exploration margin.
class ExpectedImprovement final : public ScoredStrategy {
 public:
  explicit ExpectedImprovement(double xi = 0.01);
  std::string name() const override { return "expected_improvement"; }
  std::vector<double> scores(const SelectionContext& ctx) override;

 private:
  double xi_;
};

/// Lower Confidence Bound for minimization: score = −(µ − κ·σ); larger κ
/// explores more.
class LowerConfidenceBound final : public ScoredStrategy {
 public:
  explicit LowerConfidenceBound(double kappa = 2.0);
  std::string name() const override { return "lower_confidence_bound"; }
  std::vector<double> scores(const SelectionContext& ctx) override;

 private:
  double kappa_;
};

/// Probability of Improvement: P(f(x) < best − ξ).
class ProbabilityOfImprovement final : public ScoredStrategy {
 public:
  explicit ProbabilityOfImprovement(double xi = 0.01);
  std::string name() const override { return "probability_of_improvement"; }
  std::vector<double> scores(const SelectionContext& ctx) override;

 private:
  double xi_;
};

/// Standard normal PDF / CDF (exposed for tests).
double normalPdf(double z);
double normalCdf(double z);

/// One step of the optimization loop's trace.
struct OptimizationRecord {
  int iteration = 0;
  std::size_t chosenRow = 0;       ///< pool row the acquisition picked
  double observed = 0.0;           ///< response measured at that row
  double bestSoFar = 0.0;          ///< incumbent minimum after this step
  double cumulativeCost = 0.0;     ///< budget spent so far
};

/// Trace plus the incumbent the search converged on.
struct OptimizationResult {
  std::vector<OptimizationRecord> history;
  std::size_t bestRow = 0;   ///< pool row of the best observation
  double bestValue = 0.0;    ///< smallest observed response
};

/// Pool-based minimization loop: seed with `nInitial` random pool rows,
/// then let the acquisition pick `iterations` further experiments.
/// The response is minimized as-is (pass log-cost for cost responses).
OptimizationResult minimizeResponse(const RegressionProblem& problem,
                                    const gp::GaussianProcess& gpPrototype,
                                    ScoredStrategy& acquisition,
                                    std::size_t nInitial, int iterations,
                                    stats::Rng& rng);

}  // namespace alperf::al
