#include "core/optimize.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "stats/sampling.hpp"

namespace alperf::al {

double normalPdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * 3.14159265358979323846);
}

double normalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

namespace {

/// Per-candidate posterior (mean, sd) plus the incumbent best observation.
struct Posterior {
  std::vector<double> mean;
  std::vector<double> sd;
  double best;
};

Posterior candidatePosterior(const SelectionContext& ctx) {
  requireArg(ctx.gp.fitted(), "acquisition: GP must be fitted");
  la::Matrix x(ctx.candidates.size(), ctx.problem.dim());
  for (std::size_t i = 0; i < ctx.candidates.size(); ++i) {
    const auto row = ctx.problem.x.row(ctx.candidates[i]);
    std::copy(row.begin(), row.end(), x.row(i).begin());
  }
  const auto pred = ctx.gp.predict(x);
  Posterior p;
  p.mean = pred.mean;
  p.sd = pred.stdDev();
  const auto& y = ctx.gp.trainY();
  p.best = *std::min_element(y.begin(), y.end());
  return p;
}

}  // namespace

ExpectedImprovement::ExpectedImprovement(double xi) : xi_(xi) {
  requireArg(xi >= 0.0, "ExpectedImprovement: xi must be >= 0");
}

std::vector<double> ExpectedImprovement::scores(const SelectionContext& ctx) {
  const Posterior p = candidatePosterior(ctx);
  std::vector<double> s(p.mean.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    const double improve = p.best - p.mean[i] - xi_;
    if (p.sd[i] < 1e-12) {
      s[i] = std::max(improve, 0.0);
    } else {
      const double z = improve / p.sd[i];
      s[i] = improve * normalCdf(z) + p.sd[i] * normalPdf(z);
    }
  }
  return s;
}

LowerConfidenceBound::LowerConfidenceBound(double kappa) : kappa_(kappa) {
  requireArg(kappa >= 0.0, "LowerConfidenceBound: kappa must be >= 0");
}

std::vector<double> LowerConfidenceBound::scores(
    const SelectionContext& ctx) {
  const Posterior p = candidatePosterior(ctx);
  std::vector<double> s(p.mean.size());
  for (std::size_t i = 0; i < s.size(); ++i)
    s[i] = -(p.mean[i] - kappa_ * p.sd[i]);
  return s;
}

ProbabilityOfImprovement::ProbabilityOfImprovement(double xi) : xi_(xi) {
  requireArg(xi >= 0.0, "ProbabilityOfImprovement: xi must be >= 0");
}

std::vector<double> ProbabilityOfImprovement::scores(
    const SelectionContext& ctx) {
  const Posterior p = candidatePosterior(ctx);
  std::vector<double> s(p.mean.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (p.sd[i] < 1e-12) {
      s[i] = p.mean[i] < p.best - xi_ ? 1.0 : 0.0;
    } else {
      s[i] = normalCdf((p.best - p.mean[i] - xi_) / p.sd[i]);
    }
  }
  return s;
}

OptimizationResult minimizeResponse(const RegressionProblem& problem,
                                    const gp::GaussianProcess& gpPrototype,
                                    ScoredStrategy& acquisition,
                                    std::size_t nInitial, int iterations,
                                    stats::Rng& rng) {
  problem.validate();
  requireArg(nInitial >= 1, "minimizeResponse: need at least one seed");
  requireArg(nInitial + iterations <= problem.size(),
             "minimizeResponse: budget exceeds pool size");

  std::vector<std::size_t> train =
      stats::sampleWithoutReplacement(problem.size(), nInitial, rng);
  std::vector<std::size_t> pool;
  {
    std::vector<char> used(problem.size(), 0);
    for (auto i : train) used[i] = 1;
    for (std::size_t i = 0; i < problem.size(); ++i)
      if (!used[i]) pool.push_back(i);
  }

  OptimizationResult result;
  result.bestValue = problem.y[train[0]];
  result.bestRow = train[0];
  const auto updateBest = [&](std::size_t row) {
    if (problem.y[row] < result.bestValue) {
      result.bestValue = problem.y[row];
      result.bestRow = row;
    }
  };
  for (auto row : train) updateBest(row);

  gp::GaussianProcess gp = gpPrototype;
  double cumulativeCost = 0.0;
  for (auto row : train) cumulativeCost += problem.cost[row];

  for (int iter = 0; iter < iterations && !pool.empty(); ++iter) {
    la::Matrix x(train.size(), problem.dim());
    la::Vector y(train.size());
    for (std::size_t i = 0; i < train.size(); ++i) {
      const auto src = problem.x.row(train[i]);
      std::copy(src.begin(), src.end(), x.row(i).begin());
      y[i] = problem.y[train[i]];
    }
    gp.fit(std::move(x), std::move(y), rng);

    const SelectionContext ctx{gp, problem,
                               std::span<const std::size_t>(pool), rng};
    const std::size_t pos = acquisition.select(ctx);
    const std::size_t row = pool[pos];
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pos));
    train.push_back(row);
    cumulativeCost += problem.cost[row];
    updateBest(row);

    OptimizationRecord rec;
    rec.iteration = iter;
    rec.chosenRow = row;
    rec.observed = problem.y[row];
    rec.bestSoFar = result.bestValue;
    rec.cumulativeCost = cumulativeCost;
    result.history.push_back(rec);
  }
  return result;
}

}  // namespace alperf::al
