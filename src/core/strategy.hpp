#pragma once

/// \file strategy.hpp
/// Experiment-selection strategies (acquisition functions) for active
/// learning — the paper's Section V algorithms plus baselines and the
/// batch extension from its future-work discussion.
///
///   VarianceReduction    argmax σ_f(x)           (paper Sec. V-B3)
///   CostEfficiency       argmax σ_f(x) − µ_f(x)  (paper eq. 14; valid
///                        because µ is the log-cost response)
///   CostWeightedVariance argmax σ_f(x) / 10^µ(x) (linear-space variant)
///   RandomSelection      uniform baseline
///   Emcm                 Expected Model Change Maximization (Cai et al.),
///                        the bootstrap-ensemble baseline the paper argues
///                        against in Sec. III
///   FantasyBatch         greedy batch via fantasy variance updates (GP
///                        posterior variance is independent of y, so a
///                        batch can be planned exactly) — Sec. VI
///                        "experiments run in parallel" future work.

#include <memory>

#include "core/problem.hpp"
#include "gp/gp.hpp"
#include "gp/pool_predict_cache.hpp"

namespace alperf::al {

/// Everything a strategy may consult when picking the next experiment.
struct SelectionContext {
  const gp::GaussianProcess& gp;     ///< fitted on the current training set
  const RegressionProblem& problem;
  std::span<const std::size_t> candidates;  ///< problem-row indices in pool
  stats::Rng& rng;
  /// Campaign-level pool posterior cache (nullable). When set, scored
  /// strategies serve their main-GP pool predictions through it instead of
  /// re-deriving K_cross/V per call; served values are bit-identical to
  /// direct prediction, so strategies may mix paths freely (fantasy and
  /// ensemble GPs always predict directly).
  gp::PoolPredictCache* poolCache = nullptr;
  /// Number of in-flight (submitted, uncommitted) experiments when the
  /// asynchronous dispatch engine is selecting (ExecutionConfig::
  /// maxInFlight > 1). ctx.gp is then the *fantasy* posterior — already
  /// conditioned on the pending picks at their constant-liar values — so
  /// variance-based strategies need no special handling; strategies with
  /// their own lookahead may consult this to budget it. Always 0 on the
  /// synchronous path.
  std::size_t numPending = 0;
};

class Strategy {
 public:
  virtual ~Strategy() = default;

  virtual std::string name() const = 0;

  /// Returns the *position within ctx.candidates* of the chosen
  /// experiment. ctx.candidates is non-empty.
  virtual std::size_t select(const SelectionContext& ctx) = 0;

  /// Picks `batchSize` distinct candidate positions for parallel
  /// execution. Default: top-k of the single-point acquisition.
  virtual std::vector<std::size_t> selectBatch(const SelectionContext& ctx,
                                               std::size_t batchSize);
};

using StrategyPtr = std::unique_ptr<Strategy>;

/// Factory type used by BatchRunner so each replicate gets a fresh
/// strategy instance.
using StrategyFactory = std::function<StrategyPtr()>;

/// Strategies whose acquisition is a per-candidate score (all but
/// FantasyBatch). Exposes the scores for inspection/testing.
class ScoredStrategy : public Strategy {
 public:
  std::size_t select(const SelectionContext& ctx) override;
  std::vector<std::size_t> selectBatch(const SelectionContext& ctx,
                                       std::size_t batchSize) override;

  /// Higher is better.
  virtual std::vector<double> scores(const SelectionContext& ctx) = 0;
};

/// argmax of the predictive standard deviation.
class VarianceReduction final : public ScoredStrategy {
 public:
  std::string name() const override { return "variance_reduction"; }
  std::vector<double> scores(const SelectionContext& ctx) override;
};

/// The paper's cost-aware criterion (eq. 14): argmax σ_f(x) − µ_f(x),
/// with the response interpreted as log-cost.
class CostEfficiency final : public ScoredStrategy {
 public:
  std::string name() const override { return "cost_efficiency"; }
  std::vector<double> scores(const SelectionContext& ctx) override;
};

/// Linear-space variant: σ_f(x) divided by the predicted linear cost
/// 10^µ(x) (assumes the response is log10 of the cost measure).
class CostWeightedVariance final : public ScoredStrategy {
 public:
  std::string name() const override { return "cost_weighted_variance"; }
  std::vector<double> scores(const SelectionContext& ctx) override;
};

/// Uniform-random baseline.
class RandomSelection final : public Strategy {
 public:
  std::string name() const override { return "random"; }
  std::size_t select(const SelectionContext& ctx) override;
};

/// Expected Model Change Maximization (Cai, Zhang & Zhou 2013): an
/// ensemble of K GPs trained on bootstrap resamples of the current
/// training set (hyperparameters frozen to the main GP's); score is
/// mean_k |f(x) − f_k(x)| · ‖x‖.
class Emcm final : public ScoredStrategy {
 public:
  explicit Emcm(int ensembleSize = 4);
  std::string name() const override { return "emcm"; }
  std::vector<double> scores(const SelectionContext& ctx) override;

 private:
  int ensembleSize_;
};

/// Greedy batch selection with fantasy updates: repeatedly take the
/// highest-variance candidate, then condition a copy of the GP on it
/// (using the predictive mean as a fantasy observation — the posterior
/// *variance* update is exact regardless) so the next pick avoids
/// redundant locations. Single-point select() is plain VarianceReduction.
class FantasyBatch final : public Strategy {
 public:
  std::string name() const override { return "fantasy_batch"; }
  std::size_t select(const SelectionContext& ctx) override;
  std::vector<std::size_t> selectBatch(const SelectionContext& ctx,
                                       std::size_t batchSize) override;
};

}  // namespace alperf::al
