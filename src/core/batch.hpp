#pragma once

/// \file batch.hpp
/// Replicated AL experiments: run the same learner over R random
/// partitions of the same problem (paper Sec. IV: "batches of random
/// partitions"), aggregate per-iteration metric curves, and support paired
/// strategy comparisons on identical partitions (Fig. 8's methodology).

#include "core/learner.hpp"

namespace alperf::al {

/// Controls a replicated batch: how many runs, the shared per-run AL
/// configuration, and the seed the per-replicate partitions/RNGs derive
/// from.
struct BatchConfig {
  int replicates = 10;     ///< number of independent realizations
  AlConfig al;             ///< per-run AL configuration (shared)
  std::uint64_t seed = 1;  ///< master seed; per-replicate RNGs split off it
};

/// The R completed runs plus cross-run aggregation helpers.
struct BatchResult {
  std::vector<AlResult> runs;  ///< one AlResult per replicate, in order

  /// Per-iteration mean of a metric across runs, truncated to the
  /// shortest run.
  std::vector<double> meanSeries(double IterationRecord::* field) const;

  /// Length of the shortest run.
  std::size_t minIterations() const;
};

/// Runs `replicates` independent AL realizations (fresh partition and
/// strategy per replicate).
BatchResult runBatch(const RegressionProblem& problem,
                     const gp::GaussianProcess& gpPrototype,
                     const StrategyFactory& makeStrategy,
                     const BatchConfig& config);

/// Runs several strategies on the *same* R partitions (paired design):
/// result[s] holds strategy s's batch. Partition r is identical across
/// strategies, isolating the strategy effect.
std::vector<BatchResult> runPairedBatch(
    const RegressionProblem& problem, const gp::GaussianProcess& gpPrototype,
    const std::vector<StrategyFactory>& strategies,
    const BatchConfig& config);

}  // namespace alperf::al
