#pragma once

/// \file batch.hpp
/// Replicated AL experiments: run the same learner over R random
/// partitions of the same problem (paper Sec. IV: "batches of random
/// partitions"), aggregate per-iteration metric curves, and support paired
/// strategy comparisons on identical partitions (Fig. 8's methodology).

#include "core/learner.hpp"

namespace alperf::al {

struct BatchConfig {
  int replicates = 10;
  AlConfig al;
  std::uint64_t seed = 1;
};

struct BatchResult {
  std::vector<AlResult> runs;

  /// Per-iteration mean of a metric across runs, truncated to the
  /// shortest run.
  std::vector<double> meanSeries(double IterationRecord::* field) const;

  /// Length of the shortest run.
  std::size_t minIterations() const;
};

/// Runs `replicates` independent AL realizations (fresh partition and
/// strategy per replicate).
BatchResult runBatch(const RegressionProblem& problem,
                     const gp::GaussianProcess& gpPrototype,
                     const StrategyFactory& makeStrategy,
                     const BatchConfig& config);

/// Runs several strategies on the *same* R partitions (paired design):
/// result[s] holds strategy s's batch. Partition r is identical across
/// strategies, isolating the strategy effect.
std::vector<BatchResult> runPairedBatch(
    const RegressionProblem& problem, const gp::GaussianProcess& gpPrototype,
    const std::vector<StrategyFactory>& strategies,
    const BatchConfig& config);

}  // namespace alperf::al
