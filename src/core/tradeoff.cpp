#include "core/tradeoff.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace alperf::al {

double TradeoffCurve::errorAt(double c) const {
  requireArg(!cost.empty(), "TradeoffCurve: empty curve");
  if (c <= cost.front()) return error.front();
  if (c >= cost.back()) return error.back();
  const auto it = std::upper_bound(cost.begin(), cost.end(), c);
  const std::size_t hi = static_cast<std::size_t>(it - cost.begin());
  const std::size_t lo = hi - 1;
  // Log-linear interpolation (costs span orders of magnitude).
  const double t = (std::log(c) - std::log(cost[lo])) /
                   (std::log(cost[hi]) - std::log(cost[lo]));
  return error[lo] * (1.0 - t) + error[hi] * t;
}

namespace {

/// RMSE achieved by a run once it has spent cost c: the error recorded at
/// the last iteration whose cumulative cost is <= c (before the first
/// iteration, the first recorded error).
double runErrorAtCost(const AlResult& run, double c) {
  ALPERF_ASSERT(!run.history.empty(), "runErrorAtCost: empty run");
  double err = run.history.front().rmse;
  for (const auto& rec : run.history) {
    if (rec.cumulativeCost > c) break;
    err = rec.rmse;
  }
  return err;
}

}  // namespace

TradeoffCurve aggregateTradeoff(const BatchResult& batch, int gridPoints) {
  requireArg(!batch.runs.empty(), "aggregateTradeoff: no runs");
  requireArg(gridPoints >= 2, "aggregateTradeoff: need >= 2 grid points");

  // Common cost range: from the largest first-pick cost to the smallest
  // total cost, so every run contributes everywhere on the grid.
  double lo = 0.0;
  double hi = std::numeric_limits<double>::infinity();
  for (const auto& run : batch.runs) {
    requireArg(!run.history.empty(), "aggregateTradeoff: run with no picks");
    lo = std::max(lo, run.history.front().cumulativeCost);
    hi = std::min(hi, run.history.back().cumulativeCost);
  }
  requireArg(lo > 0.0 && hi > lo,
             "aggregateTradeoff: degenerate common cost range");

  TradeoffCurve curve;
  curve.cost.resize(gridPoints);
  curve.error.assign(gridPoints, 0.0);
  const double step = (std::log(hi) - std::log(lo)) / (gridPoints - 1);
  for (int i = 0; i < gridPoints; ++i)
    curve.cost[i] = std::exp(std::log(lo) + i * step);
  for (const auto& run : batch.runs)
    for (int i = 0; i < gridPoints; ++i)
      curve.error[i] += runErrorAtCost(run, curve.cost[i]);
  for (double& e : curve.error) e /= static_cast<double>(batch.runs.size());
  return curve;
}

CrossoverReport compareTradeoffs(const TradeoffCurve& baseline,
                                 const TradeoffCurve& challenger,
                                 const std::vector<double>& multiples) {
  requireArg(!baseline.cost.empty() && !challenger.cost.empty(),
             "compareTradeoffs: empty curve");
  CrossoverReport report;

  // Common grid: intersect ranges, use the baseline's resolution.
  const double lo = std::max(baseline.cost.front(), challenger.cost.front());
  const double hi = std::min(baseline.cost.back(), challenger.cost.back());
  requireArg(hi > lo, "compareTradeoffs: disjoint cost ranges");
  const int n = static_cast<int>(baseline.cost.size());
  std::vector<double> grid(n);
  const double step = (std::log(hi) - std::log(lo)) / (n - 1);
  for (int i = 0; i < n; ++i) grid[i] = std::exp(std::log(lo) + i * step);

  // Crossover: first grid cost from which the challenger stays at or
  // below the baseline for the remainder of the range.
  int crossIdx = -1;
  for (int i = n - 1; i >= 0; --i) {
    if (challenger.errorAt(grid[i]) <= baseline.errorAt(grid[i]))
      crossIdx = i;
    else
      break;
  }
  if (crossIdx < 0 || crossIdx == n - 1) return report;  // never / trivially
  report.found = true;
  report.crossoverCost = grid[crossIdx];

  const auto reduction = [&](double c) {
    const double b = baseline.errorAt(c);
    const double ch = challenger.errorAt(c);
    return b > 0.0 ? (b - ch) / b : 0.0;
  };
  for (double m : multiples) {
    const double c = report.crossoverCost * m;
    if (c > hi) break;
    report.reductions.emplace_back(m, reduction(c));
  }
  for (int i = crossIdx; i < n; ++i) {
    const double r = reduction(grid[i]);
    if (r > report.maxReduction) {
      report.maxReduction = r;
      report.maxReductionCost = grid[i];
    }
  }
  return report;
}

}  // namespace alperf::al
