#pragma once

/// \file dispatch.hpp
/// Bounded in-flight asynchronous experiment dispatch with deterministic
/// commit order — the execution engine behind `ExecutionConfig::
/// maxInFlight > 1`.
///
/// A real measurement backend is a cluster scheduler: submitting a job
/// returns immediately and the result arrives minutes later. The
/// synchronous ExperimentExecutor blocks the whole campaign on each
/// measurement; AsyncDispatcher instead keeps up to `maxInFlight`
/// measurements running concurrently, each driven through the full
/// RetryPolicy state machine (retry / backoff / quarantine, executor.hpp)
/// inside its own slot, while the AL loop keeps selecting new experiments
/// against a fantasy posterior (learner.cpp / continuous.cpp).
///
/// **Determinism contract.** Results are *committed* — handed back to the
/// caller — strictly in submission order, regardless of the order in
/// which slots finish. Everything the AL loop does with a result
/// therefore happens in a thread-count-independent order, which is what
/// keeps async campaign traces bit-identical at any slot count for a
/// fixed `maxInFlight` (the pick *sequence* does depend on maxInFlight:
/// pipelining is a real algorithmic change, selection sees k−1 fantasy
/// points instead of their measurements).
///
/// **Threading model.** The dispatcher owns up to `maxInFlight` dedicated
/// slot threads, spawned lazily on demand and named `exec.slot.N` so
/// every measurement's `exec.measure` / `exec.attempt` spans land on a
/// per-slot trace lane. Oracle calls are latency-bound (the slot mostly
/// *waits* on the backend), so they deliberately do not run on the
/// compute ThreadPool: its width is tied to the core count, which must
/// not cap the dispatch width, and parking compute workers on oracle
/// latency would starve the GP fits and pool scoring that run
/// concurrently with the measurements — learning while measuring is the
/// point. Backends with native asynchrony (Oracle::withAsync) are handed
/// the job at submit() time, on the calling thread, and the slot only
/// parks on `await`.
///
/// All public methods except the ledger getters must be called from one
/// coordinating thread (the AL loop); the ledger and the commit path are
/// internally synchronized with the slots.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/executor.hpp"
#include "core/oracle.hpp"

namespace alperf::al {

class AsyncDispatcher {
 public:
  /// Row id used for experiments without a problem row (continuous).
  static constexpr std::size_t kNoRow = Oracle::kNoRow;

  /// The oracle must be measurable (`static_cast<bool>(oracle)`); the
  /// config is validated. No threads are spawned until the first submit.
  AsyncDispatcher(Oracle oracle, ExecutionConfig config);

  /// Joins all slot threads. The caller is expected to have drained every
  /// submission via commitNext(); any still-running measurement finishes
  /// (its slot is joined) but its result is discarded uncommitted.
  ~AsyncDispatcher();

  AsyncDispatcher(const AsyncDispatcher&) = delete;
  AsyncDispatcher& operator=(const AsyncDispatcher&) = delete;

  /// Dispatch width (ExecutionConfig::maxInFlight).
  int capacity() const { return config_.maxInFlight; }
  /// Submissions not yet committed (done-but-uncommitted ones included).
  std::size_t inFlight() const;
  bool full() const {
    return inFlight() >= static_cast<std::size_t>(config_.maxInFlight);
  }
  bool idle() const { return inFlight() == 0; }

  /// Submits one experiment (problem row, or kNoRow, plus its design
  /// point, which is copied) and returns its ticket — a 0-based
  /// submission sequence number. Returns immediately; the measurement
  /// runs on a slot thread. Throws std::logic_error when full().
  std::uint64_t submit(std::size_t row, std::span<const double> x);

  /// One committed experiment: the submission's identity plus the full
  /// retry-state-machine outcome.
  struct Committed {
    std::uint64_t ticket = 0;
    std::size_t row = kNoRow;
    std::vector<double> x;
    ExecutionResult result;
  };

  /// Blocks until the *oldest uncommitted* submission has finished and
  /// returns its outcome — never a younger one, even when younger slots
  /// finished first. Throws std::logic_error when idle(). Ledger counters
  /// are updated here, on the calling thread, so they advance in
  /// deterministic commit order too.
  Committed commitNext();

  /// Campaign ledger across committed executions — same semantics as
  /// ExperimentExecutor's.
  double totalWastedCost() const;
  int totalFailedAttempts() const;
  int totalQuarantined() const;

 private:
  struct Job;
  struct State;

  void slotMain(int slot);

  Oracle oracle_;
  ExecutionConfig config_;
  std::unique_ptr<State> state_;
};

}  // namespace alperf::al
