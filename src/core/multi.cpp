#include "core/multi.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "stats/descriptive.hpp"

namespace alperf::al {

void MultiResponseProblem::validate() const {
  requireArg(!responses.empty(), "MultiResponseProblem: no responses");
  requireArg(responseNames.size() == responses.size(),
             "MultiResponseProblem: names/responses count mismatch");
  requireArg(x.rows() > 0 && x.cols() > 0,
             "MultiResponseProblem: empty design matrix");
  for (const auto& y : responses)
    requireArg(y.size() == x.rows(),
               "MultiResponseProblem: response length mismatch");
  requireArg(cost.size() == x.rows(),
             "MultiResponseProblem: cost length mismatch");
}

MultiAlResult runMultiResponseAl(const MultiResponseProblem& problem,
                                 const gp::GaussianProcess& gpPrototype,
                                 const MultiAlConfig& config,
                                 stats::Rng& rng) {
  problem.validate();
  requireArg(config.refitEvery >= 1, "runMultiResponseAl: refitEvery >= 1");
  const std::size_t nResp = problem.numResponses();

  const auto partition = data::triPartition(
      problem.size(), config.nInitial, config.activeFraction, rng);

  // Per-response scale for normalizing uncertainties: the SD of the
  // response over the whole pool (a fixed, data-driven unit).
  std::vector<double> scale(nResp, 1.0);
  for (std::size_t r = 0; r < nResp; ++r) {
    if (problem.responses[r].size() >= 2) {
      const double sd = stats::sampleStdDev(problem.responses[r]);
      if (sd > 0.0) scale[r] = sd;
    }
  }

  std::vector<std::size_t> train = partition.initial;
  std::vector<std::size_t> pool = partition.active;
  std::vector<gp::GaussianProcess> gps(nResp, gpPrototype);

  MultiAlResult result;
  result.partition = partition;

  la::Matrix testX(partition.test.size(), problem.dim());
  for (std::size_t i = 0; i < partition.test.size(); ++i) {
    const auto row = problem.x.row(partition.test[i]);
    std::copy(row.begin(), row.end(), testX.row(i).begin());
  }

  double cumulativeCost = 0.0;
  int iteration = 0;
  while (!pool.empty() &&
         (config.maxIterations < 0 || iteration < config.maxIterations)) {
    // Fit every response GP on the shared training rows.
    la::Matrix trainX(train.size(), problem.dim());
    for (std::size_t i = 0; i < train.size(); ++i) {
      const auto row = problem.x.row(train[i]);
      std::copy(row.begin(), row.end(), trainX.row(i).begin());
    }
    for (std::size_t r = 0; r < nResp; ++r) {
      la::Vector y(train.size());
      for (std::size_t i = 0; i < train.size(); ++i)
        y[i] = problem.responses[r][train[i]];
      gps[r].config().optimize = (iteration % config.refitEvery) == 0;
      gps[r].fit(trainX, std::move(y), rng);
    }

    // Candidate scores: aggregated normalized SD (optionally cost-aware).
    la::Matrix poolX(pool.size(), problem.dim());
    for (std::size_t i = 0; i < pool.size(); ++i) {
      const auto row = problem.x.row(pool[i]);
      std::copy(row.begin(), row.end(), poolX.row(i).begin());
    }
    std::vector<gp::Prediction> preds;
    preds.reserve(nResp);
    for (std::size_t r = 0; r < nResp; ++r)
      preds.push_back(gps[r].predict(poolX));

    MultiIterationRecord rec;
    rec.iteration = iteration;
    rec.rmse.resize(nResp);
    rec.amsd.resize(nResp);
    for (std::size_t r = 0; r < nResp; ++r) {
      const auto sd = preds[r].stdDev();
      rec.amsd[r] = stats::mean(sd);
      if (!partition.test.empty()) {
        const auto testPred = gps[r].predict(testX);
        la::Vector truth(partition.test.size());
        for (std::size_t i = 0; i < partition.test.size(); ++i)
          truth[i] = problem.responses[r][partition.test[i]];
        rec.rmse[r] = stats::rmse(testPred.mean, truth);
      }
    }

    std::size_t best = 0;
    double bestScore = -1e300;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      double score = config.aggregateMax ? -1e300 : 0.0;
      for (std::size_t r = 0; r < nResp; ++r) {
        const double s =
            std::sqrt(std::max(preds[r].variance[i], 0.0)) / scale[r];
        if (config.aggregateMax)
          score = std::max(score, s);
        else
          score += s / static_cast<double>(nResp);
      }
      if (config.costAware)
        score -= preds[0].mean[i] / scale[0];  // response 0 is log-cost
      if (score > bestScore) {
        bestScore = score;
        best = i;
      }
    }

    rec.chosenRow = pool[best];
    cumulativeCost += problem.cost[pool[best]];
    rec.cumulativeCost = cumulativeCost;
    result.history.push_back(std::move(rec));

    train.push_back(pool[best]);
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(best));
    ++iteration;
  }

  result.finalGps = std::move(gps);
  return result;
}

}  // namespace alperf::al
