#include "core/continuous.hpp"

#include <chrono>
#include <cmath>
#include <deque>
#include <optional>

#include "common/error.hpp"
#include "common/fault_inject.hpp"
#include "common/health.hpp"
#include "common/trace.hpp"
#include "core/dispatch.hpp"
#include "opt/multistart.hpp"

namespace alperf::al {

AcquisitionFn varianceAcquisition() {
  return [](double, double sd) { return sd; };
}

AcquisitionFn costEfficiencyAcquisition() {
  return [](double mean, double sd) { return sd - mean; };
}

ContinuousSuggestion suggestContinuous(const gp::GaussianProcess& gp,
                                       const opt::BoxBounds& bounds,
                                       const AcquisitionFn& acq,
                                       int nStarts, stats::Rng& rng) {
  requireArg(gp.fitted(), "suggestContinuous: GP must be fitted");
  requireArg(acq != nullptr, "suggestContinuous: null acquisition");
  requireArg(nStarts >= 1, "suggestContinuous: nStarts must be >= 1");
  const std::size_t d = bounds.dim();
  requireArg(gp.trainX().cols() == d,
             "suggestContinuous: bounds dimension mismatch");

  // Minimize the negative acquisition; numeric gradients are adequate
  // because the posterior is smooth and cheap to evaluate pointwise.
  const opt::FunctionObjective objective(
      d, [&gp, &acq](std::span<const double> x) {
        const auto [mean, var] = gp.predictOne(x);
        const double a = acq(mean, std::sqrt(std::max(var, 0.0)));
        return std::isfinite(a) ? -a
                                : std::numeric_limits<double>::infinity();
      });
  const opt::Lbfgs local(
      {.maxIterations = 60, .gradTol = 1e-7, .stepTol = 1e-12, .fTol = 0.0});
  const auto minimizer = [&local](const opt::Objective& f,
                                  std::span<const double> x0,
                                  const opt::BoxBounds& b) {
    return local.minimize(f, x0, b);
  };
  const auto start = bounds.sample(rng);
  const auto result =
      opt::multiStartMinimize(objective, start, bounds, minimizer,
                              nStarts - 1, rng);

  ContinuousSuggestion suggestion;
  suggestion.x = result.best.x;
  const auto [mean, var] = gp.predictOne(suggestion.x);
  suggestion.mean = mean;
  suggestion.sd = std::sqrt(std::max(var, 0.0));
  suggestion.acquisition = -result.best.fval;
  return suggestion;
}

GradientAcquisition varianceAcquisitionGrad() {
  return {[](double, double sd) { return sd; },
          [](double, double) { return std::pair{0.0, 1.0}; }};
}

GradientAcquisition costEfficiencyAcquisitionGrad() {
  return {[](double mean, double sd) { return sd - mean; },
          [](double, double) { return std::pair{-1.0, 1.0}; }};
}

ContinuousSuggestion suggestContinuous(const gp::GaussianProcess& gp,
                                       const opt::BoxBounds& bounds,
                                       const GradientAcquisition& acq,
                                       int nStarts, stats::Rng& rng) {
  requireArg(gp.fitted(), "suggestContinuous: GP must be fitted");
  requireArg(acq.value != nullptr && acq.partials != nullptr,
             "suggestContinuous: incomplete gradient acquisition");
  requireArg(nStarts >= 1, "suggestContinuous: nStarts must be >= 1");
  const std::size_t d = bounds.dim();
  requireArg(gp.trainX().cols() == d,
             "suggestContinuous: bounds dimension mismatch");

  const auto negValueAndGrad = [&gp, &acq](std::span<const double> x,
                                           std::span<double> g) {
    const auto p = gp.predictOneWithGradient(x);
    const double sd = std::sqrt(std::max(p.variance, 1e-18));
    const double a = acq.value(p.mean, sd);
    const auto [dMu, dSd] = acq.partials(p.mean, sd);
    for (std::size_t i = 0; i < g.size(); ++i) {
      const double dSdDx = p.varianceGrad[i] / (2.0 * sd);
      g[i] = -(dMu * p.meanGrad[i] + dSd * dSdDx);
    }
    return std::isfinite(a) ? -a : std::numeric_limits<double>::infinity();
  };
  const opt::FunctionObjective objective(
      d,
      [&gp, &acq](std::span<const double> x) {
        const auto [mean, var] = gp.predictOne(x);
        const double a = acq.value(mean, std::sqrt(std::max(var, 0.0)));
        return std::isfinite(a) ? -a
                                : std::numeric_limits<double>::infinity();
      },
      opt::FunctionObjective::CombinedFn(negValueAndGrad));
  const opt::Lbfgs local(
      {.maxIterations = 60, .gradTol = 1e-7, .stepTol = 1e-12, .fTol = 0.0});
  const auto minimizer = [&local](const opt::Objective& f,
                                  std::span<const double> x0,
                                  const opt::BoxBounds& b) {
    return local.minimize(f, x0, b);
  };
  const auto start = bounds.sample(rng);
  const auto result = opt::multiStartMinimize(objective, start, bounds,
                                              minimizer, nStarts - 1, rng);

  ContinuousSuggestion suggestion;
  suggestion.x = result.best.x;
  const auto [mean, var] = gp.predictOne(suggestion.x);
  suggestion.mean = mean;
  suggestion.sd = std::sqrt(std::max(var, 0.0));
  suggestion.acquisition = -result.best.fval;
  return suggestion;
}

namespace {

/// The GP's training set grown by one observation.
std::pair<la::Matrix, la::Vector> grownTrainingSet(
    const gp::GaussianProcess& gp, std::span<const double> xNew,
    double yNew) {
  const la::Matrix& x = gp.trainX();
  la::Matrix grown(x.rows() + 1, x.cols());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const auto src = x.row(i);
    std::copy(src.begin(), src.end(), grown.row(i).begin());
  }
  std::copy(xNew.begin(), xNew.end(), grown.row(x.rows()).begin());
  la::Vector yAll = gp.trainY();
  yAll.push_back(yNew);
  return {std::move(grown), std::move(yAll)};
}

/// Full refit on the grown set, walking the same degradation ladder as
/// ActiveLearner (docs/ROBUSTNESS.md): the requested fit, the same fit
/// with the jitter cap escalated to `recoveryJitterScale`, a posterior-
/// only refit at `lastGoodTheta`, and finally a prior-only posterior
/// (which cannot fail). Returns true when the model ended with a genuine
/// GP posterior, false when it is degraded to the prior.
bool refitGrownWithFallback(gp::GaussianProcess& gp,
                            std::span<const double> xNew, double yNew,
                            bool optimize, double recoveryJitterScale,
                            std::vector<double>& lastGoodTheta,
                            int& fitFallbacks, stats::Rng& rng) {
  auto [grown, yAll] = grownTrainingSet(gp, xNew, yNew);
  const double baseJitterScale = gp.config().jitterScaleMax;
  const auto tryFit = [&](bool opt) {
    gp.config().optimize = opt;
    try {
      gp.fit(la::Matrix(grown), la::Vector(yAll), rng);
      return std::isfinite(gp.logMarginalLikelihood());
    } catch (const NumericalError&) {
      return false;
    }
  };
  bool ok = tryFit(optimize);
  if (!ok) {
    HealthMonitor::instance().record("fit.retry",
                                     "refit with escalated jitter cap");
    gp.config().jitterScaleMax =
        std::max(baseJitterScale, recoveryJitterScale);
    ok = tryFit(optimize);
  }
  if (!ok) {
    gp.setThetaFull(lastGoodTheta);
    ok = tryFit(false);
    if (ok) {
      ++fitFallbacks;
      HealthMonitor::instance().record(
          "fit.fallback.theta", "posterior refit at last good theta");
    }
  }
  gp.config().jitterScaleMax = baseJitterScale;
  if (ok) {
    lastGoodTheta = gp.thetaFull();
    return true;
  }
  gp.setThetaFull(lastGoodTheta);
  gp.fitPriorOnly(std::move(grown), std::move(yAll));
  ++fitFallbacks;
  HealthMonitor::instance().record("fit.fallback.prior",
                                   "prior-only posterior installed");
  return false;
}

/// The asynchronous continuous loop — `config.execution.maxInFlight > 1`.
/// Same structure as ActiveLearner::runLoopAsync (learner.cpp): suggest
/// against a fantasy posterior conditioned on pending points at their
/// predictive means, dispatch through AsyncDispatcher, commit in
/// suggestion order; the real GP update (with the full degradation
/// ladder) happens at commit time, so records and fits stay
/// slot-count-independent. On a stop condition the pipeline is drained —
/// already-running measurements are committed and recorded.
ContinuousAlResult runContinuousAlAsync(
    gp::GaussianProcess gp, la::Matrix seedX, la::Vector seedY,
    const opt::BoxBounds& bounds, const Oracle& oracle,
    const ExecutionConfig& exec, const AcquisitionFn& acq,
    const ContinuousAlConfig& config, stats::Rng& rng) {
  // The seed fit is a precondition, not a campaign step (as in the
  // synchronous loop).
  FaultContext::setIteration(-1);
  gp.config().optimize = true;
  gp.fit(std::move(seedX), std::move(seedY), rng);

  ContinuousAlResult result{.history = {}, .finalGp = gp};
  AsyncDispatcher dispatcher(oracle, exec);

  /// One in-flight suggestion: its location, the constant-liar value the
  /// fantasy was conditioned on, and the submit-time record fields.
  struct PendingPick {
    std::vector<double> x;
    double liar = 0.0;
    ContinuousAlRecord rec;
  };
  std::deque<PendingPick> pending;

  gp::GaussianProcess fantasy = gp;
  bool fantasyStale = false;  // fantasy == gp right now
  std::vector<double> lastGoodTheta = gp.thetaFull();
  int consecutiveFailures = 0;
  int consecutiveDegraded = 0;
  int committed = 0;
  std::optional<StopReason> stop;
  const auto loopStart = std::chrono::steady_clock::now();

  const auto rebuildFantasy = [&] {
    fantasy = gp;
    for (const auto& p : pending) {
      try {
        fantasy.addObservation(p.x, p.liar);
      } catch (const NumericalError&) {
        // Degraded main model: suggest without the remaining pending
        // extensions rather than aborting the campaign.
        HealthMonitor::instance().record(
            "fantasy.extend",
            "fantasy extension failed; suggesting without pending points");
        break;
      }
    }
    fantasyStale = false;
  };

  while (true) {
    // SUBMIT phase: keep the pipeline full while no stop condition holds.
    if (!stop && !dispatcher.full()) {
      const int s = committed + static_cast<int>(pending.size());
      if (s >= config.iterations) {
        stop = StopReason::MaxIterations;
        continue;
      }
      // Ambient fault/trace iteration: best-effort under async — slot
      // threads observe the most recently submitted index.
      FaultContext::setIteration(s);
      trace::Span roundSpan("al.round");
      roundSpan.note("iter", s)
          .note("n", gp.numTrainPoints())
          .note("inflight", pending.size());
      if (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        loopStart)
              .count() > config.wallClockBudgetSec) {
        HealthMonitor::instance().record("watchdog",
                                         "wall-clock budget exhausted");
        stop = StopReason::WatchdogExpired;
        continue;
      }
      if (fantasyStale) rebuildFantasy();
      const auto suggestion =
          suggestContinuous(fantasy, bounds, acq, config.nStarts, rng);

      PendingPick p;
      p.x = suggestion.x;
      p.liar = suggestion.mean;
      p.rec.x = suggestion.x;
      p.rec.sdAtPick = suggestion.sd;
      p.rec.acquisition = suggestion.acquisition;
      dispatcher.submit(AsyncDispatcher::kNoRow, p.x);
      try {
        fantasy.addObservation(p.x, p.liar);
      } catch (const NumericalError&) {
        HealthMonitor::instance().record(
            "fantasy.extend",
            "fantasy extension failed; suggesting without pending points");
      }
      pending.push_back(std::move(p));
      continue;
    }

    // COMMIT phase: retire the oldest in-flight suggestion.
    if (pending.empty()) break;
    const AsyncDispatcher::Committed job = dispatcher.commitNext();
    PendingPick p = std::move(pending.front());
    pending.pop_front();
    const ExecutionResult& er = job.result;

    ContinuousAlRecord rec = std::move(p.rec);
    rec.wastedCost = er.wastedCost;
    result.wastedCost += er.wastedCost;
    ++committed;

    if (er.quarantined) {
      rec.measured = false;
      rec.failedAttempts = er.attempts;
      result.history.push_back(std::move(rec));
      // The fantasy conditioned on a point that never produced data.
      fantasyStale = true;
      if (++consecutiveFailures >= config.maxConsecutiveFailures && !stop)
        stop = StopReason::OracleExhausted;
      continue;
    }
    consecutiveFailures = 0;
    rec.y = er.measurement.y;
    rec.failedAttempts = er.attempts - 1;
    if (er.measurement.status == MeasurementStatus::Censored)
      rec.censored = 1.0;
    result.history.push_back(std::move(rec));

    // Real observation into the main GP — same refit cadence and
    // degradation ladder as the synchronous loop, keyed to the commit
    // count (== the synchronous iter+1 when every suggestion measures).
    bool healthy;
    if (committed % config.refitEvery == 0) {
      healthy = refitGrownWithFallback(
          gp, p.x, er.measurement.y, /*optimize=*/true,
          config.recoveryJitterScale, lastGoodTheta, result.fitFallbacks,
          rng);
    } else {
      try {
        gp.addObservation(p.x, er.measurement.y);
        healthy = true;
      } catch (const NumericalError&) {
        healthy = refitGrownWithFallback(
            gp, p.x, er.measurement.y, /*optimize=*/false,
            config.recoveryJitterScale, lastGoodTheta, result.fitFallbacks,
            rng);
        if (healthy) ++result.fitFallbacks;
      }
    }
    fantasyStale = true;
    if (healthy) {
      consecutiveDegraded = 0;
    } else if (++consecutiveDegraded > config.maxConsecutiveDegraded &&
               !stop) {
      HealthMonitor::instance().record(
          "model.unhealthy", "consecutive degraded-fit limit exceeded");
      stop = StopReason::ModelUnhealthy;
    }
  }

  if (stop) result.stopReason = *stop;
  FaultContext::setIteration(-1);
  result.finalGp = gp;
  return result;
}

}  // namespace

ContinuousAlResult runContinuousAl(gp::GaussianProcess gp, la::Matrix seedX,
                                   la::Vector seedY,
                                   const opt::BoxBounds& bounds,
                                   const Oracle& oracle,
                                   const AcquisitionFn& acq,
                                   const ContinuousAlConfig& config,
                                   stats::Rng& rng) {
  // The Oracle class already wraps infallible backends: a NaN/Inf response
  // throws std::invalid_argument before it can reach a Cholesky. Backends
  // that legitimately fail use the RetryPolicy overload.
  RetryPolicy failFast;
  failFast.maxRetries = 0;
  return runContinuousAl(std::move(gp), std::move(seedX), std::move(seedY),
                         bounds, oracle, failFast, acq, config, rng);
}

ContinuousAlResult runContinuousAl(gp::GaussianProcess gp, la::Matrix seedX,
                                   la::Vector seedY,
                                   const opt::BoxBounds& bounds,
                                   const Oracle& oracle,
                                   const RetryPolicy& policy,
                                   const AcquisitionFn& acq,
                                   const ContinuousAlConfig& config,
                                   stats::Rng& rng) {
  requireArg(oracle.hasPointMeasure(),
             "runContinuousAl: oracle cannot measure a point");
  requireArg(config.iterations >= 1 && config.refitEvery >= 1 &&
                 config.maxConsecutiveFailures >= 1,
             "runContinuousAl: invalid config");
  policy.validate();
  {
    ExecutionConfig exec = config.execution;
    exec.retry = policy;
    exec.validate();
    if (exec.maxInFlight > 1)
      return runContinuousAlAsync(std::move(gp), std::move(seedX),
                                  std::move(seedY), bounds, oracle, exec,
                                  acq, config, rng);
  }
  // The seed fit is a precondition, not a campaign step: without any
  // posterior there is nothing to fall back to, so failures throw.
  // Iteration-scoped fault specs must not hit it either.
  FaultContext::setIteration(-1);
  gp.config().optimize = true;
  gp.fit(std::move(seedX), std::move(seedY), rng);

  ContinuousAlResult result{.history = {}, .finalGp = gp};
  ExperimentExecutor executor(policy);
  std::vector<double> lastGoodTheta = gp.thetaFull();
  int consecutiveFailures = 0;
  int consecutiveDegraded = 0;
  const auto loopStart = std::chrono::steady_clock::now();
  for (int iter = 0; iter < config.iterations; ++iter) {
    FaultContext::setIteration(iter);
    trace::Span roundSpan("al.round");
    roundSpan.note("iter", iter).note("n", gp.numTrainPoints());
    if (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      loopStart)
            .count() > config.wallClockBudgetSec) {
      HealthMonitor::instance().record("watchdog",
                                       "wall-clock budget exhausted");
      result.stopReason = StopReason::WatchdogExpired;
      break;
    }
    const auto suggestion =
        suggestContinuous(gp, bounds, acq, config.nStarts, rng);
    const ExecutionResult er =
        executor.execute([&] { return oracle.measure(suggestion.x); });

    ContinuousAlRecord rec;
    rec.x = suggestion.x;
    rec.sdAtPick = suggestion.sd;
    rec.acquisition = suggestion.acquisition;
    rec.wastedCost = er.wastedCost;
    result.wastedCost += er.wastedCost;

    if (er.quarantined) {
      rec.measured = false;
      rec.failedAttempts = er.attempts;
      result.history.push_back(std::move(rec));
      if (++consecutiveFailures >= config.maxConsecutiveFailures) {
        result.stopReason = StopReason::OracleExhausted;
        break;
      }
      continue;  // no observation: the GP stays as it is
    }
    consecutiveFailures = 0;
    rec.y = er.measurement.y;
    rec.failedAttempts = er.attempts - 1;
    if (er.measurement.status == MeasurementStatus::Censored) rec.censored = 1.0;
    result.history.push_back(std::move(rec));

    bool healthy;
    if ((iter + 1) % config.refitEvery == 0) {
      // Full refit: re-optimize hyperparameters on the grown dataset.
      healthy = refitGrownWithFallback(
          gp, suggestion.x, er.measurement.y, /*optimize=*/true,
          config.recoveryJitterScale, lastGoodTheta, result.fitFallbacks,
          rng);
    } else {
      // Cheap O(n²) incremental update between refits; an extension whose
      // pivot collapses falls back to a posterior-only rebuild.
      try {
        gp.addObservation(suggestion.x, er.measurement.y);
        healthy = true;
      } catch (const NumericalError&) {
        healthy = refitGrownWithFallback(
            gp, suggestion.x, er.measurement.y, /*optimize=*/false,
            config.recoveryJitterScale, lastGoodTheta, result.fitFallbacks,
            rng);
        if (healthy) ++result.fitFallbacks;
      }
    }
    if (healthy) {
      consecutiveDegraded = 0;
    } else if (++consecutiveDegraded > config.maxConsecutiveDegraded) {
      HealthMonitor::instance().record(
          "model.unhealthy", "consecutive degraded-fit limit exceeded");
      result.stopReason = StopReason::ModelUnhealthy;
      break;
    }
  }
  FaultContext::setIteration(-1);
  result.finalGp = gp;
  return result;
}

}  // namespace alperf::al
