#include "core/continuous.hpp"

#include <cmath>

#include "common/error.hpp"
#include "opt/multistart.hpp"

namespace alperf::al {

AcquisitionFn varianceAcquisition() {
  return [](double, double sd) { return sd; };
}

AcquisitionFn costEfficiencyAcquisition() {
  return [](double mean, double sd) { return sd - mean; };
}

ContinuousSuggestion suggestContinuous(const gp::GaussianProcess& gp,
                                       const opt::BoxBounds& bounds,
                                       const AcquisitionFn& acq,
                                       int nStarts, stats::Rng& rng) {
  requireArg(gp.fitted(), "suggestContinuous: GP must be fitted");
  requireArg(acq != nullptr, "suggestContinuous: null acquisition");
  requireArg(nStarts >= 1, "suggestContinuous: nStarts must be >= 1");
  const std::size_t d = bounds.dim();
  requireArg(gp.trainX().cols() == d,
             "suggestContinuous: bounds dimension mismatch");

  // Minimize the negative acquisition; numeric gradients are adequate
  // because the posterior is smooth and cheap to evaluate pointwise.
  const opt::FunctionObjective objective(
      d, [&gp, &acq](std::span<const double> x) {
        const auto [mean, var] = gp.predictOne(x);
        const double a = acq(mean, std::sqrt(std::max(var, 0.0)));
        return std::isfinite(a) ? -a
                                : std::numeric_limits<double>::infinity();
      });
  const opt::Lbfgs local(
      {.maxIterations = 60, .gradTol = 1e-7, .stepTol = 1e-12, .fTol = 0.0});
  const auto minimizer = [&local](const opt::Objective& f,
                                  std::span<const double> x0,
                                  const opt::BoxBounds& b) {
    return local.minimize(f, x0, b);
  };
  const auto start = bounds.sample(rng);
  const auto result =
      opt::multiStartMinimize(objective, start, bounds, minimizer,
                              nStarts - 1, rng);

  ContinuousSuggestion suggestion;
  suggestion.x = result.best.x;
  const auto [mean, var] = gp.predictOne(suggestion.x);
  suggestion.mean = mean;
  suggestion.sd = std::sqrt(std::max(var, 0.0));
  suggestion.acquisition = -result.best.fval;
  return suggestion;
}

GradientAcquisition varianceAcquisitionGrad() {
  return {[](double, double sd) { return sd; },
          [](double, double) { return std::pair{0.0, 1.0}; }};
}

GradientAcquisition costEfficiencyAcquisitionGrad() {
  return {[](double mean, double sd) { return sd - mean; },
          [](double, double) { return std::pair{-1.0, 1.0}; }};
}

ContinuousSuggestion suggestContinuous(const gp::GaussianProcess& gp,
                                       const opt::BoxBounds& bounds,
                                       const GradientAcquisition& acq,
                                       int nStarts, stats::Rng& rng) {
  requireArg(gp.fitted(), "suggestContinuous: GP must be fitted");
  requireArg(acq.value != nullptr && acq.partials != nullptr,
             "suggestContinuous: incomplete gradient acquisition");
  requireArg(nStarts >= 1, "suggestContinuous: nStarts must be >= 1");
  const std::size_t d = bounds.dim();
  requireArg(gp.trainX().cols() == d,
             "suggestContinuous: bounds dimension mismatch");

  const auto negValueAndGrad = [&gp, &acq](std::span<const double> x,
                                           std::span<double> g) {
    const auto p = gp.predictOneWithGradient(x);
    const double sd = std::sqrt(std::max(p.variance, 1e-18));
    const double a = acq.value(p.mean, sd);
    const auto [dMu, dSd] = acq.partials(p.mean, sd);
    for (std::size_t i = 0; i < g.size(); ++i) {
      const double dSdDx = p.varianceGrad[i] / (2.0 * sd);
      g[i] = -(dMu * p.meanGrad[i] + dSd * dSdDx);
    }
    return std::isfinite(a) ? -a : std::numeric_limits<double>::infinity();
  };
  const opt::FunctionObjective objective(
      d,
      [&gp, &acq](std::span<const double> x) {
        const auto [mean, var] = gp.predictOne(x);
        const double a = acq.value(mean, std::sqrt(std::max(var, 0.0)));
        return std::isfinite(a) ? -a
                                : std::numeric_limits<double>::infinity();
      },
      opt::FunctionObjective::CombinedFn(negValueAndGrad));
  const opt::Lbfgs local(
      {.maxIterations = 60, .gradTol = 1e-7, .stepTol = 1e-12, .fTol = 0.0});
  const auto minimizer = [&local](const opt::Objective& f,
                                  std::span<const double> x0,
                                  const opt::BoxBounds& b) {
    return local.minimize(f, x0, b);
  };
  const auto start = bounds.sample(rng);
  const auto result = opt::multiStartMinimize(objective, start, bounds,
                                              minimizer, nStarts - 1, rng);

  ContinuousSuggestion suggestion;
  suggestion.x = result.best.x;
  const auto [mean, var] = gp.predictOne(suggestion.x);
  suggestion.mean = mean;
  suggestion.sd = std::sqrt(std::max(var, 0.0));
  suggestion.acquisition = -result.best.fval;
  return suggestion;
}

ContinuousAlResult runContinuousAl(gp::GaussianProcess gp, la::Matrix seedX,
                                   la::Vector seedY,
                                   const opt::BoxBounds& bounds,
                                   const Oracle& oracle,
                                   const AcquisitionFn& acq,
                                   const ContinuousAlConfig& config,
                                   stats::Rng& rng) {
  requireArg(oracle != nullptr, "runContinuousAl: null oracle");
  requireArg(config.iterations >= 1 && config.refitEvery >= 1,
             "runContinuousAl: invalid config");
  gp.config().optimize = true;
  gp.fit(std::move(seedX), std::move(seedY), rng);

  ContinuousAlResult result{.history = {}, .finalGp = gp};
  for (int iter = 0; iter < config.iterations; ++iter) {
    const auto suggestion =
        suggestContinuous(gp, bounds, acq, config.nStarts, rng);
    const double y = oracle(suggestion.x);

    ContinuousAlRecord rec;
    rec.x = suggestion.x;
    rec.y = y;
    rec.sdAtPick = suggestion.sd;
    rec.acquisition = suggestion.acquisition;
    result.history.push_back(std::move(rec));

    if ((iter + 1) % config.refitEvery == 0) {
      // Full refit: re-optimize hyperparameters on the grown dataset.
      la::Matrix x = gp.trainX();
      la::Vector yAll = gp.trainY();
      la::Matrix grown(x.rows() + 1, x.cols());
      for (std::size_t i = 0; i < x.rows(); ++i) {
        const auto src = x.row(i);
        std::copy(src.begin(), src.end(), grown.row(i).begin());
      }
      std::copy(suggestion.x.begin(), suggestion.x.end(),
                grown.row(x.rows()).begin());
      yAll.push_back(y);
      gp.config().optimize = true;
      gp.fit(std::move(grown), std::move(yAll), rng);
    } else {
      // Cheap O(n²) incremental update between refits.
      gp.addObservation(suggestion.x, y);
    }
  }
  result.finalGp = gp;
  return result;
}

}  // namespace alperf::al
