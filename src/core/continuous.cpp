#include "core/continuous.hpp"

#include <chrono>
#include <cmath>

#include "common/error.hpp"
#include "common/fault_inject.hpp"
#include "common/health.hpp"
#include "common/trace.hpp"
#include "opt/multistart.hpp"

namespace alperf::al {

AcquisitionFn varianceAcquisition() {
  return [](double, double sd) { return sd; };
}

AcquisitionFn costEfficiencyAcquisition() {
  return [](double mean, double sd) { return sd - mean; };
}

ContinuousSuggestion suggestContinuous(const gp::GaussianProcess& gp,
                                       const opt::BoxBounds& bounds,
                                       const AcquisitionFn& acq,
                                       int nStarts, stats::Rng& rng) {
  requireArg(gp.fitted(), "suggestContinuous: GP must be fitted");
  requireArg(acq != nullptr, "suggestContinuous: null acquisition");
  requireArg(nStarts >= 1, "suggestContinuous: nStarts must be >= 1");
  const std::size_t d = bounds.dim();
  requireArg(gp.trainX().cols() == d,
             "suggestContinuous: bounds dimension mismatch");

  // Minimize the negative acquisition; numeric gradients are adequate
  // because the posterior is smooth and cheap to evaluate pointwise.
  const opt::FunctionObjective objective(
      d, [&gp, &acq](std::span<const double> x) {
        const auto [mean, var] = gp.predictOne(x);
        const double a = acq(mean, std::sqrt(std::max(var, 0.0)));
        return std::isfinite(a) ? -a
                                : std::numeric_limits<double>::infinity();
      });
  const opt::Lbfgs local(
      {.maxIterations = 60, .gradTol = 1e-7, .stepTol = 1e-12, .fTol = 0.0});
  const auto minimizer = [&local](const opt::Objective& f,
                                  std::span<const double> x0,
                                  const opt::BoxBounds& b) {
    return local.minimize(f, x0, b);
  };
  const auto start = bounds.sample(rng);
  const auto result =
      opt::multiStartMinimize(objective, start, bounds, minimizer,
                              nStarts - 1, rng);

  ContinuousSuggestion suggestion;
  suggestion.x = result.best.x;
  const auto [mean, var] = gp.predictOne(suggestion.x);
  suggestion.mean = mean;
  suggestion.sd = std::sqrt(std::max(var, 0.0));
  suggestion.acquisition = -result.best.fval;
  return suggestion;
}

GradientAcquisition varianceAcquisitionGrad() {
  return {[](double, double sd) { return sd; },
          [](double, double) { return std::pair{0.0, 1.0}; }};
}

GradientAcquisition costEfficiencyAcquisitionGrad() {
  return {[](double mean, double sd) { return sd - mean; },
          [](double, double) { return std::pair{-1.0, 1.0}; }};
}

ContinuousSuggestion suggestContinuous(const gp::GaussianProcess& gp,
                                       const opt::BoxBounds& bounds,
                                       const GradientAcquisition& acq,
                                       int nStarts, stats::Rng& rng) {
  requireArg(gp.fitted(), "suggestContinuous: GP must be fitted");
  requireArg(acq.value != nullptr && acq.partials != nullptr,
             "suggestContinuous: incomplete gradient acquisition");
  requireArg(nStarts >= 1, "suggestContinuous: nStarts must be >= 1");
  const std::size_t d = bounds.dim();
  requireArg(gp.trainX().cols() == d,
             "suggestContinuous: bounds dimension mismatch");

  const auto negValueAndGrad = [&gp, &acq](std::span<const double> x,
                                           std::span<double> g) {
    const auto p = gp.predictOneWithGradient(x);
    const double sd = std::sqrt(std::max(p.variance, 1e-18));
    const double a = acq.value(p.mean, sd);
    const auto [dMu, dSd] = acq.partials(p.mean, sd);
    for (std::size_t i = 0; i < g.size(); ++i) {
      const double dSdDx = p.varianceGrad[i] / (2.0 * sd);
      g[i] = -(dMu * p.meanGrad[i] + dSd * dSdDx);
    }
    return std::isfinite(a) ? -a : std::numeric_limits<double>::infinity();
  };
  const opt::FunctionObjective objective(
      d,
      [&gp, &acq](std::span<const double> x) {
        const auto [mean, var] = gp.predictOne(x);
        const double a = acq.value(mean, std::sqrt(std::max(var, 0.0)));
        return std::isfinite(a) ? -a
                                : std::numeric_limits<double>::infinity();
      },
      opt::FunctionObjective::CombinedFn(negValueAndGrad));
  const opt::Lbfgs local(
      {.maxIterations = 60, .gradTol = 1e-7, .stepTol = 1e-12, .fTol = 0.0});
  const auto minimizer = [&local](const opt::Objective& f,
                                  std::span<const double> x0,
                                  const opt::BoxBounds& b) {
    return local.minimize(f, x0, b);
  };
  const auto start = bounds.sample(rng);
  const auto result = opt::multiStartMinimize(objective, start, bounds,
                                              minimizer, nStarts - 1, rng);

  ContinuousSuggestion suggestion;
  suggestion.x = result.best.x;
  const auto [mean, var] = gp.predictOne(suggestion.x);
  suggestion.mean = mean;
  suggestion.sd = std::sqrt(std::max(var, 0.0));
  suggestion.acquisition = -result.best.fval;
  return suggestion;
}

namespace {

/// The GP's training set grown by one observation.
std::pair<la::Matrix, la::Vector> grownTrainingSet(
    const gp::GaussianProcess& gp, std::span<const double> xNew,
    double yNew) {
  const la::Matrix& x = gp.trainX();
  la::Matrix grown(x.rows() + 1, x.cols());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const auto src = x.row(i);
    std::copy(src.begin(), src.end(), grown.row(i).begin());
  }
  std::copy(xNew.begin(), xNew.end(), grown.row(x.rows()).begin());
  la::Vector yAll = gp.trainY();
  yAll.push_back(yNew);
  return {std::move(grown), std::move(yAll)};
}

/// Full refit on the grown set, walking the same degradation ladder as
/// ActiveLearner (docs/ROBUSTNESS.md): the requested fit, the same fit
/// with the jitter cap escalated to `recoveryJitterScale`, a posterior-
/// only refit at `lastGoodTheta`, and finally a prior-only posterior
/// (which cannot fail). Returns true when the model ended with a genuine
/// GP posterior, false when it is degraded to the prior.
bool refitGrownWithFallback(gp::GaussianProcess& gp,
                            std::span<const double> xNew, double yNew,
                            bool optimize, double recoveryJitterScale,
                            std::vector<double>& lastGoodTheta,
                            int& fitFallbacks, stats::Rng& rng) {
  auto [grown, yAll] = grownTrainingSet(gp, xNew, yNew);
  const double baseJitterScale = gp.config().jitterScaleMax;
  const auto tryFit = [&](bool opt) {
    gp.config().optimize = opt;
    try {
      gp.fit(la::Matrix(grown), la::Vector(yAll), rng);
      return std::isfinite(gp.logMarginalLikelihood());
    } catch (const NumericalError&) {
      return false;
    }
  };
  bool ok = tryFit(optimize);
  if (!ok) {
    HealthMonitor::instance().record("fit.retry",
                                     "refit with escalated jitter cap");
    gp.config().jitterScaleMax =
        std::max(baseJitterScale, recoveryJitterScale);
    ok = tryFit(optimize);
  }
  if (!ok) {
    gp.setThetaFull(lastGoodTheta);
    ok = tryFit(false);
    if (ok) {
      ++fitFallbacks;
      HealthMonitor::instance().record(
          "fit.fallback.theta", "posterior refit at last good theta");
    }
  }
  gp.config().jitterScaleMax = baseJitterScale;
  if (ok) {
    lastGoodTheta = gp.thetaFull();
    return true;
  }
  gp.setThetaFull(lastGoodTheta);
  gp.fitPriorOnly(std::move(grown), std::move(yAll));
  ++fitFallbacks;
  HealthMonitor::instance().record("fit.fallback.prior",
                                   "prior-only posterior installed");
  return false;
}

}  // namespace

ContinuousAlResult runContinuousAl(gp::GaussianProcess gp, la::Matrix seedX,
                                   la::Vector seedY,
                                   const opt::BoxBounds& bounds,
                                   const Oracle& oracle,
                                   const AcquisitionFn& acq,
                                   const ContinuousAlConfig& config,
                                   stats::Rng& rng) {
  requireArg(oracle != nullptr, "runContinuousAl: null oracle");
  // The infallible wrapper: a NaN/Inf response is an API violation here,
  // and Measurement::ok rejects it with a clear error before it can reach
  // a Cholesky. Backends that legitimately fail use the fallible overload.
  const FallibleOracle wrapped = [&oracle](std::span<const double> x) {
    const double y = oracle(x);
    requireArg(std::isfinite(y),
               "runContinuousAl: oracle returned non-finite response");
    return Measurement::ok(y, 0.0);
  };
  RetryPolicy failFast;
  failFast.maxRetries = 0;
  return runContinuousAl(std::move(gp), std::move(seedX), std::move(seedY),
                         bounds, wrapped, failFast, acq, config, rng);
}

ContinuousAlResult runContinuousAl(gp::GaussianProcess gp, la::Matrix seedX,
                                   la::Vector seedY,
                                   const opt::BoxBounds& bounds,
                                   const FallibleOracle& oracle,
                                   const RetryPolicy& policy,
                                   const AcquisitionFn& acq,
                                   const ContinuousAlConfig& config,
                                   stats::Rng& rng) {
  requireArg(oracle != nullptr, "runContinuousAl: null oracle");
  requireArg(config.iterations >= 1 && config.refitEvery >= 1 &&
                 config.maxConsecutiveFailures >= 1,
             "runContinuousAl: invalid config");
  policy.validate();
  // The seed fit is a precondition, not a campaign step: without any
  // posterior there is nothing to fall back to, so failures throw.
  // Iteration-scoped fault specs must not hit it either.
  FaultContext::setIteration(-1);
  gp.config().optimize = true;
  gp.fit(std::move(seedX), std::move(seedY), rng);

  ContinuousAlResult result{.history = {}, .finalGp = gp};
  ExperimentExecutor executor(policy);
  std::vector<double> lastGoodTheta = gp.thetaFull();
  int consecutiveFailures = 0;
  int consecutiveDegraded = 0;
  const auto loopStart = std::chrono::steady_clock::now();
  for (int iter = 0; iter < config.iterations; ++iter) {
    FaultContext::setIteration(iter);
    trace::Span roundSpan("al.round");
    roundSpan.note("iter", iter).note("n", gp.numTrainPoints());
    if (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      loopStart)
            .count() > config.wallClockBudgetSec) {
      HealthMonitor::instance().record("watchdog",
                                       "wall-clock budget exhausted");
      result.stopReason = StopReason::WatchdogExpired;
      break;
    }
    const auto suggestion =
        suggestContinuous(gp, bounds, acq, config.nStarts, rng);
    const ExecutionResult er =
        executor.execute([&] { return oracle(suggestion.x); });

    ContinuousAlRecord rec;
    rec.x = suggestion.x;
    rec.sdAtPick = suggestion.sd;
    rec.acquisition = suggestion.acquisition;
    rec.wastedCost = er.wastedCost;
    result.wastedCost += er.wastedCost;

    if (er.quarantined) {
      rec.measured = false;
      rec.failedAttempts = er.attempts;
      result.history.push_back(std::move(rec));
      if (++consecutiveFailures >= config.maxConsecutiveFailures) {
        result.stopReason = StopReason::OracleExhausted;
        break;
      }
      continue;  // no observation: the GP stays as it is
    }
    consecutiveFailures = 0;
    rec.y = er.measurement.y;
    rec.failedAttempts = er.attempts - 1;
    if (er.measurement.status == MeasurementStatus::Censored) rec.censored = 1.0;
    result.history.push_back(std::move(rec));

    bool healthy;
    if ((iter + 1) % config.refitEvery == 0) {
      // Full refit: re-optimize hyperparameters on the grown dataset.
      healthy = refitGrownWithFallback(
          gp, suggestion.x, er.measurement.y, /*optimize=*/true,
          config.recoveryJitterScale, lastGoodTheta, result.fitFallbacks,
          rng);
    } else {
      // Cheap O(n²) incremental update between refits; an extension whose
      // pivot collapses falls back to a posterior-only rebuild.
      try {
        gp.addObservation(suggestion.x, er.measurement.y);
        healthy = true;
      } catch (const NumericalError&) {
        healthy = refitGrownWithFallback(
            gp, suggestion.x, er.measurement.y, /*optimize=*/false,
            config.recoveryJitterScale, lastGoodTheta, result.fitFallbacks,
            rng);
        if (healthy) ++result.fitFallbacks;
      }
    }
    if (healthy) {
      consecutiveDegraded = 0;
    } else if (++consecutiveDegraded > config.maxConsecutiveDegraded) {
      HealthMonitor::instance().record(
          "model.unhealthy", "consecutive degraded-fit limit exceeded");
      result.stopReason = StopReason::ModelUnhealthy;
      break;
    }
  }
  FaultContext::setIteration(-1);
  result.finalGp = gp;
  return result;
}

}  // namespace alperf::al
