#include "core/calibration.hpp"

#include <cmath>

#include "common/error.hpp"
#include "core/optimize.hpp"  // normalCdf

namespace alperf::al {

double centralIntervalZ(double level) {
  requireArg(level > 0.0 && level < 1.0,
             "centralIntervalZ: level outside (0,1)");
  const double target = 0.5 + 0.5 * level;
  // Bisection on the monotone standard normal CDF.
  double lo = 0.0, hi = 10.0;
  for (int i = 0; i < 80; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (normalCdf(mid) < target)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

CalibrationReport assessCalibration(const gp::GaussianProcess& gp,
                                    const la::Matrix& testX,
                                    const la::Vector& testY,
                                    double level) {
  requireArg(gp.fitted(), "assessCalibration: GP must be fitted");
  requireArg(testX.rows() == testY.size() && !testY.empty(),
             "assessCalibration: bad test data");

  const auto pred = gp.predict(testX, /*includeNoise=*/true);
  const double z = centralIntervalZ(level);

  CalibrationReport report;
  report.n = testY.size();
  double zSum = 0.0, z2Sum = 0.0;
  std::size_t inside = 0;
  for (std::size_t i = 0; i < testY.size(); ++i) {
    const double sd = std::sqrt(std::max(pred.variance[i], 1e-300));
    const double standardized = (testY[i] - pred.mean[i]) / sd;
    zSum += standardized;
    z2Sum += standardized * standardized;
    if (std::abs(standardized) <= z) ++inside;
  }
  report.coverage =
      static_cast<double>(inside) / static_cast<double>(report.n);
  report.meanZ = zSum / static_cast<double>(report.n);
  report.rmsZ = std::sqrt(z2Sum / static_cast<double>(report.n));
  return report;
}

}  // namespace alperf::al
