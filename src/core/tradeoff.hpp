#pragma once

/// \file tradeoff.hpp
/// Cost–error tradeoff analysis (paper Fig. 8b): turn per-run
/// (cumulative cost, RMSE) trajectories into an averaged error-vs-cost
/// curve per strategy, locate the crossover cost C where the cost-aware
/// strategy starts winning, and report the relative error reduction at
/// multiples of C (the paper's headline 38% figure).

#include "core/batch.hpp"

namespace alperf::al {

/// Averaged error as a function of cumulative cost (monotone cost grid).
struct TradeoffCurve {
  std::vector<double> cost;
  std::vector<double> error;

  /// Step-interpolated error at the given cost (clamped to the ends).
  double errorAt(double c) const;
};

/// Builds the averaged curve: each run's RMSE-vs-cumulative-cost staircase
/// is evaluated on a log-spaced cost grid spanning the range covered by
/// *all* runs, then averaged.
TradeoffCurve aggregateTradeoff(const BatchResult& batch,
                                int gridPoints = 200);

/// Where (and by how much) the challenger strategy beats the baseline.
struct CrossoverReport {
  bool found = false;          ///< false = challenger never takes over
  double crossoverCost = 0.0;  ///< the paper's C
  /// Relative error reduction of `challenger` vs `baseline` at each
  /// requested multiple of C, as (multiplier, reduction in [0,1]).
  std::vector<std::pair<double, double>> reductions;
  /// Largest reduction at any grid cost >= C.
  double maxReduction = 0.0;
  double maxReductionCost = 0.0;  ///< grid cost where maxReduction occurs
};

/// Finds the first cost after which `challenger` has lower error than
/// `baseline` through the rest of the common range, and evaluates the
/// relative reductions at the given multiples of that crossover cost.
CrossoverReport compareTradeoffs(const TradeoffCurve& baseline,
                                 const TradeoffCurve& challenger,
                                 const std::vector<double>& multiples = {
                                     1.0, 2.0, 3.0, 5.0, 10.0});

}  // namespace alperf::al
