#pragma once

/// \file checkpoint.hpp
/// Campaign checkpoint persistence: serialize the complete AL loop state
/// (learning trace, partition, training set with measured responses,
/// quarantine set, GP hyperparameters, RNG engine state) to CSV so a
/// half-finished campaign survives a process crash and
/// ActiveLearner::resume continues it bit-for-bit.
///
/// A checkpoint is three CSV files sharing a caller-chosen path prefix,
/// written through the ordinary data::Table/writeCsv machinery so they
/// are greppable, diffable, and loadable by external tooling:
///
///   <prefix>.meta.csv   key/value scalars: format version, iteration,
///                       cumulative cost, GP thetaFull, RNG state words
///   <prefix>.trace.csv  the IterationRecord history (historyToTable)
///   <prefix>.sets.csv   one row per (set, row index[, response]):
///                       initial/active/test/train/pool/quarantined
///
/// Doubles are stored at max_digits10 and the RNG words as decimal
/// strings, so a load/save round-trip is lossless.

#include <string>

#include "core/learner.hpp"

namespace alperf::al {

/// Writes `<prefix>.meta.csv`, `<prefix>.trace.csv`, `<prefix>.sets.csv`.
/// Throws std::runtime_error when a file cannot be opened and
/// std::invalid_argument when the checkpoint has no RNG state (only
/// loop-produced checkpoints are resumable).
void saveCheckpoint(const Checkpoint& checkpoint, const std::string& prefix);

/// Reads a checkpoint previously written by saveCheckpoint. Throws
/// std::runtime_error on missing files and std::invalid_argument on
/// malformed or version-incompatible content.
Checkpoint loadCheckpoint(const std::string& prefix);

}  // namespace alperf::al
