#pragma once

/// \file learner.hpp
/// The active-learning loop (paper Sec. IV–V): partition the job database
/// into Initial / Active / Test, seed a GP with the Initial set, then
/// iteratively let the strategy pick experiments from the Active pool,
/// retraining the GP and tracking the paper's three progress metrics —
/// σ_f(x) at the pick, AMSD over the remaining pool, and Test-set RMSE —
/// plus cumulative experiment cost.

#include <limits>

#include "core/strategy.hpp"
#include "data/partition.hpp"

namespace alperf::al {

struct AlConfig {
  /// Partitioning (paper: Initial = 1 job, Active:Test ≈ 8:2).
  std::size_t nInitial = 1;
  double activeFraction = 0.8;

  /// Stop conditions; any triggers. maxIterations < 0 exhausts the pool.
  int maxIterations = -1;
  double costBudget = std::numeric_limits<double>::infinity();
  /// AMSD convergence: stop when over the last `amsdWindow` iterations the
  /// relative AMSD change stays below `amsdRelTol` (0 disables).
  int amsdWindow = 0;
  double amsdRelTol = 0.0;

  /// Refit hyperparameters every k-th iteration (1 = every iteration, the
  /// paper's behaviour); between refits only the posterior is updated.
  int refitEvery = 1;

  /// Paper Sec. V-B4 proposal: replace the fixed σ_n lower bound with the
  /// dynamic schedule σ_n² ≥ 1/√N (N = training-set size).
  bool dynamicNoiseBound = false;

  /// Batch mode: pick this many experiments per iteration (1 = the
  /// paper's greedy one-at-a-time loop).
  std::size_t batchSize = 1;
};

enum class StopReason { PoolExhausted, MaxIterations, Budget, AmsdConverged };

/// One row of the learning trace (per iteration; in batch mode the pick
/// fields describe the first experiment of the batch).
struct IterationRecord {
  int iteration = 0;
  std::size_t chosenRow = 0;   ///< problem row index of the pick
  double sigmaAtPick = 0.0;    ///< predictive SD at the pick
  double muAtPick = 0.0;       ///< predictive mean at the pick
  double amsd = 0.0;           ///< mean predictive SD over remaining pool
  double rmse = 0.0;           ///< test-set RMSE (paper eq. 2)
  double pickCost = 0.0;       ///< linear cost of the consumed experiment(s)
  double cumulativeCost = 0.0;
  double noiseVariance = 0.0;  ///< fitted σ_n² this iteration
  double lml = 0.0;
};

struct AlResult {
  std::vector<IterationRecord> history;
  data::TriPartition partition;
  StopReason stopReason = StopReason::PoolExhausted;
  gp::GaussianProcess finalGp;  ///< fitted on everything consumed

  /// Convenience extraction of one metric across iterations.
  std::vector<double> series(double IterationRecord::* field) const;
};

/// Human-readable name of a stop reason.
std::string toString(StopReason reason);

/// Renders the learning trace as a Table (one row per iteration, columns
/// Iteration / ChosenRow / SigmaAtPick / MuAtPick / AMSD / RMSE /
/// PickCost / CumulativeCost / NoiseVariance / LML) — ready for
/// data::writeCsv so traces can be archived and plotted externally.
data::Table historyToTable(const AlResult& result);

class ActiveLearner {
 public:
  /// `gpPrototype` supplies the kernel/config; it is copied per run.
  ActiveLearner(RegressionProblem problem, gp::GaussianProcess gpPrototype,
                StrategyPtr strategy, AlConfig config = {});

  /// Random partition + full AL loop.
  AlResult run(stats::Rng& rng) const;

  /// AL loop on a caller-supplied partition (for paired comparisons of
  /// strategies on identical partitions, as in Fig. 8).
  AlResult runWithPartition(const data::TriPartition& partition,
                            stats::Rng& rng) const;

  const RegressionProblem& problem() const { return problem_; }
  const AlConfig& config() const { return config_; }

 private:
  RegressionProblem problem_;
  gp::GaussianProcess gpPrototype_;
  StrategyPtr strategy_;
  AlConfig config_;
};

}  // namespace alperf::al
