#pragma once

/// \file learner.hpp
/// The active-learning loop (paper Sec. IV–V): partition the job database
/// into Initial / Active / Test, seed a GP with the Initial set, then
/// iteratively let the strategy pick experiments from the Active pool,
/// retraining the GP and tracking the paper's three progress metrics —
/// σ_f(x) at the pick, AMSD over the remaining pool, and Test-set RMSE —
/// plus cumulative experiment cost.
///
/// Two execution paths share one loop: the classic table-driven path
/// (responses come from the problem's y column) and the fault-tolerant
/// path, where an Oracle (core/oracle.hpp) measures each pick and may
/// fail or censor it (executor.hpp). Either path can be checkpointed and
/// resumed bit-for-bit (checkpoint.hpp).
///
/// With AlConfig::execution.maxInFlight > 1 the loop switches to the
/// asynchronous dispatch engine (core/dispatch.hpp): up to k measurements
/// run concurrently while selection continues against a constant-liar
/// fantasy posterior over the pending picks, and results are committed in
/// deterministic dispatch order.

#include <limits>

#include "core/executor.hpp"
#include "core/oracle.hpp"
#include "core/strategy.hpp"
#include "data/partition.hpp"

namespace alperf::al {

struct AlConfig {
  /// Partitioning (paper: Initial = 1 job, Active:Test ≈ 8:2).
  std::size_t nInitial = 1;
  double activeFraction = 0.8;

  /// Stop conditions; any triggers. maxIterations < 0 exhausts the pool.
  int maxIterations = -1;
  double costBudget = std::numeric_limits<double>::infinity();
  /// AMSD convergence: stop when over the last `amsdWindow` iterations the
  /// relative AMSD change stays below `amsdRelTol` (0 disables).
  int amsdWindow = 0;
  double amsdRelTol = 0.0;

  /// Refit hyperparameters every k-th iteration (1 = every iteration, the
  /// paper's behaviour); between refits only the posterior is updated.
  int refitEvery = 1;

  /// Between hyperparameter refits (refitEvery > 1, or after a fallback to
  /// the last good θ), condition the existing posterior on the new points
  /// via an O(n²) Cholesky extension instead of an O(n³) refactorization.
  /// Set false to force a full refactorization every iteration — the
  /// reference the incremental-vs-full golden test compares against (they
  /// agree to ~1e-10, not bit-for-bit, so flipping this changes traces at
  /// float precision when refitEvery > 1).
  bool incrementalPosterior = true;

  /// Paper Sec. V-B4 proposal: replace the fixed σ_n lower bound with the
  /// dynamic schedule σ_n² ≥ 1/√N (N = training-set size).
  bool dynamicNoiseBound = false;

  /// Batch mode: pick this many experiments per iteration (1 = the
  /// paper's greedy one-at-a-time loop).
  std::size_t batchSize = 1;

  /// Pool posterior cache (gp/pool_predict_cache.hpp): pin the candidate
  /// pool once per campaign and reuse K_cross / V = L⁻¹·K_cross across
  /// iterations — pool scoring on the grow-only incremental path drops
  /// from O(n²·m) to O(n·m) per iteration. Served predictions are bitwise
  /// identical to direct prediction, so AL traces do not depend on this
  /// flag (the `gp.poolcache.*` counters do). Requires the GP's batch
  /// predict engine; falls back to direct prediction when it cannot serve.
  bool poolPredictCache = true;

  /// Numerical self-healing knobs (docs/ROBUSTNESS.md). When a refit
  /// diverges, the loop walks a degradation ladder: retry the fit with
  /// the jitter cap raised to `recoveryJitterScale`, then refit the
  /// posterior at the last good hyperparameters, then fall back to a
  /// prior-only posterior. An iteration that ends prior-only is
  /// *degraded*; more than `maxConsecutiveDegraded` degraded iterations
  /// in a row stop the campaign with StopReason::ModelUnhealthy.
  int maxConsecutiveDegraded = 2;
  double recoveryJitterScale = 1e-2;
  /// Wall-clock watchdog: stop with StopReason::WatchdogExpired once the
  /// loop has run this many seconds (checked at each iteration boundary;
  /// infinity disables). A safety net for unattended campaigns, not a
  /// precise budget — the iteration in flight always completes.
  double wallClockBudgetSec = std::numeric_limits<double>::infinity();

  /// Execution engine configuration: the RetryPolicy state machine plus
  /// the async dispatch width (executor.hpp). maxInFlight = 1 (default)
  /// keeps the synchronous loop bitwise unchanged; k > 1 runs k
  /// measurements concurrently with pending-point fantasy selection
  /// (core/dispatch.hpp; requires batchSize == 1). The RetryPolicy
  /// arguments of runFallible/resumeFallible predate this field and
  /// override `execution.retry` when used.
  ExecutionConfig execution;

  /// When non-empty, the loop arms the structured tracer (common/trace.hpp)
  /// for the duration of the campaign and writes a Chrome trace-event JSON
  /// timeline here on exit — fit/score/select/executor spans, per-thread
  /// lanes. No-op if the tracer is already armed (e.g. via ALPERF_TRACE).
  /// Tracing never affects results: AL output is bit-identical either way.
  std::string tracePath;
};

enum class StopReason {
  PoolExhausted,
  MaxIterations,
  Budget,
  AmsdConverged,
  /// The pool was drained and at least one point ended quarantined: the
  /// campaign ran out of *measurable* experiments, not experiments.
  OracleExhausted,
  /// A hyperparameter refit diverged and even the last-good-θ fallback
  /// could not produce a finite posterior; the trace up to that point is
  /// preserved. Since the prior-only degradation rung was added this is
  /// only reachable where no prior-only fallback exists (the continuous
  /// loop's seed fit).
  FitFailed,
  /// More than AlConfig::maxConsecutiveDegraded consecutive iterations
  /// ended on the prior-only degradation rung: the model is persistently
  /// unhealthy and further experiments would be chosen blind.
  ModelUnhealthy,
  /// The wall-clock watchdog (AlConfig::wallClockBudgetSec) expired.
  WatchdogExpired,
};

/// One row of the learning trace (per iteration; in batch mode the pick
/// fields describe the first experiment of the batch).
struct IterationRecord {
  int iteration = 0;
  std::size_t chosenRow = 0;   ///< problem row index of the pick
  double sigmaAtPick = 0.0;    ///< predictive SD at the pick
  double muAtPick = 0.0;       ///< predictive mean at the pick
  double amsd = 0.0;           ///< mean predictive SD over remaining pool
  double rmse = 0.0;           ///< test-set RMSE (paper eq. 2)
  double pickCost = 0.0;       ///< linear cost of the consumed experiment(s)
  double cumulativeCost = 0.0;
  double noiseVariance = 0.0;  ///< fitted σ_n² this iteration
  double lml = 0.0;
  /// Fault accounting (always 0 on the infallible path): oracle attempts
  /// lost to failures this iteration and the cost they burned (including
  /// retry-backoff surcharges), both already folded into cumulativeCost.
  double failedAttempts = 0.0;
  double wastedCost = 0.0;
  /// 1.0 when the trained observation is a walltime-censored lower bound.
  double censored = 0.0;
};

/// Complete mid-campaign state of the AL loop — everything needed to
/// continue a run bit-for-bit after a process restart. Produced at every
/// loop exit (AlResult::checkpoint) and serializable via checkpoint.hpp.
struct Checkpoint {
  data::TriPartition partition;        ///< the run's original partition
  std::vector<std::size_t> train;      ///< consumed rows, in training order
  la::Vector trainY;                   ///< measured responses for `train`
  std::vector<std::size_t> pool;       ///< remaining selectable rows
  std::vector<std::size_t> quarantined;///< rows excluded after retry exhaustion
  std::vector<IterationRecord> history;
  double cumulativeCost = 0.0;
  int iteration = 0;
  std::vector<double> gpTheta;         ///< GP thetaFull() at the last fit
  /// Training-set size at the last *full* posterior factorization. Lets
  /// resume rebuild the incremental-Cholesky chain exactly: refit the
  /// first trainAtLastFit points with the checkpointed θ, then replay the
  /// tail as extensions — reproducing an uninterrupted run bit-for-bit
  /// even when incrementalPosterior is active. 0 = no full fit recorded
  /// (fresh runs, or checkpoints from before this field existed).
  std::size_t trainAtLastFit = 0;
  stats::Rng::State rngState{};        ///< engine state at loop exit
  bool hasRngState = false;
};

struct AlResult {
  std::vector<IterationRecord> history;
  data::TriPartition partition;
  StopReason stopReason = StopReason::PoolExhausted;
  gp::GaussianProcess finalGp;  ///< fitted on everything consumed

  /// Loop state at the stop point; feed to ActiveLearner::resume (after a
  /// round-trip through save/loadCheckpoint if the process died) to
  /// continue the campaign.
  Checkpoint checkpoint;
  /// Refits that fell back to the last good hyperparameters because the
  /// fresh fit diverged (non-finite LML or failed Cholesky).
  int fitFallbacks = 0;

  /// Rows whose measurements kept failing until retries were exhausted.
  const std::vector<std::size_t>& quarantined() const {
    return checkpoint.quarantined;
  }

  /// Convenience extraction of one metric across iterations.
  std::vector<double> series(double IterationRecord::* field) const;
};

/// Human-readable name of a stop reason.
std::string toString(StopReason reason);

/// Renders the learning trace as a Table (one row per iteration, columns
/// Iteration / ChosenRow / SigmaAtPick / MuAtPick / AMSD / RMSE /
/// PickCost / CumulativeCost / NoiseVariance / LML / FailedAttempts /
/// WastedCost / Censored) — ready for data::writeCsv so traces can be
/// archived and plotted externally.
data::Table historyToTable(std::span<const IterationRecord> history);
data::Table historyToTable(const AlResult& result);

/// Inverse of historyToTable (checkpoint loading); missing fault columns
/// are tolerated for traces archived by older versions.
std::vector<IterationRecord> historyFromTable(const data::Table& table);

class ActiveLearner {
 public:
  /// `gpPrototype` supplies the kernel/config; it is copied per run.
  ActiveLearner(RegressionProblem problem, gp::GaussianProcess gpPrototype,
                StrategyPtr strategy, AlConfig config = {});

  /// Random partition + full AL loop.
  AlResult run(stats::Rng& rng) const;

  /// AL loop on a caller-supplied partition (for paired comparisons of
  /// strategies on identical partitions, as in Fig. 8).
  AlResult runWithPartition(const data::TriPartition& partition,
                            stats::Rng& rng) const;

  /// Fault-tolerant loop: every pick is measured through `oracle` under
  /// `policy` (which overrides config().execution.retry). Failed attempts
  /// charge their burned cost to the budget; points whose retries are
  /// exhausted are quarantined and never picked again; censored
  /// measurements train on their lower bound. The oracle may be row-based
  /// or point-based (the picked row's coordinates are passed); v1
  /// FallibleRowOracle call sites convert implicitly.
  AlResult runFallible(const Oracle& oracle, const RetryPolicy& policy,
                       stats::Rng& rng) const;
  AlResult runFallibleWithPartition(const Oracle& oracle,
                                    const RetryPolicy& policy,
                                    const data::TriPartition& partition,
                                    stats::Rng& rng) const;

  /// Continues a checkpointed campaign bit-for-bit: the concatenation of
  /// the checkpointed history and the resumed run's new records equals
  /// the trace of an uninterrupted run with the same seed. The
  /// checkpoint's RNG state overwrites `rng`. Pass the oracle/policy pair
  /// for campaigns started with runFallible.
  AlResult resume(const Checkpoint& checkpoint, stats::Rng& rng) const;
  AlResult resumeFallible(const Checkpoint& checkpoint, const Oracle& oracle,
                          const RetryPolicy& policy, stats::Rng& rng) const;

  const RegressionProblem& problem() const { return problem_; }
  const AlConfig& config() const { return config_; }

 private:
  Checkpoint initialState(const data::TriPartition& partition) const;
  void validateCheckpoint(const Checkpoint& cp) const;
  AlResult runLoop(Checkpoint state, const Oracle* oracle,
                   const RetryPolicy* policy, stats::Rng& rng) const;
  /// The asynchronous loop (execution.maxInFlight > 1): bounded in-flight
  /// dispatch with constant-liar fantasy selection over pending picks;
  /// commits (and hence records, training-set growth and RNG use) happen
  /// in deterministic dispatch order. On any stop the pipeline is drained,
  /// so checkpoints never carry in-flight state. A null oracle runs the
  /// table-driven path through the same engine.
  AlResult runLoopAsync(Checkpoint state, const Oracle* oracle,
                        const ExecutionConfig& exec, stats::Rng& rng) const;

  RegressionProblem problem_;
  gp::GaussianProcess gpPrototype_;
  StrategyPtr strategy_;
  AlConfig config_;
};

}  // namespace alperf::al
