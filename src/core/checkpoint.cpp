#include "core/checkpoint.hpp"

#include <cinttypes>
#include <cstdio>
#include <limits>
#include <map>

#include "common/error.hpp"
#include "data/csv.hpp"

namespace alperf::al {

namespace {

constexpr int kFormatVersion = 1;

// First meta row; deliberately non-numeric so the CSV reader keeps the
// Value column categorical (a column of bare numbers would be parsed as
// doubles, destroying the exact uint64 RNG words).
constexpr const char* kMagic = "alperf-checkpoint";

std::string fmtDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.*g",
                std::numeric_limits<double>::max_digits10, v);
  return buf;
}

std::string fmtWord(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

double parseDouble(const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  requireArg(end != s.c_str() && *end == '\0',
             "loadCheckpoint: bad double '" + s + "'");
  return v;
}

std::uint64_t parseWord(const std::string& s) {
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(s.c_str(), &end, 10);
  requireArg(end != s.c_str() && *end == '\0',
             "loadCheckpoint: bad integer '" + s + "'");
  return v;
}

}  // namespace

void saveCheckpoint(const Checkpoint& checkpoint, const std::string& prefix) {
  requireArg(checkpoint.hasRngState,
             "saveCheckpoint: checkpoint has no RNG state (not produced by "
             "an AL run)");
  requireArg(checkpoint.trainY.size() == checkpoint.train.size(),
             "saveCheckpoint: train/trainY size mismatch");

  // --- meta: key/value scalars, all as exact strings.
  std::vector<std::string> keys, values;
  const auto put = [&](const std::string& k, const std::string& v) {
    keys.push_back(k);
    values.push_back(v);
  };
  put("Magic", kMagic);
  put("FormatVersion", fmtWord(kFormatVersion));
  put("Iteration", fmtWord(static_cast<std::uint64_t>(checkpoint.iteration)));
  put("CumulativeCost", fmtDouble(checkpoint.cumulativeCost));
  put("TrainAtLastFit",
      fmtWord(static_cast<std::uint64_t>(checkpoint.trainAtLastFit)));
  put("GpThetaCount",
      fmtWord(static_cast<std::uint64_t>(checkpoint.gpTheta.size())));
  for (std::size_t i = 0; i < checkpoint.gpTheta.size(); ++i)
    put("GpTheta" + std::to_string(i), fmtDouble(checkpoint.gpTheta[i]));
  for (std::size_t i = 0; i < checkpoint.rngState.size(); ++i)
    put("RngState" + std::to_string(i), fmtWord(checkpoint.rngState[i]));
  data::Table meta;
  meta.addCategorical("Key", std::move(keys));
  meta.addCategorical("Value", std::move(values));
  data::writeCsv(meta, prefix + ".meta.csv");

  // --- trace: reuse the standard learning-trace table.
  data::writeCsv(
      historyToTable(std::span<const IterationRecord>(checkpoint.history)),
      prefix + ".trace.csv");

  // --- sets: every index set, one row each, in order. The Y column is
  // the measured response for train rows (0 elsewhere — on the fallible
  // path it cannot be reconstructed from the problem table).
  std::vector<std::string> setName;
  std::vector<double> rowIdx, response;
  const auto putSet = [&](const std::string& name,
                          const std::vector<std::size_t>& rows,
                          const la::Vector* y) {
    for (std::size_t i = 0; i < rows.size(); ++i) {
      setName.push_back(name);
      rowIdx.push_back(static_cast<double>(rows[i]));
      response.push_back(y ? (*y)[i] : 0.0);
    }
  };
  putSet("initial", checkpoint.partition.initial, nullptr);
  putSet("active", checkpoint.partition.active, nullptr);
  putSet("test", checkpoint.partition.test, nullptr);
  putSet("train", checkpoint.train, &checkpoint.trainY);
  putSet("pool", checkpoint.pool, nullptr);
  putSet("quarantined", checkpoint.quarantined, nullptr);
  data::Table sets;
  sets.addCategorical("Set", std::move(setName));
  sets.addNumeric("Row", std::move(rowIdx));
  sets.addNumeric("Y", std::move(response));
  data::writeCsv(sets, prefix + ".sets.csv");
}

Checkpoint loadCheckpoint(const std::string& prefix) {
  Checkpoint cp;

  // --- meta.
  const data::Table meta = data::readCsv(prefix + ".meta.csv");
  requireArg(meta.hasColumn("Key") && meta.hasColumn("Value"),
             "loadCheckpoint: malformed meta file");
  std::map<std::string, std::string> kv;
  const auto keys = meta.categorical("Key");
  const auto values = meta.categorical("Value");
  for (std::size_t i = 0; i < meta.numRows(); ++i) kv[keys[i]] = values[i];
  const auto get = [&](const std::string& k) {
    const auto it = kv.find(k);
    requireArg(it != kv.end(), "loadCheckpoint: missing meta key '" + k + "'");
    return it->second;
  };
  requireArg(get("Magic") == kMagic,
             "loadCheckpoint: not a checkpoint meta file");
  requireArg(parseWord(get("FormatVersion")) == kFormatVersion,
             "loadCheckpoint: unsupported checkpoint format version");
  cp.iteration = static_cast<int>(parseWord(get("Iteration")));
  cp.cumulativeCost = parseDouble(get("CumulativeCost"));
  // Absent in checkpoints written before incremental posterior reuse;
  // 0 means "no chain to rebuild" and reproduces the old resume behavior.
  if (const auto it = kv.find("TrainAtLastFit"); it != kv.end())
    cp.trainAtLastFit = static_cast<std::size_t>(parseWord(it->second));
  const std::size_t nTheta = parseWord(get("GpThetaCount"));
  cp.gpTheta.resize(nTheta);
  for (std::size_t i = 0; i < nTheta; ++i)
    cp.gpTheta[i] = parseDouble(get("GpTheta" + std::to_string(i)));
  for (std::size_t i = 0; i < cp.rngState.size(); ++i)
    cp.rngState[i] = parseWord(get("RngState" + std::to_string(i)));
  cp.hasRngState = true;

  // --- trace.
  // Traces legitimately carry non-finite values (a prior-only degraded
  // iteration records LML = -inf), so the load-time NaN/Inf guard is
  // relaxed for this one file; .meta.csv and .sets.csv stay strict.
  cp.history = historyFromTable(
      data::readCsv(prefix + ".trace.csv", {.rejectNonFinite = false}));

  // --- sets.
  const data::Table sets = data::readCsv(prefix + ".sets.csv");
  requireArg(sets.hasColumn("Set") && sets.hasColumn("Row") &&
                 sets.hasColumn("Y"),
             "loadCheckpoint: malformed sets file");
  const auto setName = sets.categorical("Set");
  const auto rowIdx = sets.numeric("Row");
  const auto response = sets.numeric("Y");
  for (std::size_t i = 0; i < sets.numRows(); ++i) {
    const auto row = static_cast<std::size_t>(rowIdx[i]);
    const std::string& name = setName[i];
    if (name == "initial") {
      cp.partition.initial.push_back(row);
    } else if (name == "active") {
      cp.partition.active.push_back(row);
    } else if (name == "test") {
      cp.partition.test.push_back(row);
    } else if (name == "train") {
      cp.train.push_back(row);
      cp.trainY.push_back(response[i]);
    } else if (name == "pool") {
      cp.pool.push_back(row);
    } else if (name == "quarantined") {
      cp.quarantined.push_back(row);
    } else {
      throw std::invalid_argument("loadCheckpoint: unknown set '" + name +
                                  "'");
    }
  }
  requireArg(!cp.train.empty(), "loadCheckpoint: empty training set");
  return cp;
}

}  // namespace alperf::al
