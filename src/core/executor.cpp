#include "core/executor.hpp"

#include <algorithm>
#include <cmath>

#include "common/trace.hpp"

namespace alperf::al {

void RetryPolicy::validate() const {
  requireArg(maxRetries >= 0, "RetryPolicy: maxRetries must be >= 0");
  requireArg(backoffCostBase >= 0.0 && std::isfinite(backoffCostBase),
             "RetryPolicy: backoffCostBase must be finite and >= 0");
  requireArg(backoffGrowth >= 1.0,
             "RetryPolicy: backoffGrowth must be >= 1");
  requireArg(backoffCostCap >= 0.0,
             "RetryPolicy: backoffCostCap must be >= 0");
}

double RetryPolicy::backoffCost(int retry) const {
  requireArg(retry >= 1, "RetryPolicy::backoffCost: retry must be >= 1");
  if (backoffCostBase == 0.0) return 0.0;
  double surcharge = backoffCostBase;
  for (int k = 1; k < retry && surcharge < backoffCostCap; ++k)
    surcharge *= backoffGrowth;
  return std::min(surcharge, backoffCostCap);
}

void ExecutionConfig::validate() const {
  retry.validate();
  requireArg(maxInFlight >= 1 && maxInFlight <= 1024,
             "ExecutionConfig: maxInFlight must be in [1, 1024]");
}

ExecutionResult runWithRetries(const RetryPolicy& policy,
                               const std::function<Measurement()>& attempt) {
  requireArg(attempt != nullptr, "runWithRetries: null attempt");
  trace::Span measureSpan("exec.measure");
  ExecutionResult result;
  for (int tryIdx = 0; tryIdx <= policy.maxRetries; ++tryIdx) {
    trace::Span attemptSpan("exec.attempt");
    attemptSpan.note("try", tryIdx);
    Measurement m = attempt();
    // A hand-built "Ok" carrying NaN/Inf is a failed measurement: it must
    // never be fed into the GP's Cholesky.
    if (m.status == MeasurementStatus::Ok && !std::isfinite(m.y))
      m = Measurement::failed(m.totalCost(), m.attempts);
    if (m.status == MeasurementStatus::Censored && !std::isfinite(m.y))
      m = Measurement::failed(m.totalCost(), m.attempts);
    attemptSpan.note("outcome", toString(m.status));

    result.attempts += m.attempts;
    if (m.usable()) {
      // The backend may have retried internally; its own waste joins the
      // executor-level waste in the campaign ledger.
      result.wastedCost += m.wastedCost;
      m.wastedCost = 0.0;
      result.measurement = m;
      measureSpan.note("outcome", toString(m.status))
          .note("attempts", result.attempts);
      return result;
    }
    result.wastedCost += m.totalCost();
    if (tryIdx < policy.maxRetries)
      result.wastedCost += policy.backoffCost(tryIdx + 1);
    result.measurement = m;
  }
  result.quarantined = true;
  measureSpan.note("outcome", "quarantined").note("attempts", result.attempts);
  return result;
}

ExperimentExecutor::ExperimentExecutor(RetryPolicy policy) : policy_(policy) {
  policy_.validate();
}

ExecutionResult ExperimentExecutor::execute(
    const std::function<Measurement()>& attempt) {
  requireArg(attempt != nullptr, "ExperimentExecutor: null attempt");
  const ExecutionResult result = runWithRetries(policy_, attempt);
  totalWastedCost_ += result.wastedCost;
  if (result.quarantined) {
    totalFailedAttempts_ += result.attempts;
    ++totalQuarantined_;
  } else {
    totalFailedAttempts_ += result.attempts - 1;
  }
  return result;
}

}  // namespace alperf::al
