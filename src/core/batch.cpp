#include "core/batch.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace alperf::al {

std::size_t BatchResult::minIterations() const {
  std::size_t m = std::numeric_limits<std::size_t>::max();
  for (const auto& r : runs) m = std::min(m, r.history.size());
  return runs.empty() ? 0 : m;
}

std::vector<double> BatchResult::meanSeries(
    double IterationRecord::* field) const {
  const std::size_t len = minIterations();
  std::vector<double> out(len, 0.0);
  if (runs.empty()) return out;
  for (const auto& r : runs)
    for (std::size_t i = 0; i < len; ++i) out[i] += r.history[i].*field;
  for (double& v : out) v /= static_cast<double>(runs.size());
  return out;
}

BatchResult runBatch(const RegressionProblem& problem,
                     const gp::GaussianProcess& gpPrototype,
                     const StrategyFactory& makeStrategy,
                     const BatchConfig& config) {
  requireArg(config.replicates >= 1, "runBatch: replicates must be >= 1");
  BatchResult out;
  out.runs.reserve(config.replicates);
  stats::Rng master(config.seed);
  for (int r = 0; r < config.replicates; ++r) {
    stats::Rng rng = master.split();
    ActiveLearner learner(problem, gpPrototype, makeStrategy(), config.al);
    out.runs.push_back(learner.run(rng));
  }
  return out;
}

std::vector<BatchResult> runPairedBatch(
    const RegressionProblem& problem, const gp::GaussianProcess& gpPrototype,
    const std::vector<StrategyFactory>& strategies,
    const BatchConfig& config) {
  requireArg(!strategies.empty(), "runPairedBatch: no strategies");
  requireArg(config.replicates >= 1,
             "runPairedBatch: replicates must be >= 1");
  std::vector<BatchResult> out(strategies.size());
  stats::Rng master(config.seed);
  for (int r = 0; r < config.replicates; ++r) {
    stats::Rng partitionRng = master.split();
    const auto partition =
        data::triPartition(problem.size(), config.al.nInitial,
                           config.al.activeFraction, partitionRng);
    for (std::size_t s = 0; s < strategies.size(); ++s) {
      stats::Rng runRng = partitionRng.split();
      ActiveLearner learner(problem, gpPrototype, strategies[s](),
                            config.al);
      out[s].runs.push_back(learner.runWithPartition(partition, runRng));
    }
  }
  return out;
}

}  // namespace alperf::al
