#pragma once

/// \file oracle.hpp
/// Oracle API v2 — one measurement-backend handle for every AL loop.
///
/// v1 exposed two bare std::function typedefs (`FallibleOracle` over
/// design points, `FallibleRowOracle` over problem rows; executor.hpp)
/// plus a third, infallible `double(x)` shape special-cased by the
/// continuous loop. Each loop accepted exactly one shape, so a backend
/// had to be re-wrapped per loop and could expose no capability beyond
/// "call me synchronously". `al::Oracle` erases all three shapes behind
/// one value type:
///
///   - construct it from *any* callable taking `std::span<const double>`
///     (a design point) or `std::size_t` (a problem-row index) and
///     returning either a `Measurement` (fallible backends) or a plain
///     `double` (infallible backends — non-finite responses throw
///     std::invalid_argument before they can reach a Cholesky);
///   - loops probe capabilities (`hasPointMeasure` / `hasRowMeasure`)
///     instead of demanding a shape: the discrete learner now accepts
///     point-based backends (it passes the picked row's coordinates),
///     and a row capability can be attached next to a point one via
///     `withRowMeasure` when row identity matters (e.g. caching);
///   - backends whose scheduler is natively asynchronous can attach a
///     submit/await pair (`withAsync`): `al::AsyncDispatcher`
///     (core/dispatch.hpp) then hands the experiment to the backend at
///     dispatch time and only parks a slot on `await`, instead of
///     blocking a slot for the whole measurement.
///
/// Construction is implicit on purpose: every v1 call site passed a
/// lambda or std::function where a loop parameter now reads
/// `const Oracle&`, and the single implicit conversion keeps those call
/// sites compiling unchanged.

#include <cmath>
#include <concepts>
#include <cstdint>
#include <functional>
#include <span>
#include <type_traits>
#include <utility>

#include "common/error.hpp"
#include "common/outcome.hpp"

namespace alperf::al {

class Oracle {
 public:
  /// Row id used where no problem row exists (continuous suggestions).
  static constexpr std::size_t kNoRow = static_cast<std::size_t>(-1);

  using MeasureFn = std::function<Measurement(std::span<const double>)>;
  using MeasureRowFn = std::function<Measurement(std::size_t)>;
  /// Backend-native asynchrony: `submit` hands the experiment (problem
  /// row, or kNoRow, plus its design point) to the backend and returns a
  /// backend ticket immediately; `await` blocks until that ticket's
  /// measurement is available. Retried attempts re-submit.
  using SubmitFn =
      std::function<std::uint64_t(std::size_t row, std::span<const double> x)>;
  using AwaitFn = std::function<Measurement(std::uint64_t ticket)>;

  /// An Oracle with no capabilities (operator bool returns false).
  Oracle() = default;
  /// v1 compatibility: call sites passed `nullptr` where a std::function
  /// oracle was expected; that still produces a capability-less Oracle,
  /// rejected by the loops' entry checks.
  Oracle(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  /// From any point-based callable: `f(span<const double>)` returning a
  /// Measurement (fallible) or a double (infallible; non-finite responses
  /// throw std::invalid_argument). A null std::function stays null.
  template <class F>
    requires(!std::same_as<std::remove_cvref_t<F>, Oracle> &&
             std::invocable<F&, std::span<const double>>)
  Oracle(F f) {  // NOLINT(google-explicit-constructor): see file comment.
    if constexpr (requires { f == nullptr; }) {
      if (f == nullptr) return;
    }
    using R = std::invoke_result_t<F&, std::span<const double>>;
    if constexpr (std::is_same_v<R, Measurement>) {
      measure_ = std::move(f);
    } else {
      static_assert(std::is_convertible_v<R, double>,
                    "Oracle: point callable must return Measurement or "
                    "double");
      measure_ = [g = std::move(f)](std::span<const double> x) {
        const double y = g(x);
        requireArg(std::isfinite(y),
                   "Oracle: infallible backend returned a non-finite "
                   "response");
        return Measurement::ok(y, 0.0);
      };
    }
  }

  /// From any row-based callable: `f(std::size_t)` returning a
  /// Measurement or a double (same wrapping as the point form). Callables
  /// invocable with a span bind to the point constructor instead, so a
  /// generic lambda is treated as point-based.
  template <class F>
    requires(!std::same_as<std::remove_cvref_t<F>, Oracle> &&
             !std::invocable<F&, std::span<const double>> &&
             std::invocable<F&, std::size_t>)
  Oracle(F f) {  // NOLINT(google-explicit-constructor)
    if constexpr (requires { f == nullptr; }) {
      if (f == nullptr) return;
    }
    using R = std::invoke_result_t<F&, std::size_t>;
    if constexpr (std::is_same_v<R, Measurement>) {
      measureRow_ = std::move(f);
    } else {
      static_assert(std::is_convertible_v<R, double>,
                    "Oracle: row callable must return Measurement or "
                    "double");
      measureRow_ = [g = std::move(f)](std::size_t row) {
        const double y = g(row);
        requireArg(std::isfinite(y),
                   "Oracle: infallible backend returned a non-finite "
                   "response");
        return Measurement::ok(y, 0.0);
      };
    }
  }

  /// Capability probes.
  bool hasPointMeasure() const { return static_cast<bool>(measure_); }
  bool hasRowMeasure() const { return static_cast<bool>(measureRow_); }
  bool hasAsync() const {
    return static_cast<bool>(submit_) && static_cast<bool>(await_);
  }
  /// True when the oracle can measure at all (either shape).
  explicit operator bool() const {
    return hasPointMeasure() || hasRowMeasure();
  }

  /// Attaches a row capability next to an existing point one (or vice
  /// versa: default-construct, then chain both). Returns *this.
  Oracle& withRowMeasure(MeasureRowFn f) {
    measureRow_ = std::move(f);
    return *this;
  }
  Oracle& withPointMeasure(MeasureFn f) {
    measure_ = std::move(f);
    return *this;
  }
  /// Attaches the native-async submit/await pair. Both must be non-null.
  Oracle& withAsync(SubmitFn submit, AwaitFn await) {
    requireArg(submit != nullptr && await != nullptr,
               "Oracle::withAsync: submit and await must both be set");
    submit_ = std::move(submit);
    await_ = std::move(await);
    return *this;
  }

  /// Synchronous measurement at a design point / problem row. Throws
  /// std::invalid_argument when the capability is absent.
  Measurement measure(std::span<const double> x) const {
    requireArg(hasPointMeasure(), "Oracle: no point-measure capability");
    return measure_(x);
  }
  Measurement measureRow(std::size_t row) const {
    requireArg(hasRowMeasure(), "Oracle: no row-measure capability");
    return measureRow_(row);
  }

  /// Measures through the best-fitting capability: the row form when a
  /// real row id and a row capability exist, the point form otherwise.
  Measurement measureAny(std::size_t row, std::span<const double> x) const {
    if (row != kNoRow && hasRowMeasure()) return measureRow_(row);
    return measure(x);
  }

  /// Native-async hooks (hasAsync() must be true).
  std::uint64_t submit(std::size_t row, std::span<const double> x) const {
    requireArg(hasAsync(), "Oracle: no async capability");
    return submit_(row, x);
  }
  Measurement await(std::uint64_t ticket) const {
    requireArg(hasAsync(), "Oracle: no async capability");
    return await_(ticket);
  }

 private:
  MeasureFn measure_;
  MeasureRowFn measureRow_;
  SubmitFn submit_;
  AwaitFn await_;
};

}  // namespace alperf::al
