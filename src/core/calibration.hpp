#pragma once

/// \file calibration.hpp
/// Uncertainty-calibration assessment for GP models: does the claimed
/// predictive distribution match reality? This is the quantitative core
/// of the paper's Fig. 7 lesson — an overfit GP (permissive σ_n bound)
/// reports confidence intervals far narrower than its actual errors.

#include "gp/gp.hpp"

namespace alperf::al {

/// Summary of how well the GP's claimed uncertainties match held-out
/// errors.
struct CalibrationReport {
  /// Fraction of test points inside the central `level` interval of the
  /// predictive distribution (ideal: ≈ level).
  double coverage = 0.0;
  /// Mean standardized residual (y − µ)/σ (ideal: ≈ 0).
  double meanZ = 0.0;
  /// RMS of standardized residuals (ideal: ≈ 1; >> 1 = overconfident,
  /// << 1 = underconfident).
  double rmsZ = 0.0;
  std::size_t n = 0;  ///< number of test points assessed
};

/// Evaluates the fitted GP's predictive distribution (observation noise
/// included) against held-out (x, y) pairs at the given central interval
/// level (e.g. 0.95). Requires a fitted GP and non-empty test data.
CalibrationReport assessCalibration(const gp::GaussianProcess& gp,
                                    const la::Matrix& testX,
                                    const la::Vector& testY,
                                    double level = 0.95);

/// Two-sided standard normal quantile for the central interval of the
/// given level, e.g. 0.95 → 1.96 (exposed for tests).
double centralIntervalZ(double level);

}  // namespace alperf::al
