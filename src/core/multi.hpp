#pragma once

/// \file multi.hpp
/// Multi-response active learning — the paper's claim that the framework
/// "can be used to construct a number of diverse performance models,
/// including models for application runtime, energy consumption, memory
/// usage, and many others" (Sec. I contributions). One shared experiment
/// sequence feeds one GP per response; the acquisition aggregates the
/// per-response uncertainties (each normalized by its own response scale
/// so Joules and seconds are commensurable).

#include "core/strategy.hpp"
#include "data/partition.hpp"

namespace alperf::al {

/// A shared design matrix with several responses measured per experiment.
struct MultiResponseProblem {
  la::Matrix x;
  std::vector<la::Vector> responses;     ///< one vector per response
  std::vector<std::string> responseNames;
  la::Vector cost;                        ///< shared per-experiment cost

  std::size_t size() const { return x.rows(); }
  std::size_t dim() const { return x.cols(); }
  std::size_t numResponses() const { return responses.size(); }

  void validate() const;
};

/// Loop controls for the multi-response learner (a subset of AlConfig
/// plus the aggregation choices that only exist here).
struct MultiAlConfig {
  std::size_t nInitial = 1;     ///< seed experiments
  double activeFraction = 0.8;  ///< Active : Test split of the rest
  int maxIterations = -1;       ///< -1 = run until the pool is empty
  int refitEvery = 1;           ///< full hyperparameter refit cadence
  /// Aggregation of per-response normalized SDs at each candidate:
  /// true = max (worst-known response drives selection),
  /// false = mean.
  bool aggregateMax = true;
  /// Subtract the normalized predicted log-cost (eq. 14 generalized) —
  /// the cost model is the first response when enabled.
  bool costAware = false;
};

/// Per-iteration trace entry; metric vectors are indexed like
/// MultiResponseProblem::responses.
struct MultiIterationRecord {
  int iteration = 0;
  std::size_t chosenRow = 0;  ///< job consumed this iteration
  std::vector<double> rmse;  ///< per-response test RMSE
  std::vector<double> amsd;  ///< per-response AMSD over the pool
  double cumulativeCost = 0.0;
};

/// Full trace, the partition it ran on, and the fitted per-response GPs.
struct MultiAlResult {
  std::vector<MultiIterationRecord> history;
  data::TriPartition partition;               ///< Initial/Active/Test rows
  std::vector<gp::GaussianProcess> finalGps;  ///< one per response
};

/// Runs the shared-sequence AL loop: every iteration fits all response
/// GPs on the same training rows, scores candidates by aggregated
/// normalized uncertainty, and consumes one experiment (which yields ALL
/// response measurements at once — one job run reports runtime and
/// energy together, the paper's setting).
MultiAlResult runMultiResponseAl(const MultiResponseProblem& problem,
                                 const gp::GaussianProcess& gpPrototype,
                                 const MultiAlConfig& config,
                                 stats::Rng& rng);

}  // namespace alperf::al
