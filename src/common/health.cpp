#include "common/health.hpp"

#include <deque>
#include <sstream>

#include "common/fault_inject.hpp"
#include "common/perf_stats.hpp"
#include "common/thread_annotations.hpp"

namespace alperf {

struct HealthMonitor::Impl {
  mutable Mutex mu;
  std::deque<HealthIncident> ring ALPERF_GUARDED_BY(mu);
  std::uint64_t seq ALPERF_GUARDED_BY(mu) = 0;
};

// alperf-lint: allow(naked-new) — intentionally leaked process-global
// singleton; destruction order vs other static objects is undefined.
HealthMonitor::HealthMonitor() : impl_(new Impl) {}

HealthMonitor& HealthMonitor::instance() {
  static HealthMonitor monitor;
  return monitor;
}

void HealthMonitor::record(const std::string& kind,
                           const std::string& detail) {
  PerfRegistry::instance().increment("health." + kind);
  HealthIncident incident;
  incident.kind = kind;
  incident.detail = detail;
  incident.iteration = FaultContext::iteration();
  MutexLock lock(impl_->mu);
  incident.seq = ++impl_->seq;
  impl_->ring.push_back(std::move(incident));
  if (impl_->ring.size() > kRingCapacity) impl_->ring.pop_front();
}

std::vector<HealthIncident> HealthMonitor::recent() const {
  MutexLock lock(impl_->mu);
  return {impl_->ring.begin(), impl_->ring.end()};
}

std::uint64_t HealthMonitor::total() const {
  MutexLock lock(impl_->mu);
  return impl_->seq;
}

void HealthMonitor::reset() {
  MutexLock lock(impl_->mu);
  impl_->ring.clear();
  impl_->seq = 0;
}

std::string HealthMonitor::report() const {
  // Snapshot the total and the ring under ONE lock acquisition: calling
  // total() and recent() back to back (as this function originally did)
  // lets a concurrent record() land between the two reads, producing a
  // header count that disagrees with the listed incidents. Found by the
  // thread-safety annotation sweep; see docs/STATIC_ANALYSIS.md.
  std::uint64_t totalCount = 0;
  std::vector<HealthIncident> incidents;
  {
    MutexLock lock(impl_->mu);
    totalCount = impl_->seq;
    incidents.assign(impl_->ring.begin(), impl_->ring.end());
  }
  std::ostringstream os;
  os << "numerical health: " << totalCount << " incident(s) recorded\n";
  bool anyCounter = false;
  for (const auto& entry : PerfRegistry::instance().snapshot()) {
    if (entry.name.rfind("health.", 0) != 0) continue;
    os << "  " << entry.name << " = " << entry.count << "\n";
    anyCounter = true;
  }
  if (!anyCounter) os << "  (no health counters recorded)\n";
  if (!incidents.empty()) {
    os << "recent incidents (oldest first, ring capacity " << kRingCapacity
       << "):\n";
    for (const auto& inc : incidents) {
      os << "  [" << inc.seq << "]";
      if (inc.iteration >= 0) os << " iter=" << inc.iteration;
      os << " " << inc.kind;
      if (!inc.detail.empty()) os << " — " << inc.detail;
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace alperf
