#include "common/health.hpp"

#include <deque>
#include <mutex>
#include <sstream>

#include "common/fault_inject.hpp"
#include "common/perf_stats.hpp"

namespace alperf {

struct HealthMonitor::Impl {
  mutable std::mutex mu;
  std::deque<HealthIncident> ring;
  std::uint64_t seq = 0;
};

HealthMonitor::HealthMonitor() : impl_(new Impl) {}

HealthMonitor& HealthMonitor::instance() {
  static HealthMonitor monitor;
  return monitor;
}

void HealthMonitor::record(const std::string& kind,
                           const std::string& detail) {
  PerfRegistry::instance().increment("health." + kind);
  HealthIncident incident;
  incident.kind = kind;
  incident.detail = detail;
  incident.iteration = FaultContext::iteration();
  std::lock_guard<std::mutex> lock(impl_->mu);
  incident.seq = ++impl_->seq;
  impl_->ring.push_back(std::move(incident));
  if (impl_->ring.size() > kRingCapacity) impl_->ring.pop_front();
}

std::vector<HealthIncident> HealthMonitor::recent() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return {impl_->ring.begin(), impl_->ring.end()};
}

std::uint64_t HealthMonitor::total() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->seq;
}

void HealthMonitor::reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->ring.clear();
  impl_->seq = 0;
}

std::string HealthMonitor::report() const {
  std::ostringstream os;
  os << "numerical health: " << total() << " incident(s) recorded\n";
  bool anyCounter = false;
  for (const auto& entry : PerfRegistry::instance().snapshot()) {
    if (entry.name.rfind("health.", 0) != 0) continue;
    os << "  " << entry.name << " = " << entry.count << "\n";
    anyCounter = true;
  }
  if (!anyCounter) os << "  (no health counters recorded)\n";
  const auto incidents = recent();
  if (!incidents.empty()) {
    os << "recent incidents (oldest first, ring capacity " << kRingCapacity
       << "):\n";
    for (const auto& inc : incidents) {
      os << "  [" << inc.seq << "]";
      if (inc.iteration >= 0) os << " iter=" << inc.iteration;
      os << " " << inc.kind;
      if (!inc.detail.empty()) os << " — " << inc.detail;
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace alperf
