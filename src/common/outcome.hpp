#pragma once

/// \file outcome.hpp
/// Measurement outcome taxonomy for fault-tolerant experiment execution.
///
/// Real measurement campaigns lose jobs to crashes, sensor gaps, and
/// walltime kills (the paper's Power dataset is smaller than Performance
/// for exactly this reason, Sec. IV). A measurement backend therefore
/// reports one of three outcomes instead of a bare double:
///
///   Ok        the experiment completed; `y` is the response and `cost`
///             the resources it consumed.
///   Failed    the attempt crashed; `cost` is the resources burned before
///             the crash. No response is available.
///   Censored  the job was killed at its walltime limit; `y` is a *lower
///             bound* on the true response and `cost` what the truncated
///             run consumed.
///
/// Failed attempts still charge their burned cost against the campaign
/// budget — losing an experiment is not free.

#include <cmath>
#include <string>

#include "common/error.hpp"

namespace alperf {

enum class MeasurementStatus { Ok, Failed, Censored };

/// Human-readable status name ("ok" / "failed" / "censored").
inline std::string toString(MeasurementStatus status) {
  switch (status) {
    case MeasurementStatus::Ok:
      return "ok";
    case MeasurementStatus::Failed:
      return "failed";
    case MeasurementStatus::Censored:
      return "censored";
  }
  throw std::invalid_argument("toString: unknown MeasurementStatus");
}

/// Result of one experiment execution (possibly spanning several backend
/// attempts, e.g. a scheduler that requeues crashed jobs internally).
struct Measurement {
  MeasurementStatus status = MeasurementStatus::Ok;
  /// Ok: the observed response. Censored: a lower bound on it.
  /// Failed: meaningless (0).
  double y = 0.0;
  /// Cost of the recorded (final) attempt, in the problem's cost unit.
  double cost = 0.0;
  /// Cost burned by earlier failed attempts folded into this measurement.
  double wastedCost = 0.0;
  /// Total attempts behind this measurement (1 = clean run).
  int attempts = 1;

  /// Completed measurement. Throws std::invalid_argument on non-finite
  /// `y` — NaN/Inf must never masquerade as a successful observation.
  static Measurement ok(double y, double cost) {
    requireArg(std::isfinite(y), "Measurement::ok: non-finite response");
    requireArg(std::isfinite(cost) && cost >= 0.0,
               "Measurement::ok: cost must be finite and >= 0");
    return {MeasurementStatus::Ok, y, cost, 0.0, 1};
  }

  /// Crashed attempt(s): only the burned cost and attempt count survive.
  static Measurement failed(double costBurned, int attempts = 1) {
    requireArg(std::isfinite(costBurned) && costBurned >= 0.0,
               "Measurement::failed: cost must be finite and >= 0");
    requireArg(attempts >= 1, "Measurement::failed: attempts must be >= 1");
    return {MeasurementStatus::Failed, 0.0, costBurned, 0.0, attempts};
  }

  /// Walltime-killed job: the response is only known to exceed
  /// `lowerBound`.
  static Measurement censored(double lowerBound, double cost) {
    requireArg(std::isfinite(lowerBound),
               "Measurement::censored: non-finite lower bound");
    requireArg(std::isfinite(cost) && cost >= 0.0,
               "Measurement::censored: cost must be finite and >= 0");
    return {MeasurementStatus::Censored, lowerBound, cost, 0.0, 1};
  }

  /// True when the measurement carries a usable response (Ok or Censored).
  bool usable() const { return status != MeasurementStatus::Failed; }

  /// Everything this measurement charged the campaign, including waste.
  double totalCost() const { return cost + wastedCost; }
};

}  // namespace alperf
