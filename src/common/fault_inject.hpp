#pragma once

/// \file fault_inject.hpp
/// Deterministic fault-injection harness for the numerics robustness layer.
///
/// Long unattended AL campaigns must survive near-singular gram matrices,
/// non-finite likelihoods and diverged optimizer runs. Every recovery path
/// that handles those conditions is hard to reach with natural inputs, so
/// this harness lets tests (and operators, via the ALPERF_FAULTS
/// environment variable) force each one on demand.
///
/// Design contract — determinism first:
///
///   * A fault is a *predicate over deterministic attributes* of the
///     injection point (campaign iteration, matrix dimension, per-start
///     objective-evaluation index, ...), never a consumable token or a
///     global call counter. Whether a given call fires therefore does not
///     depend on thread interleaving: armed or not, traces are
///     bit-identical at any thread count.
///   * When nothing is armed, fire() is a single relaxed atomic load — the
///     unarmed hot path performs no floating-point work, takes no locks
///     and cannot perturb the bit-identity guarantees of the blocked LA
///     kernels, the distance cache or the incremental-posterior paths.
///   * Every fired injection bumps the PerfRegistry counters
///     `fault.injected` and `fault.injected.<site>`, so a run can prove
///     (CI does) that no injection happened when ALPERF_FAULTS was unset.
///
/// Spec grammar (ALPERF_FAULTS or FaultInjector::arm()):
///
///   spec     := fault (';' fault)*          (whitespace also separates)
///   fault    := site [ '@' cond (',' cond)* ]
///   cond     := key '=' non-negative-integer
///   key      := 'iter' | 'n' | 'eval' | 'start' | 'attempt' | 'opt'
///
/// Examples: "gram.nan@iter=7", "chol.fail@n=256", "lml.inf@eval=3",
/// "chol.fail@iter=2,opt=1", "gram.nan@iter=1;gram.nan@iter=2".
/// A fault with no conditions fires at every matching site.
///
/// Sites injected by the library (see docs/ROBUSTNESS.md for the table):
///   gram.nan     poison the train gram matrix with a NaN
///   chol.fail    make a Cholesky factorization attempt fail
///   extend.fail  make an incremental Cholesky extension fail
///   lml.nan      LML/LOO objective evaluates to NaN
///   lml.inf      LML/LOO objective evaluates to +Inf
///   grad.nan     poison the analytic LML gradient
///   theta.nan    poison the optimized hyperparameter vector

#include <string>
#include <string_view>
#include <vector>

namespace alperf {

/// Deterministic attributes of a prospective injection point. -1 means
/// "unknown / not applicable"; an armed condition on an unknown attribute
/// never matches.
struct FaultAttrs {
  long long iter = -1;     ///< AL campaign iteration (ambient default)
  long long n = -1;        ///< matrix dimension at the site
  long long eval = -1;     ///< objective-evaluation index within one start
  long long start = -1;    ///< multi-start index
  long long attempt = -1;  ///< factorization attempt index (0 = raw)
  long long opt = -1;      ///< 1 inside a hyperparameter-optimizing fit
};

/// One armed fault: a site name plus exact-match conditions (-1 = any).
struct FaultSpec {
  std::string site;
  FaultAttrs match;
};

/// Process-global injector. Armed from the ALPERF_FAULTS environment
/// variable at first use, or programmatically via arm()/disarm().
class FaultInjector {
 public:
  static FaultInjector& instance();

  /// Replaces the armed faults with those parsed from `spec`. An empty
  /// spec disarms. Throws std::invalid_argument on grammar errors.
  void arm(const std::string& spec);

  /// Removes all armed faults.
  void disarm();

  /// True when at least one fault is armed (one relaxed atomic load).
  bool armed() const;

  /// True — and counted in fault.injected(.site) — when an armed fault
  /// matches `site` under `attrs`. Attributes left at -1 fall back to the
  /// ambient campaign context (iteration, optimizing phase) where one
  /// exists. Returns false immediately when nothing is armed.
  bool fire(std::string_view site, const FaultAttrs& attrs = {});

  /// Snapshot of the armed faults (for reporting/tests).
  std::vector<FaultSpec> armedSpecs() const;

  /// Parses a spec string without arming it. Exposed for tests.
  static std::vector<FaultSpec> parse(const std::string& spec);

 private:
  FaultInjector();

  struct Impl;
  Impl* impl_;  // never destroyed (process-global singleton)
};

/// Ambient campaign context: serially-written, concurrently-readable
/// attributes that deep call sites (la::Cholesky, gp::evalLml) cannot
/// receive as parameters. AL loops set the iteration once per (serial)
/// loop step; gp::fit brackets itself with the optimizing flag. Reads are
/// atomic; the values are constant during any parallel region.
struct FaultContext {
  static void setIteration(long long iter);  ///< -1 = outside a campaign
  static long long iteration();
  static void setOptimizing(int opt);  ///< 1 / 0 / -1 = unknown
  static int optimizing();
};

/// RAII for FaultContext::setOptimizing — restores the previous value on
/// scope exit (including exceptions thrown by a failed fit).
class OptimizingScope {
 public:
  explicit OptimizingScope(bool optimizing);
  ~OptimizingScope();
  OptimizingScope(const OptimizingScope&) = delete;
  OptimizingScope& operator=(const OptimizingScope&) = delete;

 private:
  int previous_;
};

}  // namespace alperf
