#pragma once

/// \file thread_annotations.hpp
/// Clang thread-safety (capability) annotations and annotated lock types.
///
/// The determinism guarantees this library makes (bit-identical traces at
/// any thread count, see docs/PERFORMANCE.md) were until now enforced only
/// dynamically, by the TSan CI jobs and the chaos suite. This header moves
/// the lock discipline to compile time: every mutex-protected shared field
/// is annotated with the mutex that guards it, and Clang's
/// `-Wthread-safety` analysis (promoted to an error in the static-analysis
/// CI job) rejects any access that does not hold the right lock.
///
/// Conventions (see docs/STATIC_ANALYSIS.md for the full guide):
///
///   * Shared state guarded by a mutex is declared with
///     `ALPERF_GUARDED_BY(mu)`. Every `alperf::Mutex` member must guard at
///     least one field — `alperf-lint` enforces this per file.
///   * Private helpers that assume the lock is already held are annotated
///     `ALPERF_REQUIRES(mu)`; public entry points that take the lock
///     themselves may advertise `ALPERF_EXCLUDES(mu)` so the analysis
///     rejects re-entrant calls.
///   * Fields synchronized by a protocol the analysis cannot express
///     (e.g. the thread-pool region handshake) stay unannotated and carry
///     a comment naming the protocol.
///
/// The std::mutex / std::lock_guard family carries no capability
/// attributes under libstdc++, so guarding fields with them would make
/// every correct access a false positive. The annotated wrappers below
/// (Mutex, MutexLock, UniqueLock) delegate to the std types — zero-cost —
/// while giving the analysis the acquire/release semantics it needs. On
/// non-Clang compilers every macro expands to nothing and the wrappers
/// are plain forwarding shims.

#include <mutex>

// GCC also defines __has_attribute but reports 0 for the capability
// attributes; the __clang__ guard just keeps the intent explicit.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define ALPERF_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef ALPERF_THREAD_ANNOTATION_
#define ALPERF_THREAD_ANNOTATION_(x)
#endif

/// Declares a type to be a capability ("mutex"-like).
#define ALPERF_CAPABILITY(name) ALPERF_THREAD_ANNOTATION_(capability(name))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define ALPERF_SCOPED_CAPABILITY ALPERF_THREAD_ANNOTATION_(scoped_lockable)

/// Field annotation: reads and writes require holding `x`.
#define ALPERF_GUARDED_BY(x) ALPERF_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer-field annotation: the pointed-to data requires holding `x`.
#define ALPERF_PT_GUARDED_BY(x) ALPERF_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function annotation: the caller must already hold the capability.
#define ALPERF_REQUIRES(...) \
  ALPERF_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function annotation: the function acquires the capability and holds it
/// on return.
#define ALPERF_ACQUIRE(...) \
  ALPERF_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function annotation: the function releases the capability.
#define ALPERF_RELEASE(...) \
  ALPERF_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function annotation: acquires the capability when returning the first
/// argument, e.g. ALPERF_TRY_ACQUIRE(true) or ALPERF_TRY_ACQUIRE(true, mu).
#define ALPERF_TRY_ACQUIRE(...) \
  ALPERF_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Function annotation: the caller must NOT hold the capability (the
/// function takes it itself; calling with it held would deadlock).
#define ALPERF_EXCLUDES(...) \
  ALPERF_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function annotation: returns a reference to the named capability.
#define ALPERF_RETURN_CAPABILITY(x) ALPERF_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining the synchronization protocol that replaces
/// the analysis.
#define ALPERF_NO_THREAD_SAFETY_ANALYSIS \
  ALPERF_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace alperf {

/// std::mutex with capability attributes. Same cost, same semantics; use
/// this for every mutex that guards shared library state so the analysis
/// can check the discipline.
class ALPERF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ALPERF_ACQUIRE() { m_.lock(); }
  void unlock() ALPERF_RELEASE() { m_.unlock(); }
  bool try_lock() ALPERF_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  // alperf-lint: allow(guarded-mutex) — this IS the capability; it guards
  // whatever fields its owner annotates, not fields of this wrapper.
  std::mutex m_;
};

/// std::lock_guard equivalent over Mutex, annotated so the analysis knows
/// the capability is held for the lifetime of the guard.
class ALPERF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ALPERF_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() ALPERF_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// std::unique_lock equivalent over Mutex: relockable, and BasicLockable
/// itself so it can drive std::condition_variable_any. Constructed locked.
class ALPERF_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) ALPERF_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }
  ~UniqueLock() ALPERF_RELEASE() {
    if (held_) mu_.unlock();
  }

  void lock() ALPERF_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }
  void unlock() ALPERF_RELEASE() {
    mu_.unlock();
    held_ = false;
  }

  /// True while the lock is held (not tracked by the analysis; for
  /// asserts only).
  bool ownsLock() const { return held_; }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

 private:
  Mutex& mu_;
  bool held_;
};

}  // namespace alperf
