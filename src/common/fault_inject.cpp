#include "common/fault_inject.hpp"

#include <atomic>
#include <cstdlib>

#include "common/error.hpp"
#include "common/perf_stats.hpp"
#include "common/thread_annotations.hpp"

namespace alperf {

namespace {

std::atomic<long long> g_iteration{-1};
std::atomic<int> g_optimizing{-1};

/// Splits `spec` into fault tokens at ';' and whitespace.
std::vector<std::string> tokenize(const std::string& spec) {
  std::vector<std::string> tokens;
  std::string cur;
  for (const char c : spec) {
    if (c == ';' || c == ' ' || c == '\t' || c == '\n') {
      if (!cur.empty()) tokens.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) tokens.push_back(std::move(cur));
  return tokens;
}

long long parseCondValue(const std::string& token, const std::string& value) {
  requireArg(!value.empty(), "ALPERF_FAULTS: empty condition value in '" +
                                 token + "'");
  long long out = 0;
  for (const char c : value) {
    requireArg(c >= '0' && c <= '9',
               "ALPERF_FAULTS: condition value must be a non-negative "
               "integer in '" +
                   token + "'");
    out = out * 10 + (c - '0');
  }
  return out;
}

/// The injection points compiled into the library. A typo'd site would
/// otherwise arm successfully and silently never fire.
constexpr const char* kKnownSites[] = {
    "gram.nan", "chol.fail", "extend.fail", "lml.nan",
    "lml.inf",  "grad.nan",  "theta.nan",
};

bool knownSite(const std::string& site) {
  for (const char* s : kKnownSites)
    if (site == s) return true;
  return false;
}

FaultSpec parseFault(const std::string& token) {
  FaultSpec fault;
  const std::size_t at = token.find('@');
  fault.site = token.substr(0, at);
  requireArg(!fault.site.empty(),
             "ALPERF_FAULTS: empty fault site in '" + token + "'");
  requireArg(knownSite(fault.site),
             "ALPERF_FAULTS: unknown fault site '" + fault.site + "' in '" +
                 token + "'");
  if (at == std::string::npos) return fault;

  const std::string conds = token.substr(at + 1);
  requireArg(!conds.empty(),
             "ALPERF_FAULTS: '@' with no conditions in '" + token + "'");
  std::size_t pos = 0;
  while (pos <= conds.size()) {
    std::size_t end = conds.find(',', pos);
    if (end == std::string::npos) end = conds.size();
    const std::string cond = conds.substr(pos, end - pos);
    const std::size_t eq = cond.find('=');
    requireArg(eq != std::string::npos && eq > 0,
               "ALPERF_FAULTS: condition must be key=value in '" + token +
                   "'");
    const std::string key = cond.substr(0, eq);
    const long long value = parseCondValue(token, cond.substr(eq + 1));
    if (key == "iter") {
      fault.match.iter = value;
    } else if (key == "n") {
      fault.match.n = value;
    } else if (key == "eval") {
      fault.match.eval = value;
    } else if (key == "start") {
      fault.match.start = value;
    } else if (key == "attempt") {
      fault.match.attempt = value;
    } else if (key == "opt") {
      fault.match.opt = value;
    } else {
      requireArg(false, "ALPERF_FAULTS: unknown condition key '" + key +
                            "' in '" + token + "'");
    }
    pos = end + 1;
  }
  return fault;
}

bool condMatches(long long want, long long have) {
  return want < 0 || want == have;
}

}  // namespace

struct FaultInjector::Impl {
  mutable Mutex mu;
  std::vector<FaultSpec> specs ALPERF_GUARDED_BY(mu);
  /// Redundant with !specs.empty(), maintained so the unarmed fire() fast
  /// path is one relaxed load with no lock. armed() then lock is a benign
  /// check-then-act: a stale false only delays an arm() racing with
  /// fire(), and arm()/disarm() are test-setup operations, never
  /// concurrent with the measurement they configure.
  std::atomic<bool> armed{false};
};

// alperf-lint: allow(naked-new) — intentionally leaked process-global
// singleton; destruction order vs other static objects is undefined.
FaultInjector::FaultInjector() : impl_(new Impl) {
  // ALPERF_FAULTS is read once, at first use — the same contract as
  // ALPERF_THREADS / ALPERF_LA_KERNELS.
  if (const char* env = std::getenv("ALPERF_FAULTS")) arm(env);
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

std::vector<FaultSpec> FaultInjector::parse(const std::string& spec) {
  std::vector<FaultSpec> faults;
  for (const auto& token : tokenize(spec)) faults.push_back(parseFault(token));
  return faults;
}

void FaultInjector::arm(const std::string& spec) {
  auto faults = parse(spec);
  MutexLock lock(impl_->mu);
  impl_->specs = std::move(faults);
  impl_->armed.store(!impl_->specs.empty(), std::memory_order_relaxed);
}

void FaultInjector::disarm() {
  MutexLock lock(impl_->mu);
  impl_->specs.clear();
  impl_->armed.store(false, std::memory_order_relaxed);
}

bool FaultInjector::armed() const {
  return impl_->armed.load(std::memory_order_relaxed);
}

std::vector<FaultSpec> FaultInjector::armedSpecs() const {
  MutexLock lock(impl_->mu);
  return impl_->specs;
}

bool FaultInjector::fire(std::string_view site, const FaultAttrs& attrs) {
  if (!armed()) return false;

  FaultAttrs have = attrs;
  if (have.iter < 0) have.iter = FaultContext::iteration();
  if (have.opt < 0) have.opt = FaultContext::optimizing();

  bool hit = false;
  {
    MutexLock lock(impl_->mu);
    for (const auto& f : impl_->specs) {
      if (f.site != site) continue;
      if (condMatches(f.match.iter, have.iter) &&
          condMatches(f.match.n, have.n) &&
          condMatches(f.match.eval, have.eval) &&
          condMatches(f.match.start, have.start) &&
          condMatches(f.match.attempt, have.attempt) &&
          condMatches(f.match.opt, have.opt)) {
        hit = true;
        break;
      }
    }
  }
  if (hit) {
    auto& reg = PerfRegistry::instance();
    reg.increment("fault.injected");
    reg.increment("fault.injected." + std::string(site));
  }
  return hit;
}

void FaultContext::setIteration(long long iter) {
  g_iteration.store(iter, std::memory_order_relaxed);
}

long long FaultContext::iteration() {
  return g_iteration.load(std::memory_order_relaxed);
}

void FaultContext::setOptimizing(int opt) {
  g_optimizing.store(opt, std::memory_order_relaxed);
}

int FaultContext::optimizing() {
  return g_optimizing.load(std::memory_order_relaxed);
}

OptimizingScope::OptimizingScope(bool optimizing)
    : previous_(FaultContext::optimizing()) {
  FaultContext::setOptimizing(optimizing ? 1 : 0);
}

OptimizingScope::~OptimizingScope() { FaultContext::setOptimizing(previous_); }

}  // namespace alperf
