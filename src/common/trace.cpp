#include "common/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/health.hpp"
#include "common/perf_stats.hpp"
#include "common/thread_annotations.hpp"

namespace alperf::trace {

namespace detail {
std::atomic<bool> gEnabled{false};
}  // namespace detail

namespace {

std::uint64_t steadyNowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// JSON string escaping: quotes, backslashes and control characters. Keeps
/// everything else verbatim (names and args are ASCII in practice).
std::string escapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Microseconds with millinanosecond precision — the trace-event "ts"
/// unit. %.3f keeps the JSON compact and locale-independent.
std::string microsString(std::uint64_t nanos) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(nanos) / 1000.0);
  return buf;
}

/// Per-thread event sink. `tid`, `nextSeq` and `buffer` are owned by the
/// sink's thread between flushes; the central registry only touches them
/// under the tracer mutex at quiescent points (arm, disarm, snapshot,
/// thread exit) or after the owning thread handed them over by flushing.
struct ThreadSink {
  std::uint32_t tid = 0;
  bool registered = false;
  std::uint64_t nextSeq = 0;
  std::string name;  ///< lane label, re-emitted as metadata on every arm
  std::vector<TraceEvent> buffer;
};

/// Queues the thread_name metadata event into `sink`'s buffer. Callers
/// must either own the sink's thread or hold the tracer mutex at a
/// quiescent point (arm()).
void queueThreadName(ThreadSink& sink, std::string_view name);

/// Lane label requested before the sink registered (ThreadPool workers
/// name themselves at spawn, usually long before any capture is armed).
thread_local std::string tlsPendingName;  // NOLINT(runtime/string)

}  // namespace

struct Tracer::Impl {
  Mutex mu;
  /// Flushed events, in flush order; snapshot() sorts by (tid, id).
  std::vector<TraceEvent> events ALPERF_GUARDED_BY(mu);
  /// Registered live sinks (not owned; each thread's handle unregisters
  /// itself on thread exit).
  std::vector<ThreadSink*> sinks ALPERF_GUARDED_BY(mu);
  std::uint32_t nextTid ALPERF_GUARDED_BY(mu) = 0;
  std::uint64_t dropped ALPERF_GUARDED_BY(mu) = 0;
  /// Timestamp epoch (steady-clock nanos at arm); atomic because the hot
  /// record path reads it without the lock.
  std::atomic<std::uint64_t> epochNanos{0};
  /// Export path from the ALPERF_TRACE environment variable ("" = unset).
  /// Written once in the constructor, read by the atexit hook.
  std::string envPath;

  /// Moves one sink's buffer into `events`, honoring the kMaxEvents cap
  /// and bumping the trace.* accounting counters.
  void flushSinkLocked(ThreadSink& sink) ALPERF_REQUIRES(mu) {
    if (sink.buffer.empty()) return;
    std::size_t take = sink.buffer.size();
    if (events.size() + take > Tracer::kMaxEvents) {
      take = Tracer::kMaxEvents - std::min(events.size(),
                                           Tracer::kMaxEvents);
      const std::uint64_t drop =
          static_cast<std::uint64_t>(sink.buffer.size() - take);
      dropped += drop;
      PerfRegistry::instance().increment("trace.dropped", drop);
    }
    events.insert(events.end(),
                  std::make_move_iterator(sink.buffer.begin()),
                  std::make_move_iterator(sink.buffer.begin() +
                                          static_cast<std::ptrdiff_t>(take)));
    PerfRegistry::instance().increment("trace.events",
                                       static_cast<std::uint64_t>(take));
    sink.buffer.clear();
  }

  void flushAllLocked() ALPERF_REQUIRES(mu) {
    for (ThreadSink* sink : sinks) flushSinkLocked(*sink);
  }
};

namespace {

Tracer::Impl* gImpl = nullptr;  ///< set once by Tracer::Tracer

/// RAII handle owning this thread's sink: flushes and unregisters on
/// thread exit so no buffered event is lost and no dangling pointer
/// stays in the registry.
struct SinkHandle {
  ThreadSink sink;

  ~SinkHandle() {
    if (!sink.registered || gImpl == nullptr) return;
    MutexLock lk(gImpl->mu);
    gImpl->flushSinkLocked(sink);
    auto& sinks = gImpl->sinks;
    sinks.erase(std::remove(sinks.begin(), sinks.end(), &sink),
                sinks.end());
  }
};

thread_local SinkHandle tlsSink;

void queueThreadName(ThreadSink& sink, std::string_view name) {
  TraceEvent meta;
  meta.kind = EventKind::Meta;
  meta.name = "thread_name";
  meta.args = "\"name\":\"" + escapeJson(name) + "\"";
  meta.tid = sink.tid;
  meta.id = (static_cast<std::uint64_t>(sink.tid) << 32) |
            (sink.nextSeq++ & 0xffffffffULL);
  sink.buffer.push_back(std::move(meta));
}

/// Find-or-register the calling thread's sink. Registration assigns the
/// lane id and, when a lane label is pending, queues the thread_name
/// metadata event so exporters can draw named lanes.
ThreadSink& localSink(Tracer::Impl& impl) {
  ThreadSink& sink = tlsSink.sink;
  if (!sink.registered) {
    MutexLock lk(impl.mu);
    sink.tid = impl.nextTid++;
    impl.sinks.push_back(&sink);
    sink.registered = true;
    sink.name = tlsPendingName;
    if (!sink.name.empty()) queueThreadName(sink, sink.name);
  }
  return sink;
}

void exportEnvTraceAtExit() {
  Tracer& tracer = Tracer::instance();
  tracer.disarm();
  if (gImpl != nullptr && !gImpl->envPath.empty())
    tracer.writeChromeTrace(gImpl->envPath);
}

/// Forces the singleton (and therefore the ALPERF_TRACE environment
/// lookup) to run during static initialization — without this, a program
/// that never touches the tracer API would silently ignore ALPERF_TRACE
/// because the disabled fast path never calls instance().
[[maybe_unused]] const bool gEnvProbe = [] {
  Tracer::instance();
  return true;
}();

}  // namespace

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

// alperf-lint: allow(naked-new) — intentionally leaked process-global
// singleton: worker threads flush into it from thread_local destructors
// that may run after static destruction would have torn it down.
Tracer::Tracer() : impl_(new Impl) {
  gImpl = impl_;
  const char* env = std::getenv("ALPERF_TRACE");
  if (env != nullptr && *env != '\0') {
    impl_->envPath = env;
    arm();
    std::atexit(&exportEnvTraceAtExit);
  }
}

void Tracer::arm() {
  if (tlsPendingName.empty()) tlsPendingName = "main";
  if (tlsSink.sink.registered && tlsSink.sink.name.empty())
    tlsSink.sink.name = tlsPendingName;
  {
    MutexLock lk(impl_->mu);
    impl_->events.clear();
    impl_->dropped = 0;
    for (ThreadSink* sink : impl_->sinks) {
      sink->buffer.clear();
      sink->nextSeq = 0;
      // Lane labels survive re-arms: metadata is per-capture in the
      // trace-event format, so re-queue it for every known lane.
      if (!sink->name.empty()) queueThreadName(*sink, sink->name);
    }
  }
  impl_->epochNanos.store(steadyNowNanos(), std::memory_order_relaxed);
  PerfRegistry::instance().increment("trace.arm");
  detail::gEnabled.store(true, std::memory_order_release);
}

void Tracer::disarm() {
  detail::gEnabled.store(false, std::memory_order_release);
  MutexLock lk(impl_->mu);
  impl_->flushAllLocked();
}

void Tracer::clear() {
  MutexLock lk(impl_->mu);
  impl_->events.clear();
  impl_->dropped = 0;
  for (ThreadSink* sink : impl_->sinks) {
    sink->buffer.clear();
    sink->nextSeq = 0;
  }
}

std::uint64_t Tracer::nowNanos() const {
  const std::uint64_t epoch =
      impl_->epochNanos.load(std::memory_order_relaxed);
  const std::uint64_t now = steadyNowNanos();
  return now >= epoch ? now - epoch : 0;
}

void Tracer::nameCurrentThread(std::string name) {
  tlsPendingName = std::move(name);
  ThreadSink& sink = tlsSink.sink;
  if (sink.registered) {
    sink.name = tlsPendingName;
    if (detail::enabledFast()) queueThreadName(sink, sink.name);
  }
}

namespace {

/// Shared push path: stamps lane id and deterministic sequence id, then
/// buffers; a full buffer flushes under the central lock.
void pushEvent(Tracer::Impl& impl, TraceEvent ev) {
  ThreadSink& sink = localSink(impl);
  ev.tid = sink.tid;
  ev.id = (static_cast<std::uint64_t>(sink.tid) << 32) |
          (sink.nextSeq++ & 0xffffffffULL);
  sink.buffer.push_back(std::move(ev));
  if (sink.buffer.size() >= Tracer::kFlushBatch) {
    MutexLock lk(impl.mu);
    impl.flushSinkLocked(sink);
  }
}

}  // namespace

void Tracer::recordSpan(std::string name, std::uint64_t tsNanos,
                        std::uint64_t durNanos, std::string args) {
  if (!detail::enabledFast()) return;
  TraceEvent ev;
  ev.kind = EventKind::Span;
  ev.name = std::move(name);
  ev.args = std::move(args);
  ev.tsNanos = tsNanos;
  ev.durNanos = durNanos;
  pushEvent(*impl_, std::move(ev));
}

void Tracer::recordInstant(std::string name, std::string args) {
  if (!detail::enabledFast()) return;
  TraceEvent ev;
  ev.kind = EventKind::Instant;
  ev.name = std::move(name);
  ev.args = std::move(args);
  ev.tsNanos = nowNanos();
  pushEvent(*impl_, std::move(ev));
}

void Tracer::recordCounter(std::string name, double value) {
  if (!detail::enabledFast()) return;
  TraceEvent ev;
  ev.kind = EventKind::Counter;
  ev.name = std::move(name);
  ev.tsNanos = nowNanos();
  ev.value = value;
  pushEvent(*impl_, std::move(ev));
}

std::vector<TraceEvent> Tracer::snapshot() {
  MutexLock lk(impl_->mu);
  impl_->flushAllLocked();
  std::vector<TraceEvent> out = impl_->events;
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.tid != b.tid ? a.tid < b.tid : a.id < b.id;
            });
  return out;
}

std::string Tracer::toChromeJson() {
  const auto events = snapshot();
  std::string out = "{\"traceEvents\":[\n";
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"alperf\"}}";
  char buf[64];
  for (const TraceEvent& ev : events) {
    out += ",\n{";
    out += "\"name\":\"" + escapeJson(ev.name) + "\",";
    std::snprintf(buf, sizeof(buf), "\"pid\":1,\"tid\":%u,",
                  static_cast<unsigned>(ev.tid));
    out += buf;
    switch (ev.kind) {
      case EventKind::Span:
        out += "\"cat\":\"alperf\",\"ph\":\"X\",\"ts\":" +
               microsString(ev.tsNanos) +
               ",\"dur\":" + microsString(ev.durNanos);
        if (!ev.args.empty()) out += ",\"args\":{" + ev.args + "}";
        break;
      case EventKind::Instant:
        out += "\"cat\":\"alperf\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" +
               microsString(ev.tsNanos);
        if (!ev.args.empty()) out += ",\"args\":{" + ev.args + "}";
        break;
      case EventKind::Counter:
        std::snprintf(buf, sizeof(buf), "%.17g",
                      std::isfinite(ev.value) ? ev.value : 0.0);
        out += "\"cat\":\"alperf\",\"ph\":\"C\",\"ts\":" +
               microsString(ev.tsNanos) + ",\"args\":{\"value\":";
        out += buf;
        out += "}";
        break;
      case EventKind::Meta:
        out += "\"ph\":\"M\"";
        if (!ev.args.empty()) out += ",\"args\":{" + ev.args + "}";
        break;
    }
    out += "}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool Tracer::writeChromeTrace(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << toChromeJson();
  return static_cast<bool>(out);
}

// ------------------------------------------------------------------ Span

void Span::begin(const char* name) {
  name_ = name;
  startNanos_ = Tracer::instance().nowNanos();
  active_ = true;
}

void Span::end() {
  active_ = false;
  Tracer& tracer = Tracer::instance();
  const std::uint64_t now = tracer.nowNanos();
  tracer.recordSpan(name_, startNanos_,
                    now >= startNanos_ ? now - startNanos_ : 0,
                    std::move(args_));
}

void Span::noteInt(const char* key, long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  if (!args_.empty()) args_ += ',';
  args_ += '"';
  args_ += key;
  args_ += "\":";
  args_ += buf;
}

void Span::noteDouble(const char* key, double v) {
  char buf[40];
  if (std::isfinite(v)) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  } else {
    std::snprintf(buf, sizeof(buf), "\"%s\"", v != v ? "nan" : "inf");
  }
  if (!args_.empty()) args_ += ',';
  args_ += '"';
  args_ += key;
  args_ += "\":";
  args_ += buf;
}

void Span::noteString(const char* key, std::string_view v) {
  if (!args_.empty()) args_ += ',';
  args_ += '"';
  args_ += key;
  args_ += "\":\"";
  args_ += escapeJson(v);
  args_ += '"';
}

void nameCurrentThread(std::string name) {
  Tracer::instance().nameCurrentThread(std::move(name));
}

// ------------------------------------------------------- metrics snapshot

std::string metricsSnapshotJsonl() {
  Tracer& tracer = Tracer::instance();
  const auto events = tracer.snapshot();
  char buf[64];
  std::string out = "{\"type\":\"meta\",\"armed\":";
  out += tracer.enabled() ? "true" : "false";
  std::snprintf(buf, sizeof(buf), ",\"traceEvents\":%zu}", events.size());
  out += buf;
  out += '\n';
  for (const PerfEntry& e : PerfRegistry::instance().snapshot()) {
    out += "{\"type\":\"perf\",\"name\":\"" + escapeJson(e.name) + "\",";
    std::snprintf(buf, sizeof(buf), "\"count\":%llu,\"millis\":%.3f}",
                  static_cast<unsigned long long>(e.count),
                  e.totalMillis());
    out += buf;
    out += '\n';
  }
  for (const HealthIncident& inc : HealthMonitor::instance().recent()) {
    out += "{\"type\":\"health\",";
    std::snprintf(buf, sizeof(buf), "\"seq\":%llu,",
                  static_cast<unsigned long long>(inc.seq));
    out += buf;
    out += "\"kind\":\"" + escapeJson(inc.kind) + "\",\"detail\":\"" +
           escapeJson(inc.detail) + "\",";
    std::snprintf(buf, sizeof(buf), "\"iteration\":%lld}", inc.iteration);
    out += buf;
    out += '\n';
  }
  return out;
}

bool writeMetricsSnapshot(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << metricsSnapshotJsonl();
  return static_cast<bool>(out);
}

// --------------------------------------------------- CampaignTraceScope

CampaignTraceScope::CampaignTraceScope(std::string path)
    : path_(std::move(path)) {
  if (path_.empty()) return;
  Tracer& tracer = Tracer::instance();
  if (tracer.enabled()) return;  // never clobber an ambient capture
  tracer.arm();
  armedHere_ = true;
}

CampaignTraceScope::~CampaignTraceScope() {
  if (!armedHere_) return;
  Tracer& tracer = Tracer::instance();
  tracer.disarm();
  tracer.writeChromeTrace(path_);
}

}  // namespace alperf::trace
