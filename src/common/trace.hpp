#pragma once

/// \file trace.hpp
/// Structured tracing: spans, instants and counters with a Chrome
/// trace-event exporter.
///
/// PerfRegistry (perf_stats.hpp) answers "how much time went where, in
/// total"; HealthMonitor (health.hpp) answers "what degraded". Neither
/// answers the *temporal* question the paper's cost argument turns on —
/// within one campaign iteration, how long was the refit vs the pool
/// scoring vs the oracle, and what ran concurrently on which thread. This
/// layer records that timeline and exports it in the Chrome trace-event
/// JSON format, loadable in `chrome://tracing` or https://ui.perfetto.dev
/// (see docs/OBSERVABILITY.md for a reading guide).
///
/// Design contract — the same discipline as FaultInjector:
///
///   * When tracing is disabled (the default), every instrumentation site
///     costs ONE relaxed atomic load: no locks, no allocation, no clock
///     read, no PerfRegistry counters. The perf-smoke CI job asserts that
///     a disabled run reports zero `trace.*` counters.
///   * Recording never touches RNG streams, floating-point state or any
///     value a computation depends on: AL results are bit-identical with
///     tracing armed or disarmed, at any thread count.
///   * Events carry deterministic ids — (thread lane, per-lane sequence
///     number) — so two armed runs of the same deterministic workload at
///     one thread produce identical traces modulo timestamps (tested by
///     tests/test_trace.cpp).
///   * Each thread appends events to its own buffered sink without
///     synchronization; buffers are flushed into the central store under
///     one mutex — when a buffer fills, at thread exit, and at
///     disarm/export. Exports must happen at quiescent points (no
///     parallel region in flight), which every shipped call site honors.
///
/// Usage:
///   trace::Tracer::instance().arm();            // or ALPERF_TRACE=out.json
///   { TRACE_SPAN("gp.fit"); ... }               // anonymous RAII span
///   { trace::Span s("exec.attempt");            // annotated span
///     s.note("row", 17); ... s.note("outcome", "ok"); }
///   trace::counter("al.pool", remaining);       // counter track
///   trace::Tracer::instance().writeChromeTrace("out.json");
///
/// The JSON-lines metrics exporter (metricsSnapshotJsonl) serializes the
/// PerfRegistry and HealthMonitor state alongside trace totals, so one
/// artifact carries counters, incidents and the timeline pointer.

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace alperf::trace {

namespace detail {
/// The armed flag, exposed so the disabled fast path inlines to a single
/// relaxed load. Never write it directly — arm()/disarm() pair the store
/// with the buffer lifecycle.
extern std::atomic<bool> gEnabled;
inline bool enabledFast() {
  return gEnabled.load(std::memory_order_relaxed);
}
}  // namespace detail

/// Event kinds, mapped to Chrome trace-event phases on export.
enum class EventKind {
  Span,     ///< complete event, ph "X" (ts + dur)
  Instant,  ///< ph "i"
  Counter,  ///< ph "C"
  Meta,     ///< ph "M" (thread_name lanes)
};

/// One recorded event. `id` is deterministic: the owning lane's tid in
/// the high 32 bits, the per-lane sequence number in the low 32.
struct TraceEvent {
  std::uint64_t id = 0;
  EventKind kind = EventKind::Span;
  std::string name;
  /// Pre-serialized JSON object *body* (no braces), e.g. `"iter":3`.
  /// Empty = no args.
  std::string args;
  std::uint32_t tid = 0;
  std::uint64_t tsNanos = 0;   ///< since the arm() epoch
  std::uint64_t durNanos = 0;  ///< spans only
  double value = 0.0;          ///< counters only
};

/// Process-global tracer singleton. Thread-safe; see the file comment for
/// the buffering and quiescence contract.
class Tracer {
 public:
  /// Events a thread buffers locally before flushing under the lock.
  static constexpr std::size_t kFlushBatch = 1024;
  /// Hard cap on retained events; beyond it new flushes are dropped and
  /// counted under `trace.dropped` (no silent truncation).
  static constexpr std::size_t kMaxEvents = 1u << 22;

  static Tracer& instance();

  /// True while armed (one relaxed atomic load).
  bool enabled() const { return detail::enabledFast(); }

  /// Clears all buffers, restarts the timestamp epoch and lane numbering,
  /// names the calling thread "main" if it is unnamed, and starts
  /// capture. Call only at a quiescent point. Bumps `trace.arm`.
  void arm();

  /// Stops capture and flushes every registered sink; recorded events
  /// stay available for snapshot()/export until the next arm().
  void disarm();

  /// Drops all recorded events and lane assignments (does not change the
  /// armed state's epoch — prefer arm() to restart a capture).
  void clear();

  /// Nanoseconds since the current epoch (0 when never armed).
  std::uint64_t nowNanos() const;

  /// Labels the calling thread's lane in exported traces (e.g.
  /// "pool.worker.3"). Cheap and safe to call when disabled: the name is
  /// kept thread-locally and attached if the thread ever records.
  void nameCurrentThread(std::string name);

  /// Record entry points — no-ops when disabled. Instrumentation sites
  /// should prefer Span / TRACE_SPAN / the free helpers below.
  void recordSpan(std::string name, std::uint64_t tsNanos,
                  std::uint64_t durNanos, std::string args);
  void recordInstant(std::string name, std::string args);
  void recordCounter(std::string name, double value);

  /// Flushes every sink and returns all retained events sorted by
  /// (tid, id) — deterministic for a deterministic workload at one
  /// thread. Quiescent points only.
  std::vector<TraceEvent> snapshot();

  /// The retained events as a Chrome trace-event JSON document
  /// ({"traceEvents":[...]}), loadable by chrome://tracing and Perfetto.
  std::string toChromeJson();

  /// Writes toChromeJson() to `path`. Returns false on I/O failure.
  bool writeChromeTrace(const std::string& path);

  /// Opaque implementation type (defined in trace.cpp; public only so
  /// the file-local helper functions there can name it).
  struct Impl;

 private:
  Tracer();

  Impl* impl_;  // never destroyed (process-global singleton)

  friend class Span;
};

/// RAII span. Construction when disabled is a single relaxed atomic load;
/// when armed it records one clock read at entry and emits a complete
/// event at scope exit. note() attaches JSON args (deterministic values
/// only — annotate indices and outcomes, not timings, if you want traces
/// comparable across runs).
class Span {
 public:
  explicit Span(const char* name) {
    if (detail::enabledFast()) begin(name);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() {
    if (active_) end();
  }

  Span& note(const char* key, long long v) {
    if (active_) noteInt(key, v);
    return *this;
  }
  Span& note(const char* key, unsigned long long v) {
    if (active_) noteInt(key, static_cast<long long>(v));
    return *this;
  }
  Span& note(const char* key, std::size_t v) {
    if (active_) noteInt(key, static_cast<long long>(v));
    return *this;
  }
  Span& note(const char* key, int v) {
    if (active_) noteInt(key, v);
    return *this;
  }
  Span& note(const char* key, double v) {
    if (active_) noteDouble(key, v);
    return *this;
  }
  Span& note(const char* key, std::string_view v) {
    if (active_) noteString(key, v);
    return *this;
  }
  /// Without this overload a string literal would prefer the bool one
  /// (pointer-to-bool is a standard conversion; string_view is not).
  Span& note(const char* key, const char* v) {
    if (active_) noteString(key, v);
    return *this;
  }
  Span& note(const char* key, bool v) {
    if (active_) noteString(key, v ? "true" : "false");
    return *this;
  }

 private:
  void begin(const char* name);
  void end();
  void noteInt(const char* key, long long v);
  void noteDouble(const char* key, double v);
  void noteString(const char* key, std::string_view v);

  const char* name_ = nullptr;
  std::uint64_t startNanos_ = 0;
  std::string args_;
  bool active_ = false;
};

/// Anonymous RAII span for the common no-annotation case:
///   TRACE_SPAN("gp.fit");
#define ALPERF_TRACE_CAT2_(a, b) a##b
#define ALPERF_TRACE_CAT_(a, b) ALPERF_TRACE_CAT2_(a, b)
#define TRACE_SPAN(...)                                          \
  ::alperf::trace::Span ALPERF_TRACE_CAT_(alperfTraceSpan_,      \
                                          __LINE__) {            \
    __VA_ARGS__                                                  \
  }

/// Instant event (ph "i") — a point-in-time marker.
inline void instant(const char* name) {
  if (detail::enabledFast()) Tracer::instance().recordInstant(name, {});
}

/// Counter sample (ph "C") — renders as a value track over time.
inline void counter(const char* name, double value) {
  if (detail::enabledFast()) Tracer::instance().recordCounter(name, value);
}

/// See Tracer::nameCurrentThread. Free-function form for call sites that
/// must stay cheap when tracing never arms (ThreadPool workers).
void nameCurrentThread(std::string name);

/// JSON-lines metrics snapshot: one `{"type":"meta",...}` header line
/// (trace event totals, armed state), one `{"type":"perf",...}` line per
/// PerfRegistry entry and one `{"type":"health",...}` line per retained
/// HealthMonitor incident. Each line is a standalone JSON object — the
/// format streams into jq / pandas without a parser.
std::string metricsSnapshotJsonl();

/// Writes metricsSnapshotJsonl() to `path`. Returns false on I/O failure.
bool writeMetricsSnapshot(const std::string& path);

/// Arms the tracer for one campaign and exports on scope exit: used by
/// ActiveLearner when AlConfig::tracePath is set. If `path` is empty or
/// the tracer is already armed (e.g. by ALPERF_TRACE or an outer scope),
/// the scope is a no-op — it never clobbers an ambient capture.
class CampaignTraceScope {
 public:
  explicit CampaignTraceScope(std::string path);
  ~CampaignTraceScope();

  CampaignTraceScope(const CampaignTraceScope&) = delete;
  CampaignTraceScope& operator=(const CampaignTraceScope&) = delete;

 private:
  std::string path_;
  bool armedHere_ = false;
};

}  // namespace alperf::trace
