#include "common/perf_stats.hpp"

#include <cstdio>

namespace alperf {

PerfRegistry& PerfRegistry::instance() {
  static PerfRegistry registry;
  return registry;
}

PerfEntry& PerfRegistry::entryLocked(const std::string& name) {
  PerfEntry& e = entries_[name];
  if (e.name.empty()) e.name = name;
  return e;
}

void PerfRegistry::addTiming(const std::string& name, std::uint64_t nanos) {
  MutexLock lk(mu_);
  PerfEntry& e = entryLocked(name);
  ++e.count;
  e.totalNanos += nanos;
}

void PerfRegistry::increment(const std::string& name, std::uint64_t by) {
  MutexLock lk(mu_);
  entryLocked(name).count += by;
}

std::uint64_t PerfRegistry::count(const std::string& name) const {
  MutexLock lk(mu_);
  const auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.count;
}

std::vector<PerfEntry> PerfRegistry::snapshot() const {
  MutexLock lk(mu_);
  std::vector<PerfEntry> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(entry);
  return out;  // std::map iteration is already name-sorted
}

void PerfRegistry::reset() {
  MutexLock lk(mu_);
  entries_.clear();
}

std::string PerfRegistry::toJson() const {
  const auto entries = snapshot();
  std::string out = "{";
  char buf[64];
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + entries[i].name + "\":{\"count\":";
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(entries[i].count));
    out += buf;
    std::snprintf(buf, sizeof(buf), "%.3f", entries[i].totalMillis());
    out += ",\"millis\":";
    out += buf;
    out += "}";
  }
  out += "}";
  return out;
}

ScopedTimer::~ScopedTimer() {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  PerfRegistry::instance().addTiming(
      name_, static_cast<std::uint64_t>(
                 std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                     .count()));
}

}  // namespace alperf
