#include "common/perf_stats.hpp"

#include <cstdio>

namespace alperf {

PerfRegistry& PerfRegistry::instance() {
  static PerfRegistry registry;
  return registry;
}

void PerfRegistry::addTiming(const std::string& name, std::uint64_t nanos) {
  std::lock_guard<std::mutex> lk(mu_);
  PerfEntry& e = entries_[name];
  if (e.name.empty()) e.name = name;
  ++e.count;
  e.totalNanos += nanos;
}

void PerfRegistry::increment(const std::string& name, std::uint64_t by) {
  std::lock_guard<std::mutex> lk(mu_);
  PerfEntry& e = entries_[name];
  if (e.name.empty()) e.name = name;
  e.count += by;
}

std::uint64_t PerfRegistry::count(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.count;
}

std::vector<PerfEntry> PerfRegistry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<PerfEntry> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(entry);
  return out;  // std::map iteration is already name-sorted
}

void PerfRegistry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  entries_.clear();
}

std::string PerfRegistry::toJson() const {
  const auto entries = snapshot();
  std::string out = "{";
  char buf[64];
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + entries[i].name + "\":{\"count\":";
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(entries[i].count));
    out += buf;
    std::snprintf(buf, sizeof(buf), "%.3f", entries[i].totalMillis());
    out += ",\"millis\":";
    out += buf;
    out += "}";
  }
  out += "}";
  return out;
}

ScopedTimer::~ScopedTimer() {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  PerfRegistry::instance().addTiming(
      name_, static_cast<std::uint64_t>(
                 std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                     .count()));
}

}  // namespace alperf
