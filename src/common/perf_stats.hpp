#pragma once

/// \file perf_stats.hpp
/// Lightweight process-global performance counters and scoped timers.
///
/// The AL hot path (GP fits, pool scoring, incremental posterior updates)
/// records wall time and invocation counts here so campaigns and benches
/// can report where the analysis loop spends its time and which code path
/// (full refactorization vs Cholesky extension, parallel vs sequential)
/// actually ran. Counters are deliberately kept out of learning traces —
/// traces stay bit-identical across thread counts; timings do not.
///
/// Usage:
///   { ScopedTimer t("gp.fit"); ... }                     // time a scope
///   PerfRegistry::instance().increment("al.fit.full");   // count an event
///   std::cout << PerfRegistry::instance().toJson();      // report
///
/// All operations are thread-safe. Overhead is one mutexed map update per
/// event — instrument phases (a fit, a pool scoring pass), not inner loops.
///
/// This registry answers "how much, in total". For the *temporal* view —
/// when each phase ran and on which thread — the same named phases carry
/// spans in the structured tracer (common/trace.hpp), and
/// trace::metricsSnapshotJsonl() serializes this registry plus the
/// HealthMonitor into one JSON-lines artifact. docs/OBSERVABILITY.md maps
/// out all three layers.

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"

namespace alperf {

/// One named statistic: how many times it fired and, for timers, the total
/// wall time spent (0 for pure counters).
struct PerfEntry {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t totalNanos = 0;

  double totalMillis() const { return static_cast<double>(totalNanos) / 1e6; }
};

/// Process-global registry of PerfEntry, keyed by name.
class PerfRegistry {
 public:
  /// The global registry.
  static PerfRegistry& instance();

  /// Adds one timed sample to `name` (count += 1, totalNanos += nanos).
  void addTiming(const std::string& name, std::uint64_t nanos)
      ALPERF_EXCLUDES(mu_);

  /// Bumps the counter `name` by `by` (no time attributed).
  void increment(const std::string& name, std::uint64_t by = 1)
      ALPERF_EXCLUDES(mu_);

  /// Current count for `name` (0 when never recorded).
  std::uint64_t count(const std::string& name) const ALPERF_EXCLUDES(mu_);

  /// All entries, sorted by name.
  std::vector<PerfEntry> snapshot() const ALPERF_EXCLUDES(mu_);

  /// Clears all entries (start of a measured section).
  void reset() ALPERF_EXCLUDES(mu_);

  /// One-line JSON object: {"name":{"count":N,"millis":M},...}, entries
  /// sorted by name — the format bench_micro_gp and bench_parallel_scaling
  /// emit.
  std::string toJson() const ALPERF_EXCLUDES(mu_);

 private:
  /// Find-or-create for `entries_[name]` with the name field populated;
  /// the caller must hold mu_.
  PerfEntry& entryLocked(const std::string& name) ALPERF_REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<std::string, PerfEntry> entries_ ALPERF_GUARDED_BY(mu_);
};

/// RAII wall-clock timer: records elapsed time into the global registry
/// under `name` on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string name)
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer();

 private:
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace alperf
