#pragma once

/// \file error.hpp
/// Shared error-handling utilities for all alperf modules.
///
/// Policy (see DESIGN.md): precondition violations on the public API throw
/// std::invalid_argument; runtime failures (e.g. a matrix that is not SPD
/// even after jitter escalation) throw std::runtime_error; internal
/// invariants use ALPERF_ASSERT, which is active in all build types because
/// the library is used for numerical research where silent corruption is
/// worse than an abort.

#include <sstream>
#include <stdexcept>
#include <string>

namespace alperf {

/// Exception thrown when a numerical routine cannot complete
/// (non-SPD matrix, failed convergence where convergence is mandatory, ...).
class NumericalError : public std::runtime_error {
 public:
  explicit NumericalError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void assertFail(const char* expr, const char* file,
                                    int line, const std::string& msg) {
  std::ostringstream os;
  os << "ALPERF_ASSERT failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace detail

/// Throws std::invalid_argument with the given message when `cond` is false.
/// Use for public-API precondition checks.
inline void requireArg(bool cond, const std::string& msg) {
  if (!cond) throw std::invalid_argument(msg);
}

}  // namespace alperf

/// Internal-invariant check; throws std::logic_error on failure.
#define ALPERF_ASSERT(expr, msg)                                      \
  do {                                                                \
    if (!(expr))                                                      \
      ::alperf::detail::assertFail(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
