#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>

#include "common/error.hpp"
#include "common/thread_annotations.hpp"
#include "common/trace.hpp"

namespace alperf {

namespace {

/// True on threads owned by some ThreadPool: a parallelFor issued from a
/// worker (nested parallelism) must run inline rather than wait on the
/// pool it is part of.
thread_local bool tlsInsidePool = false;

}  // namespace

/// One in-flight parallel region. Workers claim chunks off an atomic
/// cursor; which thread runs which chunk is scheduling-dependent, but the
/// body's output contract (each index writes only its own slots) makes the
/// result independent of that assignment.
///
/// Two synchronization regimes coexist here, and the thread-safety
/// annotations cover exactly one of them:
///
///   * `stop`, `generation`, `pending` and `error` are classic
///     mutex-guarded shared state — annotated ALPERF_GUARDED_BY(mu).
///   * `fn`, `n` and `chunk` are REGION-CONSTANT: written by the caller
///     under mu before the generation bump publishes the region, then read
///     without the lock by runChunks() until every participant has left.
///     The generation handshake (write under mu, workers observe the bump
///     under mu before touching the fields) provides the happens-before
///     edge; the TSan CI job checks it dynamically. They stay unannotated
///     because the analysis cannot express "locked for publication,
///     lock-free for consumption".
struct ThreadPool::Impl {
  Mutex mu;
  std::condition_variable_any wake;  ///< workers: new region or shutdown
  std::condition_variable_any done;  ///< caller: all workers left the region
  bool stop ALPERF_GUARDED_BY(mu) = false;
  /// Bumped per region, guards spurious wakes.
  std::uint64_t generation ALPERF_GUARDED_BY(mu) = 0;
  /// Workers still inside the region.
  int pending ALPERF_GUARDED_BY(mu) = 0;
  /// First captured exception from a region body.
  std::exception_ptr error ALPERF_GUARDED_BY(mu);

  // Region-constant state (see class comment; valid while pending > 0 or
  // the caller is draining).
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t n = 0;
  std::size_t chunk = 1;
  std::atomic<std::size_t> cursor{0};
  /// A region is in flight. A parallelFor arriving while set (the caller
  /// nesting from inside its own region body, or a second external
  /// thread) runs inline instead of clobbering the active region.
  std::atomic<bool> busy{false};

  /// Claims and runs chunks until the range is exhausted. Captures the
  /// first exception and stops contributing; other threads keep draining.
  /// Called with mu NOT held (takes it briefly to record an error).
  void runChunks() ALPERF_EXCLUDES(mu) {
    while (true) {
      const std::size_t begin = cursor.fetch_add(chunk);
      if (begin >= n) return;
      const std::size_t end = std::min(n, begin + chunk);
      try {
        for (std::size_t i = begin; i < end; ++i) (*fn)(i);
      } catch (...) {
        MutexLock lk(mu);
        if (!error) error = std::current_exception();
        return;
      }
    }
  }
};

ThreadPool::ThreadPool(int threads) : impl_(std::make_unique<Impl>()) {
  requireArg(threads >= 1, "ThreadPool: threads must be >= 1");
  workers_.reserve(static_cast<std::size_t>(threads) - 1);
  for (int i = 1; i < threads; ++i)
    workers_.emplace_back([this, i] { workerMain(i); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lk(impl_->mu);
    impl_->stop = true;
  }
  impl_->wake.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::workerMain(int index) {
  tlsInsidePool = true;
  // Lane attribution for exported traces. Cheap when tracing never arms:
  // the label is stored thread-locally and only becomes an event if this
  // worker records while a capture is armed.
  trace::nameCurrentThread("pool.worker." + std::to_string(index));
  Impl& s = *impl_;
  std::uint64_t seen = 0;
  UniqueLock lk(s.mu);
  while (true) {
    // Manual predicate loop (not the lambda-predicate wait overload) so
    // the guarded reads happen in this scope, where the analysis can see
    // the lock is held.
    while (!s.stop && s.generation == seen) s.wake.wait(lk);
    if (s.stop) return;
    seen = s.generation;
    lk.unlock();
    s.runChunks();
    lk.lock();
    if (--s.pending == 0) s.done.notify_all();
  }
}

void ThreadPool::parallelFor(std::size_t n, std::size_t chunk,
                             const std::function<void(std::size_t)>& fn) {
  requireArg(static_cast<bool>(fn), "parallelFor: null body");
  if (n == 0) return;
  if (chunk == 0) chunk = 1;
  // Inline (sequential) execution: no workers, a range that fits in one
  // chunk, or a nested call from inside a pool worker.
  if (workers_.empty() || n <= chunk || tlsInsidePool) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  Impl& s = *impl_;
  bool expected = false;
  if (!s.busy.compare_exchange_strong(expected, true)) {
    // The pool is already serving a region (nested call from the region's
    // own caller, or a concurrent external caller): run inline.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    MutexLock lk(s.mu);
    s.fn = &fn;
    s.n = n;
    s.chunk = chunk;
    s.cursor.store(0, std::memory_order_relaxed);
    s.error = nullptr;
    s.pending = static_cast<int>(workers_.size());
    ++s.generation;
  }
  s.wake.notify_all();
  s.runChunks();  // the calling thread participates
  std::exception_ptr err;
  {
    UniqueLock lk(s.mu);
    while (s.pending != 0) s.done.wait(lk);
    s.fn = nullptr;
    err = s.error;
    s.error = nullptr;
  }
  s.busy.store(false);
  if (err) std::rethrow_exception(err);
}

// ---------------------------------------------------------------- global

namespace {

/// Process-global parallelism state. The mutex, the resolved thread count
/// and the pool live in one annotated struct so the analysis checks every
/// access path through the Parallelism API.
struct GlobalParallelism {
  Mutex mu;
  int threads ALPERF_GUARDED_BY(mu) = 0;  ///< 0 = not yet resolved
  std::unique_ptr<ThreadPool> pool ALPERF_GUARDED_BY(mu);
};

GlobalParallelism& globalState() {
  static GlobalParallelism state;
  return state;
}

int autoThreads() {
  const int env = Parallelism::parseThreads(std::getenv("ALPERF_THREADS"));
  if (env > 0) return env;
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

}  // namespace

int Parallelism::parseThreads(const char* value) {
  if (value == nullptr || *value == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || v <= 0 || v > 1 << 20) return 0;
  return static_cast<int>(v);
}

int Parallelism::threads() {
  GlobalParallelism& g = globalState();
  MutexLock lk(g.mu);
  if (g.threads == 0) g.threads = autoThreads();
  return g.threads;
}

void Parallelism::setThreads(int n) {
  GlobalParallelism& g = globalState();
  MutexLock lk(g.mu);
  g.threads = n > 0 ? n : autoThreads();
  g.pool.reset();  // recreated lazily at the new size
}

ThreadPool& Parallelism::pool() {
  GlobalParallelism& g = globalState();
  MutexLock lk(g.mu);
  if (g.threads == 0) g.threads = autoThreads();
  if (!g.pool || g.pool->size() != g.threads)
    g.pool = std::make_unique<ThreadPool>(g.threads);
  // The returned reference outlives the lock; it stays valid because
  // setThreads() (the only path that destroys the pool) is documented to
  // run only while no parallelFor is in flight.
  return *g.pool;
}

void parallelFor(std::size_t n, std::size_t chunk,
                 const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (Parallelism::threads() == 1) {
    requireArg(static_cast<bool>(fn), "parallelFor: null body");
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  Parallelism::pool().parallelFor(n, chunk, fn);
}

}  // namespace alperf
