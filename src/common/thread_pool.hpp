#pragma once

/// \file thread_pool.hpp
/// Deterministic data parallelism for the AL hot path.
///
/// A small fixed-size worker pool with one primitive, parallelFor(): invoke
/// a function for every index of a range, in fixed-size chunks, using the
/// calling thread plus the pool workers. The contract the rest of the
/// library builds on:
///
///   * The body must be a pure function of its index with respect to shared
///     state: it may read shared inputs and must write only to slots owned
///     by that index. Under that contract the result is bit-identical for
///     every thread count, including 1.
///   * `Parallelism::setThreads(1)` (or ALPERF_THREADS=1) degrades every
///     parallelFor to a plain sequential loop on the calling thread — the
///     reference execution the determinism tests compare against.
///   * Nested parallelFor calls (a body that itself calls parallelFor, e.g.
///     a GP predict inside a parallel EMCM ensemble) run inline on the
///     worker — no pool-in-pool deadlock, no oversubscription.
///
/// Exceptions thrown by the body are captured and the first one (in
/// completion order) is rethrown on the calling thread after the loop
/// drains.
///
/// The pool's internal lock discipline is checked statically with Clang
/// thread-safety annotations (see common/thread_annotations.hpp and
/// docs/STATIC_ANALYSIS.md); the region-constant publication protocol that
/// the analysis cannot express is documented on ThreadPool::Impl and
/// checked dynamically by the TSan CI job.

#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace alperf {

/// Fixed-size worker pool. `threads` counts the calling thread, so a pool
/// of size N spawns N-1 background workers; size 1 spawns none and runs
/// everything inline. Most code should use the free parallelFor() /
/// Parallelism below instead of instantiating pools directly.
class ThreadPool {
 public:
  /// Spawns `threads - 1` workers. threads must be >= 1.
  explicit ThreadPool(int threads);

  /// Joins all workers (blocks until the current parallelFor, if any,
  /// completes).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency, including the calling thread.
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Invokes fn(i) for every i in [0, n), splitting the range into chunks
  /// of `chunk` consecutive indices claimed dynamically by the caller and
  /// the workers. Runs inline when the pool has no workers, when n fits in
  /// one chunk, or when a region is already in flight — whether the nested
  /// call comes from a pool worker, from the region's own calling thread,
  /// or from a second external thread. One pool serves one parallel region
  /// at a time; everything else degrades to sequential execution.
  void parallelFor(std::size_t n, std::size_t chunk,
                   const std::function<void(std::size_t)>& fn);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::vector<std::thread> workers_;

  /// Worker loop. `index` (1-based; 0 is the external calling thread)
  /// labels the worker's lane in exported traces (common/trace.hpp).
  void workerMain(int index);
};

/// Process-global parallelism configuration and pool.
///
/// The thread count resolves, in order: the last setThreads() call, the
/// ALPERF_THREADS environment variable (read once, at first use), and
/// std::thread::hardware_concurrency(). A value of 1 is the determinism
/// anchor: all parallel paths become bit-identical sequential loops.
struct Parallelism {
  /// Current global thread count (>= 1).
  static int threads();

  /// Overrides the thread count; n <= 0 restores the automatic value
  /// (ALPERF_THREADS or hardware_concurrency). Destroys and lazily
  /// recreates the global pool — call only while no parallelFor is
  /// running.
  static void setThreads(int n);

  /// The global pool, created on first use at the current thread count.
  static ThreadPool& pool();

  /// Parses a thread-count string (the ALPERF_THREADS format): returns the
  /// positive integer value, or 0 when the string is null, empty, not a
  /// number, or not positive. Exposed for testing.
  static int parseThreads(const char* value);
};

/// parallelFor on the global pool; sequential when Parallelism::threads()
/// is 1. See ThreadPool::parallelFor for the determinism contract.
void parallelFor(std::size_t n, std::size_t chunk,
                 const std::function<void(std::size_t)>& fn);

}  // namespace alperf
