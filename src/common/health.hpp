#pragma once

/// \file health.hpp
/// Process-global numerical-health monitor.
///
/// The numerics layers (la, gp, opt, core) recover from many conditions —
/// jitter-escalated factorizations, non-finite likelihoods, diverged
/// refits — that must not abort a campaign but must not be silently
/// absorbed either. Every recovery or containment event is recorded here:
///
///   * a PerfRegistry counter `health.<kind>` is bumped, so campaigns,
///     benches and `alperf_tool learn --health` can report totals
///     alongside the existing perf counters;
///   * the incident (kind, human-readable detail, ambient campaign
///     iteration) is pushed into a fixed-capacity ring buffer of the most
///     recent incidents, so an operator can see *what* degraded, not just
///     how often.
///
/// Counts are order-independent sums and therefore deterministic for any
/// thread count; the ring-buffer *ordering* of incidents recorded
/// concurrently (e.g. per-start LML failures) is not, and nothing may
/// assert on it. Recording takes one mutex — incidents are exceptional,
/// never per-element work.
///
/// Event kinds recorded by the library (counter = "health." + kind):
///   chol.recovered      factorization needed jitter escalation
///   chol.failed         factorization failed at the jitter cap
///   chol.nonfinite      NaN/Inf input contained at the Cholesky boundary
///   chol.extend         incremental Cholesky extension failed
///   lml.nonfinite       model-selection objective evaluated to NaN/Inf
///   grad.nonfinite      analytic LML gradient contained a NaN/Inf
///   theta.nonfinite     optimized hyperparameters were non-finite
///   theta.clamped       optimized hyperparameters clamped into bounds
///   fit.rejected        no optimizer start produced a finite objective
///   fit.retry           degradation ladder rung 2: escalated-jitter retry
///   fit.fallback.theta  rung 3: posterior-only refit at last good theta
///   fit.fallback.prior  rung 4: prior-only posterior
///   model.unhealthy     campaign stopped: model persistently degraded
///   watchdog            campaign stopped: wall-clock budget exhausted
///
/// Incidents also stream into the JSON-lines metrics snapshot
/// (trace::writeMetricsSnapshot, one {"type":"health",...} line each),
/// and the structured tracer (common/trace.hpp) places the degraded
/// iterations on the exported timeline — see docs/OBSERVABILITY.md.

#include <cstdint>
#include <string>
#include <vector>

namespace alperf {

/// One recorded incident. `seq` increases monotonically from 1 across the
/// monitor's lifetime (reset() restarts it), so gaps reveal evictions.
struct HealthIncident {
  std::uint64_t seq = 0;
  std::string kind;    ///< e.g. "chol.recovered"
  std::string detail;  ///< human-readable context
  long long iteration = -1;  ///< ambient campaign iteration (-1 = none)
};

/// Process-global aggregator of numerical-health incidents.
class HealthMonitor {
 public:
  /// Incidents kept in the ring buffer (older ones are evicted).
  static constexpr std::size_t kRingCapacity = 64;

  static HealthMonitor& instance();

  /// Records one incident: bumps `health.<kind>` in the PerfRegistry and
  /// pushes the incident (stamped with the ambient campaign iteration)
  /// into the ring buffer. Thread-safe.
  void record(const std::string& kind, const std::string& detail);

  /// The retained incidents, oldest first.
  std::vector<HealthIncident> recent() const;

  /// Total incidents recorded since construction / the last reset().
  std::uint64_t total() const;

  /// Clears the ring buffer and the sequence counter. Does NOT reset the
  /// health.* PerfRegistry counters — use PerfRegistry::reset() for that.
  void reset();

  /// Multi-line report: health.* counter totals followed by the retained
  /// incidents — the payload of `alperf_tool learn --health`. The header
  /// total and the incident list are snapshotted atomically (one lock
  /// acquisition), so they always agree with each other; the health.*
  /// PerfRegistry counters live behind the registry's own lock and may
  /// run ahead of the snapshot while incidents are being recorded
  /// concurrently.
  std::string report() const;

 private:
  HealthMonitor();

  struct Impl;
  Impl* impl_;  // never destroyed (process-global singleton)
};

}  // namespace alperf
