#pragma once

/// \file gp.hpp
/// Gaussian Process Regression with marginal-likelihood (or LOO-CV)
/// hyperparameter fitting — the paper's Section III, eqs. (3)–(13).
///
/// The model is y = f(X) + N(0, σ_n²). The kernel models the signal
/// covariance; the noise variance σ_n² is a GP-level hyperparameter with
/// configurable box bounds (the knob the paper studies in Fig. 7). All
/// hyperparameters — kernel θ plus log σ_n² — are jointly optimized in log
/// space by multi-start L-BFGS on the selected model-selection objective.
/// The optimizer starts run concurrently on the global thread pool
/// (common/thread_pool.hpp) and batch prediction scores query points in
/// parallel chunks; both paths are bit-identical to their sequential
/// (threads = 1) execution.

#include <cstdint>
#include <memory>
#include <utility>

#include "gp/distance_cache.hpp"
#include "gp/kernel.hpp"
#include "la/cholesky.hpp"
#include "opt/gradient.hpp"
#include "stats/rng.hpp"

namespace alperf::gp {

/// Which model-selection objective fit() maximizes (Rasmussen & Williams
/// ch. 5; the paper uses the marginal likelihood and defers LOO-CV to
/// future work — we implement both).
enum class ModelSelection {
  MarginalLikelihood,
  LeaveOneOutCV,
};

/// Bounds and initial value for the noise variance σ_n².
struct NoiseConfig {
  double initial = 1e-2;
  double lo = 1e-8;  ///< the paper's default bound (Fig. 7a)
  double hi = 1e2;
};

struct GpConfig {
  /// When false, fit() keeps the current hyperparameters and only
  /// computes the posterior (used to inspect fixed-hyperparameter GPRs,
  /// Fig. 3a).
  bool optimize = true;
  /// Extra random optimizer starts inside the bounds — the role of
  /// scikit-learn's n_restarts_optimizer, but unlike scikit-learn (which
  /// runs restarts one after another) the nRestarts + 1 starts here are
  /// minimized concurrently on the global thread pool, with all start
  /// points pre-drawn from the caller's RNG so the selected optimum is
  /// identical to a sequential run.
  int nRestarts = 2;
  ModelSelection selection = ModelSelection::MarginalLikelihood;
  /// Reuse pairwise train distances across every LML/LOO evaluation of a
  /// fit (they depend on the data only, never on theta). Synced once at
  /// the top of fit()/addObservation(), read-only inside the parallel
  /// multi-start search. Off → every gram call recomputes distances (the
  /// seed behaviour, kept for A/B verification; results agree to ~1e-12
  /// because cached evaluation multiplies by 1/l² instead of dividing
  /// each coordinate difference by l).
  bool useDistanceCache = true;
  /// Batch prediction engine: score all query points with one blocked
  /// multi-RHS forward solve (V = L⁻¹·K_cross) plus a tile-wise variance
  /// reduction, instead of one O(n²) triangular solve per query column.
  /// Off → the seed per-column loop, kept for A/B verification (mirrors
  /// useDistanceCache); results agree to ~1e-12 (the multi-RHS trsm and
  /// the unrolled-dot per-column solve associate sums differently). The
  /// pool posterior cache (pool_predict_cache.hpp) requires this path and
  /// falls back to direct prediction when it is off.
  bool batchPredict = true;
  NoiseConfig noise;
  /// Budget for each local optimizer run.
  opt::StopCriteria optStop{.maxIterations = 80,
                            .gradTol = 1e-5,
                            .stepTol = 1e-10,
                            .fTol = 1e-10};
  /// Jitter-escalation cap passed to every K_y factorization (see
  /// la::Cholesky). The degradation ladder raises it temporarily when
  /// retrying a failed fit (AlConfig::recoveryJitterScale).
  double jitterScaleMax = 1e-6;
};

/// Counters of numerical failures swallowed during hyperparameter
/// search. The optimizer legitimately probes hyperparameters where the
/// kernel matrix is not SPD or the objective is non-finite — those
/// proposals are rejected with an infinite objective value rather than
/// aborting the fit — but callers running long campaigns need to *see*
/// degraded fits instead of having them silently absorbed. Counters
/// accumulate across fit() calls on the same instance until reset().
struct FitDiagnostics {
  /// K_y was not SPD even after jitter escalation at a proposed θ.
  int choleskyFailures = 0;
  /// The selection objective (LML / LOO) evaluated to NaN or ±Inf.
  int nonFiniteObjectives = 0;
  /// The analytic LML gradient contained a NaN/Inf at a finite value —
  /// the proposal is rejected as if the value itself were non-finite.
  int nonFiniteGradients = 0;
  /// fit() found no finite optimum at all (or the optimum itself was
  /// non-finite) and kept the previous hyperparameters — the degraded-fit
  /// case the executor watches for.
  int rejectedFits = 0;

  void reset() { *this = FitDiagnostics{}; }
  int total() const {
    return choleskyFailures + nonFiniteObjectives + nonFiniteGradients +
           rejectedFits;
  }
};

/// Posterior predictive distribution at a batch of query points
/// (paper eqs. 4–6): elementwise mean and variance of the latent f.
struct Prediction {
  la::Vector mean;
  la::Vector variance;

  la::Vector stdDev() const;
};

/// Reusable scratch for GaussianProcess::predict. The AL loop predicts
/// over the same-shaped pool/test matrices every iteration; passing one
/// workspace keeps those repeated predicts free of the large n×m
/// allocations (buffers are only re-allocated when the shape changes).
struct PredictWorkspace {
  la::Matrix kCross;  ///< n×m cross covariance, overwritten with V = L⁻¹K
};

namespace detail {
/// Columnwise variance reduction of the batch prediction engine:
/// outVar[j] = max(kss[j] − ‖V·e_j‖² [+ noiseVar], 0) over the n×m solved
/// matrix V, parallel over kLaBlock-wide column tiles with an ascending
/// row sweep per tile. Out-of-line and shared between
/// GaussianProcess::predict and PoolPredictCache so cached and direct
/// predictions run literally the same compiled reduction — the mechanism
/// behind the cache's bit-identity contract.
void batchVarianceReduce(const la::Matrix& v, std::span<const double> kss,
                         double noiseVar, bool includeNoise,
                         la::Vector& outVar);
}  // namespace detail

class PoolPredictCache;

class GaussianProcess {
 public:
  /// Takes ownership of the kernel. The kernel's current hyperparameters
  /// are the optimizer's primary starting point.
  explicit GaussianProcess(KernelPtr kernel, GpConfig config = {});

  GaussianProcess(const GaussianProcess& other);
  GaussianProcess& operator=(const GaussianProcess& other);
  GaussianProcess(GaussianProcess&&) noexcept = default;
  GaussianProcess& operator=(GaussianProcess&&) noexcept = default;

  /// Fits hyperparameters (unless config.optimize is false) and computes
  /// the posterior for the given data. X is n×d, y length n, n >= 1.
  /// `rng` drives the random optimizer restarts (drawn up front, so the
  /// stream consumed is independent of the thread count; with
  /// config.optimize false the rng is never touched).
  void fit(la::Matrix x, la::Vector y, stats::Rng& rng);

  /// Conditions the fitted posterior on one additional observation
  /// WITHOUT re-optimizing hyperparameters, in O(n²) via a Cholesky
  /// extension (a full refit is O(n³)). Matches fit() with
  /// config.optimize = false on the extended data exactly. This is the
  /// natural per-iteration update for the paper's online AL use case.
  void addObservation(std::span<const double> x, double y);

  /// Installs a *prior-only* posterior over the given data — the last
  /// rung of the degradation ladder when every factorization of K_y
  /// fails: predictions fall back to the prior (mean 0, variance
  /// k(x,x)), logMarginalLikelihood() is -inf, and addObservation()
  /// throws NumericalError (there is no factorization to extend — a full
  /// fit() is required to leave this state). Never throws for valid
  /// shapes: this rung must not fail.
  void fitPriorOnly(la::Matrix x, la::Vector y);

  /// True when the model is in the prior-only degraded state.
  bool priorOnly() const { return priorOnly_; }

  bool fitted() const { return chol_ != nullptr || priorOnly_; }

  /// Predictive mean and latent-f variance at each row of xStar
  /// (eqs. 5–6). With includeNoise, σ_n² is added to each variance
  /// (predicting an *observation* rather than the latent function).
  Prediction predict(const la::Matrix& xStar, bool includeNoise = false) const;

  /// predict() with caller-owned scratch buffers; bit-identical to the
  /// overload above (which uses a throwaway workspace internally). Use one
  /// workspace per repeated same-shape prediction site to stay
  /// allocation-free across AL iterations.
  Prediction predict(const la::Matrix& xStar, bool includeNoise,
                     PredictWorkspace& ws) const;

  /// Single-point convenience: {mean, variance}.
  std::pair<double, double> predictOne(std::span<const double> x,
                                       bool includeNoise = false) const;

  /// Posterior value and input-gradient at one point:
  ///   ∂µ/∂x = Σ_i α_i ∂k(x, x_i)/∂x
  ///   ∂σ²/∂x = ∂k(x,x)/∂x − 2·(K_y⁻¹k)ᵀ ∂k/∂x
  /// using the kernels' analytic spatial gradients — "gradient-based
  /// methods, which are available with GPR" (paper Sec. VI). O(n²+n·d)
  /// per query.
  struct PointGradient {
    double mean = 0.0;
    double variance = 0.0;
    la::Vector meanGrad;
    la::Vector varianceGrad;
  };
  PointGradient predictOneWithGradient(std::span<const double> x) const;

  /// Full posterior covariance matrix of the latent f over rows of xStar.
  la::Matrix posteriorCovariance(const la::Matrix& xStar) const;

  /// Draws joint posterior sample paths of f over rows of xStar.
  std::vector<la::Vector> samplePosterior(const la::Matrix& xStar,
                                          int nSamples,
                                          stats::Rng& rng) const;

  /// Log marginal likelihood at the fitted hyperparameters (eq. 12).
  double logMarginalLikelihood() const;

  /// LML evaluated at arbitrary hyperparameters [kernel θ..., log σ_n²]
  /// on the fitted data — used to draw the Fig. 4/5 landscapes.
  double logMarginalLikelihoodAt(std::span<const double> thetaFull) const;

  /// LML gradient at arbitrary hyperparameters (analytic).
  std::vector<double> logMarginalLikelihoodGradientAt(
      std::span<const double> thetaFull) const;

  /// Leave-one-out log pseudo-likelihood (R&W eq. 5.11) at arbitrary
  /// hyperparameters on the fitted data.
  double looLogPseudoLikelihoodAt(std::span<const double> thetaFull) const;

  /// Fitted noise variance σ_n².
  double noiseVariance() const { return noiseVar_; }

  const Kernel& kernel() const { return *kernel_; }
  const GpConfig& config() const { return config_; }
  GpConfig& config() { return config_; }

  /// Current full hyperparameter vector [kernel θ..., log σ_n²].
  std::vector<double> thetaFull() const;

  /// Overwrites the hyperparameters from a thetaFull()-layout vector
  /// (e.g. restoring a checkpoint or rolling back to the last good fit).
  /// Does not recompute any existing posterior; follow with fit().
  void setThetaFull(std::span<const double> thetaFull);

  /// Numerical-failure counters accumulated by fit()/evaluation calls.
  const FitDiagnostics& diagnostics() const { return diagnostics_; }
  void resetDiagnostics() { diagnostics_.reset(); }

  /// Log-space bounds aligned with thetaFull().
  opt::BoxBounds thetaFullBounds() const;

  std::size_t numTrainPoints() const;
  const la::Matrix& trainX() const;
  const la::Vector& trainY() const;

  /// Identity of the current posterior *factorization*. Every full
  /// posterior computation (computePosterior via fit(), and
  /// fitPriorOnly()) installs a fresh process-unique value; Cholesky
  /// extensions via addObservation() keep it — the factor rows they add
  /// never modify existing ones. Consumers caching posterior products
  /// (gp::PoolPredictCache) key on this: an unchanged version plus a grown
  /// training set is exactly the grow-only incremental path, while a new
  /// version means the whole factorization was rebuilt (even at identical
  /// hyperparameters a refactorization is bitwise-different from an
  /// extension chain). 0 = no posterior computed yet.
  std::uint64_t posteriorVersion() const { return posteriorId_; }

 private:
  friend class PoolPredictCache;
  struct LmlResult {
    double value;
    std::vector<double> grad;
  };

  /// LML (and optionally its gradient) at thetaFull on (x_, y_).
  /// Returns -inf value on numerical failure instead of throwing; swallowed
  /// failures are recorded into `diag` (per-start sinks during the parallel
  /// hyperparameter search, diagnostics_ everywhere else). evalIdx/startIdx
  /// identify the evaluation for fault injection: the per-start objective
  /// evaluation index and the optimizer start index, both deterministic at
  /// any thread count because each start's local search is sequential
  /// (-1 = not inside the multi-start search).
  LmlResult evalLml(std::span<const double> thetaFull, bool wantGrad,
                    FitDiagnostics& diag, long long evalIdx = -1,
                    long long startIdx = -1) const;

  double evalLoo(std::span<const double> thetaFull, FitDiagnostics& diag,
                 long long evalIdx = -1, long long startIdx = -1) const;

  /// Gram of `k` over the train inputs, through the distance cache when it
  /// is enabled and in sync (bumps gp.gram.hit / gp.gram.miss).
  la::Matrix trainGram(const Kernel& k) const;

  /// Cached-path counterpart for the LML gradient matrices.
  void trainGramGradients(const Kernel& k, const la::Matrix& km,
                          std::vector<la::Matrix>& grads) const;

  void computePosterior();

  KernelPtr kernel_;
  GpConfig config_;
  double noiseVar_;
  /// Mutable: evalLml/evalLoo are const but must record swallowed
  /// failures.
  mutable FitDiagnostics diagnostics_;

  la::Matrix x_;
  la::Vector y_;
  /// Pairwise train geometry shared by all theta evaluations of one fit.
  /// Mutated only in fit()/addObservation() before any parallel region;
  /// see distance_cache.hpp for the invalidation contract.
  DistanceCache distCache_;
  std::unique_ptr<la::Cholesky> chol_;
  la::Vector alpha_;
  double lml_ = 0.0;
  /// Degraded prior-only state (see fitPriorOnly()); cleared by any
  /// successful fit()/computePosterior().
  bool priorOnly_ = false;
  /// See posteriorVersion().
  std::uint64_t posteriorId_ = 0;
};

}  // namespace alperf::gp
