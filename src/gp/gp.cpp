#include "gp/gp.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <numbers>

#include "common/fault_inject.hpp"
#include "common/health.hpp"
#include "common/perf_stats.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "la/blas.hpp"
#include "opt/gradient.hpp"
#include "opt/multistart.hpp"

namespace alperf::gp {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr double kLog2Pi = 1.8378770664093453;  // log(2π)

/// Fault hook shared by the model-selection objectives: under an armed
/// `lml.nan` / `lml.inf` spec, replaces a finite objective value with the
/// corresponding non-finite one so the containment path downstream is
/// exercised. Identity when unarmed.
double maybePoisonObjective(double value, std::size_t n, long long evalIdx,
                            long long startIdx) {
  auto& faults = FaultInjector::instance();
  if (!faults.armed()) return value;
  FaultAttrs attrs;
  attrs.n = static_cast<long long>(n);
  attrs.eval = evalIdx;
  attrs.start = startIdx;
  if (faults.fire("lml.nan", attrs))
    return std::numeric_limits<double>::quiet_NaN();
  if (faults.fire("lml.inf", attrs))
    return std::numeric_limits<double>::infinity();
  return value;
}

/// Process-unique posterior-factorization ids (see posteriorVersion()).
/// Monotonic and never reused, so two factorizations can never alias even
/// across GP copies; the counter itself carries no information beyond
/// identity, so it never affects results.
std::uint64_t nextPosteriorId() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}
}  // namespace

la::Vector Prediction::stdDev() const {
  la::Vector s(variance.size());
  for (std::size_t i = 0; i < s.size(); ++i) s[i] = std::sqrt(variance[i]);
  return s;
}

GaussianProcess::GaussianProcess(KernelPtr kernel, GpConfig config)
    : kernel_(std::move(kernel)),
      config_(config),
      noiseVar_(config.noise.initial) {
  requireArg(kernel_ != nullptr, "GaussianProcess: null kernel");
  requireArg(config_.noise.lo > 0.0 && config_.noise.lo <= config_.noise.hi,
             "GaussianProcess: invalid noise bounds");
  requireArg(config_.noise.initial > 0.0,
             "GaussianProcess: noise initial must be > 0");
  noiseVar_ = std::clamp(noiseVar_, config_.noise.lo, config_.noise.hi);
}

GaussianProcess::GaussianProcess(const GaussianProcess& other)
    : kernel_(other.kernel_->clone()),
      config_(other.config_),
      noiseVar_(other.noiseVar_),
      diagnostics_(other.diagnostics_),
      x_(other.x_),
      y_(other.y_),
      distCache_(other.distCache_),
      chol_(other.chol_ ? std::make_unique<la::Cholesky>(*other.chol_)
                        : nullptr),
      alpha_(other.alpha_),
      lml_(other.lml_),
      priorOnly_(other.priorOnly_),
      posteriorId_(other.posteriorId_) {}

GaussianProcess& GaussianProcess::operator=(const GaussianProcess& other) {
  if (this == &other) return *this;
  GaussianProcess tmp(other);
  *this = std::move(tmp);
  return *this;
}

std::vector<double> GaussianProcess::thetaFull() const {
  auto t = kernel_->theta();
  t.push_back(std::log(noiseVar_));
  return t;
}

void GaussianProcess::setThetaFull(std::span<const double> thetaFull) {
  const std::size_t p = kernel_->numParams();
  requireArg(thetaFull.size() == p + 1,
             "setThetaFull: wrong hyperparameter count");
  for (const double t : thetaFull)
    requireArg(std::isfinite(t), "setThetaFull: non-finite hyperparameter");
  kernel_->setTheta(thetaFull.subspan(0, p));
  noiseVar_ = std::exp(thetaFull[p]);
}

opt::BoxBounds GaussianProcess::thetaFullBounds() const {
  auto b = kernel_->thetaBounds();
  std::vector<double> lo(b.lo), hi(b.hi);
  lo.push_back(std::log(config_.noise.lo));
  hi.push_back(std::log(config_.noise.hi));
  return opt::BoxBounds(std::move(lo), std::move(hi));
}

std::size_t GaussianProcess::numTrainPoints() const { return y_.size(); }

const la::Matrix& GaussianProcess::trainX() const {
  requireArg(fitted(), "GaussianProcess: not fitted");
  return x_;
}

const la::Vector& GaussianProcess::trainY() const {
  requireArg(fitted(), "GaussianProcess: not fitted");
  return y_;
}

la::Matrix GaussianProcess::trainGram(const Kernel& k) const {
  la::Matrix km;
  if (config_.useDistanceCache && distCache_.matches(x_)) {
    PerfRegistry::instance().increment("gp.gram.hit");
    km = k.gram(x_, distCache_);
  } else {
    PerfRegistry::instance().increment("gp.gram.miss");
    km = k.gram(x_);
  }
  // Fault hook: a `gram.nan` spec poisons one diagonal element, modelling
  // a corrupted kernel evaluation. Diagonal, so the matrix stays
  // symmetric and the NaN is contained at the Cholesky boundary rather
  // than tripping the symmetry precondition.
  auto& faults = FaultInjector::instance();
  if (faults.armed() && km.rows() > 0) {
    FaultAttrs attrs;
    attrs.n = static_cast<long long>(km.rows());
    if (faults.fire("gram.nan", attrs))
      km(0, 0) = std::numeric_limits<double>::quiet_NaN();
  }
  return km;
}

void GaussianProcess::trainGramGradients(
    const Kernel& k, const la::Matrix& km,
    std::vector<la::Matrix>& grads) const {
  if (config_.useDistanceCache && distCache_.matches(x_)) {
    PerfRegistry::instance().increment("gp.gram.hit");
    k.gramGradients(x_, km, distCache_, grads);
    return;
  }
  PerfRegistry::instance().increment("gp.gram.miss");
  k.gramGradients(x_, km, grads);
}

GaussianProcess::LmlResult GaussianProcess::evalLml(
    std::span<const double> thetaFull, bool wantGrad, FitDiagnostics& diag,
    long long evalIdx, long long startIdx) const {
  const std::size_t p = kernel_->numParams();
  requireArg(thetaFull.size() == p + 1, "evalLml: wrong hyperparameter count");
  trace::Span span("gp.lml");
  span.note("n", y_.size()).note("eval", evalIdx).note("grad", wantGrad);
  LmlResult out{kNegInf, {}};

  KernelPtr k = kernel_->clone();
  k->setTheta(thetaFull.subspan(0, p));
  const double noiseVar = std::exp(thetaFull[p]);

  // One gram build per evaluation: the same matrix seeds K_y here and is
  // reused for the gradient matrices below (the seed code rebuilt it).
  const la::Matrix km = trainGram(*k);
  la::Matrix ky = km;
  ky.addToDiagonal(noiseVar);
  std::unique_ptr<la::Cholesky> chol;
  try {
    chol = std::make_unique<la::Cholesky>(std::move(ky), config_.jitterScaleMax);
  } catch (const NumericalError&) {
    ++diag.choleskyFailures;
    return out;  // -inf: optimizer will back off
  }

  const la::Vector alpha = chol->solve(y_);
  const double n = static_cast<double>(y_.size());
  const double value = maybePoisonObjective(
      -0.5 * la::dot(y_, alpha) - 0.5 * chol->logDet() - 0.5 * n * kLog2Pi,
      y_.size(), evalIdx, startIdx);
  if (!std::isfinite(value)) {
    ++diag.nonFiniteObjectives;
    HealthMonitor::instance().record("lml.nonfinite",
                                     "LML evaluated non-finite");
    return out;
  }
  out.value = value;

  if (wantGrad) {
    // ∂LML/∂θ_j = ½ tr((ααᵀ − K_y⁻¹)·∂K_y/∂θ_j).
    const la::Matrix kinv = chol->inverse();
    la::Matrix inner(alpha.size(), alpha.size());
    for (std::size_t i = 0; i < alpha.size(); ++i)
      for (std::size_t j = 0; j < alpha.size(); ++j)
        inner(i, j) = alpha[i] * alpha[j] - kinv(i, j);

    std::vector<la::Matrix> grads;
    grads.reserve(p);
    trainGramGradients(*k, km, grads);
    ALPERF_ASSERT(grads.size() == p, "kernel returned wrong gradient count");
    out.grad.resize(p + 1);
    for (std::size_t j = 0; j < p; ++j) {
      double tr = 0.0;
      const auto a = inner.data();
      const auto g = grads[j].data();
      for (std::size_t m = 0; m < a.size(); ++m) tr += a[m] * g[m];
      out.grad[j] = 0.5 * tr;
    }
    // Noise: ∂K_y/∂log σ_n² = σ_n²·I, so the trace reduces to the diagonal.
    double trNoise = 0.0;
    for (std::size_t i = 0; i < alpha.size(); ++i) trNoise += inner(i, i);
    out.grad[p] = 0.5 * trNoise * noiseVar;

    auto& faults = FaultInjector::instance();
    if (faults.armed()) {
      FaultAttrs attrs;
      attrs.n = static_cast<long long>(y_.size());
      attrs.eval = evalIdx;
      attrs.start = startIdx;
      if (faults.fire("grad.nan", attrs))
        out.grad[0] = std::numeric_limits<double>::quiet_NaN();
    }
    for (const double g : out.grad)
      if (!std::isfinite(g)) {
        // A poisoned gradient would steer L-BFGS into garbage silently;
        // reject the proposal outright instead.
        ++diag.nonFiniteGradients;
        HealthMonitor::instance().record("grad.nonfinite",
                                         "LML gradient contained NaN/Inf");
        return LmlResult{kNegInf, {}};
      }
  }
  return out;
}

double GaussianProcess::evalLoo(std::span<const double> thetaFull,
                                FitDiagnostics& diag, long long evalIdx,
                                long long startIdx) const {
  const std::size_t p = kernel_->numParams();
  requireArg(thetaFull.size() == p + 1, "evalLoo: wrong hyperparameter count");
  trace::Span span("gp.loo");
  span.note("n", y_.size()).note("eval", evalIdx);

  KernelPtr k = kernel_->clone();
  k->setTheta(thetaFull.subspan(0, p));
  const double noiseVar = std::exp(thetaFull[p]);

  la::Matrix ky = trainGram(*k);
  ky.addToDiagonal(noiseVar);
  std::unique_ptr<la::Cholesky> chol;
  try {
    chol = std::make_unique<la::Cholesky>(std::move(ky), config_.jitterScaleMax);
  } catch (const NumericalError&) {
    ++diag.choleskyFailures;
    return kNegInf;
  }
  const la::Vector alpha = chol->solve(y_);
  const la::Matrix kinv = chol->inverse();

  // R&W eqs. 5.10–5.12: per-point leave-one-out predictive distribution
  // from the full factorization.
  double logp = 0.0;
  for (std::size_t i = 0; i < y_.size(); ++i) {
    const double kii = kinv(i, i);
    if (!(kii > 0.0)) {
      ++diag.nonFiniteObjectives;
      return kNegInf;
    }
    const double looVar = 1.0 / kii;
    const double looMu = y_[i] - alpha[i] / kii;
    const double r = y_[i] - looMu;
    logp += -0.5 * std::log(looVar) - r * r / (2.0 * looVar) - 0.5 * kLog2Pi;
  }
  logp = maybePoisonObjective(logp, y_.size(), evalIdx, startIdx);
  if (!std::isfinite(logp)) {
    ++diag.nonFiniteObjectives;
    HealthMonitor::instance().record("lml.nonfinite",
                                     "LOO objective evaluated non-finite");
    return kNegInf;
  }
  return logp;
}

void GaussianProcess::fit(la::Matrix x, la::Vector y, stats::Rng& rng) {
  requireArg(x.rows() == y.size(), "GaussianProcess::fit: X/y size mismatch");
  requireArg(y.size() >= 1, "GaussianProcess::fit: need at least one point");
  ScopedTimer timer("gp.fit");
  trace::Span span("gp.fit");
  span.note("n", y.size()).note("optimize", config_.optimize);
  // Ambient flag for fault predicates: `chol.fail@opt=1` fails the
  // hyperparameter-optimizing fit but spares the optimize=false refits the
  // degradation ladder falls back to.
  OptimizingScope optScope(config_.optimize);
  x_ = std::move(x);
  y_ = std::move(y);
  chol_.reset();
  // Sync the pairwise-distance cache before the parallel multi-start
  // below: inside it the cache is shared read-only across threads. In the
  // AL loop rows only accumulate, so this is usually the O(k·n·d) append
  // path, not a rebuild.
  if (config_.useDistanceCache)
    distCache_.sync(x_);
  else
    distCache_.clear();

  if (config_.optimize) {
    const std::size_t p = kernel_->numParams();
    const bool useLml = config_.selection == ModelSelection::MarginalLikelihood;

    // The starts run concurrently; each gets its own diagnostics sink so
    // the counters don't race. Sums are order-independent, so merging after
    // the fact is identical to sequential counting.
    const std::size_t nStarts = static_cast<std::size_t>(config_.nRestarts) + 1;
    std::vector<FitDiagnostics> startDiags(nStarts);

    const opt::Lbfgs local(config_.optStop);
    const auto bounds = thetaFullBounds();
    const auto runStart = [&, p, useLml](std::size_t start,
                                         std::span<const double> x0) {
      FitDiagnostics& diag = startDiags[start];
      // Per-start objective-evaluation index for fault predicates
      // (`lml.inf@eval=3,start=0`): each start's local search is
      // sequential, so the index is deterministic at any thread count.
      // Shared by the value-only and combined lambdas — both live only
      // for the minimize() call below.
      long long evals = 0;
      const long long startIdx = static_cast<long long>(start);
      // Minimize the negative selection objective over [kernel θ, log σ_n²].
      const auto negValue = [this, useLml, &diag, &evals,
                             startIdx](std::span<const double> t) {
        const long long e = evals++;
        const double v = useLml ? evalLml(t, false, diag, e, startIdx).value
                                : evalLoo(t, diag, e, startIdx);
        return std::isfinite(v) ? -v : std::numeric_limits<double>::infinity();
      };
      // For LML the value and analytic gradient come from one factorization;
      // LOO falls back to finite differences.
      const opt::FunctionObjective obj =
          useLml ? opt::FunctionObjective(
                       p + 1, negValue,
                       opt::FunctionObjective::CombinedFn(
                           [this, &diag, &evals, startIdx](
                               std::span<const double> t,
                               std::span<double> g) {
                             const auto r =
                                 evalLml(t, true, diag, evals++, startIdx);
                             if (r.grad.empty()) {
                               for (auto& v : g) v = 0.0;
                             } else {
                               for (std::size_t i = 0; i < g.size(); ++i)
                                 g[i] = -r.grad[i];
                             }
                             return std::isfinite(r.value)
                                        ? -r.value
                                        : std::numeric_limits<
                                              double>::infinity();
                           }))
                 : opt::FunctionObjective(p + 1, negValue);
      return local.minimize(obj, x0, bounds);
    };

    const auto result = opt::multiStartMinimizeParallel(
        runStart, thetaFull(), bounds, config_.nRestarts, rng);
    for (const auto& d : startDiags) {
      diagnostics_.choleskyFailures += d.choleskyFailures;
      diagnostics_.nonFiniteObjectives += d.nonFiniteObjectives;
      diagnostics_.nonFiniteGradients += d.nonFiniteGradients;
    }

    std::vector<double> best = result.best.x;
    auto& faults = FaultInjector::instance();
    if (!best.empty() && faults.armed()) {
      FaultAttrs attrs;
      attrs.n = static_cast<long long>(y_.size());
      if (faults.fire("theta.nan", attrs))
        best[0] = std::numeric_limits<double>::quiet_NaN();
    }
    bool thetaFinite = true;
    for (const double t : best)
      if (!std::isfinite(t)) thetaFinite = false;

    if (std::isfinite(result.best.fval) && thetaFinite) {
      // Clamp into the box before installing. The L-BFGS runs project every
      // iterate, so fault-free this is a bit-exact no-op; it contains any
      // future optimizer that steps outside, and gives fault specs a
      // deterministic place to observe clamping.
      bool clamped = false;
      for (std::size_t i = 0; i < best.size(); ++i) {
        const double c = std::clamp(best[i], bounds.lo[i], bounds.hi[i]);
        if (c != best[i]) clamped = true;
        best[i] = c;
      }
      if (clamped)
        HealthMonitor::instance().record(
            "theta.clamped", "optimized theta clamped into bounds");
      kernel_->setTheta(std::span<const double>(best).subspan(0, p));
      noiseVar_ = std::exp(best[p]);
    } else {
      // Every optimizer proposal failed, or the winning theta itself was
      // non-finite; the previous hyperparameters are kept. Record the
      // degraded fit so campaign loops can react.
      if (!thetaFinite)
        HealthMonitor::instance().record("theta.nonfinite",
                                         "optimized theta was non-finite");
      HealthMonitor::instance().record("fit.rejected",
                                       "no finite optimum; kept prior theta");
      ++diagnostics_.rejectedFits;
    }
  }
  computePosterior();
}

void GaussianProcess::addObservation(std::span<const double> x, double y) {
  requireArg(fitted(), "GaussianProcess::addObservation: not fitted");
  requireArg(x.size() == x_.cols(),
             "GaussianProcess::addObservation: dimension mismatch");
  if (priorOnly_)
    throw NumericalError(
        "GaussianProcess::addObservation: prior-only posterior has no "
        "factorization to extend; a full fit() is required");
  ScopedTimer timer("gp.addObservation");
  trace::Span span("gp.addObservation");
  span.note("n", x_.rows());
  const std::size_t n = x_.rows();

  la::Vector k(n);
  for (std::size_t i = 0; i < n; ++i) k[i] = kernel_->eval(x_.row(i), x);
  const double kappa = kernel_->eval(x, x) + noiseVar_;
  chol_->extend(k, kappa);

  la::Matrix grownX(n + 1, x_.cols());
  for (std::size_t i = 0; i < n; ++i) {
    const auto src = x_.row(i);
    std::copy(src.begin(), src.end(), grownX.row(i).begin());
  }
  std::copy(x.begin(), x.end(), grownX.row(n).begin());
  x_ = std::move(grownX);
  y_.push_back(y);
  // Keep the cache warm for the next full fit: appending one row is O(n·d).
  if (config_.useDistanceCache) distCache_.sync(x_);

  alpha_ = chol_->solve(y_);
  const double nd = static_cast<double>(y_.size());
  lml_ = -0.5 * la::dot(y_, alpha_) - 0.5 * chol_->logDet() -
         0.5 * nd * kLog2Pi;
}

void GaussianProcess::computePosterior() {
  trace::Span span("gp.posterior");
  span.note("n", y_.size());
  la::Matrix ky = trainGram(*kernel_);
  ky.addToDiagonal(noiseVar_);
  chol_ = std::make_unique<la::Cholesky>(std::move(ky), config_.jitterScaleMax);
  alpha_ = chol_->solve(y_);
  const double n = static_cast<double>(y_.size());
  lml_ = -0.5 * la::dot(y_, alpha_) - 0.5 * chol_->logDet() -
         0.5 * n * kLog2Pi;
  priorOnly_ = false;
  posteriorId_ = nextPosteriorId();
}

void GaussianProcess::fitPriorOnly(la::Matrix x, la::Vector y) {
  requireArg(x.rows() == y.size(),
             "GaussianProcess::fitPriorOnly: X/y size mismatch");
  requireArg(y.size() >= 1,
             "GaussianProcess::fitPriorOnly: need at least one point");
  x_ = std::move(x);
  y_ = std::move(y);
  chol_.reset();
  alpha_.clear();
  priorOnly_ = true;
  lml_ = kNegInf;
  posteriorId_ = nextPosteriorId();
  // Keep the cache coherent with x_ so the recovery fit() that follows
  // still takes the append path.
  if (config_.useDistanceCache)
    distCache_.sync(x_);
  else
    distCache_.clear();
}

Prediction GaussianProcess::predict(const la::Matrix& xStar,
                                    bool includeNoise) const {
  PredictWorkspace ws;
  return predict(xStar, includeNoise, ws);
}

Prediction GaussianProcess::predict(const la::Matrix& xStar,
                                    bool includeNoise,
                                    PredictWorkspace& ws) const {
  requireArg(fitted(), "GaussianProcess::predict: not fitted");
  requireArg(xStar.cols() == x_.cols(),
             "GaussianProcess::predict: dimension mismatch");
  ScopedTimer timer("gp.predict");
  trace::Span span("gp.predict");
  span.note("n", x_.rows()).note("queries", xStar.rows());
  if (priorOnly_) {
    // Degraded prior-only posterior: mean 0, variance k(x,x) (+ noise).
    Prediction prior;
    prior.mean.assign(xStar.rows(), 0.0);
    prior.variance.resize(xStar.rows());
    for (std::size_t j = 0; j < xStar.rows(); ++j) {
      double var = kernel_->eval(xStar.row(j), xStar.row(j));
      if (includeNoise) var += noiseVar_;
      prior.variance[j] = std::max(var, 0.0);
    }
    return prior;
  }
  const std::size_t n = x_.rows();
  const std::size_t m = xStar.rows();
  if (!config_.batchPredict) {
    // Seed path, kept for A/B verification: one O(n²) triangular solve per
    // query column. Each query's variance is independent, so chunks run on
    // the pool; every thread writes only its own slots.
    const la::Matrix kCross = kernel_->cross(x_, xStar);  // n × m
    Prediction pred;
    pred.mean = la::matvecTransposed(kCross, alpha_);
    pred.variance.resize(m);
    parallelFor(m, 8, [&](std::size_t j) {
      const la::Vector v = chol_->solveLower(kCross.col(j));
      double var = kernel_->eval(xStar.row(j), xStar.row(j)) - la::dot(v, v);
      if (includeNoise) var += noiseVar_;
      pred.variance[j] = std::max(var, 0.0);
    });
    return pred;
  }
  // Batch engine: one multi-RHS forward solve over the full n×m cross
  // matrix, then a tile-wise columnwise variance reduction
  // var_j = kss_j − ‖V·e_j‖². The workspace buffer is reused across
  // same-shape predicts (the AL loop's pool/test scoring) so the repeated
  // hot-path calls are allocation-free.
  PerfRegistry::instance().increment("gp.predict.batch");
  if (ws.kCross.rows() != n || ws.kCross.cols() != m)
    ws.kCross = la::Matrix(n, m);
  kernel_->crossInto(x_, xStar, ws.kCross);
  la::Vector kss(m);
  parallelFor(m, 8, [&](std::size_t j) {
    kss[j] = kernel_->eval(xStar.row(j), xStar.row(j));
  });
  Prediction pred;
  pred.mean = la::matvecTransposed(ws.kCross, alpha_);
  chol_->solveLowerInPlace(ws.kCross);  // K_cross -> V = L⁻¹·K_cross
  detail::batchVarianceReduce(ws.kCross, kss, noiseVar_, includeNoise,
                              pred.variance);
  return pred;
}

namespace detail {
void batchVarianceReduce(const la::Matrix& v, std::span<const double> kss,
                         double noiseVar, bool includeNoise,
                         la::Vector& outVar) {
  const std::size_t n = v.rows();
  const std::size_t m = v.cols();
  outVar.resize(m);
  // Column tiles of V are owned by one parallel index each; within a tile
  // the row sweep accumulates every column's ‖v_j‖² in ascending-i order,
  // so each column's chain is independent of the tile layout and thread
  // count.
  const double* vd = v.data().data();
  const std::size_t tiles = (m + la::kLaBlock - 1) / la::kLaBlock;
  parallelFor(tiles, 1, [&](std::size_t tc) {
    const std::size_t j0 = tc * la::kLaBlock;
    const std::size_t jw = std::min(la::kLaBlock, m - j0);
    double acc[la::kLaBlock];
    std::fill(acc, acc + jw, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const double* vi = vd + i * m + j0;
      for (std::size_t j = 0; j < jw; ++j) acc[j] += vi[j] * vi[j];
    }
    for (std::size_t j = 0; j < jw; ++j) {
      double var = kss[j0 + j] - acc[j];
      if (includeNoise) var += noiseVar;
      outVar[j0 + j] = std::max(var, 0.0);
    }
  });
}
}  // namespace detail

std::pair<double, double> GaussianProcess::predictOne(
    std::span<const double> x, bool includeNoise) const {
  requireArg(fitted(), "GaussianProcess::predictOne: not fitted");
  requireArg(x.size() == x_.cols(),
             "GaussianProcess::predictOne: dimension mismatch");
  if (priorOnly_) {
    double var = kernel_->eval(x, x);
    if (includeNoise) var += noiseVar_;
    return {0.0, std::max(var, 0.0)};
  }
  // Direct single-point path: no 1×d Matrix, no Prediction round trip —
  // this is the continuous loop's inner call. The arithmetic is exactly
  // the seed per-column path's (k-vector dot for the mean, one triangular
  // solve for the variance), so single-point results are unchanged.
  const std::size_t n = x_.rows();
  la::Vector k(n);
  for (std::size_t i = 0; i < n; ++i) k[i] = kernel_->eval(x_.row(i), x);
  double mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean += alpha_[i] * k[i];
  const la::Vector v = chol_->solveLower(k);
  double var = kernel_->eval(x, x) - la::dot(v, v);
  if (includeNoise) var += noiseVar_;
  return {mean, std::max(var, 0.0)};
}

GaussianProcess::PointGradient GaussianProcess::predictOneWithGradient(
    std::span<const double> x) const {
  requireArg(fitted(), "predictOneWithGradient: not fitted");
  requireArg(x.size() == x_.cols(),
             "predictOneWithGradient: dimension mismatch");
  const std::size_t n = x_.rows();
  const std::size_t d = x.size();
  if (priorOnly_) {
    PointGradient prior;
    prior.meanGrad.assign(d, 0.0);
    prior.variance = std::max(kernel_->eval(x, x), 0.0);
    la::Vector selfGrad(d);
    kernel_->evalGradX(x, x, selfGrad);
    prior.varianceGrad.resize(d);
    for (std::size_t j = 0; j < d; ++j)
      prior.varianceGrad[j] = 2.0 * selfGrad[j];
    return prior;
  }

  la::Vector k(n);
  la::Matrix kGrad(n, d);  // row i: ∂k(x, x_i)/∂x
  for (std::size_t i = 0; i < n; ++i) {
    k[i] = kernel_->eval(x, x_.row(i));
    kernel_->evalGradX(x, x_.row(i), kGrad.row(i));
  }

  PointGradient out;
  out.mean = la::dot(k, alpha_);
  out.meanGrad = la::matvecTransposed(kGrad, alpha_);

  const la::Vector kyInvK = chol_->solve(k);
  const double kss = kernel_->eval(x, x);
  out.variance = std::max(kss - la::dot(k, kyInvK), 0.0);

  // ∂k(x,x)/∂x: both arguments move; for symmetric kernels this is
  // 2·∂₁k(x, b)|_{b=x}, which vanishes for stationary kernels but is kept
  // general here.
  la::Vector selfGrad(d);
  kernel_->evalGradX(x, x, selfGrad);
  out.varianceGrad.resize(d);
  const la::Vector crossGrad = la::matvecTransposed(kGrad, kyInvK);
  for (std::size_t j = 0; j < d; ++j)
    out.varianceGrad[j] = 2.0 * selfGrad[j] - 2.0 * crossGrad[j];
  return out;
}

la::Matrix GaussianProcess::posteriorCovariance(const la::Matrix& xStar) const {
  requireArg(fitted(), "GaussianProcess::posteriorCovariance: not fitted");
  requireArg(xStar.cols() == x_.cols(),
             "GaussianProcess::posteriorCovariance: dimension mismatch");
  if (priorOnly_) return kernel_->gram(xStar);
  // V = L⁻¹ K_cross (n × m), covariance = K(X*,X*) − VᵀV. One multi-RHS
  // forward solve; the seed per-column loop is kept for the reference A/B.
  la::Matrix v = kernel_->cross(x_, xStar);  // n × m
  if (config_.batchPredict) {
    chol_->solveLowerInPlace(v);
  } else {
    const la::Matrix kCross = v;
    const std::size_t m = xStar.rows();
    for (std::size_t j = 0; j < m; ++j) {
      const la::Vector vj = chol_->solveLower(kCross.col(j));
      for (std::size_t i = 0; i < x_.rows(); ++i) v(i, j) = vj[i];
    }
  }
  la::Matrix cov = kernel_->gram(xStar);
  cov -= la::gram(v);
  return cov;
}

std::vector<la::Vector> GaussianProcess::samplePosterior(
    const la::Matrix& xStar, int nSamples, stats::Rng& rng) const {
  requireArg(nSamples >= 1, "samplePosterior: nSamples must be >= 1");
  const Prediction pred = predict(xStar);
  la::Matrix cov = posteriorCovariance(xStar);
  // Generous jitter cap: posterior covariances are often near-singular.
  const la::Cholesky chol(std::move(cov), /*maxJitterScale=*/1e-3);
  std::vector<la::Vector> samples;
  samples.reserve(static_cast<std::size_t>(nSamples));
  for (int s = 0; s < nSamples; ++s) {
    la::Vector z(xStar.rows());
    for (auto& v : z) v = rng.normal();
    la::Vector path = la::matvec(chol.factor(), z);
    for (std::size_t i = 0; i < path.size(); ++i) path[i] += pred.mean[i];
    samples.push_back(std::move(path));
  }
  return samples;
}

double GaussianProcess::logMarginalLikelihood() const {
  requireArg(fitted(), "GaussianProcess: not fitted");
  return lml_;
}

double GaussianProcess::logMarginalLikelihoodAt(
    std::span<const double> thetaFull) const {
  requireArg(fitted(), "GaussianProcess: not fitted");
  return evalLml(thetaFull, false, diagnostics_).value;
}

std::vector<double> GaussianProcess::logMarginalLikelihoodGradientAt(
    std::span<const double> thetaFull) const {
  requireArg(fitted(), "GaussianProcess: not fitted");
  auto r = evalLml(thetaFull, true, diagnostics_);
  requireArg(std::isfinite(r.value),
             "logMarginalLikelihoodGradientAt: LML undefined here");
  return std::move(r.grad);
}

double GaussianProcess::looLogPseudoLikelihoodAt(
    std::span<const double> thetaFull) const {
  requireArg(fitted(), "GaussianProcess: not fitted");
  return evalLoo(thetaFull, diagnostics_);
}

}  // namespace alperf::gp
