#include "gp/sparse.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "stats/sampling.hpp"

namespace alperf::gp {

std::vector<std::size_t> farthestPointSubset(const la::Matrix& x,
                                             std::size_t m,
                                             stats::Rng& rng) {
  const std::size_t n = x.rows();
  requireArg(m >= 1 && m <= n, "farthestPointSubset: need 1 <= m <= n");
  std::vector<std::size_t> chosen;
  chosen.reserve(m);
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  chosen.push_back(rng.index(n));
  while (chosen.size() < m) {
    const auto last = x.row(chosen.back());
    std::size_t best = 0;
    double bestDist = -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      dist[i] = std::min(dist[i], la::squaredDistance(x.row(i), last));
      if (dist[i] > bestDist) {
        bestDist = dist[i];
        best = i;
      }
    }
    if (bestDist <= 0.0) {
      // All remaining rows duplicate the chosen set; pad with unused
      // indices to honour the requested size.
      for (std::size_t i = 0; i < n && chosen.size() < m; ++i)
        if (std::find(chosen.begin(), chosen.end(), i) == chosen.end())
          chosen.push_back(i);
      break;
    }
    chosen.push_back(best);
  }
  return chosen;
}

SparseGaussianProcess::SparseGaussianProcess(KernelPtr kernel,
                                             SparseGpConfig config)
    : kernel_(std::move(kernel)), config_(config) {
  requireArg(kernel_ != nullptr, "SparseGaussianProcess: null kernel");
  requireArg(config_.numInducing >= 1,
             "SparseGaussianProcess: need at least one inducing point");
  requireArg(config_.noiseVariance > 0.0,
             "SparseGaussianProcess: noise variance must be positive");
}

void SparseGaussianProcess::fit(la::Matrix x, la::Vector y,
                                stats::Rng& rng) {
  requireArg(x.rows() == y.size(), "SparseGaussianProcess::fit: size");
  requireArg(y.size() >= 1, "SparseGaussianProcess::fit: empty data");
  const std::size_t n = x.rows();
  const std::size_t m = std::min(config_.numInducing, n);

  inducing_ = config_.selection == InducingSelection::FarthestPoint
                  ? farthestPointSubset(x, m, rng)
                  : stats::sampleWithoutReplacement(n, m, rng);
  xu_ = la::Matrix(m, x.cols());
  for (std::size_t i = 0; i < m; ++i) {
    const auto src = x.row(inducing_[i]);
    std::copy(src.begin(), src.end(), xu_.row(i).begin());
  }

  la::Matrix kuu = kernel_->gram(xu_);
  kuu.addToDiagonal(config_.jitter * (kuu.maxAbs() + 1.0));
  kuuChol_ = std::make_unique<la::Cholesky>(kuu);

  // K_uf: m×n cross-covariance.
  const la::Matrix kuf = kernel_->cross(xu_, x);

  // Σ⁻¹ = σ_n²·K_uu + K_uf·K_fu  (use gram of K_ufᵀ for the product).
  la::Matrix sigmaInv = la::gram(kuf.transposed());
  sigmaInv += kuu * config_.noiseVariance;
  sigmaChol_ = std::make_unique<la::Cholesky>(std::move(sigmaInv));

  // beta = Σ·K_uf·y.
  beta_ = sigmaChol_->solve(la::matvec(kuf, y));
}

Prediction SparseGaussianProcess::predict(const la::Matrix& xStar) const {
  requireArg(fitted(), "SparseGaussianProcess::predict: not fitted");
  requireArg(xStar.cols() == xu_.cols(),
             "SparseGaussianProcess::predict: dimension mismatch");
  const la::Matrix kus = kernel_->cross(xu_, xStar);  // m×q
  Prediction pred;
  pred.mean = la::matvecTransposed(kus, beta_);
  pred.variance.resize(xStar.rows());
  for (std::size_t j = 0; j < xStar.rows(); ++j) {
    const la::Vector ks = kus.col(j);
    const double kss = kernel_->eval(xStar.row(j), xStar.row(j));
    // DTC: k** − k_*u K_uu⁻¹ k_*u + σ_n²·k_*u Σ k_*u.
    const la::Vector kuuInvKs = kuuChol_->solve(ks);
    const la::Vector sigmaKs = sigmaChol_->solve(ks);
    const double var = kss - la::dot(ks, kuuInvKs) +
                       config_.noiseVariance * la::dot(ks, sigmaKs);
    pred.variance[j] = std::max(var, 0.0);
  }
  return pred;
}

std::pair<double, double> SparseGaussianProcess::predictOne(
    std::span<const double> x) const {
  la::Matrix m(1, x.size());
  std::copy(x.begin(), x.end(), m.row(0).begin());
  const Prediction p = predict(m);
  return {p.mean[0], p.variance[0]};
}

}  // namespace alperf::gp
