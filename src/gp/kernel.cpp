#include "gp/kernel.hpp"

#include <cmath>
#include <vector>

#include "common/thread_pool.hpp"
#include "gp/kernels.hpp"

namespace alperf::gp {

void Kernel::evalGradX(std::span<const double> a, std::span<const double> b,
                       std::span<double> grad) const {
  ALPERF_ASSERT(grad.size() == a.size(), "evalGradX: gradient size");
  std::vector<double> ap(a.begin(), a.end());
  const double h = 1e-6;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double step = h * (std::abs(a[i]) + 1.0);
    const double orig = ap[i];
    ap[i] = orig + step;
    const double up = eval(ap, b);
    ap[i] = orig - step;
    const double dn = eval(ap, b);
    ap[i] = orig;
    grad[i] = (up - dn) / (2.0 * step);
  }
}

la::Matrix Kernel::gram(const la::Matrix& x, const DistanceCache&) const {
  return gram(x);
}

void Kernel::gramGradients(const la::Matrix& x, const la::Matrix& k,
                           const DistanceCache&,
                           std::vector<la::Matrix>& grads) const {
  gramGradients(x, k, grads);
}

la::Matrix Kernel::gram(const la::Matrix& x) const {
  const std::size_t n = x.rows();
  la::Matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    k(i, i) = eval(x.row(i), x.row(i));
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = eval(x.row(i), x.row(j));
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  return k;
}

la::Matrix Kernel::cross(const la::Matrix& x, const la::Matrix& y) const {
  la::Matrix k(x.rows(), y.rows());
  crossInto(x, y, k);
  return k;
}

void Kernel::crossInto(const la::Matrix& x, const la::Matrix& y,
                       la::Matrix& out) const {
  ALPERF_ASSERT(out.rows() == x.rows() && out.cols() == y.rows(),
                "crossInto: output shape");
  // Rows are independent and each thread writes only its own rows, so the
  // fill is bit-identical to the sequential double loop.
  parallelFor(x.rows(), 8, [&](std::size_t i) {
    crossRow(x.row(i), y, out.row(i));
  });
}

void Kernel::crossRow(std::span<const double> a, const la::Matrix& y,
                      std::span<double> out) const {
  ALPERF_ASSERT(out.size() == y.rows(), "crossRow: output size");
  for (std::size_t j = 0; j < y.rows(); ++j) out[j] = eval(a, y.row(j));
}

la::Vector Kernel::diag(const la::Matrix& x) const {
  la::Vector d(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) d[i] = eval(x.row(i), x.row(i));
  return d;
}

KernelPtr operator+(KernelPtr a, KernelPtr b) {
  return std::make_unique<SumKernel>(std::move(a), std::move(b));
}

KernelPtr operator*(KernelPtr a, KernelPtr b) {
  return std::make_unique<ProductKernel>(std::move(a), std::move(b));
}

}  // namespace alperf::gp
