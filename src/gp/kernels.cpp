#include "gp/kernels.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "gp/distance_cache.hpp"
#include "la/blas.hpp"

namespace alperf::gp {

namespace {

void checkPositive(double v, const char* what) {
  requireArg(v > 0.0 && std::isfinite(v),
             std::string(what) + " must be positive and finite");
}

opt::BoxBounds logBounds(const PositiveBounds& b, std::size_t n) {
  requireArg(b.lo > 0.0 && b.lo <= b.hi, "PositiveBounds: need 0 < lo <= hi");
  return opt::BoxBounds(std::vector<double>(n, std::log(b.lo)),
                        std::vector<double>(n, std::log(b.hi)));
}

opt::BoxBounds concatBounds(const opt::BoxBounds& a,
                            const opt::BoxBounds& b) {
  std::vector<double> lo(a.lo), hi(a.hi);
  lo.insert(lo.end(), b.lo.begin(), b.lo.end());
  hi.insert(hi.end(), b.hi.begin(), b.hi.end());
  return opt::BoxBounds(std::move(lo), std::move(hi));
}

}  // namespace

// ---------------------------------------------------------------- Constant

ConstantKernel::ConstantKernel(double value, PositiveBounds bounds)
    : value_(value), bounds_(bounds) {
  checkPositive(value, "ConstantKernel value");
}

KernelPtr ConstantKernel::clone() const {
  return std::make_unique<ConstantKernel>(*this);
}

std::vector<std::string> ConstantKernel::paramNames() const {
  return {"constant_value"};
}

std::vector<double> ConstantKernel::theta() const {
  return {std::log(value_)};
}

void ConstantKernel::setTheta(std::span<const double> t) {
  requireArg(t.size() == 1, "ConstantKernel::setTheta: wrong size");
  value_ = std::exp(t[0]);
}

opt::BoxBounds ConstantKernel::thetaBounds() const {
  return logBounds(bounds_, 1);
}

double ConstantKernel::eval(std::span<const double>,
                            std::span<const double>) const {
  return value_;
}

void ConstantKernel::evalGradX(std::span<const double>,
                               std::span<const double>,
                               std::span<double> grad) const {
  for (auto& g : grad) g = 0.0;
}

void ConstantKernel::gramGradients(const la::Matrix& x, const la::Matrix&,
                                   std::vector<la::Matrix>& grads) const {
  // ∂k/∂log c = c everywhere.
  grads.emplace_back(x.rows(), x.rows(), value_);
}

std::string ConstantKernel::describe() const {
  std::ostringstream os;
  os << value_;
  return os.str();
}

// -------------------------------------------------------------- Stationary

StationaryKernel::StationaryKernel(double lengthScale, PositiveBounds bounds)
    : lengths_{lengthScale}, bounds_(bounds) {
  checkPositive(lengthScale, "length scale");
}

StationaryKernel::StationaryKernel(std::vector<double> lengthScales,
                                   PositiveBounds bounds)
    : lengths_(std::move(lengthScales)), bounds_(bounds) {
  requireArg(!lengths_.empty(), "StationaryKernel: no length scales");
  for (double l : lengths_) checkPositive(l, "length scale");
}

std::vector<std::string> StationaryKernel::paramNames() const {
  if (isotropic()) return {"length_scale"};
  std::vector<std::string> names;
  for (std::size_t i = 0; i < lengths_.size(); ++i)
    names.push_back("length_scale_" + std::to_string(i));
  return names;
}

std::vector<double> StationaryKernel::theta() const {
  std::vector<double> t(lengths_.size());
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = std::log(lengths_[i]);
  return t;
}

void StationaryKernel::setTheta(std::span<const double> t) {
  requireArg(t.size() == lengths_.size(),
             "StationaryKernel::setTheta: wrong size");
  for (std::size_t i = 0; i < t.size(); ++i) lengths_[i] = std::exp(t[i]);
}

opt::BoxBounds StationaryKernel::thetaBounds() const {
  return logBounds(bounds_, lengths_.size());
}

double StationaryKernel::scaledSq(std::span<const double> a,
                                  std::span<const double> b) const {
  ALPERF_ASSERT(a.size() == b.size(), "kernel eval: dimension mismatch");
  ALPERF_ASSERT(isotropic() || a.size() == lengths_.size(),
                "ARD kernel: input dimension does not match length scales");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double l = isotropic() ? lengths_[0] : lengths_[i];
    const double d = (a[i] - b[i]) / l;
    s += d * d;
  }
  return s;
}

double StationaryKernel::eval(std::span<const double> a,
                              std::span<const double> b) const {
  return kOfS(scaledSq(a, b));
}

void StationaryKernel::evalGradX(std::span<const double> a,
                                 std::span<const double> b,
                                 std::span<double> grad) const {
  // ∂k/∂a_i = dk/ds · ∂s/∂a_i with ∂s/∂a_i = 2(a_i − b_i)/l_i².
  const double s = scaledSq(a, b);
  const double dk = dkds(s);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double l = isotropic() ? lengths_[0] : lengths_[i];
    grad[i] = dk * 2.0 * (a[i] - b[i]) / (l * l);
  }
}

void StationaryKernel::gramGradients(const la::Matrix& x, const la::Matrix&,
                                     std::vector<la::Matrix>& grads) const {
  const std::size_t n = x.rows();
  if (isotropic()) {
    // ∂k/∂log l = dk/ds · ∂s/∂log l = dk/ds · (-2s).
    la::Matrix g(n, n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) {
        const double s = scaledSq(x.row(i), x.row(j));
        const double v = dkds(s) * (-2.0 * s);
        g(i, j) = v;
        g(j, i) = v;
      }
    grads.push_back(std::move(g));
    return;
  }
  // ARD: ∂k/∂log l_m = dk/ds · (-2·Δ_m²/l_m²).
  const std::size_t d = lengths_.size();
  std::vector<la::Matrix> gs(d, la::Matrix(n, n));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      const auto xi = x.row(i);
      const auto xj = x.row(j);
      const double s = scaledSq(xi, xj);
      const double dk = dkds(s);
      for (std::size_t m = 0; m < d; ++m) {
        const double dm = (xi[m] - xj[m]) / lengths_[m];
        const double v = dk * (-2.0 * dm * dm);
        gs[m](i, j) = v;
        gs[m](j, i) = v;
      }
    }
  for (auto& g : gs) grads.push_back(std::move(g));
}

la::Matrix StationaryKernel::gram(const la::Matrix& x,
                                  const DistanceCache& cache) const {
  // Stale cache (or ARD dimension mismatch) → correct-but-slower fallback.
  if (!cache.matches(x) ||
      (!isotropic() && x.cols() != lengths_.size()))
    return gram(x);
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  la::Matrix k(n, n);
  double* kd = k.data().data();
  const double kDiag = kOfS(0.0);
  const double* sq = cache.squaredDistances().data();
  const double* sqd = cache.squaredDiffs().data();
  std::vector<double> invL2(lengths_.size());
  for (std::size_t m = 0; m < lengths_.size(); ++m)
    invL2[m] = 1.0 / (lengths_[m] * lengths_[m]);
  // Index j owns row j and the upper entries of column j — disjoint
  // writes, so the parallel build is deterministic.
  parallelFor(n, 8, [&](std::size_t j) {
    kd[j * n + j] = kDiag;
    const std::size_t base = j < 1 ? 0 : DistanceCache::pairIndex(0, j);
    if (isotropic()) {
      const double il2 = invL2[0];
      for (std::size_t i = 0; i < j; ++i) {
        const double v = kOfS(sq[base + i] * il2);
        kd[i * n + j] = v;
        kd[j * n + i] = v;
      }
    } else {
      for (std::size_t i = 0; i < j; ++i) {
        const double s =
            la::dotUnrolled(sqd + (base + i) * d, invL2.data(), d);
        const double v = kOfS(s);
        kd[i * n + j] = v;
        kd[j * n + i] = v;
      }
    }
  });
  return k;
}

void StationaryKernel::gramGradients(const la::Matrix& x, const la::Matrix& k,
                                     const DistanceCache& cache,
                                     std::vector<la::Matrix>& grads) const {
  if (!cache.matches(x) ||
      (!isotropic() && x.cols() != lengths_.size())) {
    gramGradients(x, k, grads);
    return;
  }
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  const double* sq = cache.squaredDistances().data();
  const double* sqd = cache.squaredDiffs().data();
  if (isotropic()) {
    const double il2 = 1.0 / (lengths_[0] * lengths_[0]);
    la::Matrix g(n, n);
    double* gd = g.data().data();
    parallelFor(n, 8, [&](std::size_t j) {
      const std::size_t base = j < 1 ? 0 : DistanceCache::pairIndex(0, j);
      for (std::size_t i = 0; i < j; ++i) {
        const double s = sq[base + i] * il2;
        const double v = dkds(s) * (-2.0 * s);
        gd[i * n + j] = v;
        gd[j * n + i] = v;
      }
    });
    grads.push_back(std::move(g));
    return;
  }
  std::vector<double> invL2(d);
  for (std::size_t m = 0; m < d; ++m)
    invL2[m] = 1.0 / (lengths_[m] * lengths_[m]);
  std::vector<la::Matrix> gs(d, la::Matrix(n, n));
  parallelFor(n, 8, [&](std::size_t j) {
    const std::size_t base = j < 1 ? 0 : DistanceCache::pairIndex(0, j);
    for (std::size_t i = 0; i < j; ++i) {
      const double* diffs = sqd + (base + i) * d;
      const double s = la::dotUnrolled(diffs, invL2.data(), d);
      const double dk = dkds(s);
      for (std::size_t m = 0; m < d; ++m) {
        const double v = dk * (-2.0 * diffs[m] * invL2[m]);
        gs[m].data()[i * n + j] = v;
        gs[m].data()[j * n + i] = v;
      }
    }
  });
  for (auto& g : gs) grads.push_back(std::move(g));
}

std::string StationaryKernel::describeLengths() const {
  std::ostringstream os;
  os << "l=[";
  for (std::size_t i = 0; i < lengths_.size(); ++i)
    os << (i ? ", " : "") << lengths_[i];
  os << "]";
  return os.str();
}

// --------------------------------------------------------------------- RBF

KernelPtr RbfKernel::clone() const { return std::make_unique<RbfKernel>(*this); }

double RbfKernel::kOfS(double s) const { return std::exp(-0.5 * s); }

double RbfKernel::dkds(double s) const { return -0.5 * std::exp(-0.5 * s); }

std::string RbfKernel::describe() const {
  return "RBF(" + describeLengths() + ")";
}

// --------------------------------------------------------------- Matern3/2

KernelPtr Matern32Kernel::clone() const {
  return std::make_unique<Matern32Kernel>(*this);
}

double Matern32Kernel::kOfS(double s) const {
  const double r = std::sqrt(s);
  const double a = std::sqrt(3.0) * r;
  return (1.0 + a) * std::exp(-a);
}

double Matern32Kernel::dkds(double s) const {
  // dk/dr = -3r·exp(-√3 r); dk/ds = dk/dr / (2r) = -3/2·exp(-√3 r).
  const double r = std::sqrt(s);
  return -1.5 * std::exp(-std::sqrt(3.0) * r);
}

std::string Matern32Kernel::describe() const {
  return "Matern32(" + describeLengths() + ")";
}

// --------------------------------------------------------------- Matern5/2

KernelPtr Matern52Kernel::clone() const {
  return std::make_unique<Matern52Kernel>(*this);
}

double Matern52Kernel::kOfS(double s) const {
  const double r = std::sqrt(s);
  const double a = std::sqrt(5.0) * r;
  return (1.0 + a + 5.0 * s / 3.0) * std::exp(-a);
}

double Matern52Kernel::dkds(double s) const {
  // dk/dr = -(5r/3)(1+√5 r)e^{-√5 r}; dk/ds = dk/dr / (2r).
  const double r = std::sqrt(s);
  return -(5.0 / 6.0) * (1.0 + std::sqrt(5.0) * r) *
         std::exp(-std::sqrt(5.0) * r);
}

std::string Matern52Kernel::describe() const {
  return "Matern52(" + describeLengths() + ")";
}

// ------------------------------------------------------ RationalQuadratic

RationalQuadraticKernel::RationalQuadraticKernel(double lengthScale,
                                                 double alpha,
                                                 PositiveBounds lengthBounds,
                                                 PositiveBounds alphaBounds)
    : length_(lengthScale),
      alpha_(alpha),
      lengthBounds_(lengthBounds),
      alphaBounds_(alphaBounds) {
  checkPositive(lengthScale, "length scale");
  checkPositive(alpha, "alpha");
}

KernelPtr RationalQuadraticKernel::clone() const {
  return std::make_unique<RationalQuadraticKernel>(*this);
}

std::vector<std::string> RationalQuadraticKernel::paramNames() const {
  return {"length_scale", "alpha"};
}

std::vector<double> RationalQuadraticKernel::theta() const {
  return {std::log(length_), std::log(alpha_)};
}

void RationalQuadraticKernel::setTheta(std::span<const double> t) {
  requireArg(t.size() == 2, "RationalQuadraticKernel::setTheta: wrong size");
  length_ = std::exp(t[0]);
  alpha_ = std::exp(t[1]);
}

opt::BoxBounds RationalQuadraticKernel::thetaBounds() const {
  return concatBounds(logBounds(lengthBounds_, 1), logBounds(alphaBounds_, 1));
}

double RationalQuadraticKernel::eval(std::span<const double> a,
                                     std::span<const double> b) const {
  const double s = la::squaredDistance(a, b) / (length_ * length_);
  return std::pow(1.0 + s / (2.0 * alpha_), -alpha_);
}

void RationalQuadraticKernel::evalGradX(std::span<const double> a,
                                        std::span<const double> b,
                                        std::span<double> grad) const {
  // k = (1 + s/(2α))^{-α}, s = |a-b|²/l² → dk/ds = -½(1+s/(2α))^{-α-1}.
  const double s = la::squaredDistance(a, b) / (length_ * length_);
  const double dk = -0.5 * std::pow(1.0 + s / (2.0 * alpha_), -alpha_ - 1.0);
  for (std::size_t i = 0; i < a.size(); ++i)
    grad[i] = dk * 2.0 * (a[i] - b[i]) / (length_ * length_);
}

void RationalQuadraticKernel::gramGradients(
    const la::Matrix& x, const la::Matrix&,
    std::vector<la::Matrix>& grads) const {
  const std::size_t n = x.rows();
  la::Matrix gl(n, n);  // ∂k/∂log l
  la::Matrix ga(n, n);  // ∂k/∂log α
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      const double s =
          la::squaredDistance(x.row(i), x.row(j)) / (length_ * length_);
      const double base = 1.0 + s / (2.0 * alpha_);
      const double k = std::pow(base, -alpha_);
      const double vl = s * std::pow(base, -alpha_ - 1.0);
      const double va = k * (-alpha_ * std::log(base) + s / (2.0 * base));
      gl(i, j) = gl(j, i) = vl;
      ga(i, j) = ga(j, i) = va;
    }
  grads.push_back(std::move(gl));
  grads.push_back(std::move(ga));
}

la::Matrix RationalQuadraticKernel::gram(const la::Matrix& x,
                                         const DistanceCache& cache) const {
  if (!cache.matches(x)) return gram(x);
  const std::size_t n = x.rows();
  la::Matrix k(n, n);
  double* kd = k.data().data();
  const double* sq = cache.squaredDistances().data();
  const double il2 = 1.0 / (length_ * length_);
  parallelFor(n, 8, [&](std::size_t j) {
    kd[j * n + j] = 1.0;
    const std::size_t base = j < 1 ? 0 : DistanceCache::pairIndex(0, j);
    for (std::size_t i = 0; i < j; ++i) {
      const double s = sq[base + i] * il2;
      const double v = std::pow(1.0 + s / (2.0 * alpha_), -alpha_);
      kd[i * n + j] = v;
      kd[j * n + i] = v;
    }
  });
  return k;
}

void RationalQuadraticKernel::gramGradients(
    const la::Matrix& x, const la::Matrix& k, const DistanceCache& cache,
    std::vector<la::Matrix>& grads) const {
  if (!cache.matches(x)) {
    gramGradients(x, k, grads);
    return;
  }
  const std::size_t n = x.rows();
  la::Matrix gl(n, n);  // ∂k/∂log l
  la::Matrix ga(n, n);  // ∂k/∂log α
  double* gld = gl.data().data();
  double* gad = ga.data().data();
  const double* sq = cache.squaredDistances().data();
  const double il2 = 1.0 / (length_ * length_);
  parallelFor(n, 8, [&](std::size_t j) {
    const std::size_t base = j < 1 ? 0 : DistanceCache::pairIndex(0, j);
    for (std::size_t i = 0; i < j; ++i) {
      const double s = sq[base + i] * il2;
      const double baseV = 1.0 + s / (2.0 * alpha_);
      const double kv = std::pow(baseV, -alpha_);
      const double vl = s * std::pow(baseV, -alpha_ - 1.0);
      const double va =
          kv * (-alpha_ * std::log(baseV) + s / (2.0 * baseV));
      gld[i * n + j] = gld[j * n + i] = vl;
      gad[i * n + j] = gad[j * n + i] = va;
    }
  });
  grads.push_back(std::move(gl));
  grads.push_back(std::move(ga));
}

std::string RationalQuadraticKernel::describe() const {
  std::ostringstream os;
  os << "RationalQuadratic(l=" << length_ << ", alpha=" << alpha_ << ")";
  return os.str();
}

// ---------------------------------------------------------------- Periodic

PeriodicKernel::PeriodicKernel(double lengthScale, double period,
                               PositiveBounds lengthBounds,
                               PositiveBounds periodBounds)
    : length_(lengthScale),
      period_(period),
      lengthBounds_(lengthBounds),
      periodBounds_(periodBounds) {
  checkPositive(lengthScale, "length scale");
  checkPositive(period, "period");
}

KernelPtr PeriodicKernel::clone() const {
  return std::make_unique<PeriodicKernel>(*this);
}

std::vector<std::string> PeriodicKernel::paramNames() const {
  return {"length_scale", "period"};
}

std::vector<double> PeriodicKernel::theta() const {
  return {std::log(length_), std::log(period_)};
}

void PeriodicKernel::setTheta(std::span<const double> t) {
  requireArg(t.size() == 2, "PeriodicKernel::setTheta: wrong size");
  length_ = std::exp(t[0]);
  period_ = std::exp(t[1]);
}

opt::BoxBounds PeriodicKernel::thetaBounds() const {
  return concatBounds(logBounds(lengthBounds_, 1),
                      logBounds(periodBounds_, 1));
}

namespace {
constexpr double kPeriodicPi = 3.14159265358979323846;
}

double PeriodicKernel::eval(std::span<const double> a,
                            std::span<const double> b) const {
  double expo = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double s =
        std::sin(kPeriodicPi * std::abs(a[i] - b[i]) / period_);
    expo += s * s;
  }
  return std::exp(-2.0 * expo / (length_ * length_));
}

void PeriodicKernel::evalGradX(std::span<const double> a,
                               std::span<const double> b,
                               std::span<double> grad) const {
  const double k = eval(a, b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double u = kPeriodicPi * (a[i] - b[i]) / period_;
    // d/da_i of sin²(u) = 2 sin(u)cos(u)·π/p = sin(2u)·π/p (odd in Δ,
    // so the |Δ| in eval can be dropped when differentiating).
    grad[i] = k * (-2.0 / (length_ * length_)) * std::sin(2.0 * u) *
              kPeriodicPi / period_;
  }
}

void PeriodicKernel::gramGradients(const la::Matrix& x, const la::Matrix&,
                                   std::vector<la::Matrix>& grads) const {
  const std::size_t n = x.rows();
  la::Matrix gl(n, n);     // ∂k/∂log l
  la::Matrix gpMat(n, n);  // ∂k/∂log p
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      const auto xi = x.row(i);
      const auto xj = x.row(j);
      double sumS2 = 0.0;
      double sumSCU = 0.0;
      for (std::size_t m = 0; m < xi.size(); ++m) {
        const double u = kPeriodicPi * std::abs(xi[m] - xj[m]) / period_;
        const double s = std::sin(u);
        sumS2 += s * s;
        sumSCU += s * std::cos(u) * u;
      }
      const double k = std::exp(-2.0 * sumS2 / (length_ * length_));
      gl(i, j) = gl(j, i) = k * 4.0 * sumS2 / (length_ * length_);
      gpMat(i, j) = gpMat(j, i) =
          k * 4.0 * sumSCU / (length_ * length_);
    }
  grads.push_back(std::move(gl));
  grads.push_back(std::move(gpMat));
}

std::string PeriodicKernel::describe() const {
  std::ostringstream os;
  os << "Periodic(l=" << length_ << ", p=" << period_ << ")";
  return os.str();
}

// -------------------------------------------------------------- Composites

SumKernel::SumKernel(KernelPtr a, KernelPtr b)
    : a_(std::move(a)), b_(std::move(b)) {
  requireArg(a_ != nullptr && b_ != nullptr, "SumKernel: null child");
}

KernelPtr SumKernel::clone() const {
  return std::make_unique<SumKernel>(a_->clone(), b_->clone());
}

std::size_t SumKernel::numParams() const {
  return a_->numParams() + b_->numParams();
}

std::vector<std::string> SumKernel::paramNames() const {
  auto names = a_->paramNames();
  for (auto& n : b_->paramNames()) names.push_back("rhs_" + n);
  return names;
}

std::vector<double> SumKernel::theta() const {
  auto t = a_->theta();
  const auto tb = b_->theta();
  t.insert(t.end(), tb.begin(), tb.end());
  return t;
}

void SumKernel::setTheta(std::span<const double> t) {
  requireArg(t.size() == numParams(), "SumKernel::setTheta: wrong size");
  a_->setTheta(t.subspan(0, a_->numParams()));
  b_->setTheta(t.subspan(a_->numParams()));
}

opt::BoxBounds SumKernel::thetaBounds() const {
  return concatBounds(a_->thetaBounds(), b_->thetaBounds());
}

double SumKernel::eval(std::span<const double> a,
                       std::span<const double> b) const {
  return a_->eval(a, b) + b_->eval(a, b);
}

void SumKernel::evalGradX(std::span<const double> a,
                          std::span<const double> b,
                          std::span<double> grad) const {
  a_->evalGradX(a, b, grad);
  std::vector<double> gb(grad.size());
  b_->evalGradX(a, b, gb);
  for (std::size_t i = 0; i < grad.size(); ++i) grad[i] += gb[i];
}

la::Matrix SumKernel::gram(const la::Matrix& x) const {
  return a_->gram(x) + b_->gram(x);
}

la::Matrix SumKernel::gram(const la::Matrix& x,
                           const DistanceCache& cache) const {
  return a_->gram(x, cache) + b_->gram(x, cache);
}

void SumKernel::gramGradients(const la::Matrix& x, const la::Matrix&,
                              std::vector<la::Matrix>& grads) const {
  a_->gramGradients(x, a_->gram(x), grads);
  b_->gramGradients(x, b_->gram(x), grads);
}

void SumKernel::gramGradients(const la::Matrix& x, const la::Matrix&,
                              const DistanceCache& cache,
                              std::vector<la::Matrix>& grads) const {
  a_->gramGradients(x, a_->gram(x, cache), cache, grads);
  b_->gramGradients(x, b_->gram(x, cache), cache, grads);
}

ProductKernel::ProductKernel(KernelPtr a, KernelPtr b)
    : a_(std::move(a)), b_(std::move(b)) {
  requireArg(a_ != nullptr && b_ != nullptr, "ProductKernel: null child");
}

KernelPtr ProductKernel::clone() const {
  return std::make_unique<ProductKernel>(a_->clone(), b_->clone());
}

std::size_t ProductKernel::numParams() const {
  return a_->numParams() + b_->numParams();
}

std::vector<std::string> ProductKernel::paramNames() const {
  auto names = a_->paramNames();
  for (auto& n : b_->paramNames()) names.push_back("rhs_" + n);
  return names;
}

std::vector<double> ProductKernel::theta() const {
  auto t = a_->theta();
  const auto tb = b_->theta();
  t.insert(t.end(), tb.begin(), tb.end());
  return t;
}

void ProductKernel::setTheta(std::span<const double> t) {
  requireArg(t.size() == numParams(), "ProductKernel::setTheta: wrong size");
  a_->setTheta(t.subspan(0, a_->numParams()));
  b_->setTheta(t.subspan(a_->numParams()));
}

opt::BoxBounds ProductKernel::thetaBounds() const {
  return concatBounds(a_->thetaBounds(), b_->thetaBounds());
}

double ProductKernel::eval(std::span<const double> a,
                           std::span<const double> b) const {
  return a_->eval(a, b) * b_->eval(a, b);
}

namespace {

la::Matrix hadamard(const la::Matrix& a, const la::Matrix& b) {
  la::Matrix c(a.rows(), a.cols());
  auto cd = c.data();
  const auto ad = a.data();
  const auto bd = b.data();
  for (std::size_t k = 0; k < cd.size(); ++k) cd[k] = ad[k] * bd[k];
  return c;
}

}  // namespace

void ProductKernel::evalGradX(std::span<const double> a,
                              std::span<const double> b,
                              std::span<double> grad) const {
  // (k1·k2)' = k1'·k2 + k1·k2'.
  const double ka = a_->eval(a, b);
  const double kb = b_->eval(a, b);
  a_->evalGradX(a, b, grad);
  std::vector<double> gb(grad.size());
  b_->evalGradX(a, b, gb);
  for (std::size_t i = 0; i < grad.size(); ++i)
    grad[i] = grad[i] * kb + ka * gb[i];
}

la::Matrix ProductKernel::gram(const la::Matrix& x) const {
  return hadamard(a_->gram(x), b_->gram(x));
}

la::Matrix ProductKernel::gram(const la::Matrix& x,
                               const DistanceCache& cache) const {
  return hadamard(a_->gram(x, cache), b_->gram(x, cache));
}

void ProductKernel::gramGradients(const la::Matrix& x, const la::Matrix&,
                                  std::vector<la::Matrix>& grads) const {
  const la::Matrix ka = a_->gram(x);
  const la::Matrix kb = b_->gram(x);
  std::vector<la::Matrix> ga, gb;
  a_->gramGradients(x, ka, ga);
  b_->gramGradients(x, kb, gb);
  for (auto& g : ga) grads.push_back(hadamard(g, kb));
  for (auto& g : gb) grads.push_back(hadamard(ka, g));
}

void ProductKernel::gramGradients(const la::Matrix& x, const la::Matrix&,
                                  const DistanceCache& cache,
                                  std::vector<la::Matrix>& grads) const {
  const la::Matrix ka = a_->gram(x, cache);
  const la::Matrix kb = b_->gram(x, cache);
  std::vector<la::Matrix> ga, gb;
  a_->gramGradients(x, ka, cache, ga);
  b_->gramGradients(x, kb, cache, gb);
  for (auto& g : ga) grads.push_back(hadamard(g, kb));
  for (auto& g : gb) grads.push_back(hadamard(ka, g));
}

std::string SumKernel::describe() const {
  return a_->describe() + " + " + b_->describe();
}

std::string ProductKernel::describe() const {
  return a_->describe() + " * " + b_->describe();
}

// --------------------------------------------------------------- Factories

KernelPtr makeSquaredExponential(double sigmaF2, double lengthScale,
                                 PositiveBounds amplitudeBounds,
                                 PositiveBounds lengthBounds) {
  return std::make_unique<ConstantKernel>(sigmaF2, amplitudeBounds) *
         std::make_unique<RbfKernel>(lengthScale, lengthBounds);
}

KernelPtr makeSquaredExponentialArd(double sigmaF2,
                                    std::vector<double> lengthScales,
                                    PositiveBounds amplitudeBounds,
                                    PositiveBounds lengthBounds) {
  return std::make_unique<ConstantKernel>(sigmaF2, amplitudeBounds) *
         std::make_unique<RbfKernel>(std::move(lengthScales), lengthBounds);
}

}  // namespace alperf::gp
