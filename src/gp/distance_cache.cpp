#include "gp/distance_cache.hpp"

#include <algorithm>

#include "common/perf_stats.hpp"
#include "common/thread_pool.hpp"

namespace alperf::gp {

bool DistanceCache::matches(const la::Matrix& x) const {
  if (x.rows() != x_.rows() || x.cols() != x_.cols()) return false;
  const auto a = x.data();
  const auto b = x_.data();
  return std::equal(a.begin(), a.end(), b.begin());
}

void DistanceCache::clear() {
  x_ = la::Matrix();
  sq_.clear();
  sqDiff_.clear();
}

void DistanceCache::fillFrom(std::size_t first) {
  const std::size_t n = x_.rows();
  const std::size_t d = x_.cols();
  if (n < 2 || first >= n) return;
  const std::size_t start = first < 1 ? 1 : first;
  // Each index owns all pairs of one point j (a contiguous slice of the
  // packed arrays), so the parallel fill is race-free and, being pure
  // writes of independent values, trivially deterministic.
  parallelFor(n - start, 8, [&](std::size_t idx) {
    const std::size_t j = start + idx;
    const double* xj = x_.data().data() + j * d;
    double* sqOut = sq_.data() + pairIndex(0, j);
    double* diffOut = sqDiff_.data() + pairIndex(0, j) * d;
    for (std::size_t i = 0; i < j; ++i) {
      const double* xi = x_.data().data() + i * d;
      double s = 0.0;
      for (std::size_t m = 0; m < d; ++m) {
        const double dm = xi[m] - xj[m];
        const double dm2 = dm * dm;
        diffOut[i * d + m] = dm2;
        s += dm2;
      }
      sqOut[i] = s;
    }
  });
}

void DistanceCache::sync(const la::Matrix& x) {
  if (matches(x)) return;
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  const std::size_t oldN = x_.rows();
  const bool isAppend =
      oldN > 0 && n > oldN && d == x_.cols() &&
      std::equal(x_.data().begin(), x_.data().end(), x.data().begin());
  const std::size_t first = isAppend ? oldN : 0;
  PerfRegistry::instance().increment(isAppend ? "gp.distcache.append"
                                              : "gp.distcache.rebuild");
  x_ = x;
  const std::size_t nPairs = n < 2 ? 0 : n * (n - 1) / 2;
  sq_.resize(nPairs);
  sqDiff_.resize(nPairs * d);
  fillFrom(first);
}

}  // namespace alperf::gp
