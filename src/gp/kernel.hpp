#pragma once

/// \file kernel.hpp
/// Covariance-function (kernel) interface for Gaussian Process Regression.
///
/// Kernels model the *signal* covariance only; observation noise σ_n² is a
/// separate GP-level hyperparameter (the paper's eq. 7, K_y = K + σ_n²·I).
///
/// Hyperparameters are exposed in natural-log space ("theta"), the
/// parameterization in which the LML is optimized (matching scikit-learn,
/// whose GP implementation the paper uses). Every kernel provides analytic
/// gradients ∂K/∂θ_j of its Gram matrix for fast LML gradients.

#include <memory>
#include <string>
#include <vector>

#include "la/matrix.hpp"
#include "opt/objective.hpp"

namespace alperf::gp {

class DistanceCache;

class Kernel;
using KernelPtr = std::unique_ptr<Kernel>;

/// Abstract stationary-or-not covariance function k(x, x').
class Kernel {
 public:
  virtual ~Kernel() = default;

  virtual KernelPtr clone() const = 0;

  /// Number of tunable hyperparameters.
  virtual std::size_t numParams() const = 0;

  /// Human-readable names, aligned with theta().
  virtual std::vector<std::string> paramNames() const = 0;

  /// Current hyperparameters, natural log of the positive values.
  virtual std::vector<double> theta() const = 0;

  /// Sets hyperparameters from log-space values (size must match).
  virtual void setTheta(std::span<const double> t) = 0;

  /// Log-space box bounds used during LML optimization.
  virtual opt::BoxBounds thetaBounds() const = 0;

  /// Covariance between two points (equal dimension).
  virtual double eval(std::span<const double> a,
                      std::span<const double> b) const = 0;

  /// Gradient of k(a, b) with respect to the *first* argument a, written
  /// into `grad` (same length as a). Default implementation uses central
  /// finite differences; the built-in kernels override with closed forms.
  /// This is what enables gradient-based continuous acquisition
  /// optimization (the paper's Sec. VI benefit of GPR).
  virtual void evalGradX(std::span<const double> a,
                         std::span<const double> b,
                         std::span<double> grad) const;

  /// Gram matrix K(X, X). Default builds from eval() exploiting symmetry.
  virtual la::Matrix gram(const la::Matrix& x) const;

  /// Gram matrix reusing precomputed pairwise distances. `cache` must have
  /// been synced to `x` (DistanceCache::sync); implementations verify
  /// `cache.matches(x)` and fall back to the uncached path on mismatch, so
  /// staleness can never corrupt results. Default ignores the cache.
  /// Stationary kernels override: only the pointwise k(s) function is
  /// re-evaluated per theta, distances come from the cache.
  virtual la::Matrix gram(const la::Matrix& x,
                          const DistanceCache& cache) const;

  /// Appends ∂K(X,X)/∂θ_j for each of this kernel's parameters to `grads`.
  /// `k` is the precomputed gram(x) of *this* kernel (an optimization —
  /// several kernels reuse it).
  virtual void gramGradients(const la::Matrix& x, const la::Matrix& k,
                             std::vector<la::Matrix>& grads) const = 0;

  /// Cached-distance variant of gramGradients; same contract as the cached
  /// gram() overload. Default ignores the cache.
  virtual void gramGradients(const la::Matrix& x, const la::Matrix& k,
                             const DistanceCache& cache,
                             std::vector<la::Matrix>& grads) const;

  /// Cross-covariance K(X, Y) (rows of X vs rows of Y).
  la::Matrix cross(const la::Matrix& x, const la::Matrix& y) const;

  /// Fills a pre-sized `out` (x.rows() × y.rows()) with K(X, Y),
  /// row-parallel. Entries are pointwise eval() calls, so the result is
  /// bit-identical to cross() regardless of thread count; the out-param
  /// form lets the GP batch predict reuse its workspace buffer.
  void crossInto(const la::Matrix& x, const la::Matrix& y,
                 la::Matrix& out) const;

  /// One row of K(X, Y): out[j] = k(a, y_j). The O(n·m)-total incremental
  /// step behind gp::PoolPredictCache — the train point is the first
  /// argument, matching cross()'s orientation.
  void crossRow(std::span<const double> a, const la::Matrix& y,
                std::span<double> out) const;

  /// Self-variances k(x_i, x_i) for each row.
  la::Vector diag(const la::Matrix& x) const;

  /// Compact description like "1.5**2 * RBF(l=[2.1])".
  virtual std::string describe() const = 0;
};

/// k1 + k2 with concatenated hyperparameters.
KernelPtr operator+(KernelPtr a, KernelPtr b);

/// k1 * k2 (elementwise) with concatenated hyperparameters.
KernelPtr operator*(KernelPtr a, KernelPtr b);

}  // namespace alperf::gp
