#include "gp/pool_predict_cache.hpp"

#include <algorithm>
#include <cstring>

#include "common/perf_stats.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "la/blas.hpp"

namespace alperf::gp {

namespace {

enum class SyncPath { Unavailable, Hit, Append, Rebuild };

const char* toString(SyncPath p) {
  switch (p) {
    case SyncPath::Hit:
      return "hit";
    case SyncPath::Append:
      return "append";
    case SyncPath::Rebuild:
      return "rebuild";
    default:
      return "unavailable";
  }
}

}  // namespace

void PoolPredictCache::pin(const la::Matrix& x,
                           std::span<const std::size_t> rows) {
  rows_.assign(rows.begin(), rows.end());
  pool_ = la::Matrix(rows_.size(), x.cols());
  std::size_t maxRow = 0;
  for (std::size_t c = 0; c < rows_.size(); ++c) {
    const std::size_t r = rows_[c];
    requireArg(r < x.rows(), "PoolPredictCache::pin: row id out of range");
    std::copy(x.row(r).begin(), x.row(r).end(), pool_.row(c).begin());
    maxRow = std::max(maxRow, r);
  }
  rowToCol_.assign(rows_.empty() ? 0 : maxRow + 1, kUnpinned);
  for (std::size_t c = 0; c < rows_.size(); ++c) rowToCol_[rows_[c]] = c;
  valid_ = false;
}

bool PoolPredictCache::sync(const GaussianProcess& gp) {
  SyncPath path = SyncPath::Unavailable;
  const std::size_t n = gp.x_.rows();
  // Identity of the cached products: posterior factorization version,
  // hyperparameters, la kernel mode, and a bitwise train-prefix snapshot.
  // The snapshot guards the one hole version+size cannot see: a *different*
  // GP object sharing the version id (e.g. a fantasy copy) that grew with
  // its own rows.
  std::vector<double> theta = gp.thetaFull();
  const bool blocked = la::blockedKernelsEnabled();
  const std::size_t d = gp.x_.cols();
  const bool keyMatches =
      valid_ && posteriorId_ == gp.posteriorId_ && blocked == builtBlocked_ &&
      theta == theta_ && n >= n_ &&
      (n_ == 0 || std::memcmp(xSnapshot_.data(), gp.x_.data().data(),
                              n_ * d * sizeof(double)) == 0);
  if (keyMatches && n == n_) {
    path = SyncPath::Hit;
    PerfRegistry::instance().increment("gp.poolcache.hit");
  } else if (keyMatches) {
    path = SyncPath::Append;
    PerfRegistry::instance().increment("gp.poolcache.append");
    appendRows(gp, n);
  } else {
    path = SyncPath::Rebuild;
    PerfRegistry::instance().increment("gp.poolcache.rebuild");
    theta_ = std::move(theta);
    builtBlocked_ = blocked;
    rebuild(gp);
  }
  trace::Span span("gp.poolcache");
  span.note("path", toString(path))
      .note("n", n)
      .note("pool", rows_.size());
  return true;
}

void PoolPredictCache::rebuild(const GaussianProcess& gp) {
  ScopedTimer timer("gp.poolcache.build");
  const std::size_t n = gp.x_.rows();
  const std::size_t m = rows_.size();
  posteriorId_ = gp.posteriorId_;
  n_ = n;
  kCross_.resize(n * m);
  kss_.resize(m);
  // K(train, pool): pointwise kernel evals, row-parallel (each thread owns
  // whole rows — bit-identical at any thread count).
  parallelFor(n, 8, [&](std::size_t i) {
    gp.kernel_->crossRow(gp.x_.row(i), pool_,
                         std::span<double>(kCross_.data() + i * m, m));
  });
  parallelFor(m, 8, [&](std::size_t j) {
    kss_[j] = gp.kernel_->eval(pool_.row(j), pool_.row(j));
  });
  // V = L⁻¹·K_cross through the same multi-RHS forward solve the batch
  // predict uses, so full-pool columns are bitwise what a direct predict
  // would compute.
  la::Matrix v(n, m, la::Vector(kCross_.begin(), kCross_.end()));
  gp.chol_->solveLowerInPlace(v);
  v_.assign(v.data().begin(), v.data().end());
  xSnapshot_.assign(gp.x_.data().begin(), gp.x_.data().end());
  valid_ = true;
}

void PoolPredictCache::appendRows(const GaussianProcess& gp,
                                  std::size_t newN) {
  ScopedTimer timer("gp.poolcache.build");
  const std::size_t m = rows_.size();
  const std::size_t d = gp.x_.cols();
  kCross_.resize(newN * m);
  v_.resize(newN * m);
  for (std::size_t t = n_; t < newN; ++t) {
    std::span<double> kcRow(kCross_.data() + t * m, m);
    gp.kernel_->crossRow(gp.x_.row(t), pool_, kcRow);
    std::span<double> vRow(v_.data() + t * m, m);
    std::copy(kcRow.begin(), kcRow.end(), vRow.begin());
    // Forward-substitute just the new row of V against the extended factor:
    // Cholesky::extend left rows [0, t) of L untouched, and row t of the
    // multi-RHS solve reads only rows < t, so this replays exactly what a
    // full solve would compute for row t. O(t·m) per appended row.
    la::trsmLowerNewRow(gp.chol_->factor().row(t).data(), t, v_.data(), m,
                        vRow);
  }
  xSnapshot_.resize(newN * d);
  std::copy(gp.x_.data().begin() + static_cast<std::ptrdiff_t>(n_ * d),
            gp.x_.data().end(),
            xSnapshot_.begin() + static_cast<std::ptrdiff_t>(n_ * d));
  n_ = newN;
}

bool PoolPredictCache::predict(const GaussianProcess& gp,
                               std::span<const std::size_t> rows,
                               bool includeNoise, Prediction& out) {
  if (!pinned() || rows.empty()) return false;
  if (!gp.fitted() || gp.priorOnly_) {
    // A prior-only posterior has no factorization to cache; the caller's
    // direct predict serves the degraded prior. Whatever was cached is for
    // a dead factorization — drop it.
    valid_ = false;
    return false;
  }
  if (!gp.config_.batchPredict) return false;  // cache mirrors the batch path
  if (pool_.cols() != gp.x_.cols()) return false;
  // Map global row ids to pinned columns; any unpinned id means the caller
  // is scoring something other than the pinned pool — fall back.
  colsScratch_.resize(rows.size());
  for (std::size_t idx = 0; idx < rows.size(); ++idx) {
    const std::size_t r = rows[idx];
    if (r >= rowToCol_.size() || rowToCol_[r] == kUnpinned) return false;
    colsScratch_[idx] = rowToCol_[r];
  }
  if (!sync(gp)) return false;
  ScopedTimer timer("gp.predict");
  const std::size_t n = n_;
  const std::size_t m = rows_.size();
  const std::size_t q = rows.size();
  // Gather the requested columns of K_cross and V, then run the *same*
  // reductions as the direct batch predict (la::matvecTransposed and
  // detail::batchVarianceReduce) over them. Since the gathered entries are
  // bitwise the entries a direct predict would compute, and the reductions
  // are the same compiled code over the same shapes, the served Prediction
  // is bitwise identical to gp.predict over these rows.
  if (gatherK_.rows() != n || gatherK_.cols() != q) {
    gatherK_ = la::Matrix(n, q);
    gatherV_ = la::Matrix(n, q);
  }
  la::Vector kssq(q);
  parallelFor(n, 8, [&](std::size_t i) {
    const double* kcRow = kCross_.data() + i * m;
    const double* vRow = v_.data() + i * m;
    double* gk = gatherK_.row(i).data();
    double* gv = gatherV_.row(i).data();
    for (std::size_t idx = 0; idx < q; ++idx) {
      gk[idx] = kcRow[colsScratch_[idx]];
      gv[idx] = vRow[colsScratch_[idx]];
    }
  });
  for (std::size_t idx = 0; idx < q; ++idx) kssq[idx] = kss_[colsScratch_[idx]];
  out.mean = la::matvecTransposed(gatherK_, gp.alpha_);
  detail::batchVarianceReduce(gatherV_, kssq, gp.noiseVar_, includeNoise,
                              out.variance);
  return true;
}

}  // namespace alperf::gp
