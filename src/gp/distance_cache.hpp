#pragma once

/// \file distance_cache.hpp
/// Precomputed pairwise geometry for the GP fit path.
///
/// One hyperparameter fit evaluates the LML at hundreds of theta values
/// across the multi-start optimizer, and every evaluation needs the train
/// Gram matrix and its gradients. The pairwise distances those matrices are
/// built from depend only on the *data*, not on theta — so they are computed
/// once per fit and every kernel evaluation reduces to the cheap pointwise
/// function k(s) of a cached scaled distance.
///
/// Invalidation contract (explicit, checked, never implicit):
///  - The cache snapshots the exact train matrix it was built from.
///    `matches(x)` is a bitwise comparison against that snapshot.
///  - `sync(x)` is the only mutation point. It is a no-op when the cache
///    matches, an O(k·n·d) append when `x` extends the snapshot by k rows
///    (the AL-loop refit case: points only accumulate), and a full O(n²·d)
///    rebuild otherwise.
///  - Hyperparameter changes never touch the cache — distances are
///    theta-independent by construction.
///  - Consumers (`Kernel::gram`/`gramGradients` cached overloads) verify
///    `matches(x)` and fall back to the uncached path on mismatch, so a
///    stale cache can cost speed but never correctness.
///
/// Owned by GaussianProcess, synced at the top of fit()/addObservation()
/// before any parallel region, then read-only — safe to share across the
/// multi-start optimizer threads.

#include <cstddef>

#include "la/matrix.hpp"

namespace alperf::gp {

class DistanceCache {
 public:
  /// True when the cache was built from exactly this matrix (bitwise).
  bool matches(const la::Matrix& x) const;

  /// Brings the cache in sync with `x` (see invalidation contract above).
  /// Bumps the gp.distcache.append / gp.distcache.rebuild counters.
  void sync(const la::Matrix& x);

  /// Drops everything; the next sync() rebuilds from scratch.
  void clear();

  bool empty() const { return x_.rows() == 0; }
  std::size_t numPoints() const { return x_.rows(); }
  std::size_t dim() const { return x_.cols(); }
  std::size_t numPairs() const {
    const std::size_t n = x_.rows();
    return n < 2 ? 0 : n * (n - 1) / 2;
  }

  /// Packed index of the unordered pair (i, j) with i < j. Pairs are
  /// grouped by the larger index: all pairs of point j occupy the
  /// contiguous range [j(j-1)/2, j(j+1)/2), so appending point n adds
  /// entries only at the end of the arrays.
  static std::size_t pairIndex(std::size_t i, std::size_t j) {
    return j * (j - 1) / 2 + i;
  }

  /// Unscaled squared Euclidean distance per pair, indexed by pairIndex().
  const la::Vector& squaredDistances() const { return sq_; }

  /// Per-dimension squared differences (a_m − b_m)², pair-major:
  /// squaredDiffs()[p·dim() + m]. What ARD gradients consume.
  const la::Vector& squaredDiffs() const { return sqDiff_; }

  /// The snapshot the cache was built from.
  const la::Matrix& points() const { return x_; }

 private:
  /// Fills pair entries for points [first, n) against all earlier points.
  void fillFrom(std::size_t first);

  la::Matrix x_;
  la::Vector sq_;
  la::Vector sqDiff_;
};

}  // namespace alperf::gp
