#pragma once

/// \file pool_predict_cache.hpp
/// Per-campaign posterior cache over a pinned candidate pool — the
/// prediction-side sibling of DistanceCache (fit-side).
///
/// The AL loop scores the *same* candidate pool against a posterior that
/// changes in one of two ways per iteration: a full refit (new
/// factorization, O(n³)) or an incremental addObservation (Cholesky
/// extension, O(n²)). Direct pool prediction recomputes
/// K_cross(train, pool) and the forward solve V = L⁻¹·K_cross from
/// scratch every time — O(n²·m) per iteration. This cache pins the pool
/// matrix once per campaign and keeps K_cross and V across iterations:
///
///  - **hit**: posterior unchanged since the last sync — scoring any
///    subset of the pool is a gathered O(n·|subset|) reduction over the
///    cached columns (counter `gp.poolcache.hit`).
///  - **append**: the grow-only incremental path. The posterior version
///    (GaussianProcess::posteriorVersion) is unchanged but the training
///    set grew — Cholesky::extend left rows [0, n) of L bitwise
///    untouched, and forward substitution of row t reads only rows < t,
///    so every cached row of V is still exact. Only the new rows of
///    K_cross (one kernel sweep) and of V (la::trsmLowerNewRow) are
///    computed: O(n·m) instead of O(n²·m) (counter
///    `gp.poolcache.append`).
///  - **rebuild**: anything else — new posterior version (full refit or
///    prior-only fallback installs a fresh process-unique version),
///    hyperparameter change, kernel-mode flip
///    (ALPERF_LA_KERNELS/setBlockedKernels), or a train-prefix mismatch
///    against the bitwise snapshot (e.g. a fantasy GP copy sharing the
///    version id) — recompute everything (counter
///    `gp.poolcache.rebuild`).
///
/// **Bit-identity contract**: served predictions are bitwise equal to
/// GaussianProcess::predict over the same rows with the batch engine, at
/// any thread count. This holds because (a) K_cross entries are pointwise
/// kernel evals, (b) the multi-RHS trsm treats columns independently, so
/// cached full-pool columns equal fresh subset-solve columns, (c) the
/// appended V row replays exactly the trsm's row arithmetic
/// (trsmLowerNewRow), and (d) the mean/variance reductions here use the
/// same ascending per-column chains as the batch predict tiles. The
/// learner asserts nothing weaker: AL traces must be bit-identical cache
/// on vs off.
///
/// The cache never serves stale data by construction: alpha and the noise
/// variance are read live from the GP at predict time, and every sync
/// revalidates version + theta + kernel mode + train prefix. When it
/// cannot serve (unpinned rows, prior-only GP, batch engine disabled) it
/// returns false and the caller falls back to direct prediction.
///
/// Not thread-safe: one cache per campaign loop, called from the
/// coordinating thread (the parallelism lives inside, in the kernel
/// sweeps and the scoring loop).

#include <cstdint>
#include <vector>

#include "gp/gp.hpp"
#include "la/matrix.hpp"

namespace alperf::gp {

class PoolPredictCache {
 public:
  /// Pins the candidate pool: gathers `x`'s rows listed in `rows` (global
  /// row ids) into an owned pool matrix and invalidates any cached
  /// posterior products. Call once per campaign loop (re-pinning after a
  /// checkpoint resume is what makes resume invalidation automatic).
  void pin(const la::Matrix& x, std::span<const std::size_t> rows);

  /// True once pin() has been called with a non-empty pool.
  bool pinned() const { return !rows_.empty(); }

  /// Number of pinned candidate rows.
  std::size_t poolSize() const { return rows_.size(); }

  /// Drops cached posterior products (the pool stays pinned). The next
  /// predict() rebuilds. Called by owners on events the version/theta
  /// fingerprints cannot see (e.g. explicit fault-recovery paths).
  void invalidate() { valid_ = false; }

  /// Predicts mean and latent-f variance at the pinned pool rows whose
  /// global ids are `rows`, into `out` (aligned with `rows`). Returns
  /// false — leaving `out` untouched — when the cache cannot serve:
  /// unpinned ids, unfitted or prior-only GP, or the GP's batch predict
  /// engine disabled. On success the result is bitwise identical to
  /// gp.predict over the same rows.
  bool predict(const GaussianProcess& gp, std::span<const std::size_t> rows,
               bool includeNoise, Prediction& out);

 private:
  /// Revalidates the cached products against the GP's current posterior:
  /// hit, append, or rebuild (see file comment). Returns false when the
  /// GP cannot be cached at all.
  bool sync(const GaussianProcess& gp);

  void rebuild(const GaussianProcess& gp);
  void appendRows(const GaussianProcess& gp, std::size_t newN);

  static constexpr std::size_t kUnpinned = static_cast<std::size_t>(-1);

  la::Matrix pool_;                    ///< m × d pinned candidate matrix
  std::vector<std::size_t> rows_;     ///< global row id of each pool row
  std::vector<std::size_t> rowToCol_; ///< dense global id → pool column

  bool valid_ = false;
  std::uint64_t posteriorId_ = 0;     ///< GP posterior version at build
  std::vector<double> theta_;         ///< thetaFull fingerprint at build
  bool builtBlocked_ = false;         ///< la kernel mode at build
  std::size_t n_ = 0;                 ///< cached train rows
  std::vector<double> kCross_;        ///< n_ × m row-major K(train, pool)
  std::vector<double> v_;             ///< n_ × m row-major L⁻¹·K_cross
  std::vector<double> kss_;           ///< k(p_j, p_j) per pool row
  std::vector<double> xSnapshot_;     ///< bitwise copy of train rows [0, n_)

  /// Per-predict scratch (column gather of the requested subset); reused
  /// across same-shape calls so the hit path is allocation-free.
  std::vector<std::size_t> colsScratch_;
  la::Matrix gatherK_;
  la::Matrix gatherV_;
};

}  // namespace alperf::gp
