#pragma once

/// \file kernels.hpp
/// Concrete covariance functions:
///   ConstantKernel      k = c                       (amplitude σ_f²)
///   RbfKernel           squared exponential, isotropic or ARD (paper eq. 11)
///   Matern32Kernel      Matérn ν = 3/2, isotropic or ARD
///   Matern52Kernel      Matérn ν = 5/2, isotropic or ARD
///   RationalQuadraticKernel  scale mixture of RBFs (params l, α)
///   SumKernel / ProductKernel  composition
///
/// All parameters live in natural-log space for optimization; bounds are
/// configurable per kernel (wide defaults of [1e-5, 1e5] on the natural
/// values).

#include "gp/kernel.hpp"

namespace alperf::gp {

/// Per-parameter positive bounds expressed on the *natural* (not log) scale.
struct PositiveBounds {
  double lo = 1e-5;
  double hi = 1e5;
};

/// Constant covariance k(a, b) = c. Used as an amplitude factor:
/// Constant(σ_f²) * RBF(l) is the paper's eq. (11).
class ConstantKernel final : public Kernel {
 public:
  explicit ConstantKernel(double value, PositiveBounds bounds = {});

  double value() const { return value_; }

  KernelPtr clone() const override;
  std::size_t numParams() const override { return 1; }
  std::vector<std::string> paramNames() const override;
  std::vector<double> theta() const override;
  void setTheta(std::span<const double> t) override;
  opt::BoxBounds thetaBounds() const override;
  double eval(std::span<const double> a,
              std::span<const double> b) const override;
  void evalGradX(std::span<const double> a, std::span<const double> b,
                 std::span<double> grad) const override;
  using Kernel::gramGradients;
  void gramGradients(const la::Matrix& x, const la::Matrix& k,
                     std::vector<la::Matrix>& grads) const override;
  std::string describe() const override;

 private:
  double value_;
  PositiveBounds bounds_;
};

/// Base for stationary kernels parameterized by per-dimension length
/// scales (one shared scale when constructed isotropic).
class StationaryKernel : public Kernel {
 public:
  /// Isotropic: one length scale for all input dimensions.
  explicit StationaryKernel(double lengthScale, PositiveBounds bounds = {});
  /// ARD: one length scale per input dimension.
  explicit StationaryKernel(std::vector<double> lengthScales,
                            PositiveBounds bounds = {});

  const std::vector<double>& lengthScales() const { return lengths_; }
  bool isotropic() const { return lengths_.size() == 1; }

  std::size_t numParams() const override { return lengths_.size(); }
  std::vector<std::string> paramNames() const override;
  std::vector<double> theta() const override;
  void setTheta(std::span<const double> t) override;
  opt::BoxBounds thetaBounds() const override;
  double eval(std::span<const double> a,
              std::span<const double> b) const override;
  void evalGradX(std::span<const double> a, std::span<const double> b,
                 std::span<double> grad) const override;
  using Kernel::gram;
  /// Cached path: s_ij = cached unscaled geometry · 1/l², so each theta
  /// evaluation costs one kOfS() per pair instead of a d-dim distance.
  la::Matrix gram(const la::Matrix& x,
                  const DistanceCache& cache) const override;
  void gramGradients(const la::Matrix& x, const la::Matrix& k,
                     std::vector<la::Matrix>& grads) const override;
  void gramGradients(const la::Matrix& x, const la::Matrix& k,
                     const DistanceCache& cache,
                     std::vector<la::Matrix>& grads) const override;

 protected:
  /// Scaled squared distance s = Σ_i (Δ_i / l_i)².
  double scaledSq(std::span<const double> a, std::span<const double> b) const;

  /// k as a function of s (the scaled squared distance).
  virtual double kOfS(double s) const = 0;

  /// ∂k/∂s at the given s (used with chain rule ∂s/∂log l_i = -2·Δ_i²/l_i²).
  virtual double dkds(double s) const = 0;

  std::string describeLengths() const;

  std::vector<double> lengths_;
  PositiveBounds bounds_;
};

/// Squared exponential / RBF: k = exp(-s/2) (paper eq. 11 without the
/// σ_f² factor — compose with ConstantKernel for the amplitude).
class RbfKernel final : public StationaryKernel {
 public:
  using StationaryKernel::StationaryKernel;
  KernelPtr clone() const override;
  std::string describe() const override;

 protected:
  double kOfS(double s) const override;
  double dkds(double s) const override;
};

/// Matérn ν = 3/2: k = (1 + √3·r)·exp(-√3·r), r = √s.
class Matern32Kernel final : public StationaryKernel {
 public:
  using StationaryKernel::StationaryKernel;
  KernelPtr clone() const override;
  std::string describe() const override;

 protected:
  double kOfS(double s) const override;
  double dkds(double s) const override;
};

/// Matérn ν = 5/2: k = (1 + √5·r + 5r²/3)·exp(-√5·r).
class Matern52Kernel final : public StationaryKernel {
 public:
  using StationaryKernel::StationaryKernel;
  KernelPtr clone() const override;
  std::string describe() const override;

 protected:
  double kOfS(double s) const override;
  double dkds(double s) const override;
};

/// Rational quadratic: k = (1 + s/(2α))^(-α); isotropic length scale l
/// plus mixture parameter α.
class RationalQuadraticKernel final : public Kernel {
 public:
  RationalQuadraticKernel(double lengthScale, double alpha,
                          PositiveBounds lengthBounds = {},
                          PositiveBounds alphaBounds = {});

  double lengthScale() const { return length_; }
  double alpha() const { return alpha_; }

  KernelPtr clone() const override;
  std::size_t numParams() const override { return 2; }
  std::vector<std::string> paramNames() const override;
  std::vector<double> theta() const override;
  void setTheta(std::span<const double> t) override;
  opt::BoxBounds thetaBounds() const override;
  double eval(std::span<const double> a,
              std::span<const double> b) const override;
  void evalGradX(std::span<const double> a, std::span<const double> b,
                 std::span<double> grad) const override;
  using Kernel::gram;
  la::Matrix gram(const la::Matrix& x,
                  const DistanceCache& cache) const override;
  void gramGradients(const la::Matrix& x, const la::Matrix& k,
                     std::vector<la::Matrix>& grads) const override;
  void gramGradients(const la::Matrix& x, const la::Matrix& k,
                     const DistanceCache& cache,
                     std::vector<la::Matrix>& grads) const override;
  std::string describe() const override;

 private:
  double length_;
  double alpha_;
  PositiveBounds lengthBounds_;
  PositiveBounds alphaBounds_;
};

/// Periodic (exp-sine-squared) kernel as a per-dimension product:
/// k = Π_i exp(-2·sin²(π·|a_i-b_i|/p) / l²) with shared period p and
/// length scale l. The product form keeps the kernel positive definite
/// in any input dimension (the Euclidean-distance variant is PSD only in
/// 1-D). Useful for performance responses with cyclic structure (e.g.
/// cache-set aliasing across power-of-two sizes).
class PeriodicKernel final : public Kernel {
 public:
  PeriodicKernel(double lengthScale, double period,
                 PositiveBounds lengthBounds = {},
                 PositiveBounds periodBounds = {});

  double lengthScale() const { return length_; }
  double period() const { return period_; }

  KernelPtr clone() const override;
  std::size_t numParams() const override { return 2; }
  std::vector<std::string> paramNames() const override;
  std::vector<double> theta() const override;
  void setTheta(std::span<const double> t) override;
  opt::BoxBounds thetaBounds() const override;
  double eval(std::span<const double> a,
              std::span<const double> b) const override;
  void evalGradX(std::span<const double> a, std::span<const double> b,
                 std::span<double> grad) const override;
  using Kernel::gramGradients;
  void gramGradients(const la::Matrix& x, const la::Matrix& k,
                     std::vector<la::Matrix>& grads) const override;
  std::string describe() const override;

 private:
  double length_;
  double period_;
  PositiveBounds lengthBounds_;
  PositiveBounds periodBounds_;
};

/// Composite: k = k1 + k2.
class SumKernel final : public Kernel {
 public:
  SumKernel(KernelPtr a, KernelPtr b);
  KernelPtr clone() const override;
  std::size_t numParams() const override;
  std::vector<std::string> paramNames() const override;
  std::vector<double> theta() const override;
  void setTheta(std::span<const double> t) override;
  opt::BoxBounds thetaBounds() const override;
  double eval(std::span<const double> a,
              std::span<const double> b) const override;
  void evalGradX(std::span<const double> a, std::span<const double> b,
                 std::span<double> grad) const override;
  la::Matrix gram(const la::Matrix& x) const override;
  la::Matrix gram(const la::Matrix& x,
                  const DistanceCache& cache) const override;
  void gramGradients(const la::Matrix& x, const la::Matrix& k,
                     std::vector<la::Matrix>& grads) const override;
  void gramGradients(const la::Matrix& x, const la::Matrix& k,
                     const DistanceCache& cache,
                     std::vector<la::Matrix>& grads) const override;
  std::string describe() const override;

 private:
  KernelPtr a_;
  KernelPtr b_;
};

/// Composite: k = k1 * k2 (elementwise product of Gram matrices).
class ProductKernel final : public Kernel {
 public:
  ProductKernel(KernelPtr a, KernelPtr b);
  KernelPtr clone() const override;
  std::size_t numParams() const override;
  std::vector<std::string> paramNames() const override;
  std::vector<double> theta() const override;
  void setTheta(std::span<const double> t) override;
  opt::BoxBounds thetaBounds() const override;
  double eval(std::span<const double> a,
              std::span<const double> b) const override;
  void evalGradX(std::span<const double> a, std::span<const double> b,
                 std::span<double> grad) const override;
  la::Matrix gram(const la::Matrix& x) const override;
  la::Matrix gram(const la::Matrix& x,
                  const DistanceCache& cache) const override;
  void gramGradients(const la::Matrix& x, const la::Matrix& k,
                     std::vector<la::Matrix>& grads) const override;
  void gramGradients(const la::Matrix& x, const la::Matrix& k,
                     const DistanceCache& cache,
                     std::vector<la::Matrix>& grads) const override;
  std::string describe() const override;

 private:
  KernelPtr a_;
  KernelPtr b_;
};

/// The paper's kernel (eq. 11): σ_f² · exp(-|a-b|²/(2 l²)), as
/// Constant(σ_f²) * RBF(l) with the given bounds on both parameters.
KernelPtr makeSquaredExponential(double sigmaF2, double lengthScale,
                                 PositiveBounds amplitudeBounds = {},
                                 PositiveBounds lengthBounds = {});

/// ARD variant with one length scale per input dimension.
KernelPtr makeSquaredExponentialArd(double sigmaF2,
                                    std::vector<double> lengthScales,
                                    PositiveBounds amplitudeBounds = {},
                                    PositiveBounds lengthBounds = {});

}  // namespace alperf::gp
