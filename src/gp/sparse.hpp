#pragma once

/// \file sparse.hpp
/// Sparse Gaussian Process approximation — the "available optimizations"
/// the paper plans to investigate for its computational-requirements
/// study (Sec. VI). Implements the Deterministic Training Conditional
/// (DTC / projected process) approximation (Rasmussen & Williams ch. 8):
/// m inducing points u drawn from the training inputs give
///
///   Σ  = (σ_n²·K_uu + K_uf·K_fu)⁻¹
///   µ* = k_*uᵀ · Σ · K_uf · y
///   v* = k_** − k_*uᵀ K_uu⁻¹ k_*u + σ_n²·k_*uᵀ Σ k_*u
///
/// Fitting costs O(n·m²) instead of O(n³); each prediction O(m²). With
/// m = n the approximation is exact (a property the tests pin down).
/// Hyperparameters are taken as given (e.g. borrowed from an exact GP fit
/// on a subsample); DTC hyperparameter optimization is out of scope.

#include "gp/gp.hpp"

namespace alperf::gp {

enum class InducingSelection {
  UniformRandom,
  /// Farthest-point (max-min distance) sampling: greedy 2-approximation
  /// of the k-center problem; spreads inducing points over the inputs.
  FarthestPoint,
};

struct SparseGpConfig {
  std::size_t numInducing = 64;
  InducingSelection selection = InducingSelection::FarthestPoint;
  double noiseVariance = 1e-2;  ///< σ_n² (fixed, not optimized)
  /// Relative jitter added to K_uu for numerical stability.
  double jitter = 1e-10;
};

class SparseGaussianProcess {
 public:
  /// Takes ownership of the kernel; its current hyperparameters are used
  /// as-is throughout.
  SparseGaussianProcess(KernelPtr kernel, SparseGpConfig config = {});

  /// Selects inducing points from the rows of x and computes the DTC
  /// posterior. numInducing is clamped to n.
  void fit(la::Matrix x, la::Vector y, stats::Rng& rng);

  bool fitted() const { return !inducing_.empty(); }

  /// Predictive mean and DTC latent variance per row of xStar.
  Prediction predict(const la::Matrix& xStar) const;

  std::pair<double, double> predictOne(std::span<const double> x) const;

  /// Indices (into the fitted x) of the chosen inducing points.
  const std::vector<std::size_t>& inducingIndices() const {
    return inducing_;
  }

  std::size_t numInducing() const { return inducing_.size(); }
  const Kernel& kernel() const { return *kernel_; }
  const SparseGpConfig& config() const { return config_; }

 private:
  KernelPtr kernel_;
  SparseGpConfig config_;

  la::Matrix xu_;  ///< m×d inducing inputs
  std::vector<std::size_t> inducing_;
  std::unique_ptr<la::Cholesky> kuuChol_;    ///< chol(K_uu + jitter)
  std::unique_ptr<la::Cholesky> sigmaChol_;  ///< chol(σ_n²K_uu + K_uf K_fu)
  la::Vector beta_;                          ///< Σ·K_uf·y
};

/// Farthest-point subset of the rows of x (exposed for tests): starts
/// from a random row, then repeatedly adds the row farthest from the
/// current set.
std::vector<std::size_t> farthestPointSubset(const la::Matrix& x,
                                             std::size_t m,
                                             stats::Rng& rng);

}  // namespace alperf::gp
