// Tests for covariance functions (gp/kernels.hpp): values, hyperparameter
// round-trips, Gram-matrix structure, and — critically — analytic
// ∂K/∂θ gradients verified against central differences for every kernel.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "gp/kernels.hpp"
#include "la/cholesky.hpp"

namespace gp = alperf::gp;
namespace la = alperf::la;

namespace {

la::Matrix testPoints(std::size_t n, std::size_t d, int seed = 1) {
  la::Matrix x(n, d);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < d; ++j)
      x(i, j) = std::sin(static_cast<double>((i + 1) * (j + 2) * seed)) * 2.0;
  return x;
}

using KernelFactory = std::function<gp::KernelPtr()>;

struct NamedFactory {
  std::string name;
  KernelFactory make;
  std::size_t inputDim;
};

std::vector<NamedFactory> allKernels() {
  return {
      {"constant", [] { return std::make_unique<gp::ConstantKernel>(2.5); },
       2},
      {"rbf_iso", [] { return std::make_unique<gp::RbfKernel>(0.7); }, 2},
      {"rbf_ard",
       [] {
         return std::make_unique<gp::RbfKernel>(
             std::vector<double>{0.5, 1.5, 0.9});
       },
       3},
      {"matern32", [] { return std::make_unique<gp::Matern32Kernel>(1.2); },
       2},
      {"matern52",
       [] {
         return std::make_unique<gp::Matern52Kernel>(
             std::vector<double>{0.8, 1.1});
       },
       2},
      {"rq",
       [] {
         return std::make_unique<gp::RationalQuadraticKernel>(0.9, 1.7);
       },
       2},
      {"const_times_rbf",
       [] { return gp::makeSquaredExponential(1.8, 0.6); }, 2},
      {"sum",
       [] {
         return std::make_unique<gp::RbfKernel>(0.5) +
                std::make_unique<gp::Matern32Kernel>(1.5);
       },
       2},
      {"periodic",
       [] { return std::make_unique<gp::PeriodicKernel>(0.9, 2.3); }, 2},
      {"periodic_times_rbf",
       [] {
         return std::make_unique<gp::PeriodicKernel>(1.1, 3.0) *
                std::make_unique<gp::RbfKernel>(2.0);
       },
       2},
      {"product_of_sum",
       [] {
         return std::make_unique<gp::ConstantKernel>(1.3) *
                (std::make_unique<gp::RbfKernel>(0.8) +
                 std::make_unique<gp::ConstantKernel>(0.2));
       },
       2},
  };
}

}  // namespace

class KernelSuite : public ::testing::TestWithParam<NamedFactory> {};

TEST_P(KernelSuite, EvalIsSymmetric) {
  const auto k = GetParam().make();
  const la::Matrix x = testPoints(5, GetParam().inputDim);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 5; ++j)
      EXPECT_DOUBLE_EQ(k->eval(x.row(i), x.row(j)),
                       k->eval(x.row(j), x.row(i)));
}

TEST_P(KernelSuite, GramMatchesEval) {
  const auto k = GetParam().make();
  const la::Matrix x = testPoints(6, GetParam().inputDim);
  const la::Matrix g = k->gram(x);
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j)
      EXPECT_NEAR(g(i, j), k->eval(x.row(i), x.row(j)), 1e-13);
}

TEST_P(KernelSuite, GramIsPsdWithJitter) {
  const auto k = GetParam().make();
  const la::Matrix x = testPoints(8, GetParam().inputDim);
  la::Matrix g = k->gram(x);
  g.addToDiagonal(1e-8 * (g.maxAbs() + 1.0));
  EXPECT_NO_THROW(la::Cholesky{std::move(g)});
}

TEST_P(KernelSuite, ThetaRoundTrips) {
  const auto k = GetParam().make();
  const auto theta = k->theta();
  EXPECT_EQ(theta.size(), k->numParams());
  EXPECT_EQ(k->paramNames().size(), k->numParams());
  auto clone = k->clone();
  // Perturb then restore.
  auto perturbed = theta;
  for (double& t : perturbed) t += 0.3;
  clone->setTheta(perturbed);
  const auto got = clone->theta();
  for (std::size_t i = 0; i < theta.size(); ++i)
    EXPECT_NEAR(got[i], theta[i] + 0.3, 1e-12);
  clone->setTheta(theta);
  const la::Matrix x = testPoints(4, GetParam().inputDim);
  EXPECT_NEAR(clone->eval(x.row(0), x.row(1)), k->eval(x.row(0), x.row(1)),
              1e-13);
}

TEST_P(KernelSuite, SetThetaWrongSizeThrows) {
  const auto k = GetParam().make();
  std::vector<double> bad(k->numParams() + 1, 0.0);
  EXPECT_THROW(k->setTheta(bad), std::invalid_argument);
}

TEST_P(KernelSuite, BoundsAlignedWithTheta) {
  const auto k = GetParam().make();
  const auto b = k->thetaBounds();
  EXPECT_EQ(b.dim(), k->numParams());
  EXPECT_TRUE(b.contains(k->theta(), 1e-9));
}

TEST_P(KernelSuite, CloneIsIndependent) {
  const auto k = GetParam().make();
  auto clone = k->clone();
  auto theta = clone->theta();
  for (double& t : theta) t += 1.0;
  clone->setTheta(theta);
  const la::Matrix x = testPoints(3, GetParam().inputDim);
  // Original unchanged.
  const auto fresh = GetParam().make();
  EXPECT_NEAR(k->eval(x.row(0), x.row(1)), fresh->eval(x.row(0), x.row(1)),
              1e-13);
}

TEST_P(KernelSuite, AnalyticGradientsMatchNumeric) {
  const auto k = GetParam().make();
  const la::Matrix x = testPoints(5, GetParam().inputDim, 2);
  std::vector<la::Matrix> grads;
  k->gramGradients(x, k->gram(x), grads);
  ASSERT_EQ(grads.size(), k->numParams());

  const auto theta0 = k->theta();
  const double h = 1e-6;
  for (std::size_t p = 0; p < theta0.size(); ++p) {
    auto tp = theta0;
    tp[p] += h;
    auto km = k->clone();
    km->setTheta(tp);
    const la::Matrix gPlus = km->gram(x);
    tp[p] = theta0[p] - h;
    km->setTheta(tp);
    const la::Matrix gMinus = km->gram(x);
    for (std::size_t i = 0; i < x.rows(); ++i)
      for (std::size_t j = 0; j < x.rows(); ++j) {
        const double numeric = (gPlus(i, j) - gMinus(i, j)) / (2.0 * h);
        EXPECT_NEAR(grads[p](i, j), numeric, 1e-5)
            << GetParam().name << " param " << p << " entry (" << i << ","
            << j << ")";
      }
  }
}

TEST_P(KernelSuite, DescribeIsNonEmpty) {
  EXPECT_FALSE(GetParam().make()->describe().empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelSuite, ::testing::ValuesIn(allKernels()),
    [](const ::testing::TestParamInfo<NamedFactory>& paramInfo) {
      return paramInfo.param.name;
    });

// ------------------------------------------------ kernel-specific values

TEST(RbfKernel, MatchesClosedForm) {
  gp::RbfKernel k(2.0);
  const std::vector<double> a{0.0, 0.0};
  const std::vector<double> b{1.0, 1.0};
  // exp(-|a-b|²/(2l²)) = exp(-2/8).
  EXPECT_NEAR(k.eval(a, b), std::exp(-0.25), 1e-14);
  EXPECT_DOUBLE_EQ(k.eval(a, a), 1.0);
}

TEST(RbfKernel, ArdScalesPerDimension) {
  gp::RbfKernel k(std::vector<double>{1.0, 10.0});
  const std::vector<double> origin{0.0, 0.0};
  // A unit step along the short-scale axis decays much more.
  const double alongX = k.eval(origin, std::vector<double>{1.0, 0.0});
  const double alongY = k.eval(origin, std::vector<double>{0.0, 1.0});
  EXPECT_LT(alongX, alongY);
}

TEST(RbfKernel, ShorterLengthScaleDecaysFaster) {
  gp::RbfKernel wide(2.0), narrow(0.5);
  const std::vector<double> a{0.0};
  const std::vector<double> b{1.0};
  EXPECT_LT(narrow.eval(a, b), wide.eval(a, b));
}

TEST(ConstantKernel, IsConstantEverywhere) {
  gp::ConstantKernel k(3.5);
  EXPECT_DOUBLE_EQ(k.eval(std::vector<double>{0.0}, std::vector<double>{9.0}),
                   3.5);
  EXPECT_THROW(gp::ConstantKernel(-1.0), std::invalid_argument);
}

TEST(MaternKernels, UnitAtZeroAndDecay) {
  gp::Matern32Kernel m32(1.0);
  gp::Matern52Kernel m52(1.0);
  const std::vector<double> a{0.0};
  EXPECT_DOUBLE_EQ(m32.eval(a, a), 1.0);
  EXPECT_DOUBLE_EQ(m52.eval(a, a), 1.0);
  const std::vector<double> b{1.0};
  EXPECT_LT(m32.eval(a, b), 1.0);
  EXPECT_GT(m32.eval(a, b), 0.0);
  // Matérn 5/2 is smoother: closer to the RBF, larger at moderate range
  // than 3/2.
  EXPECT_GT(m52.eval(a, b), m32.eval(a, b));
}

TEST(Matern32Kernel, ClosedFormValue) {
  gp::Matern32Kernel k(1.0);
  const double r = 1.5;
  const double a = std::sqrt(3.0) * r;
  EXPECT_NEAR(k.eval(std::vector<double>{0.0}, std::vector<double>{r}),
              (1.0 + a) * std::exp(-a), 1e-14);
}

TEST(RationalQuadratic, ApproachesRbfForLargeAlpha) {
  gp::RationalQuadraticKernel rq(1.0, 1e6);
  gp::RbfKernel rbf(1.0);
  const std::vector<double> a{0.0};
  const std::vector<double> b{1.3};
  EXPECT_NEAR(rq.eval(a, b), rbf.eval(a, b), 1e-4);
}

TEST(RationalQuadratic, ClosedFormValue) {
  gp::RationalQuadraticKernel k(2.0, 0.5);
  const double s = 9.0 / 4.0;  // (3/2)²
  EXPECT_NEAR(k.eval(std::vector<double>{0.0}, std::vector<double>{3.0}),
              std::pow(1.0 + s / (2.0 * 0.5), -0.5), 1e-14);
}

TEST(CompositeKernels, SumAndProductValues) {
  auto sum = std::make_unique<gp::ConstantKernel>(2.0) +
             std::make_unique<gp::ConstantKernel>(3.0);
  auto prod = std::make_unique<gp::ConstantKernel>(2.0) *
              std::make_unique<gp::ConstantKernel>(3.0);
  const std::vector<double> x{0.0};
  EXPECT_DOUBLE_EQ(sum->eval(x, x), 5.0);
  EXPECT_DOUBLE_EQ(prod->eval(x, x), 6.0);
  EXPECT_EQ(sum->numParams(), 2u);
  EXPECT_EQ(prod->numParams(), 2u);
}

TEST(CompositeKernels, ThetaConcatenation) {
  auto k = gp::makeSquaredExponential(4.0, 0.5);
  const auto theta = k->theta();
  ASSERT_EQ(theta.size(), 2u);
  EXPECT_NEAR(theta[0], std::log(4.0), 1e-14);
  EXPECT_NEAR(theta[1], std::log(0.5), 1e-14);
}

TEST(CompositeKernels, PaperEquation11) {
  // σ_f²·exp(-|a-b|²/(2l²)) with σ_f² = 2.25, l = 0.8.
  auto k = gp::makeSquaredExponential(2.25, 0.8);
  const std::vector<double> a{0.2};
  const std::vector<double> b{1.0};
  const double d2 = 0.64;
  EXPECT_NEAR(k->eval(a, b), 2.25 * std::exp(-d2 / (2.0 * 0.64)), 1e-13);
}

TEST(Kernel, CrossMatrixShape) {
  auto k = gp::makeSquaredExponential(1.0, 1.0);
  const la::Matrix x = testPoints(4, 2);
  const la::Matrix y = testPoints(3, 2, 9);
  const la::Matrix c = k->cross(x, y);
  EXPECT_EQ(c.rows(), 4u);
  EXPECT_EQ(c.cols(), 3u);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_NEAR(c(i, j), k->eval(x.row(i), y.row(j)), 1e-14);
}

TEST(Kernel, DiagMatchesEval) {
  auto k = gp::makeSquaredExponential(3.0, 1.0);
  const la::Matrix x = testPoints(5, 2);
  const la::Vector d = k->diag(x);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(d[i], 3.0, 1e-14);
}

TEST(PeriodicKernel, ExactPeriodicity) {
  gp::PeriodicKernel k(1.0, 2.0);
  const std::vector<double> a{0.3};
  // Shifting by the period leaves the covariance unchanged.
  EXPECT_NEAR(k.eval(a, std::vector<double>{1.1}),
              k.eval(a, std::vector<double>{3.1}), 1e-12);
  EXPECT_DOUBLE_EQ(k.eval(a, a), 1.0);
  // At a full period offset, correlation returns to 1.
  EXPECT_NEAR(k.eval(a, std::vector<double>{2.3}), 1.0, 1e-12);
  EXPECT_THROW(gp::PeriodicKernel(1.0, 0.0), std::invalid_argument);
}

TEST(StationaryKernel, ValidationErrors) {
  EXPECT_THROW(gp::RbfKernel(0.0), std::invalid_argument);
  EXPECT_THROW(gp::RbfKernel(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(gp::RbfKernel(std::vector<double>{1.0, -1.0}),
               std::invalid_argument);
  EXPECT_THROW(gp::RationalQuadraticKernel(1.0, 0.0), std::invalid_argument);
}
