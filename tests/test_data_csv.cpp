// Tests for CSV I/O (data/csv.hpp): round-trips, type inference, quoting.

#include "data/csv.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace data = alperf::data;
using data::ColumnType;
using data::Table;

TEST(Csv, ReadSimple) {
  std::istringstream in("a,b\n1,x\n2,y\n");
  const Table t = data::readCsv(in);
  EXPECT_EQ(t.numRows(), 2u);
  EXPECT_EQ(t.column("a").type, ColumnType::Numeric);
  EXPECT_EQ(t.column("b").type, ColumnType::Categorical);
  EXPECT_DOUBLE_EQ(t.numeric("a")[1], 2.0);
  EXPECT_EQ(t.categorical("b")[0], "x");
}

TEST(Csv, TypeInferenceMixedColumnIsCategorical) {
  std::istringstream in("v\n1\nnot-a-number\n");
  const Table t = data::readCsv(in);
  EXPECT_EQ(t.column("v").type, ColumnType::Categorical);
}

TEST(Csv, ScientificNotationIsNumeric) {
  std::istringstream in("v\n1.5e3\n-2e-4\n");
  const Table t = data::readCsv(in);
  EXPECT_EQ(t.column("v").type, ColumnType::Numeric);
  EXPECT_DOUBLE_EQ(t.numeric("v")[0], 1500.0);
}

TEST(Csv, EmptyInputThrows) {
  std::istringstream in("");
  EXPECT_THROW(data::readCsv(in), std::invalid_argument);
}

TEST(Csv, HeaderOnlyGivesEmptyTable) {
  std::istringstream in("a,b\n");
  const Table t = data::readCsv(in);
  EXPECT_EQ(t.numRows(), 0u);
  EXPECT_EQ(t.numCols(), 2u);
}

TEST(Csv, RaggedRowThrows) {
  std::istringstream in("a,b\n1,2\n3\n");
  EXPECT_THROW(data::readCsv(in), std::invalid_argument);
}

TEST(Csv, BlankLinesSkipped) {
  std::istringstream in("a\n1\n\n2\n");
  const Table t = data::readCsv(in);
  EXPECT_EQ(t.numRows(), 2u);
}

TEST(Csv, QuotedCellsWithCommasAndQuotes) {
  std::istringstream in("name,v\n\"hello, world\",1\n\"say \"\"hi\"\"\",2\n");
  const Table t = data::readCsv(in);
  EXPECT_EQ(t.categorical("name")[0], "hello, world");
  EXPECT_EQ(t.categorical("name")[1], "say \"hi\"");
}

TEST(Csv, QuotedCellWithEmbeddedNewline) {
  std::istringstream in("name,v\n\"two\nlines\",1\n");
  const Table t = data::readCsv(in);
  EXPECT_EQ(t.categorical("name")[0], "two\nlines");
}

TEST(Csv, UnterminatedQuoteThrows) {
  std::istringstream in("name\n\"oops\n");
  EXPECT_THROW(data::readCsv(in), std::invalid_argument);
}

TEST(Csv, CrlfLineEndingsHandled) {
  std::istringstream in("a,b\r\n1,2\r\n");
  const Table t = data::readCsv(in);
  EXPECT_EQ(t.numRows(), 1u);
  EXPECT_DOUBLE_EQ(t.numeric("b")[0], 2.0);
}

TEST(Csv, RoundTripPreservesEverything) {
  Table t;
  t.addCategorical("op", {"poisson1", "a,b", "with \"quote\""});
  t.addNumeric("size", {1.7e3, 1.1e9, 0.005});
  t.addNumeric("neg", {-1.5, 0.0, 42.0});

  std::ostringstream out;
  data::writeCsv(t, out);
  std::istringstream in(out.str());
  const Table back = data::readCsv(in);

  EXPECT_EQ(back.numRows(), 3u);
  EXPECT_EQ(back.categorical("op")[1], "a,b");
  EXPECT_EQ(back.categorical("op")[2], "with \"quote\"");
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(back.numeric("size")[i], t.numeric("size")[i]);
    EXPECT_DOUBLE_EQ(back.numeric("neg")[i], t.numeric("neg")[i]);
  }
}

TEST(Csv, RoundTripDoublePrecision) {
  Table t;
  t.addNumeric("v", {1.0 / 3.0, 2.718281828459045, 1e-300});
  std::ostringstream out;
  data::writeCsv(t, out);
  std::istringstream in(out.str());
  const Table back = data::readCsv(in);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_DOUBLE_EQ(back.numeric("v")[i], t.numeric("v")[i]);
}

TEST(Csv, WriteQuotesHeaderWhenNeeded) {
  Table t;
  t.addNumeric("weird,name", {1.0});
  std::ostringstream out;
  data::writeCsv(t, out);
  EXPECT_NE(out.str().find("\"weird,name\""), std::string::npos);
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW(data::readCsv("/nonexistent/path.csv"), std::runtime_error);
}

TEST(CsvValidation, NonFiniteValueRejectedWithDiagnostics) {
  std::istringstream in("a,v\nx,1\ny,nan\n");
  try {
    data::readCsv(in);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("non-finite"), std::string::npos) << msg;
    EXPECT_NE(msg.find("column 'v'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("row 2"), std::string::npos) << msg;
  }
}

TEST(CsvValidation, InfinityRejected) {
  std::istringstream in("v\n1\n-inf\n");
  EXPECT_THROW(data::readCsv(in), std::invalid_argument);
}

TEST(CsvValidation, NonFiniteOptOutReadsValues) {
  std::istringstream in("v\n1\nnan\ninf\n");
  const Table t = data::readCsv(in, {.rejectNonFinite = false});
  EXPECT_EQ(t.column("v").type, ColumnType::Numeric);
  EXPECT_DOUBLE_EQ(t.numeric("v")[0], 1.0);
  EXPECT_TRUE(std::isnan(t.numeric("v")[1]));
  EXPECT_TRUE(std::isinf(t.numeric("v")[2]));
}

TEST(CsvValidation, MalformedNumericCellRejectedWithDiagnostics) {
  // "2.5.3" parses as a numeric prefix: a mangled export, not a
  // categorical value.
  std::istringstream in("v\n1\n2.5.3\n");
  try {
    data::readCsv(in);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("malformed"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'2.5.3'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("column 'v'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("row 2"), std::string::npos) << msg;
  }
}

TEST(CsvValidation, MalformedOptOutFallsBackToCategorical) {
  std::istringstream in("v\n1\n2.5.3\n");
  const Table t = data::readCsv(in, {.rejectMalformedNumeric = false});
  EXPECT_EQ(t.column("v").type, ColumnType::Categorical);
  EXPECT_EQ(t.categorical("v")[1], "2.5.3");
}

TEST(CsvValidation, TrulyCategoricalColumnUnaffected) {
  // A cell with no numeric prefix at all keeps the column categorical
  // under the default (strict) options.
  std::istringstream in("v\n1\n2.5.3\nnot-a-number\n");
  const Table t = data::readCsv(in);
  EXPECT_EQ(t.column("v").type, ColumnType::Categorical);
}
