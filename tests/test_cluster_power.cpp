// Tests for the power substrate (cluster/power.hpp): node power model,
// IPMI sampling with outages, and trace-based energy estimation with the
// paper's exclusion rule.

#include "cluster/power.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cl = alperf::cluster;
using cl::EnergyEstimator;
using cl::IpmiSampler;
using cl::LoadInterval;
using cl::NodeTrace;
using cl::PowerModel;
using cl::PowerSample;

TEST(PowerModel, IdleAndFullLoad) {
  const PowerModel m;
  const double idle = m.nodePower(0.0, 2.4);
  const double full = m.nodePower(1.0, 2.4);
  EXPECT_NEAR(idle, m.params().idleWatts, 1e-12);
  EXPECT_NEAR(full, m.params().idleWatts + m.params().dynamicWatts, 1e-12);
}

TEST(PowerModel, FrequencyScalingQuadratic) {
  const PowerModel m;
  const double atHalf = m.nodePower(1.0, 1.2) - m.params().idleWatts;
  const double atFull = m.nodePower(1.0, 2.4) - m.params().idleWatts;
  EXPECT_NEAR(atFull / atHalf, 4.0, 1e-9);
}

TEST(PowerModel, Validation) {
  const PowerModel m;
  EXPECT_THROW(m.nodePower(-0.1, 2.4), std::invalid_argument);
  EXPECT_THROW(m.nodePower(1.1, 2.4), std::invalid_argument);
  EXPECT_THROW(m.nodePower(0.5, 0.0), std::invalid_argument);
}

TEST(PowerModel, LoadScheduleOverlapsAdd) {
  const PowerModel m;
  std::vector<LoadInterval> load{
      {0.0, 100.0, 0.5, 2.4},
      {50.0, 150.0, 0.5, 2.4},
  };
  const double during1 = m.nodePowerAt(25.0, load);
  const double duringBoth = m.nodePowerAt(75.0, load);
  const double after = m.nodePowerAt(200.0, load);
  EXPECT_GT(duringBoth, during1);
  EXPECT_LT(after, during1);
  // Utilization caps at 1.
  std::vector<LoadInterval> heavy{{0.0, 10.0, 0.9, 2.4},
                                  {0.0, 10.0, 0.9, 2.4}};
  EXPECT_LE(m.nodePowerAt(5.0, heavy),
            m.nodePower(1.0, 2.4) + m.params().wanderWatts + 1e-9);
}

TEST(NodeTrace, WindowRange) {
  NodeTrace t;
  for (int i = 0; i < 10; ++i)
    t.samples.push_back({static_cast<double>(i), 100.0});
  const auto [lo, hi] = t.windowRange(2.5, 6.5);
  EXPECT_EQ(lo, 3u);
  EXPECT_EQ(hi, 7u);
  const auto [l2, h2] = t.windowRange(100.0, 200.0);
  EXPECT_EQ(l2, h2);
}

TEST(IpmiSampler, ProducesMonotoneTimestamps) {
  cl::IpmiSamplerParams sp;
  sp.meanDownSeconds = 0.0;  // no outages
  const IpmiSampler sampler{PowerModel(), sp};
  alperf::stats::Rng rng(1);
  const auto trace = sampler.sample(0, {}, 0.0, 600.0, rng);
  ASSERT_GT(trace.samples.size(), 50u);
  for (std::size_t i = 1; i < trace.samples.size(); ++i)
    EXPECT_GT(trace.samples[i].time, trace.samples[i - 1].time);
}

TEST(IpmiSampler, SampleCountMatchesPeriod) {
  cl::IpmiSamplerParams sp;
  sp.periodSeconds = 5.0;
  sp.meanDownSeconds = 0.0;
  const IpmiSampler sampler{PowerModel(), sp};
  alperf::stats::Rng rng(2);
  const auto trace = sampler.sample(0, {}, 0.0, 3000.0, rng);
  EXPECT_NEAR(static_cast<double>(trace.samples.size()), 600.0, 30.0);
}

TEST(IpmiSampler, OutagesCreateGaps) {
  cl::IpmiSamplerParams sp;
  sp.periodSeconds = 5.0;
  sp.meanUpSeconds = 100.0;
  sp.meanDownSeconds = 100.0;
  const IpmiSampler sampler{PowerModel(), sp};
  alperf::stats::Rng rng(3);
  const auto trace = sampler.sample(0, {}, 0.0, 5000.0, rng);
  // Roughly half the samples of a gap-free trace.
  EXPECT_LT(trace.samples.size(), 750u);
  EXPECT_GT(trace.samples.size(), 250u);
  double maxGap = 0.0;
  for (std::size_t i = 1; i < trace.samples.size(); ++i)
    maxGap = std::max(maxGap,
                      trace.samples[i].time - trace.samples[i - 1].time);
  EXPECT_GT(maxGap, 30.0);
}

TEST(IpmiSampler, TracksLoad) {
  cl::IpmiSamplerParams sp;
  sp.meanDownSeconds = 0.0;
  sp.measurementNoiseWatts = 0.0;
  sp.quantizationWatts = 0.0;
  const PowerModel pm;
  const IpmiSampler sampler{pm, sp};
  alperf::stats::Rng rng(4);
  std::vector<LoadInterval> load{{1000.0, 2000.0, 1.0, 2.4}};
  const auto trace = sampler.sample(0, load, 0.0, 3000.0, rng);
  double idleSum = 0.0, busySum = 0.0;
  int idleN = 0, busyN = 0;
  for (const auto& s : trace.samples) {
    if (s.time > 1000.0 && s.time < 2000.0) {
      busySum += s.watts;
      ++busyN;
    } else {
      idleSum += s.watts;
      ++idleN;
    }
  }
  ASSERT_GT(idleN, 10);
  ASSERT_GT(busyN, 10);
  EXPECT_NEAR(busySum / busyN - idleSum / idleN, pm.params().dynamicWatts,
              5.0);
}

namespace {

NodeTrace denseTrace(double begin, double end, double period, double watts) {
  NodeTrace t;
  for (double x = begin; x <= end; x += period) t.samples.push_back({x, watts});
  return t;
}

}  // namespace

TEST(EnergyEstimator, ConstantPowerIntegratesExactly) {
  const NodeTrace t = denseTrace(0.0, 1000.0, 5.0, 200.0);
  const EnergyEstimator est;
  const auto e = est.estimate({&t}, 100.0, 400.0);
  ASSERT_TRUE(e.valid);
  EXPECT_NEAR(e.joules, 200.0 * 300.0, 1.0);
  EXPECT_GT(e.samples, 50);
}

TEST(EnergyEstimator, MultiNodeSums) {
  const NodeTrace a = denseTrace(0.0, 1000.0, 5.0, 150.0);
  const NodeTrace b = denseTrace(0.0, 1000.0, 5.0, 250.0);
  const EnergyEstimator est;
  const auto e = est.estimate({&a, &b}, 0.0, 600.0);
  ASSERT_TRUE(e.valid);
  EXPECT_NEAR(e.joules, (150.0 + 250.0) * 600.0, 2.0);
}

TEST(EnergyEstimator, SparseTraceInvalid) {
  // 30 s period → 2 samples per minute < required 10.
  const NodeTrace t = denseTrace(0.0, 1000.0, 30.0, 200.0);
  const EnergyEstimator est;
  const auto e = est.estimate({&t}, 100.0, 400.0);
  EXPECT_FALSE(e.valid);
}

TEST(EnergyEstimator, InternalGapInvalidates) {
  NodeTrace t = denseTrace(0.0, 200.0, 5.0, 200.0);
  // Carve a 60-second hole in the middle.
  std::erase_if(t.samples, [](const PowerSample& s) {
    return s.time > 80.0 && s.time < 140.0;
  });
  const EnergyEstimator est;
  const auto e = est.estimate({&t}, 50.0, 180.0);
  EXPECT_FALSE(e.valid);
}

TEST(EnergyEstimator, EdgeGapInvalidates) {
  // Trace starts 30 s after the window begins.
  const NodeTrace t = denseTrace(130.0, 400.0, 5.0, 200.0);
  const EnergyEstimator est;
  const auto e = est.estimate({&t}, 100.0, 300.0);
  EXPECT_FALSE(e.valid);
}

TEST(EnergyEstimator, ShortWindowNeedsOnlyTwoSamples) {
  const NodeTrace t = denseTrace(0.0, 100.0, 5.0, 180.0);
  const EnergyEstimator est;
  // 12-second window: pro-rated requirement is 2 samples.
  const auto e = est.estimate({&t}, 50.0, 62.0);
  ASSERT_TRUE(e.valid);
  EXPECT_NEAR(e.joules, 180.0 * 12.0, 1.0);
}

TEST(EnergyEstimator, AnyInvalidNodeInvalidatesJob) {
  const NodeTrace good = denseTrace(0.0, 500.0, 5.0, 200.0);
  const NodeTrace bad = denseTrace(0.0, 500.0, 40.0, 200.0);
  const EnergyEstimator est;
  EXPECT_FALSE(est.estimate({&good, &bad}, 100.0, 300.0).valid);
}

TEST(EnergyEstimator, Validation) {
  const EnergyEstimator est;
  const NodeTrace t = denseTrace(0.0, 10.0, 1.0, 100.0);
  EXPECT_THROW(est.estimate({}, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(est.estimate({&t}, 5.0, 5.0), std::invalid_argument);
}

TEST(EnergyEstimator, VaryingPowerTrapezoid) {
  // Linear ramp 100 → 200 W over [0, 100]: energy over the window equals
  // the trapezoid of the ramp.
  NodeTrace t;
  for (double x = 0.0; x <= 100.0; x += 2.0)
    t.samples.push_back({x, 100.0 + x});
  const EnergyEstimator est;
  const auto e = est.estimate({&t}, 0.0, 100.0);
  ASSERT_TRUE(e.valid);
  EXPECT_NEAR(e.joules, 15000.0, 10.0);
}
