// Harness for scripts/alperf_lint.py — the in-repo determinism lint
// (docs/STATIC_ANALYSIS.md). Each banned pattern must be detected with a
// file:line diagnostic, both suppression mechanisms must be honored,
// clean files must pass, and exit codes must be exact (0 clean, 1
// findings). The last two tests run the tool the way CI does: the
// built-in self-test and a full scan of this repository, which must be
// clean.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

namespace fs = std::filesystem;

namespace {

#ifndef ALPERF_SOURCE_DIR
#error "ALPERF_SOURCE_DIR must point at the repository root"
#endif

const fs::path kRepoRoot = ALPERF_SOURCE_DIR;
const fs::path kLintScript = kRepoRoot / "scripts" / "alperf_lint.py";

struct RunResult {
  int exitCode = -1;
  std::string output;
};

/// Runs `python3 alperf_lint.py <args>`, capturing stdout+stderr.
RunResult runLint(const std::string& args) {
  const fs::path outFile =
      fs::temp_directory_path() /
      ("alperf_lint_out_" + std::to_string(::getpid()) + ".txt");
  const std::string cmd = "python3 \"" + kLintScript.string() + "\" " + args +
                          " > \"" + outFile.string() + "\" 2>&1";
  const int raw = std::system(cmd.c_str());
  RunResult result;
  result.exitCode = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  std::ifstream in(outFile);
  result.output.assign(std::istreambuf_iterator<char>(in), {});
  fs::remove(outFile);
  return result;
}

bool havePython() {
  return std::system("python3 -c 'pass' > /dev/null 2>&1") == 0;
}

/// Temp tree shaped like the repo (src/core/..., bench/...), torn down on
/// destruction, so the path-scoped rules apply to fixtures.
class LintFixtureTree {
 public:
  LintFixtureTree() {
    root_ = fs::temp_directory_path() /
            ("alperf_lint_fixture_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    fs::create_directories(root_);
  }
  ~LintFixtureTree() {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  void write(const std::string& relpath, const std::string& content) {
    const fs::path full = root_ / relpath;
    fs::create_directories(full.parent_path());
    std::ofstream(full) << content;
  }

  RunResult lint(const std::string& extra = "") {
    return runLint("--root \"" + root_.string() + "\" " + extra);
  }

  const fs::path& root() const { return root_; }

 private:
  static inline int counter_ = 0;
  fs::path root_;
};

class LintToolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!havePython()) GTEST_SKIP() << "python3 not available";
    ASSERT_TRUE(fs::exists(kLintScript)) << kLintScript;
  }
};

TEST_F(LintToolTest, CleanTreeExitsZero) {
  LintFixtureTree tree;
  tree.write("src/core/fine.cpp",
             "#include <map>\n"
             "std::map<int, int> ordered;\n");
  const RunResult r = tree.lint();
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("clean"), std::string::npos) << r.output;
}

TEST_F(LintToolTest, DetectsBannedRngWithFileAndLine) {
  LintFixtureTree tree;
  tree.write("src/core/bad.cpp",
             "#include <cstdlib>\n"
             "int roll() { return std::rand(); }\n");
  const RunResult r = tree.lint();
  EXPECT_EQ(r.exitCode, 1) << r.output;
  EXPECT_NE(r.output.find("src/core/bad.cpp:2"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("[banned-rng]"), std::string::npos) << r.output;
}

TEST_F(LintToolTest, DetectsRandomDeviceSeedingOutsideRngHeader) {
  LintFixtureTree tree;
  tree.write("bench/bad_seed.cpp",
             "#include <random>\n"
             "unsigned s() { return std::random_device{}(); }\n");
  const RunResult r = tree.lint();
  EXPECT_EQ(r.exitCode, 1) << r.output;
  EXPECT_NE(r.output.find("[banned-rng]"), std::string::npos) << r.output;
}

TEST_F(LintToolTest, DetectsUnorderedContainerInResultPathDirs) {
  LintFixtureTree tree;
  tree.write("src/gp/bad.hpp",
             "#include <unordered_map>\n"
             "std::unordered_map<int, double> cache;\n");
  const RunResult r = tree.lint();
  EXPECT_EQ(r.exitCode, 1) << r.output;
  EXPECT_NE(r.output.find("[unordered-iteration]"), std::string::npos)
      << r.output;
}

TEST_F(LintToolTest, UnorderedContainerAllowedOutsideResultPaths) {
  LintFixtureTree tree;
  // data/ is not a result path: unordered containers are fine there.
  tree.write("src/data/fine.hpp",
             "#include <unordered_set>\n"
             "std::unordered_set<int> seen;\n");
  const RunResult r = tree.lint();
  EXPECT_EQ(r.exitCode, 0) << r.output;
}

TEST_F(LintToolTest, DetectsStdoutInLibraryButNotInExamples) {
  LintFixtureTree tree;
  tree.write("src/la/bad.cpp",
             "#include <iostream>\n"
             "void log() { std::cout << \"x\"; }\n");
  tree.write("examples/fine.cpp",
             "#include <iostream>\n"
             "int main() { std::cout << \"ok\"; }\n");
  const RunResult r = tree.lint();
  EXPECT_EQ(r.exitCode, 1) << r.output;
  EXPECT_NE(r.output.find("src/la/bad.cpp:2"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("examples/fine.cpp"), std::string::npos)
      << r.output;
}

TEST_F(LintToolTest, DetectsNakedNewAndDelete) {
  LintFixtureTree tree;
  tree.write("src/core/bad.cpp",
             "int* make() { return new int(3); }\n"
             "void unmake(int* p) { delete p; }\n");
  const RunResult r = tree.lint();
  EXPECT_EQ(r.exitCode, 1) << r.output;
  EXPECT_NE(r.output.find("bad.cpp:1"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("bad.cpp:2"), std::string::npos) << r.output;
}

TEST_F(LintToolTest, DeletedSpecialMembersAreNotNakedDelete) {
  LintFixtureTree tree;
  tree.write("src/core/fine.hpp",
             "struct NoCopy {\n"
             "  NoCopy(const NoCopy&) = delete;\n"
             "  NoCopy& operator=(const NoCopy&) = delete;\n"
             "};\n");
  const RunResult r = tree.lint();
  EXPECT_EQ(r.exitCode, 0) << r.output;
}

TEST_F(LintToolTest, DetectsUnguardedMutexMember) {
  LintFixtureTree tree;
  tree.write("src/common/bad.hpp",
             "#include <mutex>\n"
             "class Registry {\n"
             "  mutable std::mutex mu_;\n"
             "  int shared_ = 0;\n"
             "};\n");
  const RunResult r = tree.lint();
  EXPECT_EQ(r.exitCode, 1) << r.output;
  EXPECT_NE(r.output.find("[guarded-mutex]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("bad.hpp:3"), std::string::npos) << r.output;
}

TEST_F(LintToolTest, GuardedMutexMemberPasses) {
  LintFixtureTree tree;
  tree.write("src/common/fine.hpp",
             "#include \"common/thread_annotations.hpp\"\n"
             "class Registry {\n"
             "  mutable alperf::Mutex mu_;\n"
             "  int shared_ ALPERF_GUARDED_BY(mu_) = 0;\n"
             "};\n");
  const RunResult r = tree.lint();
  EXPECT_EQ(r.exitCode, 0) << r.output;
}

TEST_F(LintToolTest, DetectsFloatLiteralComparison) {
  LintFixtureTree tree;
  tree.write("src/gp/bad.cpp",
             "bool converged(double delta) { return delta == 0.0; }\n"
             "bool miss(double p) { return 1e-3 != p; }\n");
  const RunResult r = tree.lint();
  EXPECT_EQ(r.exitCode, 1) << r.output;
  EXPECT_NE(r.output.find("[float-compare]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("bad.cpp:1"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("bad.cpp:2"), std::string::npos) << r.output;
}

TEST_F(LintToolTest, ToleranceComparisonsAndIntLiteralsDoNotFire) {
  LintFixtureTree tree;
  tree.write("src/gp/fine.cpp",
             "#include <cmath>\n"
             "bool near(double a) { return std::abs(a - 1.5) < 1e-12; }\n"
             "bool countHit(int n) { return n == 10; }\n"
             "bool ge(double a) { return a >= 2.0; }\n");
  const RunResult r = tree.lint();
  EXPECT_EQ(r.exitCode, 0) << r.output;
}

TEST_F(LintToolTest, BannedPatternInCommentOrStringDoesNotFire) {
  LintFixtureTree tree;
  tree.write("src/core/fine.cpp",
             "// std::rand() discussed in a comment\n"
             "/* std::cout << new int; */\n"
             "#include <string>\n"
             "std::string s() { return \"std::rand()\"; }\n");
  const RunResult r = tree.lint();
  EXPECT_EQ(r.exitCode, 0) << r.output;
}

TEST_F(LintToolTest, InlineAllowSuppressesSameAndNextCodeLine) {
  LintFixtureTree tree;
  tree.write("src/core/fine.cpp",
             "// alperf-lint: allow(naked-new) singleton leak\n"
             "int* g = new int(1);\n"
             "int* h = new int(2);  // alperf-lint: allow(naked-new)\n");
  const RunResult r = tree.lint();
  EXPECT_EQ(r.exitCode, 0) << r.output;
}

TEST_F(LintToolTest, AllowlistFileSuppressesByRuleAndGlob) {
  LintFixtureTree tree;
  tree.write("src/core/bad.cpp",
             "#include <cstdlib>\n"
             "int roll() { return std::rand(); }\n");
  tree.write("allow.txt", "banned-rng src/core/*.cpp  # legacy shim\n");
  const RunResult suppressed =
      tree.lint("--allowlist \"" + (tree.root() / "allow.txt").string() +
                "\"");
  EXPECT_EQ(suppressed.exitCode, 0) << suppressed.output;
  // The same tree without the allowlist still fails.
  const RunResult unsuppressed = tree.lint();
  EXPECT_EQ(unsuppressed.exitCode, 1) << unsuppressed.output;
}

TEST_F(LintToolTest, MalformedAllowlistIsUsageError) {
  LintFixtureTree tree;
  tree.write("src/core/fine.cpp", "int x = 0;\n");
  tree.write("allow.txt", "just-a-rule-with-no-path\n");
  const RunResult r = tree.lint(
      "--allowlist \"" + (tree.root() / "allow.txt").string() + "\"");
  EXPECT_EQ(r.exitCode, 2) << r.output;
}

TEST_F(LintToolTest, SelfTestPasses) {
  const RunResult r = runLint("--self-test");
  EXPECT_EQ(r.exitCode, 0) << r.output;
}

TEST_F(LintToolTest, RealRepositoryTreeIsClean) {
  const RunResult r = runLint("--root \"" + kRepoRoot.string() + "\"");
  EXPECT_EQ(r.exitCode, 0) << r.output;
}

}  // namespace
