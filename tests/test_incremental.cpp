// Tests for the incremental-update path: Cholesky::extend and
// GaussianProcess::addObservation, plus the continuous-candidate AL
// built on them (core/continuous.hpp).

#include <gtest/gtest.h>

#include <cmath>

#include "core/continuous.hpp"
#include "gp/kernels.hpp"
#include "la/cholesky.hpp"

namespace al = alperf::al;
namespace gp = alperf::gp;
namespace la = alperf::la;
using alperf::stats::Rng;
namespace opt = alperf::opt;

namespace {

la::Matrix spd(std::size_t n, int seed = 1) {
  la::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      a(i, j) = std::sin(static_cast<double>((i + 2) * (j + 1) * seed));
  la::Matrix s = la::gram(a);
  s.addToDiagonal(static_cast<double>(n));
  return s;
}

la::Matrix col(const std::vector<double>& xs) {
  la::Matrix m(xs.size(), 1);
  for (std::size_t i = 0; i < xs.size(); ++i) m(i, 0) = xs[i];
  return m;
}

double target(double x) { return std::sin(1.3 * x) + 0.25 * x; }

}  // namespace

TEST(CholeskyExtend, MatchesFullFactorization) {
  const la::Matrix full = spd(6);
  // Factor the leading 5x5 block, then extend with the last row/col.
  la::Matrix block(5, 5);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 5; ++j) block(i, j) = full(i, j);
  la::Cholesky chol(block);
  la::Vector k(5);
  for (std::size_t i = 0; i < 5; ++i) k[i] = full(i, 5);
  chol.extend(k, full(5, 5));

  const la::Cholesky ref(full);
  EXPECT_TRUE(chol.factor().approxEqual(ref.factor(), 1e-10));
  EXPECT_NEAR(chol.logDet(), ref.logDet(), 1e-10);
}

TEST(CholeskyExtend, SolveAfterExtend) {
  const la::Matrix full = spd(5, 3);
  la::Matrix block(4, 4);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) block(i, j) = full(i, j);
  la::Cholesky chol(block);
  la::Vector k(4);
  for (std::size_t i = 0; i < 4; ++i) k[i] = full(i, 4);
  chol.extend(k, full(4, 4));

  la::Vector b{1.0, -2.0, 0.5, 3.0, 1.5};
  const la::Vector x = chol.solve(b);
  const la::Vector ax = la::matvec(full, x);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(ax[i], b[i], 1e-9);
}

TEST(CholeskyExtend, RejectsNonSpdExtension) {
  la::Cholesky chol(la::Matrix::identity(2));
  // kappa too small: [[I, k], [kᵀ, 0.1]] with |k|² = 2 > 0.1 is indefinite.
  EXPECT_THROW(chol.extend(la::Vector{1.0, 1.0}, 0.1),
               alperf::NumericalError);
  EXPECT_THROW(chol.extend(la::Vector{1.0}, 5.0), std::invalid_argument);
}

TEST(CholeskyExtend, RepeatedExtensions) {
  const la::Matrix full = spd(8, 5);
  la::Matrix seed(2, 2);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j) seed(i, j) = full(i, j);
  la::Cholesky chol(seed);
  for (std::size_t m = 2; m < 8; ++m) {
    la::Vector k(m);
    for (std::size_t i = 0; i < m; ++i) k[i] = full(i, m);
    chol.extend(k, full(m, m));
  }
  const la::Cholesky ref(full);
  EXPECT_TRUE(chol.factor().approxEqual(ref.factor(), 1e-9));
}

TEST(GpAddObservation, MatchesFullRefitExactly) {
  gp::GpConfig cfg;
  cfg.optimize = false;
  cfg.noise.initial = 1e-2;
  gp::GaussianProcess inc(gp::makeSquaredExponential(1.2, 0.9), cfg);
  gp::GaussianProcess full(gp::makeSquaredExponential(1.2, 0.9), cfg);

  Rng rng(1);
  const std::vector<double> xs{0.0, 0.7, 1.4, 2.1};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(target(x));
  inc.fit(col(xs), ys, rng);

  // Add two observations incrementally.
  inc.addObservation(std::vector<double>{2.8}, target(2.8));
  inc.addObservation(std::vector<double>{3.5}, target(3.5));

  auto xs2 = xs;
  xs2.push_back(2.8);
  xs2.push_back(3.5);
  auto ys2 = ys;
  ys2.push_back(target(2.8));
  ys2.push_back(target(3.5));
  full.fit(col(xs2), ys2, rng);

  for (double q : {0.3, 1.0, 2.5, 3.2, 4.0}) {
    const auto [mi, vi] = inc.predictOne(std::vector<double>{q});
    const auto [mf, vf] = full.predictOne(std::vector<double>{q});
    EXPECT_NEAR(mi, mf, 1e-9) << "q=" << q;
    EXPECT_NEAR(vi, vf, 1e-9) << "q=" << q;
  }
  EXPECT_NEAR(inc.logMarginalLikelihood(), full.logMarginalLikelihood(),
              1e-9);
  EXPECT_EQ(inc.numTrainPoints(), 6u);
}

TEST(GpAddObservation, Validation) {
  gp::GpConfig cfg;
  cfg.optimize = false;
  gp::GaussianProcess g(gp::makeSquaredExponential(1.0, 1.0), cfg);
  EXPECT_THROW(g.addObservation(std::vector<double>{1.0}, 0.0),
               std::invalid_argument);  // not fitted
  Rng rng(2);
  g.fit(col({0.0, 1.0}), la::Vector{0.0, 1.0}, rng);
  EXPECT_THROW(g.addObservation(std::vector<double>{1.0, 2.0}, 0.0),
               std::invalid_argument);  // wrong dimension
}

TEST(SuggestContinuous, FindsHighVarianceRegion) {
  // Train on [0, 2]; the domain extends to 10 → the suggestion should sit
  // far from the data (at/near the far boundary).
  gp::GpConfig cfg;
  cfg.nRestarts = 1;
  cfg.noise.lo = 1e-4;
  gp::GaussianProcess g(gp::makeSquaredExponential(1.0, 1.0), cfg);
  Rng rng(3);
  std::vector<double> xs{0.0, 0.5, 1.0, 1.5, 2.0};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(target(x));
  g.fit(col(xs), ys, rng);

  const opt::BoxBounds bounds({0.0}, {10.0});
  const auto s = al::suggestContinuous(g, bounds,
                                       al::varianceAcquisition(), 8, rng);
  EXPECT_GT(s.x[0], 5.0);
  EXPECT_GT(s.sd, 0.1);
  EXPECT_NEAR(s.acquisition, s.sd, 1e-6);
}

TEST(SuggestContinuous, CostEfficiencyPrefersCheapSide) {
  // Response = log-cost rising with x; train in the middle. Variance is
  // symmetric at both ends, so eq. 14 pushes the pick to the cheap end.
  gp::GpConfig cfg;
  cfg.nRestarts = 1;
  cfg.noise.lo = 1e-4;
  gp::GaussianProcess g(gp::makeSquaredExponential(1.0, 1.0), cfg);
  Rng rng(4);
  const std::vector<double> xs{4.0, 5.0, 6.0};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(0.5 * x);  // log-cost
  g.fit(col(xs), ys, rng);
  const opt::BoxBounds bounds({0.0}, {10.0});
  const auto s = al::suggestContinuous(
      g, bounds, al::costEfficiencyAcquisition(), 8, rng);
  EXPECT_LT(s.x[0], 4.0);
}

TEST(SuggestContinuous, Validation) {
  gp::GpConfig cfg;
  gp::GaussianProcess g(gp::makeSquaredExponential(1.0, 1.0), cfg);
  Rng rng(5);
  const opt::BoxBounds bounds({0.0}, {1.0});
  EXPECT_THROW(
      al::suggestContinuous(g, bounds, al::varianceAcquisition(), 4, rng),
      std::invalid_argument);  // not fitted
  g.fit(col({0.0, 1.0}), la::Vector{0.0, 1.0}, rng);
  EXPECT_THROW(
      al::suggestContinuous(g, bounds, al::varianceAcquisition(), 0, rng),
      std::invalid_argument);
  EXPECT_THROW(al::suggestContinuous(g, opt::BoxBounds({0.0, 0.0}, {1.0, 1.0}),
                                     al::varianceAcquisition(), 4, rng),
               std::invalid_argument);  // dimension mismatch
}

TEST(RunContinuousAl, LearnsSmoothFunctionOnline) {
  gp::GpConfig cfg;
  cfg.nRestarts = 1;
  cfg.noise.lo = 1e-3;
  gp::GaussianProcess proto(gp::makeSquaredExponential(1.0, 1.0), cfg);

  Rng rng(6);
  const opt::BoxBounds bounds({0.0}, {8.0});
  al::ContinuousAlConfig alCfg;
  alCfg.iterations = 18;
  alCfg.nStarts = 6;
  alCfg.refitEvery = 4;
  Rng noiseRng(7);
  const auto result = al::runContinuousAl(
      proto, col({1.0}), la::Vector{target(1.0)}, bounds,
      [&noiseRng](std::span<const double> x) {
        return target(x[0]) + noiseRng.normal(0.0, 0.01);
      },
      al::varianceAcquisition(), alCfg, rng);

  ASSERT_EQ(result.history.size(), 18u);
  for (const auto& rec : result.history) {
    EXPECT_GE(rec.x[0], 0.0);
    EXPECT_LE(rec.x[0], 8.0);
  }
  // The learned model predicts the target well across the box.
  double err = 0.0;
  int n = 0;
  for (double q = 0.2; q <= 7.8; q += 0.4, ++n) {
    const auto [m, v] = result.finalGp.predictOne(std::vector<double>{q});
    err += (m - target(q)) * (m - target(q));
  }
  EXPECT_LT(std::sqrt(err / n), 0.15);
  // Pick uncertainty decays.
  EXPECT_LT(result.history.back().sdAtPick,
            result.history.front().sdAtPick);
}

TEST(RunContinuousAl, Validation) {
  gp::GpConfig cfg;
  gp::GaussianProcess proto(gp::makeSquaredExponential(1.0, 1.0), cfg);
  Rng rng(8);
  al::ContinuousAlConfig alCfg;
  EXPECT_THROW(
      al::runContinuousAl(proto, col({0.0}), la::Vector{0.0},
                          opt::BoxBounds({0.0}, {1.0}), nullptr,
                          al::varianceAcquisition(), alCfg, rng),
      std::invalid_argument);
}
