// Asynchronous dispatch engine + Oracle API v2 tests: type erasure and
// capability detection of al::Oracle, AsyncDispatcher's deterministic
// commit-in-dispatch-order contract at 1/2/8 slots, the maxInFlight=1
// routing guarantee (synchronous path, zero exec.async.* counters),
// pipelined campaign determinism, quarantine and chaos faults under
// concurrent dispatch, and checkpoint/resume of an async campaign.
// Runs under TSan in CI (suite names AsyncDispatch / OracleV2).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <set>
#include <thread>

#include "common/error.hpp"
#include "common/fault_inject.hpp"
#include "common/perf_stats.hpp"
#include "core/checkpoint.hpp"
#include "core/continuous.hpp"
#include "core/dispatch.hpp"
#include "core/learner.hpp"
#include "gp/kernels.hpp"

namespace al = alperf::al;
namespace gp = alperf::gp;
namespace la = alperf::la;
namespace opt = alperf::opt;
using alperf::FaultInjector;
using alperf::Measurement;
using alperf::MeasurementStatus;
using alperf::PerfRegistry;
using alperf::stats::Rng;

namespace {

al::RegressionProblem syntheticProblem(std::size_t n = 50) {
  al::RegressionProblem p;
  p.x = la::Matrix(n, 1);
  p.y.resize(n);
  p.cost.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n - 1);
    p.x(i, 0) = 10.0 * t;
    p.y[i] = std::sin(6.0 * t) + 0.3 * t;
    p.cost[i] = 1.0 + 0.5 * t;
  }
  p.featureNames = {"x"};
  p.responseName = "y";
  return p;
}

gp::GaussianProcess smallGp() {
  gp::GpConfig cfg;
  cfg.nRestarts = 1;
  cfg.noise.lo = 1e-4;
  return gp::GaussianProcess(gp::makeSquaredExponential(1.0, 1.0), cfg);
}

al::ActiveLearner makeLearner(int maxIterations, al::AlConfig base = {}) {
  base.nInitial = 3;
  base.maxIterations = maxIterations;
  base.refitEvery = 2;
  return al::ActiveLearner(syntheticProblem(), smallGp(),
                           std::make_unique<al::VarianceReduction>(), base);
}

void expectSameHistory(const std::vector<al::IterationRecord>& a,
                       const std::vector<al::IterationRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].iteration, b[i].iteration) << "iter " << i;
    EXPECT_EQ(a[i].chosenRow, b[i].chosenRow) << "iter " << i;
    EXPECT_DOUBLE_EQ(a[i].sigmaAtPick, b[i].sigmaAtPick) << "iter " << i;
    EXPECT_DOUBLE_EQ(a[i].muAtPick, b[i].muAtPick) << "iter " << i;
    EXPECT_DOUBLE_EQ(a[i].amsd, b[i].amsd) << "iter " << i;
    EXPECT_DOUBLE_EQ(a[i].rmse, b[i].rmse) << "iter " << i;
    EXPECT_DOUBLE_EQ(a[i].pickCost, b[i].pickCost) << "iter " << i;
    EXPECT_DOUBLE_EQ(a[i].cumulativeCost, b[i].cumulativeCost)
        << "iter " << i;
    EXPECT_DOUBLE_EQ(a[i].failedAttempts, b[i].failedAttempts)
        << "iter " << i;
    EXPECT_DOUBLE_EQ(a[i].wastedCost, b[i].wastedCost) << "iter " << i;
  }
}

void removeCheckpointFiles(const std::string& prefix) {
  for (const char* suffix : {".meta.csv", ".trace.csv", ".sets.csv"})
    std::remove((prefix + suffix).c_str());
}

/// Arms a fault spec for the test body and guarantees disarm on exit.
struct FaultGuard {
  explicit FaultGuard(const std::string& spec) {
    FaultInjector::instance().arm(spec);
  }
  ~FaultGuard() { FaultInjector::instance().disarm(); }
};

}  // namespace

// --------------------------------------------------- Oracle API v2

TEST(OracleV2, WrapsInfalliblePointCallable) {
  const al::Oracle oracle = [](std::span<const double> x) {
    return 2.0 * x[0];
  };
  ASSERT_TRUE(oracle.hasPointMeasure());
  EXPECT_FALSE(oracle.hasRowMeasure());
  EXPECT_FALSE(oracle.hasAsync());
  const double x[] = {3.0};
  const Measurement m = oracle.measure(x);
  EXPECT_EQ(m.status, MeasurementStatus::Ok);
  EXPECT_DOUBLE_EQ(m.y, 6.0);

  const al::Oracle bad = [](std::span<const double>) {
    return std::numeric_limits<double>::quiet_NaN();
  };
  EXPECT_THROW(bad.measure(x), std::invalid_argument);
}

TEST(OracleV2, FallibleCallablesPassMeasurementsThrough) {
  const al::Oracle point = [](std::span<const double>) {
    return Measurement::failed(0.5);
  };
  const double x[] = {1.0};
  EXPECT_TRUE(point.measure(x).status == MeasurementStatus::Failed);

  const al::Oracle row = [](std::size_t r) {
    return Measurement::ok(static_cast<double>(r), 1.0);
  };
  ASSERT_TRUE(row.hasRowMeasure());
  EXPECT_FALSE(row.hasPointMeasure());
  EXPECT_DOUBLE_EQ(row.measureRow(7).y, 7.0);
  // measureAny prefers the row form when a row id is available...
  EXPECT_DOUBLE_EQ(row.measureAny(7, x).y, 7.0);
  // ...and the point form is used when there is none.
  EXPECT_DOUBLE_EQ(point.measureAny(al::Oracle::kNoRow, x).totalCost(), 0.5);
}

TEST(OracleV2, NullFunctionsAndNullptrProduceNoCapability) {
  const al::FallibleOracle nullFn;
  const al::Oracle fromNullFn = nullFn;
  EXPECT_FALSE(static_cast<bool>(fromNullFn));
  const al::Oracle fromNullptr = nullptr;
  EXPECT_FALSE(static_cast<bool>(fromNullptr));
  const al::Oracle empty;
  EXPECT_FALSE(static_cast<bool>(empty));
}

TEST(OracleV2, V1TypedefsConvertImplicitly) {
  const al::FallibleOracle v1Point = [](std::span<const double> x) {
    return Measurement::ok(x[0], 1.0);
  };
  const al::FallibleRowOracle v1Row = [](std::size_t r) {
    return Measurement::ok(static_cast<double>(r), 1.0);
  };
  const al::Oracle fromPoint = v1Point;
  const al::Oracle fromRow = v1Row;
  EXPECT_TRUE(fromPoint.hasPointMeasure());
  EXPECT_TRUE(fromRow.hasRowMeasure());
}

TEST(OracleV2, AsyncCapabilityRoundTrips) {
  std::atomic<int> submitted{0};
  const al::Oracle oracle =
      al::Oracle([](std::span<const double> x) { return x[0]; })
          .withAsync(
              [&submitted](std::size_t, std::span<const double>) {
                return static_cast<std::uint64_t>(submitted++);
              },
              [](std::uint64_t ticket) {
                return Measurement::ok(static_cast<double>(ticket), 1.0);
              });
  ASSERT_TRUE(oracle.hasAsync());
  const double x[] = {1.5};
  const auto ticket = oracle.submit(al::Oracle::kNoRow, x);
  EXPECT_DOUBLE_EQ(oracle.await(ticket).y, 0.0);
  EXPECT_EQ(submitted.load(), 1);
}

// ---------------------------------------------- dispatcher contract

TEST(AsyncDispatch, ConfigValidation) {
  al::ExecutionConfig bad;
  bad.maxInFlight = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad.maxInFlight = 2000;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad.maxInFlight = 8;
  EXPECT_NO_THROW(bad.validate());

  al::AlConfig cfg;
  cfg.execution.maxInFlight = 2;
  cfg.batchSize = 2;  // async dispatch subsumes batch selection
  const auto learner = makeLearner(5, cfg);
  Rng rng(3);
  EXPECT_THROW(learner.run(rng), std::invalid_argument);
}

TEST(AsyncDispatch, CommitsInDispatchOrderAtEveryWidth) {
  for (const int width : {1, 2, 8}) {
    // Later submissions finish *first* (sleep shrinks with the row), so
    // out-of-order completion is the common case at width > 1.
    const al::Oracle oracle = [](std::size_t row) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          row < 16 ? (16 - row) / 4 : 0));
      return Measurement::ok(static_cast<double>(row) * 10.0, 1.0);
    };
    al::ExecutionConfig exec;
    exec.maxInFlight = width;
    al::AsyncDispatcher dispatcher(oracle, exec);
    EXPECT_EQ(dispatcher.capacity(), width);

    std::vector<std::uint64_t> tickets;
    std::size_t next = 0;
    const std::size_t total = 16;
    std::vector<al::AsyncDispatcher::Committed> committed;
    while (committed.size() < total) {
      while (next < total && !dispatcher.full()) {
        const double x[] = {static_cast<double>(next)};
        tickets.push_back(dispatcher.submit(next, x));
        ++next;
      }
      committed.push_back(dispatcher.commitNext());
    }
    EXPECT_TRUE(dispatcher.idle());
    for (std::size_t i = 0; i < total; ++i) {
      EXPECT_EQ(committed[i].ticket, tickets[i]) << "width " << width;
      EXPECT_EQ(committed[i].row, i) << "width " << width;
      ASSERT_EQ(committed[i].x.size(), 1u);
      EXPECT_DOUBLE_EQ(committed[i].x[0], static_cast<double>(i));
      EXPECT_DOUBLE_EQ(committed[i].result.measurement.y,
                       static_cast<double>(i) * 10.0)
          << "width " << width;
    }
  }
}

TEST(AsyncDispatch, LedgerMatchesExecutorSemantics) {
  // Rows ≡ 0 (mod 3) fail every attempt; everything else succeeds.
  const al::Oracle oracle = [](std::size_t row) {
    if (row % 3 == 0) return Measurement::failed(0.5);
    return Measurement::ok(1.0, 1.0);
  };
  al::ExecutionConfig exec;
  exec.maxInFlight = 4;
  exec.retry.maxRetries = 1;
  exec.retry.backoffCostBase = 0.25;
  al::AsyncDispatcher dispatcher(oracle, exec);
  const double x[] = {0.0};
  int quarantined = 0;
  const auto commitOne = [&] {
    const auto c = dispatcher.commitNext();
    if (c.result.quarantined) {
      ++quarantined;
      EXPECT_EQ(c.row % 3, 0u);
      EXPECT_EQ(c.result.attempts, 2);
    }
  };
  for (std::size_t row = 0; row < 9; ++row) {
    if (dispatcher.full()) commitOne();
    dispatcher.submit(row, x);
  }
  while (!dispatcher.idle()) commitOne();
  EXPECT_EQ(quarantined, 3);
  EXPECT_EQ(dispatcher.totalQuarantined(), 3);
  // 3 quarantined rows × 2 failed attempts each.
  EXPECT_EQ(dispatcher.totalFailedAttempts(), 6);
  // Each quarantined row burns 2 × 0.5 measurement cost + one 0.25
  // backoff surcharge.
  EXPECT_DOUBLE_EQ(dispatcher.totalWastedCost(), 3 * (2 * 0.5 + 0.25));
}

TEST(AsyncDispatch, OverSubmitThrows) {
  const al::Oracle oracle = [](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return Measurement::ok(1.0, 1.0);
  };
  al::ExecutionConfig exec;
  exec.maxInFlight = 1;
  al::AsyncDispatcher dispatcher(oracle, exec);
  const double x[] = {0.0};
  dispatcher.submit(0, x);
  EXPECT_TRUE(dispatcher.full());
  EXPECT_THROW(dispatcher.submit(1, x), std::logic_error);
  (void)dispatcher.commitNext();
}

TEST(AsyncDispatch, DestructorJoinsWithUncommittedWork) {
  const al::Oracle oracle = [](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    return Measurement::ok(1.0, 1.0);
  };
  al::ExecutionConfig exec;
  exec.maxInFlight = 4;
  al::AsyncDispatcher dispatcher(oracle, exec);
  const double x[] = {0.0};
  for (std::size_t row = 0; row < 4; ++row) dispatcher.submit(row, x);
  // Destructor runs with all four in flight: running measurements finish,
  // results are discarded, no hang and no leak (ASan/TSan checked).
}

// --------------------------------------- maxInFlight = 1 bit-identity

TEST(AsyncDispatch, SingleSlotIsTheSynchronousPathBitwise) {
  const auto problem = syntheticProblem();
  Rng partRng(42);
  const auto partition =
      alperf::data::triPartition(problem.size(), 3, 0.8, partRng);
  const al::Oracle oracle = [&](std::size_t row) {
    if (row % 7 == 3) return Measurement::failed(0.5);
    return Measurement::ok(problem.y[row], problem.cost[row]);
  };
  al::RetryPolicy policy;
  policy.maxRetries = 1;

  const auto baselineLearner = makeLearner(15);
  Rng rngA(13);
  const auto baseline = baselineLearner.runFallibleWithPartition(
      oracle, policy, partition, rngA);

  al::AlConfig cfg;
  cfg.execution.maxInFlight = 1;  // explicit default: must change nothing
  const auto explicitLearner = makeLearner(15, cfg);
  PerfRegistry::instance().reset();
  Rng rngB(13);
  const auto explicitOne = explicitLearner.runFallibleWithPartition(
      oracle, policy, partition, rngB);

  expectSameHistory(baseline.history, explicitOne.history);
  EXPECT_EQ(baseline.checkpoint.trainY, explicitOne.checkpoint.trainY);
  EXPECT_EQ(baseline.finalGp.thetaFull(), explicitOne.finalGp.thetaFull());
  // The dispatcher is never constructed at maxInFlight=1: the async
  // engine must leave no trace in the counters.
  EXPECT_EQ(PerfRegistry::instance().count("exec.async.submitted"), 0u);
  EXPECT_EQ(PerfRegistry::instance().count("exec.async.committed"), 0u);
}

// ------------------------------------------- pipelined campaigns

TEST(AsyncDispatch, PipelinedCampaignIsDeterministic) {
  const auto problem = syntheticProblem();
  Rng partRng(42);
  const auto partition =
      alperf::data::triPartition(problem.size(), 3, 0.8, partRng);
  const al::Oracle oracle = [&](std::size_t row) {
    return Measurement::ok(problem.y[row], problem.cost[row]);
  };
  al::AlConfig cfg;
  cfg.execution.maxInFlight = 4;
  const auto learner = makeLearner(20, cfg);
  al::RetryPolicy policy;

  Rng rngA(7);
  const auto runA =
      learner.runFallibleWithPartition(oracle, policy, partition, rngA);
  Rng rngB(7);
  const auto runB =
      learner.runFallibleWithPartition(oracle, policy, partition, rngB);

  EXPECT_EQ(runA.history.size(), 20u);
  expectSameHistory(runA.history, runB.history);
  EXPECT_EQ(runA.checkpoint.train, runB.checkpoint.train);
  EXPECT_EQ(runA.finalGp.thetaFull(), runB.finalGp.thetaFull());

  // Records are in dispatch order with consistent bookkeeping.
  std::set<std::size_t> seen;
  double cumulative = 0.0;
  for (std::size_t i = 0; i < runA.history.size(); ++i) {
    const auto& rec = runA.history[i];
    EXPECT_EQ(rec.iteration, static_cast<double>(i));
    EXPECT_TRUE(seen.insert(rec.chosenRow).second)
        << "row " << rec.chosenRow << " picked twice";
    cumulative += rec.pickCost + rec.wastedCost;
    EXPECT_DOUBLE_EQ(rec.cumulativeCost, cumulative);
  }
}

TEST(AsyncDispatch, QuarantineUnderConcurrentDispatch) {
  const auto problem = syntheticProblem();
  Rng partRng(42);
  const auto partition =
      alperf::data::triPartition(problem.size(), 3, 0.8, partRng);
  const al::Oracle oracle = [&](std::size_t row) {
    if (row % 5 == 2) return Measurement::failed(0.5);
    return Measurement::ok(problem.y[row], problem.cost[row]);
  };
  al::RetryPolicy policy;
  policy.maxRetries = 1;
  policy.backoffCostBase = 0.25;
  al::AlConfig cfg;
  cfg.execution.maxInFlight = 4;
  const auto learner = makeLearner(20, cfg);

  Rng rngA(7);
  const auto runA =
      learner.runFallibleWithPartition(oracle, policy, partition, rngA);
  Rng rngB(7);
  const auto runB =
      learner.runFallibleWithPartition(oracle, policy, partition, rngB);

  EXPECT_EQ(runA.checkpoint.quarantined, runB.checkpoint.quarantined);
  expectSameHistory(runA.history, runB.history);
  for (const std::size_t row : runA.checkpoint.quarantined)
    EXPECT_EQ(row % 5, 2u);
  // Quarantined rows trained nothing...
  for (const std::size_t row : runA.checkpoint.quarantined)
    EXPECT_EQ(std::count(runA.checkpoint.train.begin(),
                         runA.checkpoint.train.end(), row),
              0);
  // ...but their attempts and waste are in the records.
  bool sawQuarantine = false;
  for (const auto& rec : runA.history) {
    if (rec.chosenRow % 5 == 2) {
      sawQuarantine = true;
      EXPECT_DOUBLE_EQ(rec.failedAttempts, 2.0);
      EXPECT_GT(rec.wastedCost, 0.0);
    }
  }
  EXPECT_TRUE(sawQuarantine);
}

TEST(AsyncDispatch, ChaosFaultsUnderConcurrentDispatch) {
  const auto problem = syntheticProblem();
  Rng partRng(42);
  const auto partition =
      alperf::data::triPartition(problem.size(), 3, 0.8, partRng);
  const al::Oracle oracle = [&](std::size_t row) {
    return Measurement::ok(problem.y[row], problem.cost[row]);
  };
  al::AlConfig cfg;
  cfg.execution.maxInFlight = 4;
  const auto learner = makeLearner(12, cfg);
  al::RetryPolicy policy;

  // Every incremental Cholesky extension fails: each fit walks the
  // degradation ladder while up to 4 measurements run concurrently.
  FaultGuard guard("extend.fail");
  Rng rng(7);
  const auto result =
      learner.runFallibleWithPartition(oracle, policy, partition, rng);
  EXPECT_EQ(result.stopReason, al::StopReason::MaxIterations);
  EXPECT_EQ(result.history.size(), 12u);
  EXPECT_TRUE(result.finalGp.fitted());
}

// ----------------------------------------------- checkpoint / resume

TEST(AsyncDispatch, CheckpointResumeContinuesDeterministically) {
  const auto problem = syntheticProblem();
  Rng partRng(42);
  const auto partition =
      alperf::data::triPartition(problem.size(), 3, 0.8, partRng);
  const al::Oracle oracle = [&](std::size_t row) {
    if (row % 7 == 3) return Measurement::failed(0.5);
    return Measurement::ok(problem.y[row], problem.cost[row]);
  };
  al::RetryPolicy policy;
  policy.maxRetries = 1;
  al::AlConfig cfg;
  cfg.execution.maxInFlight = 4;
  const auto learner20 = makeLearner(20, cfg);
  const auto learner10 = makeLearner(10, cfg);

  // Half campaign; the stop drains the pipeline, so the checkpoint
  // carries no in-flight state and round-trips through the v1 format.
  Rng halfRng(13);
  const auto half = learner10.runFallibleWithPartition(oracle, policy,
                                                       partition, halfRng);
  ASSERT_EQ(half.history.size(), 10u);

  const std::string prefix = "alperf_test_ckpt_async";
  al::saveCheckpoint(half.checkpoint, prefix);
  const auto loaded = al::loadCheckpoint(prefix);
  removeCheckpointFiles(prefix);

  Rng resumeA(1);
  const auto resumedA =
      learner20.resumeFallible(loaded, oracle, policy, resumeA);
  Rng resumeB(1);
  const auto resumedB =
      learner20.resumeFallible(loaded, oracle, policy, resumeB);

  // The committed prefix is preserved bit-for-bit and the continuation
  // is deterministic (the refilled pipeline may legitimately pick other
  // rows than an uninterrupted run, so only the prefix is golden).
  EXPECT_EQ(resumedA.history.size(), 20u);
  expectSameHistory(resumedA.history, resumedB.history);
  expectSameHistory(
      half.history,
      {resumedA.history.begin(), resumedA.history.begin() + 10});
  std::set<std::size_t> seen;
  for (const auto& rec : resumedA.history)
    EXPECT_TRUE(seen.insert(rec.chosenRow).second);
}

// ------------------------------------------------- continuous loop

TEST(AsyncDispatch, ContinuousLoopPipelinesDeterministically) {
  gp::GpConfig gcfg;
  gcfg.nRestarts = 1;
  gcfg.noise.lo = 1e-3;
  gp::GaussianProcess proto(gp::makeSquaredExponential(1.0, 1.0), gcfg);
  la::Matrix seedX(3, 1);
  la::Vector seedY(3);
  for (std::size_t i = 0; i < 3; ++i) {
    seedX(i, 0) = static_cast<double>(i) * 3.0;
    seedY[i] = std::sin(seedX(i, 0));
  }
  const al::Oracle oracle = [](std::span<const double> x) {
    return Measurement::ok(std::sin(x[0]), 1.0);
  };
  al::ContinuousAlConfig cfg;
  cfg.iterations = 8;
  cfg.nStarts = 3;
  cfg.refitEvery = 3;
  cfg.execution.maxInFlight = 3;
  al::RetryPolicy policy;

  Rng rngA(4);
  const auto runA = al::runContinuousAl(
      proto, seedX, seedY, opt::BoxBounds({0.0}, {8.0}), oracle, policy,
      al::varianceAcquisition(), cfg, rngA);
  Rng rngB(4);
  const auto runB = al::runContinuousAl(
      proto, seedX, seedY, opt::BoxBounds({0.0}, {8.0}), oracle, policy,
      al::varianceAcquisition(), cfg, rngB);

  EXPECT_EQ(runA.stopReason, al::StopReason::MaxIterations);
  ASSERT_EQ(runA.history.size(), 8u);
  ASSERT_EQ(runB.history.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    ASSERT_EQ(runA.history[i].x.size(), 1u);
    EXPECT_DOUBLE_EQ(runA.history[i].x[0], runB.history[i].x[0])
        << "iter " << i;
    EXPECT_DOUBLE_EQ(runA.history[i].y, runB.history[i].y) << "iter " << i;
    EXPECT_TRUE(runA.history[i].measured);
    EXPECT_DOUBLE_EQ(runA.history[i].y, std::sin(runA.history[i].x[0]));
  }
  EXPECT_EQ(runA.finalGp.numTrainPoints(), 3u + 8u);
}
