// Unit + property tests for the Cholesky factorization (la/cholesky.hpp).

#include "la/cholesky.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/health.hpp"
#include "common/perf_stats.hpp"

namespace la = alperf::la;
using la::Cholesky;
using la::Matrix;
using la::Vector;

namespace {

/// Deterministic SPD matrix: AᵀA + n·I from a seeded pattern.
Matrix makeSpd(std::size_t n, int seed = 1) {
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      a(i, j) = std::sin(static_cast<double>((i + 1) * (j + 2) * seed));
  Matrix spd = la::gram(a);
  spd.addToDiagonal(static_cast<double>(n));
  return spd;
}

}  // namespace

TEST(Cholesky, FactorReconstructsMatrix) {
  const Matrix a = makeSpd(5);
  const Cholesky chol(a);
  const Matrix l = chol.factor();
  const Matrix recon = la::matmul(l, l.transposed());
  EXPECT_TRUE(recon.approxEqual(a, 1e-10));
}

TEST(Cholesky, FactorIsLowerTriangular) {
  const Cholesky chol(makeSpd(4));
  const Matrix& l = chol.factor();
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = i + 1; j < 4; ++j) EXPECT_DOUBLE_EQ(l(i, j), 0.0);
}

TEST(Cholesky, SolveRecoversKnownSolution) {
  const Matrix a = makeSpd(6);
  Vector xTrue(6);
  for (std::size_t i = 0; i < 6; ++i) xTrue[i] = static_cast<double>(i) - 2.5;
  const Vector b = la::matvec(a, xTrue);
  const Vector x = Cholesky(a).solve(b);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(x[i], xTrue[i], 1e-9);
}

TEST(Cholesky, SolveMatrixMatchesColumnwise) {
  const Matrix a = makeSpd(4);
  Matrix b(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    b(i, 0) = static_cast<double>(i + 1);
    b(i, 1) = std::cos(static_cast<double>(i));
  }
  const Cholesky chol(a);
  const Matrix x = chol.solve(b);
  for (std::size_t j = 0; j < 2; ++j) {
    const Vector xj = chol.solve(b.col(j));
    for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(x(i, j), xj[i], 1e-12);
  }
}

TEST(Cholesky, TriangularSolvesCompose) {
  const Matrix a = makeSpd(5);
  const Cholesky chol(a);
  Vector b(5);
  for (std::size_t i = 0; i < 5; ++i) b[i] = std::sin(static_cast<double>(i + 1));
  // L(Lᵀ x) = b should equal solve(b).
  const Vector viaTri = chol.solveUpper(chol.solveLower(b));
  const Vector direct = chol.solve(b);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(viaTri[i], direct[i], 1e-12);
}

TEST(Cholesky, LogDetMatchesIdentityAndScaled) {
  EXPECT_NEAR(Cholesky(Matrix::identity(7)).logDet(), 0.0, 1e-14);
  Matrix scaled = Matrix::identity(4);
  scaled *= 3.0;
  EXPECT_NEAR(Cholesky(scaled).logDet(), 4.0 * std::log(3.0), 1e-12);
}

TEST(Cholesky, LogDetMatchesProductOfEigenvaluesFor2x2) {
  // [[2, 1], [1, 2]] has det = 3.
  const Matrix a{{2.0, 1.0}, {1.0, 2.0}};
  EXPECT_NEAR(Cholesky(a).logDet(), std::log(3.0), 1e-12);
}

TEST(Cholesky, InverseTimesMatrixIsIdentity) {
  const Matrix a = makeSpd(5);
  const Matrix inv = Cholesky(a).inverse();
  EXPECT_TRUE(la::matmul(a, inv).approxEqual(Matrix::identity(5), 1e-9));
}

TEST(Cholesky, NonSquareThrows) {
  EXPECT_THROW(Cholesky{Matrix(2, 3)}, std::invalid_argument);
}

TEST(Cholesky, AsymmetricThrows) {
  Matrix a{{2.0, 1.0}, {0.0, 2.0}};
  EXPECT_THROW(Cholesky{a}, std::invalid_argument);
}

TEST(Cholesky, IndefiniteThrowsAfterEscalation) {
  // Strongly indefinite: jitter cap (relative 1e-6) cannot rescue it.
  Matrix a{{1.0, 0.0}, {0.0, -5.0}};
  EXPECT_THROW(Cholesky{a}, alperf::NumericalError);
}

TEST(Cholesky, NearSingularGetsJitter) {
  // Rank-deficient PSD matrix: [1 1; 1 1].
  Matrix a{{1.0, 1.0}, {1.0, 1.0}};
  const Cholesky chol(a, /*maxJitterScale=*/1e-3);
  EXPECT_GT(chol.jitter(), 0.0);
  // Still approximately reconstructs.
  const Matrix recon =
      la::matmul(chol.factor(), chol.factor().transposed());
  EXPECT_TRUE(recon.approxEqual(a, 1e-2));
}

TEST(Cholesky, NoJitterForWellConditioned) {
  EXPECT_DOUBLE_EQ(Cholesky(makeSpd(6)).jitter(), 0.0);
}

TEST(Cholesky, RecoveryEventCleanFit) {
  const Cholesky chol(makeSpd(6));
  const auto ev = chol.recovery();
  EXPECT_EQ(ev.status, la::CholeskyStatus::Ok);
  EXPECT_EQ(ev.attempts, 1);
  EXPECT_DOUBLE_EQ(ev.finalJitter, 0.0);
  EXPECT_LT(ev.rcond, 0.0);  // lazy: not computed until rcond1()
  const double rc = chol.rcond1();
  EXPECT_GT(rc, 0.0);
  EXPECT_DOUBLE_EQ(chol.recovery().rcond, rc);  // cached after first call
}

TEST(Cholesky, RecoveryEventJitteredFit) {
  Matrix a{{1.0, 1.0}, {1.0, 1.0}};
  const Cholesky chol(a, /*maxJitterScale=*/1e-3);
  const auto ev = chol.recovery();
  EXPECT_EQ(ev.status, la::CholeskyStatus::RecoveredWithJitter);
  EXPECT_GE(ev.attempts, 2);
  EXPECT_DOUBLE_EQ(ev.finalJitter, chol.jitter());
  EXPECT_GE(ev.rcond, 0.0);  // eager on recovery
}

TEST(Cholesky, Rcond1IdentityIsOne) {
  EXPECT_NEAR(Cholesky(Matrix::identity(8)).rcond1(), 1.0, 1e-12);
}

TEST(Cholesky, Rcond1SeparatesWellAndIllConditioned) {
  EXPECT_GT(Cholesky(makeSpd(6)).rcond1(), 1e-4);
  Matrix ill{{1.0, 0.0}, {0.0, 1e-12}};
  EXPECT_LT(Cholesky(ill).rcond1(), 1e-8);
}

TEST(Cholesky, NonFiniteInputThrowsNumericalErrorAndRecords) {
  const auto before =
      alperf::PerfRegistry::instance().count("health.chol.nonfinite");
  Matrix a = makeSpd(3);
  a(1, 1) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(Cholesky{a}, alperf::NumericalError);
  a(1, 1) = std::numeric_limits<double>::infinity();
  EXPECT_THROW(Cholesky{a}, alperf::NumericalError);
  EXPECT_EQ(
      alperf::PerfRegistry::instance().count("health.chol.nonfinite") - before,
      2u);
}

TEST(Cholesky, IndefiniteRecordsCholFailed) {
  const auto before =
      alperf::PerfRegistry::instance().count("health.chol.failed");
  Matrix a{{1.0, 0.0}, {0.0, -5.0}};
  EXPECT_THROW(Cholesky{a}, alperf::NumericalError);
  EXPECT_EQ(
      alperf::PerfRegistry::instance().count("health.chol.failed") - before,
      1u);
}

TEST(Cholesky, StatusNamesRoundTrip) {
  EXPECT_STREQ(la::toString(la::CholeskyStatus::Ok), "Ok");
  EXPECT_STREQ(la::toString(la::CholeskyStatus::RecoveredWithJitter),
               "RecoveredWithJitter");
  EXPECT_STREQ(la::toString(la::CholeskyStatus::NonFiniteInput),
               "NonFiniteInput");
  EXPECT_STREQ(la::toString(la::CholeskyStatus::NotPositiveDefinite),
               "NotPositiveDefinite");
}

TEST(Cholesky, ExtendInvalidatesRcondCache) {
  const Matrix spd = makeSpd(5, 7);
  Cholesky chol(Matrix{{spd(0, 0)}});
  const double before = chol.rcond1();
  EXPECT_GT(before, 0.0);
  // Grow to the full 5x5 matrix; the estimate must track the new matrix.
  for (std::size_t m = 1; m < 5; ++m) {
    Vector k(m);
    for (std::size_t i = 0; i < m; ++i) k[i] = spd(i, m);
    chol.extend(k, spd(m, m));
  }
  const double grown = chol.rcond1();
  const double reference = Cholesky(spd).rcond1();
  EXPECT_GT(grown, 0.0);
  // Same order of magnitude as a fresh factorization's estimate (the
  // extension path only keeps a lower bound on the 1-norm).
  EXPECT_LT(grown, reference * 10.0 + 1e-12);
  EXPECT_GT(grown, reference / 10.0);
}

TEST(Cholesky, SolveSizeMismatchThrows) {
  const Cholesky chol(makeSpd(3));
  EXPECT_THROW(chol.solve(Vector{1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(chol.solve(Matrix(4, 2)), std::invalid_argument);
}

TEST(CholeskyInPlace, ReturnsFalseOnNonSpd) {
  Matrix a{{0.0, 0.0}, {0.0, 0.0}};
  EXPECT_FALSE(la::choleskyInPlace(a));
  Matrix b{{-1.0}};
  EXPECT_FALSE(la::choleskyInPlace(b));
}

TEST(CholeskyInPlace, OneByOne) {
  Matrix a{{9.0}};
  ASSERT_TRUE(la::choleskyInPlace(a));
  EXPECT_DOUBLE_EQ(a(0, 0), 3.0);
}

// Property sweep across sizes: solve residual is tiny and logDet matches
// the sum of log pivot squares.
class CholeskyProperty : public ::testing::TestWithParam<int> {};

TEST_P(CholeskyProperty, SolveResidualSmall) {
  const std::size_t n = static_cast<std::size_t>(GetParam());
  const Matrix a = makeSpd(n, 3);
  Vector b(n);
  for (std::size_t i = 0; i < n; ++i)
    b[i] = std::cos(static_cast<double>(3 * i + 1));
  const Vector x = Cholesky(a).solve(b);
  const Vector ax = la::matvec(a, x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);
}

TEST_P(CholeskyProperty, LogDetConsistentWithFactor) {
  const std::size_t n = static_cast<std::size_t>(GetParam());
  const Cholesky chol(makeSpd(n, 5));
  double expected = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    expected += 2.0 * std::log(chol.factor()(i, i));
  EXPECT_NEAR(chol.logDet(), expected, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 40));
