// Cross-module edge-case tests: boundary conditions and rare paths not
// exercised by the per-module suites.

#include <gtest/gtest.h>

#include <cmath>

#include "alperf.hpp"

namespace al = alperf::al;
namespace cl = alperf::cluster;
namespace gp = alperf::gp;
namespace hp = alperf::hpgmg;
namespace la = alperf::la;
namespace opt = alperf::opt;
namespace st = alperf::stats;
using alperf::stats::Rng;

namespace {

la::Matrix col(const std::vector<double>& xs) {
  la::Matrix m(xs.size(), 1);
  for (std::size_t i = 0; i < xs.size(); ++i) m(i, 0) = xs[i];
  return m;
}

}  // namespace

// --------------------------------------------------------------------- gp

TEST(GpEdge, PosteriorSampleCovarianceMatchesPrediction) {
  // The empirical covariance of many posterior samples approximates the
  // analytic posterior covariance.
  gp::GpConfig cfg;
  cfg.optimize = false;
  cfg.noise.initial = 1e-2;
  gp::GaussianProcess g(gp::makeSquaredExponential(1.0, 1.0), cfg);
  Rng rng(1);
  g.fit(col({0.0, 1.0, 2.0}), la::Vector{0.0, 1.0, 0.0}, rng);

  const la::Matrix q = col({0.5, 1.5});
  const la::Matrix cov = g.posteriorCovariance(q);
  Rng sampleRng(2);
  const auto samples = g.samplePosterior(q, 4000, sampleRng);
  double m0 = 0.0, m1 = 0.0;
  for (const auto& s : samples) {
    m0 += s[0];
    m1 += s[1];
  }
  m0 /= samples.size();
  m1 /= samples.size();
  double c00 = 0.0, c01 = 0.0, c11 = 0.0;
  for (const auto& s : samples) {
    c00 += (s[0] - m0) * (s[0] - m0);
    c01 += (s[0] - m0) * (s[1] - m1);
    c11 += (s[1] - m1) * (s[1] - m1);
  }
  c00 /= samples.size();
  c01 /= samples.size();
  c11 /= samples.size();
  EXPECT_NEAR(c00, cov(0, 0), 0.02);
  EXPECT_NEAR(c01, cov(0, 1), 0.02);
  EXPECT_NEAR(c11, cov(1, 1), 0.02);
}

TEST(GpEdge, PeriodicKernelFitsPeriodicData) {
  // y = sin(2πx): the periodic kernel extrapolates beyond the data where
  // the RBF reverts to the prior.
  Rng rng(3);
  std::vector<double> xs, ys;
  for (int i = 0; i < 24; ++i) {
    xs.push_back(0.25 * i);  // covers [0, 6)
    ys.push_back(std::sin(2.0 * 3.14159265358979 * xs.back()));
  }
  gp::GpConfig cfg;
  cfg.optimize = false;  // exact period given
  cfg.noise.initial = 1e-4;
  gp::GaussianProcess periodic(
      std::make_unique<gp::ConstantKernel>(1.0) *
          std::make_unique<gp::PeriodicKernel>(1.0, 1.0),
      cfg);
  periodic.fit(col(xs), ys, rng);
  // Extrapolate two periods past the data.
  for (double q : {7.25, 8.5}) {
    const auto [mean, var] = periodic.predictOne(std::vector<double>{q});
    EXPECT_NEAR(mean, std::sin(2.0 * 3.14159265358979 * q), 0.1)
        << "q=" << q;
  }
}

TEST(GpEdge, IncludeNoiseBatchConsistent) {
  gp::GpConfig cfg;
  cfg.optimize = false;
  cfg.noise.initial = 0.05;
  gp::GaussianProcess g(gp::makeSquaredExponential(1.0, 1.0), cfg);
  Rng rng(4);
  g.fit(col({0.0, 1.0}), la::Vector{0.0, 1.0}, rng);
  const la::Matrix q = col({0.25, 0.5, 0.75});
  const auto latent = g.predict(q, false);
  const auto observed = g.predict(q, true);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(observed.mean[i], latent.mean[i]);
    EXPECT_NEAR(observed.variance[i] - latent.variance[i], 0.05, 1e-12);
  }
  const auto sd = latent.stdDev();
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_NEAR(sd[i] * sd[i], latent.variance[i], 1e-14);
}

// ------------------------------------------------------------------ stats

TEST(StatsEdge, GoldenSectionRespectsMaxIter) {
  int evals = 0;
  const double x = opt::goldenSection(
      [&evals](double t) {
        ++evals;
        return t * t;
      },
      -10.0, 10.0, 1e-12, /*maxIter=*/5);
  // Coarse tolerance with few iterations: still near 0, few evals.
  EXPECT_LT(std::abs(x), 5.0);
  EXPECT_LE(evals, 10);
}

TEST(StatsEdge, QuantileSingleElement) {
  const std::vector<double> v{42.0};
  EXPECT_DOUBLE_EQ(st::quantile(v, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(st::quantile(v, 0.5), 42.0);
  EXPECT_DOUBLE_EQ(st::quantile(v, 1.0), 42.0);
}

TEST(StatsEdge, WelfordSingleAndTwo) {
  st::Welford w;
  w.add(5.0);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  w.add(7.0);
  EXPECT_DOUBLE_EQ(w.mean(), 6.0);
  EXPECT_DOUBLE_EQ(w.sampleVariance(), 2.0);
}

// ---------------------------------------------------------------- cluster

TEST(ClusterEdge, EnergyWindowEdgesExactSamples) {
  // Samples exactly at the window boundaries: no edge extension needed,
  // integration exact for constant power.
  cl::NodeTrace t;
  for (double x = 100.0; x <= 200.0; x += 5.0)
    t.samples.push_back({x, 150.0});
  const cl::EnergyEstimator est;
  const auto e = est.estimate({&t}, 100.0, 200.0);
  ASSERT_TRUE(e.valid);
  EXPECT_NEAR(e.joules, 150.0 * 100.0, 1e-9);
}

TEST(ClusterEdge, PerfModelSingleCoreMachine) {
  cl::PerfModelParams p;
  p.coresPerNode = 1;
  p.nodes = 1;
  const cl::PerfModel m(p);
  EXPECT_EQ(m.totalCores(), 1);
  EXPECT_EQ(m.coresUsed(128), 1);
  EXPECT_GT(m.meanRuntime({cl::Operator::Poisson1, 1e6, 1, 2.4}), 0.0);
}

TEST(ClusterEdge, ReplayedCampaignIsDeterministic) {
  // Identical seeds → identical simulated campaigns, even with failures.
  const auto runOnce = [] {
    cl::ClusterConfig cfg;
    cfg.failureProbability = 0.3;
    cl::PerfModelParams p;
    cl::ClusterSim sim(cfg, cl::PerfModel(p), 99);
    for (int i = 0; i < 15; ++i)
      sim.submit({cl::Operator::Poisson2, 1e6 * (1 + i % 4),
                  1 + (i * 7) % 32, 1.8},
                 i * 2.0);
    sim.run();
    double sig = 0.0;
    for (const auto& r : sim.records())
      sig += r.runtimeSeconds + r.endTime + r.attempts;
    return sig;
  };
  EXPECT_DOUBLE_EQ(runOnce(), runOnce());
}

// ------------------------------------------------------------------ hpgmg

TEST(HpgmgEdge, MeanReductionEmptyHistory) {
  hp::SolveStats stats;
  EXPECT_DOUBLE_EQ(stats.meanReduction(), 0.0);
}

TEST(HpgmgEdge, SolveFromZeroRhsStaysZero) {
  hp::Multigrid mg(hp::StencilType::Poisson1, 7);
  hp::Field b(7), x(7);
  const auto stats = mg.solve(b, x);
  EXPECT_TRUE(stats.converged);
  EXPECT_NEAR(x.normInf(), 0.0, 1e-12);
}

TEST(HpgmgEdge, CoarsestOnlyHierarchy) {
  // finestN == coarsestN: a single level, direct smoothing solve.
  hp::MgOptions opt;
  opt.coarsestN = 7;
  hp::Multigrid mg(hp::StencilType::Poisson1, 7, opt);
  EXPECT_EQ(mg.numLevels(), 1);
  hp::Field b(7), x(7);
  hp::setInterior(b, [](double px, double, double) { return px; });
  const auto stats = mg.solve(b, x);
  EXPECT_LT(stats.finalResidual, stats.initialResidual);
}

// --------------------------------------------------------------------- al

TEST(AlEdge, SinglePickPoolWorks) {
  al::RegressionProblem p;
  p.x = col({0.0, 1.0, 2.0, 3.0});
  p.y = {0.0, 1.0, 2.0, 3.0};
  p.cost.assign(4, 1.0);
  p.featureNames = {"x"};
  p.responseName = "y";
  gp::GpConfig cfg;
  cfg.nRestarts = 1;
  al::AlConfig alCfg;
  alCfg.nInitial = 1;
  alCfg.activeFraction = 0.5;  // tiny active pool
  al::ActiveLearner learner(
      p, gp::GaussianProcess(gp::makeSquaredExponential(1.0, 1.0), cfg),
      std::make_unique<al::VarianceReduction>(), alCfg);
  Rng rng(5);
  const auto result = learner.run(rng);
  EXPECT_EQ(result.stopReason, al::StopReason::PoolExhausted);
  EXPECT_GE(result.history.size(), 1u);
}

TEST(AlEdge, TradeoffSingleRunSingleIteration) {
  al::BatchResult batch;
  al::AlResult run{.history = {},
                   .partition = {},
                   .stopReason = al::StopReason::MaxIterations,
                   .finalGp = gp::GaussianProcess(
                       gp::makeSquaredExponential(1.0, 1.0))};
  al::IterationRecord rec;
  rec.cumulativeCost = 5.0;
  rec.rmse = 0.5;
  run.history.push_back(rec);
  batch.runs.push_back(run);
  // Degenerate common range (single cost point) must throw, not crash.
  EXPECT_THROW(al::aggregateTradeoff(batch), std::invalid_argument);
}

TEST(AlEdge, EmcmOnTinyTrainingSet) {
  // The paper notes EMCM is unreliable with tiny training sets; ours must
  // at least not crash with a single training point (bootstrap resamples
  // are all copies of it).
  al::RegressionProblem p;
  p.x = col({0.0, 1.0, 2.0});
  p.y = {0.0, 1.0, 2.0};
  p.cost.assign(3, 1.0);
  p.featureNames = {"x"};
  p.responseName = "y";
  gp::GpConfig cfg;
  cfg.nRestarts = 1;
  gp::GaussianProcess g(gp::makeSquaredExponential(1.0, 1.0), cfg);
  Rng rng(6);
  g.fit(col({0.0}), la::Vector{0.0}, rng);
  al::Emcm emcm(3);
  const std::vector<std::size_t> cand{1, 2};
  const al::SelectionContext ctx{g, p, cand, rng};
  EXPECT_NO_THROW(emcm.select(ctx));
}

// ------------------------------------------------------------------- data

TEST(DataEdge, DesignMatrixSingleRow) {
  alperf::data::Table t;
  t.addNumeric("a", {1.5});
  t.addNumeric("b", {2.5});
  const auto m = t.designMatrix({"b", "a"});  // column order respected
  EXPECT_DOUBLE_EQ(m(0, 0), 2.5);
  EXPECT_DOUBLE_EQ(m(0, 1), 1.5);
}

TEST(DataEdge, OneHotSingleLevel) {
  alperf::data::Table t;
  t.addCategorical("op", {"only", "only"});
  const auto names = alperf::data::oneHotEncode(t, "op");
  ASSERT_EQ(names.size(), 1u);
  for (double v : t.numeric("op=only")) EXPECT_DOUBLE_EQ(v, 1.0);
}
