// Unit tests for the deterministic thread pool (common/thread_pool.hpp):
// index coverage, inline fallbacks, nested parallelism, exception
// propagation, global configuration, and a contention stress loop meant to
// run under ThreadSanitizer (the CI tsan job builds exactly this binary).

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "common/perf_stats.hpp"
#include "common/thread_pool.hpp"

namespace {

using alperf::Parallelism;
using alperf::ThreadPool;

/// Restores the global thread count on scope exit so tests don't leak
/// their configuration into each other.
struct ThreadGuard {
  ~ThreadGuard() { Parallelism::setThreads(0); }
};

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallelFor(n, 7, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ZeroIterationsIsANoOp) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallelFor(0, 8, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, SingleThreadRunsSequentiallyInOrder) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.parallelFor(100, 8, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 100u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, RangeWithinOneChunkRunsInline) {
  ThreadPool pool(4);
  // n <= chunk: the calling thread runs everything itself, in order.
  std::vector<std::size_t> order;
  pool.parallelFor(8, 8, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 8u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  const std::size_t outer = 16, inner = 32;
  std::vector<std::atomic<int>> hits(outer * inner);
  pool.parallelFor(outer, 1, [&](std::size_t i) {
    pool.parallelFor(inner, 4, [&](std::size_t j) {
      hits[i * inner + j].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, BodyExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallelFor(256, 4,
                                [&](std::size_t i) {
                                  if (i == 137)
                                    throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The pool stays usable after an exception.
  std::atomic<int> sum{0};
  pool.parallelFor(64, 4, [&](std::size_t) {
    sum.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 64);
}

TEST(ThreadPool, RejectsInvalidArguments) {
  EXPECT_THROW(ThreadPool bad(0), std::invalid_argument);
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallelFor(4, 1, nullptr), std::invalid_argument);
}

TEST(ThreadPool, StressManysmallRegions) {
  // Rapid-fire regions over shared atomics: the TSan target.
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.parallelFor(97, 3, [&](std::size_t i) {
      total.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 200L * (96L * 97L / 2L));
}

TEST(Parallelism, SetThreadsOverridesAndRestores) {
  ThreadGuard guard;
  Parallelism::setThreads(3);
  EXPECT_EQ(Parallelism::threads(), 3);
  EXPECT_EQ(Parallelism::pool().size(), 3);
  Parallelism::setThreads(1);
  EXPECT_EQ(Parallelism::threads(), 1);
  Parallelism::setThreads(0);  // back to automatic
  EXPECT_GE(Parallelism::threads(), 1);
}

TEST(Parallelism, FreeParallelForMatchesSequential) {
  ThreadGuard guard;
  const std::size_t n = 500;
  std::vector<double> seq(n), par(n);
  Parallelism::setThreads(1);
  alperf::parallelFor(n, 16, [&](std::size_t i) {
    seq[i] = static_cast<double>(i) * 1.5;
  });
  Parallelism::setThreads(4);
  alperf::parallelFor(n, 16, [&](std::size_t i) {
    par[i] = static_cast<double>(i) * 1.5;
  });
  EXPECT_EQ(seq, par);
}

TEST(Parallelism, ParseThreadsAcceptsOnlyPositiveIntegers) {
  EXPECT_EQ(Parallelism::parseThreads(nullptr), 0);
  EXPECT_EQ(Parallelism::parseThreads(""), 0);
  EXPECT_EQ(Parallelism::parseThreads("4"), 4);
  EXPECT_EQ(Parallelism::parseThreads("1"), 1);
  EXPECT_EQ(Parallelism::parseThreads("0"), 0);
  EXPECT_EQ(Parallelism::parseThreads("-2"), 0);
  EXPECT_EQ(Parallelism::parseThreads("abc"), 0);
  EXPECT_EQ(Parallelism::parseThreads("4abc"), 0);
  EXPECT_EQ(Parallelism::parseThreads("9999999999"), 0);  // > cap
}

TEST(PerfRegistry, CountsAndTimesAreThreadSafe) {
  auto& reg = alperf::PerfRegistry::instance();
  reg.reset();
  ThreadPool pool(4);
  pool.parallelFor(100, 1, [&](std::size_t) {
    alperf::ScopedTimer t("test.timer");
    reg.increment("test.counter");
  });
  EXPECT_EQ(reg.count("test.counter"), 100u);
  const auto snap = reg.snapshot();
  bool sawTimer = false;
  for (const auto& e : snap)
    if (e.name == "test.timer") {
      sawTimer = true;
      EXPECT_EQ(e.count, 100u);
    }
  EXPECT_TRUE(sawTimer);
  const std::string json = reg.toJson();
  EXPECT_NE(json.find("\"test.counter\""), std::string::npos);
  reg.reset();
  EXPECT_EQ(reg.count("test.counter"), 0u);
}

}  // namespace
