// Tests for sampling helpers (stats/sampling.hpp) and numerical
// integration (stats/integrate.hpp) — the pieces behind dataset
// partitioning, bootstrap ensembles, and IPMI energy estimation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "stats/integrate.hpp"
#include "stats/sampling.hpp"

namespace st = alperf::stats;

TEST(Sampling, PermutationIsAPermutation) {
  st::Rng rng(1);
  const auto p = st::permutation(20, rng);
  std::set<std::size_t> s(p.begin(), p.end());
  EXPECT_EQ(s.size(), 20u);
  EXPECT_EQ(*s.begin(), 0u);
  EXPECT_EQ(*s.rbegin(), 19u);
}

TEST(Sampling, ShuffleKeepsMultiset) {
  st::Rng rng(2);
  std::vector<int> v{1, 1, 2, 3, 5, 8};
  auto sorted = v;
  st::shuffle(v, rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Sampling, ShuffleIsUniformish) {
  // Element 0 should land in each of 5 slots roughly equally often.
  st::Rng rng(3);
  int counts[5] = {};
  for (int trial = 0; trial < 20000; ++trial) {
    std::vector<int> v{0, 1, 2, 3, 4};
    st::shuffle(v, rng);
    for (int i = 0; i < 5; ++i)
      if (v[i] == 0) ++counts[i];
  }
  for (int c : counts) EXPECT_NEAR(c, 4000, 300);
}

TEST(Sampling, WithoutReplacementDistinct) {
  st::Rng rng(4);
  const auto s = st::sampleWithoutReplacement(50, 10, rng);
  EXPECT_EQ(s.size(), 10u);
  std::set<std::size_t> distinct(s.begin(), s.end());
  EXPECT_EQ(distinct.size(), 10u);
  for (auto i : s) EXPECT_LT(i, 50u);
  EXPECT_THROW(st::sampleWithoutReplacement(3, 4, rng),
               std::invalid_argument);
}

TEST(Sampling, WithReplacementBounds) {
  st::Rng rng(5);
  const auto s = st::sampleWithReplacement(7, 100, rng);
  EXPECT_EQ(s.size(), 100u);
  for (auto i : s) EXPECT_LT(i, 7u);
  EXPECT_THROW(st::sampleWithReplacement(0, 3, rng), std::invalid_argument);
}

TEST(Sampling, BootstrapHasRepeatsWithHighProbability) {
  st::Rng rng(6);
  const auto s = st::sampleWithReplacement(100, 100, rng);
  std::set<std::size_t> distinct(s.begin(), s.end());
  // E[distinct] ≈ 63; anything below 90 confirms replacement.
  EXPECT_LT(distinct.size(), 90u);
}

TEST(Sampling, WeightedChoiceRespectsWeights) {
  st::Rng rng(7);
  const std::vector<double> w{1.0, 0.0, 3.0};
  int counts[3] = {};
  for (int i = 0; i < 40000; ++i) ++counts[st::weightedChoice(w, rng)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0], 10000, 500);
  EXPECT_NEAR(counts[2], 30000, 500);
}

TEST(Sampling, WeightedChoiceValidation) {
  st::Rng rng(8);
  EXPECT_THROW(st::weightedChoice(std::vector<double>{0.0, 0.0}, rng),
               std::invalid_argument);
  EXPECT_THROW(st::weightedChoice(std::vector<double>{1.0, -1.0}, rng),
               std::invalid_argument);
}

TEST(Integrate, TrapezoidUniformLinearIsExact) {
  // ∫₀⁴ (2t+1) dt = 20 with h = 1 over 5 samples.
  const std::vector<double> y{1.0, 3.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(st::trapezoidUniform(y, 1.0), 20.0, 1e-12);
}

TEST(Integrate, TrapezoidUniformValidation) {
  EXPECT_THROW(st::trapezoidUniform(std::vector<double>{1.0}, 1.0),
               std::invalid_argument);
  EXPECT_THROW(st::trapezoidUniform(std::vector<double>{1.0, 2.0}, 0.0),
               std::invalid_argument);
}

TEST(Integrate, IrregularMatchesUniformOnRegularGrid) {
  const std::vector<double> t{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> y{2.0, 4.0, 4.0, 2.0};
  EXPECT_NEAR(st::trapezoidIrregular(t, y), st::trapezoidUniform(y, 1.0),
              1e-12);
}

TEST(Integrate, IrregularLinearExact) {
  const std::vector<double> t{0.0, 0.5, 2.0, 2.25, 5.0};
  std::vector<double> y(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) y[i] = 3.0 * t[i] + 1.0;
  // ∫₀⁵ (3t+1) dt = 42.5.
  EXPECT_NEAR(st::trapezoidIrregular(t, y), 42.5, 1e-12);
}

TEST(Integrate, IrregularRequiresIncreasingTime) {
  EXPECT_THROW(st::trapezoidIrregular(std::vector<double>{0.0, 0.0},
                                      std::vector<double>{1.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(st::trapezoidIrregular(std::vector<double>{1.0, 0.5},
                                      std::vector<double>{1.0, 1.0}),
               std::invalid_argument);
}

TEST(Integrate, SimpsonExactForCubics) {
  // Simpson integrates cubics exactly: ∫₀² t³ dt = 4.
  const double v = st::simpson([](double t) { return t * t * t; }, 0.0, 2.0,
                               2);
  EXPECT_NEAR(v, 4.0, 1e-12);
}

TEST(Integrate, SimpsonConvergesForSmoothFunction) {
  const double exact = 2.0;  // ∫₀^π sin t dt
  const double coarse =
      st::simpson([](double t) { return std::sin(t); }, 0.0, 3.14159265358979,
                  4);
  const double fine =
      st::simpson([](double t) { return std::sin(t); }, 0.0, 3.14159265358979,
                  64);
  EXPECT_LT(std::abs(fine - exact), std::abs(coarse - exact));
  EXPECT_NEAR(fine, exact, 1e-6);
}

TEST(Integrate, SimpsonOddNIsRounded) {
  // n=3 is promoted to 4 internally; result should still be accurate.
  const double v =
      st::simpson([](double t) { return t * t; }, 0.0, 3.0, 3);
  EXPECT_NEAR(v, 9.0, 1e-12);
}

TEST(Integrate, SimpsonValidation) {
  EXPECT_THROW(st::simpson([](double) { return 1.0; }, 1.0, 0.0, 4),
               std::invalid_argument);
  EXPECT_THROW(st::simpson([](double) { return 1.0; }, 0.0, 1.0, 1),
               std::invalid_argument);
}

// Parameterized property: trapezoid error shrinks ~h² for a smooth
// integrand.
class TrapezoidConvergence : public ::testing::TestWithParam<int> {};

TEST_P(TrapezoidConvergence, QuadraticOrder) {
  const int n = GetParam();
  const auto evalAt = [](int samples) {
    std::vector<double> y(samples + 1);
    const double h = 1.0 / samples;
    for (int i = 0; i <= samples; ++i) y[i] = std::exp(i * h);
    return std::abs(st::trapezoidUniform(y, h) - (std::exp(1.0) - 1.0));
  };
  const double errCoarse = evalAt(n);
  const double errFine = evalAt(2 * n);
  EXPECT_NEAR(errCoarse / errFine, 4.0, 0.4);
}

INSTANTIATE_TEST_SUITE_P(Resolutions, TrapezoidConvergence,
                         ::testing::Values(8, 16, 32, 64));
