// Determinism contract of the parallel AL hot path: every parallel code
// path (multi-start GP fitting, pool scoring, EMCM ensembles) must produce
// bit-identical results for any thread count, and the incremental-Cholesky
// posterior reuse must match a full refactorization to tight tolerance.
// The CI tsan job builds this binary alongside test_thread_pool.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/perf_stats.hpp"
#include "common/thread_pool.hpp"
#include "core/learner.hpp"
#include "gp/distance_cache.hpp"
#include "gp/kernels.hpp"
#include "la/blas.hpp"
#include "la/cholesky.hpp"

namespace al = alperf::al;
namespace gp = alperf::gp;
namespace la = alperf::la;
using alperf::Parallelism;
using alperf::PerfRegistry;
using alperf::stats::Rng;

namespace {

/// Restores the global thread count on scope exit.
struct ThreadGuard {
  ~ThreadGuard() { Parallelism::setThreads(0); }
};

al::RegressionProblem syntheticProblem(std::size_t n = 60) {
  al::RegressionProblem p;
  p.x = la::Matrix(n, 2);
  p.y.resize(n);
  p.cost.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n - 1);
    p.x(i, 0) = 10.0 * t;
    p.x(i, 1) = std::cos(3.0 * t);
    p.y[i] = std::sin(6.0 * t) + 0.3 * t * t;
    p.cost[i] = 1.0 + 0.5 * t;
  }
  p.featureNames = {"x0", "x1"};
  p.responseName = "y";
  return p;
}

gp::GaussianProcess smallGp(int nRestarts = 2) {
  gp::GpConfig cfg;
  cfg.nRestarts = nRestarts;
  cfg.noise.lo = 1e-4;
  return gp::GaussianProcess(gp::makeSquaredExponentialArd(1.0, {1.0, 1.0}),
                             cfg);
}

void expectIdenticalHistory(const std::vector<al::IterationRecord>& a,
                            const std::vector<al::IterationRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].chosenRow, b[i].chosenRow) << "iter " << i;
    EXPECT_EQ(a[i].sigmaAtPick, b[i].sigmaAtPick) << "iter " << i;
    EXPECT_EQ(a[i].muAtPick, b[i].muAtPick) << "iter " << i;
    EXPECT_EQ(a[i].amsd, b[i].amsd) << "iter " << i;
    EXPECT_EQ(a[i].rmse, b[i].rmse) << "iter " << i;
    EXPECT_EQ(a[i].noiseVariance, b[i].noiseVariance) << "iter " << i;
    EXPECT_EQ(a[i].lml, b[i].lml) << "iter " << i;
  }
}

al::AlResult runCampaign(al::StrategyPtr strategy, unsigned seed,
                         al::AlConfig cfg = {}) {
  cfg.nInitial = 4;
  if (cfg.maxIterations < 0) cfg.maxIterations = 12;
  al::ActiveLearner learner(syntheticProblem(), smallGp(),
                            std::move(strategy), cfg);
  Rng rng(seed);
  return learner.run(rng);
}

TEST(ParallelDeterminism, GpFitThetaIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const auto problem = syntheticProblem();
  la::Matrix x = problem.x;
  la::Vector y = problem.y;

  Parallelism::setThreads(1);
  gp::GaussianProcess seq = smallGp(3);
  Rng rngSeq(7);
  seq.fit(x, y, rngSeq);

  Parallelism::setThreads(4);
  gp::GaussianProcess par = smallGp(3);
  Rng rngPar(7);
  par.fit(x, y, rngPar);

  const auto ts = seq.thetaFull();
  const auto tp = par.thetaFull();
  ASSERT_EQ(ts.size(), tp.size());
  for (std::size_t i = 0; i < ts.size(); ++i) EXPECT_EQ(ts[i], tp[i]) << i;
  EXPECT_EQ(seq.logMarginalLikelihood(), par.logMarginalLikelihood());
  // The RNG streams must also align: both fits drew the same start points.
  EXPECT_EQ(rngSeq(), rngPar());
}

TEST(ParallelDeterminism, PredictIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const auto problem = syntheticProblem(80);
  gp::GaussianProcess g = smallGp();
  g.config().optimize = false;
  Rng rng(3);
  g.fit(problem.x, problem.y, rng);

  Parallelism::setThreads(1);
  const auto seq = g.predict(problem.x);
  Parallelism::setThreads(4);
  const auto par = g.predict(problem.x);
  ASSERT_EQ(seq.variance.size(), par.variance.size());
  for (std::size_t i = 0; i < seq.variance.size(); ++i) {
    EXPECT_EQ(seq.mean[i], par.mean[i]) << i;
    EXPECT_EQ(seq.variance[i], par.variance[i]) << i;
  }
}

TEST(ParallelDeterminism, CampaignTraceIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  al::AlConfig cfg;
  cfg.refitEvery = 2;  // exercise the incremental posterior path too
  Parallelism::setThreads(1);
  const auto seq =
      runCampaign(std::make_unique<al::CostEfficiency>(), 11, cfg);
  Parallelism::setThreads(4);
  const auto par =
      runCampaign(std::make_unique<al::CostEfficiency>(), 11, cfg);
  expectIdenticalHistory(seq.history, par.history);
}

TEST(ParallelDeterminism, EmcmScoresIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  al::AlConfig cfg;
  cfg.maxIterations = 6;
  Parallelism::setThreads(1);
  const auto seq = runCampaign(std::make_unique<al::Emcm>(4), 17, cfg);
  Parallelism::setThreads(4);
  const auto par = runCampaign(std::make_unique<al::Emcm>(4), 17, cfg);
  expectIdenticalHistory(seq.history, par.history);
}

TEST(IncrementalPosterior, MatchesFullRefactorizationTo1e10) {
  // Golden test: with refitEvery > 1, the incremental-Cholesky campaign
  // must track the force-refactorize campaign to 1e-10 on every metric.
  al::AlConfig inc;
  inc.refitEvery = 3;
  inc.incrementalPosterior = true;
  al::AlConfig full = inc;
  full.incrementalPosterior = false;

  const auto a =
      runCampaign(std::make_unique<al::VarianceReduction>(), 23, inc);
  const auto b =
      runCampaign(std::make_unique<al::VarianceReduction>(), 23, full);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].chosenRow, b.history[i].chosenRow) << i;
    EXPECT_NEAR(a.history[i].amsd, b.history[i].amsd, 1e-10) << i;
    EXPECT_NEAR(a.history[i].rmse, b.history[i].rmse, 1e-10) << i;
    EXPECT_NEAR(a.history[i].sigmaAtPick, b.history[i].sigmaAtPick, 1e-10)
        << i;
    EXPECT_NEAR(a.history[i].lml, b.history[i].lml, 1e-8) << i;
  }
}

TEST(IncrementalPosterior, GpExtensionMatchesFullRefitTo1e10) {
  const auto problem = syntheticProblem(40);
  gp::GaussianProcess incremental = smallGp();
  incremental.config().optimize = false;
  Rng rng(5);

  // Fit on the first 30 points, then extend one at a time.
  la::Matrix x0(30, 2);
  la::Vector y0(30);
  for (std::size_t i = 0; i < 30; ++i) {
    std::copy(problem.x.row(i).begin(), problem.x.row(i).end(),
              x0.row(i).begin());
    y0[i] = problem.y[i];
  }
  incremental.fit(std::move(x0), std::move(y0), rng);
  for (std::size_t i = 30; i < 40; ++i)
    incremental.addObservation(problem.x.row(i), problem.y[i]);

  gp::GaussianProcess full = smallGp();
  full.config().optimize = false;
  full.fit(problem.x, problem.y, rng);

  EXPECT_NEAR(incremental.logMarginalLikelihood(),
              full.logMarginalLikelihood(), 1e-10);
  const auto pi = incremental.predict(problem.x);
  const auto pf = full.predict(problem.x);
  for (std::size_t i = 0; i < pi.mean.size(); ++i) {
    EXPECT_NEAR(pi.mean[i], pf.mean[i], 1e-10) << i;
    EXPECT_NEAR(pi.variance[i], pf.variance[i], 1e-10) << i;
  }
}

la::Matrix determinismSpd(std::size_t n, unsigned seed) {
  Rng rng(seed);
  la::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const double v = rng.uniformReal(-1.0, 1.0);
      a(i, j) = v;
      a(j, i) = v;
    }
    a(i, i) = static_cast<double>(n) + 1.0;
  }
  return a;
}

void expectBitIdentical(const la::Matrix& got, const la::Matrix& want) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (std::size_t i = 0; i < got.rows(); ++i)
    for (std::size_t j = 0; j < got.cols(); ++j)
      ASSERT_EQ(got(i, j), want(i, j)) << "(" << i << "," << j << ")";
}

TEST(ParallelDeterminism, BlockedCholeskyBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  // 300 spans several 64-wide panels and a ragged tail tile.
  const la::Matrix spd = determinismSpd(300, 31);

  Parallelism::setThreads(1);
  la::Matrix baseline = spd;
  ASSERT_TRUE(la::choleskyInPlaceBlocked(baseline));

  for (const int threads : {2, 4, 8}) {
    Parallelism::setThreads(threads);
    la::Matrix l = spd;
    ASSERT_TRUE(la::choleskyInPlaceBlocked(l));
    expectBitIdentical(l, baseline);
  }
}

TEST(ParallelDeterminism, BlockedGemmAndTrsmBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  Rng rng(37);
  la::Matrix a(130, 97), b(97, 150);
  for (double& v : a.data()) v = rng.uniformReal(-1.0, 1.0);
  for (double& v : b.data()) v = rng.uniformReal(-1.0, 1.0);
  la::Matrix l = determinismSpd(130, 41);
  ASSERT_TRUE(la::choleskyInPlaceBlocked(l));
  la::Matrix rhs(130, 80);
  for (double& v : rhs.data()) v = rng.uniformReal(-1.0, 1.0);

  Parallelism::setThreads(1);
  const la::Matrix gemmBase = la::matmulBlocked(a, b);
  la::Matrix trsmBase = rhs;
  la::trsmLowerLeft(l, trsmBase);
  la::trsmUpperLeft(l, trsmBase);

  for (const int threads : {2, 4, 8}) {
    Parallelism::setThreads(threads);
    expectBitIdentical(la::matmulBlocked(a, b), gemmBase);
    la::Matrix x = rhs;
    la::trsmLowerLeft(l, x);
    la::trsmUpperLeft(l, x);
    expectBitIdentical(x, trsmBase);
  }
}

TEST(ParallelDeterminism, CachedGramBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const auto problem = syntheticProblem(90);
  const auto kernel = gp::makeSquaredExponentialArd(1.3, {0.9, 1.7});
  gp::DistanceCache cache;
  cache.sync(problem.x);

  Parallelism::setThreads(1);
  const la::Matrix base = kernel->gram(problem.x, cache);
  for (const int threads : {2, 4, 8}) {
    Parallelism::setThreads(threads);
    expectBitIdentical(kernel->gram(problem.x, cache), base);
  }
}

TEST(IncrementalPosterior, CampaignActuallyTakesTheIncrementalPath) {
  PerfRegistry::instance().reset();
  al::AlConfig cfg;
  cfg.refitEvery = 3;
  const auto result =
      runCampaign(std::make_unique<al::VarianceReduction>(), 29, cfg);
  EXPECT_FALSE(result.history.empty());
  // 12 iterations at refitEvery=3: 4 full fits in-loop + the final fit,
  // the other 8 iterations extend the factorization.
  EXPECT_GT(PerfRegistry::instance().count("al.fit.incremental"), 0u);
  EXPECT_GT(PerfRegistry::instance().count("al.fit.full"), 0u);
  EXPECT_GT(PerfRegistry::instance().count("gp.fit"), 0u);
  PerfRegistry::instance().reset();
}

}  // namespace
