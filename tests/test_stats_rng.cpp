// Tests for the deterministic RNG (stats/rng.hpp): reproducibility,
// distribution moments, and range contracts.

#include "stats/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

using alperf::stats::Rng;

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(7);
  Rng c = a.split();
  // The split stream should not replay the parent's continuation.
  Rng b(7);
  (void)b();  // advance the same step split() consumed
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (c() == b()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanAndVariance) {
  Rng rng(42);
  double sum = 0.0, sumSq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform01();
    sum += u;
    sumSq += u * u;
  }
  const double mean = sum / n;
  const double var = sumSq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformRealRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniformReal(-3.0, 7.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 7.0);
  }
  EXPECT_THROW(rng.uniformReal(1.0, 0.0), std::invalid_argument);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniformInt(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3u);
  EXPECT_EQ(*seen.rbegin(), 7u);
}

TEST(Rng, UniformIntUnbiasedOnSmallRange) {
  Rng rng(11);
  int counts[3] = {0, 0, 0};
  const int n = 90000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniformInt(0, 2)];
  for (int c : counts) EXPECT_NEAR(c, n / 3.0, 0.05 * n / 3.0);
}

TEST(Rng, IndexContract) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_LT(rng.index(10), 10u);
  EXPECT_THROW(rng.index(0), std::invalid_argument);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(17);
  double sum = 0.0, sumSq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sumSq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sumSq / n, 1.0, 0.02);
}

TEST(Rng, NormalScaled) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
  EXPECT_THROW(rng.normal(0.0, -1.0), std::invalid_argument);
}

TEST(Rng, LognormalMedianIsExpMu) {
  Rng rng(23);
  std::vector<double> v(50001);
  for (auto& x : v) x = rng.lognormal(1.0, 0.5);
  std::sort(v.begin(), v.end());
  EXPECT_NEAR(v[v.size() / 2], std::exp(1.0), 0.1);
  for (double x : v) EXPECT_GT(x, 0.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
  EXPECT_THROW(rng.bernoulli(1.5), std::invalid_argument);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(31);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

// Golden values: lock the exact stream so cross-platform reproducibility
// regressions are caught immediately.
TEST(Rng, GoldenStreamIsStable) {
  Rng rng(0);
  const std::uint64_t a = rng();
  const std::uint64_t b = rng();
  Rng rng2(0);
  EXPECT_EQ(rng2(), a);
  EXPECT_EQ(rng2(), b);
  // A fresh seed-42 generator always opens with the same value.
  Rng r42a(42), r42b(42);
  EXPECT_EQ(r42a(), r42b());
}
