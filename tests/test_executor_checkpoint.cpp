// Fault-tolerant execution layer tests: RetryPolicy/executor accounting,
// quarantine semantics inside the AL loop, censored-measurement routing,
// GP fit diagnostics and refit fallback, RNG state round-trips, and the
// golden checkpoint/resume property — a campaign interrupted half-way and
// resumed from its serialized checkpoint must reproduce the uninterrupted
// trace bit for bit.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <numeric>
#include <set>

#include "common/error.hpp"
#include "core/checkpoint.hpp"
#include "core/continuous.hpp"
#include "core/learner.hpp"
#include "gp/kernels.hpp"

namespace al = alperf::al;
namespace gp = alperf::gp;
namespace la = alperf::la;
namespace data = alperf::data;
using alperf::Measurement;
using alperf::MeasurementStatus;
using alperf::stats::Rng;

namespace {

al::RegressionProblem syntheticProblem(std::size_t n = 50) {
  al::RegressionProblem p;
  p.x = la::Matrix(n, 1);
  p.y.resize(n);
  p.cost.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n - 1);
    p.x(i, 0) = 10.0 * t;
    p.y[i] = std::sin(6.0 * t) + 0.3 * t;
    p.cost[i] = 1.0 + 0.5 * t;
  }
  p.featureNames = {"x"};
  p.responseName = "y";
  return p;
}

gp::GaussianProcess smallGp() {
  gp::GpConfig cfg;
  cfg.nRestarts = 1;
  cfg.noise.lo = 1e-4;
  return gp::GaussianProcess(gp::makeSquaredExponential(1.0, 1.0), cfg);
}

al::ActiveLearner makeLearner(int maxIterations, al::AlConfig base = {}) {
  base.nInitial = 3;
  base.maxIterations = maxIterations;
  base.refitEvery = 2;  // exercise both the refit and the posterior path
  return al::ActiveLearner(syntheticProblem(), smallGp(),
                           std::make_unique<al::VarianceReduction>(), base);
}

void expectSameHistory(const std::vector<al::IterationRecord>& a,
                       const std::vector<al::IterationRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].iteration, b[i].iteration) << "iter " << i;
    EXPECT_EQ(a[i].chosenRow, b[i].chosenRow) << "iter " << i;
    EXPECT_DOUBLE_EQ(a[i].sigmaAtPick, b[i].sigmaAtPick) << "iter " << i;
    EXPECT_DOUBLE_EQ(a[i].muAtPick, b[i].muAtPick) << "iter " << i;
    EXPECT_DOUBLE_EQ(a[i].amsd, b[i].amsd) << "iter " << i;
    EXPECT_DOUBLE_EQ(a[i].rmse, b[i].rmse) << "iter " << i;
    EXPECT_DOUBLE_EQ(a[i].pickCost, b[i].pickCost) << "iter " << i;
    EXPECT_DOUBLE_EQ(a[i].cumulativeCost, b[i].cumulativeCost)
        << "iter " << i;
    EXPECT_DOUBLE_EQ(a[i].noiseVariance, b[i].noiseVariance) << "iter " << i;
    EXPECT_DOUBLE_EQ(a[i].lml, b[i].lml) << "iter " << i;
    EXPECT_DOUBLE_EQ(a[i].failedAttempts, b[i].failedAttempts)
        << "iter " << i;
    EXPECT_DOUBLE_EQ(a[i].wastedCost, b[i].wastedCost) << "iter " << i;
    EXPECT_DOUBLE_EQ(a[i].censored, b[i].censored) << "iter " << i;
  }
}

void removeCheckpointFiles(const std::string& prefix) {
  for (const char* suffix : {".meta.csv", ".trace.csv", ".sets.csv"})
    std::remove((prefix + suffix).c_str());
}

}  // namespace

// ---------------------------------------- retry policy + executor

TEST(RetryPolicy, ValidationRejectsNonsense) {
  const auto check = [](auto mutate) {
    al::RetryPolicy p;
    mutate(p);
    p.validate();
  };
  EXPECT_THROW(check([](al::RetryPolicy& p) { p.maxRetries = -1; }),
               std::invalid_argument);
  EXPECT_THROW(check([](al::RetryPolicy& p) { p.backoffCostBase = -1.0; }),
               std::invalid_argument);
  EXPECT_THROW(check([](al::RetryPolicy& p) { p.backoffGrowth = 0.5; }),
               std::invalid_argument);
  EXPECT_THROW(check([](al::RetryPolicy& p) { p.backoffCostCap = -1.0; }),
               std::invalid_argument);
  EXPECT_NO_THROW(check([](al::RetryPolicy&) {}));
}

TEST(RetryPolicy, BackoffGrowsExponentiallyToCap) {
  al::RetryPolicy p;
  p.backoffCostBase = 2.0;
  p.backoffGrowth = 3.0;
  p.backoffCostCap = 10.0;
  EXPECT_DOUBLE_EQ(p.backoffCost(1), 2.0);
  EXPECT_DOUBLE_EQ(p.backoffCost(2), 6.0);
  EXPECT_DOUBLE_EQ(p.backoffCost(3), 10.0);  // 18 capped
  EXPECT_DOUBLE_EQ(p.backoffCost(9), 10.0);
  al::RetryPolicy free;  // zero base: retries carry no surcharge
  EXPECT_DOUBLE_EQ(free.backoffCost(5), 0.0);
}

TEST(Executor, RetriesUntilSuccessAndChargesWaste) {
  al::RetryPolicy policy;
  policy.maxRetries = 3;
  policy.backoffCostBase = 1.0;
  policy.backoffGrowth = 2.0;
  al::ExperimentExecutor executor(policy);
  int calls = 0;
  const auto result = executor.execute([&] {
    ++calls;
    if (calls < 3) return Measurement::failed(0.5);
    return Measurement::ok(42.0, 3.0);
  });
  EXPECT_EQ(calls, 3);
  EXPECT_FALSE(result.quarantined);
  EXPECT_EQ(result.attempts, 3);
  EXPECT_EQ(result.measurement.status, MeasurementStatus::Ok);
  EXPECT_DOUBLE_EQ(result.measurement.y, 42.0);
  // Two failed attempts at 0.5 each, plus backoff surcharges 1 and 2.
  EXPECT_DOUBLE_EQ(result.wastedCost, 0.5 + 1.0 + 0.5 + 2.0);
  EXPECT_DOUBLE_EQ(result.totalCost(), result.wastedCost + 3.0);
  EXPECT_DOUBLE_EQ(executor.totalWastedCost(), result.wastedCost);
  EXPECT_EQ(executor.totalFailedAttempts(), 2);
  EXPECT_EQ(executor.totalQuarantined(), 0);
}

TEST(Executor, QuarantinesAfterExhaustingRetries) {
  al::RetryPolicy policy;
  policy.maxRetries = 2;
  al::ExperimentExecutor executor(policy);
  int calls = 0;
  const auto result =
      executor.execute([&] { ++calls; return Measurement::failed(1.0); });
  EXPECT_EQ(calls, 3);  // initial + 2 retries
  EXPECT_TRUE(result.quarantined);
  EXPECT_EQ(result.attempts, 3);
  EXPECT_DOUBLE_EQ(result.wastedCost, 3.0);
  EXPECT_DOUBLE_EQ(result.totalCost(), 3.0);  // nothing useful was bought
  EXPECT_EQ(executor.totalQuarantined(), 1);
  EXPECT_EQ(executor.totalFailedAttempts(), 3);
}

TEST(Executor, BackendInternalWasteJoinsTheLedger) {
  al::ExperimentExecutor executor;
  const auto result = executor.execute([] {
    Measurement m = Measurement::ok(5.0, 2.0);
    m.wastedCost = 7.0;  // e.g. the scheduler requeued twice internally
    m.attempts = 3;
    return m;
  });
  EXPECT_EQ(result.attempts, 3);
  EXPECT_DOUBLE_EQ(result.wastedCost, 7.0);
  EXPECT_DOUBLE_EQ(result.measurement.wastedCost, 0.0);  // moved out
  EXPECT_EQ(executor.totalFailedAttempts(), 2);
}

// ---------------------------------------- RNG state round-trip

TEST(RngState, SaveRestoreReproducesStream) {
  Rng a(123);
  a.uniformReal(0.0, 1.0);
  a.normal();  // leaves a Box–Muller spare pending
  const auto s = a.saveState();
  std::vector<double> expected;
  for (int i = 0; i < 20; ++i) expected.push_back(a.normal());
  Rng b(999);  // entirely different stream until restored
  b.restoreState(s);
  for (int i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(b.normal(), expected[i]);
}

// ---------------------------------------- GP fit diagnostics + fallback

TEST(FitDiagnostics, RecordsRejectedFitOnDivergentObjective) {
  gp::GaussianProcess g = smallGp();
  la::Matrix x(5, 1);
  la::Vector y(5);
  for (std::size_t i = 0; i < 5; ++i) {
    x(i, 0) = static_cast<double>(i);
    // Huge responses overflow y·α in the LML: every proposal is -inf.
    y[i] = 1e155 * (1.0 + static_cast<double>(i));
  }
  Rng rng(3);
  EXPECT_EQ(g.diagnostics().total(), 0);
  try {
    g.fit(x, y, rng);
  } catch (const alperf::NumericalError&) {
    // Acceptable: the degenerate posterior may refuse to factorize.
  }
  EXPECT_GT(g.diagnostics().nonFiniteObjectives, 0);
  EXPECT_GE(g.diagnostics().rejectedFits, 1);
  g.resetDiagnostics();
  EXPECT_EQ(g.diagnostics().total(), 0);
}

TEST(FitDiagnostics, CleanFitLeavesCountersAtZero) {
  gp::GaussianProcess g = smallGp();
  la::Matrix x(6, 1);
  la::Vector y(6);
  for (std::size_t i = 0; i < 6; ++i) {
    x(i, 0) = static_cast<double>(i);
    y[i] = std::sin(static_cast<double>(i));
  }
  Rng rng(4);
  g.fit(x, y, rng);
  EXPECT_EQ(g.diagnostics().rejectedFits, 0);
}

TEST(SetThetaFull, ValidatesAndRoundTrips) {
  gp::GaussianProcess g = smallGp();
  const auto theta = g.thetaFull();
  std::vector<double> perturbed(theta.begin(), theta.end());
  for (double& t : perturbed) t += 0.25;
  g.setThetaFull(perturbed);
  const auto back = g.thetaFull();
  ASSERT_EQ(back.size(), perturbed.size());
  for (std::size_t i = 0; i < back.size(); ++i)
    EXPECT_DOUBLE_EQ(back[i], perturbed[i]);
  EXPECT_THROW(g.setThetaFull(std::vector<double>{1.0}),
               std::invalid_argument);
  perturbed[0] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(g.setThetaFull(perturbed), std::invalid_argument);
}

// ---------------------------------------- fallible AL loop

TEST(FallibleLoop, QuarantinesAndChargesWithoutThrowing) {
  const auto problem = syntheticProblem();
  const auto learner = makeLearner(20);
  Rng partRng(42);
  const auto partition = alperf::data::triPartition(problem.size(), 3, 0.8,
                                                    partRng);
  // Rows ≡ 2 (mod 5) always fail; everything else measures cleanly.
  const auto alwaysFails = [](std::size_t row) { return row % 5 == 2; };
  const al::FallibleRowOracle oracle = [&](std::size_t row) {
    if (alwaysFails(row)) return Measurement::failed(0.5);
    return Measurement::ok(problem.y[row], problem.cost[row]);
  };
  al::RetryPolicy policy;
  policy.maxRetries = 1;
  policy.backoffCostBase = 0.25;
  Rng rng(7);
  const auto result =
      learner.runFallibleWithPartition(oracle, policy, partition, rng);

  EXPECT_EQ(result.history.size(), 20u);
  double expectedCumulative = 0.0;
  std::set<std::size_t> seen;
  for (const auto& rec : result.history) {
    EXPECT_TRUE(seen.insert(rec.chosenRow).second)
        << "row " << rec.chosenRow << " picked twice";
    expectedCumulative += rec.pickCost + rec.wastedCost;
    EXPECT_DOUBLE_EQ(rec.cumulativeCost, expectedCumulative);
    if (alwaysFails(rec.chosenRow)) {
      EXPECT_DOUBLE_EQ(rec.pickCost, 0.0);
      EXPECT_DOUBLE_EQ(rec.failedAttempts, 2.0);
      // Two burned attempts at 0.5 plus the single backoff surcharge.
      EXPECT_DOUBLE_EQ(rec.wastedCost, 1.25);
    } else {
      EXPECT_DOUBLE_EQ(rec.failedAttempts, 0.0);
      EXPECT_DOUBLE_EQ(rec.wastedCost, 0.0);
    }
  }
  for (const std::size_t row : result.quarantined()) {
    EXPECT_TRUE(alwaysFails(row));
    EXPECT_EQ(std::count(result.checkpoint.train.begin(),
                         result.checkpoint.train.end(), row),
              0)
        << "quarantined row " << row << " reached the training set";
    EXPECT_EQ(std::count(result.checkpoint.pool.begin(),
                         result.checkpoint.pool.end(), row),
              0)
        << "quarantined row " << row << " still selectable";
  }
  // Every quarantined pick burned budget: the trace must show it.
  if (!result.quarantined().empty()) {
    EXPECT_GT(result.history.back().cumulativeCost,
              std::accumulate(result.history.begin(), result.history.end(),
                              0.0, [](double acc, const auto& r) {
                                return acc + r.pickCost;
                              }));
  }
}

TEST(FallibleLoop, CensoredMeasurementsTrainOnLowerBound) {
  const auto problem = syntheticProblem();
  const auto learner = makeLearner(15);
  Rng partRng(42);
  const auto partition = alperf::data::triPartition(problem.size(), 3, 0.8,
                                                    partRng);
  const auto isCensored = [](std::size_t row) { return row % 4 == 1; };
  const al::FallibleRowOracle oracle = [&](std::size_t row) {
    if (isCensored(row))
      return Measurement::censored(0.8 * problem.y[row], problem.cost[row]);
    return Measurement::ok(problem.y[row], problem.cost[row]);
  };
  Rng rng(7);
  const auto result = learner.runFallibleWithPartition(
      oracle, al::RetryPolicy{}, partition, rng);
  EXPECT_TRUE(result.quarantined().empty());
  for (const auto& rec : result.history)
    EXPECT_DOUBLE_EQ(rec.censored,
                     isCensored(rec.chosenRow) ? 1.0 : 0.0);
  const auto& cp = result.checkpoint;
  ASSERT_EQ(cp.train.size(), cp.trainY.size());
  for (std::size_t i = 0; i < cp.train.size(); ++i) {
    const std::size_t row = cp.train[i];
    // Initial-partition rows come pre-measured from the table; only rows
    // consumed through the oracle can be censored.
    const bool seedRow =
        std::count(partition.initial.begin(), partition.initial.end(), row) >
        0;
    const double expected = (!seedRow && isCensored(row))
                                ? 0.8 * problem.y[row]
                                : problem.y[row];
    EXPECT_DOUBLE_EQ(cp.trainY[i], expected) << "row " << row;
  }
}

TEST(FallibleLoop, AllRowsFailingStopsOracleExhausted) {
  const auto learner = makeLearner(-1);  // run until the pool drains
  Rng partRng(42);
  const auto partition =
      alperf::data::triPartition(learner.problem().size(), 3, 0.8, partRng);
  const al::FallibleRowOracle oracle = [](std::size_t) {
    return Measurement::failed(1.0);
  };
  al::RetryPolicy policy;
  policy.maxRetries = 0;
  Rng rng(7);
  const auto result =
      learner.runFallibleWithPartition(oracle, policy, partition, rng);
  EXPECT_EQ(result.stopReason, al::StopReason::OracleExhausted);
  EXPECT_EQ(result.quarantined().size(), partition.active.size());
  EXPECT_TRUE(result.checkpoint.pool.empty());
  // The initial seed rows keep the final GP alive despite zero successes.
  EXPECT_EQ(result.checkpoint.train.size(), partition.initial.size());
}

// ---------------------------------------- continuous fallible loop

TEST(ContinuousFallible, ConsecutiveFailuresAbort) {
  la::Matrix x(5, 1);
  la::Vector y(5);
  for (std::size_t i = 0; i < 5; ++i) {
    x(i, 0) = static_cast<double>(i);
    y[i] = std::sin(static_cast<double>(i));
  }
  const al::FallibleOracle oracle = [](std::span<const double>) {
    return Measurement::failed(2.0);
  };
  al::RetryPolicy policy;
  policy.maxRetries = 0;
  al::ContinuousAlConfig cfg;
  cfg.iterations = 30;
  cfg.nStarts = 2;
  cfg.maxConsecutiveFailures = 3;
  Rng rng(11);
  const auto result = al::runContinuousAl(
      smallGp(), x, y, alperf::opt::BoxBounds({0.0}, {4.0}), oracle, policy,
      al::varianceAcquisition(), cfg, rng);
  EXPECT_EQ(result.stopReason, al::StopReason::OracleExhausted);
  EXPECT_EQ(result.history.size(), 3u);
  EXPECT_DOUBLE_EQ(result.wastedCost, 6.0);
  for (const auto& rec : result.history) {
    EXPECT_FALSE(rec.measured);
    EXPECT_DOUBLE_EQ(rec.wastedCost, 2.0);
  }
}

TEST(ContinuousFallible, HealthyOracleRunsToCompletion) {
  la::Matrix x(5, 1);
  la::Vector y(5);
  for (std::size_t i = 0; i < 5; ++i) {
    x(i, 0) = static_cast<double>(i);
    y[i] = std::sin(static_cast<double>(i));
  }
  const al::FallibleOracle oracle = [](std::span<const double> q) {
    return Measurement::ok(std::sin(q[0]), 1.0);
  };
  al::ContinuousAlConfig cfg;
  cfg.iterations = 6;
  cfg.nStarts = 2;
  Rng rng(11);
  const auto result = al::runContinuousAl(
      smallGp(), x, y, alperf::opt::BoxBounds({0.0}, {4.0}), oracle,
      al::RetryPolicy{}, al::varianceAcquisition(), cfg, rng);
  EXPECT_EQ(result.stopReason, al::StopReason::MaxIterations);
  EXPECT_EQ(result.history.size(), 6u);
  EXPECT_DOUBLE_EQ(result.wastedCost, 0.0);
  for (const auto& rec : result.history) EXPECT_TRUE(rec.measured);
  EXPECT_EQ(result.finalGp.numTrainPoints(), 11u);
}

// ---------------------------------------- checkpoint serialization

TEST(CheckpointIo, RoundTripsEveryField) {
  const auto learner = makeLearner(12);
  Rng partRng(42);
  const auto partition =
      alperf::data::triPartition(learner.problem().size(), 3, 0.8, partRng);
  Rng rng(5);
  const auto result = learner.runWithPartition(partition, rng);
  const auto& cp = result.checkpoint;

  const std::string prefix = "alperf_test_ckpt_roundtrip";
  al::saveCheckpoint(cp, prefix);
  const auto loaded = al::loadCheckpoint(prefix);
  removeCheckpointFiles(prefix);

  EXPECT_EQ(loaded.train, cp.train);
  EXPECT_EQ(loaded.trainY, cp.trainY);
  EXPECT_EQ(loaded.pool, cp.pool);
  EXPECT_EQ(loaded.quarantined, cp.quarantined);
  EXPECT_EQ(loaded.partition.initial, cp.partition.initial);
  EXPECT_EQ(loaded.partition.active, cp.partition.active);
  EXPECT_EQ(loaded.partition.test, cp.partition.test);
  EXPECT_EQ(loaded.iteration, cp.iteration);
  EXPECT_EQ(loaded.cumulativeCost, cp.cumulativeCost);  // exact, not near
  EXPECT_EQ(loaded.gpTheta, cp.gpTheta);
  EXPECT_EQ(loaded.rngState, cp.rngState);
  EXPECT_TRUE(loaded.hasRngState);
  expectSameHistory(loaded.history, cp.history);
}

TEST(CheckpointIo, LoadRejectsMissingFiles) {
  EXPECT_THROW(al::loadCheckpoint("alperf_test_ckpt_does_not_exist"),
               std::exception);
}

TEST(Resume, ValidatesCheckpointAgainstProblem) {
  const auto learner = makeLearner(5);
  Rng rng(5);
  al::Checkpoint empty;
  EXPECT_THROW(learner.resume(empty, rng), std::invalid_argument);
  const auto result = learner.run(rng);
  al::Checkpoint bad = result.checkpoint;
  bad.train.push_back(10'000);  // out of range for the 50-row problem
  bad.trainY.push_back(0.0);
  EXPECT_THROW(learner.resume(bad, rng), std::invalid_argument);
}

// ---------------------------------------- golden resume

TEST(GoldenResume, StraightAndResumedTracesAreIdentical) {
  const auto learner30 = makeLearner(30);
  const auto learner15 = makeLearner(15);
  Rng partRng(42);
  const auto partition = alperf::data::triPartition(
      learner30.problem().size(), 3, 0.8, partRng);

  Rng straightRng(7);
  const auto straight = learner30.runWithPartition(partition, straightRng);
  ASSERT_EQ(straight.history.size(), 30u);

  Rng halfRng(7);
  const auto half = learner15.runWithPartition(partition, halfRng);
  ASSERT_EQ(half.history.size(), 15u);

  const std::string prefix = "alperf_test_ckpt_golden";
  al::saveCheckpoint(half.checkpoint, prefix);
  const auto loaded = al::loadCheckpoint(prefix);
  removeCheckpointFiles(prefix);

  Rng resumeRng(987654321);  // irrelevant: the checkpoint state wins
  const auto resumed = learner30.resume(loaded, resumeRng);

  expectSameHistory(straight.history, resumed.history);
  EXPECT_EQ(straight.stopReason, resumed.stopReason);
  EXPECT_EQ(straight.checkpoint.train, resumed.checkpoint.train);
  EXPECT_EQ(straight.checkpoint.trainY, resumed.checkpoint.trainY);
  EXPECT_EQ(straight.checkpoint.pool, resumed.checkpoint.pool);
  EXPECT_EQ(straight.checkpoint.rngState, resumed.checkpoint.rngState);
  const auto thetaA = straight.finalGp.thetaFull();
  const auto thetaB = resumed.finalGp.thetaFull();
  ASSERT_EQ(thetaA.size(), thetaB.size());
  for (std::size_t i = 0; i < thetaA.size(); ++i)
    EXPECT_DOUBLE_EQ(thetaA[i], thetaB[i]);
  EXPECT_DOUBLE_EQ(straight.finalGp.logMarginalLikelihood(),
                   resumed.finalGp.logMarginalLikelihood());
}

TEST(GoldenResume, FallibleCampaignAlsoResumesBitForBit) {
  const auto problem = syntheticProblem();
  const auto learner20 = makeLearner(20);
  const auto learner10 = makeLearner(10);
  Rng partRng(42);
  const auto partition =
      alperf::data::triPartition(problem.size(), 3, 0.8, partRng);
  // Deterministic fallible backend: some rows always fail, some censor.
  const al::FallibleRowOracle oracle = [&](std::size_t row) {
    if (row % 7 == 3) return Measurement::failed(0.5);
    if (row % 7 == 5)
      return Measurement::censored(0.9 * problem.y[row], problem.cost[row]);
    return Measurement::ok(problem.y[row], problem.cost[row]);
  };
  al::RetryPolicy policy;
  policy.maxRetries = 1;
  policy.backoffCostBase = 0.1;

  Rng straightRng(13);
  const auto straight = learner20.runFallibleWithPartition(
      oracle, policy, partition, straightRng);
  Rng halfRng(13);
  const auto half = learner10.runFallibleWithPartition(oracle, policy,
                                                       partition, halfRng);

  const std::string prefix = "alperf_test_ckpt_golden_fallible";
  al::saveCheckpoint(half.checkpoint, prefix);
  const auto loaded = al::loadCheckpoint(prefix);
  removeCheckpointFiles(prefix);

  Rng resumeRng(1);
  const auto resumed =
      learner20.resumeFallible(loaded, oracle, policy, resumeRng);
  expectSameHistory(straight.history, resumed.history);
  EXPECT_EQ(straight.checkpoint.quarantined,
            resumed.checkpoint.quarantined);
  EXPECT_EQ(straight.checkpoint.trainY, resumed.checkpoint.trainY);
}
