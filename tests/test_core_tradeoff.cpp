// Tests for cost–error tradeoff analysis (core/tradeoff.hpp): curve
// aggregation, interpolation, crossover detection and the relative-
// reduction report (the machinery behind the paper's 38% result).

#include "core/tradeoff.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gp/kernels.hpp"

namespace al = alperf::al;

namespace {

/// Builds a synthetic AlResult whose RMSE follows err(cost) with unit-ish
/// cost steps.
al::AlResult syntheticRun(const std::function<double(double)>& err,
                          double costPerPick, int picks) {
  al::AlResult r{.history = {},
                 .partition = {},
                 .stopReason = al::StopReason::MaxIterations,
                 .finalGp = alperf::gp::GaussianProcess(
                     alperf::gp::makeSquaredExponential(1.0, 1.0))};
  double cum = 0.0;
  for (int i = 0; i < picks; ++i) {
    cum += costPerPick;
    al::IterationRecord rec;
    rec.iteration = i;
    rec.pickCost = costPerPick;
    rec.cumulativeCost = cum;
    rec.rmse = err(cum);
    r.history.push_back(rec);
  }
  return r;
}

al::BatchResult batchOf(const std::function<double(double)>& err,
                        double costPerPick, int picks, int runs) {
  al::BatchResult b;
  for (int i = 0; i < runs; ++i)
    b.runs.push_back(syntheticRun(err, costPerPick, picks));
  return b;
}

}  // namespace

TEST(TradeoffCurve, ErrorAtInterpolatesAndClamps) {
  al::TradeoffCurve c;
  c.cost = {1.0, 10.0, 100.0};
  c.error = {1.0, 0.5, 0.1};
  EXPECT_DOUBLE_EQ(c.errorAt(0.5), 1.0);    // clamp low
  EXPECT_DOUBLE_EQ(c.errorAt(1000.0), 0.1); // clamp high
  // Log-midpoint of [1, 10] is ~3.16 → halfway between 1.0 and 0.5.
  EXPECT_NEAR(c.errorAt(std::sqrt(10.0)), 0.75, 1e-9);
  EXPECT_THROW(al::TradeoffCurve{}.errorAt(1.0), std::invalid_argument);
}

TEST(AggregateTradeoff, ReproducesKnownDecay) {
  // err(c) = 10/c exactly for every run → the aggregate matches it.
  const auto batch =
      batchOf([](double c) { return 10.0 / c; }, 2.0, 50, 5);
  const auto curve = al::aggregateTradeoff(batch, 100);
  ASSERT_EQ(curve.cost.size(), 100u);
  EXPECT_NEAR(curve.cost.front(), 2.0, 1e-9);
  EXPECT_NEAR(curve.cost.back(), 100.0, 1e-9);
  for (std::size_t i = 0; i < curve.cost.size(); ++i) {
    // Staircase evaluation: error at cost c is err at the last completed
    // pick, i.e. 10/floor-step — within one step of 10/c.
    const double cStep = std::floor(curve.cost[i] / 2.0) * 2.0;
    EXPECT_NEAR(curve.error[i], 10.0 / cStep, 1e-9) << "i=" << i;
  }
}

TEST(AggregateTradeoff, AveragesAcrossRuns) {
  al::BatchResult b;
  b.runs.push_back(syntheticRun([](double) { return 1.0; }, 1.0, 20));
  b.runs.push_back(syntheticRun([](double) { return 3.0; }, 1.0, 20));
  const auto curve = al::aggregateTradeoff(b, 10);
  for (double e : curve.error) EXPECT_NEAR(e, 2.0, 1e-9);
}

TEST(AggregateTradeoff, Validation) {
  EXPECT_THROW(al::aggregateTradeoff(al::BatchResult{}, 10),
               std::invalid_argument);
  const auto batch = batchOf([](double c) { return 1.0 / c; }, 1.0, 10, 2);
  EXPECT_THROW(al::aggregateTradeoff(batch, 1), std::invalid_argument);
}

TEST(CompareTradeoffs, FindsCrossoverAndReductions) {
  // Baseline: err = 10/√c. Challenger: worse before c=25, better after:
  // err = 50/c  (crosses 10/√c at c = 25).
  const auto baseline =
      al::aggregateTradeoff(batchOf(
          [](double c) { return 10.0 / std::sqrt(c); }, 1.0, 400, 1), 200);
  const auto challenger = al::aggregateTradeoff(
      batchOf([](double c) { return 50.0 / c; }, 1.0, 400, 1), 200);
  const auto report = al::compareTradeoffs(baseline, challenger);
  ASSERT_TRUE(report.found);
  EXPECT_NEAR(report.crossoverCost, 25.0, 3.0);
  ASSERT_GE(report.reductions.size(), 4u);
  // At m·C the reduction is 1 − (50/(mC))/(10/√(mC)) = 1 − 5/√(mC):
  // m=4 → 50%, m=16 → 75%... our multiples are 1,2,3,5,10.
  for (const auto& [m, red] : report.reductions) {
    const double expected = 1.0 - 5.0 / std::sqrt(m * report.crossoverCost);
    EXPECT_NEAR(red, expected, 0.08) << "multiple " << m;
  }
  EXPECT_GT(report.maxReduction, 0.5);
  EXPECT_GT(report.maxReductionCost, report.crossoverCost);
}

TEST(CompareTradeoffs, NoCrossoverWhenChallengerAlwaysWorse) {
  const auto baseline = al::aggregateTradeoff(
      batchOf([](double) { return 1.0; }, 1.0, 50, 1), 50);
  const auto challenger = al::aggregateTradeoff(
      batchOf([](double) { return 2.0; }, 1.0, 50, 1), 50);
  const auto report = al::compareTradeoffs(baseline, challenger);
  EXPECT_FALSE(report.found);
}

TEST(CompareTradeoffs, ChallengerAlwaysBetterHasTrivialCrossover) {
  const auto baseline = al::aggregateTradeoff(
      batchOf([](double) { return 2.0; }, 1.0, 50, 1), 50);
  const auto challenger = al::aggregateTradeoff(
      batchOf([](double) { return 1.0; }, 1.0, 50, 1), 50);
  const auto report = al::compareTradeoffs(baseline, challenger);
  ASSERT_TRUE(report.found);
  // Crossover is at the start of the common range.
  EXPECT_NEAR(report.crossoverCost, baseline.cost.front(), 0.2);
  for (const auto& [m, red] : report.reductions)
    EXPECT_NEAR(red, 0.5, 1e-9);
}

TEST(CompareTradeoffs, MultiplesBeyondRangeDropped) {
  const auto baseline = al::aggregateTradeoff(
      batchOf([](double c) { return 2.0 / c; }, 1.0, 20, 1), 30);
  const auto challenger = al::aggregateTradeoff(
      batchOf([](double c) { return 1.0 / c; }, 1.0, 20, 1), 30);
  const auto report =
      al::compareTradeoffs(baseline, challenger, {1.0, 1000.0});
  ASSERT_TRUE(report.found);
  EXPECT_EQ(report.reductions.size(), 1u);  // 1000·C exceeds the range
}
