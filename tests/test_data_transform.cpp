// Tests for column transforms (data/transform.hpp) and dataset
// partitioning (data/partition.hpp).

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/partition.hpp"
#include "data/transform.hpp"

namespace data = alperf::data;
using data::Table;

TEST(Transform, Log10NewColumn) {
  Table t;
  t.addNumeric("size", {10.0, 100.0, 1000.0});
  data::addLog10Column(t, "size", "logSize");
  ASSERT_TRUE(t.hasColumn("logSize"));
  EXPECT_DOUBLE_EQ(t.numeric("logSize")[0], 1.0);
  EXPECT_DOUBLE_EQ(t.numeric("logSize")[2], 3.0);
  // Original untouched.
  EXPECT_DOUBLE_EQ(t.numeric("size")[0], 10.0);
}

TEST(Transform, Log10InPlace) {
  Table t;
  t.addNumeric("v", {1.0, 100.0});
  data::addLog10Column(t, "v", "v");
  EXPECT_DOUBLE_EQ(t.numeric("v")[1], 2.0);
}

TEST(Transform, Log10NonPositiveThrows) {
  Table t;
  t.addNumeric("v", {1.0, 0.0});
  EXPECT_THROW(data::addLog10Column(t, "v", "w"), std::invalid_argument);
}

TEST(Transform, Unlog10Inverts) {
  EXPECT_NEAR(data::unlog10(std::log10(457.0)), 457.0, 1e-10);
}

TEST(Transform, StandardizeColumn) {
  Table t;
  t.addNumeric("v", {2.0, 4.0, 6.0, 8.0});
  const auto s = data::standardizeColumn(t, "v");
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  const auto col = t.numeric("v");
  double m = 0.0;
  for (double x : col) m += x;
  EXPECT_NEAR(m, 0.0, 1e-12);
  // Round trip.
  EXPECT_NEAR(s.invert(col[0]), 2.0, 1e-12);
  EXPECT_NEAR(s.apply(8.0), col[3], 1e-12);
}

TEST(Transform, StandardizeConstantColumn) {
  Table t;
  t.addNumeric("v", {3.0, 3.0, 3.0});
  const auto s = data::standardizeColumn(t, "v");
  EXPECT_DOUBLE_EQ(s.stdDev, 1.0);
  for (double x : t.numeric("v")) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(Transform, OneHotEncode) {
  Table t;
  t.addCategorical("op", {"b", "a", "b", "c"});
  t.addNumeric("v", {1.0, 2.0, 3.0, 4.0});
  const auto names = data::oneHotEncode(t, "op");
  EXPECT_EQ(names,
            (std::vector<std::string>{"op=a", "op=b", "op=c"}));
  EXPECT_FALSE(t.hasColumn("op"));
  EXPECT_DOUBLE_EQ(t.numeric("op=b")[0], 1.0);
  EXPECT_DOUBLE_EQ(t.numeric("op=b")[1], 0.0);
  EXPECT_DOUBLE_EQ(t.numeric("op=a")[1], 1.0);
  // Each row has exactly one hot bit.
  for (std::size_t i = 0; i < 4; ++i) {
    double sum = 0.0;
    for (const auto& n : names) sum += t.numeric(n)[i];
    EXPECT_DOUBLE_EQ(sum, 1.0);
  }
}

TEST(Transform, OneHotOnNumericThrows) {
  Table t;
  t.addNumeric("v", {1.0});
  EXPECT_THROW(data::oneHotEncode(t, "v"), std::invalid_argument);
}

TEST(Partition, SizesAndDisjointness) {
  alperf::stats::Rng rng(1);
  const auto p = data::triPartition(100, 1, 0.8, rng);
  EXPECT_EQ(p.initial.size(), 1u);
  // 99 remaining, 80% ≈ 79 active.
  EXPECT_NEAR(static_cast<double>(p.active.size()), 79.0, 1.0);
  EXPECT_EQ(p.initial.size() + p.active.size() + p.test.size(), 100u);
  std::set<std::size_t> all;
  for (auto i : p.initial) all.insert(i);
  for (auto i : p.active) all.insert(i);
  for (auto i : p.test) all.insert(i);
  EXPECT_EQ(all.size(), 100u);
  EXPECT_EQ(*all.rbegin(), 99u);
}

TEST(Partition, MultipleInitial) {
  alperf::stats::Rng rng(2);
  const auto p = data::triPartition(50, 5, 0.5, rng);
  EXPECT_EQ(p.initial.size(), 5u);
  EXPECT_GE(p.active.size(), 1u);
  EXPECT_GE(p.test.size(), 1u);
}

TEST(Partition, Validation) {
  alperf::stats::Rng rng(3);
  EXPECT_THROW(data::triPartition(10, 0, 0.8, rng), std::invalid_argument);
  EXPECT_THROW(data::triPartition(2, 1, 0.8, rng), std::invalid_argument);
  EXPECT_THROW(data::triPartition(10, 1, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(data::triPartition(10, 1, 1.0, rng), std::invalid_argument);
}

TEST(Partition, ExtremeFractionStillLeavesTest) {
  alperf::stats::Rng rng(4);
  const auto p = data::triPartition(10, 1, 0.999, rng);
  EXPECT_GE(p.test.size(), 1u);
  EXPECT_GE(p.active.size(), 1u);
}

TEST(Partition, DifferentSeedsDifferentPartitions) {
  alperf::stats::Rng a(5), b(6);
  const auto pa = data::triPartition(100, 1, 0.8, a);
  const auto pb = data::triPartition(100, 1, 0.8, b);
  EXPECT_NE(pa.initial, pb.initial);
}

TEST(Partition, SameSeedSamePartition) {
  alperf::stats::Rng a(7), b(7);
  const auto pa = data::triPartition(100, 1, 0.8, a);
  const auto pb = data::triPartition(100, 1, 0.8, b);
  EXPECT_EQ(pa.initial, pb.initial);
  EXPECT_EQ(pa.active, pb.active);
  EXPECT_EQ(pa.test, pb.test);
}

// Parameterized sweep over partition shapes.
class PartitionShapes
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(PartitionShapes, CoversAllRowsDisjointly) {
  const auto [n, nInit, frac] = GetParam();
  alperf::stats::Rng rng(11);
  const auto p = data::triPartition(n, nInit, frac, rng);
  std::set<std::size_t> all;
  for (auto i : p.initial) all.insert(i);
  for (auto i : p.active) all.insert(i);
  for (auto i : p.test) all.insert(i);
  EXPECT_EQ(all.size(), static_cast<std::size_t>(n));
  EXPECT_EQ(p.initial.size(), static_cast<std::size_t>(nInit));
  EXPECT_GE(p.active.size(), 1u);
  EXPECT_GE(p.test.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartitionShapes,
    ::testing::Values(std::tuple{3, 1, 0.5}, std::tuple{10, 1, 0.8},
                      std::tuple{100, 1, 0.8}, std::tuple{100, 10, 0.5},
                      std::tuple{251, 1, 0.8}, std::tuple{1000, 3, 0.9}));
