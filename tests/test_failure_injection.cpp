// Failure-injection tests: crashed job attempts must requeue, burn
// accounted time, respect retry limits, and never corrupt the core
// accounting; walltime kills must censor, not retry; non-finite
// responses must be rejected at every boundary before they can reach a
// Cholesky — plus the analytic posterior input-gradient added for
// gradient-based continuous suggestions.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "cluster/scheduler.hpp"
#include "core/continuous.hpp"
#include "core/problem.hpp"
#include "gp/kernels.hpp"

namespace al = alperf::al;
namespace cl = alperf::cluster;
namespace gp = alperf::gp;
namespace la = alperf::la;
namespace opt = alperf::opt;
using alperf::stats::Rng;

namespace {

cl::PerfModelParams quiet() {
  cl::PerfModelParams p;
  p.noiseSigma = 1e-6;
  p.spikeProbability = 0.0;
  return p;
}

cl::ClusterConfig failing(double probability, int retries) {
  cl::ClusterConfig cfg;
  cfg.failureProbability = probability;
  cfg.maxRetries = retries;
  return cfg;
}

}  // namespace

TEST(FailureInjection, ZeroProbabilityIsCleanRun) {
  cl::ClusterSim sim(failing(0.0, 3), cl::PerfModel(quiet()), 1);
  sim.submit({cl::Operator::Poisson1, 1.0e6, 8, 2.4}, 0.0);
  sim.run();
  const auto& rec = sim.records()[0];
  EXPECT_EQ(rec.attempts, 1);
  EXPECT_FALSE(rec.failed);
  EXPECT_DOUBLE_EQ(rec.wastedSeconds, 0.0);
}

TEST(FailureInjection, RetriesEventuallySucceed) {
  // 50% failure, generous retries: every job should finish, some after
  // multiple attempts with wasted time accounted.
  cl::ClusterSim sim(failing(0.5, 10), cl::PerfModel(quiet()), 7);
  for (int i = 0; i < 30; ++i)
    sim.submit({cl::Operator::Poisson1, 1.0e6, 8, 2.4}, i * 1.0);
  sim.run();
  int retried = 0;
  for (const auto& rec : sim.records()) {
    EXPECT_FALSE(rec.failed) << "job " << rec.id;
    EXPECT_GE(rec.attempts, 1);
    if (rec.attempts > 1) {
      ++retried;
      EXPECT_GT(rec.wastedSeconds, 0.0);
    } else {
      EXPECT_DOUBLE_EQ(rec.wastedSeconds, 0.0);
    }
    EXPECT_GT(rec.runtimeSeconds, 0.0);
  }
  EXPECT_GT(retried, 5);  // with p=0.5 over 30 jobs, many must retry
}

TEST(FailureInjection, ExhaustedRetriesMarkFailed) {
  // Certain failure, one retry: every job fails after exactly 2 attempts.
  cl::ClusterSim sim(failing(1.0, 1), cl::PerfModel(quiet()), 3);
  for (int i = 0; i < 5; ++i)
    sim.submit({cl::Operator::Poisson1, 1.0e6, 16, 2.4}, i * 1.0);
  sim.run();
  for (const auto& rec : sim.records()) {
    EXPECT_TRUE(rec.failed);
    EXPECT_EQ(rec.attempts, 2);
    EXPECT_GT(rec.wastedSeconds, 0.0);  // the first attempt's window
    // The terminal attempt still has a (partial) runtime and window.
    EXPECT_GT(rec.runtimeSeconds, 0.0);
    EXPECT_GT(rec.endTime, rec.startTime);
  }
}

TEST(FailureInjection, CoresNeverOverAllocatedUnderChaos) {
  cl::ClusterConfig cfg = failing(0.4, 5);
  cl::ClusterSim sim(cfg, cl::PerfModel(quiet()), 11);
  for (int i = 0; i < 40; ++i)
    sim.submit({cl::Operator::Poisson1, 1.0e6, 1 + (i * 13) % 64, 2.4},
               i * 0.5);
  sim.run();
  // Reconstruct per-node usage from load intervals at many probe times.
  for (int n = 0; n < cfg.nodes; ++n) {
    const auto& load = sim.nodeLoad(n);
    for (const auto& probe : load) {
      const double t = 0.5 * (probe.begin + probe.end);
      double util = 0.0;
      for (const auto& iv : load)
        if (iv.begin <= t && t < iv.end) util += iv.utilization;
      EXPECT_LE(util, 1.0 + 1e-9) << "node " << n << " t=" << t;
    }
  }
}

TEST(FailureInjection, WastedTimeGrowsWithFailureRate) {
  const auto totalWaste = [](double p, std::uint64_t seed) {
    cl::ClusterSim sim(failing(p, 10), cl::PerfModel(quiet()), seed);
    for (int i = 0; i < 25; ++i)
      sim.submit({cl::Operator::Poisson1, 1.0e7, 16, 2.4}, i * 1.0);
    sim.run();
    double w = 0.0;
    for (const auto& rec : sim.records()) w += rec.wastedSeconds;
    return w;
  };
  EXPECT_GT(totalWaste(0.6, 5), totalWaste(0.1, 5));
}

// ---------------------------------------- walltime enforcement

TEST(WalltimeKill, CensorsInsteadOfRetrying) {
  // Lognormal runtime noise with margin 1.0: roughly half the attempts
  // exceed the requested walltime and must come back censored at exactly
  // the limit, terminally (attempts == 1, nothing requeued).
  cl::PerfModelParams noisy = quiet();
  noisy.noiseSigma = 0.4;
  cl::ClusterConfig cfg;
  cfg.enforceWalltime = true;
  cfg.walltimeMargin = 1.0;
  cl::PerfModel model(noisy);
  cl::ClusterSim sim(cfg, model, 21);
  const cl::JobRequest req{cl::Operator::Poisson1, 1.0e6, 8, 2.4};
  for (int i = 0; i < 40; ++i) sim.submit(req, i * 1.0);
  sim.run();
  const double limit = model.meanRuntime(req);
  int censored = 0;
  for (const auto& rec : sim.records()) {
    EXPECT_FALSE(rec.failed);
    EXPECT_EQ(rec.attempts, 1);
    EXPECT_LE(rec.runtimeSeconds, limit * (1.0 + 1e-12));
    if (rec.censored) {
      ++censored;
      EXPECT_DOUBLE_EQ(rec.runtimeSeconds, limit);
    }
  }
  EXPECT_GT(censored, 5);
  EXPECT_LT(censored, 35);
}

TEST(WalltimeKill, DisabledByDefault) {
  cl::PerfModelParams noisy = quiet();
  noisy.noiseSigma = 0.4;
  cl::ClusterSim sim(cl::ClusterConfig{}, cl::PerfModel(noisy), 21);
  for (int i = 0; i < 40; ++i)
    sim.submit({cl::Operator::Poisson1, 1.0e6, 8, 2.4}, i * 1.0);
  sim.run();
  for (const auto& rec : sim.records()) EXPECT_FALSE(rec.censored);
}

TEST(ClusterConfigValidation, RejectsNonsense) {
  const cl::PerfModel model{quiet()};
  const auto make = [&](auto mutate) {
    cl::ClusterConfig cfg;
    mutate(cfg);
    cl::ClusterSim sim(cfg, model, 1);
  };
  EXPECT_THROW(make([](cl::ClusterConfig& c) { c.failureProbability = -0.1; }),
               std::invalid_argument);
  EXPECT_THROW(make([](cl::ClusterConfig& c) { c.failureProbability = 1.5; }),
               std::invalid_argument);
  EXPECT_THROW(make([](cl::ClusterConfig& c) { c.maxRetries = -1; }),
               std::invalid_argument);
  EXPECT_THROW(make([](cl::ClusterConfig& c) { c.walltimeMargin = 0.5; }),
               std::invalid_argument);
  EXPECT_THROW(make([](cl::ClusterConfig& c) { c.nodes = 0; }),
               std::invalid_argument);
  EXPECT_NO_THROW(make([](cl::ClusterConfig&) {}));
}

// ---------------------------------------- measureJob outcome mapping

TEST(MeasureJob, CleanRunIsOk) {
  const cl::JobRequest req{cl::Operator::Poisson1, 1.0e6, 8, 2.4};
  const auto m = cl::measureJob(cl::ClusterConfig{}, cl::PerfModel(quiet()),
                                req, 5);
  EXPECT_EQ(m.status, alperf::MeasurementStatus::Ok);
  EXPECT_GT(m.y, 0.0);
  EXPECT_GT(m.cost, 0.0);
  EXPECT_DOUBLE_EQ(m.wastedCost, 0.0);
  EXPECT_EQ(m.attempts, 1);
  EXPECT_TRUE(m.usable());
}

TEST(MeasureJob, ExhaustedRetriesAreFailed) {
  const cl::JobRequest req{cl::Operator::Poisson1, 1.0e6, 8, 2.4};
  const auto m = cl::measureJob(failing(1.0, 2), cl::PerfModel(quiet()),
                                req, 5);
  EXPECT_EQ(m.status, alperf::MeasurementStatus::Failed);
  EXPECT_FALSE(m.usable());
  EXPECT_EQ(m.attempts, 3);       // 1 initial + 2 retries, all crashed
  EXPECT_GT(m.totalCost(), 0.0);  // burning the machine is not free
}

TEST(MeasureJob, WalltimeKillIsCensoredAtTheLimit) {
  cl::PerfModelParams noisy = quiet();
  noisy.noiseSigma = 0.4;
  cl::ClusterConfig cfg;
  cfg.enforceWalltime = true;
  cfg.walltimeMargin = 1.0;
  const cl::PerfModel model(noisy);
  const cl::JobRequest req{cl::Operator::Poisson1, 1.0e6, 8, 2.4};
  int censored = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const auto m = cl::measureJob(cfg, model, req, seed);
    ASSERT_NE(m.status, alperf::MeasurementStatus::Failed);
    if (m.status == alperf::MeasurementStatus::Censored) {
      ++censored;
      EXPECT_DOUBLE_EQ(m.y, model.meanRuntime(req));  // the lower bound
      EXPECT_GT(m.cost, 0.0);
    }
  }
  EXPECT_GT(censored, 3);   // ~half the seeds overrun a margin-1.0 walltime
  EXPECT_LT(censored, 27);  // ...and ~half do not
}

// ---------------------------------------- non-finite response rejection

TEST(NonFiniteResponses, MeasurementFactoriesReject) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(alperf::Measurement::ok(nan, 1.0), std::invalid_argument);
  EXPECT_THROW(alperf::Measurement::ok(inf, 1.0), std::invalid_argument);
  EXPECT_THROW(alperf::Measurement::ok(1.0, -1.0), std::invalid_argument);
  EXPECT_THROW(alperf::Measurement::censored(nan, 1.0),
               std::invalid_argument);
  EXPECT_THROW(alperf::Measurement::failed(-2.0), std::invalid_argument);
  EXPECT_THROW(alperf::Measurement::failed(1.0, 0), std::invalid_argument);
}

TEST(NonFiniteResponses, ProblemValidationRejectsBadRows) {
  al::RegressionProblem p;
  p.x = la::Matrix(2, 1);
  p.x(0, 0) = 0.0;
  p.x(1, 0) = 1.0;
  p.y = {1.0, std::numeric_limits<double>::quiet_NaN()};
  p.cost = {1.0, 1.0};
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.y[1] = 2.0;
  EXPECT_NO_THROW(p.validate());
  p.cost[0] = -1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.cost[0] = std::numeric_limits<double>::infinity();
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(NonFiniteResponses, PlainContinuousOracleThrows) {
  Rng rng(9);
  la::Matrix x(4, 1);
  la::Vector y(4);
  for (std::size_t i = 0; i < 4; ++i) {
    x(i, 0) = static_cast<double>(i);
    y[i] = std::sin(static_cast<double>(i));
  }
  gp::GpConfig cfg;
  cfg.nRestarts = 1;
  cfg.noise.lo = 1e-4;
  gp::GaussianProcess g(gp::makeSquaredExponential(1.0, 1.0), cfg);
  const al::Oracle bad = [](std::span<const double>) {
    return std::numeric_limits<double>::quiet_NaN();
  };
  al::ContinuousAlConfig alCfg;
  alCfg.iterations = 2;
  alCfg.nStarts = 2;
  EXPECT_THROW(al::runContinuousAl(g, x, y, opt::BoxBounds({0.0}, {3.0}),
                                   bad, al::varianceAcquisition(), alCfg,
                                   rng),
               std::invalid_argument);
}

TEST(NonFiniteResponses, ExecutorDemotesNonFiniteOkToFailed) {
  // A backend that bypasses the Measurement factories and hands back a raw
  // "Ok" NaN must still never reach the GP: the executor demotes it.
  al::RetryPolicy policy;
  policy.maxRetries = 1;
  al::ExperimentExecutor executor(policy);
  int calls = 0;
  const auto result = executor.execute([&] {
    ++calls;
    alperf::Measurement m;  // aggregate, skipping ok()'s validation
    m.status = alperf::MeasurementStatus::Ok;
    m.y = std::numeric_limits<double>::quiet_NaN();
    m.cost = 2.0;
    return m;
  });
  EXPECT_EQ(calls, 2);  // retried once, then gave up
  EXPECT_TRUE(result.quarantined);
  EXPECT_FALSE(result.measurement.usable());
  EXPECT_DOUBLE_EQ(result.wastedCost, 4.0);  // both attempts' burn
}

// ---------------------------------------- analytic posterior gradients

TEST(PredictGradient, MatchesFiniteDifferences) {
  Rng rng(1);
  la::Matrix x(12, 2);
  la::Vector y(12);
  for (std::size_t i = 0; i < 12; ++i) {
    x(i, 0) = rng.uniformReal(0.0, 4.0);
    x(i, 1) = rng.uniformReal(0.0, 4.0);
    y[i] = std::sin(x(i, 0)) - 0.5 * x(i, 1);
  }
  gp::GpConfig cfg;
  cfg.nRestarts = 1;
  cfg.noise.lo = 1e-4;
  gp::GaussianProcess g(gp::makeSquaredExponentialArd(1.0, {1.0, 1.0}),
                        cfg);
  g.fit(x, y, rng);

  const double h = 1e-6;
  for (const auto& q :
       {std::vector<double>{1.0, 2.0}, std::vector<double>{3.3, 0.7}}) {
    const auto pg = g.predictOneWithGradient(q);
    const auto [m0, v0] = g.predictOne(q);
    EXPECT_NEAR(pg.mean, m0, 1e-12);
    EXPECT_NEAR(pg.variance, v0, 1e-12);
    for (std::size_t dim = 0; dim < 2; ++dim) {
      auto qp = q;
      qp[dim] += h;
      const auto [mUp, vUp] = g.predictOne(qp);
      qp[dim] = q[dim] - h;
      const auto [mDn, vDn] = g.predictOne(qp);
      EXPECT_NEAR(pg.meanGrad[dim], (mUp - mDn) / (2.0 * h), 1e-5)
          << "dim " << dim;
      EXPECT_NEAR(pg.varianceGrad[dim], (vUp - vDn) / (2.0 * h), 1e-5)
          << "dim " << dim;
    }
  }
}

TEST(KernelEvalGradX, AnalyticMatchesNumericAcrossKernels) {
  const std::vector<double> a{0.7, -0.3};
  const std::vector<double> b{-0.2, 1.1};
  std::vector<gp::KernelPtr> kernels;
  kernels.push_back(std::make_unique<gp::RbfKernel>(0.8));
  kernels.push_back(std::make_unique<gp::Matern32Kernel>(1.1));
  kernels.push_back(
      std::make_unique<gp::Matern52Kernel>(std::vector<double>{0.9, 1.3}));
  kernels.push_back(
      std::make_unique<gp::RationalQuadraticKernel>(1.2, 0.7));
  kernels.push_back(gp::makeSquaredExponential(2.0, 0.6));
  kernels.push_back(std::make_unique<gp::RbfKernel>(0.5) +
                    std::make_unique<gp::Matern32Kernel>(1.0));
  for (const auto& k : kernels) {
    std::vector<double> grad(2);
    k->evalGradX(a, b, grad);
    const double h = 1e-7;
    for (std::size_t d = 0; d < 2; ++d) {
      auto ap = a;
      ap[d] += h;
      const double up = k->eval(ap, b);
      ap[d] = a[d] - h;
      const double dn = k->eval(ap, b);
      EXPECT_NEAR(grad[d], (up - dn) / (2.0 * h), 1e-6)
          << k->describe() << " dim " << d;
    }
  }
}

TEST(KernelEvalGradX, ZeroAtCoincidentPointsForStationary) {
  gp::RbfKernel k(1.0);
  const std::vector<double> a{1.5, -2.0};
  std::vector<double> grad(2);
  k.evalGradX(a, a, grad);
  EXPECT_DOUBLE_EQ(grad[0], 0.0);
  EXPECT_DOUBLE_EQ(grad[1], 0.0);
}

TEST(SuggestContinuousGrad, AgreesWithNumericVariant) {
  Rng rng(2);
  std::vector<double> xs{0.0, 0.5, 1.0, 1.5, 2.0};
  la::Matrix x(xs.size(), 1);
  la::Vector y(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    x(i, 0) = xs[i];
    y[i] = std::sin(xs[i]);
  }
  gp::GpConfig cfg;
  cfg.nRestarts = 1;
  cfg.noise.lo = 1e-4;
  gp::GaussianProcess g(gp::makeSquaredExponential(1.0, 1.0), cfg);
  g.fit(x, y, rng);

  const opt::BoxBounds bounds({0.0}, {10.0});
  Rng r1(3), r2(3);
  const auto numeric =
      al::suggestContinuous(g, bounds, al::varianceAcquisition(), 6, r1);
  const auto analytic = al::suggestContinuous(
      g, bounds, al::varianceAcquisitionGrad(), 6, r2);
  // Same seeds, same starts: both should land on (nearly) the same
  // maximizer of the same smooth acquisition.
  EXPECT_NEAR(analytic.acquisition, numeric.acquisition,
              1e-3 * std::abs(numeric.acquisition));
  EXPECT_NEAR(analytic.x[0], numeric.x[0], 0.05);
}

TEST(SuggestContinuousGrad, Validation) {
  gp::GpConfig cfg;
  gp::GaussianProcess g(gp::makeSquaredExponential(1.0, 1.0), cfg);
  Rng rng(4);
  la::Matrix x(2, 1);
  x(0, 0) = 0.0;
  x(1, 0) = 1.0;
  g.fit(x, la::Vector{0.0, 1.0}, rng);
  al::GradientAcquisition broken;
  broken.value = [](double, double sd) { return sd; };
  EXPECT_THROW(al::suggestContinuous(g, opt::BoxBounds({0.0}, {1.0}),
                                     broken, 2, rng),
               std::invalid_argument);
}
